// Package awd (adaptive window detection) is the public API of this
// reproduction of "Adaptive Window-Based Sensor Attack Detection for
// Cyber-Physical Systems" (Zhang, Wang, Liu, Kong — DAC 2022).
//
// It exposes the paper's detection system behind plain-Go types so a
// downstream control loop can adopt it without touching the internal
// packages:
//
//	det, err := awd.NewDetector(awd.DetectorConfig{
//	    A: [][]float64{{1}}, B: [][]float64{{1}}, Dt: 0.02,
//	    InputLow: []float64{-1}, InputHigh: []float64{1},
//	    Eps:       0.01,
//	    SafeLow:   []float64{-10}, SafeHigh: []float64{10},
//	    Tau:       []float64{0.5},
//	    MaxWindow: 40,
//	})
//	...
//	dec, err := det.Step(estimate, appliedInput) // once per control period
//	if err != nil { ... }                        // configuration fault
//	if dec.Alarm() { ... }
//
// The package also exposes the evaluation plants (Models, RunScenario) so
// the paper's experiments can be replayed programmatically; the cmd/awdexp
// tool builds on the same entry points.
package awd

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Observer is the observability hook of internal/obs re-exported for the
// public API: build one with NewObserver and set it on DetectorConfig (or
// ScenarioConfig) to stream per-step metrics and trace events. A nil
// *Observer disables telemetry at zero cost.
type Observer = obs.Observer

// Sink consumes the structured per-step trace events (see internal/obs:
// NopSink, RingSink, JSONLSink).
type Sink = obs.Sink

// StepEvent is the structured trace record emitted once per detection step.
type StepEvent = obs.StepEvent

// NewObserver builds an enabled telemetry observer. Passing nil for both
// arguments yields an observer with a private metric registry and a
// discard sink; use obs.Bootstrap-style wiring (cmd/ tools) or
// NewObserver(reg, sink) for custom plumbing.
func NewObserver(reg *obs.Registry, sink Sink) *Observer { return obs.NewObserver(reg, sink) }

// NewRegistry returns an empty metric registry for NewObserver.
func NewRegistry() *obs.Registry { return obs.NewRegistry() }

// DetectorConfig describes a plant and its detection parameters, mirroring
// the paper's Table 1 columns. All slices are copied at construction.
type DetectorConfig struct {
	// Discrete LTI dynamics x' = A x + B u (+ bounded disturbance). A is
	// n×n, B is n×m. Dt is the control period in seconds (metadata only).
	A, B [][]float64
	Dt   float64

	// Actuator range U: per-input-channel bounds (length m).
	InputLow, InputHigh []float64

	// Eps bounds the per-step disturbance in the 2-norm (ε).
	Eps float64

	// Safe state set S: per-dimension bounds (length n). Use
	// math.Inf(±1) for unconstrained dimensions.
	SafeLow, SafeHigh []float64

	// Tau is the per-dimension detection threshold τ (length n).
	Tau []float64

	// MaxWindow is w_m, the maximum detection window in control steps.
	MaxWindow int

	// InitRadius bounds estimate noise around the trusted reachability
	// initial state (0 = exact estimates).
	InitRadius float64

	// FixedWindow, when non-zero, builds the fixed-window baseline detector
	// instead of the adaptive system: positive values set the window size,
	// negative values select the degenerate single-sample window (the
	// paper's "window size 0").
	FixedWindow int

	// Observer, when non-nil, receives per-step telemetry: metric updates
	// in its registry and a StepEvent per Step call through its sink. Nil
	// keeps the hot path allocation-free with no measurable overhead.
	Observer *Observer
}

// Decision reports the outcome of one detection step.
type Decision struct {
	// Step is the control step index (0-based from construction/reset).
	Step int
	// Window is the detection window size used this step.
	Window int
	// Deadline is the estimated detection deadline t_d (adaptive only).
	Deadline int
	// Primary reports the window rule firing on the window ending at Step.
	Primary bool
	// Complementary reports the shrink-time re-check firing on a historical
	// step (ComplementaryStep).
	Complementary     bool
	ComplementaryStep int
	// Dims attributes the alarm to the state dimensions whose windowed
	// average residual exceeded τ — the suspect sensors. Nil when silent.
	Dims []int
}

// Alarm reports whether any check fired this step.
func (d Decision) Alarm() bool { return d.Primary || d.Complementary }

// String renders the decision as the compact one-liner shared across the
// pipeline (CLI logs, trace events, core decisions):
//
//	step  142  w=12 d=12  ALARM dims=[0 2]
func (d Decision) String() string {
	return obs.FormatDecision(d.Step, d.Window, d.Deadline, d.Primary, d.Complementary, d.ComplementaryStep, d.Dims)
}

// Detector is the assembled attack-detection pipeline of Fig. 1: Data
// Logger + Deadline Estimator + Adaptive Detector (or the fixed-window
// baseline). It is not safe for concurrent use; drive it from the control
// loop's thread.
type Detector struct {
	sys *core.System
}

// NewDetector validates the configuration and builds a detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	if len(cfg.A) == 0 {
		return nil, fmt.Errorf("awd: empty A matrix")
	}
	a := mat.FromRows(cfg.A)
	if len(cfg.B) != a.Rows() {
		return nil, fmt.Errorf("awd: B has %d rows, want %d", len(cfg.B), a.Rows())
	}
	b := mat.FromRows(cfg.B)
	dt := cfg.Dt
	if dt <= 0 {
		dt = 1
	}
	sys, err := lti.New(a, b, nil, dt)
	if err != nil {
		return nil, fmt.Errorf("awd: %w", err)
	}
	if len(cfg.InputLow) != b.Cols() || len(cfg.InputHigh) != b.Cols() {
		return nil, fmt.Errorf("awd: input bounds length %d/%d, want %d",
			len(cfg.InputLow), len(cfg.InputHigh), b.Cols())
	}
	for i := range cfg.InputLow {
		if math.IsInf(cfg.InputLow[i], 0) || math.IsInf(cfg.InputHigh[i], 0) {
			return nil, fmt.Errorf("awd: actuator range must be bounded (channel %d)", i)
		}
	}
	if len(cfg.SafeLow) != a.Rows() || len(cfg.SafeHigh) != a.Rows() {
		return nil, fmt.Errorf("awd: safe bounds length %d/%d, want %d",
			len(cfg.SafeLow), len(cfg.SafeHigh), a.Rows())
	}
	cc := core.Config{
		Sys:        sys,
		Inputs:     geom.BoxFromBounds(cfg.InputLow, cfg.InputHigh),
		Eps:        cfg.Eps,
		Safe:       geom.BoxFromBounds(cfg.SafeLow, cfg.SafeHigh),
		Tau:        mat.VecOf(cfg.Tau...),
		MaxWindow:  cfg.MaxWindow,
		InitRadius: cfg.InitRadius,
		Observer:   cfg.Observer,
	}
	var csys *core.System
	if cfg.FixedWindow != 0 {
		csys, err = core.NewFixed(cc, cfg.FixedWindow)
	} else {
		csys, err = core.New(cc)
	}
	if err != nil {
		return nil, fmt.Errorf("awd: %w", err)
	}
	return &Detector{sys: csys}, nil
}

// Step feeds one control step: the state estimate x̂_t delivered by the
// sensors and the input u_{t−1} that was applied over the preceding period
// (nil for zero input). It returns the detection decision for step t.
//
// An error reports a configuration fault — estimate or input dimensions
// that do not match the plant model. The detector did not ingest the
// sample and remains usable; the control loop decides whether that is
// fatal.
func (d *Detector) Step(estimate, appliedInput []float64) (Decision, error) {
	var u mat.Vec
	if appliedInput != nil {
		u = mat.VecOf(appliedInput...)
	}
	dec, err := d.sys.Step(mat.VecOf(estimate...), u)
	if err != nil {
		return Decision{}, fmt.Errorf("awd: %w", err)
	}
	return Decision{
		Step:              dec.Step,
		Window:            dec.Window,
		Deadline:          dec.Deadline,
		Primary:           dec.Alarm,
		Complementary:     dec.Complementary,
		ComplementaryStep: dec.ComplementaryStep,
		Dims:              append([]int(nil), dec.Dims...),
	}, nil
}

// Reset clears all run state so the detector can start a fresh episode.
func (d *Detector) Reset() { d.sys.Reset() }

// ModelInfo summarizes one built-in evaluation plant.
type ModelInfo struct {
	Name      string
	No        int
	StateDim  int
	InputDim  int
	Dt        float64
	MaxWindow int
}

// Models lists the built-in evaluation plants: the five Table 1 simulators
// plus the RC-car testbed model.
func Models() []ModelInfo {
	ms := append(models.All(), models.TestbedCar())
	out := make([]ModelInfo, len(ms))
	for i, m := range ms {
		out[i] = ModelInfo{
			Name:      m.Name,
			No:        m.No,
			StateDim:  m.Sys.StateDim(),
			InputDim:  m.Sys.InputDim(),
			Dt:        m.Sys.Dt,
			MaxWindow: m.MaxWindow,
		}
	}
	return out
}

// ScenarioConfig selects a built-in plant, attack, and strategy.
type ScenarioConfig struct {
	Model    string // "aircraft-pitch", ..., "testbed-car"
	Attack   string // "bias", "delay", "replay", "none"
	Strategy string // "adaptive" (default), "fixed", "cusum", "ewma"
	// FixedWindow sizes the fixed baseline (0 = the model's w_m).
	FixedWindow int
	Seed        uint64
	Steps       int // 0 = the model's default run length
	// Observer streams per-step telemetry from the scenario's detector
	// (nil = disabled).
	Observer *Observer
}

// ScenarioResult condenses one run.
type ScenarioResult struct {
	AttackStart    int     // -1 when no attack
	Detected       bool    // alarm at/after onset
	FirstAlarm     int     // -1 = never
	DetectionDelay int     // -1 = undetected
	FalsePositives float64 // pre-attack alarm rate
	UnsafeStep     int     // -1 = state never left the safe set
	DeadlineMissed bool    // unsafe entry before the first alarm
}

// RunScenario executes one closed-loop evaluation run and returns its
// summary metrics.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	m := models.ByName(cfg.Model)
	if m == nil {
		return ScenarioResult{}, fmt.Errorf("awd: unknown model %q", cfg.Model)
	}
	att, err := sim.BuildAttack(m, defaultStr(cfg.Attack, "none"))
	if err != nil {
		return ScenarioResult{}, err
	}
	var strat sim.Strategy
	switch defaultStr(cfg.Strategy, "adaptive") {
	case "adaptive":
		strat = sim.Adaptive
	case "fixed":
		strat = sim.FixedWindow
	case "cusum":
		strat = sim.CUSUMBaseline
	case "ewma":
		strat = sim.EWMABaseline
	default:
		return ScenarioResult{}, fmt.Errorf("awd: unknown strategy %q", cfg.Strategy)
	}
	tr, err := sim.Run(sim.Config{
		Model:    m,
		Attack:   att,
		Strategy: strat,
		FixedWin: cfg.FixedWindow,
		Steps:    cfg.Steps,
		Seed:     cfg.Seed,
		Observer: cfg.Observer,
	})
	if err != nil {
		return ScenarioResult{}, err
	}
	met := sim.Analyze(tr)
	return ScenarioResult{
		AttackStart:    tr.AttackStart,
		Detected:       met.Detected,
		FirstAlarm:     met.FirstAlarm,
		DetectionDelay: met.DetectionDelay,
		FalsePositives: met.FPRate,
		UnsafeStep:     met.UnsafeStep,
		DeadlineMissed: met.DeadlineMissed,
	}, nil
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// RecoveryResult summarizes a detection-plus-recovery run (see
// internal/recovery): on the first alarm the loop abandons the compromised
// sensors, dead-reckons the physical state from the last trusted estimate,
// and steers back to the pre-attack set point with saturated LQR feedback.
type RecoveryResult struct {
	AttackStart int
	// AlarmStep is when detection engaged recovery (-1 = never).
	AlarmStep int
	// EverUnsafe reports whether the true state left the safe set at any
	// point during the run.
	EverUnsafe bool
	// FinalSafe reports whether the run ended inside the safe set.
	FinalSafe bool
	// FinalError is the controlled dimension's distance from the recovery
	// target at the end of the run.
	FinalError float64
}

// RunRecoveryScenario executes a closed-loop run that hands off from the
// selected detector to the LQR recovery controller at the first alarm.
func RunRecoveryScenario(cfg ScenarioConfig) (RecoveryResult, error) {
	m := models.ByName(cfg.Model)
	if m == nil {
		return RecoveryResult{}, fmt.Errorf("awd: unknown model %q", cfg.Model)
	}
	att, err := sim.BuildAttack(m, defaultStr(cfg.Attack, "none"))
	if err != nil {
		return RecoveryResult{}, err
	}
	var strat sim.Strategy
	switch defaultStr(cfg.Strategy, "adaptive") {
	case "adaptive":
		strat = sim.Adaptive
	case "fixed":
		strat = sim.FixedWindow
	case "cusum":
		strat = sim.CUSUMBaseline
	case "ewma":
		strat = sim.EWMABaseline
	default:
		return RecoveryResult{}, fmt.Errorf("awd: unknown strategy %q", cfg.Strategy)
	}
	out, err := sim.RunWithRecovery(sim.Config{
		Model:    m,
		Attack:   att,
		Strategy: strat,
		FixedWin: cfg.FixedWindow,
		Steps:    cfg.Steps,
		Seed:     cfg.Seed,
		Observer: cfg.Observer,
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	return RecoveryResult{
		AttackStart: out.AttackStart,
		AlarmStep:   out.AlarmStep,
		EverUnsafe:  out.EverUnsafe,
		FinalSafe:   out.FinalSafe,
		FinalError:  out.FinalError,
	}, nil
}

// EstimateDeadline runs the reachability deadline query (Sec. 3) from an
// explicit trusted state, independent of the detector's own logging: how
// many control steps remain before the plant could reach the unsafe set
// under worst-case inputs and disturbance. Only adaptive detectors carry
// an estimator; fixed-window variants return an error.
func (d *Detector) EstimateDeadline(state []float64) (int, error) {
	est := d.sys.Estimator()
	if est == nil {
		return 0, fmt.Errorf("awd: this detector variant has no deadline estimator")
	}
	return est.FromState(mat.VecOf(state...)), nil
}
