package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fleetView builds a view over a synthetic fleet-shaped snapshot, the way
// poll() would after one successful round trip.
func fleetView(t *testing.T) *view {
	t.Helper()
	r := obs.NewRegistry()
	r.Gauge(obs.MetricFleetStreams, "").SetInt(500)
	r.Gauge(obs.MetricFleetShards, "").SetInt(2)
	r.Counter(obs.MetricFleetSteps, "").Add(120000)
	r.Counter(obs.MetricFleetBatches, "").Add(600)
	r.Counter(obs.MetricFleetAlarms, "").Add(9)
	r.Gauge(obs.MetricFleetQueueDepth, "").SetInt(1)
	hp := r.Histogram(obs.MetricFleetDeadlinePressure, "", obs.DeadlinePressureBuckets)
	for i := 0; i < 50; i++ {
		hp.Observe(float64(i) / 50)
	}
	for sh := 0; sh < 2; sh++ {
		r.Gauge(obs.FleetShardMetric(obs.MetricFleetShardStreams, sh), "").SetInt(250)
		r.Counter(obs.FleetShardMetric(obs.MetricFleetShardSteps, sh), "").Add(60000)
		r.Counter(obs.FleetShardMetric(obs.MetricFleetShardAlarms, sh), "").Add(4)
		hb := r.Histogram(obs.FleetShardBatchMetric(sh), "", obs.FleetBatchLatencyBuckets)
		hb.Observe(80)
		hb.Observe(120)
	}
	snap := r.Snapshot()
	roll, ok := obs.FleetRollupFromSnapshot(snap)
	if !ok {
		t.Fatal("fixture snapshot did not roll up")
	}
	return &view{
		addr:     "127.0.0.1:9090",
		interval: time.Second,
		now:      time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		snap:     snap,
		roll:     roll,
		haveRoll: true,
		width:    100,
		tail: obs.StreamTailResponse{
			Stream: "stream-0001",
			Events: []obs.StepEvent{
				{Step: 41, StreamID: "stream-0001", Window: 12, Deadline: 12, LoggerLen: 20, ResidualAvg: []float64{0.01, 0.03}},
				{Step: 42, StreamID: "stream-0001", Window: 12, Deadline: 12, Alarm: true, Dims: []int{1}, LoggerLen: 20},
			},
		},
	}
}

// TestRenderFullFrame pins the dashboard frame: every panel present, the
// fleet numbers, per-shard rows, pressure bars, and the drill-down tail.
func TestRenderFullFrame(t *testing.T) {
	out := fleetView(t).render()
	for _, want := range []string{
		"awdtop — 127.0.0.1:9090",
		"┌─ fleet ",
		"streams            500",
		"shards              2",
		"alarms               9",
		"┌─ deadline pressure (slack consumed) ",
		"mean 0.490   n=50",
		"┌─ shards ",
		"▸     0      250        60000",
		"  1      250        60000",
		"┌─ stream stream-0001 ",
		"step   42",
		"ALARM",
		"res=0.03",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// One-frame output must not embed cursor addressing — -once pipes it.
	if strings.Contains(out, "\x1b") {
		t.Error("render embeds ANSI escapes; positioning is the caller's job")
	}
	// The drill-down rows must not repeat the stream id the title carries.
	if strings.Count(out, "stream-0001") != 1 {
		t.Errorf("stream id repeated outside the panel title:\n%s", out)
	}
}

// TestRenderWaitingFrame covers the no-fleet state: the frame still renders
// (with the hint) instead of erroring, which is what -once prints before
// exiting nonzero.
func TestRenderWaitingFrame(t *testing.T) {
	v := &view{addr: "127.0.0.1:9090", interval: time.Second, now: time.Unix(0, 0).UTC(), width: 80}
	out := v.render()
	if !strings.Contains(out, "waiting for fleet metrics at 127.0.0.1:9090/snapshot") {
		t.Errorf("waiting frame missing hint:\n%s", out)
	}
	v.pollErr = "connection refused"
	if out := v.render(); !strings.Contains(out, "connection refused") {
		t.Errorf("waiting frame hides the poll error:\n%s", out)
	}
}

// TestRenderRates checks the steps/s derivation from two consecutive
// rollups.
func TestRenderRates(t *testing.T) {
	v := fleetView(t)
	v.prevRoll = v.roll
	v.prevRoll.Steps -= 50000
	v.prevAt = v.now.Add(-time.Second)
	v.haveRate = true
	if out := v.render(); !strings.Contains(out, "50.0k/s") {
		t.Errorf("frame missing derived step rate:\n%s", out)
	}
}

func TestBoxClipsAndPads(t *testing.T) {
	b := box("t", 10, []string{"short", "a line far wider than the box"})
	for i, l := range strings.Split(b, "\n") {
		if n := runeLen(l); n != 10 {
			t.Errorf("row %d width %d, want 10: %q", i, n, l)
		}
	}
}

func TestHuman(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {950, "950"}, {10000, "10.0k"}, {1.5e6, "1.50M"}, {2e9, "2.00G"}, {-10000, "-10.0k"}, {3.14, "3.14"},
	} {
		if got := human(tc.in); got != tc.want {
			t.Errorf("human(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSparkAndBar(t *testing.T) {
	if r := sparkRune(0, 10); r != ' ' {
		t.Errorf("zero spark = %q", r)
	}
	if r := sparkRune(10, 10); r != '█' {
		t.Errorf("full spark = %q", r)
	}
	if b := bar(0, 10, 4); b != "    " {
		t.Errorf("zero bar = %q", b)
	}
	if b := bar(1, 1000, 4); !strings.HasPrefix(b, "▏") {
		t.Errorf("nonzero bar invisible: %q", b)
	}
	if b := bar(10, 10, 4); b != "████" {
		t.Errorf("full bar = %q", b)
	}
}
