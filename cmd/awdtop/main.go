// Command awdtop is a terminal dashboard for a running awdfleet. It polls
// the fleet's /snapshot JSON endpoint, folds the registry into a
// per-shard rollup, and renders fleet throughput, batch-latency
// quantiles, alarm counts, queue depth, the deadline-pressure
// distribution, and a single-stream drill-down tail — all with the
// standard library only.
//
// Usage:
//
//	awdtop -addr 127.0.0.1:9090
//	awdtop -addr :9090 -stream stream-0042 -interval 500ms
//	awdtop -addr :9090 -once        # render one frame to stdout and exit
//
// Interactive keys: j/k select shard, s enter a stream id for the
// drill-down, p pause polling, q (or ^C) quit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "awdfleet telemetry address (host:port or URL)")
		interval = flag.Duration("interval", time.Second, "poll interval")
		stream   = flag.String("stream", "", "initial drill-down stream id (default: server's current target)")
		once     = flag.Bool("once", false, "render a single frame to stdout and exit (CI / headless mode)")
	)
	flag.Parse()

	c := newClient(*addr, *interval)
	if *once {
		os.Exit(renderOnce(c, *addr, *interval, *stream))
	}
	runInteractive(c, *addr, *interval, *stream)
}

// poll fetches one snapshot + tail and folds them into the view. Rates
// come from the previous rollup, so the caller keeps v across polls.
func poll(c *client, v *view, stream string) {
	v.now = time.Now()
	snap, err := c.snapshot()
	if err != nil {
		v.pollErr = err.Error()
		return
	}
	v.pollErr = ""
	if v.haveRoll {
		v.prevRoll, v.prevAt, v.haveRate = v.roll, v.polledAt, true
	}
	v.snap = snap
	v.roll, v.haveRoll = obs.FleetRollupFromSnapshot(snap)
	v.polledAt = v.now
	if v.selShard >= len(v.roll.PerShard) {
		v.selShard = 0
	}
	tail, err := c.streamTail(stream)
	if err != nil {
		v.tailErr = err.Error()
	} else {
		v.tailErr = ""
		v.tail = tail
	}
}

// renderOnce renders a single plain-text frame: 0 when fleet metrics were
// present, 1 otherwise (so CI can assert the pipeline end to end).
func renderOnce(c *client, addr string, interval time.Duration, stream string) int {
	v := &view{addr: addr, interval: interval, width: 100}
	poll(c, v, stream)
	fmt.Print(v.render())
	if !v.haveRoll {
		if v.pollErr != "" {
			fmt.Fprintln(os.Stderr, "awdtop:", v.pollErr)
		} else {
			fmt.Fprintln(os.Stderr, "awdtop: endpoint up but no fleet metrics in snapshot")
		}
		return 1
	}
	return 0
}

func runInteractive(c *client, addr string, interval time.Duration, stream string) {
	v := &view{addr: addr, interval: interval}

	// Raw mode gives us single-key input; without a TTY (piped output,
	// exotic platform) fall back to watch mode: redraw on every tick, no
	// keyboard control.
	keys := make(chan byte, 8)
	restore, err := enterRaw(os.Stdin)
	if err == nil {
		defer restore()
		go func() {
			buf := make([]byte, 1)
			for {
				n, err := os.Stdin.Read(buf)
				if err != nil {
					close(keys)
					return
				}
				if n == 1 {
					keys <- buf[0]
				}
			}
		}()
	} else {
		fmt.Fprintln(os.Stderr, "awdtop: no TTY, watch mode (^C to quit):", err)
	}

	draw := func() {
		if w, _, ok := termSize(os.Stdout); ok {
			v.width = w
		}
		// Home + clear-to-end repaints without the full-screen flash of 2J.
		fmt.Print("\x1b[H\x1b[J" + v.render())
	}

	poll(c, v, stream)
	if v.tail.Stream != "" {
		stream = v.tail.Stream
	}
	fmt.Print("\x1b[2J") // one full clear on entry
	draw()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if v.paused {
				continue
			}
			poll(c, v, stream)
			if v.tail.Stream != "" {
				stream = v.tail.Stream
			}
			draw()
		case b, ok := <-keys:
			if !ok {
				return
			}
			if v.entering {
				switch b {
				case '\r', '\n':
					v.entering = false
					if v.entry != "" {
						stream = v.entry
					}
					v.entry = ""
				case 0x1b: // ESC cancels
					v.entering, v.entry = false, ""
				case 0x7f, 0x08: // backspace
					if len(v.entry) > 0 {
						v.entry = v.entry[:len(v.entry)-1]
					}
				default:
					if b >= 0x20 && b < 0x7f {
						v.entry += string(b)
					}
				}
				draw()
				continue
			}
			switch b {
			case 'q', 0x03: // q or ^C (raw mode eats ISIG)
				fmt.Println()
				return
			case 'j':
				if v.selShard < len(v.roll.PerShard)-1 {
					v.selShard++
				}
			case 'k':
				if v.selShard > 0 {
					v.selShard--
				}
			case 'p':
				v.paused = !v.paused
			case 's':
				v.entering, v.entry = true, ""
			}
			draw()
		}
	}
}
