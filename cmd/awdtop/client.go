package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// client polls one awdfleet telemetry endpoint: /snapshot for the typed
// registry view and /stream for the single-stream drill-down tail.
type client struct {
	base string
	hc   *http.Client
}

func newClient(addr string, timeout time.Duration) *client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &client{base: base, hc: &http.Client{Timeout: timeout}}
}

// snapshot fetches the registry snapshot.
func (c *client) snapshot() (obs.Snapshot, error) {
	var s obs.Snapshot
	err := c.getJSON("/snapshot", &s)
	return s, err
}

// streamTail fetches the drill-down tail; a non-empty id retargets it.
func (c *client) streamTail(id string) (obs.StreamTailResponse, error) {
	path := "/stream"
	if id != "" {
		path += "?id=" + url.QueryEscape(id)
	}
	var r obs.StreamTailResponse
	err := c.getJSON(path, &r)
	return r, err
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
