//go:build !linux

package main

import (
	"errors"
	"os"
)

// enterRaw is unavailable off linux; awdtop falls back to watch mode
// (periodic redraw, no keyboard).
func enterRaw(*os.File) (func(), error) {
	return nil, errors.New("raw terminal mode unsupported on this platform")
}

// termSize is unknown off linux; the renderer uses its default width.
func termSize(*os.File) (int, int, bool) { return 0, 0, false }
