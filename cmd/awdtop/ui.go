package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// view is everything one frame renders from: the latest snapshot-derived
// rollup, the previous one for rates, the drill-down tail, and UI state.
type view struct {
	addr     string
	interval time.Duration
	now      time.Time
	paused   bool
	pollErr  string

	snap     obs.Snapshot
	roll     obs.FleetRollup
	haveRoll bool
	polledAt time.Time

	prevRoll obs.FleetRollup
	prevAt   time.Time
	haveRate bool

	tail    obs.StreamTailResponse
	tailErr string

	selShard int
	entering bool
	entry    string

	width int
}

const minWidth = 72

// render draws the whole dashboard as one string (no cursor addressing —
// the caller decides whether to clear the screen first, so -once output is
// plain text).
func (v *view) render() string {
	w := v.width
	if w < minWidth {
		w = minWidth
	}
	var out []string
	out = append(out, v.header(w)...)
	if !v.haveRoll {
		msg := "waiting for fleet metrics at " + v.addr + "/snapshot"
		if v.pollErr != "" {
			msg = v.pollErr
		}
		out = append(out, box("fleet", w, []string{msg, "", "start one with: awdfleet -metrics-addr :9090 -tick 10ms -steps 100000"}))
		return strings.Join(out, "\n") + "\n"
	}

	half := w / 2
	left := box("fleet", half, v.fleetLines())
	right := box("deadline pressure (slack consumed)", w-half, v.pressureLines(w-half-4))
	out = append(out, sideBySide(left, right))
	out = append(out, box("shards", w, v.shardLines(w-2)))
	title := "stream"
	if v.tail.Stream != "" {
		title = "stream " + v.tail.Stream
	}
	out = append(out, box(title, w, v.streamLines(w-2)))
	return strings.Join(out, "\n") + "\n"
}

func (v *view) header(w int) []string {
	left := fmt.Sprintf("awdtop — %s   %s", v.addr, v.now.Format("2006-01-02 15:04:05"))
	var right string
	switch {
	case v.entering:
		right = "stream id: " + v.entry + "▏ (enter=go esc=cancel)"
	case v.paused:
		right = "PAUSED — [p] resume  [q] quit"
	default:
		right = fmt.Sprintf("poll %s  [j/k] shard  [s]tream  [p]ause  [q]uit", v.interval)
	}
	line := left + strings.Repeat(" ", max(1, w-runeLen(left)-runeLen(right))) + right
	if v.pollErr != "" {
		return []string{line, clipPad("poll error: "+v.pollErr, w)}
	}
	return []string{line}
}

func (v *view) fleetLines() []string {
	r := v.roll
	stepsRate, alarmsRate := "-", "-"
	if v.haveRate {
		dt := v.now.Sub(v.prevAt).Seconds()
		if dt > 0 {
			stepsRate = human(float64(r.Steps-v.prevRoll.Steps)/dt) + "/s"
			alarmsRate = human(float64(r.Alarms-v.prevRoll.Alarms)/dt) + "/s"
		}
	}
	batchSize := "-"
	if r.Batches > 0 {
		batchSize = fmt.Sprintf("%.1f", float64(r.Steps)/float64(r.Batches))
	}
	lines := []string{
		kv2("streams", human(float64(r.Streams)), "shards", fmt.Sprint(r.Shards)),
		kv2("steps", human(float64(r.Steps)), "rate", stepsRate),
		kv2("batches", human(float64(r.Batches)), "batch sz", batchSize),
		kv2("alarms", human(float64(r.Alarms)), "alarm rate", alarmsRate),
		kv2("queue", fmt.Sprint(r.QueueDepth), "", ""),
	}
	// Detector-level extras when the fleet shares its observer with the
	// per-stream detectors (awdfleet does).
	if resMax, ok := v.snap.Get(obs.MetricResidualMax); ok {
		reach := "-"
		if h, ok := v.snap.HistogramValue(obs.MetricReachLatency); ok {
			if q, ok := h.Quantile(0.9); ok {
				reach = fmt.Sprintf("%.1fµs", q)
			}
		}
		lines = append(lines, kv2("res max", fmt.Sprintf("%.4g", resMax.Gauge), "reach p90", reach))
	}
	return lines
}

// pressureLines renders the deadline-pressure histogram as a bar chart:
// one row per bucket, bar length proportional to the bucket's share.
func (v *view) pressureLines(w int) []string {
	h := v.roll.DeadlinePressure
	if h.Kind != obs.KindHistogram || h.Count == 0 {
		return []string{"no certified deadline checks yet", "", "(adaptive streams only)"}
	}
	counts := h.BucketCounts()
	maxC := int64(1)
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	barW := w - 22
	if barW < 8 {
		barW = 8
	}
	var lines []string
	for i, c := range counts {
		var label string
		if i < len(h.Buckets) {
			label = fmt.Sprintf("≤%.2f", h.Buckets[i].UpperBound)
		} else {
			label = fmt.Sprintf(">%.2f", h.Buckets[len(h.Buckets)-1].UpperBound)
		}
		share := float64(c) / float64(h.Count)
		lines = append(lines, fmt.Sprintf("%-6s %s %5.1f%%", label, bar(c, maxC, barW), 100*share))
	}
	lines = append(lines, fmt.Sprintf("mean %.3f   n=%s", h.Sum/float64(h.Count), human(float64(h.Count))))
	return lines
}

func (v *view) shardLines(w int) []string {
	r := v.roll
	lines := []string{fmt.Sprintf("  %5s %8s %12s %9s %8s %8s %8s %8s",
		"shard", "streams", "steps", "steps/s", "alarms", "p50µs", "p90µs", "p99µs")}
	dt := 0.0
	if v.haveRate {
		dt = v.now.Sub(v.prevAt).Seconds()
	}
	for i, sh := range r.PerShard {
		rate := "-"
		if dt > 0 && i < len(v.prevRoll.PerShard) {
			rate = human(float64(sh.Steps-v.prevRoll.PerShard[i].Steps) / dt)
		}
		q := func(p float64) string {
			if val, ok := sh.BatchUS.Quantile(p); ok {
				return fmt.Sprintf("%.1f", val)
			}
			return "-"
		}
		cursor := "  "
		if i == v.selShard {
			cursor = "▸ "
		}
		lines = append(lines, clipPad(fmt.Sprintf("%s%5d %8d %12d %9s %8d %8s %8s %8s",
			cursor, sh.Shard, sh.Streams, sh.Steps, rate, sh.Alarms, q(0.5), q(0.9), q(0.99)), w))
	}
	if v.selShard >= 0 && v.selShard < len(r.PerShard) {
		sh := r.PerShard[v.selShard]
		if sh.BatchUS.Count > 0 {
			counts := sh.BatchUS.BucketCounts()
			maxC := int64(1)
			for _, c := range counts {
				if c > maxC {
					maxC = c
				}
			}
			spark := make([]rune, 0, len(counts))
			for _, c := range counts {
				spark = append(spark, sparkRune(c, maxC))
			}
			lines = append(lines, fmt.Sprintf("  shard %d batch latency %s (%s batches, ≤5µs → >25ms)",
				sh.Shard, string(spark), human(float64(sh.BatchUS.Count))))
		}
	}
	return lines
}

func (v *view) streamLines(w int) []string {
	if v.tailErr != "" {
		return []string{"drill-down unavailable: " + v.tailErr}
	}
	if v.tail.Stream == "" {
		return []string{"no drill-down target — press [s] to enter a stream id"}
	}
	evs := v.tail.Events
	if len(evs) == 0 {
		return []string{"no events for " + v.tail.Stream + " yet (tail fills on the next steps)"}
	}
	const maxRows = 8
	if len(evs) > maxRows {
		evs = evs[len(evs)-maxRows:]
	}
	var lines []string
	for _, ev := range evs {
		ev.StreamID = "" // panel title already names the stream
		line := ev.String()
		if n := len(ev.ResidualAvg); n > 0 {
			maxR := ev.ResidualAvg[0]
			for _, r := range ev.ResidualAvg[1:] {
				if r > maxR {
					maxR = r
				}
			}
			line += fmt.Sprintf("  res=%.4g", maxR)
		}
		lines = append(lines, clipPad(line, w))
	}
	return lines
}

// --- drawing primitives -------------------------------------------------

var sparkLevels = []rune(" ▁▂▃▄▅▆▇█")

func sparkRune(c, maxC int64) rune {
	if c <= 0 {
		return sparkLevels[0]
	}
	idx := 1 + int(float64(c)/float64(maxC)*float64(len(sparkLevels)-2)+0.5)
	if idx >= len(sparkLevels) {
		idx = len(sparkLevels) - 1
	}
	return sparkLevels[idx]
}

func bar(c, maxC int64, width int) string {
	n := int(float64(c) / float64(maxC) * float64(width))
	if c > 0 && n == 0 {
		return "▏" + strings.Repeat(" ", width-1)
	}
	return strings.Repeat("█", n) + strings.Repeat(" ", width-n)
}

// box frames content lines with a titled border, clipping and padding each
// line to the inner width.
func box(title string, w int, lines []string) string {
	inner := w - 2
	top := "┌─ " + title + " "
	if pad := w - runeLen(top) - 1; pad > 0 {
		top += strings.Repeat("─", pad)
	}
	top += "┐"
	rows := []string{top}
	for _, l := range lines {
		rows = append(rows, "│"+clipPad(l, inner)+"│")
	}
	rows = append(rows, "└"+strings.Repeat("─", inner)+"┘")
	return strings.Join(rows, "\n")
}

// sideBySide joins two boxed panels horizontally, padding the shorter one.
func sideBySide(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	wa := 0
	for _, l := range la {
		if n := runeLen(l); n > wa {
			wa = n
		}
	}
	n := len(la)
	if len(lb) > n {
		n = len(lb)
	}
	var out []string
	for i := 0; i < n; i++ {
		var x, y string
		if i < len(la) {
			x = la[i]
		}
		if i < len(lb) {
			y = lb[i]
		}
		out = append(out, clipPad(x, wa)+y)
	}
	return strings.Join(out, "\n")
}

func clipPad(s string, w int) string {
	r := []rune(s)
	if len(r) > w {
		return string(r[:w])
	}
	return s + strings.Repeat(" ", w-len(r))
}

func runeLen(s string) int { return len([]rune(s)) }

func kv2(k1, v1, k2, v2 string) string {
	if k2 == "" {
		return fmt.Sprintf("%-9s %12s", k1, v1)
	}
	return fmt.Sprintf("%-9s %12s   %-10s %10s", k1, v1, k2, v2)
}

// human renders a count with k/M/G suffixes for dashboard density.
func human(v float64) string {
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%s%.2fG", neg, v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%s%.2fM", neg, v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%s%.1fk", neg, v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%s%d", neg, int64(v))
	default:
		return fmt.Sprintf("%s%.2f", neg, v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
