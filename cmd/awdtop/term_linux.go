//go:build linux

package main

import (
	"os"
	"syscall"
	"unsafe"
)

// enterRaw puts the terminal behind f into raw-ish mode: no echo, no line
// buffering, no signal keys (awdtop handles ^C itself so the restore always
// runs). The returned func restores the original state.
func enterRaw(f *os.File) (restore func(), err error) {
	fd := int(f.Fd())
	var old syscall.Termios
	if err := ioctlTermios(fd, syscall.TCGETS, &old); err != nil {
		return nil, err
	}
	raw := old
	raw.Lflag &^= syscall.ECHO | syscall.ICANON | syscall.ISIG
	raw.Cc[syscall.VMIN] = 1
	raw.Cc[syscall.VTIME] = 0
	if err := ioctlTermios(fd, syscall.TCSETS, &raw); err != nil {
		return nil, err
	}
	return func() { _ = ioctlTermios(fd, syscall.TCSETS, &old) }, nil
}

// termSize reports the terminal dimensions behind f.
func termSize(f *os.File) (w, h int, ok bool) {
	var ws struct{ Row, Col, X, Y uint16 }
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, f.Fd(), syscall.TIOCGWINSZ, uintptr(unsafe.Pointer(&ws)))
	if errno != 0 || ws.Col == 0 {
		return 0, 0, false
	}
	return int(ws.Col), int(ws.Row), true
}

func ioctlTermios(fd int, req uintptr, t *syscall.Termios) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd), req, uintptr(unsafe.Pointer(t)))
	if errno != 0 {
		return errno
	}
	return nil
}
