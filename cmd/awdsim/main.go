// Command awdsim runs one closed-loop experiment — a plant, an attack, and
// a detection strategy — and prints the trace summary plus an ASCII chart
// of the controlled state.
//
// Usage:
//
//	awdsim -model vehicle-turning -attack bias -strategy adaptive -seed 7
//	awdsim -model testbed-car -attack bias -strategy fixed -window 30
//	awdsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		modelName   = flag.String("model", "vehicle-turning", "plant model (see -list)")
		attName     = flag.String("attack", "bias", "attack scenario: bias|delay|replay|freeze|ramp|noise|none")
		stratName   = flag.String("strategy", "adaptive", "detector: adaptive|fixed|cusum|ewma")
		window      = flag.Int("window", 0, "window size for -strategy fixed (0 = model w_m)")
		seed        = flag.Uint64("seed", 1, "random seed")
		steps       = flag.Int("steps", 0, "run length (0 = model default)")
		list        = flag.Bool("list", false, "list available models and exit")
		verbose     = flag.Bool("v", false, "print every alarm step")
		csvPath     = flag.String("csv", "", "write the full per-step trace to this CSV file")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar, and pprof on this address (e.g. :9090)")
		traceOut    = flag.String("trace-out", "", "write per-step JSONL trace events to this file (- = stdout)")
	)
	flag.Parse()

	obsrv, boundAddr, shutdownObs, err := obs.Bootstrap(*metricsAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := shutdownObs(); err != nil {
			fmt.Fprintln(os.Stderr, "awdsim: telemetry:", err)
		}
	}()
	if boundAddr != "" {
		fmt.Fprintf(os.Stderr, "awdsim: telemetry on http://%s/metrics\n", boundAddr)
	}

	if *list {
		for _, m := range append(models.All(), models.TestbedCar()) {
			fmt.Printf("%-16s n=%d m=%d dt=%gs w_m=%d\n",
				m.Name, m.Sys.StateDim(), m.Sys.InputDim(), m.Sys.Dt, m.MaxWindow)
		}
		return
	}

	m := models.ByName(*modelName)
	if m == nil {
		fmt.Fprintf(os.Stderr, "awdsim: unknown model %q (valid: %s)\n",
			*modelName, strings.Join(models.Names(), ", "))
		os.Exit(1)
	}
	att, err := sim.BuildAttack(m, *attName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdsim:", err)
		os.Exit(1)
	}
	var strat sim.Strategy
	switch *stratName {
	case "adaptive":
		strat = sim.Adaptive
	case "fixed":
		strat = sim.FixedWindow
	case "cusum":
		strat = sim.CUSUMBaseline
	case "ewma":
		strat = sim.EWMABaseline
	default:
		fmt.Fprintf(os.Stderr, "awdsim: unknown strategy %q\n", *stratName)
		os.Exit(1)
	}

	tr, err := sim.Run(sim.Config{
		Model:    m,
		Attack:   att,
		Strategy: strat,
		FixedWin: *window,
		Steps:    *steps,
		Seed:     *seed,
		Observer: obsrv,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdsim:", err)
		os.Exit(1)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdsim:", err)
			os.Exit(1)
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "awdsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "awdsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *csvPath)
	}

	state := make([]float64, len(tr.Records))
	ref := make([]float64, len(tr.Records))
	for i, r := range tr.Records {
		state[i] = r.TrueState[m.CtrlDim]
		ref[i] = r.Ref
	}
	fmt.Print(exp.RenderChart(
		fmt.Sprintf("%s / %s / %s (controlled state dim %d)", m.Name, att.Name(), strat, m.CtrlDim),
		72, 12,
		exp.Series{Name: "actual state", Values: state},
		exp.Series{Name: "reference", Values: ref},
	))

	met := sim.Analyze(tr)
	if tr.AttackStart >= 0 {
		obsrv.ObserveRun(met.DetectionDelay, met.Detected, met.DeadlineMissed)
	}
	fmt.Printf("\nattack onset: %s\n", stepOrNever(tr.AttackStart))
	fmt.Printf("pre-attack false positive rate: %.1f%% (%d/%d steps)\n",
		100*met.FPRate, met.PreAttackAlarms, met.PreAttackSteps)
	fmt.Printf("first alarm after onset: %s (delay %d)\n", stepOrNever(met.FirstAlarm), met.DetectionDelay)
	fmt.Printf("unsafe entry: %s   deadline missed: %v\n", stepOrNever(met.UnsafeStep), met.DeadlineMissed)

	if *verbose {
		fmt.Println("\nalarms:")
		for _, r := range tr.Records {
			if r.Alarm || r.Complementary {
				fmt.Printf("  %s\n", obs.FormatDecision(r.Step, r.Window, r.Deadline, r.Alarm, r.Complementary, -1, nil))
			}
		}
	}
}

func stepOrNever(s int) string {
	if s < 0 {
		return "never"
	}
	return fmt.Sprintf("step %d", s)
}
