// Command awdsim runs one closed-loop experiment — a plant, an attack, and
// a detection strategy — and prints the trace summary plus an ASCII chart
// of the controlled state.
//
// Usage:
//
//	awdsim -model vehicle-turning -attack bias -strategy adaptive -seed 7
//	awdsim -model testbed-car -attack bias -strategy fixed -window 30
//	awdsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/sim"
)

func main() {
	var (
		modelName = flag.String("model", "vehicle-turning", "plant model (see -list)")
		attName   = flag.String("attack", "bias", "attack scenario: bias|delay|replay|freeze|ramp|noise|none")
		stratName = flag.String("strategy", "adaptive", "detector: adaptive|fixed|cusum|ewma")
		window    = flag.Int("window", 0, "window size for -strategy fixed (0 = model w_m)")
		seed      = flag.Uint64("seed", 1, "random seed")
		steps     = flag.Int("steps", 0, "run length (0 = model default)")
		list      = flag.Bool("list", false, "list available models and exit")
		verbose   = flag.Bool("v", false, "print every alarm step")
		csvPath   = flag.String("csv", "", "write the full per-step trace to this CSV file")
	)
	flag.Parse()

	if *list {
		for _, m := range append(models.All(), models.TestbedCar()) {
			fmt.Printf("%-16s n=%d m=%d dt=%gs w_m=%d\n",
				m.Name, m.Sys.StateDim(), m.Sys.InputDim(), m.Sys.Dt, m.MaxWindow)
		}
		return
	}

	m := models.ByName(*modelName)
	if m == nil {
		fmt.Fprintf(os.Stderr, "awdsim: unknown model %q (try -list)\n", *modelName)
		os.Exit(1)
	}
	att, err := sim.BuildAttack(m, *attName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdsim:", err)
		os.Exit(1)
	}
	var strat sim.Strategy
	switch *stratName {
	case "adaptive":
		strat = sim.Adaptive
	case "fixed":
		strat = sim.FixedWindow
	case "cusum":
		strat = sim.CUSUMBaseline
	case "ewma":
		strat = sim.EWMABaseline
	default:
		fmt.Fprintf(os.Stderr, "awdsim: unknown strategy %q\n", *stratName)
		os.Exit(1)
	}

	tr, err := sim.Run(sim.Config{
		Model:    m,
		Attack:   att,
		Strategy: strat,
		FixedWin: *window,
		Steps:    *steps,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdsim:", err)
		os.Exit(1)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdsim:", err)
			os.Exit(1)
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "awdsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "awdsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *csvPath)
	}

	state := make([]float64, len(tr.Records))
	ref := make([]float64, len(tr.Records))
	for i, r := range tr.Records {
		state[i] = r.TrueState[m.CtrlDim]
		ref[i] = r.Ref
	}
	fmt.Print(exp.RenderChart(
		fmt.Sprintf("%s / %s / %s (controlled state dim %d)", m.Name, att.Name(), strat, m.CtrlDim),
		72, 12,
		exp.Series{Name: "actual state", Values: state},
		exp.Series{Name: "reference", Values: ref},
	))

	met := sim.Analyze(tr)
	fmt.Printf("\nattack onset: %s\n", stepOrNever(tr.AttackStart))
	fmt.Printf("pre-attack false positive rate: %.1f%% (%d/%d steps)\n",
		100*met.FPRate, met.PreAttackAlarms, met.PreAttackSteps)
	fmt.Printf("first alarm after onset: %s (delay %d)\n", stepOrNever(met.FirstAlarm), met.DetectionDelay)
	fmt.Printf("unsafe entry: %s   deadline missed: %v\n", stepOrNever(met.UnsafeStep), met.DeadlineMissed)

	if *verbose {
		fmt.Println("\nalarms:")
		for _, r := range tr.Records {
			if r.Alarm || r.Complementary {
				kind := "window"
				if r.Complementary {
					kind = "complementary"
				}
				fmt.Printf("  step %4d  window %2d  deadline %2d  (%s)\n", r.Step, r.Window, r.Deadline, kind)
			}
		}
	}
}

func stepOrNever(s int) string {
	if s < 0 {
		return "never"
	}
	return fmt.Sprintf("step %d", s)
}
