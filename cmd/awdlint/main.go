// Command awdlint is the multichecker for the repo's domain-specific
// static-analysis suite (internal/lint): detorder, errflow, floateq,
// lockflow, nopanic, obsguard, statepair, and wallclock. It enforces the
// implementation-level invariants behind the paper's Theorems 1–2 and the
// repo's bit-identity discipline — tolerance-based threshold comparisons, a
// panic-free detection hot path, nil-safe telemetry, checked matrix algebra
// errors, deterministic iteration on snapshot/wire/decision paths, no
// ambient wall-clock or randomness in replayable code, balanced locks with
// no blocking work held under them, and symmetric Snapshot/Restore pairs
// with one Begin/Expect per section tag.
//
// Usage:
//
//	awdlint [-list] [-only name[,name...]] [packages]
//
// Exit status is 0 when clean, 1 on findings, 2 on usage or load errors —
// mirroring go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: awdlint [-list] [-only name,...] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the awd static-analysis suite over the given package patterns\n(default ./...). Analyzers:\n\n")
		printAnalyzers()
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		printAnalyzers()
		return 0
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := lint.Run(os.Stdout, "", analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "awdlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

func printAnalyzers() {
	for _, a := range lint.Suite() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
	}
}
