// Command awdfleet demonstrates the fleet engine: it registers thousands
// of concurrent detector streams over one plant model, drives them in
// lockstep ticks with per-stream noisy estimates, and reports aggregate
// throughput. With -metrics-addr the run exposes the fleet's live
// telemetry (stream/shard gauges, step counters, per-shard batch latency
// and rollup counters, the deadline-pressure histogram, run-queue depth)
// on Prometheus /metrics and JSON /snapshot, plus a /stream drill-down
// endpoint tailing one stream's trace — the surface cmd/awdtop renders.
//
// Usage:
//
//	awdfleet -streams 4000 -steps 500
//	awdfleet -model quadrotor -streams 1000 -workers 4 -metrics-addr :9090
//	awdfleet -streams 2000 -steps 100000 -tick 10ms -metrics-addr :9090   # live demo for awdtop
//	awdfleet -streams 500 -steps 200 -metrics-dump fleet.prom             # post-run inspection
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/state"
)

func main() {
	var (
		modelName   = flag.String("model", "aircraft-pitch", "plant model shared by every stream (see awdsim -list)")
		streams     = flag.Int("streams", 1000, "number of concurrent detector streams")
		workers     = flag.Int("workers", 0, "shard-processing goroutines (0 = GOMAXPROCS)")
		steps       = flag.Int("steps", 200, "lockstep ticks to drive the fleet")
		tick        = flag.Duration("tick", 0, "sleep between lockstep ticks (paces a live demo; 0 = full speed)")
		seed        = flag.Uint64("seed", 1, "fleet seed; per-stream seeds derive via fleet.StreamSeed")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, JSON /snapshot, /stream drill-down, expvar, and pprof on this address (e.g. :9090)")
		metricsDump = flag.String("metrics-dump", "", "write a final Prometheus-text metrics snapshot to this file on exit (- = stdout)")
		traceOut    = flag.String("trace-out", "", "write per-step JSONL trace events, stream-attributed, to this file (- = stdout)")
		tailStream  = flag.String("tail-stream", "", "initial /stream drill-down target (default: the first stream)")
		ckptOut     = flag.String("checkpoint-out", "", "write a whole-fleet state snapshot (internal/state codec) to this file after the run")
		restoreFrom = flag.String("restore-from", "", "restore the fleet from a -checkpoint-out snapshot instead of starting cold (-streams is taken from the snapshot)")
	)
	flag.Parse()

	// The drill-down tail rides on the metrics mux; without an endpoint it
	// has nothing to serve, so it is only wired up when -metrics-addr is
	// set. -metrics-dump alone still enables a (serverless) registry below.
	var tail *obs.StreamTail
	bootOpts := []obs.Option{}
	if *metricsAddr != "" {
		target := *tailStream
		if target == "" && *streams > 0 {
			target = streamID(0)
		}
		tail = obs.NewStreamTail(512, target)
		bootOpts = append(bootOpts, obs.WithStreamTail(tail))
	}
	obsrv, boundAddr, shutdownObs, err := obs.Bootstrap(*metricsAddr, *traceOut, bootOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdfleet:", err)
		os.Exit(1)
	}
	defer func() {
		if err := shutdownObs(); err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet: telemetry:", err)
		}
	}()
	if obsrv == nil && *metricsDump != "" {
		// Metrics-only observer: no endpoint, no trace sink, but the run is
		// still inspectable post-hoc through the dump.
		obsrv = obs.NewObserver(obs.NewRegistry(), nil)
	}
	if boundAddr != "" {
		fmt.Fprintf(os.Stderr, "awdfleet: telemetry on http://%s/metrics (JSON: /snapshot, drill-down: /stream)\n", boundAddr)
	}

	m := models.ByName(*modelName)
	if m == nil {
		fmt.Fprintf(os.Stderr, "awdfleet: unknown model %q (valid: %s)\n",
			*modelName, strings.Join(models.Names(), ", "))
		os.Exit(1)
	}
	if *streams < 1 || *steps < 1 {
		fmt.Fprintln(os.Stderr, "awdfleet: -streams and -steps must be >= 1")
		os.Exit(1)
	}

	eng := fleet.New(fleet.Config{Workers: *workers, Observer: obsrv})
	var (
		wg     sync.WaitGroup
		alarms atomic.Uint64
		failed atomic.Uint64
	)
	onDecision := func(dec core.Decision, err error) {
		if err != nil {
			failed.Add(1)
		} else if dec.Alarm {
			alarms.Add(1)
		}
		wg.Done()
	}

	// Every stream runs the paper's adaptive detector over its own copy of
	// the plant; the engine groups them into shards itself because the
	// model matrices are bit-identical. The shared observer makes each
	// stream's steps visible on /metrics and its stream-stamped trace
	// events flow to the /stream tail and -trace-out sink.
	if *restoreFrom != "" {
		// Warm start: rebuild every stream recorded in the snapshot (same
		// model and strategy as a cold run) and restore its runtime state —
		// ring, window sums, deadline anchors — through the shared codec.
		blob, err := state.ReadFile(*restoreFrom)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet:", err)
			os.Exit(1)
		}
		dec := state.NewDecoder(blob)
		if err := dec.Header(); err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet:", err)
			os.Exit(1)
		}
		err = eng.Restore(dec, func(id string) (*core.System, func(core.Decision, error), error) {
			det, err := sim.Detector(sim.Config{Model: models.ByName(*modelName), Strategy: sim.Adaptive, Observer: obsrv})
			return det, onDecision, err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "awdfleet: restore %s: %v\n", *restoreFrom, err)
			os.Exit(1)
		}
		*streams = eng.Streams()
		fmt.Printf("restored %d streams from %s\n", *streams, *restoreFrom)
	}
	hs := make([]*fleet.Stream, *streams)
	gens := make([]noise.Gen, *streams)
	for i := range hs {
		id := streamID(i)
		if *restoreFrom != "" {
			h, ok := eng.Stream(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "awdfleet: snapshot has no stream %q (was it written by awdfleet?)\n", id)
				os.Exit(1)
			}
			hs[i] = h
		} else {
			det, err := sim.Detector(sim.Config{Model: models.ByName(*modelName), Strategy: sim.Adaptive, Observer: obsrv})
			if err != nil {
				fmt.Fprintln(os.Stderr, "awdfleet:", err)
				os.Exit(1)
			}
			h, err := eng.AddStream(id, det, onDecision)
			if err != nil {
				fmt.Fprintln(os.Stderr, "awdfleet:", err)
				os.Exit(1)
			}
			hs[i] = h
		}
		// Deterministic per-stream estimates: sensor noise inside the
		// model's ε-ball, the silent steady state a monitoring fleet
		// spends its life in.
		gens[i] = noise.NewBall(fleet.StreamSeed(*seed, id), m.Sys.StateDim(), m.Eps)
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("fleet: %d streams over %q in %d shards, %d workers\n",
		eng.Streams(), m.Name, eng.Shards(), nw)

	u := make([]float64, m.Sys.InputDim())
	start := time.Now()
	var slept time.Duration
	for t := 0; t < *steps; t++ {
		wg.Add(*streams)
		for i, h := range hs {
			if err := h.Post(gens[i].Sample(t), u); err != nil {
				fmt.Fprintln(os.Stderr, "awdfleet:", err)
				os.Exit(1)
			}
		}
		wg.Wait()
		if *tick > 0 && t < *steps-1 {
			time.Sleep(*tick)
			slept += *tick
		}
	}
	elapsed := time.Since(start)
	if *ckptOut != "" {
		enc := state.NewEncoder()
		enc.Header()
		if err := eng.Snapshot(enc); err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet:", err)
			os.Exit(1)
		}
		if err := state.WriteFile(*ckptOut, enc.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint: %d streams, %d bytes -> %s\n", eng.Streams(), enc.Len(), *ckptOut)
	}
	if err := eng.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "awdfleet:", err)
		os.Exit(1)
	}

	total := uint64(*streams) * uint64(*steps)
	busy := elapsed - slept
	if busy <= 0 {
		busy = elapsed
	}
	fmt.Printf("drove %d stream-steps in %v: %.0f steps/sec\n",
		total, elapsed.Round(time.Millisecond), float64(total)/busy.Seconds())
	fmt.Printf("alarms: %d (%.2f%% of steps), errors: %d\n",
		alarms.Load(), 100*float64(alarms.Load())/float64(total), failed.Load())

	if *metricsDump != "" && obsrv.Enabled() {
		if err := dumpMetrics(*metricsDump, obsrv.Registry()); err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet:", err)
			os.Exit(1)
		}
	}
}

// streamID names stream i the way every awdfleet run does; awdtop relies
// on the same shape for its default drill-down target.
func streamID(i int) string { return fmt.Sprintf("stream-%04d", i) }

// dumpMetrics writes the registry's final Prometheus-text state, so a
// finished fleet run is inspectable without a live scrape.
func dumpMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics dump: %w", err)
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metrics dump: %w", err)
	}
	fmt.Fprintf(os.Stderr, "awdfleet: metrics snapshot written to %s\n", path)
	return nil
}
