// Command awdfleet demonstrates the fleet engine: it registers thousands
// of concurrent detector streams over one plant model, drives them in
// lockstep ticks with per-stream noisy estimates, and reports aggregate
// throughput. With -metrics-addr the run exposes the fleet's live
// telemetry (stream/shard gauges, step counters, per-shard batch latency
// histograms, run-queue depth) on Prometheus /metrics plus pprof.
//
// Usage:
//
//	awdfleet -streams 4000 -steps 500
//	awdfleet -model quadrotor -streams 1000 -workers 4 -metrics-addr :9090
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		modelName   = flag.String("model", "aircraft-pitch", "plant model shared by every stream (see awdsim -list)")
		streams     = flag.Int("streams", 1000, "number of concurrent detector streams")
		workers     = flag.Int("workers", 0, "shard-processing goroutines (0 = GOMAXPROCS)")
		steps       = flag.Int("steps", 200, "lockstep ticks to drive the fleet")
		seed        = flag.Uint64("seed", 1, "fleet seed; per-stream seeds derive via fleet.StreamSeed")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar, and pprof on this address (e.g. :9090)")
	)
	flag.Parse()

	obsrv, boundAddr, shutdownObs, err := obs.Bootstrap(*metricsAddr, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdfleet:", err)
		os.Exit(1)
	}
	defer func() {
		if err := shutdownObs(); err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet: telemetry:", err)
		}
	}()
	if boundAddr != "" {
		fmt.Fprintf(os.Stderr, "awdfleet: telemetry on http://%s/metrics\n", boundAddr)
	}

	m := models.ByName(*modelName)
	if m == nil {
		fmt.Fprintf(os.Stderr, "awdfleet: unknown model %q (valid: %s)\n",
			*modelName, strings.Join(models.Names(), ", "))
		os.Exit(1)
	}
	if *streams < 1 || *steps < 1 {
		fmt.Fprintln(os.Stderr, "awdfleet: -streams and -steps must be >= 1")
		os.Exit(1)
	}

	eng := fleet.New(fleet.Config{Workers: *workers, Observer: obsrv})
	var (
		wg     sync.WaitGroup
		alarms atomic.Uint64
		failed atomic.Uint64
	)
	onDecision := func(dec core.Decision, err error) {
		if err != nil {
			failed.Add(1)
		} else if dec.Alarm {
			alarms.Add(1)
		}
		wg.Done()
	}

	// Every stream runs the paper's adaptive detector over its own copy of
	// the plant; the engine groups them into shards itself because the
	// model matrices are bit-identical.
	hs := make([]*fleet.Stream, *streams)
	gens := make([]noise.Gen, *streams)
	for i := range hs {
		id := fmt.Sprintf("stream-%04d", i)
		det, err := sim.Detector(sim.Config{Model: models.ByName(*modelName), Strategy: sim.Adaptive})
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet:", err)
			os.Exit(1)
		}
		h, err := eng.AddStream(id, det, onDecision)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdfleet:", err)
			os.Exit(1)
		}
		hs[i] = h
		// Deterministic per-stream estimates: sensor noise inside the
		// model's ε-ball, the silent steady state a monitoring fleet
		// spends its life in.
		gens[i] = noise.NewBall(fleet.StreamSeed(*seed, id), m.Sys.StateDim(), m.Eps)
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("fleet: %d streams over %q in %d shards, %d workers\n",
		eng.Streams(), m.Name, eng.Shards(), nw)

	u := make([]float64, m.Sys.InputDim())
	start := time.Now()
	for t := 0; t < *steps; t++ {
		wg.Add(*streams)
		for i, h := range hs {
			if err := h.Post(gens[i].Sample(t), u); err != nil {
				fmt.Fprintln(os.Stderr, "awdfleet:", err)
				os.Exit(1)
			}
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	if err := eng.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "awdfleet:", err)
		os.Exit(1)
	}

	total := uint64(*streams) * uint64(*steps)
	fmt.Printf("drove %d stream-steps in %v: %.0f steps/sec\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("alarms: %d (%.2f%% of steps), errors: %d\n",
		alarms.Load(), 100*float64(alarms.Load())/float64(total), failed.Load())
}
