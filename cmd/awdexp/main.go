// Command awdexp regenerates the paper's evaluation artifacts: Table 1,
// Table 2, Fig. 6, Fig. 7, Fig. 8, the extended threat-model scenarios,
// the detection-triggered recovery study, the threshold sweep, and the
// ablation studies.
//
// Usage:
//
//	awdexp -exp all                 # everything, paper-scale (100 runs)
//	awdexp -exp table2 -runs 20     # quicker smoke of one experiment
//	awdexp -exp fig7 -runs 100 -step 5
//	awdexp -exp all -csvdir out/    # also emit machine-readable CSVs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	var (
		which       = flag.String("exp", "all", "experiment: table1|table2|fig6|fig7|fig8|ablations|extended|recovery|threshold|traces|validate|magnitude|overhead|stealthy|all")
		runs        = flag.Int("runs", 100, "Monte-Carlo runs per case (Table 2, Fig 7, ablations)")
		step        = flag.Int("step", 5, "window-size stride for the Fig 7 sweep")
		seed        = flag.Uint64("seed", 2022, "base seed")
		csvdir      = flag.String("csvdir", "", "directory for machine-readable CSV copies (created if missing)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar, and pprof on this address while experiments run")
		traceOut    = flag.String("trace-out", "", "write per-step JSONL trace events to this file (- = stdout)")
	)
	flag.Parse()

	obsrv, boundAddr, shutdownObs, err := obs.Bootstrap(*metricsAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdexp:", err)
		os.Exit(1)
	}
	defer func() {
		if err := shutdownObs(); err != nil {
			fmt.Fprintln(os.Stderr, "awdexp: telemetry:", err)
		}
	}()
	if boundAddr != "" {
		fmt.Fprintf(os.Stderr, "awdexp: telemetry on http://%s/metrics\n", boundAddr)
	}

	if *csvdir != "" {
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "awdexp:", err)
			os.Exit(1)
		}
	}

	emit := func(name string, write func(io.Writer) error) {
		if *csvdir == "" {
			return
		}
		path := filepath.Join(*csvdir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "awdexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := write(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "awdexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "awdexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "awdexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		fmt.Println("== Table 1: simulation settings ==")
		fmt.Println(exp.Table1())
		return nil
	})

	run("fig7", func() error {
		fmt.Println("== Fig 7: window-size profiling (aircraft pitch, 15-step bias) ==")
		pts, err := exp.Fig7(exp.Fig7Config{Runs: *runs, MaxWindow: 100, Step: *step, Seed: *seed, Observer: obsrv})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig7(pts, *runs))
		tol := *runs * 3 / 100 // the paper tolerates 3 of 100
		fmt.Printf("suggested maximum window w_m (tolerating %d FN): %d\n\n",
			tol, exp.SuggestMaxWindow(pts, tol))
		emit("fig7.csv", func(w io.Writer) error { return exp.Fig7CSV(pts, w) })
		return nil
	})

	run("table2", func() error {
		fmt.Println("== Table 2: adaptive vs fixed, 5 simulators x 3 attacks ==")
		rows, err := exp.Table2(exp.Table2Config{Runs: *runs, Seed: *seed, Observer: obsrv})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderTable2(rows, *runs))
		emit("table2.csv", func(w io.Writer) error { return exp.Table2CSV(rows, w) })
		return nil
	})

	run("fig6", func() error {
		fmt.Println("== Fig 6: detection traces, vehicle turning & series RLC ==")
		panels, err := exp.Fig6(exp.Fig6Config{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig6(panels))
		emit("fig6.csv", func(w io.Writer) error { return exp.Fig6CSV(panels, w) })
		return nil
	})

	run("traces", func() error {
		fmt.Println("== All detection traces: 5 simulators x 3 attacks (Fig 6 appendix) ==")
		panels, err := exp.AllTraces(*seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig6(panels))
		emit("traces.csv", func(w io.Writer) error { return exp.Fig6CSV(panels, w) })
		return nil
	})

	run("fig8", func() error {
		fmt.Println("== Fig 8: RC-car testbed, +2.5 m/s speed bias ==")
		r, err := exp.Fig8(exp.Fig8Config{Seed: *seed, Observer: obsrv})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig8(r))
		emit("fig8.csv", func(w io.Writer) error { return exp.Fig8CSV(r, w) })
		return nil
	})

	run("extended", func() error {
		fmt.Println("== Extended threat-model scenarios (freeze / ramp / noise) ==")
		rows, err := exp.ExtendedScenarios(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderTable2(rows, *runs))
		emit("extended.csv", func(w io.Writer) error { return exp.Table2CSV(rows, w) })
		return nil
	})

	run("threshold", func() error {
		fmt.Println("== Threshold (τ) profiling — the Sec. 4.3 knob the paper defers ==")
		pts, err := exp.ThresholdSweep(*runs, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderThresholdSweep(pts, *runs))
		emit("threshold.csv", func(w io.Writer) error { return exp.ThresholdCSV(pts, w) })
		return nil
	})

	run("recovery", func() error {
		fmt.Println("== Detection-triggered recovery (extension, after refs [13, 14]) ==")
		rows, err := exp.RecoveryStudy(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderRecovery(rows, *runs))
		emit("recovery.csv", func(w io.Writer) error { return exp.RecoveryCSV(rows, w) })
		return nil
	})

	run("validate", func() error {
		fmt.Println("== Deadline conservativeness validation (Definition 3.1) ==")
		rows, err := exp.DeadlineValidation(*runs/5, 10, *seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderDeadlineValidation(rows))
		emit("validate.csv", func(w io.Writer) error { return exp.ValidationCSV(rows, w) })
		return nil
	})

	run("magnitude", func() error {
		fmt.Println("== Attack-magnitude sweep: the detectability boundary ==")
		pts, err := exp.MagnitudeSweep(*runs, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderMagnitudeSweep(pts, *runs))
		emit("magnitude.csv", func(w io.Writer) error { return exp.MagnitudeCSV(pts, w) })
		return nil
	})

	run("stealthy", func() error {
		fmt.Println("== Stealthy-adversary impact (the residual-detection limit) ==")
		rows, err := exp.StealthyImpact(*runs/5, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderStealthy(rows, *runs/5))
		emit("stealthy.csv", func(w io.Writer) error { return exp.StealthyCSV(rows, w) })
		return nil
	})

	run("overhead", func() error {
		fmt.Println("== Run-time overhead (the paper's efficiency requirement) ==")
		rows, err := exp.Overhead()
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderOverhead(rows))
		emit("overhead.csv", func(w io.Writer) error { return exp.OverheadCSV(rows, w) })
		return nil
	})

	run("ablations", func() error {
		fmt.Println("== Ablations ==")
		rows, err := exp.AblationComplementary(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderAblation("Complementary detection on/off", rows, *runs))
		emit("ablation_complementary.csv", func(w io.Writer) error { return exp.AblationCSV(rows, w) })

		rows, err = exp.AblationMaxWindow(*runs, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderAblation("Maximum window w_m sweep (aircraft/bias)", rows, *runs))
		emit("ablation_maxwindow.csv", func(w io.Writer) error { return exp.AblationCSV(rows, w) })

		rows, err = exp.AblationCUSUM(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderAblation("Adaptive window vs CUSUM/EWMA baselines (bias)", rows, *runs))
		emit("ablation_baselines.csv", func(w io.Writer) error { return exp.AblationCSV(rows, w) })
		return nil
	})
}
