// awdbench turns `go test -bench` output into the committed benchmark
// ledgers (BENCH_perf.json, BENCH_fleet.json). It reads benchmark lines
// from stdin, collects ns/op, B/op, and allocs/op per benchmark (multiple
// -count runs become a list of ns/op samples), records any custom
// b.ReportMetric units (e.g. the fleet benchmarks' steps/sec) alongside
// them, and writes everything under one phase of the output file,
// preserving whatever the other phase already records — so the "before"
// numbers measured on the baseline survive every "after" re-measurement.
//
// Each section is stamped with the actual commit it was measured at
// (`git rev-parse --short HEAD`, "unknown" outside a git checkout); the
// free-form -note context is recorded separately under "note", so the
// provenance of a ledger row is machine-checkable rather than whatever the
// Makefile's note string claimed.
//
// Usage:
//
//	go test -run '^$' -bench X -benchmem -count 3 . | \
//	    go run ./cmd/awdbench -out BENCH_perf.json -phase after -note "this PR"
//
// A second mode gates scaling flatness instead of recording numbers:
//
//	go run ./cmd/awdbench -check-flat BENCH_fleet.json -phase after \
//	    -base streams=1000 -min-frac 0.35
//
// reads the named ledger and fails (exit 1) when the largest-stream
// BenchmarkFleetSteps row's best steps/sec falls below min-frac times the
// base row's best — the guard `make bench-fleet` runs after re-measuring,
// so a cache-locality regression that only shows at fleet scale cannot
// land silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     []float64            `json:"ns_per_op"`
	BytesPerOp  int64                `json:"bytes_per_op"`
	AllocsPerOp int64                `json:"allocs_per_op"`
	Metrics     map[string][]float64 `json:"metrics,omitempty"`
}

// procsSuffix is the -GOMAXPROCS suffix go test appends to benchmark names.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "BENCH_perf.json", "ledger file to update")
	phase := flag.String("phase", "after", `ledger section to (re)write: "before" or "after"`)
	note := flag.String("note", "", "commit/context note recorded in the section")
	title := flag.String("title", "", "top-level benchmark description (set on first write)")
	keepprocs := flag.Bool("keepprocs", false,
		"keep the -GOMAXPROCS suffix in benchmark names (for -cpu sweeps, so runs at different parallelism stay separate)")
	checkFlat := flag.String("check-flat", "",
		"ledger file to verify instead of record: fail unless the largest-stream row's best steps/sec is at least min-frac of the base row's")
	base := flag.String("base", "streams=1000", "benchmark suffix of the flatness baseline row (with -check-flat)")
	minFrac := flag.Float64("min-frac", 0.35,
		"minimum largest-stream/base steps-per-second ratio accepted by -check-flat")
	scaleKey := flag.String("scale-key", "streams",
		"row-name key whose =N value picks the largest row compared against base (with -check-flat)")
	metric := flag.String("metric", "steps/sec",
		"custom metric unit the -check-flat gate compares (min-frac > 1 turns the gate into a speedup floor)")
	flag.Parse()
	if *phase != "before" && *phase != "after" {
		fmt.Fprintf(os.Stderr, "awdbench: -phase must be before or after, got %q\n", *phase)
		os.Exit(2)
	}
	if *checkFlat != "" {
		if err := checkFlatness(*checkFlat, *phase, *base, *scaleKey, *metric, *minFrac); err != nil {
			fmt.Fprintf(os.Stderr, "awdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	section := map[string]any{"commit": gitCommit()}
	if *note != "" {
		section["note"] = *note
	}
	results := map[string]*result{}
	host := ""

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if strings.HasPrefix(line, "cpu:") {
			host = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		// A result line is "BenchmarkName-P  <iters>  <value> <unit> ...",
		// the value/unit pairs being whatever the benchmark reported
		// (ns/op, -benchmem's B/op and allocs/op, plus custom
		// b.ReportMetric units like the fleet benchmarks' steps/sec).
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := fields[0]
		if !*keepprocs {
			name = procsSuffix.ReplaceAllString(name, "")
		}
		r := results[name]
		if r == nil {
			r = &result{}
			results[name] = r
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = append(r.NsPerOp, v)
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Metrics == nil {
					r.Metrics = map[string][]float64{}
				}
				r.Metrics[unit] = append(r.Metrics[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "awdbench: no benchmark lines found on stdin")
		os.Exit(1)
	}
	for name, r := range results {
		section[name] = r
	}

	ledger := map[string]any{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "awdbench: %s exists but is not JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *title != "" {
		ledger["benchmark"] = *title
	}
	if host != "" {
		ledger["host"] = host
	}
	ledger[*phase] = section

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "awdbench: wrote %d benchmarks to %s (%s)\n", len(results), *out, *phase)
}

// gitCommit returns the short hash of the checkout the benchmarks ran in,
// or "unknown" when git (or a repository) is unavailable — the ledger must
// still be writable from an exported tarball.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// checkFlatness is the -check-flat mode: it loads the phase section of the
// ledger, finds the baseline row (name ending in base) and the row with
// the largest "<scaleKey>=N" value, and compares their best samples of the
// named metric. Best-of-samples makes the gate one-sided against scheduler
// noise: a slow outlier sample cannot fail a healthy tree, only a tree
// whose peak throughput actually regressed fails. With minFrac < 1 this is
// a flatness gate (scaling must not collapse); with minFrac > 1 it is a
// speedup floor (the largest row must beat the base by that factor), which
// is how `make bench-serve` pins batched ingest against batch=1.
func checkFlatness(path, phase, base, scaleKey, metric string, minFrac float64) error {
	scaleRe, err := regexp.Compile(`/` + regexp.QuoteMeta(scaleKey) + `=(\d+)$`)
	if err != nil {
		return fmt.Errorf("scale-key %q: %v", scaleKey, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ledger map[string]json.RawMessage
	if err := json.Unmarshal(data, &ledger); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	raw, ok := ledger[phase]
	if !ok {
		return fmt.Errorf("%s: no %q section", path, phase)
	}
	var section map[string]json.RawMessage
	if err := json.Unmarshal(raw, &section); err != nil {
		return fmt.Errorf("%s: %q section: %v", path, phase, err)
	}
	baseBest, maxBest := 0.0, 0.0
	baseName, maxName, maxScale := "", "", -1
	for name, raw := range section {
		m := scaleRe.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		var r result
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("%s: row %s: %v", path, name, err)
		}
		best := 0.0
		for _, v := range r.Metrics[metric] {
			if v > best {
				best = v
			}
		}
		if best == 0 {
			return fmt.Errorf("%s: row %s has no %s samples", path, name, metric)
		}
		if strings.HasSuffix(name, base) {
			baseName, baseBest = name, best
		}
		if n, _ := strconv.Atoi(m[1]); n > maxScale {
			maxScale, maxName, maxBest = n, name, best
		}
	}
	if baseName == "" {
		return fmt.Errorf("%s: no row matching base %q in %q section", path, base, phase)
	}
	if maxName == baseName {
		return fmt.Errorf("%s: largest %s row is the base row %s; nothing to gate", path, scaleKey, baseName)
	}
	frac := maxBest / baseBest
	fmt.Fprintf(os.Stderr, "awdbench: flatness %s: %s %.0f %s vs %s %.0f %s = %.2f (min %.2f)\n",
		phase, maxName, maxBest, metric, baseName, baseBest, metric, frac, minFrac)
	if frac < minFrac {
		return fmt.Errorf("flatness gate failed: %s runs at %.2f of %s, below min-frac %.2f",
			maxName, frac, baseName, minFrac)
	}
	return nil
}
