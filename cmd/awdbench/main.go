// awdbench turns `go test -bench` output into the committed benchmark
// ledgers (BENCH_perf.json). It reads benchmark lines from stdin, collects
// ns/op, B/op, and allocs/op per benchmark (multiple -count runs become a
// list of ns/op samples), and writes them under one phase of the output
// file, preserving whatever the other phase already records — so the
// "before" numbers measured on the pre-optimization tree survive every
// "after" re-measurement.
//
// Usage:
//
//	go test -run '^$' -bench X -benchmem -count 3 . | \
//	    go run ./cmd/awdbench -out BENCH_perf.json -phase after -note "this PR"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     []float64 `json:"ns_per_op"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkDetectorStep/quadrotor-8   123   877.2 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_perf.json", "ledger file to update")
	phase := flag.String("phase", "after", `ledger section to (re)write: "before" or "after"`)
	note := flag.String("note", "", "commit/context note recorded in the section")
	title := flag.String("title", "", "top-level benchmark description (set on first write)")
	flag.Parse()
	if *phase != "before" && *phase != "after" {
		fmt.Fprintf(os.Stderr, "awdbench: -phase must be before or after, got %q\n", *phase)
		os.Exit(2)
	}

	section := map[string]any{}
	if *note != "" {
		section["commit"] = *note
	}
	results := map[string]*result{}
	host := ""

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if strings.HasPrefix(line, "cpu:") {
			host = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := results[name]
		if r == nil {
			r = &result{}
			results[name] = r
		}
		r.NsPerOp = append(r.NsPerOp, ns)
		if m[3] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "awdbench: no benchmark lines found on stdin")
		os.Exit(1)
	}
	for name, r := range results {
		section[name] = r
	}

	ledger := map[string]any{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "awdbench: %s exists but is not JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *title != "" {
		ledger["benchmark"] = *title
	}
	if host != "" {
		ledger["host"] = host
	}
	ledger[*phase] = section

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "awdbench: wrote %d benchmarks to %s (%s)\n", len(results), *out, *phase)
}
