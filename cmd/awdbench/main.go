// awdbench turns `go test -bench` output into the committed benchmark
// ledgers (BENCH_perf.json, BENCH_fleet.json). It reads benchmark lines
// from stdin, collects ns/op, B/op, and allocs/op per benchmark (multiple
// -count runs become a list of ns/op samples), records any custom
// b.ReportMetric units (e.g. the fleet benchmarks' steps/sec) alongside
// them, and writes everything under one phase of the output file,
// preserving whatever the other phase already records — so the "before"
// numbers measured on the baseline survive every "after" re-measurement.
//
// Usage:
//
//	go test -run '^$' -bench X -benchmem -count 3 . | \
//	    go run ./cmd/awdbench -out BENCH_perf.json -phase after -note "this PR"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     []float64            `json:"ns_per_op"`
	BytesPerOp  int64                `json:"bytes_per_op"`
	AllocsPerOp int64                `json:"allocs_per_op"`
	Metrics     map[string][]float64 `json:"metrics,omitempty"`
}

// procsSuffix is the -GOMAXPROCS suffix go test appends to benchmark names.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "BENCH_perf.json", "ledger file to update")
	phase := flag.String("phase", "after", `ledger section to (re)write: "before" or "after"`)
	note := flag.String("note", "", "commit/context note recorded in the section")
	title := flag.String("title", "", "top-level benchmark description (set on first write)")
	keepprocs := flag.Bool("keepprocs", false,
		"keep the -GOMAXPROCS suffix in benchmark names (for -cpu sweeps, so runs at different parallelism stay separate)")
	flag.Parse()
	if *phase != "before" && *phase != "after" {
		fmt.Fprintf(os.Stderr, "awdbench: -phase must be before or after, got %q\n", *phase)
		os.Exit(2)
	}

	section := map[string]any{}
	if *note != "" {
		section["commit"] = *note
	}
	results := map[string]*result{}
	host := ""

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if strings.HasPrefix(line, "cpu:") {
			host = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		// A result line is "BenchmarkName-P  <iters>  <value> <unit> ...",
		// the value/unit pairs being whatever the benchmark reported
		// (ns/op, -benchmem's B/op and allocs/op, plus custom
		// b.ReportMetric units like the fleet benchmarks' steps/sec).
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := fields[0]
		if !*keepprocs {
			name = procsSuffix.ReplaceAllString(name, "")
		}
		r := results[name]
		if r == nil {
			r = &result{}
			results[name] = r
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = append(r.NsPerOp, v)
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Metrics == nil {
					r.Metrics = map[string][]float64{}
				}
				r.Metrics[unit] = append(r.Metrics[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "awdbench: no benchmark lines found on stdin")
		os.Exit(1)
	}
	for name, r := range results {
		section[name] = r
	}

	ledger := map[string]any{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "awdbench: %s exists but is not JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *title != "" {
		ledger["benchmark"] = *title
	}
	if host != "" {
		ledger["host"] = host
	}
	ledger[*phase] = section

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "awdbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "awdbench: wrote %d benchmarks to %s (%s)\n", len(results), *out, *phase)
}
