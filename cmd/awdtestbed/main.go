// Command awdtestbed replays the paper's Sec. 6.2 testbed experiment end to
// end: the identified RC-car cruise-control model at 4 m/s, a +2.5 m/s bias
// injected into the speed sensor at the end of step 79, and the adaptive
// detector racing the fixed (size 30) detector to the 2 m/s unsafe
// boundary.
//
// Usage:
//
//	awdtestbed           # single seeded run (the Fig. 8 trace)
//	awdtestbed -runs 100 # Monte-Carlo over seeds
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 2022, "base seed")
		runs        = flag.Int("runs", 1, "number of seeded runs")
		fixed       = flag.Int("fixed", 30, "fixed-window baseline size (paper: 30)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar, and pprof on this address while replaying")
		traceOut    = flag.String("trace-out", "", "write per-step JSONL trace events to this file (- = stdout)")
	)
	flag.Parse()

	obsrv, boundAddr, shutdownObs, err := obs.Bootstrap(*metricsAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdtestbed:", err)
		os.Exit(1)
	}
	defer func() {
		if err := shutdownObs(); err != nil {
			fmt.Fprintln(os.Stderr, "awdtestbed: telemetry:", err)
		}
	}()
	if boundAddr != "" {
		fmt.Fprintf(os.Stderr, "awdtestbed: telemetry on http://%s/metrics\n", boundAddr)
	}

	if *runs <= 1 {
		r, err := exp.Fig8(exp.Fig8Config{Seed: *seed, FixedWin: *fixed, Observer: obsrv})
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdtestbed:", err)
			os.Exit(1)
		}
		fmt.Println(exp.RenderFig8(r))
		return
	}

	m := models.TestbedCar()
	adaptiveInTime, fixedInTime, unsafeRuns := 0, 0, 0
	for i := 0; i < *runs; i++ {
		s := *seed + uint64(i)*7919
		attA, err := sim.BuildAttack(m, "bias")
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdtestbed:", err)
			os.Exit(1)
		}
		trA, err := sim.Run(sim.Config{Model: m, Attack: attA, Strategy: sim.Adaptive, Seed: s, Observer: obsrv})
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdtestbed:", err)
			os.Exit(1)
		}
		attF, _ := sim.BuildAttack(m, "bias")
		trF, err := sim.Run(sim.Config{Model: m, Attack: attF, Strategy: sim.FixedWindow, FixedWin: *fixed, Seed: s, Observer: obsrv})
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdtestbed:", err)
			os.Exit(1)
		}
		metA, metF := sim.Analyze(trA), sim.Analyze(trF)
		obsrv.ObserveRun(metA.DetectionDelay, metA.Detected, metA.DeadlineMissed)
		if metA.UnsafeStep >= 0 {
			unsafeRuns++
		}
		if metA.Detected && !metA.DeadlineMissed {
			adaptiveInTime++
		}
		if metF.Detected && !metF.DeadlineMissed {
			fixedInTime++
		}
	}
	fmt.Printf("testbed bias campaign over %d runs:\n", *runs)
	fmt.Printf("  runs reaching the unsafe region: %d\n", unsafeRuns)
	fmt.Printf("  adaptive in-time detections:     %d\n", adaptiveInTime)
	fmt.Printf("  fixed(%d) in-time detections:    %d\n", *fixed, fixedInTime)
}
