// Command awdserve runs the fleet detection engine as a long-lived
// network service: clients open per-tenant detector streams, ingest
// samples over the compact binary protocol (or the HTTP/JSON fallback),
// and receive each stream's decision synchronously. Checkpoint, drain,
// and restore RPCs persist the whole fleet's runtime state through the
// internal/state codec, so a killed server restarted with -restore-from
// continues every decision stream bit-identically to one that never died.
//
// Usage:
//
//	awdserve -addr :7601 -checkpoint-dir /var/lib/awd
//	awdserve -addr :7601 -http-addr :7602 -max-streams-per-tenant 1000
//	awdserve -addr :7601 -checkpoint-dir /var/lib/awd -restore-from fleet.awds
//
// On SIGINT/SIGTERM the server drains ingest, writes a final checkpoint
// (when -checkpoint-dir is set), and exits cleanly.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:0", "TCP address for the binary wire protocol")
		httpAddr    = flag.String("http-addr", "", "optional address for the HTTP/JSON fallback API")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for checkpoint/restore snapshots (empty disables them)")
		restoreFrom = flag.String("restore-from", "", "checkpoint filename under -checkpoint-dir to restore at boot")
		maxPerTen   = flag.Int("max-streams-per-tenant", 0, "per-tenant open-stream quota (0 = unlimited)")
		workers     = flag.Int("workers", 0, "shard-processing goroutines (0 = GOMAXPROCS)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and JSON /snapshot on this address")
		maxInflight = flag.Int("max-inflight", wire.DefaultMaxInflight,
			"per-connection cap on decided-but-unwritten responses (pipelining window backpressure)")
		flushEvery = flag.Duration("flush-interval", wire.DefaultFlushInterval,
			"max time a decided response may wait in the writer's coalescing buffer while the connection stays busy")
	)
	flag.Parse()

	obsrv, boundMetrics, shutdownObs, err := obs.Bootstrap(*metricsAddr, "")
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := shutdownObs(); err != nil {
			fmt.Fprintln(os.Stderr, "awdserve: telemetry:", err)
		}
	}()
	if boundMetrics != "" {
		fmt.Fprintf(os.Stderr, "awdserve: telemetry on http://%s/metrics\n", boundMetrics)
	}

	srv := wire.NewServer(wire.Config{
		CheckpointDir:       *ckptDir,
		MaxStreamsPerTenant: *maxPerTen,
		Workers:             *workers,
		MaxInflight:         *maxInflight,
		FlushInterval:       *flushEvery,
		Observer:            obsrv,
	})
	if *restoreFrom != "" {
		n, err := srv.Restore(*restoreFrom)
		if err != nil {
			fatal(fmt.Errorf("restore %s: %w", *restoreFrom, err))
		}
		fmt.Printf("restored %d streams from %s\n", n, *restoreFrom)
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	// The crash-replay smoke test and scripts parse this exact line.
	fmt.Printf("listening on %s\n", bound)
	if *httpAddr != "" {
		httpBound, err := srv.StartHTTP(*httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("http on %s\n", httpBound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "awdserve: draining")
	srv.Drain()
	if *ckptDir != "" {
		path, n, err := srv.Checkpoint("")
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdserve: final checkpoint:", err)
		} else {
			fmt.Fprintf(os.Stderr, "awdserve: final checkpoint %s (%d bytes)\n", path, n)
		}
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awdserve:", err)
	os.Exit(1)
}
