// Command awdprofile runs the offline profiling workflow of Sec. 4.3 for
// one plant: sweep the fixed detection window (Fig. 7 style) to establish
// the FP/FN trade-off, pick the maximum window w_m from an acceptable
// false-negative budget, then sweep the detection threshold τ (the knob
// the paper defers) around its published value.
//
// Usage:
//
//	awdprofile                      # aircraft pitch, paper-scale
//	awdprofile -model series-rlc -runs 50 -fn-budget 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		modelName   = flag.String("model", "aircraft-pitch", "plant model to profile")
		runs        = flag.Int("runs", 100, "experiments per sweep point")
		maxWin      = flag.Int("max-window", 100, "largest window in the sweep")
		step        = flag.Int("step", 5, "window stride")
		duration    = flag.Int("attack-steps", 15, "bias attack duration (paper: 15)")
		fnBudget    = flag.Int("fn-budget", 3, "acceptable FN experiments per 100 (Sec. 4.3 cut)")
		seed        = flag.Uint64("seed", 2022, "base seed")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar, and pprof on this address while profiling")
		traceOut    = flag.String("trace-out", "", "write per-step JSONL trace events to this file (- = stdout)")
	)
	flag.Parse()

	obsrv, boundAddr, shutdownObs, err := obs.Bootstrap(*metricsAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awdprofile:", err)
		os.Exit(1)
	}
	defer func() {
		if err := shutdownObs(); err != nil {
			fmt.Fprintln(os.Stderr, "awdprofile: telemetry:", err)
		}
	}()
	if boundAddr != "" {
		fmt.Fprintf(os.Stderr, "awdprofile: telemetry on http://%s/metrics\n", boundAddr)
	}

	m := models.ByName(*modelName)
	if m == nil {
		fmt.Fprintf(os.Stderr, "awdprofile: unknown model %q (valid: %s)\n",
			*modelName, strings.Join(models.Names(), ", "))
		os.Exit(1)
	}

	fmt.Printf("Profiling %s: window sweep 0..%d (stride %d), %d runs per point,\n",
		m.Name, *maxWin, *step, *runs)
	fmt.Printf("bias attack of %d steps at step %d\n\n", *duration, m.Attack.BiasStart)

	points := make([]exp.Fig7Point, 0, *maxWin / *step + 1)
	for w := 0; w <= *maxWin; w += *step {
		fp, fn := 0, 0
		for run := 0; run < *runs; run++ {
			att := attack.NewBias(attack.Schedule{
				Start: m.Attack.BiasStart,
				End:   m.Attack.BiasStart + *duration,
			}, m.Attack.Bias)
			fixedWin := w
			if fixedWin == 0 {
				fixedWin = -1 // true zero window
			}
			tr, err := sim.Run(sim.Config{
				Model:    m,
				Attack:   att,
				Strategy: sim.FixedWindow,
				FixedWin: fixedWin,
				Seed:     *seed + uint64(run)*7919,
				Observer: obsrv,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "awdprofile:", err)
				os.Exit(1)
			}
			met := sim.Analyze(tr)
			obsrv.ObserveRun(met.DetectionDelay, met.Detected, met.DeadlineMissed)
			if met.FPRate > sim.FPRateThreshold {
				fp++
			}
			if !met.Detected {
				fn++
			}
		}
		points = append(points, exp.Fig7Point{Window: w, FP: fp, FN: fn})
	}
	fmt.Println(exp.RenderFig7(points, *runs))

	budget := *fnBudget * *runs / 100
	wm := exp.SuggestMaxWindow(points, budget)
	fmt.Printf("Sec. 4.3 cut: largest window with <= %d FN experiments: w_m = %d", budget, wm)
	if m.Name == "aircraft-pitch" {
		fmt.Printf(" (paper picks 40)")
	}
	fmt.Println()
	fmt.Println()

	// Threshold sweep around the published τ (aircraft-pitch only uses the
	// shared exp driver; other plants reuse the same mechanics inline).
	if m.Name == "aircraft-pitch" {
		pts, err := exp.ThresholdSweep(*runs, *seed, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awdprofile:", err)
			os.Exit(1)
		}
		fmt.Println(exp.RenderThresholdSweep(pts, *runs))
	}
}
