package awd

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// scalarConfig builds the doc-comment example plant.
func scalarConfig() DetectorConfig {
	return DetectorConfig{
		A: [][]float64{{1}}, B: [][]float64{{1}}, Dt: 0.02,
		InputLow: []float64{-1}, InputHigh: []float64{1},
		Eps:     0.01,
		SafeLow: []float64{-10}, SafeHigh: []float64{10},
		Tau:       []float64{0.5},
		MaxWindow: 40,
	}
}

func TestDetectorObserverHook(t *testing.T) {
	ring := obs.NewRingSink(16)
	o := NewObserver(NewRegistry(), ring)
	cfg := scalarConfig()
	cfg.Observer = o
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		must(det.Step([]float64{0}, []float64{0}))
	}
	if got := o.Registry().Counter(obs.MetricSteps, "").Value(); got != 5 {
		t.Errorf("step counter = %d, want 5", got)
	}
	if got := len(ring.Events()); got != 5 {
		t.Errorf("trace events = %d, want 5", got)
	}

	// Nil observer keeps working (the disabled fast path).
	det2, err := NewDetector(scalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dec := must(det2.Step([]float64{0}, []float64{0})); dec.Alarm() {
		t.Errorf("clean step alarmed: %+v", dec)
	}
}

func TestDecisionString(t *testing.T) {
	dec := Decision{Step: 142, Window: 12, Deadline: 12, Primary: true, Dims: []int{0, 2}, ComplementaryStep: -1}
	want := "step  142  w=12 d=12  ALARM dims=[0 2]"
	if got := dec.String(); got != want {
		t.Errorf("Decision.String() = %q, want %q", got, want)
	}
	quiet := Decision{Step: 3, Window: 4, Deadline: 6, ComplementaryStep: -1}
	if got := quiet.String(); !strings.HasSuffix(got, "ok") {
		t.Errorf("quiet Decision.String() = %q, want ok suffix", got)
	}
}

func TestScenarioObserverAggregates(t *testing.T) {
	o := NewObserver(nil, nil)
	res, err := RunScenario(ScenarioConfig{
		Model:    "vehicle-turning",
		Attack:   "bias",
		Strategy: "adaptive",
		Seed:     7,
		Observer: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := o.Registry()
	if got := reg.Counter(obs.MetricSteps, "").Value(); got <= 0 {
		t.Errorf("scenario recorded %d steps", got)
	}
	if res.Detected {
		if got := reg.Counter(obs.MetricAlarms, "").Value() +
			reg.Counter(obs.MetricCompAlarms, "").Value(); got <= 0 {
			t.Error("detected scenario left alarm counters at zero")
		}
	}
}
