// Quickstart: wire the adaptive attack detector into a minimal control
// loop you own. The plant here is a scalar integrator x' = x + u kept at a
// set point by a proportional controller; halfway through, an attacker
// starts spoofing the sensor with a constant offset.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	awd "repro"
)

func main() {
	det, err := awd.NewDetector(awd.DetectorConfig{
		// x' = x + u, one control input.
		A:  [][]float64{{1}},
		B:  [][]float64{{1}},
		Dt: 0.02,
		// Actuator range U = [-1, 1].
		InputLow:  []float64{-1},
		InputHigh: []float64{1},
		// Disturbance bound ε and the safe set |x| <= 10.
		Eps:      0.005,
		SafeLow:  []float64{-10},
		SafeHigh: []float64{10},
		// Detection threshold τ and maximum window w_m.
		Tau:       []float64{0.3},
		MaxWindow: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	const (
		setPoint    = 8.5 // near the unsafe boundary: deadlines are tight
		attackStart = 120
		attackBias  = -0.9 // sensor reads low -> controller pushes x up
	)
	x := 0.0
	u := 0.0
	firstAlarm := -1
	for t := 0; t < 240; t++ {
		// Sense (the attacker corrupts the reading after attackStart).
		reading := x
		if t >= attackStart {
			reading += attackBias
		}

		// Detect: one call per control period, with the input that was
		// applied over the preceding period.
		dec, err := det.Step([]float64{reading}, []float64{u})
		if err != nil {
			log.Fatal(err)
		}
		if dec.Alarm() && firstAlarm < 0 {
			firstAlarm = t
			fmt.Printf("ALARM at step %d (window %d, deadline %d)\n",
				t, dec.Window, dec.Deadline)
		}

		// Control from the (possibly corrupted) reading.
		u = clamp(0.4*(setPoint-reading), -1, 1)

		// Plant advances under the true dynamics.
		x = x + u

		if t%40 == 0 || t == attackStart {
			fmt.Printf("t=%3d  x=%6.3f  reading=%6.3f  window=%2d  deadline=%2d\n",
				t, x, reading, dec.Window, dec.Deadline)
		}
	}

	switch {
	case firstAlarm < 0:
		fmt.Println("attack was never detected")
	case firstAlarm-attackStart <= 2:
		fmt.Printf("attack detected %d step(s) after onset — in time\n", firstAlarm-attackStart)
	default:
		fmt.Printf("attack detected with delay %d\n", firstAlarm-attackStart)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
