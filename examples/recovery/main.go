// Recovery: what timely detection buys you. Each plant is hit with its
// bias attack; on the first alarm the loop abandons the compromised
// sensors, dead-reckons the physical state from the Data Logger's last
// trusted estimate, and steers back with LQR (the strategy of the paper's
// companion works, refs [13, 14]). Recovery gated on the adaptive detector
// engages almost immediately; gated on the fixed-window baseline it often
// never engages because the attack stays below the diluted threshold.
//
// Run with:
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	const runs = 20
	fmt.Printf("Detection-triggered LQR recovery, bias scenario, %d runs per case\n\n", runs)

	rows, err := exp.RecoveryStudy(runs, 4242)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderRecovery(rows, runs))

	fmt.Println("Reading: 'alarmed' counts runs where detection fired at all —")
	fmt.Println("recovery cannot engage without an alarm. 'final safe' counts runs")
	fmt.Println("that ended inside the safe set after the recovery maneuver.")
}
