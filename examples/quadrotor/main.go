// Quadrotor: the 12-state Sabatino quadrotor hovering just under a 5 m
// altitude ceiling, attacked with a replay of older (lower-altitude)
// sensor recordings. The replayed data makes the controller climb the real
// vehicle through the ceiling; the adaptive detector catches the replay
// discontinuity immediately because its window has shrunk near the
// boundary, while the fixed-window baseline dilutes it.
//
// Run with:
//
//	go run ./examples/quadrotor
package main

import (
	"fmt"
	"log"

	awd "repro"
)

func main() {
	fmt.Println("Quadrotor altitude hold under a sensor replay attack")
	fmt.Println()

	for _, m := range awd.Models() {
		if m.Name != "quadrotor" {
			continue
		}
		fmt.Printf("plant: %s (n=%d states, m=%d inputs, dt=%gs, w_m=%d)\n\n",
			m.Name, m.StateDim, m.InputDim, m.Dt, m.MaxWindow)
	}

	type outcome struct {
		inTime, detected, runs int
		sumDelay               int
	}
	results := map[string]*outcome{"adaptive": {}, "fixed": {}}

	const runs = 40
	for i := 0; i < runs; i++ {
		seed := uint64(500 + i*13)
		for _, strategy := range []string{"adaptive", "fixed"} {
			res, err := awd.RunScenario(awd.ScenarioConfig{
				Model:    "quadrotor",
				Attack:   "replay",
				Strategy: strategy,
				Seed:     seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			o := results[strategy]
			o.runs++
			if res.Detected {
				o.detected++
				o.sumDelay += res.DetectionDelay
			}
			if res.Detected && !res.DeadlineMissed {
				o.inTime++
			}
		}
	}

	for _, strategy := range []string{"adaptive", "fixed"} {
		o := results[strategy]
		meanDelay := "-"
		if o.detected > 0 {
			meanDelay = fmt.Sprintf("%.1f steps", float64(o.sumDelay)/float64(o.detected))
		}
		fmt.Printf("%-8s  detected %d/%d   in time %d/%d   mean delay %s\n",
			strategy, o.detected, o.runs, o.inTime, o.runs, meanDelay)
	}
	fmt.Println("\nThe adaptive window tracks the reachability deadline near the ceiling,")
	fmt.Println("so the replay discontinuity lands in a short window and fires at once.")
}
