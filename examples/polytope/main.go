// Polytope: deadlines against non-axis-aligned safe sets. The paper's
// Table 1 safe sets are boxes, but the support-function machinery of
// Sec. 3.4 handles any convex polytope directly — and for diagonal safety
// constraints (e.g. "combined current + voltage stress", "x + y clearance")
// the box over-approximation is provably more conservative than the exact
// polytopic test. This example quantifies that gap on a 2-D plant.
//
// Run with:
//
//	go run ./examples/polytope
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/reach"
)

func main() {
	// A gently rotating, marginally stable 2-D plant with two actuators.
	sys, err := lti.New(
		mat.FromRows([][]float64{{1, 0.05}, {-0.02, 1}}),
		mat.Diag(0.08, 0.08),
		nil, 0.05,
	)
	if err != nil {
		log.Fatal(err)
	}
	u := geom.UniformBox(2, -1, 1)
	an, err := reach.New(sys, u, 0.01, 60)
	if err != nil {
		log.Fatal(err)
	}

	// Safety constraint: x₁ + x₂ <= 3 (a diagonal face).
	diag := geom.NewPolytope(geom.NewHalfspace(mat.VecOf(1, 1), 3))
	// The tightest box INSIDE which the diagonal constraint is implied by
	// per-axis bounds would be x_i <= 1.5 each; the loosest box the
	// constraint fits in is x_i <= 3. An implementer stuck with box safe
	// sets must pick one; both misjudge the deadline.
	tightBox := geom.NewBox(
		geom.NewInterval(-1e9, 1.5), geom.NewInterval(-1e9, 1.5))
	looseBox := geom.NewBox(
		geom.NewInterval(-1e9, 3), geom.NewInterval(-1e9, 3))

	fmt.Println("Deadline vs state, diagonal constraint x1+x2 <= 3, horizon 60")
	fmt.Printf("%-14s  %-10s  %-12s  %-12s\n", "state", "polytope", "tight box", "loose box")
	for _, x0 := range []mat.Vec{
		{0, 0}, {1, 1}, {1.3, 1.3}, {2.4, 0.2}, {0.2, 2.4}, {1.45, 1.45},
	} {
		dp, err := an.DeadlinePolytope(x0, 0, diag)
		if err != nil {
			log.Fatal(err)
		}
		dt, err := an.Deadline(x0, 0, tightBox)
		if err != nil {
			log.Fatal(err)
		}
		dl, err := an.Deadline(x0, 0, looseBox)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%4.2f, %4.2f)    %-10d  %-12d  %-12d\n", x0[0], x0[1], dp, dt, dl)
	}

	fmt.Println()
	fmt.Println("The tight box cries wolf for states like (2.4, 0.2) — safe by the")
	fmt.Println("real constraint but outside the per-axis bound — while the loose box")
	fmt.Println("overestimates the deadline near the diagonal, e.g. (1.45, 1.45).")
	fmt.Println("The exact polytopic support test does neither.")
}
