// Cruise: the paper's RC-car testbed scenario (Sec. 6.2) through the public
// API. The car cruises at 4 m/s; at the end of step 79 the speed sensor
// starts reading +2.5 m/s high, so the cruise controller brakes the real
// car toward the 2 m/s unsafe boundary. The adaptive detector must fire
// before the car leaves the safe speed band, while the fixed-window
// baseline reacts late or never.
//
// Run with:
//
//	go run ./examples/cruise
package main

import (
	"fmt"
	"log"

	awd "repro"
)

func main() {
	fmt.Println("RC-car cruise control under a +2.5 m/s speed-sensor bias")
	fmt.Println()

	for _, strategy := range []string{"adaptive", "fixed"} {
		res, err := awd.RunScenario(awd.ScenarioConfig{
			Model:       "testbed-car",
			Attack:      "bias",
			Strategy:    strategy,
			FixedWindow: 30, // the paper's fixed baseline size
			Seed:        2022,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  attack at step %d\n", strategy, res.AttackStart)
		if res.Detected {
			fmt.Printf("          first alarm: step %d (delay %d)\n", res.FirstAlarm, res.DetectionDelay)
		} else {
			fmt.Printf("          first alarm: never\n")
		}
		if res.UnsafeStep >= 0 {
			fmt.Printf("          car left the safe speed band at step %d\n", res.UnsafeStep)
		}
		verdict := "IN TIME — alarm before the unsafe boundary"
		if res.DeadlineMissed {
			verdict = "UNTIMELY — consequences before the alarm"
		}
		fmt.Printf("          verdict: %s\n\n", verdict)
	}

	// The same comparison over many seeds.
	const runs = 50
	adaptiveInTime, fixedInTime := 0, 0
	for i := 0; i < runs; i++ {
		seed := uint64(3000 + i*17)
		a, err := awd.RunScenario(awd.ScenarioConfig{
			Model: "testbed-car", Attack: "bias", Strategy: "adaptive", Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		f, err := awd.RunScenario(awd.ScenarioConfig{
			Model: "testbed-car", Attack: "bias", Strategy: "fixed", FixedWindow: 30, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if a.Detected && !a.DeadlineMissed {
			adaptiveInTime++
		}
		if f.Detected && !f.DeadlineMissed {
			fixedInTime++
		}
	}
	fmt.Printf("over %d seeds: adaptive in time %d/%d, fixed(30) in time %d/%d\n",
		runs, adaptiveInTime, runs, fixedInTime, runs)
}
