// Aircraftpitch: the window-size trade-off study of Sec. 6.1.2 in
// miniature. The CTMS aircraft pitch plant is attacked with a short bias
// burst; fixed detection windows are swept to show false positives falling
// and false negatives rising with window size — the profile that picks the
// maximum window w_m.
//
// Run with:
//
//	go run ./examples/aircraftpitch
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	const runs = 30
	fmt.Printf("Profiling fixed window sizes on aircraft pitch (%d runs each, 15-step bias)\n\n", runs)

	points, err := exp.Fig7(exp.Fig7Config{
		Runs:      runs,
		MaxWindow: 100,
		Step:      10,
		Duration:  15,
		Seed:      77,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderFig7(points, runs))

	tolerance := runs * 3 / 100 // the paper tolerates 3 FN out of 100
	wm := exp.SuggestMaxWindow(points, tolerance)
	fmt.Printf("Largest window with <= %d false-negative experiments: w_m = %d\n", tolerance, wm)
	fmt.Println("(the paper reads the same profile and picks w_m = 40)")
}
