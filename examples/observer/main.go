// Observer: running the detector behind a state estimator. The paper
// assumes fully observable plants; this example shows the pipeline working
// when the sensors deliver only y = C x — the RC car's 384.34·x speed
// output — with a steady-state Kalman observer supplying the state
// estimates the Data Logger consumes. The +2.5 m/s bias attack corrupts
// the *measurement*; the observer dutifully tracks the spoofed speed, and
// the detector catches the induced residual jump.
//
// Run with:
//
//	go run ./examples/observer
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/estim"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
)

func main() {
	m := models.TestbedCar()
	sys := m.Sys
	cOut := sys.C.At(0, 0)

	obs, err := estim.NewObserver(sys, mat.Diag(1e-10), mat.Diag(1e-6), m.X0)
	if err != nil {
		log.Fatal(err)
	}
	det, err := core.New(core.Config{
		Sys:        sys,
		Inputs:     m.U,
		Eps:        m.Eps,
		Safe:       m.Safe,
		Tau:        m.Tau,
		MaxWindow:  m.MaxWindow,
		InitRadius: m.InitRadius,
	})
	if err != nil {
		log.Fatal(err)
	}

	pid := m.Controller()
	sens := noise.NewUniformBox(7, mat.VecOf(m.SensorNoise[0]*cOut)) // output-space noise
	x := m.X0.Clone()
	u := mat.NewVec(1)

	const attackStart = 80
	firstAlarm := -1
	for t := 0; t < 160; t++ {
		// Measure the OUTPUT y = Cx (+ noise), then let the attack bias it.
		y := sys.Output(x).Add(sens.Sample(t))
		if t >= attackStart {
			y[0] += 2.5 // the paper's +2.5 m/s speed bias, in output units
		}

		// Observer turns the (possibly spoofed) output into a state
		// estimate; the detector consumes it like a direct measurement.
		estimate, err := obs.Step(y, u)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := det.Step(estimate, u)
		if err != nil {
			log.Fatal(err)
		}
		if dec.Alarmed() && firstAlarm < 0 && t >= attackStart {
			firstAlarm = t
		}

		raw := pid.UpdateClamped(m.Ref.At(t)-estimate[0], 0, 7.7)
		u = mat.VecOf(raw)
		x = sys.Step(x, u, nil)

		if t%40 == 0 || t == attackStart || t == attackStart+1 {
			fmt.Printf("t=%3d  true=%5.2f m/s  est=%5.2f m/s  window=%d deadline=%d alarm=%v\n",
				t, x[0]*cOut, estimate[0]*cOut, dec.Window, dec.Deadline, dec.Alarmed())
		}
	}

	if firstAlarm < 0 {
		fmt.Println("\nattack was never detected")
		return
	}
	fmt.Printf("\nattack at step %d detected at step %d (delay %d) through the observer\n",
		attackStart, firstAlarm, firstAlarm-attackStart)
}
