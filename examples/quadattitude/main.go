// Quadattitude: the full 12-state quadrotor under multi-loop PID control
// (altitude + three attitude loops via control.MultiPID) with a *partial*
// sensor compromise — a bias on the roll-angle channel only, the paper's
// 0 < ‖e_t‖₀ < n threat case. The detector watches all twelve residual
// dimensions and its alarm attribution (Decision.Dims) points at the
// channel whose dynamics the spoof makes inconsistent — here the lateral
// velocity v, which physically depends on the roll angle the attacker is
// hiding (a biased integrator state is invisible in its own residual, but
// its downstream couplings are not).
//
// Run with:
//
//	go run ./examples/quadattitude
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
)

func main() {
	m := models.Quadrotor()
	sys := m.Sys

	// Multi-loop PID: altitude (thrust) plus roll/pitch/yaw attitude loops
	// (torques), each with derivative action for rate damping.
	mimo, err := control.NewMultiPID(sys.Dt, m.U.Lo(), m.U.Hi(),
		control.Loop{StateDim: 2, InputIdx: 0, Ref: control.ConstantRef(3), Kp: 0.8, Kd: 1}, // z
		control.Loop{StateDim: 6, InputIdx: 1, Ref: control.ConstantRef(0), Kp: 4, Kd: 2.5}, // roll φ
		control.Loop{StateDim: 7, InputIdx: 2, Ref: control.ConstantRef(0), Kp: 4, Kd: 2.5}, // pitch θ
		control.Loop{StateDim: 8, InputIdx: 3, Ref: control.ConstantRef(0), Kp: 2, Kd: 1.5}, // yaw ψ
	)
	if err != nil {
		log.Fatal(err)
	}

	det, err := core.New(core.Config{
		Sys:        sys,
		Inputs:     m.U,
		Eps:        m.Eps,
		Safe:       m.Safe,
		Tau:        m.Tau,
		MaxWindow:  m.MaxWindow,
		InitRadius: m.EstimatorRadius(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Partial compromise: bias only the roll-angle channel (dim 6).
	const attackStart = 150
	bias := mat.NewVec(12)
	bias[6] = 0.12
	mask := make([]bool, 12)
	mask[6] = true
	att := attack.NewMasked(attack.NewBias(attack.Schedule{Start: attackStart}, bias), mask)

	sens := noise.NewUniformBox(11, m.SensorNoise)
	x := m.X0.Clone()
	u := mat.NewVec(4)
	firstAlarm, alarmDim := -1, -1

	for t := 0; t < 300; t++ {
		estimate := att.Apply(t, x.Add(sens.Sample(t)))
		dec, err := det.Step(estimate, u)
		if err != nil {
			log.Fatal(err)
		}
		if dec.Alarmed() && t >= attackStart && firstAlarm < 0 {
			firstAlarm = t
			if len(dec.Dims) > 0 {
				alarmDim = dec.Dims[0]
			}
		}
		u = mimo.Update(t, estimate)
		x = sys.Step(x, u, nil)

		if t%60 == 0 || t == attackStart || t == attackStart+1 {
			fmt.Printf("t=%3d  z=%5.2f  roll=%6.3f (est %6.3f)  y-drift=%6.3f  alarm=%v\n",
				t, x[2], x[6], estimate[6], x[1], dec.Alarmed())
		}
	}

	fmt.Println()
	if firstAlarm < 0 {
		fmt.Println("partial compromise was never detected")
		return
	}
	dimNames := []string{"x", "y", "z", "u", "v", "w", "roll", "pitch", "yaw", "p", "q", "r"}
	name := "?"
	if alarmDim >= 0 && alarmDim < len(dimNames) {
		name = dimNames[alarmDim]
	}
	fmt.Printf("roll-sensor bias at step %d detected at step %d (delay %d)\n",
		attackStart, firstAlarm, firstAlarm-attackStart)
	fmt.Printf("alarm attribution: residual dimension %d (%s)\n", alarmDim, name)
	fmt.Println("— not the roll channel itself: a bias on an integrator state cancels in")
	fmt.Println("its own residual, but the lateral dynamics v̇ = g·roll contradict the")
	fmt.Println("spoofed angle, so the physically coupled channel betrays the attack.")
}
