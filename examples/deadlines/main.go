// Deadlines: how the Detection Deadline Estimator sees each plant. For
// every Table 1 simulator this walks the controlled state from its
// operating point toward the safe boundary and prints the reachability
// deadline at each position — the signal that drives the adaptive window.
//
// Run with:
//
//	go run ./examples/deadlines
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/deadline"
	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/reach"
)

func main() {
	for _, m := range models.All() {
		an, err := reach.New(m.Sys, m.U, m.Eps, m.MaxWindow)
		if err != nil {
			log.Fatal(err)
		}
		est, err := deadline.New(an, m.Safe, m.EstimatorRadius())
		if err != nil {
			log.Fatal(err)
		}

		iv := m.Safe.Interval(m.CtrlDim)
		if math.IsInf(iv.Hi, 1) && math.IsInf(iv.Lo, -1) {
			continue
		}
		// Walk the controlled dimension from the origin-side toward the
		// nearest bounded edge.
		edge := iv.Hi
		if math.IsInf(edge, 1) {
			edge = iv.Lo
		}
		const samples = 24
		vals := make([]float64, samples)
		for i := 0; i < samples; i++ {
			x := m.X0.Clone()
			x[m.CtrlDim] = edge * float64(i) / float64(samples-1)
			vals[i] = float64(est.FromState(x))
		}
		fmt.Print(exp.RenderChart(
			fmt.Sprintf("%s: deadline t_d vs controlled state (0 → boundary %.3g), w_m = %d",
				m.Name, edge, m.MaxWindow),
			64, 9,
			exp.Series{Name: "deadline (steps)", Values: vals},
		))
		fmt.Println()
	}
	fmt.Println("Deadlines collapse as the state nears the boundary — the window")
	fmt.Println("follows, trading false alarms for guaranteed timeliness.")
}
