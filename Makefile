GO ?= go

.PHONY: check vet lint build test test-race fuzz-smoke bench-obs bench-perf bench-fleet bench-fleet-smoke bench-serve bench-serve-smoke clean

# The full gate: what CI (and every PR) must pass.
check: vet lint build test-race

vet:
	$(GO) vet ./...

# Project-specific analyzers (detorder, errflow, floateq, lockflow,
# nopanic, obsguard, statepair, wallclock) — see internal/lint and README
# "Static analysis"; `go run ./cmd/awdlint -list` prints the catalogue.
lint:
	$(GO) run ./cmd/awdlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short fuzzing pass over the native fuzz targets; CI runs the same smoke.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/detect/ -run '^$$' -fuzz '^FuzzNoEscape$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logger/ -run '^$$' -fuzz '^FuzzBufferHoldRelease$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzSupportFunction$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzReachBoundFinite$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzStepperMatchesReachBox$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fleet/ -run '^$$' -fuzz '^FuzzBatchMatchesSerial$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzFrameRoundTrip$$' -fuzztime $(FUZZTIME)

# Re-measure the detector-step overhead numbers recorded in BENCH_obs.json:
# per-step observation cost plus the snapshot/rollup read path the console
# polls (must stay O(shards), see internal/obs/snapshot_test.go).
bench-obs:
	$(GO) test -run '^$$' -bench 'DetectorStepObservability|ObserveStep' -benchmem -count 3 .
	$(GO) test -run '^$$' -bench 'RegistrySnapshot|FleetRollup' -benchmem -count 3 ./internal/obs/

# Re-measure the hot-path numbers ledgered in BENCH_perf.json. Updates only
# the "after" section; the committed "before" baseline (pre-optimization
# tree) is preserved by cmd/awdbench.
bench-perf:
	$(GO) test -run '^$$' -bench 'DetectorStep$$|DeadlineEstimation|Table2Campaign' -benchmem -count 3 . \
		| $(GO) run ./cmd/awdbench -out BENCH_perf.json -phase after \
			-note "this PR (zero-alloc hot path, warm-started deadline search, shared Analysis cache)"

# Re-measure the fleet-vs-baseline throughput ledgered in BENCH_fleet.json.
# Unlike BENCH_perf.json, both phases measure the same tree: "before" is
# the naive goroutine-per-stream baseline, "after" the sharded batch-kernel
# fleet engine, so the ratio is the engine's speedup at equal detection
# semantics (the differential tests pin the two bit-identical).
# FLEET_MIN_FRAC is the scaling-flatness floor the re-measurement enforces:
# the largest-stream row (streams=100000) must run at at least this
# fraction of the 1000-stream rate. The measured ratio on the reference
# 1-vCPU box is ~0.42–0.45 (the 100000-stream working set is ~300 MB of
# per-stream detector state, far past every cache level, so each step pays
# DRAM latency the 1000-stream run never sees); 0.35 leaves noise headroom
# while still failing the pre-batching engine, which measured ~0.32.
FLEET_MIN_FRAC ?= 0.35
bench-fleet:
	$(GO) test -run '^$$' -bench 'NaiveSteps' -benchmem -benchtime 2s -count 3 ./internal/fleet/ \
		| $(GO) run ./cmd/awdbench -out BENCH_fleet.json -phase before \
			-title "one fleet tick: every stream ingests a sample and gets its decision (aircraft-pitch, adaptive)" \
			-note "naive baseline: one goroutine per stream, channel per sample"
	$(GO) test -run '^$$' -bench 'FleetSteps' -benchmem -benchtime 2s -count 3 ./internal/fleet/ \
		| $(GO) run ./cmd/awdbench -out BENCH_fleet.json -phase after \
			-note "fleet engine: sharded batch kernels, batched deadline/slide passes, auto-tuned shards"
	$(GO) run ./cmd/awdbench -check-flat BENCH_fleet.json -phase after \
		-base streams=1000 -min-frac $(FLEET_MIN_FRAC)

# Short flatness smoke for CI: two fleet sizes, a few iterations each, into
# a throwaway ledger, then the same gate at a looser floor (one-shot
# samples on shared runners are noisier than the committed 3x2s ledger;
# 20000 streams already leaves every cache level while keeping the setup
# cost CI-friendly — measured ~0.53 on the reference box).
FLEET_SMOKE_MIN_FRAC ?= 0.40
bench-fleet-smoke:
	$(GO) test -run '^$$' -bench 'FleetSteps/streams=(1000|20000)$$' -benchmem -benchtime 3x ./internal/fleet/ \
		| $(GO) run ./cmd/awdbench -out /tmp/bench_fleet_smoke.json -phase after -note "CI flatness smoke"
	$(GO) run ./cmd/awdbench -check-flat /tmp/bench_fleet_smoke.json -phase after \
		-base streams=1000 -min-frac $(FLEET_SMOKE_MIN_FRAC)

# Re-measure the fleet-server ingest and checkpoint numbers ledgered in
# BENCH_serve.json. Like BENCH_fleet.json both phases measure the same
# tree: "before" is one sample round trip over the HTTP/JSON fallback,
# "after" the binary protocol — serial frame-per-sample, batched
# (MsgIngestBatch at several batch sizes), pipelined (async in-flight
# window), and multi-connection — plus the whole-fleet snapshot/restore
# codec throughput behind Checkpoint/Restore.
# SERVE_MIN_SPEEDUP is the amortization floor the re-measurement enforces:
# the largest batch row's per-sample throughput must be at least this
# multiple of the batch=1 row's (measured ~20x on the reference 1-vCPU
# box; 10x leaves noise headroom while failing any tree whose batch path
# degenerates back to per-sample cost).
SERVE_MIN_SPEEDUP ?= 10
bench-serve:
	$(GO) test -run '^$$' -bench 'ServeIngestHTTP' -benchmem -benchtime 1s -count 3 ./internal/wire/ \
		| $(GO) run ./cmd/awdbench -out BENCH_serve.json -phase before \
			-title "fleet server: one ingest round trip on loopback, and whole-fleet checkpoint/restore (aircraft-pitch, adaptive)" \
			-note "HTTP/JSON fallback: one POST /v1/ingest per sample"
	$(GO) test -run '^$$' -bench 'ServeIngestWire|ServeIngestPipelined|FleetSnapshot|FleetRestore' -benchmem -benchtime 1s -count 3 ./internal/wire/ \
		| $(GO) run ./cmd/awdbench -out BENCH_serve.json -phase after \
			-note "binary protocol: serial, batched (MsgIngestBatch), pipelined, multi-connection (this PR)"
	$(GO) run ./cmd/awdbench -check-flat BENCH_serve.json -phase after \
		-scale-key batch -base batch=1 -metric samples/sec -min-frac $(SERVE_MIN_SPEEDUP)

# Short batching smoke for CI: the smallest and largest batch rows, a few
# iterations each, into a throwaway ledger, then the same gate at a looser
# floor (one-shot samples on shared runners are noisier than the committed
# 3x1s ledger).
SERVE_SMOKE_MIN_SPEEDUP ?= 6
bench-serve-smoke:
	$(GO) test -run '^$$' -bench 'ServeIngestWireBatch/batch=(1|256)$$' -benchmem -benchtime 20x ./internal/wire/ \
		| $(GO) run ./cmd/awdbench -out /tmp/bench_serve_smoke.json -phase after -note "CI batching smoke"
	$(GO) run ./cmd/awdbench -check-flat /tmp/bench_serve_smoke.json -phase after \
		-scale-key batch -base batch=1 -metric samples/sec -min-frac $(SERVE_SMOKE_MIN_SPEEDUP)

clean:
	$(GO) clean ./...
