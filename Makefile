GO ?= go

.PHONY: check vet lint build test test-race fuzz-smoke bench-obs bench-perf clean

# The full gate: what CI (and every PR) must pass.
check: vet lint build test-race

vet:
	$(GO) vet ./...

# Project-specific analyzers (floateq, obsguard, nopanic, errflow) — see
# internal/lint and README "Static analysis".
lint:
	$(GO) run ./cmd/awdlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short fuzzing pass over the native fuzz targets; CI runs the same smoke.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/detect/ -run '^$$' -fuzz '^FuzzNoEscape$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logger/ -run '^$$' -fuzz '^FuzzBufferHoldRelease$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzSupportFunction$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzReachBoundFinite$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzStepperMatchesReachBox$$' -fuzztime $(FUZZTIME)

# Re-measure the detector-step overhead numbers recorded in BENCH_obs.json.
bench-obs:
	$(GO) test -run '^$$' -bench 'DetectorStepObservability|ObserveStep' -benchmem -count 3 .

# Re-measure the hot-path numbers ledgered in BENCH_perf.json. Updates only
# the "after" section; the committed "before" baseline (pre-optimization
# tree) is preserved by cmd/awdbench.
bench-perf:
	$(GO) test -run '^$$' -bench 'DetectorStep$$|DeadlineEstimation|Table2Campaign' -benchmem -count 3 . \
		| $(GO) run ./cmd/awdbench -out BENCH_perf.json -phase after \
			-note "this PR (zero-alloc hot path, warm-started deadline search, shared Analysis cache)"

clean:
	$(GO) clean ./...
