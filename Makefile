GO ?= go

.PHONY: check vet build test test-race bench-obs clean

# The full gate: what CI (and every PR) must pass.
check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Re-measure the detector-step overhead numbers recorded in BENCH_obs.json.
bench-obs:
	$(GO) test -run '^$$' -bench 'DetectorStepObservability|ObserveStep' -benchmem -count 3 .

clean:
	$(GO) clean ./...
