GO ?= go

.PHONY: check vet lint build test test-race fuzz-smoke bench-obs bench-perf bench-fleet bench-serve clean

# The full gate: what CI (and every PR) must pass.
check: vet lint build test-race

vet:
	$(GO) vet ./...

# Project-specific analyzers (detorder, errflow, floateq, lockflow,
# nopanic, obsguard, statepair, wallclock) — see internal/lint and README
# "Static analysis"; `go run ./cmd/awdlint -list` prints the catalogue.
lint:
	$(GO) run ./cmd/awdlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short fuzzing pass over the native fuzz targets; CI runs the same smoke.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/detect/ -run '^$$' -fuzz '^FuzzNoEscape$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logger/ -run '^$$' -fuzz '^FuzzBufferHoldRelease$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzSupportFunction$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzReachBoundFinite$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/reach/ -run '^$$' -fuzz '^FuzzStepperMatchesReachBox$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fleet/ -run '^$$' -fuzz '^FuzzBatchMatchesSerial$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzFrameRoundTrip$$' -fuzztime $(FUZZTIME)

# Re-measure the detector-step overhead numbers recorded in BENCH_obs.json:
# per-step observation cost plus the snapshot/rollup read path the console
# polls (must stay O(shards), see internal/obs/snapshot_test.go).
bench-obs:
	$(GO) test -run '^$$' -bench 'DetectorStepObservability|ObserveStep' -benchmem -count 3 .
	$(GO) test -run '^$$' -bench 'RegistrySnapshot|FleetRollup' -benchmem -count 3 ./internal/obs/

# Re-measure the hot-path numbers ledgered in BENCH_perf.json. Updates only
# the "after" section; the committed "before" baseline (pre-optimization
# tree) is preserved by cmd/awdbench.
bench-perf:
	$(GO) test -run '^$$' -bench 'DetectorStep$$|DeadlineEstimation|Table2Campaign' -benchmem -count 3 . \
		| $(GO) run ./cmd/awdbench -out BENCH_perf.json -phase after \
			-note "this PR (zero-alloc hot path, warm-started deadline search, shared Analysis cache)"

# Re-measure the fleet-vs-baseline throughput ledgered in BENCH_fleet.json.
# Unlike BENCH_perf.json, both phases measure the same tree: "before" is
# the naive goroutine-per-stream baseline, "after" the sharded batch-kernel
# fleet engine, so the ratio is the engine's speedup at equal detection
# semantics (the differential tests pin the two bit-identical).
bench-fleet:
	$(GO) test -run '^$$' -bench 'NaiveSteps' -benchmem -benchtime 2s -count 3 ./internal/fleet/ \
		| $(GO) run ./cmd/awdbench -out BENCH_fleet.json -phase before \
			-title "one fleet tick: every stream ingests a sample and gets its decision (aircraft-pitch, adaptive)" \
			-note "naive baseline: one goroutine per stream, channel per sample"
	$(GO) test -run '^$$' -bench 'FleetSteps' -benchmem -benchtime 2s -count 3 ./internal/fleet/ \
		| $(GO) run ./cmd/awdbench -out BENCH_fleet.json -phase after \
			-note "fleet engine: sharded batch-kernel execution (this PR)"

# Re-measure the fleet-server ingest and checkpoint numbers ledgered in
# BENCH_serve.json. Like BENCH_fleet.json both phases measure the same
# tree: "before" is one sample round trip over the HTTP/JSON fallback,
# "after" the same trip over the length-prefixed binary protocol, plus the
# whole-fleet snapshot/restore codec throughput behind Checkpoint/Restore.
bench-serve:
	$(GO) test -run '^$$' -bench 'ServeIngestHTTP' -benchmem -benchtime 1s -count 3 ./internal/wire/ \
		| $(GO) run ./cmd/awdbench -out BENCH_serve.json -phase before \
			-title "fleet server: one ingest round trip on loopback, and whole-fleet checkpoint/restore (aircraft-pitch, adaptive)" \
			-note "HTTP/JSON fallback: one POST /v1/ingest per sample"
	$(GO) test -run '^$$' -bench 'ServeIngestWire|FleetSnapshot|FleetRestore' -benchmem -benchtime 1s -count 3 ./internal/wire/ \
		| $(GO) run ./cmd/awdbench -out BENCH_serve.json -phase after \
			-note "binary protocol (length-prefixed frames) and the versioned state codec (this PR)"

clean:
	$(GO) clean ./...
