// Package recovery implements what happens after the detector fires: the
// real-time attack-recovery strategy of the paper's companion works —
// Zhang et al., "Real-Time Recovery for Cyber-Physical Systems using
// Linear Approximations" (RTSS 2020, reference [13], which also supplies
// the Data Logger protocol) and "Real-Time Attack-Recovery for
// Cyber-Physical Systems using Linear-Quadratic Regulator" (EMSOFT 2021,
// reference [14]).
//
// Once sensors are deemed compromised they cannot be trusted for feedback.
// Recovery therefore (1) dead-reckons the current physical state by rolling
// the linear model forward from the last trusted estimate with the recorded
// control inputs, and (2) steers that virtual state back to a safe target
// with an LQR state-feedback law, saturated to the actuator range.
package recovery

import (
	"fmt"

	"repro/internal/mat"
)

// LQR holds a discrete-time linear-quadratic regulator design for
// x' = A x + B u with stage cost xᵀQx + uᵀRu.
type LQR struct {
	// Gains[k] is the feedback gain at k steps from the horizon end for the
	// finite-horizon design; for the infinite-horizon design there is a
	// single stationary gain.
	gains []*mat.Dense
}

// FiniteHorizonLQR solves the backward Riccati recursion over the given
// horizon with terminal cost Qf (nil = Q):
//
//	P_N = Qf
//	K_k = (R + Bᵀ P_{k+1} B)⁻¹ Bᵀ P_{k+1} A
//	P_k = Q + Aᵀ P_{k+1} (A − B K_k)
//
// returning the time-varying gain schedule K_0..K_{N−1}.
func FiniteHorizonLQR(a, b, q, r, qf *mat.Dense, horizon int) (*LQR, error) {
	n, m := a.Rows(), b.Cols()
	if a.Cols() != n {
		return nil, fmt.Errorf("recovery: A must be square")
	}
	if b.Rows() != n {
		return nil, fmt.Errorf("recovery: B rows %d != %d", b.Rows(), n)
	}
	if q.Rows() != n || q.Cols() != n {
		return nil, fmt.Errorf("recovery: Q must be %dx%d", n, n)
	}
	if r.Rows() != m || r.Cols() != m {
		return nil, fmt.Errorf("recovery: R must be %dx%d", m, m)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("recovery: horizon %d must be >= 1", horizon)
	}
	if qf == nil {
		qf = q
	}
	if qf.Rows() != n || qf.Cols() != n {
		return nil, fmt.Errorf("recovery: Qf must be %dx%d", n, n)
	}

	at, bt := a.T(), b.T()
	p := qf.Clone()
	gains := make([]*mat.Dense, horizon)
	for k := horizon - 1; k >= 0; k-- {
		btp := bt.Mul(p)
		s := r.Add(btp.Mul(b))
		sInv, err := mat.Inverse(s)
		if err != nil {
			return nil, fmt.Errorf("recovery: R + BᵀPB singular: %w", err)
		}
		kGain := sInv.Mul(btp).Mul(a)
		gains[k] = kGain
		p = q.Add(at.Mul(p).Mul(a.Sub(b.Mul(kGain))))
	}
	return &LQR{gains: gains}, nil
}

// InfiniteHorizonLQR iterates the Riccati recursion to stationarity and
// returns a single-gain regulator. It fails with an error when the
// recursion does not settle (e.g. uncontrollable unstable modes).
func InfiniteHorizonLQR(a, b, q, r *mat.Dense, maxIter int, tol float64) (*LQR, error) {
	if maxIter <= 0 {
		maxIter = 10000
	}
	if tol <= 0 {
		tol = 1e-11
	}
	at, bt := a.T(), b.T()
	p := q.Clone()
	var gain *mat.Dense
	for iter := 0; iter < maxIter; iter++ {
		btp := bt.Mul(p)
		s := r.Add(btp.Mul(b))
		sInv, err := mat.Inverse(s)
		if err != nil {
			return nil, fmt.Errorf("recovery: R + BᵀPB singular: %w", err)
		}
		kGain := sInv.Mul(btp).Mul(a)
		next := q.Add(at.Mul(p).Mul(a.Sub(b.Mul(kGain))))
		diff := next.Sub(p).NormInf()
		p = next
		gain = kGain
		if diff < tol*(1+p.NormInf()) {
			return &LQR{gains: []*mat.Dense{gain}}, nil
		}
	}
	return nil, fmt.Errorf("recovery: Riccati iteration did not converge")
}

// Horizon returns the number of scheduled gains (1 for infinite-horizon).
func (l *LQR) Horizon() int { return len(l.gains) }

// Gain returns the feedback gain for step k of the recovery maneuver
// (clamped to the last gain when k exceeds the schedule — the stationary
// tail).
func (l *LQR) Gain(k int) *mat.Dense {
	if k < 0 {
		k = 0
	}
	if k >= len(l.gains) {
		k = len(l.gains) - 1
	}
	return l.gains[k]
}

// Control returns u = −K_k (x − target): feedback toward the target state.
func (l *LQR) Control(k int, x, target mat.Vec) mat.Vec {
	return l.Gain(k).MulVec(x.Sub(target)).Scale(-1)
}
