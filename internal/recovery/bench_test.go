package recovery

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

func BenchmarkInfiniteHorizonLQR(b *testing.B) {
	sys := lti.MustNew(
		mat.FromRows([][]float64{{1, 0.1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0.005, 0.1)),
		nil, 0.1,
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InfiniteHorizonLQR(sys.A, sys.B, mat.Identity(2), mat.Diag(0.1), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryControllerStep(b *testing.B) {
	sys := lti.MustNew(
		mat.FromRows([][]float64{{1, 0.1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0.005, 0.1)),
		nil, 0.1,
	)
	lqr, err := InfiniteHorizonLQR(sys.A, sys.B, mat.Identity(2), mat.Diag(0.1), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := NewController(sys, lqr, mat.VecOf(1, 0), nil, mat.NewVec(2), geom.UniformBox(1, -5, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctl.Step()
	}
}
