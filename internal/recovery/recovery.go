package recovery

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

// DeadReckoner rolls the plant model forward from the last trusted state
// estimate using the recorded control inputs — the linear-approximation
// state reconstruction of [13]. Because the model is LTI and the inputs are
// known exactly, the reckoned state differs from the true state only by the
// accumulated bounded disturbance.
type DeadReckoner struct {
	sys *lti.System
	x   mat.Vec
}

// NewDeadReckoner starts from the trusted state estimate.
func NewDeadReckoner(sys *lti.System, trusted mat.Vec) *DeadReckoner {
	if len(trusted) != sys.StateDim() {
		panic(fmt.Sprintf("recovery: trusted state dimension %d, want %d", len(trusted), sys.StateDim()))
	}
	return &DeadReckoner{sys: sys, x: trusted.Clone()}
}

// Advance applies one recorded input to the virtual state.
func (d *DeadReckoner) Advance(u mat.Vec) {
	d.x = d.sys.Step(d.x, u, nil)
}

// AdvanceAll applies a sequence of recorded inputs.
func (d *DeadReckoner) AdvanceAll(us []mat.Vec) {
	for _, u := range us {
		d.Advance(u)
	}
}

// State returns a copy of the current virtual state.
func (d *DeadReckoner) State() mat.Vec { return d.x.Clone() }

// Controller executes the recovery maneuver: LQR feedback on the
// dead-reckoned state toward a target inside the safe set, with actuator
// saturation. Sensors are never consulted after engagement.
type Controller struct {
	sys    *lti.System
	lqr    *LQR
	target mat.Vec
	uff    mat.Vec // feedforward holding the target as an equilibrium
	uLo    mat.Vec
	uHi    mat.Vec

	reck *DeadReckoner
	step int
}

// NewController builds a recovery controller.
//
// trusted is the last trustworthy state estimate (from the Data Logger),
// recordedInputs the inputs applied since that estimate (so the reckoner
// can catch up to "now"), target the state to steer to, and inputs the
// actuator range U.
func NewController(sys *lti.System, lqr *LQR, trusted mat.Vec, recordedInputs []mat.Vec,
	target mat.Vec, inputs geom.Box) (*Controller, error) {
	if lqr == nil {
		return nil, fmt.Errorf("recovery: nil LQR design")
	}
	if len(target) != sys.StateDim() {
		return nil, fmt.Errorf("recovery: target dimension %d, want %d", len(target), sys.StateDim())
	}
	if inputs.Dim() != sys.InputDim() {
		return nil, fmt.Errorf("recovery: input box dimension %d, want %d", inputs.Dim(), sys.InputDim())
	}
	reck := NewDeadReckoner(sys, trusted)
	reck.AdvanceAll(recordedInputs)
	return &Controller{
		sys:    sys,
		lqr:    lqr,
		target: target.Clone(),
		uff:    feedforward(sys, target),
		uLo:    inputs.Lo(),
		uHi:    inputs.Hi(),
		reck:   reck,
	}, nil
}

// feedforward solves B u = (I − A) target in the least-squares sense via
// Householder QR, yielding the constant input that makes target an
// equilibrium (zero when B is rank-deficient — the feedback term then does
// its best alone).
func feedforward(sys *lti.System, target mat.Vec) mat.Vec {
	rhs := target.Sub(sys.A.MulVec(target)) // (I − A) target
	sol, err := mat.LeastSquares(sys.B, rhs)
	if err != nil {
		return mat.NewVec(sys.InputDim())
	}
	return sol
}

// State returns the controller's current dead-reckoned state.
func (c *Controller) State() mat.Vec { return c.reck.State() }

// Step computes the next recovery input from the virtual state, applies it
// to the reckoner, and returns it. Call once per control period and apply
// the returned input to the real actuators.
func (c *Controller) Step() mat.Vec {
	u := c.lqr.Control(c.step, c.reck.State(), c.target).Add(c.uff)
	u = control.Saturate(u, c.uLo, c.uHi)
	c.reck.Advance(u)
	c.step++
	return u
}

// Steps returns how many recovery inputs have been issued.
func (c *Controller) Steps() int { return c.step }
