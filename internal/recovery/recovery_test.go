package recovery

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/noise"
)

func doubleIntegrator(t *testing.T) *lti.System {
	t.Helper()
	sys, err := lti.New(
		mat.FromRows([][]float64{{1, 0.1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0.005, 0.1)),
		nil, 0.1,
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFiniteHorizonLQRScalar(t *testing.T) {
	// Scalar x' = x + u, Q = 1, R = 1, horizon 1, Qf = Q:
	// K_0 = (1 + 1·1·1)⁻¹ · 1·1·1 = 0.5.
	l, err := FiniteHorizonLQR(mat.Diag(1), mat.Diag(1), mat.Diag(1), mat.Diag(1), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Gain(0).At(0, 0)-0.5) > 1e-12 {
		t.Errorf("K_0 = %v, want 0.5", l.Gain(0).At(0, 0))
	}
}

func TestFiniteHorizonLQRValidation(t *testing.T) {
	a, b, q, r := mat.Diag(1), mat.Diag(1), mat.Diag(1), mat.Diag(1)
	cases := []func() (*LQR, error){
		func() (*LQR, error) { return FiniteHorizonLQR(mat.NewDense(1, 2), b, q, r, nil, 5) },
		func() (*LQR, error) { return FiniteHorizonLQR(a, mat.NewDense(2, 1), q, r, nil, 5) },
		func() (*LQR, error) { return FiniteHorizonLQR(a, b, mat.Identity(2), r, nil, 5) },
		func() (*LQR, error) { return FiniteHorizonLQR(a, b, q, mat.Identity(2), nil, 5) },
		func() (*LQR, error) { return FiniteHorizonLQR(a, b, q, r, mat.Identity(2), 5) },
		func() (*LQR, error) { return FiniteHorizonLQR(a, b, q, r, nil, 0) },
	}
	for i, fn := range cases {
		if _, err := fn(); err == nil {
			t.Errorf("case %d: invalid design accepted", i)
		}
	}
}

func TestInfiniteHorizonLQRStabilizes(t *testing.T) {
	sys := doubleIntegrator(t)
	l, err := InfiniteHorizonLQR(sys.A, sys.B, mat.Identity(2), mat.Diag(0.1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Horizon() != 1 {
		t.Errorf("stationary design has %d gains", l.Horizon())
	}
	// Closed loop from a disturbed state must converge to the origin.
	x := mat.VecOf(3, -2)
	for i := 0; i < 300; i++ {
		u := l.Control(i, x, mat.NewVec(2))
		x = sys.Step(x, u, nil)
	}
	if x.Norm2() > 1e-3 {
		t.Errorf("closed loop did not converge: %v", x)
	}
}

func TestGainScheduleClamping(t *testing.T) {
	sys := doubleIntegrator(t)
	l, err := FiniteHorizonLQR(sys.A, sys.B, mat.Identity(2), mat.Diag(1), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Horizon() != 5 {
		t.Fatalf("horizon = %d", l.Horizon())
	}
	if !l.Gain(99).Equal(l.Gain(4), 0) || !l.Gain(-3).Equal(l.Gain(0), 0) {
		t.Error("gain index clamping wrong")
	}
}

func TestDeadReckonerMatchesNoiselessPlant(t *testing.T) {
	sys := doubleIntegrator(t)
	x := mat.VecOf(1, 0.5)
	reck := NewDeadReckoner(sys, x)
	src := noise.NewSource(3)
	for i := 0; i < 50; i++ {
		u := mat.VecOf(src.Uniform(-2, 2))
		x = sys.Step(x, u, nil)
		reck.Advance(u)
	}
	if !reck.State().Equal(x, 1e-12) {
		t.Errorf("reckoner %v diverged from plant %v", reck.State(), x)
	}
}

func TestDeadReckonerErrorBoundedByDisturbance(t *testing.T) {
	// With bounded disturbance the reckoning error stays within the
	// geometric accumulation bound Σ‖A‖^k ε for this contraction-free A.
	sys := doubleIntegrator(t)
	const eps = 0.001
	x := mat.VecOf(0, 0)
	reck := NewDeadReckoner(sys, x)
	ball := noise.NewBall(4, 2, eps)
	src := noise.NewSource(5)
	const steps = 30
	for i := 0; i < steps; i++ {
		u := mat.VecOf(src.Uniform(-1, 1))
		x = sys.Step(x, u, ball.Sample(i))
		reck.Advance(u)
	}
	errNorm := reck.State().Sub(x).Norm2()
	// ‖A‖_inf = 1.1 here; very loose envelope.
	bound := eps * steps * math.Pow(1.1, steps)
	if errNorm > bound {
		t.Errorf("reckoning error %v exceeds envelope %v", errNorm, bound)
	}
	if errNorm == 0 {
		t.Error("error unexpectedly zero under nonzero disturbance")
	}
}

func TestDeadReckonerDimensionPanics(t *testing.T) {
	sys := doubleIntegrator(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDeadReckoner(sys, mat.VecOf(1))
}

func TestControllerRecoversFromAttackDrift(t *testing.T) {
	// Scenario: sensors were spoofed for 20 steps, driving the true state
	// away while the logger retained the trusted estimate from before the
	// attack and the inputs applied since. The recovery controller must
	// steer the plant back near the target without ever reading a sensor.
	sys := doubleIntegrator(t)
	trusted := mat.VecOf(1, 0)
	x := trusted.Clone()

	// Attack phase: controller (spoofed) applies a harmful constant input.
	var recorded []mat.Vec
	for i := 0; i < 20; i++ {
		u := mat.VecOf(1.5)
		recorded = append(recorded, u)
		x = sys.Step(x, u, nil)
	}

	lqr, err := InfiniteHorizonLQR(sys.A, sys.B, mat.Identity(2), mat.Diag(0.5), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := mat.VecOf(1, 0)
	ctl, err := NewController(sys, lqr, trusted, recorded, target, geom.UniformBox(1, -5, 5))
	if err != nil {
		t.Fatal(err)
	}
	// The reckoner caught up: it must agree with the true state exactly
	// (no disturbance in this test).
	if !ctl.State().Equal(x, 1e-9) {
		t.Fatalf("reckoner %v != true %v after catch-up", ctl.State(), x)
	}

	for i := 0; i < 300; i++ {
		u := ctl.Step()
		x = sys.Step(x, u, nil)
	}
	if x.Sub(target).Norm2() > 1e-2 {
		t.Errorf("recovery missed target: %v vs %v", x, target)
	}
	if ctl.Steps() != 300 {
		t.Errorf("Steps = %d", ctl.Steps())
	}
}

func TestControllerRespectsSaturation(t *testing.T) {
	sys := doubleIntegrator(t)
	lqr, err := InfiniteHorizonLQR(sys.A, sys.B, mat.Identity(2).Scale(100), mat.Diag(0.001), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(sys, lqr, mat.VecOf(50, 0), nil, mat.NewVec(2), geom.UniformBox(1, -1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		u := ctl.Step()
		if u[0] < -1-1e-12 || u[0] > 1+1e-12 {
			t.Fatalf("unsaturated input %v", u[0])
		}
	}
}

func TestControllerValidation(t *testing.T) {
	sys := doubleIntegrator(t)
	lqr, _ := InfiniteHorizonLQR(sys.A, sys.B, mat.Identity(2), mat.Diag(1), 0, 0)
	u := geom.UniformBox(1, -1, 1)
	if _, err := NewController(sys, nil, mat.VecOf(0, 0), nil, mat.VecOf(0, 0), u); err == nil {
		t.Error("nil LQR accepted")
	}
	if _, err := NewController(sys, lqr, mat.VecOf(0, 0), nil, mat.VecOf(0), u); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := NewController(sys, lqr, mat.VecOf(0, 0), nil, mat.VecOf(0, 0), geom.UniformBox(2, -1, 1)); err == nil {
		t.Error("bad input box accepted")
	}
}

func TestFeedforwardHoldsTargetEquilibrium(t *testing.T) {
	// x' = 0.5x + u: holding target 2 needs u_ff = 1.
	sys, err := lti.New(mat.Diag(0.5), mat.ColVec(mat.VecOf(1)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	lqr, err := InfiniteHorizonLQR(sys.A, sys.B, mat.Diag(1), mat.Diag(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := mat.VecOf(2)
	ctl, err := NewController(sys, lqr, target, nil, target, geom.UniformBox(1, -5, 5))
	if err != nil {
		t.Fatal(err)
	}
	x := target.Clone()
	for i := 0; i < 100; i++ {
		u := ctl.Step()
		x = sys.Step(x, u, nil)
	}
	if math.Abs(x[0]-2) > 1e-6 {
		t.Errorf("state drifted to %v, want held at 2 (feedforward missing?)", x[0])
	}
}
