// Package state is the serialization layer of the detection pipeline: a
// versioned, deterministic binary codec that every stateful component —
// the logger ring, the detectors' window sums, the deadline estimator's
// warm-start certificate, the assembled core.System, and whole fleet
// engines — encodes itself through via an explicit Snapshot/Restore pair.
//
// The codec is deliberately primitive: fixed little-endian integer widths,
// IEEE-754 bit patterns for floats, length-prefixed strings and slices, no
// maps, no reflection, and a fixed field order per component. Two snapshots
// of equal state are therefore byte-identical, which is what makes
// "restore == never-crashed" a testable bit-identity claim rather than an
// approximate one (the differential tests in internal/fleet and
// internal/wire pin it end to end).
//
// Versioning rules (see DESIGN.md §10):
//
//   - A snapshot container starts with the 4-byte magic "AWDS" and a u16
//     container version. Readers reject unknown container versions.
//   - Every component writes a one-byte tag and a one-byte component
//     version before its fields. Readers reject mismatched tags (a
//     structural error — the stream is not what the caller thinks it is)
//     and component versions newer than they understand.
//   - Changing a component's field layout requires bumping its component
//     version; removing a component or reordering components requires
//     bumping the container version.
//
// Decoding never panics: all reads are bounds-checked against the buffer
// and errors are sticky — the first failure poisons the decoder, every
// later read returns zero values, and Err reports the original cause. This
// makes restore paths safe to run on truncated or corrupted checkpoint
// files (the fuzz target FuzzSnapshotRoundTrip exercises exactly that).
package state

import (
	"errors"
	"fmt"
	"math"
)

// Magic identifies a snapshot container.
const Magic = "AWDS"

// Version is the container format version written by Encoder.Header.
const Version = 1

// Component tags. One byte each; tags are part of the wire format and must
// never be reused for a different component.
const (
	TagLogger      = 'L'
	TagWindow      = 'W'
	TagAdaptive    = 'A'
	TagFixed       = 'F'
	TagCUSUM       = 'C'
	TagEWMA        = 'E'
	TagEstimator   = 'D'
	TagCertificate = 'K'
	TagSystem      = 'S'
	TagFleet       = 'Z'
	TagServer      = 'V'
)

// ErrTruncated reports a read past the end of the snapshot buffer.
var ErrTruncated = errors.New("state: truncated snapshot")

// Encoder builds a snapshot by appending to an owned buffer. The zero
// value is ready to use; the write methods never fail (the buffer grows as
// needed), so component Snapshot methods need no error plumbing.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded snapshot. The slice aliases the encoder's
// buffer; it is valid until the next write.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoded bytes but keeps the buffer, so a long-lived
// encoder (a network client staging one request per round trip) stops
// allocating once warm. Slices returned by Bytes before the Reset alias
// the buffer and are invalidated by it.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Header writes the container magic and version; call it once at the start
// of a top-level snapshot.
func (e *Encoder) Header() {
	e.buf = append(e.buf, Magic...)
	e.U16(Version)
}

// Begin writes a component header: its tag byte and component version.
func (e *Encoder) Begin(tag byte, version uint8) {
	e.buf = append(e.buf, tag, version)
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern, little-endian. The
// encoding is exact: NaN payloads, signed zeros, and subnormals round-trip
// bit-for-bit.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// F64s appends a length-prefixed float64 slice.
func (e *Encoder) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, f := range v {
		e.F64(f)
	}
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes32 appends a length-prefixed byte slice.
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Mark reserves a u32 length slot and returns its offset; pair with Patch
// to frame a section whose byte length is only known after encoding it —
// readers can then skip the section wholesale (Decoder.SectionEnd).
func (e *Encoder) Mark() int {
	off := len(e.buf)
	e.U32(0)
	return off
}

// Patch writes the number of bytes encoded since Mark into the reserved
// slot at off.
func (e *Encoder) Patch(off int) {
	n := uint32(len(e.buf) - off - 4)
	e.buf[off] = byte(n)
	e.buf[off+1] = byte(n >> 8)
	e.buf[off+2] = byte(n >> 16)
	e.buf[off+3] = byte(n >> 24)
}

// Decoder reads a snapshot produced by Encoder. Errors are sticky: after
// the first failure every read returns zero values and Err reports the
// cause, so restore code can decode a whole component and check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b. The decoder does not copy b;
// callers must not mutate it during decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset re-aims the decoder at b, clearing any sticky error, so a
// long-lived decoder (a network server decoding one request per frame)
// avoids a per-message allocation. The previous buffer is released.
func (d *Decoder) Reset(b []byte) {
	d.buf = b
	d.off = 0
	d.err = nil
}

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the current read position.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// need reports whether n more bytes are available, poisoning the decoder
// if not.
func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.fail(ErrTruncated)
		return false
	}
	return true
}

// Header checks the container magic and version.
func (d *Decoder) Header() error {
	if !d.need(len(Magic) + 2) {
		return d.err
	}
	if string(d.buf[d.off:d.off+len(Magic)]) != Magic {
		d.fail(fmt.Errorf("state: bad magic %q", d.buf[d.off:d.off+len(Magic)]))
		return d.err
	}
	d.off += len(Magic)
	if v := d.U16(); v != Version {
		d.fail(fmt.Errorf("state: unsupported container version %d (have %d)", v, Version))
	}
	return d.err
}

// Expect consumes a component header and checks its tag; it returns the
// component version, failing the decoder when the tag mismatches or the
// version is newer than maxVersion.
func (d *Decoder) Expect(tag byte, maxVersion uint8) uint8 {
	if !d.need(2) {
		return 0
	}
	got := d.buf[d.off]
	ver := d.buf[d.off+1]
	d.off += 2
	if got != tag {
		d.fail(fmt.Errorf("state: component tag %q, want %q", got, tag))
		return 0
	}
	if ver == 0 || ver > maxVersion {
		d.fail(fmt.Errorf("state: component %q version %d, support 1..%d", tag, ver, maxVersion))
		return 0
	}
	return ver
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := uint16(d.buf[d.off]) | uint16(d.buf[d.off+1])<<8
	d.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	b := d.buf[d.off:]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	b := d.buf[d.off:]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads one byte as a bool; any byte other than 0 or 1 poisons the
// decoder (it signals stream corruption, not a flexible truthy value).
func (d *Decoder) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.fail(fmt.Errorf("state: bool byte %d", v))
		return false
	}
	return v == 1
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// F64s reads a length-prefixed float64 slice into dst, which must have
// exactly the encoded length — component layouts fix their vector sizes, so
// a length mismatch is a structural error, not a resize request.
func (d *Decoder) F64s(dst []float64) {
	n := d.U32()
	if d.err != nil {
		return
	}
	if int(n) != len(dst) {
		d.fail(fmt.Errorf("state: float slice length %d, want %d", n, len(dst)))
		return
	}
	if !d.need(8 * len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.F64()
	}
}

// String reads a length-prefixed string. The length is bounds-checked
// against the remaining buffer before allocating.
func (d *Decoder) String() string {
	n := d.U32()
	if d.err != nil || !d.need(int(n)) {
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Bytes32 reads a length-prefixed byte slice (copied out of the buffer).
func (d *Decoder) Bytes32() []byte {
	n := d.U32()
	if d.err != nil || !d.need(int(n)) {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += int(n)
	return b
}

// SectionEnd reads a Mark/Patch length prefix and returns the absolute
// offset of the section's end, so a reader that cannot interpret the
// section can SkipTo past it.
func (d *Decoder) SectionEnd() int {
	n := d.U32()
	if d.err != nil {
		return d.off
	}
	end := d.off + int(n)
	if end > len(d.buf) {
		d.fail(ErrTruncated)
		return d.off
	}
	return end
}

// SkipTo advances the read position to off (which must not move backward
// or past the end of the buffer).
func (d *Decoder) SkipTo(off int) {
	if d.err != nil {
		return
	}
	if off < d.off || off > len(d.buf) {
		d.fail(fmt.Errorf("state: bad skip target %d (at %d of %d)", off, d.off, len(d.buf)))
		return
	}
	d.off = off
}
