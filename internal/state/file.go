package state

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes a snapshot to path atomically: the bytes land in a
// temporary file in the same directory, are fsynced, and replace path with
// one rename — a crash mid-checkpoint leaves either the previous checkpoint
// or the new one, never a torn file. This is the write discipline every
// checkpoint sink (awdserve, awdfleet -checkpoint-out) goes through.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".awds-*")
	if err != nil {
		return fmt.Errorf("state: checkpoint write: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("state: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("state: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("state: checkpoint close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("state: checkpoint rename: %w", err)
	}
	return nil
}

// ReadFile reads a snapshot file whole. It is a thin wrapper kept for
// symmetry with WriteFile (and as the single place to hang size limits or
// integrity checks later).
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("state: checkpoint read: %w", err)
	}
	return data, nil
}
