package state

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	e := NewEncoder()
	e.Header()
	e.Begin(TagSystem, 1)
	e.U8(7)
	e.U16(65534)
	e.U32(1 << 30)
	e.U64(1 << 62)
	e.I64(-12345678901234)
	e.Int(-42)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Pi)
	e.F64(math.Copysign(0, -1))
	e.F64(math.Inf(-1))
	e.F64s([]float64{1.5, -2.25, 0})
	e.String("tenant/stream-0001")
	e.Bytes32([]byte{0, 1, 2})

	d := NewDecoder(e.Bytes())
	if err := d.Header(); err != nil {
		t.Fatalf("Header: %v", err)
	}
	if v := d.Expect(TagSystem, 1); v != 1 {
		t.Fatalf("Expect version = %d, want 1", v)
	}
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := d.U16(); got != 65534 {
		t.Fatalf("U16 = %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Fatalf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<62 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -12345678901234 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatalf("Bool round-trip failed")
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0 not preserved: %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Fatalf("-Inf not preserved: %v", got)
	}
	fs := make([]float64, 3)
	d.F64s(fs)
	if fs[0] != 1.5 || fs[1] != -2.25 || fs[2] != 0 {
		t.Fatalf("F64s = %v", fs)
	}
	if got := d.String(); got != "tenant/stream-0001" {
		t.Fatalf("String = %q", got)
	}
	b := d.Bytes32()
	if len(b) != 3 || b[0] != 0 || b[2] != 2 {
		t.Fatalf("Bytes32 = %v", b)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestNaNBitPatternPreserved(t *testing.T) {
	// A quiet NaN with a payload: the codec must round-trip the exact bits,
	// not normalize them — bit-identity of snapshots depends on it.
	bits := uint64(0x7ff800000000beef)
	e := NewEncoder()
	e.F64(math.Float64frombits(bits))
	d := NewDecoder(e.Bytes())
	if got := math.Float64bits(d.F64()); got != bits {
		t.Fatalf("NaN bits = %#x, want %#x", got, bits)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		e := NewEncoder()
		e.Header()
		e.Begin(TagLogger, 1)
		e.Int(3)
		e.F64s([]float64{1, 2, 3})
		e.String("x")
		out := make([]byte, len(e.Bytes()))
		copy(out, e.Bytes())
		return out
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatalf("same state encoded to different bytes")
	}
}

func TestStickyErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // truncated
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", d.Err())
	}
	// Every later read is a zero-value no-op, never a panic.
	if d.U32() != 0 || d.String() != "" || d.Bool() || d.F64() != 0 {
		t.Fatalf("poisoned decoder returned non-zero values")
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("first error not sticky: %v", d.Err())
	}
}

func TestHeaderRejections(t *testing.T) {
	d := NewDecoder([]byte("XXXX\x01\x00"))
	if err := d.Header(); err == nil {
		t.Fatalf("bad magic accepted")
	}
	e := NewEncoder()
	e.buf = append(e.buf, Magic...)
	e.U16(99)
	d = NewDecoder(e.Bytes())
	if err := d.Header(); err == nil {
		t.Fatalf("future container version accepted")
	}
}

func TestExpectRejections(t *testing.T) {
	e := NewEncoder()
	e.Begin(TagWindow, 1)
	d := NewDecoder(e.Bytes())
	d.Expect(TagLogger, 1)
	if d.Err() == nil {
		t.Fatalf("tag mismatch accepted")
	}

	e = NewEncoder()
	e.Begin(TagWindow, 5)
	d = NewDecoder(e.Bytes())
	d.Expect(TagWindow, 1)
	if d.Err() == nil {
		t.Fatalf("future component version accepted")
	}
}

func TestF64sLengthMismatch(t *testing.T) {
	e := NewEncoder()
	e.F64s([]float64{1, 2})
	d := NewDecoder(e.Bytes())
	dst := make([]float64, 3)
	d.F64s(dst)
	if d.Err() == nil {
		t.Fatalf("length mismatch accepted")
	}
}

func TestOversizedStringRejected(t *testing.T) {
	// A corrupt length prefix far beyond the buffer must fail cleanly
	// without attempting the allocation.
	e := NewEncoder()
	e.U32(1 << 31)
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("oversized string accepted: %q, err %v", s, d.Err())
	}
}

func TestSectionSkip(t *testing.T) {
	e := NewEncoder()
	off := e.Mark()
	e.String("section payload a skipping reader never parses")
	e.F64s([]float64{1, 2, 3})
	e.Patch(off)
	e.String("after")

	d := NewDecoder(e.Bytes())
	end := d.SectionEnd()
	d.SkipTo(end)
	if got := d.String(); got != "after" {
		t.Fatalf("after skip: %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestSectionEndTruncated(t *testing.T) {
	e := NewEncoder()
	e.U32(1000) // claims 1000 bytes that are not there
	d := NewDecoder(e.Bytes())
	d.SectionEnd()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", d.Err())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.awds")
	if err := WriteFile(path, []byte("v1")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := WriteFile(path, []byte("v2")); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "v2" {
		t.Fatalf("ReadFile = %q, want v2", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after atomic writes, want 1", len(entries))
	}
}
