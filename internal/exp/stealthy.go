package exp

import (
	"fmt"
	"math"

	"repro/internal/attack"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/sim"
)

// StealthyRow reports what a residual-aware stealthy adversary (attack
// budget α·τ per step, per Urbina et al.) achieves against one plant.
type StealthyRow struct {
	Simulator string
	Alpha     float64
	// Detected counts runs the adaptive detector still caught (noise can
	// push a sub-threshold attack over τ; α near 1 leaves no margin).
	Detected int
	// UnsafeRuns counts runs whose true state left the safe set.
	UnsafeRuns int
	// MaxDeviation is the largest controlled-dimension deviation from the
	// reference observed across runs — the attack's physical impact.
	MaxDeviation float64
	// StealthCeiling is the analytic bound on the sustained offset for the
	// controlled dimension (+Inf for integrating plants).
	StealthCeiling float64
}

// StealthyImpact quantifies the fundamental limit of residual detection:
// an attacker who keeps the induced residual below α·τ forever is invisible
// to any window size, so the only protection is the bounded impact its
// stealth budget allows. For stable plants the sustained offset saturates
// at ~α·τ/(1−a); for integrating plants (aircraft pitch θ, DC motor θ) it
// grows without bound — those plants are stealth-vulnerable by
// construction, which is why the paper's deadline mechanism matters only
// for detectable attacks.
func StealthyImpact(runs int, seed uint64, alphas []float64) ([]StealthyRow, error) {
	if runs <= 0 {
		runs = 20
	}
	if len(alphas) == 0 {
		alphas = []float64{0.2, 0.5, 0.8}
	}
	var rows []StealthyRow
	for _, m := range models.All() {
		dir := stealthDirection(m)
		for _, alpha := range alphas {
			row := StealthyRow{
				Simulator:      m.Name,
				Alpha:          alpha,
				StealthCeiling: stealthCeiling(m, alpha),
			}
			for run := 0; run < runs; run++ {
				att := attack.NewStealthy(
					attack.Schedule{Start: m.Attack.BiasStart},
					m.Sys.A, dir, m.Tau, alpha,
				)
				tr, err := sim.Run(sim.Config{
					Model:    m,
					Attack:   att,
					Strategy: sim.Adaptive,
					Seed:     seed + uint64(run)*7919,
				})
				if err != nil {
					return nil, err
				}
				met := sim.Analyze(tr)
				if met.Detected {
					row.Detected++
				}
				if met.UnsafeStep >= 0 {
					row.UnsafeRuns++
				}
				for _, r := range tr.Records[m.Attack.BiasStart:] {
					if dev := math.Abs(r.TrueState[m.CtrlDim] - r.Ref); dev > row.MaxDeviation {
						row.MaxDeviation = dev
					}
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// stealthDirection points the attacker along the plant's bias-scenario
// direction, falling back to the controlled dimension when the bias
// scenario leaves it zero.
func stealthDirection(m *models.Model) mat.Vec {
	dir := m.Attack.Bias.Clone()
	if dir.Norm2() == 0 {
		dir = mat.NewVec(m.Sys.StateDim())
		dir[m.CtrlDim] = 1
	}
	return dir
}

// stealthCeiling returns the analytic sustained-offset bound for the
// controlled dimension: the fixed point of o ← a·o + α·τ·|dir_c| along the
// (decoupled approximation of the) controlled dimension; +Inf when the
// diagonal entry is >= 1 (integrating or unstable mode).
func stealthCeiling(m *models.Model, alpha float64) float64 {
	a := m.Sys.A.At(m.CtrlDim, m.CtrlDim)
	dir := stealthDirection(m)
	unit := dir.Scale(1 / dir.Norm2())
	gamma := math.Inf(1)
	for i, d := range unit {
		if d == 0 {
			continue
		}
		if lim := alpha * m.Tau[i] / math.Abs(d); lim < gamma {
			gamma = lim
		}
	}
	step := gamma * math.Abs(unit[m.CtrlDim])
	if a >= 1 {
		return math.Inf(1)
	}
	return step / (1 - a)
}

// RenderStealthy formats the stealthy-impact study.
func RenderStealthy(rows []StealthyRow, runs int) string {
	headers := []string{"simulator", "alpha", "detected", "unsafe runs", "max deviation", "stealth ceiling"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		ceiling := "unbounded"
		if !math.IsInf(r.StealthCeiling, 1) {
			ceiling = fmt.Sprintf("%.3g", r.StealthCeiling)
		}
		out = append(out, []string{
			r.Simulator,
			fmt.Sprintf("%.2f", r.Alpha),
			fmt.Sprintf("%d/%d", r.Detected, runs),
			fmt.Sprintf("%d/%d", r.UnsafeRuns, runs),
			fmt.Sprintf("%.3g", r.MaxDeviation),
			ceiling,
		})
	}
	return "Stealthy-adversary impact (residual kept below alpha*tau; Urbina et al. limit)\n" +
		RenderTable(headers, out)
}
