package exp

import (
	"fmt"

	"repro/internal/deadline"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/reach"
)

// DeadlineValidationRow reports the Monte-Carlo check of Definition 3.1 for
// one plant: across sampled initial states and adversarial input
// trajectories, the true state must never leave the safe set within the
// estimated deadline.
type DeadlineValidationRow struct {
	Simulator string
	States    int // sampled initial states
	Trials    int // adversarial trajectories per state
	// MeanDeadline is the average estimated deadline over the samples.
	MeanDeadline float64
	// Violations counts (state, trial) pairs whose trajectory left the safe
	// set at or before the estimated deadline — each one falsifies the
	// conservativeness guarantee, so the expected count is zero.
	Violations int
}

// DeadlineValidation empirically validates the Deadline Estimator's core
// guarantee on every plant: starting from states scattered across the safe
// region (biased toward the boundary, where deadlines are tight), apply
// adversarial input sequences — bang-bang extremes plus random admissible
// inputs — with worst-case-signed disturbances, and check that no
// trajectory reaches the unsafe set within t_d steps.
func DeadlineValidation(statesPerModel, trialsPerState int, seed uint64) ([]DeadlineValidationRow, error) {
	if statesPerModel <= 0 {
		statesPerModel = 20
	}
	if trialsPerState <= 0 {
		trialsPerState = 10
	}
	var rows []DeadlineValidationRow
	for _, m := range models.All() {
		an, err := reach.New(m.Sys, m.U, m.Eps, m.MaxWindow)
		if err != nil {
			return nil, err
		}
		// Exact initial states: the estimator must be conservative even
		// with a zero-radius initial set.
		est, err := deadline.New(an, m.Safe, 0)
		if err != nil {
			return nil, err
		}
		src := noise.NewSource(seed + uint64(m.No))
		ball := noise.NewBall(seed+uint64(m.No)+500, m.Sys.StateDim(), m.Eps)
		uLo, uHi := m.U.Lo(), m.U.Hi()

		row := DeadlineValidationRow{Simulator: m.Name, States: statesPerModel, Trials: trialsPerState}
		sumDeadline := 0.0
		for si := 0; si < statesPerModel; si++ {
			x0 := sampleSafeState(m, src, si)
			td := est.FromState(x0)
			sumDeadline += float64(td)
			if td == 0 {
				continue // nothing to check: the estimator already says "now"
			}
			for trial := 0; trial < trialsPerState; trial++ {
				x := x0.Clone()
				for t := 1; t <= td; t++ {
					u := adversarialInput(uLo, uHi, src, trial)
					x = m.Sys.Step(x, u, ball.Sample(t))
					if !m.Safe.Contains(x) {
						row.Violations++
						break
					}
				}
			}
		}
		row.MeanDeadline = sumDeadline / float64(statesPerModel)
		rows = append(rows, row)
	}
	return rows, nil
}

// sampleSafeState draws an initial state inside the safe set: the bounded
// dimensions are swept toward the boundary (where deadlines are tight and
// the check has teeth), the unbounded ones get small perturbations.
func sampleSafeState(m *models.Model, src *noise.Source, idx int) mat.Vec {
	n := m.Sys.StateDim()
	x := mat.NewVec(n)
	for d := 0; d < n; d++ {
		iv := m.Safe.Interval(d)
		if iv.Bounded() {
			// Walk from center toward the boundary with the sample index.
			frac := 0.95 * float64(idx%10) / 9
			if src.Float64() < 0.5 {
				frac = -frac
			}
			x[d] = iv.Center() + frac*iv.Width()/2
		} else {
			x[d] = src.Uniform(-0.1, 0.1)
		}
	}
	return x
}

// adversarialInput alternates between bang-bang extremes (the inputs that
// actually attain the reach-set faces) and random admissible draws.
func adversarialInput(lo, hi mat.Vec, src *noise.Source, trial int) mat.Vec {
	u := mat.NewVec(len(lo))
	for i := range u {
		switch trial % 3 {
		case 0:
			u[i] = hi[i]
		case 1:
			u[i] = lo[i]
		default:
			u[i] = src.Uniform(lo[i], hi[i])
		}
	}
	return u
}

// RenderDeadlineValidation formats the validation table.
func RenderDeadlineValidation(rows []DeadlineValidationRow) string {
	headers := []string{"simulator", "states", "trials/state", "mean t_d", "violations"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator,
			fmt.Sprintf("%d", r.States),
			fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%.1f", r.MeanDeadline),
			fmt.Sprintf("%d", r.Violations),
		})
	}
	return "Deadline conservativeness validation (Definition 3.1; expected violations: 0)\n" +
		RenderTable(headers, out)
}
