package exp

import (
	"fmt"
	"strings"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Fig8Result reproduces the testbed experiment of Sec. 6.2: the RC car's
// cruise-control speed trace under the +2.5 m/s bias attack, with the first
// alerts of the adaptive detector and the fixed (size 30) detector.
type Fig8Result struct {
	AttackStart   int
	AdaptiveAlert int // -1 = never
	FixedAlert    int // -1 = never
	UnsafeStep    int // first step the true speed left [2, 10] m/s

	SpeedMS  []float64 // true speed in m/s per step (x · C)
	SafeLow  float64   // 2 m/s boundary
	SafeHigh float64   // 10 m/s boundary
}

// Fig8Config parameterizes the testbed scenario.
type Fig8Config struct {
	Seed     uint64
	FixedWin int // paper: 30
	// Observer streams live telemetry from both runs (nil = off).
	Observer *obs.Observer
}

// Fig8 runs the identified RC-car model through the published attack
// scenario with both detection strategies.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.FixedWin <= 0 {
		cfg.FixedWin = 30
	}
	m := models.TestbedCar()
	cOut := m.Sys.C.At(0, 0)

	attA, err := sim.BuildAttack(m, "bias")
	if err != nil {
		return nil, err
	}
	trA, err := sim.Run(sim.Config{Model: m, Attack: attA, Strategy: sim.Adaptive, Seed: cfg.Seed, Observer: cfg.Observer})
	if err != nil {
		return nil, err
	}
	attF, err := sim.BuildAttack(m, "bias")
	if err != nil {
		return nil, err
	}
	trF, err := sim.Run(sim.Config{
		Model: m, Attack: attF, Strategy: sim.FixedWindow, FixedWin: cfg.FixedWin, Seed: cfg.Seed,
		Observer: cfg.Observer,
	})
	if err != nil {
		return nil, err
	}

	metA, metF := sim.Analyze(trA), sim.Analyze(trF)
	res := &Fig8Result{
		AttackStart:   trA.AttackStart,
		AdaptiveAlert: metA.FirstAlarm,
		FixedAlert:    metF.FirstAlarm,
		UnsafeStep:    metA.UnsafeStep,
		SpeedMS:       make([]float64, len(trA.Records)),
		SafeLow:       2,
		SafeHigh:      10,
	}
	for i, r := range trA.Records {
		res.SpeedMS[i] = r.TrueState[0] * cOut
	}
	return res, nil
}

// RenderFig8 charts the speed trace with the safe boundaries and alert
// summary.
func RenderFig8(r *Fig8Result) string {
	low := make([]float64, len(r.SpeedMS))
	for i := range low {
		low[i] = r.SafeLow
	}
	var b strings.Builder
	b.WriteString(RenderChart(
		"Fig 8: testbed cruise control under +2.5 m/s bias (speed in m/s)",
		72, 12,
		Series{Name: "actual speed", Values: r.SpeedMS},
		Series{Name: "unsafe boundary (2 m/s)", Values: low},
	))
	fmt.Fprintf(&b, "attack start: step %d   unsafe entry: %s\n", r.AttackStart, stepString(r.UnsafeStep))
	fmt.Fprintf(&b, "adaptive alert: %s\n", fig8Alert(r.AdaptiveAlert, r.UnsafeStep))
	fmt.Fprintf(&b, "fixed(30) alert: %s\n", fig8Alert(r.FixedAlert, r.UnsafeStep))
	return b.String()
}

func fig8Alert(step, unsafe int) string {
	if step < 0 {
		return "never — attack unnoticed until after the unsafe region (untimely)"
	}
	verdict := "after the unsafe entry (untimely)"
	if unsafe < 0 || step <= unsafe {
		verdict = "before the unsafe entry (in time)"
	}
	return fmt.Sprintf("step %d, %s", step, verdict)
}
