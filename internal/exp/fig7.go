package exp

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Fig7Point is one x-position of paper Fig. 7: the number of
// false-positive and false-negative experiments (out of Runs) at a given
// fixed detection window size.
type Fig7Point struct {
	Window int
	FP     int
	FN     int
}

// Fig7Config parameterizes the window-size profiling sweep of Sec. 6.1.2.
type Fig7Config struct {
	Runs      int    // experiments per window size (paper: 100)
	MaxWindow int    // sweep 0..MaxWindow (paper: 100)
	Step      int    // window-size stride (1 reproduces the paper exactly)
	Duration  int    // bias attack duration in steps (paper: 15)
	Seed      uint64 // base seed
	// Observer streams live telemetry from every sweep run (nil = off).
	Observer *obs.Observer
}

// Fig7 profiles the aircraft-pitch simulator under a 15-step bias attack
// with fixed detection windows swept from 0 to MaxWindow: FP experiments
// (false-positive rate > 10% before the attack) fall with window size while
// FN experiments (attack never detected) rise — the trade-off that picks
// the maximum window w_m (Sec. 4.3).
func Fig7(cfg Fig7Config) ([]Fig7Point, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 100
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 100
	}
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 15
	}

	m := models.AircraftPitch()
	var points []Fig7Point
	for w := 0; w <= cfg.MaxWindow; w += cfg.Step {
		fp, fn := 0, 0
		for run := 0; run < cfg.Runs; run++ {
			att := attack.NewBias(attack.Schedule{
				Start: m.Attack.BiasStart,
				End:   m.Attack.BiasStart + cfg.Duration,
			}, m.Attack.Bias)
			fixedWin := w
			if fixedWin == 0 {
				fixedWin = -1 // sim convention: negative = true zero window
			}
			tr, err := sim.Run(sim.Config{
				Model:    m,
				Attack:   att,
				Strategy: sim.FixedWindow,
				FixedWin: fixedWin,
				Seed:     cfg.Seed + uint64(run)*7919,
				Observer: cfg.Observer,
			})
			if err != nil {
				return nil, fmt.Errorf("fig7 w=%d run=%d: %w", w, run, err)
			}
			met := sim.Analyze(tr)
			cfg.Observer.ObserveRun(met.DetectionDelay, met.Detected, met.DeadlineMissed)
			if met.FPRate > sim.FPRateThreshold {
				fp++
			}
			if !met.Detected {
				fn++
			}
		}
		points = append(points, Fig7Point{Window: w, FP: fp, FN: fn})
	}
	return points, nil
}

// RenderFig7 charts the FP/FN counts against window size and prints the
// profile table, mirroring the paper's figure.
func RenderFig7(points []Fig7Point, runs int) string {
	fp := make([]float64, len(points))
	fn := make([]float64, len(points))
	for i, p := range points {
		fp[i] = float64(p.FP)
		fn[i] = float64(p.FN)
	}
	chart := RenderChart(
		fmt.Sprintf("Fig 7: FP/FN experiments (of %d) vs fixed window size (aircraft pitch, 15-step bias)", runs),
		72, 14,
		Series{Name: "false positive experiments", Values: fp},
		Series{Name: "false negative experiments", Values: fn},
	)
	headers := []string{"window", "#FP", "#FN"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Window), fmt.Sprintf("%d", p.FP), fmt.Sprintf("%d", p.FN),
		})
	}
	return chart + "\n" + RenderTable(headers, rows)
}

// SuggestMaxWindow applies the Sec. 4.3 cut: the largest window whose FN
// count stays within the given tolerance (the paper tolerates 3 of 100 to
// pick w_m = 40).
func SuggestMaxWindow(points []Fig7Point, fnTolerance int) int {
	best := 0
	for _, p := range points {
		if p.FN <= fnTolerance && p.Window > best {
			best = p.Window
		}
	}
	return best
}
