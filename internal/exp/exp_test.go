package exp

import (
	"math"
	"strings"
	"testing"
)

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "bb") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "333") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestRenderChartBasics(t *testing.T) {
	out := RenderChart("title", 40, 8,
		Series{Name: "up", Values: []float64{0, 1, 2, 3}},
		Series{Name: "down", Values: []float64{3, 2, 1, 0}},
	)
	if !strings.Contains(out, "title") || !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("chart missing pieces:\n%s", out)
	}
}

func TestRenderChartEmpty(t *testing.T) {
	out := RenderChart("t", 40, 8, Series{Name: "nan", Values: []float64{math.NaN()}})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestRenderChartFlatSeries(t *testing.T) {
	out := RenderChart("flat", 30, 6, Series{Name: "c", Values: []float64{5, 5, 5}})
	if strings.Contains(out, "no data") {
		t.Error("flat series should render")
	}
}

func TestTable1ListsAllSimulators(t *testing.T) {
	out := Table1()
	for _, name := range []string{"aircraft-pitch", "vehicle-turning", "series-rlc", "dc-motor", "quadrotor"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
	// Spot-check published values.
	for _, v := range []string{"14,0.8,5.7", "[-7, 7]", "0.0078", "1.56e-15", "[0.04, 0.01]"} {
		if !strings.Contains(out, v) {
			t.Errorf("Table 1 missing value %q", v)
		}
	}
}

func TestFig7ShapeAndSuggestion(t *testing.T) {
	pts, err := Fig7(Fig7Config{Runs: 10, MaxWindow: 100, Step: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Shape: FN must rise with window size (first point lowest, last highest).
	if pts[0].FN > pts[len(pts)-1].FN {
		t.Errorf("FN did not rise with window: %+v", pts)
	}
	// FP must not rise with window size.
	if pts[0].FP < pts[len(pts)-1].FP {
		t.Errorf("FP rose with window: %+v", pts)
	}
	// The FN-based cut must land strictly inside the sweep (the paper picks
	// w_m = 40 from the same profile).
	wm := SuggestMaxWindow(pts, 1)
	if wm <= 0 || wm >= 100 {
		t.Errorf("suggested w_m = %d, want interior value", wm)
	}
	out := RenderFig7(pts, 10)
	if !strings.Contains(out, "Fig 7") || !strings.Contains(out, "window") {
		t.Error("RenderFig7 output malformed")
	}
}

func TestTable2SmallCampaign(t *testing.T) {
	rows, err := Table2(Table2Config{Runs: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 { // 5 simulators x 3 attacks x 2 strategies
		t.Fatalf("rows = %d, want 30", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Simulator+"/"+r.Attack+"/"+r.Strategy] = true
		if r.FP < 0 || r.FP > 2 || r.DM < 0 || r.DM > 2 {
			t.Errorf("row out of range: %+v", r)
		}
	}
	if len(seen) != 30 {
		t.Errorf("duplicate rows: %d unique", len(seen))
	}
	out := RenderTable2(rows, 2)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "adaptive") {
		t.Error("RenderTable2 malformed")
	}
}

func TestFig6PanelsHeadlineClaim(t *testing.T) {
	panels, err := Fig6(Fig6Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("panels = %d, want 6", len(panels))
	}
	for _, p := range panels {
		if p.AdaptiveAlert < 0 {
			t.Errorf("%s/%s: adaptive never alerted", p.Simulator, p.Attack)
			continue
		}
		// The adaptive alert must never be later than the fixed alert.
		if p.FixedAlert >= 0 && p.AdaptiveAlert > p.FixedAlert {
			t.Errorf("%s/%s: adaptive %d later than fixed %d",
				p.Simulator, p.Attack, p.AdaptiveAlert, p.FixedAlert)
		}
	}
	out := RenderFig6(panels)
	if !strings.Contains(out, "vehicle-turning") || !strings.Contains(out, "series-rlc") {
		t.Error("RenderFig6 malformed")
	}
}

func TestFig8TestbedScenario(t *testing.T) {
	r, err := Fig8(Fig8Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.AttackStart != 80 {
		t.Errorf("attack start = %d, want 80", r.AttackStart)
	}
	// Headline: the adaptive detector fires essentially immediately...
	if r.AdaptiveAlert < 0 || r.AdaptiveAlert > r.AttackStart+2 {
		t.Errorf("adaptive alert = %d, want within 2 steps of onset %d", r.AdaptiveAlert, r.AttackStart)
	}
	// ...and before the unsafe entry, while fixed(30) is untimely (after
	// unsafe entry or never).
	if r.UnsafeStep < 0 {
		t.Fatal("bias attack should drive the car unsafe")
	}
	if r.AdaptiveAlert > r.UnsafeStep {
		t.Errorf("adaptive alert %d after unsafe %d", r.AdaptiveAlert, r.UnsafeStep)
	}
	if r.FixedAlert >= 0 && r.FixedAlert <= r.UnsafeStep {
		t.Errorf("fixed alert %d should be untimely (unsafe at %d)", r.FixedAlert, r.UnsafeStep)
	}
	out := RenderFig8(r)
	if !strings.Contains(out, "Fig 8") || !strings.Contains(out, "adaptive alert") {
		t.Error("RenderFig8 malformed")
	}
}

func TestAblationComplementarySmall(t *testing.T) {
	rows, err := AblationComplementary(2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 5 models x 2 attacks x 2 variants
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderAblation("complementary", rows, 2)
	if !strings.Contains(out, "without complementary") {
		t.Error("render malformed")
	}
}

func TestAblationMaxWindowSmall(t *testing.T) {
	rows, err := AblationMaxWindow(2, 31, []int{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "w_m = 10" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestAblationCUSUMSmall(t *testing.T) {
	rows, err := AblationCUSUM(2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 plants x {adaptive, cusum, ewma}
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestExtendedScenariosSmall(t *testing.T) {
	rows, err := ExtendedScenarios(2, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 { // 5 plants x 3 extended attacks x 2 strategies
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Attack] = true
	}
	for _, want := range []string{"freeze", "ramp", "noise"} {
		if !names[want] {
			t.Errorf("missing scenario %s", want)
		}
	}
}

func TestRecoveryStudySmall(t *testing.T) {
	rows, err := RecoveryStudy(2, 51)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 plants x 2 strategies
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderRecovery(rows, 2)
	if !strings.Contains(out, "recovery") || !strings.Contains(out, "adaptive") {
		t.Error("RenderRecovery malformed")
	}
}

func TestThresholdSweepShape(t *testing.T) {
	pts, err := ThresholdSweep(6, 61, []float64{0.3, 1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// FP falls with τ; FN rises with τ.
	if pts[0].FP < pts[2].FP {
		t.Errorf("FP did not fall with τ: %+v", pts)
	}
	if pts[0].FN > pts[2].FN {
		t.Errorf("FN did not rise with τ: %+v", pts)
	}
	if _, err := ThresholdSweep(1, 1, []float64{0}); err == nil {
		t.Error("non-positive multiplier accepted")
	}
	out := RenderThresholdSweep(pts, 6)
	if !strings.Contains(out, "Threshold sweep") {
		t.Error("render malformed")
	}
}

func TestAllTracesCoversEveryCase(t *testing.T) {
	panels, err := AllTraces(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 15 {
		t.Fatalf("panels = %d, want 15", len(panels))
	}
	for _, p := range panels {
		if p.AdaptiveAlert < 0 {
			t.Errorf("%s/%s: adaptive never alerted", p.Simulator, p.Attack)
		}
		if p.FixedAlert >= 0 && p.AdaptiveAlert > p.FixedAlert {
			t.Errorf("%s/%s: adaptive %d later than fixed %d", p.Simulator, p.Attack, p.AdaptiveAlert, p.FixedAlert)
		}
	}
}

func TestDeadlineValidationNoViolations(t *testing.T) {
	rows, err := DeadlineValidation(6, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s: %d conservativeness violations", r.Simulator, r.Violations)
		}
		if r.MeanDeadline <= 0 {
			t.Errorf("%s: mean deadline %v", r.Simulator, r.MeanDeadline)
		}
	}
	out := RenderDeadlineValidation(rows)
	if !strings.Contains(out, "violations") {
		t.Error("render malformed")
	}
}

func TestMagnitudeSweepShape(t *testing.T) {
	pts, err := MagnitudeSweep(6, 78, []float64{0.25, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Tiny bias: harmless (few unsafe runs). Default bias: unsafe and the
	// fixed detector largely blind. Huge bias: everyone detects.
	if pts[0].UnsafeRuns > pts[1].UnsafeRuns {
		t.Errorf("unsafe runs should not fall with magnitude: %+v", pts)
	}
	if pts[2].FixedDetected < pts[1].FixedDetected {
		t.Errorf("fixed detection should rise with magnitude: %+v", pts)
	}
	if pts[1].AdaptiveDetected < pts[1].FixedDetected {
		t.Errorf("adaptive should dominate at the default magnitude: %+v", pts)
	}
	if _, err := MagnitudeSweep(1, 1, []float64{-1}); err == nil {
		t.Error("non-positive scale accepted")
	}
	out := RenderMagnitudeSweep(pts, 6)
	if !strings.Contains(out, "magnitude") {
		t.Error("render malformed")
	}
}

func TestOverheadRowsSane(t *testing.T) {
	rows, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FullStepNs <= 0 || r.DeadlineNs <= 0 || r.PrecomputeNs <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Simulator, r)
		}
		// The paper's viability requirement: the per-step cost must be a
		// tiny fraction of the control period (we allow up to 10% headroom
		// for noisy CI machines; in practice it is < 0.1%).
		if r.FullStepNs > 0.1*r.ControlPeriodNs {
			t.Errorf("%s: step cost %v ns exceeds 10%% of the %v ns period",
				r.Simulator, r.FullStepNs, r.ControlPeriodNs)
		}
	}
	out := RenderOverhead(rows)
	if !strings.Contains(out, "overhead") {
		t.Error("render malformed")
	}
}

func TestStealthyImpactStudy(t *testing.T) {
	rows, err := StealthyImpact(3, 99, []float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 plants x 2 alphas
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		lo, hi := rows[i], rows[i+1]
		if hi.StealthCeiling < lo.StealthCeiling {
			t.Errorf("%s: ceiling fell with alpha", lo.Simulator)
		}
		// On integrating plants the stealth drift dominates the noise, so
		// impact must grow with the budget; on strongly-regulated stable
		// plants the PID and noise can mask the ordering.
		if math.IsInf(hi.StealthCeiling, 1) && hi.MaxDeviation+1e-9 < lo.MaxDeviation {
			t.Errorf("%s: impact fell with alpha: %v vs %v", lo.Simulator, lo.MaxDeviation, hi.MaxDeviation)
		}
	}
	out := RenderStealthy(rows, 3)
	if !strings.Contains(out, "Stealthy") {
		t.Error("render malformed")
	}
}
