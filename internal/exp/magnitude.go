package exp

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/models"
	"repro/internal/sim"
)

// MagnitudePoint is one attack-strength position of the detectability
// sweep: the default bias offset scaled by Scale.
type MagnitudePoint struct {
	Scale float64
	// Adaptive / Fixed detection outcomes out of Runs.
	AdaptiveDetected int
	FixedDetected    int
	AdaptiveDM       int
	FixedDM          int
	// UnsafeRuns counts runs whose attack actually drove the plant unsafe
	// (the denominator that makes DM meaningful).
	UnsafeRuns int
}

// MagnitudeSweep maps the detectability boundary the Table 2 contrast
// rides: scaling the vehicle-turning bias from benign to blatant. Small
// magnitudes harm nothing (and neither detector matters); a middle band
// drives the plant unsafe while staying below the fixed window's diluted
// threshold — the adaptive detector's territory; large magnitudes are
// obvious to everyone.
func MagnitudeSweep(runs int, seed uint64, scales []float64) ([]MagnitudePoint, error) {
	if runs <= 0 {
		runs = 50
	}
	if len(scales) == 0 {
		scales = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 4, 8}
	}
	base := models.VehicleTurning()
	var points []MagnitudePoint
	for _, sc := range scales {
		if sc <= 0 {
			return nil, fmt.Errorf("exp: non-positive magnitude scale %v", sc)
		}
		p := MagnitudePoint{Scale: sc}
		for run := 0; run < runs; run++ {
			runSeed := seed + uint64(run)*7919
			for _, strat := range []sim.Strategy{sim.Adaptive, sim.FixedWindow} {
				att := attack.NewBias(
					attack.Schedule{Start: base.Attack.BiasStart},
					base.Attack.Bias.Scale(sc),
				)
				tr, err := sim.Run(sim.Config{
					Model:    base,
					Attack:   att,
					Strategy: strat,
					Seed:     runSeed,
				})
				if err != nil {
					return nil, err
				}
				met := sim.Analyze(tr)
				switch strat {
				case sim.Adaptive:
					if met.Detected {
						p.AdaptiveDetected++
					}
					if met.DeadlineMissed {
						p.AdaptiveDM++
					}
					if met.UnsafeStep >= 0 {
						p.UnsafeRuns++
					}
				case sim.FixedWindow:
					if met.Detected {
						p.FixedDetected++
					}
					if met.DeadlineMissed {
						p.FixedDM++
					}
				}
			}
		}
		points = append(points, p)
	}
	return points, nil
}

// RenderMagnitudeSweep formats the sweep.
func RenderMagnitudeSweep(points []MagnitudePoint, runs int) string {
	headers := []string{"bias scale", "unsafe runs", "adaptive det", "fixed det", "adaptive DM", "fixed DM"}
	out := make([][]string, 0, len(points))
	for _, p := range points {
		out = append(out, []string{
			fmt.Sprintf("%.2f", p.Scale),
			fmt.Sprintf("%d", p.UnsafeRuns),
			fmt.Sprintf("%d", p.AdaptiveDetected),
			fmt.Sprintf("%d", p.FixedDetected),
			fmt.Sprintf("%d", p.AdaptiveDM),
			fmt.Sprintf("%d", p.FixedDM),
		})
	}
	return fmt.Sprintf("Attack-magnitude sweep (vehicle turning, bias x scale, %d runs per cell)\n", runs) +
		RenderTable(headers, out)
}
