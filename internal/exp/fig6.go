package exp

import (
	"fmt"
	"strings"

	"repro/internal/deadline"
	"repro/internal/models"
	"repro/internal/reach"
	"repro/internal/sim"
)

// Fig6Panel is one subplot of paper Fig. 6: a plant under one attack,
// comparing the adaptive detector's first alert against the fixed-window
// detector's, relative to the attack onset and the detection deadline.
type Fig6Panel struct {
	Simulator   string
	Attack      string
	AttackStart int
	// Deadline is the detection deadline estimated by reachability from the
	// true state at attack onset; DeadlineStep = AttackStart + Deadline is
	// the "blue dotted vertical line" of the paper's figure.
	Deadline     int
	DeadlineStep int
	// First alert steps (-1 = never fired after onset).
	AdaptiveAlert int
	FixedAlert    int
	// UnsafeStep is when the true state actually left the safe set (-1 =
	// never).
	UnsafeStep int

	State []float64 // controlled-dimension true state per step
	Ref   []float64 // reference per step
}

// Fig6Config parameterizes the trace comparison of Sec. 6.1.3.
type Fig6Config struct {
	Seed uint64
}

// Fig6 reproduces the paper's Fig. 6: vehicle turning and series RLC under
// bias, delay, and replay attacks, tracing the actual system state and the
// first alerts of the adaptive and fixed-window detectors.
func Fig6(cfg Fig6Config) ([]Fig6Panel, error) {
	var panels []Fig6Panel
	for _, m := range []*models.Model{models.VehicleTurning(), models.SeriesRLC()} {
		for _, attackName := range []string{"bias", "delay", "replay"} {
			panel, err := TracePanel(m, attackName, cfg.Seed)
			if err != nil {
				return nil, err
			}
			panels = append(panels, *panel)
		}
	}
	return panels, nil
}

// TracePanel runs the adaptive and fixed detectors on identical seeded runs
// of one plant/attack pair and assembles a Fig. 6-style panel. It is
// exported so other figures (and the examples) can reuse it for any model.
func TracePanel(m *models.Model, attackName string, seed uint64) (*Fig6Panel, error) {
	attA, err := sim.BuildAttack(m, attackName)
	if err != nil {
		return nil, err
	}
	trA, err := sim.Run(sim.Config{Model: m, Attack: attA, Strategy: sim.Adaptive, Seed: seed})
	if err != nil {
		return nil, err
	}
	attF, err := sim.BuildAttack(m, attackName)
	if err != nil {
		return nil, err
	}
	trF, err := sim.Run(sim.Config{Model: m, Attack: attF, Strategy: sim.FixedWindow, Seed: seed})
	if err != nil {
		return nil, err
	}

	metA, metF := sim.Analyze(trA), sim.Analyze(trF)
	onset := trA.AttackStart

	// Deadline at onset, from the true state (the ground-truth reference
	// line of the figure).
	an, err := reach.New(m.Sys, m.U, m.Eps, m.MaxWindow)
	if err != nil {
		return nil, err
	}
	est, err := deadline.New(an, m.Safe, m.EstimatorRadius())
	if err != nil {
		return nil, err
	}
	td := est.FromState(trA.Records[onset].TrueState)

	panel := &Fig6Panel{
		Simulator:     m.Name,
		Attack:        attackName,
		AttackStart:   onset,
		Deadline:      td,
		DeadlineStep:  onset + td,
		AdaptiveAlert: metA.FirstAlarm,
		FixedAlert:    metF.FirstAlarm,
		UnsafeStep:    metA.UnsafeStep,
		State:         make([]float64, len(trA.Records)),
		Ref:           make([]float64, len(trA.Records)),
	}
	for i, r := range trA.Records {
		panel.State[i] = r.TrueState[m.CtrlDim]
		panel.Ref[i] = r.Ref
	}
	return panel, nil
}

// InTime reports whether the adaptive alert landed at or before the
// deadline step while the fixed alert did not — the paper's headline
// observation for every Fig. 6 panel.
func (p *Fig6Panel) InTime() (adaptiveInTime, fixedInTime bool) {
	adaptiveInTime = p.AdaptiveAlert >= 0 && p.AdaptiveAlert <= p.DeadlineStep
	fixedInTime = p.FixedAlert >= 0 && p.FixedAlert <= p.DeadlineStep
	return
}

// RenderFig6 charts each panel and summarizes alert timing.
func RenderFig6(panels []Fig6Panel) string {
	var b strings.Builder
	for i := range panels {
		p := &panels[i]
		b.WriteString(RenderChart(
			fmt.Sprintf("Fig 6 panel: %s under %s attack (actual state vs reference)", p.Simulator, p.Attack),
			72, 10,
			Series{Name: "actual state", Values: p.State},
			Series{Name: "reference", Values: p.Ref},
		))
		ai, fi := p.InTime()
		fmt.Fprintf(&b, "attack start: step %d   deadline: step %d (t_d = %d)\n",
			p.AttackStart, p.DeadlineStep, p.Deadline)
		fmt.Fprintf(&b, "adaptive alert: %s   fixed alert: %s   unsafe entry: %s\n",
			alertString(p.AdaptiveAlert, ai), alertString(p.FixedAlert, fi), stepString(p.UnsafeStep))
		b.WriteString("\n")
	}
	return b.String()
}

func alertString(step int, inTime bool) string {
	if step < 0 {
		return "never (untimely)"
	}
	verdict := "untimely"
	if inTime {
		verdict = "in time"
	}
	return fmt.Sprintf("step %d (%s)", step, verdict)
}

func stepString(step int) string {
	if step < 0 {
		return "never"
	}
	return fmt.Sprintf("step %d", step)
}

// AllTraces extends the Fig. 6 comparison to every simulator and every
// attack scenario (the appendix the paper says it omits for space: "Fig. 6
// shows part of the results"). 15 panels: 5 plants x 3 attacks.
func AllTraces(seed uint64) ([]Fig6Panel, error) {
	var panels []Fig6Panel
	for _, m := range models.All() {
		for _, attackName := range []string{"bias", "delay", "replay"} {
			panel, err := TracePanel(m, attackName, seed)
			if err != nil {
				return nil, err
			}
			panels = append(panels, *panel)
		}
	}
	return panels, nil
}
