// Package exp contains the drivers that regenerate every table and figure
// of the paper's evaluation (Sec. 6) plus the ablation studies listed in
// DESIGN.md, and plain-text renderers for their output. Each experiment is
// a pure function of (configuration, seed) so the cmd/awdexp tool and the
// benchmark harness share the same code paths.
package exp

import (
	"fmt"
	"math"
	"strings"
)

// RenderTable renders rows as a fixed-width text table with a header rule.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)) + "\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of y-values sampled at consecutive x steps.
type Series struct {
	Name   string
	Values []float64
}

// RenderChart renders one or more series as a fixed-height ASCII line chart
// with shared axes — enough to eyeball the shape of a paper figure in a
// terminal. Markers: each series uses successive glyphs (*, o, +, x, #).
func RenderChart(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#'}

	minY, maxY := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 || math.IsInf(minY, 1) {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for x, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			col := x * (width - 1) / max(maxLen-1, 1)
			rowF := (v - minY) / (maxY - minY)
			row := height - 1 - int(math.Round(rowF*float64(height-1)))
			grid[row][col] = g
		}
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%11.4g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%11s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%11.4g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "%11s └%s\n", "", strings.Repeat("─", width))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	b.WriteString("             " + strings.Join(legend, "   ") + "\n")
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
