package exp

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/sim"
)

// AblationRow compares a design variant against the full system on one
// plant/attack pair.
type AblationRow struct {
	Case      string
	Variant   string
	FP        int
	FN        int
	DM        int
	MeanDelay float64
}

// AblationComplementary quantifies the complementary detection pass
// (Sec. 4.2.1): the same adaptive campaign with and without it. Without the
// pass, samples escaping a shrinking window go unchecked, so detection
// comes later (or never) on attacks hidden inside a previously-large
// window.
func AblationComplementary(runs int, seed uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, m := range models.All() {
		for _, attackName := range []string{"bias", "replay"} {
			for _, disabled := range []bool{false, true} {
				att, err := sim.BuildAttack(m, attackName)
				if err != nil {
					return nil, err
				}
				res, err := sim.Campaign(sim.Config{
					Model:                m,
					Attack:               att,
					Strategy:             sim.Adaptive,
					Seed:                 seed,
					DisableComplementary: disabled,
				}, runs)
				if err != nil {
					return nil, err
				}
				variant := "with complementary"
				if disabled {
					variant = "without complementary"
				}
				rows = append(rows, AblationRow{
					Case:      m.Name + "/" + attackName,
					Variant:   variant,
					FP:        res.FPExperiments,
					FN:        res.FNExperiments,
					DM:        res.DeadlineMisses,
					MeanDelay: res.MeanDelay,
				})
			}
		}
	}
	return rows, nil
}

// AblationMaxWindow sweeps the maximum detection window w_m on the
// aircraft-pitch plant under the bias attack, showing its effect on FP
// experiments and deadline misses (Sec. 4.3's design knob). Aircraft pitch
// operates with reachability deadlines around 15-20 steps, so the cap binds
// for small w_m (forcing shorter, noisier windows) and is inactive for
// large w_m.
func AblationMaxWindow(runs int, seed uint64, windows []int) ([]AblationRow, error) {
	if len(windows) == 0 {
		windows = []int{5, 10, 20, 40, 80}
	}
	base := models.AircraftPitch()
	var rows []AblationRow
	for _, wm := range windows {
		m := models.AircraftPitch()
		m.MaxWindow = wm
		att, err := sim.BuildAttack(m, "bias")
		if err != nil {
			return nil, err
		}
		res, err := sim.Campaign(sim.Config{
			Model:    m,
			Attack:   att,
			Strategy: sim.Adaptive,
			Seed:     seed,
		}, runs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Case:      fmt.Sprintf("%s/bias", base.Name),
			Variant:   fmt.Sprintf("w_m = %d", wm),
			FP:        res.FPExperiments,
			FN:        res.FNExperiments,
			DM:        res.DeadlineMisses,
			MeanDelay: res.MeanDelay,
		})
	}
	return rows, nil
}

// AblationCUSUM compares the adaptive window detector against the classic
// stateful-chart baselines (CUSUM and EWMA) on every plant's bias
// scenario.
func AblationCUSUM(runs int, seed uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, m := range models.All() {
		for _, strat := range []sim.Strategy{sim.Adaptive, sim.CUSUMBaseline, sim.EWMABaseline} {
			att, err := sim.BuildAttack(m, "bias")
			if err != nil {
				return nil, err
			}
			res, err := sim.Campaign(sim.Config{
				Model:    m,
				Attack:   att,
				Strategy: strat,
				Seed:     seed,
			}, runs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Case:      m.Name + "/bias",
				Variant:   strat.String(),
				FP:        res.FPExperiments,
				FN:        res.FNExperiments,
				DM:        res.DeadlineMisses,
				MeanDelay: res.MeanDelay,
			})
		}
	}
	return rows, nil
}

// RenderAblation formats ablation rows.
func RenderAblation(title string, rows []AblationRow, runs int) string {
	headers := []string{"case", "variant", "#FP", "#FN", "#DM", "delay"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		delay := "-"
		if r.MeanDelay >= 0 {
			delay = fmt.Sprintf("%.1f", r.MeanDelay)
		}
		out = append(out, []string{
			r.Case, r.Variant,
			fmt.Sprintf("%d", r.FP), fmt.Sprintf("%d", r.FN), fmt.Sprintf("%d", r.DM), delay,
		})
	}
	return fmt.Sprintf("%s (out of %d runs per case)\n", title, runs) + RenderTable(headers, out)
}
