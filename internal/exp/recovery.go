package exp

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/sim"
)

// RecoveryRow summarizes a detection-plus-recovery campaign for one
// (plant, strategy) pair: how often the alarm came early enough for the
// LQR recovery maneuver (internal/recovery, after [13, 14]) to end the run
// inside the safe set.
type RecoveryRow struct {
	Simulator string
	Strategy  string
	Alarmed   int // runs where detection engaged recovery at all
	FinalSafe int // runs ending inside the safe set
	MeanError float64
}

// RecoveryStudy couples each detection strategy to the recovery controller
// under every plant's bias scenario. It demonstrates the downstream value
// of timely detection: recovery triggered by the adaptive detector engages
// in (almost) every run and lands the plant back in the safe set, while
// recovery gated on the fixed-window detector frequently never engages —
// the attack stays below the diluted threshold — and the plant stays
// compromised.
func RecoveryStudy(runs int, seed uint64) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, m := range models.All() {
		for _, strat := range []sim.Strategy{sim.Adaptive, sim.FixedWindow} {
			row := RecoveryRow{Simulator: m.Name, Strategy: strat.String()}
			sumErr := 0.0
			for i := 0; i < runs; i++ {
				att, err := sim.BuildAttack(m, "bias")
				if err != nil {
					return nil, err
				}
				out, err := sim.RunWithRecovery(sim.Config{
					Model:    m,
					Attack:   att,
					Strategy: strat,
					Seed:     seed + uint64(i)*7919,
				})
				if err != nil {
					return nil, err
				}
				if out.AlarmStep >= 0 {
					row.Alarmed++
				}
				if out.FinalSafe {
					row.FinalSafe++
				}
				sumErr += out.FinalError
			}
			if runs > 0 {
				row.MeanError = sumErr / float64(runs)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderRecovery formats the study.
func RenderRecovery(rows []RecoveryRow, runs int) string {
	headers := []string{"simulator", "strategy", "alarmed", "final safe", "mean |err|"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator, r.Strategy,
			fmt.Sprintf("%d/%d", r.Alarmed, runs),
			fmt.Sprintf("%d/%d", r.FinalSafe, runs),
			fmt.Sprintf("%.3g", r.MeanError),
		})
	}
	return fmt.Sprintf("Detection-triggered LQR recovery under the bias scenario (%d runs per case)\n", runs) +
		RenderTable(headers, out)
}
