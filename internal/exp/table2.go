package exp

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table2Row is one (simulator, attack, strategy) line of paper Table 2.
type Table2Row struct {
	Simulator string
	Attack    string
	Strategy  string
	FP        int // runs whose pre-attack false-positive rate exceeds 10%
	DM        int // runs where the state went unsafe before the first alarm
	FN        int // runs where the attack was never detected (extra column)
	MeanDelay float64
}

// Table2Config parameterizes the campaign; zero values take the paper's.
type Table2Config struct {
	Runs int    // experiments per case (paper: 100)
	Seed uint64 // base seed
	// Workers sizes the worker pool per case (0 = GOMAXPROCS). Results are
	// identical to serial execution — runs are independently seeded.
	Workers int
	// Observer streams live telemetry from every campaign run (nil = off);
	// its instruments are atomic, so parallel workers share it safely.
	Observer *obs.Observer
}

// Table2 runs the full campaign of Sec. 6.1.3: all 5 simulators x 3 attacks
// x {adaptive, fixed} strategies, Runs seeded experiments each, counting
// false-positive experiments and deadline misses.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 100
	}
	var rows []Table2Row
	for _, m := range models.All() {
		for _, attackName := range []string{"bias", "delay", "replay"} {
			for _, strat := range []sim.Strategy{sim.Adaptive, sim.FixedWindow} {
				m, attackName := m, attackName
				res, err := sim.CampaignParallel(sim.Config{
					Model:    m,
					Strategy: strat,
					Seed:     cfg.Seed,
					Observer: cfg.Observer,
				}, cfg.Runs, cfg.Workers, func() (attack.Attack, error) {
					return sim.BuildAttack(m, attackName)
				})
				if err != nil {
					return nil, fmt.Errorf("table2 %s/%s/%v: %w", m.Name, attackName, strat, err)
				}
				rows = append(rows, Table2Row{
					Simulator: m.Name,
					Attack:    attackName,
					Strategy:  strat.String(),
					FP:        res.FPExperiments,
					DM:        res.DeadlineMisses,
					FN:        res.FNExperiments,
					MeanDelay: res.MeanDelay,
				})
			}
		}
	}
	return rows, nil
}

// RenderTable2 formats the campaign like the paper's Table 2 (plus the
// auxiliary FN and mean-delay columns this reproduction also records).
// FP and DM counts carry 95% Wilson intervals so readers can judge the
// Monte-Carlo noise on the "out of 100" counters.
func RenderTable2(rows []Table2Row, runs int) string {
	headers := []string{"Simulator", "Attack", "Strategy", "#FP (95% CI)", "#DM (95% CI)", "#FN", "delay"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		delay := "-"
		if r.MeanDelay >= 0 {
			delay = fmt.Sprintf("%.1f", r.MeanDelay)
		}
		out = append(out, []string{
			r.Simulator, r.Attack, r.Strategy,
			stats.FormatCount(r.FP, runs), stats.FormatCount(r.DM, runs),
			fmt.Sprintf("%d", r.FN), delay,
		})
	}
	return fmt.Sprintf("Table 2: #FP and #DM out of %d simulations per case\n", runs) +
		RenderTable(headers, out)
}
