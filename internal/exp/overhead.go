package exp

import (
	"fmt"
	"testing"

	"repro/internal/deadline"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/reach"
	"repro/internal/sim"
)

// OverheadRow reports the measured run-time cost of the detection pipeline
// for one plant — the quantitative form of the paper's requirement that
// "the overhead of the calculation should be low; otherwise, the
// calculated deadline may be outdated" (Sec. 1).
type OverheadRow struct {
	Simulator string
	StateDim  int
	// Nanoseconds per operation.
	FullStepNs   float64 // assembled system: log + deadline + window check
	DeadlineNs   float64 // isolated reachability deadline query
	PrecomputeNs float64 // one-time table construction (amortized away)
	// ControlPeriodNs is the plant's control period for comparison.
	ControlPeriodNs float64
}

// Overhead benchmarks the per-control-period cost of the adaptive pipeline
// for every plant, using testing.Benchmark so the numbers are measured the
// same way `go test -bench` measures them.
func Overhead() ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, m := range models.All() {
		det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
		if err != nil {
			return nil, err
		}
		est := m.X0.Clone()
		u := mat.NewVec(m.Sys.InputDim())
		full := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := det.Step(est, u); err != nil {
					b.Fatal(err)
				}
			}
		})

		an, err := reach.New(m.Sys, m.U, m.Eps, m.MaxWindow)
		if err != nil {
			return nil, err
		}
		dl, err := deadline.New(an, m.Safe, m.EstimatorRadius())
		if err != nil {
			return nil, err
		}
		dlBench := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = dl.FromState(m.X0)
			}
		})

		pre := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reach.New(m.Sys, m.U, m.Eps, m.MaxWindow); err != nil {
					b.Fatal(err)
				}
			}
		})

		rows = append(rows, OverheadRow{
			Simulator:       m.Name,
			StateDim:        m.Sys.StateDim(),
			FullStepNs:      float64(full.NsPerOp()),
			DeadlineNs:      float64(dlBench.NsPerOp()),
			PrecomputeNs:    float64(pre.NsPerOp()),
			ControlPeriodNs: m.Sys.Dt * 1e9,
		})
	}
	return rows, nil
}

// RenderOverhead formats the efficiency table with the utilization each
// cost implies against the plant's control period.
func RenderOverhead(rows []OverheadRow) string {
	headers := []string{"simulator", "n", "full step", "deadline query", "precompute (once)", "period", "step/period"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator,
			fmt.Sprintf("%d", r.StateDim),
			fmtNs(r.FullStepNs),
			fmtNs(r.DeadlineNs),
			fmtNs(r.PrecomputeNs),
			fmtNs(r.ControlPeriodNs),
			fmt.Sprintf("%.5f%%", 100*r.FullStepNs/r.ControlPeriodNs),
		})
	}
	return "Run-time overhead of the adaptive detection pipeline (measured via testing.Benchmark)\n" +
		RenderTable(headers, out)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}
