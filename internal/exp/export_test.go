package exp

import (
	"bytes"
	"encoding/csv"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTable2CSV(t *testing.T) {
	var buf bytes.Buffer
	err := Table2CSV([]Table2Row{
		{Simulator: "a", Attack: "bias", Strategy: "adaptive", FP: 1, DM: 2, FN: 3, MeanDelay: 4.5},
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 || rows[1][0] != "a" || rows[1][3] != "1" || rows[1][6] != "4.5" {
		t.Errorf("rows = %v", rows)
	}
}

func TestFig7AndThresholdCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7CSV([]Fig7Point{{Window: 5, FP: 7, FN: 0}}, &buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][0] != "5" || rows[1][1] != "7" {
		t.Errorf("fig7 rows = %v", rows)
	}
	buf.Reset()
	if err := ThresholdCSV([]ThresholdPoint{{Multiplier: 1.5, FP: 2, FN: 1}}, &buf); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if rows[1][0] != "1.5" || rows[1][2] != "1" {
		t.Errorf("threshold rows = %v", rows)
	}
}

func TestAblationAndRecoveryCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationCSV([]AblationRow{{Case: "c", Variant: "v", FP: 1, FN: 2, DM: 3, MeanDelay: -1}}, &buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][1] != "v" || rows[1][5] != "-1" {
		t.Errorf("ablation rows = %v", rows)
	}
	buf.Reset()
	if err := RecoveryCSV([]RecoveryRow{{Simulator: "s", Strategy: "adaptive", Alarmed: 9, FinalSafe: 8, MeanError: 0.5}}, &buf); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if rows[1][2] != "9" || rows[1][4] != "0.5" {
		t.Errorf("recovery rows = %v", rows)
	}
}

func TestFig6AndFig8CSV(t *testing.T) {
	var buf bytes.Buffer
	panels := []Fig6Panel{{
		Simulator: "vehicle-turning", Attack: "bias",
		AttackStart: 160, Deadline: 2, DeadlineStep: 162,
		AdaptiveAlert: 160, FixedAlert: -1, UnsafeStep: 175,
	}}
	if err := Fig6CSV(panels, &buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][4] != "162" || rows[1][6] != "-1" {
		t.Errorf("fig6 rows = %v", rows)
	}

	buf.Reset()
	r := &Fig8Result{
		AttackStart: 1, AdaptiveAlert: 1, FixedAlert: 2, UnsafeStep: 2,
		SpeedMS: []float64{4, 3.5, 2.1},
	}
	if err := Fig8CSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if len(rows) != 4 {
		t.Fatalf("fig8 rows = %d", len(rows))
	}
	if rows[2][3] != "adaptive" || rows[3][3] != "fixed" {
		t.Errorf("alert annotations wrong: %v", rows)
	}
	if rows[1][2] != "false" || rows[2][2] != "true" {
		t.Errorf("attack flags wrong: %v", rows)
	}
}

func TestNewExperimentCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := MagnitudeCSV([]MagnitudePoint{{Scale: 2, UnsafeRuns: 5, AdaptiveDetected: 5, FixedDetected: 1, FixedDM: 4}}, &buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); rows[1][0] != "2" || rows[1][5] != "4" {
		t.Errorf("magnitude rows = %v", rows)
	}
	buf.Reset()
	if err := ValidationCSV([]DeadlineValidationRow{{Simulator: "s", States: 3, Trials: 2, MeanDeadline: 7.5}}, &buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); rows[1][3] != "7.5" || rows[1][4] != "0" {
		t.Errorf("validation rows = %v", rows)
	}
	buf.Reset()
	if err := StealthyCSV([]StealthyRow{{Simulator: "s", Alpha: 0.5, MaxDeviation: 1.25, StealthCeiling: 2}}, &buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); rows[1][1] != "0.5" || rows[1][4] != "1.25" {
		t.Errorf("stealthy rows = %v", rows)
	}
	buf.Reset()
	if err := OverheadCSV([]OverheadRow{{Simulator: "s", StateDim: 3, FullStepNs: 1000}}, &buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); rows[1][2] != "1000" {
		t.Errorf("overhead rows = %v", rows)
	}
}
