package exp

import (
	"repro/internal/attack"
	"repro/internal/models"
	"repro/internal/sim"
)

// ExtendedScenarios runs the Sec. 2 threat-model scenarios that go beyond
// the paper's three headline attacks — freeze (availability/DoS), ramp
// (stealthy integrity), and noise injection (transduction) — comparing the
// adaptive detector against the fixed baseline across all five plants.
// The ramp scenario is the sharpest stress test of the paper's design:
// without an onset discontinuity, a fixed window only ever sees the small
// sustained mismatch, while the adaptive window shrinks as the ramp drags
// the plant toward the unsafe set.
func ExtendedScenarios(runs int, seed uint64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, m := range models.All() {
		for _, attackName := range []string{"freeze", "ramp", "noise"} {
			for _, strat := range []sim.Strategy{sim.Adaptive, sim.FixedWindow} {
				m, attackName := m, attackName
				res, err := sim.CampaignParallel(sim.Config{
					Model:    m,
					Strategy: strat,
					Seed:     seed,
				}, runs, 0, func() (attack.Attack, error) {
					return sim.BuildAttack(m, attackName)
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Table2Row{
					Simulator: m.Name,
					Attack:    attackName,
					Strategy:  strat.String(),
					FP:        res.FPExperiments,
					DM:        res.DeadlineMisses,
					FN:        res.FNExperiments,
					MeanDelay: res.MeanDelay,
				})
			}
		}
	}
	return rows, nil
}
