package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters so the regenerated artifacts can feed external plotting
// tools. One emitter per experiment type; all stream through encoding/csv.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table2CSV streams Table 2 (or extended-scenario) rows.
func Table2CSV(rows []Table2Row, w io.Writer) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator, r.Attack, r.Strategy,
			strconv.Itoa(r.FP), strconv.Itoa(r.DM), strconv.Itoa(r.FN),
			strconv.FormatFloat(r.MeanDelay, 'g', -1, 64),
		})
	}
	return writeCSV(w, []string{"simulator", "attack", "strategy", "fp", "dm", "fn", "mean_delay"}, out)
}

// Fig7CSV streams the window-profiling points.
func Fig7CSV(points []Fig7Point, w io.Writer) error {
	out := make([][]string, 0, len(points))
	for _, p := range points {
		out = append(out, []string{
			strconv.Itoa(p.Window), strconv.Itoa(p.FP), strconv.Itoa(p.FN),
		})
	}
	return writeCSV(w, []string{"window", "fp", "fn"}, out)
}

// ThresholdCSV streams the τ-profiling points.
func ThresholdCSV(points []ThresholdPoint, w io.Writer) error {
	out := make([][]string, 0, len(points))
	for _, p := range points {
		out = append(out, []string{
			strconv.FormatFloat(p.Multiplier, 'g', -1, 64),
			strconv.Itoa(p.FP), strconv.Itoa(p.FN),
		})
	}
	return writeCSV(w, []string{"tau_multiplier", "fp", "fn"}, out)
}

// AblationCSV streams ablation rows.
func AblationCSV(rows []AblationRow, w io.Writer) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Case, r.Variant,
			strconv.Itoa(r.FP), strconv.Itoa(r.FN), strconv.Itoa(r.DM),
			strconv.FormatFloat(r.MeanDelay, 'g', -1, 64),
		})
	}
	return writeCSV(w, []string{"case", "variant", "fp", "fn", "dm", "mean_delay"}, out)
}

// RecoveryCSV streams recovery-study rows.
func RecoveryCSV(rows []RecoveryRow, w io.Writer) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator, r.Strategy,
			strconv.Itoa(r.Alarmed), strconv.Itoa(r.FinalSafe),
			strconv.FormatFloat(r.MeanError, 'g', -1, 64),
		})
	}
	return writeCSV(w, []string{"simulator", "strategy", "alarmed", "final_safe", "mean_error"}, out)
}

// Fig6CSV streams the Fig. 6 panel summaries (one row per panel; the
// per-step traces are available via awdsim -csv).
func Fig6CSV(panels []Fig6Panel, w io.Writer) error {
	out := make([][]string, 0, len(panels))
	for i := range panels {
		p := &panels[i]
		out = append(out, []string{
			p.Simulator, p.Attack,
			strconv.Itoa(p.AttackStart), strconv.Itoa(p.Deadline), strconv.Itoa(p.DeadlineStep),
			strconv.Itoa(p.AdaptiveAlert), strconv.Itoa(p.FixedAlert), strconv.Itoa(p.UnsafeStep),
		})
	}
	return writeCSV(w, []string{
		"simulator", "attack", "attack_start", "deadline", "deadline_step",
		"adaptive_alert", "fixed_alert", "unsafe_step",
	}, out)
}

// Fig8CSV streams the testbed speed trace.
func Fig8CSV(r *Fig8Result, w io.Writer) error {
	out := make([][]string, 0, len(r.SpeedMS))
	for i, v := range r.SpeedMS {
		alert := ""
		switch i {
		case r.AdaptiveAlert:
			alert = "adaptive"
		case r.FixedAlert:
			alert = "fixed"
		}
		out = append(out, []string{
			strconv.Itoa(i),
			strconv.FormatFloat(v, 'g', -1, 64),
			fmt.Sprintf("%v", i >= r.AttackStart),
			alert,
		})
	}
	return writeCSV(w, []string{"step", "speed_ms", "attack_active", "first_alert"}, out)
}

// MagnitudeCSV streams the attack-magnitude sweep.
func MagnitudeCSV(points []MagnitudePoint, w io.Writer) error {
	out := make([][]string, 0, len(points))
	for _, p := range points {
		out = append(out, []string{
			strconv.FormatFloat(p.Scale, 'g', -1, 64),
			strconv.Itoa(p.UnsafeRuns),
			strconv.Itoa(p.AdaptiveDetected), strconv.Itoa(p.FixedDetected),
			strconv.Itoa(p.AdaptiveDM), strconv.Itoa(p.FixedDM),
		})
	}
	return writeCSV(w, []string{"scale", "unsafe", "adaptive_detected", "fixed_detected", "adaptive_dm", "fixed_dm"}, out)
}

// ValidationCSV streams the conservativeness-validation rows.
func ValidationCSV(rows []DeadlineValidationRow, w io.Writer) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator, strconv.Itoa(r.States), strconv.Itoa(r.Trials),
			strconv.FormatFloat(r.MeanDeadline, 'g', -1, 64), strconv.Itoa(r.Violations),
		})
	}
	return writeCSV(w, []string{"simulator", "states", "trials", "mean_deadline", "violations"}, out)
}

// StealthyCSV streams the stealthy-impact rows.
func StealthyCSV(rows []StealthyRow, w io.Writer) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator,
			strconv.FormatFloat(r.Alpha, 'g', -1, 64),
			strconv.Itoa(r.Detected), strconv.Itoa(r.UnsafeRuns),
			strconv.FormatFloat(r.MaxDeviation, 'g', -1, 64),
			strconv.FormatFloat(r.StealthCeiling, 'g', -1, 64),
		})
	}
	return writeCSV(w, []string{"simulator", "alpha", "detected", "unsafe", "max_deviation", "stealth_ceiling"}, out)
}

// OverheadCSV streams the overhead rows (nanoseconds).
func OverheadCSV(rows []OverheadRow, w io.Writer) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Simulator, strconv.Itoa(r.StateDim),
			strconv.FormatFloat(r.FullStepNs, 'g', -1, 64),
			strconv.FormatFloat(r.DeadlineNs, 'g', -1, 64),
			strconv.FormatFloat(r.PrecomputeNs, 'g', -1, 64),
			strconv.FormatFloat(r.ControlPeriodNs, 'g', -1, 64),
		})
	}
	return writeCSV(w, []string{"simulator", "n", "full_step_ns", "deadline_ns", "precompute_ns", "period_ns"}, out)
}
