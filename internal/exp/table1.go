package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/models"
)

// Table1 renders the simulation settings table (paper Table 1): per
// simulator the control step size δ, PID gains, input range U, uncertainty
// bound ε, safe set S, and detection threshold τ.
func Table1() string {
	headers := []string{"No.", "Simulator", "δ", "PID", "U", "ε", "S", "τ"}
	var rows [][]string
	for _, m := range models.All() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", m.No),
			m.Name,
			fmt.Sprintf("%.2f", m.Sys.Dt),
			fmt.Sprintf("%g,%g,%g", m.PID[0], m.PID[1], m.PID[2]),
			fmt.Sprintf("[%g, %g]", m.U.Interval(0).Lo, m.U.Interval(0).Hi),
			fmt.Sprintf("%.3g", m.Eps),
			safeSetString(m.Safe),
			tauString(m),
		})
	}
	return RenderTable(headers, rows)
}

func safeSetString(s geom.Box) string {
	parts := make([]string, 0, s.Dim())
	for i := 0; i < s.Dim(); i++ {
		iv := s.Interval(i)
		if math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1) {
			parts = append(parts, "(-inf, inf)")
			continue
		}
		parts = append(parts, fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi))
	}
	// Collapse long uniform products (the quadrotor's 12 dims).
	if len(parts) > 4 {
		bounded := ""
		for i := 0; i < s.Dim(); i++ {
			if s.Interval(i).Bounded() {
				bounded = fmt.Sprintf("dim %d in [%g, %g], rest unbounded",
					i, s.Interval(i).Lo, s.Interval(i).Hi)
				break
			}
		}
		if bounded != "" {
			return bounded
		}
	}
	return strings.Join(parts, " x ")
}

func tauString(m *models.Model) string {
	uniform := true
	for _, v := range m.Tau[1:] {
		if v != m.Tau[0] {
			uniform = false
			break
		}
	}
	if uniform && len(m.Tau) > 1 {
		return fmt.Sprintf("[%g, ...] x%d", m.Tau[0], len(m.Tau))
	}
	parts := make([]string, len(m.Tau))
	for i, v := range m.Tau {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
