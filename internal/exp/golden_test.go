package exp

import (
	"strings"
	"testing"
)

// Golden renderings: the text output formats are part of the tool's
// contract (results_full.txt, EXPERIMENTS.md quote them), so pin them down
// exactly for small deterministic inputs.

func TestGoldenRenderTable(t *testing.T) {
	got := RenderTable(
		[]string{"name", "n"},
		[][]string{{"alpha", "1"}, {"bravo", "22"}},
	)
	want := "" +
		"name   n \n" +
		"---------\n" +
		"alpha  1 \n" +
		"bravo  22\n"
	if got != want {
		t.Errorf("golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestGoldenRenderChart(t *testing.T) {
	got := RenderChart("ramp", 16, 4, Series{Name: "r", Values: []float64{0, 1, 2, 3}})
	lines := strings.Split(got, "\n")
	if lines[0] != "ramp" {
		t.Errorf("title line = %q", lines[0])
	}
	// Top row carries the max label and the final point; bottom row the min
	// label and the first point.
	if !strings.Contains(lines[1], "3") || !strings.HasSuffix(lines[1], "*") {
		t.Errorf("top row = %q", lines[1])
	}
	if !strings.Contains(lines[4], "0") || !strings.Contains(lines[4], "*") {
		t.Errorf("bottom row = %q", lines[4])
	}
	if !strings.Contains(lines[len(lines)-2], "* r") {
		t.Errorf("legend = %q", lines[len(lines)-2])
	}
}

func TestGoldenTable2Row(t *testing.T) {
	out := RenderTable2([]Table2Row{{
		Simulator: "demo", Attack: "bias", Strategy: "adaptive",
		FP: 25, DM: 0, FN: 0, MeanDelay: 1.5,
	}}, 100)
	if !strings.Contains(out, "25/100") {
		t.Errorf("FP count with CI missing: %s", out)
	}
	if !strings.Contains(out, "0/100") {
		t.Errorf("DM count with CI missing: %s", out)
	}
	if !strings.Contains(out, "1.5") {
		t.Errorf("delay missing: %s", out)
	}
}

func TestGoldenRenderRecoveryRow(t *testing.T) {
	out := RenderRecovery([]RecoveryRow{{
		Simulator: "demo", Strategy: "adaptive", Alarmed: 9, FinalSafe: 8, MeanError: 0.125,
	}}, 10)
	for _, frag := range []string{"9/10", "8/10", "0.125"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}
