package exp

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/models"
	"repro/internal/sim"
)

// ThresholdPoint is one x-position of the τ-profiling sweep: FP and FN
// experiment counts at a given threshold multiplier.
type ThresholdPoint struct {
	Multiplier float64
	FP         int
	FN         int
}

// ThresholdSweep profiles the detection threshold τ — the second
// hyper-parameter of the basic detector (Sec. 4.1). The paper focuses on
// the window dimension and notes that "for false negatives, regulating the
// threshold τ is more desired"; this sweep substantiates that remark: on
// the aircraft-pitch bias scenario with the window held at w_m, scaling τ
// down floods the detector with false positives, scaling it up breeds
// false negatives — the same trade-off as Fig. 7, but along the other
// axis.
func ThresholdSweep(runs int, seed uint64, multipliers []float64) ([]ThresholdPoint, error) {
	if runs <= 0 {
		runs = 100
	}
	if len(multipliers) == 0 {
		multipliers = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4}
	}
	var points []ThresholdPoint
	for _, mult := range multipliers {
		if mult <= 0 {
			return nil, fmt.Errorf("exp: non-positive threshold multiplier %v", mult)
		}
		m := models.AircraftPitch()
		m.Tau = m.Tau.Scale(mult)
		fp, fn := 0, 0
		for run := 0; run < runs; run++ {
			att := attack.NewBias(attack.Schedule{
				Start: m.Attack.BiasStart,
				End:   m.Attack.BiasStart + 15,
			}, m.Attack.Bias)
			tr, err := sim.Run(sim.Config{
				Model:    m,
				Attack:   att,
				Strategy: sim.FixedWindow, // window held at w_m; τ is the knob
				Seed:     seed + uint64(run)*7919,
			})
			if err != nil {
				return nil, err
			}
			met := sim.Analyze(tr)
			if met.FPRate > sim.FPRateThreshold {
				fp++
			}
			if !met.Detected {
				fn++
			}
		}
		points = append(points, ThresholdPoint{Multiplier: mult, FP: fp, FN: fn})
	}
	return points, nil
}

// RenderThresholdSweep formats the τ profile.
func RenderThresholdSweep(points []ThresholdPoint, runs int) string {
	fp := make([]float64, len(points))
	fn := make([]float64, len(points))
	for i, p := range points {
		fp[i] = float64(p.FP)
		fn[i] = float64(p.FN)
	}
	chart := RenderChart(
		fmt.Sprintf("Threshold sweep: FP/FN experiments (of %d) vs τ multiplier (aircraft pitch, w = w_m)", runs),
		72, 12,
		Series{Name: "false positive experiments", Values: fp},
		Series{Name: "false negative experiments", Values: fn},
	)
	headers := []string{"τ multiplier", "#FP", "#FN"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Multiplier), fmt.Sprintf("%d", p.FP), fmt.Sprintf("%d", p.FN),
		})
	}
	return chart + "\n" + RenderTable(headers, rows)
}
