package models

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestAllReturnsFiveSimulatorsInPaperOrder(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d models", len(all))
	}
	wantNames := []string{"aircraft-pitch", "vehicle-turning", "series-rlc", "dc-motor", "quadrotor"}
	for i, m := range all {
		if m.Name != wantNames[i] {
			t.Errorf("model %d = %q, want %q", i, m.Name, wantNames[i])
		}
		if m.No != i+1 {
			t.Errorf("%s No = %d, want %d", m.Name, m.No, i+1)
		}
	}
}

func TestByName(t *testing.T) {
	if m := ByName("quadrotor"); m == nil || m.Name != "quadrotor" {
		t.Error("ByName(quadrotor) failed")
	}
	if m := ByName("testbed-car"); m == nil || m.No != 0 {
		t.Error("ByName(testbed-car) failed")
	}
	if ByName("warp-drive") != nil {
		t.Error("unknown name should return nil")
	}
}

// Table 1 row checks: δ, PID, U, ε, τ must match the paper.
func TestTable1Parameters(t *testing.T) {
	cases := []struct {
		m     *Model
		dt    float64
		pid   [3]float64
		uLo   float64
		uHi   float64
		eps   float64
		tau0  float64
		nDims int
	}{
		{AircraftPitch(), 0.02, [3]float64{14, 0.8, 5.7}, -7, 7, 7.8e-3, 0.012, 3},
		{VehicleTurning(), 0.02, [3]float64{0.5, 7, 0}, -3, 3, 7.5e-2, 0.07, 1},
		{SeriesRLC(), 0.02, [3]float64{5, 5, 0}, -5, 5, 1.7e-2, 0.04, 2},
		{DCMotorPosition(), 0.1, [3]float64{11, 0, 5}, -20, 20, 1.5e-1, 0.118, 3},
		{Quadrotor(), 0.1, [3]float64{0.8, 0, 1}, -2, 2, 1.56e-15, 0.018, 12},
	}
	for _, c := range cases {
		if c.m.Sys.Dt != c.dt {
			t.Errorf("%s dt = %v, want %v", c.m.Name, c.m.Sys.Dt, c.dt)
		}
		if c.m.PID != c.pid {
			t.Errorf("%s PID = %v, want %v", c.m.Name, c.m.PID, c.pid)
		}
		if c.m.U.Interval(0).Lo != c.uLo || c.m.U.Interval(0).Hi != c.uHi {
			t.Errorf("%s U = %v, want [%v, %v]", c.m.Name, c.m.U, c.uLo, c.uHi)
		}
		if c.m.Eps != c.eps {
			t.Errorf("%s eps = %v, want %v", c.m.Name, c.m.Eps, c.eps)
		}
		if len(c.m.Tau) != c.nDims {
			t.Errorf("%s tau has %d dims, want %d", c.m.Name, len(c.m.Tau), c.nDims)
		}
		for i, tv := range c.m.Tau {
			// Quadrotor and aircraft use a uniform τ; RLC differs by dim.
			if i == 0 && math.Abs(tv-c.tau0) > 1e-12 {
				t.Errorf("%s tau[0] = %v, want %v", c.m.Name, tv, c.tau0)
			}
		}
	}
}

func TestTable1SafeSets(t *testing.T) {
	a := AircraftPitch()
	if !a.Safe.Contains(mat.VecOf(1e9, -1e9, 0)) {
		t.Error("aircraft safe set should be unbounded in α, q")
	}
	if a.Safe.Contains(mat.VecOf(0, 0, 2.6)) || !a.Safe.Contains(mat.VecOf(0, 0, 2.5)) {
		t.Error("aircraft θ bound wrong")
	}
	v := VehicleTurning()
	if v.Safe.Contains(mat.VecOf(2.1)) || !v.Safe.Contains(mat.VecOf(-2)) {
		t.Error("vehicle safe bound wrong")
	}
	r := SeriesRLC()
	if r.Safe.Contains(mat.VecOf(3.6, 0)) || r.Safe.Contains(mat.VecOf(0, 5.1)) {
		t.Error("RLC safe bounds wrong")
	}
	d := DCMotorPosition()
	if d.Safe.Contains(mat.VecOf(4.1, 0, 0)) || !d.Safe.Contains(mat.VecOf(0, 1e9, -1e9)) {
		t.Error("DC motor safe bounds wrong")
	}
	q := Quadrotor()
	bad := mat.NewVec(12)
	bad[2] = 5.2
	if q.Safe.Contains(bad) {
		t.Error("quadrotor altitude bound wrong")
	}
}

func TestTestbedCarIdentifiedModel(t *testing.T) {
	m := TestbedCar()
	if math.Abs(m.Sys.A.At(0, 0)-8.435e-1) > 1e-12 {
		t.Errorf("A = %v", m.Sys.A.At(0, 0))
	}
	if math.Abs(m.Sys.B.At(0, 0)-7.7919e-4) > 1e-12 {
		t.Errorf("B = %v", m.Sys.B.At(0, 0))
	}
	if math.Abs(m.Sys.C.At(0, 0)-3.843402e2) > 1e-9 {
		t.Errorf("C = %v", m.Sys.C.At(0, 0))
	}
	// Safe range [2, 10] m/s mapped through C.
	const cOut = 3.843402e2
	if math.Abs(m.Safe.Interval(0).Lo-2/cOut) > 1e-12 ||
		math.Abs(m.Safe.Interval(0).Hi-10/cOut) > 1e-12 {
		t.Errorf("safe range = %v", m.Safe)
	}
	if m.Tau[0] != 3.67e-3 {
		t.Errorf("tau = %v", m.Tau[0])
	}
	if m.U.Interval(0).Lo != 0 || m.U.Interval(0).Hi != 7.7 {
		t.Errorf("U = %v", m.U)
	}
	// Attack: +2.5 m/s at step 80 ("end of the 79th step").
	if m.Attack.BiasStart != 80 {
		t.Errorf("bias start = %d", m.Attack.BiasStart)
	}
	if math.Abs(m.Attack.Bias[0]-2.5/cOut) > 1e-12 {
		t.Errorf("bias = %v", m.Attack.Bias[0])
	}
}

func TestModelShapesConsistent(t *testing.T) {
	for _, m := range append(All(), TestbedCar()) {
		n := m.Sys.StateDim()
		if m.Safe.Dim() != n {
			t.Errorf("%s: safe dim %d != %d", m.Name, m.Safe.Dim(), n)
		}
		if len(m.Tau) != n {
			t.Errorf("%s: tau dim %d != %d", m.Name, len(m.Tau), n)
		}
		if len(m.SensorNoise) != n {
			t.Errorf("%s: sensor noise dim %d != %d", m.Name, len(m.SensorNoise), n)
		}
		if len(m.X0) != n {
			t.Errorf("%s: x0 dim %d != %d", m.Name, len(m.X0), n)
		}
		if m.U.Dim() != m.Sys.InputDim() {
			t.Errorf("%s: U dim %d != input dim %d", m.Name, m.U.Dim(), m.Sys.InputDim())
		}
		if m.CtrlDim < 0 || m.CtrlDim >= n {
			t.Errorf("%s: ctrl dim %d out of range", m.Name, m.CtrlDim)
		}
		if m.InputIdx < 0 || m.InputIdx >= m.Sys.InputDim() {
			t.Errorf("%s: input idx %d out of range", m.Name, m.InputIdx)
		}
		if m.MaxWindow < 1 || m.RunLength <= m.MaxWindow {
			t.Errorf("%s: window/run config inconsistent", m.Name)
		}
		if !m.Safe.Contains(m.X0) {
			t.Errorf("%s: x0 outside safe set", m.Name)
		}
		if len(m.Attack.Bias) != n {
			t.Errorf("%s: bias dim %d != %d", m.Name, len(m.Attack.Bias), n)
		}
		if m.Attack.RecordStart+m.Attack.ReplayLen > m.Attack.ReplayStart {
			t.Errorf("%s: replay recording overlaps attack", m.Name)
		}
		if m.EstimatorRadius() <= 0 {
			t.Errorf("%s: estimator radius %v", m.Name, m.EstimatorRadius())
		}
	}
}

func TestControllerIsFreshPerCall(t *testing.T) {
	m := VehicleTurning()
	c1 := m.Controller()
	c1.Update(1)
	c2 := m.Controller()
	if c1.Update(1) == c2.Update(1) {
		t.Error("controllers appear to share state (integral should differ)")
	}
}

func TestDiscretizationStable(t *testing.T) {
	// All plant discretizations must produce finite matrices, and the
	// closed-loop-relevant spectral radius proxy (operator norm of A^k for
	// moderate k) must stay finite.
	for _, m := range append(All(), TestbedCar()) {
		a40 := m.Sys.A.Pow(40)
		if math.IsNaN(a40.NormInf()) || math.IsInf(a40.NormInf(), 0) {
			t.Errorf("%s: A^40 not finite", m.Name)
		}
	}
}

func TestPlantsHaveRequiredStructuralProperties(t *testing.T) {
	// The recovery LQR needs controllability of the plant input path and
	// the observer extension needs observability; all evaluation plants
	// (which use full state output) must satisfy both.
	for _, m := range append(All(), TestbedCar()) {
		if !m.Sys.IsObservable() {
			t.Errorf("%s: not observable", m.Name)
		}
	}
	// Fully-actuated-enough plants for the LQR study.
	for _, name := range []string{"vehicle-turning", "series-rlc", "dc-motor", "testbed-car"} {
		m := ByName(name)
		if !m.Sys.IsControllable() {
			t.Errorf("%s: not controllable", name)
		}
	}
}
