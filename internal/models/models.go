// Package models defines the six physical systems of the evaluation: the
// five simulated LTI plants of Table 1 (aircraft pitch, vehicle turning,
// series RLC circuit, DC motor position, quadrotor) and the identified
// RC-car cruise-control model of the testbed (Sec. 6.2).
//
// The paper lists each plant's control step size δ, PID gains, input range
// U, uncertainty bound ε, safe set S, and detection threshold τ (Table 1)
// but not the A/B matrices; we instantiate the canonical textbook models its
// citations use (CTMS aircraft pitch and DC motor, a series RLC network, a
// first-order steering model, and the Sabatino linearized quadrotor),
// discretized at δ with zero-order hold.
//
// Two evaluation choices follow the paper's framing rather than explicit
// numbers it does not give:
//
//   - References operate near the safe-set boundary (the regime the paper
//     motivates: "if the current state of a physical system is close to the
//     unsafe region, lowering the detection delay is preferable").
//   - Attack magnitudes are below the fixed-window detectability limit
//     (onset spike diluted over w_m+1 samples stays under τ) while still
//     driving the plant into the unsafe set — the combination that produces
//     Table 2's contrast between timely adaptive detection and untimely
//     fixed-window detection.
//
// Sensor-noise amplitudes are chosen so that τ sits above the clean-run
// average residual, reproducing the qualitative Fig. 7 trade-off.
package models

import (
	"math"

	"repro/internal/control"
	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

// AttackDefaults carries the per-plant, per-scenario attack parameters used
// by the evaluation campaigns (Sec. 6.1.1). Each scenario has its own onset
// so it can interact with the reference phase that makes it dangerous (e.g.
// delay attacks are harmful during transients, bias attacks near steady
// state).
type AttackDefaults struct {
	// Duration the attack stays active once started (0 = until run end).
	Duration int

	BiasStart int
	Bias      mat.Vec // sensor offset for the bias scenario

	DelayStart int
	DelayLag   int // lag in control steps for the delay scenario

	ReplayStart int
	RecordStart int // replay recording window [RecordStart, RecordStart+ReplayLen)
	ReplayLen   int
}

// Model bundles a plant with its Table 1 hyper-parameters and evaluation
// defaults. Instances are immutable configuration; controllers and
// detectors are constructed fresh per run.
type Model struct {
	Name string
	No   int // Table 1 simulator number (0 for the testbed)

	Sys *lti.System

	// Control loop.
	PID      [3]float64 // Kp, Ki, Kd from Table 1
	CtrlDim  int        // state dimension the PID tracks
	InputIdx int        // input channel the PID drives
	Ref      control.Reference
	X0       mat.Vec

	// Table 1 detection parameters.
	U    geom.Box // control input range
	Eps  float64  // per-step uncertainty bound ε (2-norm)
	Safe geom.Box // safe state set S
	Tau  mat.Vec  // detection threshold τ per dimension

	// Evaluation configuration.
	MaxWindow   int     // w_m, the maximum detection window (Sec. 4.3)
	RunLength   int     // steps per experiment
	SensorNoise mat.Vec // uniform measurement-noise amplitude per dimension
	// InitRadius is the estimate-uncertainty ball the Deadline Estimator
	// assumes around the trusted initial state (Sec. 3.3.1). Zero derives
	// it from SensorNoise; larger values make deadlines more conservative.
	InitRadius float64
	Attack     AttackDefaults
}

// Controller builds the plant's PID controller (fresh state).
func (m *Model) Controller() *control.PID {
	return control.NewPID(m.PID[0], m.PID[1], m.PID[2], m.Sys.Dt)
}

// EstimatorRadius returns the initial-set ball radius the deadline
// estimator should assume: InitRadius if set, else the sensor-noise norm.
func (m *Model) EstimatorRadius() float64 {
	if m.InitRadius > 0 {
		return m.InitRadius
	}
	return m.SensorNoise.Norm2()
}

// AircraftPitch returns simulator 1: the CTMS aircraft pitch model with
// states (α attack angle, q pitch rate, θ pitch angle) and elevator input,
// PID on θ. Safe set bounds θ ∈ [−2.5, 2.5]; the commanded pitch steps from
// a cruise attitude to an aggressive 2.35 rad climb near the boundary.
func AircraftPitch() *Model {
	ac := mat.FromRows([][]float64{
		{-0.313, 56.7, 0},
		{-0.0139, -0.426, 0},
		{0, 56.7, 0},
	})
	bc := mat.ColVec(mat.VecOf(0.232, 0.0203, 0))
	sys := lti.MustDiscretize(ac, bc, nil, 0.02)
	return &Model{
		Name:     "aircraft-pitch",
		No:       1,
		Sys:      sys,
		PID:      [3]float64{14, 0.8, 5.7},
		CtrlDim:  2,
		InputIdx: 0,
		Ref:      control.StepRef{Before: 1.6, After: 2.35, At0: 100},
		X0:       mat.NewVec(3),
		U:        geom.UniformBox(1, -7, 7),
		Eps:      7.8e-3,
		Safe: geom.NewBox(
			geom.Whole(), geom.Whole(), geom.NewInterval(-2.5, 2.5),
		),
		Tau:         mat.VecOf(0.012, 0.012, 0.012),
		MaxWindow:   40,
		RunLength:   400,
		SensorNoise: mat.VecOf(0.009, 0.009, 0.009),
		Attack: AttackDefaults{
			Duration:    0,
			BiasStart:   160, // at the 2.35 rad operating point
			Bias:        mat.VecOf(0, 0, -0.35),
			DelayStart:  70, // stale data across the step-100 climb command
			DelayLag:    25,
			ReplayStart: 200, // replays the settling climb near the boundary
			RecordStart: 130,
			ReplayLen:   60,
		},
	}
}

// VehicleTurning returns simulator 2: a first-order yaw-rate steering model
// ψ̇ = −a ψ + b δ, the turning plant of [13]. Safe set bounds the yaw rate
// to [−2, 2]; the reference commands a 1.7 rad/s turn near the boundary.
func VehicleTurning() *Model {
	ac := mat.Diag(-1.2)
	bc := mat.ColVec(mat.VecOf(2.4))
	sys := lti.MustDiscretize(ac, bc, nil, 0.02)
	return &Model{
		Name:        "vehicle-turning",
		No:          2,
		Sys:         sys,
		PID:         [3]float64{0.5, 7, 0},
		CtrlDim:     0,
		InputIdx:    0,
		Ref:         control.StepRef{Before: 0, After: 1.7, At0: 100},
		X0:          mat.NewVec(1),
		U:           geom.UniformBox(1, -3, 3),
		Eps:         7.5e-2,
		Safe:        geom.NewBox(geom.NewInterval(-2, 2)),
		Tau:         mat.VecOf(0.07),
		MaxWindow:   40,
		RunLength:   400,
		SensorNoise: mat.VecOf(0.04),
		Attack: AttackDefaults{
			Duration:    0,
			BiasStart:   160, // during the 1.7 rad/s turn
			Bias:        mat.VecOf(-0.6),
			DelayStart:  70, // stale data across the turn onset
			DelayLag:    25,
			ReplayStart: 90, // replays straight-line driving just before the turn
			RecordStart: 20,
			ReplayLen:   60,
		},
	}
}

// SeriesRLC returns simulator 3: a series RLC circuit with states (inductor
// current i, capacitor voltage v) driven by a source voltage, PID holding
// the capacitor voltage at 4.7 V near the 5 V safe bound. R = 1 Ω,
// L = 0.5 H, C = 0.1 F.
func SeriesRLC() *Model {
	const (
		r = 1.0
		l = 0.5
		c = 0.1
	)
	ac := mat.FromRows([][]float64{
		{-r / l, -1 / l},
		{1 / c, 0},
	})
	bc := mat.ColVec(mat.VecOf(1/l, 0))
	sys := lti.MustDiscretize(ac, bc, nil, 0.02)
	return &Model{
		Name:     "series-rlc",
		No:       3,
		Sys:      sys,
		PID:      [3]float64{5, 5, 0},
		CtrlDim:  1,
		InputIdx: 0,
		Ref:      control.StepRef{Before: 3.8, After: 4.7, At0: 100},
		X0:       mat.NewVec(2),
		U:        geom.UniformBox(1, -5, 5),
		Eps:      1.7e-2,
		Safe: geom.NewBox(
			geom.NewInterval(-3.5, 3.5), geom.NewInterval(-5, 5),
		),
		Tau:         mat.VecOf(0.04, 0.01),
		MaxWindow:   40,
		RunLength:   400,
		SensorNoise: mat.VecOf(0.004, 0.0028),
		Attack: AttackDefaults{
			Duration:    0,
			BiasStart:   160,
			Bias:        mat.VecOf(0, -0.35),
			DelayStart:  70,
			DelayLag:    25,
			ReplayStart: 200, // replays the settling charge near the 5 V bound
			RecordStart: 130,
			ReplayLen:   60,
		},
	}
}

// DCMotorPosition returns simulator 4: the CTMS DC motor position model with
// states (shaft angle θ, speed ω, armature current i), PID on θ. Safe set
// bounds θ ∈ [−4, 4]; the shaft is commanded to 3.4 rad near the boundary.
func DCMotorPosition() *Model {
	const (
		j = 0.01 // rotor inertia
		b = 0.1  // viscous friction
		k = 0.01 // motor constant
		r = 1.0  // armature resistance
		l = 0.5  // armature inductance
	)
	ac := mat.FromRows([][]float64{
		{0, 1, 0},
		{0, -b / j, k / j},
		{0, -k / l, -r / l},
	})
	bc := mat.ColVec(mat.VecOf(0, 0, 1/l))
	sys := lti.MustDiscretize(ac, bc, nil, 0.1)
	return &Model{
		Name:     "dc-motor",
		No:       4,
		Sys:      sys,
		PID:      [3]float64{11, 0, 5},
		CtrlDim:  0,
		InputIdx: 0,
		Ref:      control.StepRef{Before: 2.4, After: 3.4, At0: 100},
		X0:       mat.NewVec(3),
		U:        geom.UniformBox(1, -20, 20),
		Eps:      1.5e-1,
		Safe: geom.NewBox(
			geom.NewInterval(-4, 4), geom.Whole(), geom.Whole(),
		),
		Tau:         mat.VecOf(0.118, 0.118, 0.118),
		MaxWindow:   40,
		RunLength:   400,
		SensorNoise: mat.VecOf(0.05, 0.05, 0.05),
		Attack: AttackDefaults{
			Duration:    0,
			BiasStart:   160,
			Bias:        mat.VecOf(-0.8, 0, 0),
			DelayStart:  70,
			DelayLag:    25,
			ReplayStart: 200, // replays the settling swing near the boundary
			RecordStart: 130,
			ReplayLen:   60,
		},
	}
}

// Quadrotor returns simulator 5: the Sabatino linearized 12-state quadrotor
// (states x, y, z, u, v, w, φ, θ, ψ, p, q, r; inputs thrust and three body
// torques, normalized to unit mass and inertia), PID holding altitude z at
// 4.75 m under a 5 m ceiling. The paper's ε = 1.56e−15 makes the process
// effectively deterministic; measurement noise on the altitude channels
// supplies the run-to-run variation.
func Quadrotor() *Model {
	const g = 9.81
	ac := mat.NewDense(12, 12)
	// Position integrates velocity.
	ac.Set(0, 3, 1)
	ac.Set(1, 4, 1)
	ac.Set(2, 5, 1)
	// Linearized translational dynamics: u̇ = −gθ, v̇ = gφ.
	ac.Set(3, 7, -g)
	ac.Set(4, 6, g)
	// Attitude integrates body rates.
	ac.Set(6, 9, 1)
	ac.Set(7, 10, 1)
	ac.Set(8, 11, 1)
	bc := mat.NewDense(12, 4)
	bc.Set(5, 0, 1)  // ẇ = f_t / m (m = 1)
	bc.Set(9, 1, 1)  // ṗ = τ_x / I_x (I = 1)
	bc.Set(10, 2, 1) // q̇ = τ_y / I_y
	bc.Set(11, 3, 1) // ṙ = τ_z / I_z
	sys := lti.MustDiscretize(ac, bc, nil, 0.1)

	safeIvs := make([]geom.Interval, 12)
	tau := make(mat.Vec, 12)
	noise := make(mat.Vec, 12)
	for i := range safeIvs {
		safeIvs[i] = geom.Whole()
		tau[i] = 0.018
	}
	safeIvs[2] = geom.NewInterval(-5, 5) // altitude z
	noise[2] = 0.02
	noise[5] = 0.02
	biasOff := mat.NewVec(12)
	biasOff[2] = -0.3

	return &Model{
		Name:        "quadrotor",
		No:          5,
		Sys:         sys,
		PID:         [3]float64{0.8, 0, 1},
		CtrlDim:     2,
		InputIdx:    0,
		Ref:         control.StepRef{Before: 3.9, After: 4.75, At0: 100},
		X0:          mat.NewVec(12),
		U:           geom.UniformBox(4, -2, 2),
		Eps:         1.56e-15,
		Safe:        geom.NewBox(safeIvs...),
		Tau:         tau,
		MaxWindow:   40,
		RunLength:   400,
		SensorNoise: noise,
		Attack: AttackDefaults{
			Duration:    0,
			BiasStart:   170,
			Bias:        biasOff,
			DelayStart:  70,
			DelayLag:    25,
			ReplayStart: 205, // replays the settling climb near the ceiling
			RecordStart: 135,
			ReplayLen:   60,
		},
	}
}

// TestbedCar returns the identified RC-car cruise-control model of Sec. 6.2:
// a scalar discrete system x_{t+1} = 0.8435 x_t + 7.7919e−4 u_t with output
// y = 384.3402 x (speed in m/s). The published scenario: the vehicle cruises
// at 4 m/s, a +2.5 m/s bias hits the speed sensor at the end of step 79, the
// safe speed range is [2, 10] m/s, τ = 3.67e−3, u ∈ [0, 7.7].
//
// InitRadius is set so the deadline estimator reports the tightest deadline
// (0) at the 4 m/s cruise — the paper's observed behaviour on the testbed
// ("the estimator computes the tightest deadline and shrinks the window
// size"), reflecting how fast the strongly-damped car can traverse the safe
// range under its full input authority.
func TestbedCar() *Model {
	const cOut = 3.843402e2
	a := mat.Diag(8.435e-1)
	b := mat.ColVec(mat.VecOf(7.7919e-4))
	c := mat.FromRows([][]float64{{cOut}})
	sys := lti.MustNew(a, b, c, 0.05) // 20 Hz sensing
	refSpeed := 4.0 / cOut            // state-space set point for 4 m/s
	return &Model{
		Name:        "testbed-car",
		No:          0,
		Sys:         sys,
		PID:         [3]float64{900, 1800, 0},
		CtrlDim:     0,
		InputIdx:    0,
		Ref:         control.ConstantRef(refSpeed),
		X0:          mat.VecOf(refSpeed),
		U:           geom.UniformBox(1, 0, 7.7),
		Eps:         2.0e-6,
		Safe:        geom.NewBox(geom.NewInterval(2.0/cOut, 10.0/cOut)),
		Tau:         mat.VecOf(3.67e-3),
		MaxWindow:   30,
		RunLength:   200,
		SensorNoise: mat.VecOf(3e-4), // ≈0.12 m/s encoder jitter
		InitRadius:  5.2e-3,          // ≈2.0 m/s conservative estimate ball
		Attack: AttackDefaults{
			Duration:    0,
			BiasStart:   80, // "at the end of the 79th step"
			Bias:        mat.VecOf(2.5 / cOut),
			DelayStart:  80,
			DelayLag:    10,
			ReplayStart: 80,
			RecordStart: 20,
			ReplayLen:   40,
		},
	}
}

// All returns the five Table 1 simulators in paper order.
func All() []*Model {
	return []*Model{
		AircraftPitch(), VehicleTurning(), SeriesRLC(), DCMotorPosition(), Quadrotor(),
	}
}

// ByName returns the model with the given name (including "testbed-car"),
// or nil if unknown.
func ByName(name string) *Model {
	for _, m := range append(All(), TestbedCar()) {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Names lists every registered model name in registry order — the valid
// values for ByName, used by the CLI tools' unknown-model diagnostics.
func Names() []string {
	ms := append(All(), TestbedCar())
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// inf is shorthand used by tests constructing unbounded expectations.
var inf = math.Inf(1)
