package core

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/obs"
)

// TestSetStreamIDStampsEvents checks the fleet attribution hook: after
// SetStreamID every emitted StepEvent carries the id, and a standalone
// (unstamped) system keeps the field empty so single-detector traces stay
// noise-free.
func TestSetStreamIDStampsEvents(t *testing.T) {
	ring := obs.NewRingSink(8)
	o := obs.NewObserver(nil, ring)
	c := cfg(t)
	c.Observer = o
	sys, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	u := mat.VecOf(0)
	must(sys.Step(mat.VecOf(0), u))
	sys.SetStreamID("stream-0001")
	must(sys.Step(mat.VecOf(0), u))

	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(evs))
	}
	if evs[0].StreamID != "" {
		t.Errorf("pre-stamp event carries stream id %q", evs[0].StreamID)
	}
	if evs[1].StreamID != "stream-0001" {
		t.Errorf("post-stamp event stream id = %q, want stream-0001", evs[1].StreamID)
	}
}
