package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

// must unwraps a (value, error) pair from a call the test knows is valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// Scalar plant x' = x + u (identity-observable), safe |x| <= 10.
func cfg(t *testing.T) Config {
	t.Helper()
	sys, err := lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(1)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Sys:       sys,
		Inputs:    geom.UniformBox(1, -1, 1),
		Eps:       0,
		Safe:      geom.UniformBox(1, -10, 10),
		Tau:       mat.VecOf(0.5),
		MaxWindow: 8,
	}
}

func TestConfigValidation(t *testing.T) {
	good := cfg(t)

	bad := good
	bad.Sys = nil
	if _, err := New(bad); err == nil {
		t.Error("nil system accepted")
	}

	bad = good
	bad.Safe = geom.UniformBox(2, -1, 1)
	if _, err := New(bad); err == nil {
		t.Error("wrong safe dimension accepted")
	}

	bad = good
	bad.Tau = mat.VecOf(1, 2)
	if _, err := New(bad); err == nil {
		t.Error("wrong tau dimension accepted")
	}

	bad = good
	bad.MaxWindow = 0
	if _, err := New(bad); err == nil {
		t.Error("zero max window accepted")
	}
}

func TestAdaptiveSystemDeadlineDrivesWindow(t *testing.T) {
	sys, err := New(cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Feed estimates far from the boundary: deadline should saturate at w_m.
	var dec Decision
	for i := 0; i < 5; i++ {
		dec = must(sys.Step(mat.VecOf(0), mat.VecOf(0)))
	}
	if dec.Deadline != 8 || dec.Window != 8 {
		t.Errorf("far-field decision = %+v, want deadline/window 8", dec)
	}
	// Now drive the estimate near the boundary: trusted estimate catches up
	// after the window length, and the deadline must tighten.
	for i := 0; i < 20; i++ {
		dec = must(sys.Step(mat.VecOf(9.2), mat.VecOf(0)))
	}
	if dec.Deadline >= 8 {
		t.Errorf("near-boundary deadline = %d, want < 8", dec.Deadline)
	}
	if dec.Window != dec.Deadline {
		t.Errorf("window %d should track deadline %d", dec.Window, dec.Deadline)
	}
}

func TestAdaptiveSystemAlarm(t *testing.T) {
	sys, err := New(cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	must(sys.Step(mat.VecOf(0), mat.VecOf(0)))
	// Jump of 3 with zero input: residual 3 > τ even averaged over w_m.
	for i := 0; i < 3; i++ {
		dec := must(sys.Step(mat.VecOf(float64(3*(i+1))), mat.VecOf(0)))
		if dec.Alarmed() {
			return
		}
	}
	t.Error("adaptive system never alarmed on large residuals")
}

func TestFixedSystem(t *testing.T) {
	sys, err := NewFixed(cfg(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Estimator() != nil {
		t.Error("fixed system should have no estimator")
	}
	dec := must(sys.Step(mat.VecOf(0), mat.VecOf(0)))
	if dec.Window != 4 || dec.Alarm {
		t.Errorf("fixed decision = %+v", dec)
	}
	// Default window when w <= 0.
	sysDef, err := NewFixed(cfg(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec := must(sysDef.Step(mat.VecOf(0), mat.VecOf(0))); dec.Window != 8 {
		t.Errorf("default fixed window = %d, want 8", dec.Window)
	}
}

func TestCUSUMSystem(t *testing.T) {
	sys, err := NewCUSUM(cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	must(sys.Step(mat.VecOf(0), mat.VecOf(0)))
	alarmed := false
	for i := 1; i <= 10 && !alarmed; i++ {
		// Sustained residual 2 per step: CUSUM statistic grows by 2−τ each
		// step and crosses the 4τ default threshold quickly.
		dec := must(sys.Step(mat.VecOf(float64(2*i)), mat.VecOf(0)))
		alarmed = dec.Alarm
	}
	if !alarmed {
		t.Error("CUSUM system never alarmed on sustained shift")
	}
}

func TestSystemReset(t *testing.T) {
	for name, build := range map[string]func() (*System, error){
		"adaptive": func() (*System, error) { return New(cfg(t)) },
		"fixed":    func() (*System, error) { return NewFixed(cfg(t), 3) },
		"cusum":    func() (*System, error) { return NewCUSUM(cfg(t)) },
	} {
		sys, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		must(sys.Step(mat.VecOf(1), mat.VecOf(0)))
		must(sys.Step(mat.VecOf(9), mat.VecOf(0)))
		sys.Reset()
		if sys.Log().Current() != -1 {
			t.Errorf("%s: log not cleared", name)
		}
		dec := must(sys.Step(mat.VecOf(1), mat.VecOf(0)))
		if dec.Step != 0 {
			t.Errorf("%s: post-reset step = %d", name, dec.Step)
		}
		if dec.Alarm {
			t.Errorf("%s: first post-reset step alarmed (residual should be 0)", name)
		}
	}
}

func TestDecisionAlarmed(t *testing.T) {
	if (Decision{}).Alarmed() {
		t.Error("zero decision alarmed")
	}
	if !(Decision{Alarm: true}).Alarmed() || !(Decision{Complementary: true}).Alarmed() {
		t.Error("Alarmed misses flags")
	}
}

func TestCUSUMDerivedThresholdValidation(t *testing.T) {
	bad := cfg(t)
	bad.Tau = mat.VecOf(0) // 4·0 = 0 is not a valid CUSUM threshold
	if _, err := NewCUSUM(bad); err == nil {
		t.Error("zero-derived CUSUM threshold accepted")
	}
}

func TestAdaptiveComplementaryFlagSurfacing(t *testing.T) {
	// Craft a shrink that must fire complementary detection: burst hidden in
	// a big window, then estimates rushed to the boundary so the deadline
	// collapses.
	c := cfg(t)
	c.Tau = mat.VecOf(0.9)
	sys, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet phase (window grows to 8).
	val := 0.0
	for i := 0; i < 10; i++ {
		must(sys.Step(mat.VecOf(val), mat.VecOf(0)))
	}
	// Burst: two +4 jumps (residual 4 each), then quiet at the new level.
	val = 4
	must(sys.Step(mat.VecOf(val), mat.VecOf(0)))
	val = 8
	must(sys.Step(mat.VecOf(val), mat.VecOf(0)))
	// Rush toward the boundary so the trusted estimate (once it exits the
	// window) slams the deadline down and shrinks the window.
	fired := false
	val = 9.4
	for i := 0; i < 10 && !fired; i++ {
		dec := must(sys.Step(mat.VecOf(val), mat.VecOf(0)))
		fired = dec.Alarmed()
	}
	if !fired {
		t.Error("system never alarmed across burst + shrink")
	}
}

func TestEWMASystem(t *testing.T) {
	sys, err := NewEWMA(cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	must(sys.Step(mat.VecOf(0), mat.VecOf(0)))
	alarmed := false
	v := 0.0
	for i := 0; i < 40 && !alarmed; i++ {
		v += 2 // sustained residual 2 > τ: the EWMA must cross eventually
		alarmed = must(sys.Step(mat.VecOf(v), mat.VecOf(0))).Alarm
	}
	if !alarmed {
		t.Error("EWMA system never alarmed on sustained shift")
	}
	sys.Reset()
	if dec := must(sys.Step(mat.VecOf(0), mat.VecOf(0))); dec.Alarm {
		t.Error("post-reset EWMA alarmed")
	}
}

func TestEWMAValidationThroughConfig(t *testing.T) {
	bad := cfg(t)
	bad.EWMALambda = 2
	if _, err := NewEWMA(bad); err == nil {
		t.Error("lambda > 1 accepted")
	}
	bad = cfg(t)
	bad.Tau = mat.VecOf(0)
	if _, err := NewEWMA(bad); err == nil {
		t.Error("zero-derived EWMA threshold accepted")
	}
}

func TestDecisionCarriesDims(t *testing.T) {
	sys, err := New(cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	must(sys.Step(mat.VecOf(0), mat.VecOf(0)))
	var dec Decision
	for i := 1; i <= 5 && !dec.Alarmed(); i++ {
		dec = must(sys.Step(mat.VecOf(float64(5*i)), mat.VecOf(0)))
	}
	if !dec.Alarmed() || len(dec.Dims) == 0 || dec.Dims[0] != 0 {
		t.Errorf("decision dims = %+v", dec)
	}
}

func TestSystemStepDimensionError(t *testing.T) {
	sys, err := New(cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(mat.VecOf(1, 2), mat.VecOf(0)); err == nil {
		t.Error("mismatched estimate dimension must surface as an error")
	}
	// The rejected step must not advance the run.
	if sys.Log().Current() != -1 {
		t.Errorf("rejected step advanced the log to %d", sys.Log().Current())
	}
	// The system keeps working after a rejected step.
	dec := must(sys.Step(mat.VecOf(0), mat.VecOf(0)))
	if dec.Step != 0 {
		t.Errorf("post-error step = %d, want 0", dec.Step)
	}
}

// TestStepPredictedMatchesStep pins the batch-friendly accessor: feeding the
// externally computed prediction must reproduce Step's decision sequence
// exactly — the per-stream contract the fleet engine is built on.
func TestStepPredictedMatchesStep(t *testing.T) {
	c := cfg(t)
	serial := must(New(c))
	batched := must(New(c))

	prev := mat.NewVec(c.Sys.StateDim())
	pred := mat.NewVec(c.Sys.StateDim())
	hasPrev := false
	for i := 0; i < 30; i++ {
		// Drift toward the safe boundary with occasional jumps so windows
		// shrink, complementary passes run, and alarms fire.
		est := mat.VecOf(float64(i) * 0.4)
		if i%7 == 0 {
			est[0] += 1.5
		}
		u := mat.VecOf(float64(i%2) - 0.5)

		want, errA := serial.Step(est, u)
		if hasPrev {
			c.Sys.PredictTo(pred, prev, u)
		}
		got, errB := batched.StepPredicted(est, pred)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("step %d: error mismatch %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if want.Step != got.Step || want.Window != got.Window || want.Deadline != got.Deadline ||
			want.Alarm != got.Alarm || want.Complementary != got.Complementary ||
			want.ComplementaryStep != got.ComplementaryStep || len(want.Dims) != len(got.Dims) {
			t.Fatalf("step %d: predicted %+v != serial %+v", i, got, want)
		}
		for d := range want.Dims {
			if want.Dims[d] != got.Dims[d] {
				t.Fatalf("step %d: dims %v != %v", i, got.Dims, want.Dims)
			}
		}
		est.CopyTo(prev)
		hasPrev = true
	}
	if serial.Log().Observed() == 0 {
		t.Fatal("no observations made")
	}
}

func TestPlantAccessor(t *testing.T) {
	c := cfg(t)
	s := must(New(c))
	if s.Plant() != c.Sys {
		t.Error("Plant() does not expose the configured system")
	}
}
