package core

import (
	"fmt"

	"repro/internal/state"
)

// systemStateVersion is the component version of core.System's snapshot
// layout (see internal/state for the versioning rules).
const systemStateVersion = 1

// Snapshot encodes the system's complete runtime state: the detection
// strategy tag (for structural validation), the logger ring, the active
// detector's state, and — for adaptive systems — the deadline estimator's
// warm-start certificate. Configuration (plant matrices, thresholds,
// windows, safe set) is deliberately not serialized: a snapshot restores
// into a freshly constructed System built from the same Config, and every
// component validates its structural parameters against the receiver so a
// config drift surfaces as an error instead of silent corruption.
//
// Snapshot must only be called while the system is quiescent (no Step in
// flight); the fleet engine guarantees this by holding every stream's
// sample token across a fleet snapshot.
func (s *System) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagSystem, systemStateVersion)
	enc.U8(uint8(s.mode))
	s.log.Snapshot(enc)
	switch s.mode {
	case modeAdaptive:
		s.adaptive.Snapshot(enc)
		s.est.Snapshot(enc)
	case modeFixed:
		s.fixed.Snapshot(enc)
	case modeCUSUM:
		s.cusum.Snapshot(enc)
	case modeEWMA:
		s.ewma.Snapshot(enc)
	}
}

// Restore replaces the system's runtime state with a snapshot taken from a
// system of identical configuration. After a successful restore the
// decision stream continues bit-identically to the system the snapshot was
// taken from: the logger ring, the window detectors' incremental sums, the
// CUSUM/EWMA statistics, and the adaptive window size all resume the exact
// float trajectory of the original (the restore==never-crashed
// differential tests pin this on every bundled plant under every attack).
//
// On error the system is left in an unspecified but memory-safe state;
// callers restore into fresh systems and discard them on failure.
func (s *System) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagSystem, systemStateVersion)
	m := dec.U8()
	if err := dec.Err(); err != nil {
		return err
	}
	if mode(m) != s.mode {
		return fmt.Errorf("core: snapshot strategy %v, want %v", mode(m), s.mode)
	}
	if err := s.log.Restore(dec); err != nil {
		return err
	}
	switch s.mode {
	case modeAdaptive:
		if err := s.adaptive.Restore(dec); err != nil {
			return err
		}
		return s.est.Restore(dec)
	case modeFixed:
		return s.fixed.Restore(dec)
	case modeCUSUM:
		return s.cusum.Restore(dec)
	case modeEWMA:
		return s.ewma.Restore(dec)
	}
	return nil
}
