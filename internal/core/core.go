// Package core assembles the paper's three components (Fig. 1) — the Data
// Logger, the Detection Deadline Estimator, and the Adaptive Detector — into
// one per-control-step System. Fixed-window and CUSUM variants share the
// same logging front-end so the evaluation can compare strategies under
// identical inputs.
//
// Per Step call the adaptive system:
//
//  1. logs the new state estimate and its residual (Data Logger, Sec. 5),
//  2. computes the detection deadline t_d by reachability from the latest
//     trusted estimate x̂_{t−w_c−1} (Deadline Estimator, Sec. 3),
//  3. re-sizes the detection window to min(t_d, w_m) and runs the window
//     rule, with complementary detection on shrink (Adaptive Detector,
//     Sec. 4).
package core

import (
	"fmt"
	"time"

	"repro/internal/deadline"
	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/logger"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/reach"
)

// Config collects everything needed to instantiate a detection system for
// one plant. Fields mirror Table 1.
type Config struct {
	Sys       *lti.System
	Inputs    geom.Box // control input range U
	Eps       float64  // per-step uncertainty bound ε
	Safe      geom.Box // safe state set S
	Tau       mat.Vec  // detection threshold τ
	MaxWindow int      // maximum detection window w_m

	// InitRadius bounds the estimate noise around the trusted initial state
	// used for reachability (Sec. 3.3.1). Zero means exact estimates.
	InitRadius float64

	// DisableComplementary turns off the complementary detection pass
	// (ablation only).
	DisableComplementary bool

	// CUSUM parameters (only for NewCUSUM). Zero values derive defaults
	// from Tau: drift = Tau, threshold = 4·Tau.
	CUSUMDrift     mat.Vec
	CUSUMThreshold mat.Vec

	// EWMA parameters (only for NewEWMA). Zero values derive defaults:
	// λ = 2/(MaxWindow+1) (window-equivalent memory), threshold = Tau.
	EWMALambda    float64
	EWMAThreshold mat.Vec

	// Observer receives per-step telemetry (metrics + trace events). Nil
	// disables observability entirely; the hot path then pays one pointer
	// check and zero allocations per instrumentation point.
	Observer *obs.Observer
}

func (c Config) validate() error {
	if c.Sys == nil {
		return fmt.Errorf("core: nil system")
	}
	n := c.Sys.StateDim()
	if c.Safe.Dim() != n {
		return fmt.Errorf("core: safe set dimension %d, want %d", c.Safe.Dim(), n)
	}
	if len(c.Tau) != n {
		return fmt.Errorf("core: threshold dimension %d, want %d", len(c.Tau), n)
	}
	for i, v := range c.Tau {
		if v < 0 {
			return fmt.Errorf("core: negative threshold %v in dimension %d", v, i)
		}
	}
	if c.MaxWindow < 1 {
		return fmt.Errorf("core: maximum window %d must be >= 1", c.MaxWindow)
	}
	return nil
}

// Decision is the outcome of one detection step.
type Decision struct {
	Step     int  // control step this decision refers to
	Window   int  // detection window size used
	Deadline int  // detection deadline t_d computed this step (adaptive only)
	Alarm    bool // window rule fired on the window ending at Step
	// Complementary indicates the shrink-time complementary pass fired; the
	// alarm belongs to ComplementaryStep (< Step).
	Complementary     bool
	ComplementaryStep int
	// Dims attributes the alarm to the residual dimensions that exceeded τ
	// (window detectors only; nil for CUSUM/EWMA and when silent).
	Dims []int
}

// Alarmed reports whether any check fired this step.
func (d Decision) Alarmed() bool { return d.Alarm || d.Complementary }

// String renders the decision with the shared one-line format (see
// obs.FormatDecision).
func (d Decision) String() string {
	return obs.FormatDecision(d.Step, d.Window, d.Deadline, d.Alarm, d.Complementary, d.ComplementaryStep, d.Dims)
}

type mode int

const (
	modeAdaptive mode = iota
	modeFixed
	modeCUSUM
	modeEWMA
)

// System is an assembled detection pipeline.
type System struct {
	cfg  Config
	mode mode

	log      *logger.Logger
	est      *deadline.Estimator // adaptive only
	adaptive *detect.Adaptive    // adaptive only
	fixed    *detect.Fixed       // fixed only
	cusum    *detect.CUSUM       // cusum only
	ewma     *detect.EWMA        // ewma only

	// dlSrc, when non-nil, replaces est.FromState for the adaptive
	// deadline query (see DeadlineSource). The logger interaction — which
	// trusted estimate is selected, and the max-deadline fallback when none
	// is available — stays in decide, identical for both paths.
	dlSrc DeadlineSource

	obs      *obs.Observer // nil = observability disabled
	resAvg   []float64     // scratch buffer for StepEvent residual averages
	streamID string        // stamps StepEvents; see SetStreamID
}

// DeadlineSource supplies detection deadlines for explicit trusted states.
// *deadline.Estimator and *deadline.Certificate both implement it. An
// implementation must return exactly the deadline the system's own
// estimator would compute — the seam exists so the fleet engine can swap
// in a shard-shared certificate that amortizes the search across streams,
// not to change detection semantics.
type DeadlineSource interface {
	FromState(x0 mat.Vec) int
}

// SetDeadlineSource routes the adaptive detector's deadline queries
// through src; nil restores the system's own estimator. Only meaningful
// for adaptive systems (no-op queries otherwise). Not safe to call
// concurrently with Step.
func (s *System) SetDeadlineSource(src DeadlineSource) { s.dlSrc = src }

// SetStreamID stamps every subsequent trace event with a stream identity,
// making fleet-originated events attributable when thousands of detectors
// share one sink. Empty (the default) omits the field. Not safe to call
// concurrently with Step.
func (s *System) SetStreamID(id string) { s.streamID = id }

func (m mode) String() string {
	switch m {
	case modeAdaptive:
		return "adaptive"
	case modeFixed:
		return "fixed"
	case modeCUSUM:
		return "cusum"
	case modeEWMA:
		return "ewma"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// New builds the full adaptive detection system of the paper.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Shared memoizes the O(horizon·n³) coefficient tables per plant, so
	// Monte-Carlo campaigns that build one System per run pay for the
	// reachability precomputation once per process instead of once per run.
	an, err := reach.Shared(cfg.Sys, cfg.Inputs, cfg.Eps, cfg.MaxWindow)
	if err != nil {
		return nil, err
	}
	est, err := deadline.New(an, cfg.Safe, cfg.InitRadius)
	if err != nil {
		return nil, err
	}
	ad := detect.NewAdaptive(cfg.Tau, cfg.MaxWindow)
	ad.SkipComplementary = cfg.DisableComplementary
	return &System{
		cfg:      cfg,
		mode:     modeAdaptive,
		log:      logger.New(cfg.Sys, cfg.MaxWindow),
		est:      est,
		adaptive: ad,
		obs:      cfg.Observer,
	}, nil
}

// NewFixed builds the fixed-window baseline sharing the same logger
// front-end. w = 0 defaults to MaxWindow; a negative w selects the
// degenerate single-sample window (the paper's "window size 0", which
// checks only the current residual).
func NewFixed(cfg Config, w int) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch {
	case w == 0:
		w = cfg.MaxWindow
	case w < 0:
		w = 0
	}
	return &System{
		cfg:   cfg,
		mode:  modeFixed,
		log:   logger.New(cfg.Sys, cfg.MaxWindow),
		fixed: detect.NewFixed(cfg.Tau, w),
		obs:   cfg.Observer,
	}, nil
}

// NewCUSUM builds the CUSUM baseline sharing the same logger front-end.
func NewCUSUM(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	drift := cfg.CUSUMDrift
	if drift == nil {
		drift = cfg.Tau.Clone()
	}
	threshold := cfg.CUSUMThreshold
	if threshold == nil {
		threshold = cfg.Tau.Scale(4)
	}
	// Validate both the derived and the explicitly supplied parameters here
	// so the detect constructor's programmer-error panics stay unreachable
	// from configuration data.
	if len(threshold) != len(drift) {
		return nil, fmt.Errorf("core: CUSUM threshold/drift dimension mismatch %d vs %d", len(threshold), len(drift))
	}
	for i, v := range threshold {
		if v <= 0 {
			return nil, fmt.Errorf("core: CUSUM threshold %v in dimension %d not positive", v, i)
		}
	}
	for i, v := range drift {
		if v < 0 {
			return nil, fmt.Errorf("core: CUSUM drift %v in dimension %d negative", v, i)
		}
	}
	return &System{
		cfg:   cfg,
		mode:  modeCUSUM,
		log:   logger.New(cfg.Sys, cfg.MaxWindow),
		cusum: detect.NewCUSUM(threshold, drift, true),
		obs:   cfg.Observer,
	}, nil
}

// NewEWMA builds the EWMA baseline sharing the same logger front-end.
func NewEWMA(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lambda := cfg.EWMALambda
	if lambda == 0 {
		lambda = 2 / float64(cfg.MaxWindow+1)
	}
	threshold := cfg.EWMAThreshold
	if threshold == nil {
		threshold = cfg.Tau.Clone()
	}
	if len(threshold) == 0 {
		return nil, fmt.Errorf("core: empty EWMA threshold")
	}
	for i, v := range threshold {
		if v <= 0 {
			return nil, fmt.Errorf("core: EWMA threshold %v in dimension %d not positive", v, i)
		}
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("core: EWMA lambda %v outside (0, 1]", lambda)
	}
	return &System{
		cfg:  cfg,
		mode: modeEWMA,
		log:  logger.New(cfg.Sys, cfg.MaxWindow),
		ewma: detect.NewEWMA(lambda, threshold, true),
		obs:  cfg.Observer,
	}, nil
}

// Log exposes the Data Logger (read access for traces and experiments).
func (s *System) Log() *logger.Logger { return s.log }

// Plant exposes the LTI plant model this system detects over. The fleet
// engine uses it to group content-identical plants into shards that share
// one batched prediction kernel.
func (s *System) Plant() *lti.System { return s.cfg.Sys }

// Estimator exposes the deadline estimator; nil for non-adaptive systems.
func (s *System) Estimator() *deadline.Estimator { return s.est }

// Step ingests the state estimate for the next control step together with
// the input applied over the preceding period, and returns the detection
// decision for that step.
//
// Errors are configuration faults (dimension mismatches between the
// estimate, input, and the plant model); the detector state is safe to
// keep using after a failed Step, which simply did not ingest anything.
func (s *System) Step(estimate, appliedU mat.Vec) (Decision, error) {
	entry, err := s.log.Observe(estimate, appliedU)
	if err != nil {
		return Decision{}, err
	}
	return s.decide(entry)
}

// StepPredicted is Step for callers that already computed this step's model
// prediction A x̂_{t−1} + B u_{t−1} externally — the fleet engine's batch
// kernels produce it for a whole shard of streams at once. Because the
// logger residual and everything downstream consume the prediction values
// rather than how they were produced, a pred bit-identical to the serial
// computation yields a bit-identical Decision sequence (see
// logger.ObservePredicted for the contract on pred).
func (s *System) StepPredicted(estimate, pred mat.Vec) (Decision, error) {
	entry, err := s.log.ObservePredicted(estimate, pred)
	if err != nil {
		return Decision{}, err
	}
	return s.decide(entry)
}

// ObservePredicted ingests the estimate and an externally computed model
// prediction into the Data Logger without deciding, returning the logged
// entry for a later StepObserved call. StepPredicted is exactly
// ObservePredicted followed by StepObserved(entry, -1); the fleet engine
// splits the step at this seam so each phase — logging, the deadline query,
// the window-sum slide, the decision — can run batched across a whole shard.
func (s *System) ObservePredicted(estimate, pred mat.Vec) (*logger.Entry, error) {
	return s.log.ObservePredicted(estimate, pred)
}

// DeadlineQueryState returns the trusted state the adaptive deadline query
// for the current step starts from — the very x0 decide would pass to
// FromState. ok is false for non-adaptive systems and when the logger does
// not retain a trusted estimate (decide then falls back to the estimator's
// MaxDeadline; external callers replicating the query must do the same).
// Call it after ObservePredicted and before StepObserved: it reads the
// detector's previous window, which StepObserved advances.
func (s *System) DeadlineQueryState() (mat.Vec, bool) {
	if s.mode != modeAdaptive {
		return nil, false
	}
	return s.log.TrustedEstimate(s.adaptive.CurrentWindow())
}

// PrepareSlide primes the window rule's incremental sum for the upcoming
// StepObserved call — td must be the deadline that call will receive
// (adaptive only; ignored by the other strategies, and the fixed window
// needs no deadline). Decisions are bit-identical with or without the
// priming (see detect.Window.PrepareSlide); the fleet engine batches the
// slides of a whole shard into one pass.
func (s *System) PrepareSlide(td int) {
	switch s.mode {
	case modeAdaptive:
		s.adaptive.PrepareSlide(s.log, td)
	case modeFixed:
		s.fixed.PrepareSlide(s.log)
	}
}

// StepObserved completes a step split open by ObservePredicted: it runs the
// decision pipeline on the entry that call returned. A non-negative td
// injects the adaptive detection deadline computed externally — the fleet
// engine's batched certificate pass produces it from exactly the state
// DeadlineQueryState reports, with the same MaxDeadline fallback, so the
// injected value equals what the system's own query would compute and the
// decision sequence stays bit-identical. td < 0 runs the system's own
// deadline query (non-adaptive systems ignore td either way).
func (s *System) StepObserved(entry *logger.Entry, td int) (Decision, error) {
	return s.decideTD(entry, td)
}

// decide runs the per-step detection pipeline on a freshly logged entry:
// deadline estimation, the (adaptive) window rule, and telemetry.
func (s *System) decide(entry *logger.Entry) (Decision, error) {
	return s.decideTD(entry, -1)
}

// decideTD is decide with an optionally injected adaptive deadline: injTd
// >= 0 skips the deadline query (and its reach-latency telemetry — the
// query did not run here) and uses the given value; injTd < 0 queries as
// usual.
func (s *System) decideTD(entry *logger.Entry, injTd int) (Decision, error) {
	dec := Decision{Step: entry.Step, ComplementaryStep: -1}
	var err error

	var reachMicros float64
	reachTimed := false
	switch s.mode {
	case modeAdaptive:
		td := injTd
		if td < 0 {
			var reachStart time.Time
			if s.obs.Enabled() {
				//awdlint:allow wallclock -- reach-latency telemetry only: reachMicros feeds StepEvent, never the decision (td comes solely from logged state)
				reachStart = time.Now()
			}
			// Inlined deadline.Estimator.FromLogger, with the FromState query
			// routed through the injected source when one is set: same trusted
			// estimate, same max-deadline fallback, so the two paths are
			// decision-identical by construction.
			if x0, ok := s.log.TrustedEstimate(s.adaptive.CurrentWindow()); !ok {
				td = s.est.MaxDeadline()
			} else if s.dlSrc != nil {
				td = s.dlSrc.FromState(x0)
			} else {
				td = s.est.FromState(x0)
			}
			if s.obs.Enabled() {
				//awdlint:allow wallclock -- closes the reach-latency measurement opened above; observability-gated, decision-invisible
				reachMicros = float64(time.Since(reachStart)) / float64(time.Microsecond)
				reachTimed = true
			}
		}
		dec.Deadline = td
		res, err := s.adaptive.Step(s.log, td)
		if err != nil {
			return Decision{}, err
		}
		dec.Window = res.Window
		dec.Alarm = res.Alarm
		dec.Complementary = res.Complementary
		dec.ComplementaryStep = res.ComplementaryStep
		dec.Dims = res.Dims
	case modeFixed:
		res, err := s.fixed.Step(s.log)
		if err != nil {
			return Decision{}, err
		}
		dec.Window = res.Window
		dec.Alarm = res.Alarm
		dec.Dims = res.Dims
	case modeCUSUM:
		if dec.Alarm, err = s.cusum.Update(entry.Residual); err != nil {
			return Decision{}, err
		}
	case modeEWMA:
		if dec.Alarm, err = s.ewma.Update(entry.Residual); err != nil {
			return Decision{}, err
		}
	}

	if s.obs.Enabled() {
		s.obs.ObserveStep(obs.StepEvent{
			Step:              dec.Step,
			StreamID:          s.streamID,
			Strategy:          s.mode.String(),
			Window:            dec.Window,
			Deadline:          dec.Deadline,
			Alarm:             dec.Alarm,
			Complementary:     dec.Complementary,
			ComplementaryStep: dec.ComplementaryStep,
			Dims:              dec.Dims,
			ResidualAvg:       s.residualAvg(dec.Step, dec.Window),
			ReachTimed:        reachTimed,
			ReachMicros:       reachMicros,
			LoggerLen:         s.log.Len(),
			LoggerObserved:    s.log.Observed(),
			LoggerReleased:    s.log.Released(),
		})
	}
	return dec, nil
}

// residualAvg computes the per-dimension windowed average residual for the
// window of size w ending at step t — the quantity the window rule holds
// against τ. Only called with observability enabled; reuses one scratch
// buffer so steady-state trace emission does not allocate.
func (s *System) residualAvg(t, w int) []float64 {
	from := t - w
	if from < 0 {
		from = 0
	}
	if from > t {
		return nil
	}
	n := s.cfg.Sys.StateDim()
	if cap(s.resAvg) < n {
		s.resAvg = make([]float64, n)
	}
	avg := s.resAvg[:n]
	for i := range avg {
		avg[i] = 0
	}
	// Accumulate straight off the logger ring — no intermediate residual
	// slice, so trace emission stays allocation-free.
	for step := from; step <= t; step++ {
		e, ok := s.log.Entry(step)
		if !ok {
			return nil
		}
		for i := range avg {
			avg[i] += e.Residual[i]
		}
	}
	inv := 1 / float64(t-from+1)
	for i := range avg {
		avg[i] *= inv
	}
	return avg
}

// Reset clears all run state so the system can drive a fresh experiment.
func (s *System) Reset() {
	s.log.Reset()
	switch s.mode {
	case modeAdaptive:
		s.adaptive.Reset()
	case modeFixed:
		s.fixed.Reset()
	case modeCUSUM:
		s.cusum.Reset()
	case modeEWMA:
		s.ewma.Reset()
	}
}
