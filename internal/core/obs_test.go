package core

import (
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/obs"
)

// TestStepEmitsTelemetry drives the adaptive system with an enabled
// observer and checks the full fan-out: step counters, level gauges, reach
// latency histogram, logger totals, and the trace event stream.
func TestStepEmitsTelemetry(t *testing.T) {
	ring := obs.NewRingSink(32)
	o := obs.NewObserver(nil, ring)
	c := cfg(t)
	c.Observer = o
	sys, err := New(c)
	if err != nil {
		t.Fatal(err)
	}

	const steps = 12
	u := mat.VecOf(0)
	for i := 0; i < steps; i++ {
		must(sys.Step(mat.VecOf(0), u))
	}

	reg := o.Registry()
	if got := reg.Counter(obs.MetricSteps, "").Value(); got != steps {
		t.Errorf("step counter = %d, want %d", got, steps)
	}
	h := reg.Histogram(obs.MetricReachLatency, "", obs.ReachLatencyBuckets)
	if got := h.Count(); got != steps {
		t.Errorf("reach histogram count = %d, want %d (every adaptive step times the deadline search)", got, steps)
	}
	evs := ring.Events()
	if len(evs) != steps {
		t.Fatalf("sink saw %d events, want %d", len(evs), steps)
	}
	last := evs[len(evs)-1]
	if last.Step != steps-1 || last.Strategy != "adaptive" {
		t.Errorf("last event = %+v", last)
	}
	if !last.ReachTimed {
		t.Error("adaptive step event not reach-timed")
	}
	if last.LoggerLen != sys.Log().Len() || last.LoggerObserved != steps {
		t.Errorf("logger telemetry = len %d obs %d, want %d/%d",
			last.LoggerLen, last.LoggerObserved, sys.Log().Len(), steps)
	}
	if len(last.ResidualAvg) != 1 {
		t.Errorf("residual averages = %v, want 1 dimension", last.ResidualAvg)
	}
}

// TestStepTelemetryAlarmPath checks alarms reach the counters and the
// event stream (fixed-window detector, residual forced over τ).
func TestStepTelemetryAlarmPath(t *testing.T) {
	ring := obs.NewRingSink(8)
	o := obs.NewObserver(nil, ring)
	c := cfg(t)
	c.Observer = o
	sys, err := NewFixed(c, -1) // degenerate window: current residual vs τ
	if err != nil {
		t.Fatal(err)
	}
	u := mat.VecOf(0)
	must(sys.Step(mat.VecOf(0), u))
	dec := must(sys.Step(mat.VecOf(5), u)) // residual 5 > τ = 0.5
	if !dec.Alarm {
		t.Fatal("expected alarm")
	}
	if got := o.Registry().Counter(obs.MetricAlarms, "").Value(); got != 1 {
		t.Errorf("alarm counter = %d, want 1", got)
	}
	evs := ring.Events()
	last := evs[len(evs)-1]
	if !last.Alarm || last.Strategy != "fixed" || len(last.Dims) != 1 {
		t.Errorf("alarm event = %+v", last)
	}
	if last.ReachTimed {
		t.Error("fixed-window event claims reach timing")
	}
	if !strings.Contains(dec.String(), "ALARM") {
		t.Errorf("Decision.String() = %q, want ALARM", dec.String())
	}
}

// TestResetClearsRunTelemetrySources ensures logger counters restart per
// run so released/observed totals stay per-episode.
func TestResetClearsRunTelemetrySources(t *testing.T) {
	c := cfg(t)
	sys, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	u := mat.VecOf(0)
	for i := 0; i < 20; i++ {
		must(sys.Step(mat.VecOf(0), u))
	}
	if sys.Log().Released() == 0 {
		t.Fatal("long run released nothing — sliding window broken?")
	}
	sys.Reset()
	if sys.Log().Observed() != 0 || sys.Log().Released() != 0 {
		t.Errorf("after reset: observed=%d released=%d, want 0/0",
			sys.Log().Observed(), sys.Log().Released())
	}
}
