package core_test

import (
	"bytes"
	"fmt"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/state"
)

// This file lives in core_test (not core) because it exercises the
// snapshot layer through sim-built detectors, and sim imports core.

var snapModels = append(models.All(), models.TestbedCar())

var snapStrategies = []sim.Strategy{sim.Adaptive, sim.FixedWindow, sim.CUSUMBaseline, sim.EWMABaseline}

func snapDetector(t testing.TB, m *models.Model, strat sim.Strategy) *core.System {
	t.Helper()
	det, err := sim.Detector(sim.Config{Model: m, Strategy: strat})
	if err != nil {
		t.Fatalf("Detector(%s, %v): %v", m.Name, strat, err)
	}
	return det
}

// snapTrajectory mirrors the fleet tests' synthetic estimate stream: the
// model prediction plus a τ-scaled noise floor with periodic spikes, so
// alarms and window shrinks occur on both sides of any snapshot point.
func snapTrajectory(m *models.Model, seed uint64, steps int) (ests, us []mat.Vec) {
	src := noise.NewSource(seed)
	n, in := m.Sys.StateDim(), m.Sys.InputDim()
	ests = make([]mat.Vec, steps)
	us = make([]mat.Vec, steps)
	prev := m.X0.Clone()
	prevU := mat.NewVec(in)
	pred := mat.NewVec(n)
	for t := 0; t < steps; t++ {
		e := mat.NewVec(n)
		if t == 0 {
			prev.CopyTo(e)
		} else {
			m.Sys.PredictTo(pred, prev, prevU)
			pred.CopyTo(e)
		}
		for i := range e {
			e[i] += m.Tau[i] * src.Uniform(-0.2, 0.2)
		}
		if t%9 == 7 {
			for i := range e {
				e[i] += m.Tau[i] * src.Uniform(1.5, 3)
			}
		}
		u := mat.NewVec(in)
		for i := range u {
			u[i] = src.Uniform(-1, 1)
		}
		ests[t], us[t] = e, u
		e.CopyTo(prev)
		u.CopyTo(prevU)
	}
	return ests, us
}

func snapDecisionsEqual(a, b core.Decision) bool {
	return a.Step == b.Step && a.Window == b.Window && a.Deadline == b.Deadline &&
		a.Alarm == b.Alarm && a.Complementary == b.Complementary &&
		a.ComplementaryStep == b.ComplementaryStep && slices.Equal(a.Dims, b.Dims)
}

func systemSnapshot(t testing.TB, sys *core.System) []byte {
	t.Helper()
	enc := state.NewEncoder()
	enc.Header()
	sys.Snapshot(enc)
	return enc.Bytes()
}

func systemRestore(sys *core.System, blob []byte) error {
	dec := state.NewDecoder(blob)
	if err := dec.Header(); err != nil {
		return err
	}
	if err := sys.Restore(dec); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return fmt.Errorf("snapshot has %d trailing bytes", dec.Remaining())
	}
	return nil
}

// TestSystemSnapshotRoundTrip pins the per-system restore contract on every
// bundled plant under every strategy: snapshot mid-run, restore into a
// fresh system, and the continued decision stream is bit-identical to the
// uninterrupted reference — while an immediate re-snapshot reproduces the
// blob byte for byte.
func TestSystemSnapshotRoundTrip(t *testing.T) {
	const steps = 90
	for _, m := range snapModels {
		for _, strat := range snapStrategies {
			name := fmt.Sprintf("%s/%v", m.Name, strat)
			ests, us := snapTrajectory(m, 11, steps)

			ref := snapDetector(t, m, strat)
			want := make([]core.Decision, steps)
			for i := range ests {
				d, err := ref.Step(ests[i], us[i])
				if err != nil {
					t.Fatalf("%s: reference step %d: %v", name, i, err)
				}
				want[i] = d
			}

			k := steps / 2
			crashed := snapDetector(t, m, strat)
			for i := 0; i < k; i++ {
				if _, err := crashed.Step(ests[i], us[i]); err != nil {
					t.Fatalf("%s: crashed step %d: %v", name, i, err)
				}
			}
			blob := systemSnapshot(t, crashed)

			restored := snapDetector(t, m, strat)
			if err := systemRestore(restored, blob); err != nil {
				t.Fatalf("%s: restore: %v", name, err)
			}
			if again := systemSnapshot(t, restored); !bytes.Equal(again, blob) {
				t.Fatalf("%s: re-snapshot differs from original (%d vs %d bytes)", name, len(again), len(blob))
			}
			for i := k; i < steps; i++ {
				d, err := restored.Step(ests[i], us[i])
				if err != nil {
					t.Fatalf("%s: restored step %d: %v", name, i, err)
				}
				if !snapDecisionsEqual(d, want[i]) {
					t.Fatalf("%s step %d: restored decision %+v != reference %+v", name, i, d, want[i])
				}
			}
		}
	}
}

// TestSystemRestoreRejectsMismatch pins structural validation: a snapshot
// of one strategy or plant shape must not restore into another.
func TestSystemRestoreRejectsMismatch(t *testing.T) {
	m := models.AircraftPitch()
	ests, us := snapTrajectory(m, 3, 12)
	adaptive := snapDetector(t, m, sim.Adaptive)
	for i := range ests {
		if _, err := adaptive.Step(ests[i], us[i]); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	blob := systemSnapshot(t, adaptive)

	if err := systemRestore(snapDetector(t, m, sim.CUSUMBaseline), blob); err == nil {
		t.Fatalf("adaptive snapshot restored into a CUSUM detector")
	}
	if err := systemRestore(snapDetector(t, models.Quadrotor(), sim.Adaptive), blob); err == nil {
		t.Fatalf("3-state snapshot restored into a 12-state detector")
	}
	if err := systemRestore(snapDetector(t, m, sim.Adaptive), blob[:0]); err == nil {
		t.Fatalf("empty blob restored")
	}
}

// FuzzSnapshotRoundTrip is the codec's fidelity oracle: for a fuzzer-
// chosen plant, strategy, attack, trajectory, and crash point it asserts
// the full restore contract — re-snapshot byte-identity, bit-identical
// decisions after the crash point, and panic-free rejection of truncated
// or corrupted snapshots.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(10), uint8(20))
	f.Add(uint64(42), uint8(1), uint8(1), uint8(1), uint8(0), uint8(1))
	f.Add(uint64(7), uint8(5), uint8(2), uint8(2), uint8(40), uint8(60))
	f.Add(uint64(0xfeed), uint8(4), uint8(3), uint8(3), uint8(3), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, modelSel, stratSel, attackSel, kSel, nsteps uint8) {
		m := snapModels[int(modelSel)%len(snapModels)]
		strat := snapStrategies[int(stratSel)%len(snapStrategies)]
		attackName := []string{"none", "bias", "delay", "replay"}[int(attackSel)%4]
		steps := 1 + int(nsteps)%60
		k := int(kSel) % (steps + 1)

		ests, us := snapTrajectory(m, seed, steps)
		atk, err := sim.BuildAttack(m, attackName)
		if err != nil {
			t.Fatalf("BuildAttack: %v", err)
		}
		for i := range ests {
			ests[i] = atk.Apply(i, ests[i]).Clone()
		}

		ref := snapDetector(t, m, strat)
		want := make([]core.Decision, steps)
		for i := range ests {
			if want[i], err = ref.Step(ests[i], us[i]); err != nil {
				t.Fatalf("reference step %d: %v", i, err)
			}
		}

		crashed := snapDetector(t, m, strat)
		for i := 0; i < k; i++ {
			if _, err := crashed.Step(ests[i], us[i]); err != nil {
				t.Fatalf("crashed step %d: %v", i, err)
			}
		}
		blob := systemSnapshot(t, crashed)

		restored := snapDetector(t, m, strat)
		if err := systemRestore(restored, blob); err != nil {
			t.Fatalf("restore at k=%d: %v", k, err)
		}
		if again := systemSnapshot(t, restored); !bytes.Equal(again, blob) {
			t.Fatalf("re-snapshot differs at k=%d", k)
		}
		for i := k; i < steps; i++ {
			d, err := restored.Step(ests[i], us[i])
			if err != nil {
				t.Fatalf("restored step %d: %v", i, err)
			}
			if !snapDecisionsEqual(d, want[i]) {
				t.Fatalf("step %d after restore at k=%d: %+v != %+v", i, k, d, want[i])
			}
		}

		// Hostile inputs must be rejected or absorbed, never panic: every
		// prefix truncation errors out, and a single-byte corruption either
		// errors or restores something — both fine, as long as it returns.
		cut := int(seed % uint64(len(blob)+1))
		if err := systemRestore(snapDetector(t, m, strat), blob[:cut]); err == nil && cut < len(blob) {
			t.Fatalf("truncation to %d of %d bytes restored successfully", cut, len(blob))
		}
		corrupt := bytes.Clone(blob)
		corrupt[int(seed>>8)%len(corrupt)] ^= byte(seed >> 16)
		_ = systemRestore(snapDetector(t, m, strat), corrupt)
	})
}
