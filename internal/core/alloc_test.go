package core

import (
	"testing"

	"repro/internal/mat"
)

// The tentpole contract of the perf pass: with observability disabled the
// steady-state adaptive Step — logger ingest, warm-started deadline search,
// and window check — performs zero heap allocations. Any regression here
// reintroduces per-control-period GC pressure on the hot path.
func TestAdaptiveStepNoAllocsSteadyState(t *testing.T) {
	s := must(New(cfg(t)))
	est := mat.VecOf(0)
	u := mat.VecOf(0.1)
	// Warm up past the logger fill and anchor the deadline estimator.
	for i := 0; i < 20; i++ {
		if _, err := s.Step(est, u); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.Step(est, u); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state adaptive Step allocates %v per call, want 0", allocs)
	}
}

// The fixed-window baseline shares the logger and window machinery, so it
// inherits the same guarantee.
func TestFixedStepNoAllocsSteadyState(t *testing.T) {
	s := must(NewFixed(cfg(t), 4))
	est := mat.VecOf(0)
	u := mat.VecOf(0.1)
	for i := 0; i < 20; i++ {
		if _, err := s.Step(est, u); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.Step(est, u); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state fixed Step allocates %v per call, want 0", allocs)
	}
}
