package estim

import (
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
)

func BenchmarkObserverStep(b *testing.B) {
	sys := lti.MustNew(
		mat.FromRows([][]float64{{1, 0.05}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 0.05)),
		mat.FromRows([][]float64{{1, 0}}),
		0.05,
	)
	obs, err := NewObserver(sys, mat.Identity(2).Scale(1e-4), mat.Diag(1e-2), nil)
	if err != nil {
		b.Fatal(err)
	}
	y := mat.VecOf(1)
	u := mat.VecOf(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obs.Step(y, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDARE(b *testing.B) {
	sys := lti.MustNew(
		mat.FromRows([][]float64{{1, 0.05}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 0.05)),
		mat.FromRows([][]float64{{1, 0}}),
		0.05,
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DARE(sys.A, sys.C, mat.Identity(2).Scale(1e-4), mat.Diag(1e-2), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
