// Package estim provides the state-estimation substrate for partially
// observed plants. The paper assumes full observability for ease of
// presentation (Sec. 2: "all n dimensions can be estimated from sensor
// measurements") — this package supplies the estimator that assumption
// stands on when the sensors deliver y = C x instead of x itself: a
// steady-state Kalman filter (equivalently, an optimally-gained Luenberger
// observer)
//
//	x̂_{t+1} = A x̂_t + B u_t + L (y_t − C x̂_t)
//
// whose gain L solves the discrete algebraic Riccati equation by
// fixed-point iteration. The observer's output feeds the Data Logger
// exactly like a direct state measurement would, so the detection pipeline
// is unchanged.
package estim

import (
	"errors"
	"fmt"

	"repro/internal/lti"
	"repro/internal/mat"
)

// ErrNoConvergence is returned when the Riccati iteration fails to settle
// within the iteration budget (typically an undetectable (A, C) pair).
var ErrNoConvergence = errors.New("estim: Riccati iteration did not converge")

// DARE solves P = A P Aᵀ + Q − A P Cᵀ (C P Cᵀ + R)⁻¹ C P Aᵀ by fixed-point
// iteration from P₀ = Q, returning the steady-state prediction covariance.
// Q (n×n) is the process-noise covariance, R (p×p) the measurement-noise
// covariance; R must be invertible.
func DARE(a, c, q, r *mat.Dense, maxIter int, tol float64) (*mat.Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("estim: A must be square, got %dx%d", a.Rows(), a.Cols())
	}
	if c.Cols() != n {
		return nil, fmt.Errorf("estim: C cols %d != %d", c.Cols(), n)
	}
	p0 := c.Rows()
	if q.Rows() != n || q.Cols() != n {
		return nil, fmt.Errorf("estim: Q must be %dx%d", n, n)
	}
	if r.Rows() != p0 || r.Cols() != p0 {
		return nil, fmt.Errorf("estim: R must be %dx%d", p0, p0)
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	if tol <= 0 {
		tol = 1e-12
	}

	p := q.Clone()
	at := a.T()
	ct := c.T()
	for iter := 0; iter < maxIter; iter++ {
		// S = C P Cᵀ + R; K = A P Cᵀ S⁻¹.
		s := c.Mul(p).Mul(ct).Add(r)
		sInv, err := mat.Inverse(s)
		if err != nil {
			return nil, fmt.Errorf("estim: innovation covariance singular: %w", err)
		}
		apct := a.Mul(p).Mul(ct)
		next := a.Mul(p).Mul(at).Add(q).Sub(apct.Mul(sInv).Mul(apct.T()))
		diff := next.Sub(p).NormInf()
		p = next
		if mat.ApproxZero(diff, tol*(1+p.NormInf())) {
			return p, nil
		}
	}
	return nil, ErrNoConvergence
}

// SteadyStateGain returns the steady-state Kalman (observer) gain
// L = P Cᵀ (C P Cᵀ + R)⁻¹ for the filtered update form.
func SteadyStateGain(a, c, q, r *mat.Dense) (*mat.Dense, error) {
	p, err := DARE(a, c, q, r, 0, 0)
	if err != nil {
		return nil, err
	}
	ct := c.T()
	s := c.Mul(p).Mul(ct).Add(r)
	sInv, err := mat.Inverse(s)
	if err != nil {
		return nil, fmt.Errorf("estim: innovation covariance singular: %w", err)
	}
	return p.Mul(ct).Mul(sInv), nil
}

// Observer is a steady-state Kalman filter / Luenberger observer over a
// discrete LTI system. It is not safe for concurrent use.
type Observer struct {
	sys  *lti.System
	gain *mat.Dense
	xhat mat.Vec
}

// NewObserver builds an observer for sys with process-noise covariance q
// and measurement-noise covariance r, starting from initial estimate x0
// (nil = zero).
func NewObserver(sys *lti.System, q, r *mat.Dense, x0 mat.Vec) (*Observer, error) {
	gain, err := SteadyStateGain(sys.A, sys.C, q, r)
	if err != nil {
		return nil, err
	}
	xh := mat.NewVec(sys.StateDim())
	if x0 != nil {
		if len(x0) != sys.StateDim() {
			return nil, fmt.Errorf("estim: x0 dimension %d, want %d", len(x0), sys.StateDim())
		}
		xh = x0.Clone()
	}
	return &Observer{sys: sys, gain: gain, xhat: xh}, nil
}

// NewObserverWithGain builds an observer with an explicit gain L (n×p),
// bypassing the Riccati design — useful for hand-placed Luenberger poles.
func NewObserverWithGain(sys *lti.System, gain *mat.Dense, x0 mat.Vec) (*Observer, error) {
	if gain.Rows() != sys.StateDim() || gain.Cols() != sys.OutputDim() {
		return nil, fmt.Errorf("estim: gain shape %dx%d, want %dx%d",
			gain.Rows(), gain.Cols(), sys.StateDim(), sys.OutputDim())
	}
	xh := mat.NewVec(sys.StateDim())
	if x0 != nil {
		if len(x0) != sys.StateDim() {
			return nil, fmt.Errorf("estim: x0 dimension %d, want %d", len(x0), sys.StateDim())
		}
		xh = x0.Clone()
	}
	return &Observer{sys: sys, gain: gain.Clone(), xhat: xh}, nil
}

// Gain returns a copy of the observer gain L.
func (o *Observer) Gain() *mat.Dense { return o.gain.Clone() }

// Estimate returns a copy of the current state estimate x̂.
func (o *Observer) Estimate() mat.Vec { return o.xhat.Clone() }

// Step folds in the measurement y_t (taken at the current estimate's time)
// and the input u_t applied over the next period, advancing the estimate:
//
//	x̂⁺_t   = x̂_t + L (y_t − C x̂_t)   (measurement update)
//	x̂_{t+1} = A x̂⁺_t + B u_t         (time update)
//
// It returns the corrected (filtered) estimate x̂⁺_t — this is the value to
// hand to the Data Logger as the step-t state estimate. Mismatched
// measurement or input dimensions are configuration faults returned as
// errors; the estimate is left untouched.
func (o *Observer) Step(y mat.Vec, u mat.Vec) (mat.Vec, error) {
	if len(y) != o.sys.OutputDim() {
		return nil, fmt.Errorf("estim: measurement dimension %d, want %d", len(y), o.sys.OutputDim())
	}
	if u != nil && len(u) != o.sys.InputDim() {
		return nil, fmt.Errorf("estim: input dimension %d, want %d", len(u), o.sys.InputDim())
	}
	innovation := y.Sub(o.sys.Output(o.xhat))
	corrected := o.xhat.Add(o.gain.MulVec(innovation))
	if u == nil {
		u = mat.NewVec(o.sys.InputDim())
	}
	o.xhat = o.sys.Step(corrected, u, nil)
	return corrected, nil
}

// Reset restores the estimate to x0 (nil = zero). A mismatched x0
// dimension is returned as an error, leaving the estimate untouched.
func (o *Observer) Reset(x0 mat.Vec) error {
	if x0 == nil {
		o.xhat = mat.NewVec(o.sys.StateDim())
		return nil
	}
	if len(x0) != o.sys.StateDim() {
		return fmt.Errorf("estim: x0 dimension %d, want %d", len(x0), o.sys.StateDim())
	}
	o.xhat = x0.Clone()
	return nil
}
