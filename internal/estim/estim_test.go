package estim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
)

// Scalar DARE has a closed form we can check against:
// p = a²p + q − a²p²/(p + r)  (c = 1).
func TestDAREScalarClosedForm(t *testing.T) {
	a, q, r := 0.9, 0.04, 0.25
	p, err := DARE(mat.Diag(a), mat.Diag(1), mat.Diag(q), mat.Diag(r), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := p.At(0, 0)
	// Verify the fixed-point equation directly.
	rhs := a*a*got + q - a*a*got*got/(got+r)
	if math.Abs(got-rhs) > 1e-9 {
		t.Errorf("DARE residual: p=%v rhs=%v", got, rhs)
	}
	if got <= 0 {
		t.Errorf("covariance %v must be positive", got)
	}
}

func TestDAREValidation(t *testing.T) {
	a := mat.Identity(2)
	c := mat.FromRows([][]float64{{1, 0}})
	q := mat.Identity(2)
	r := mat.Diag(1)
	if _, err := DARE(mat.NewDense(2, 3), c, q, r, 0, 0); err == nil {
		t.Error("non-square A accepted")
	}
	if _, err := DARE(a, mat.NewDense(1, 3), q, r, 0, 0); err == nil {
		t.Error("mismatched C accepted")
	}
	if _, err := DARE(a, c, mat.Identity(3), r, 0, 0); err == nil {
		t.Error("mismatched Q accepted")
	}
	if _, err := DARE(a, c, q, mat.Identity(2), 0, 0); err == nil {
		t.Error("mismatched R accepted")
	}
}

func TestDARENoConvergenceUnstableUnobservable(t *testing.T) {
	// Unstable mode invisible to C: the covariance diverges.
	a := mat.FromRows([][]float64{{2, 0}, {0, 0.5}})
	c := mat.FromRows([][]float64{{0, 1}}) // sees only the stable mode
	_, err := DARE(a, c, mat.Identity(2).Scale(0.01), mat.Diag(0.1), 500, 1e-12)
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSteadyStateGainStabilizesErrorDynamics(t *testing.T) {
	// Observer error evolves as e' = (A − L C A?) — for the filtered form
	// used here, e' = (A − A L C)(...) ; rather than algebra, check the
	// spectral effect numerically: iterate the error map and require decay.
	sys := lti.MustNew(
		mat.FromRows([][]float64{{1, 0.1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 0.1)),
		mat.FromRows([][]float64{{1, 0}}),
		0.1,
	)
	gain, err := SteadyStateGain(sys.A, sys.C, mat.Identity(2).Scale(1e-3), mat.Diag(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := NewObserverWithGain(sys, gain, mat.VecOf(5, -3)) // wrong initial estimate
	if err != nil {
		t.Fatal(err)
	}
	// True system starts at zero, zero input, no noise: the observer must
	// converge to the true (zero) state.
	x := mat.NewVec(2)
	var lastErr float64
	for i := 0; i < 400; i++ {
		y := sys.Output(x)
		est, err := obs.Step(y, mat.VecOf(0))
		if err != nil {
			t.Fatal(err)
		}
		lastErr = est.Sub(x).Norm2()
	}
	if lastErr > 1e-3 {
		t.Errorf("observer error after 400 steps = %v", lastErr)
	}
}

func TestObserverTracksDrivenSystemUnderNoise(t *testing.T) {
	// The double integrator driven by a sine-ish input with process and
	// measurement noise: the steady-state filter error must stay bounded
	// and small relative to the raw measurement noise.
	sys := lti.MustNew(
		mat.FromRows([][]float64{{1, 0.05}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 0.05)),
		mat.FromRows([][]float64{{1, 0}}),
		0.05,
	)
	qv, rv := 1e-4, 4e-2
	obs, err := NewObserver(sys, mat.Identity(2).Scale(qv), mat.Diag(rv), nil)
	if err != nil {
		t.Fatal(err)
	}
	src := noise.NewSource(5)
	x := mat.NewVec(2)
	sumSq, count := 0.0, 0
	for i := 0; i < 2000; i++ {
		u := mat.VecOf(math.Sin(float64(i) / 30))
		y := sys.Output(x)
		y[0] += src.Uniform(-0.3, 0.3) // measurement noise, std ~0.17
		est, err := obs.Step(y, u)
		if err != nil {
			t.Fatal(err)
		}
		if i > 200 { // skip transient
			e := est.Sub(x).Norm2()
			sumSq += e * e
			count++
		}
		w := mat.VecOf(src.Uniform(-0.01, 0.01), src.Uniform(-0.01, 0.01))
		x = sys.Step(x, u, w)
	}
	rmse := math.Sqrt(sumSq / float64(count))
	if rmse > 0.17 {
		t.Errorf("filter RMSE %v not better than raw measurement noise", rmse)
	}
}

func TestObserverOnTestbedCarOutputModel(t *testing.T) {
	// The identified car model measures y = 384.34 x; the observer must
	// recover the internal state from speed readings.
	m := models.TestbedCar()
	obs, err := NewObserver(m.Sys, mat.Diag(1e-10), mat.Diag(1e-4), m.X0)
	if err != nil {
		t.Fatal(err)
	}
	x := m.X0.Clone()
	u := mat.VecOf(2.1)
	var est mat.Vec
	for i := 0; i < 100; i++ {
		y := m.Sys.Output(x)
		var err error
		est, err = obs.Step(y, u)
		if err != nil {
			t.Fatal(err)
		}
		x = m.Sys.Step(x, u, nil)
	}
	if est.Sub(x).Norm2() > 1e-3*x.Norm2()+1e-9 {
		t.Errorf("car observer error %v too large (x=%v est=%v)", est.Sub(x).Norm2(), x, est)
	}
}

func TestObserverValidation(t *testing.T) {
	sys := lti.MustNew(mat.Diag(0.9), mat.ColVec(mat.VecOf(1)), nil, 1)
	if _, err := NewObserver(sys, mat.Diag(1), mat.Diag(1), mat.VecOf(1, 2)); err == nil {
		t.Error("wrong x0 dimension accepted")
	}
	if _, err := NewObserverWithGain(sys, mat.NewDense(2, 1), nil); err == nil {
		t.Error("wrong gain shape accepted")
	}
	if _, err := NewObserverWithGain(sys, mat.Diag(0.5), mat.VecOf(1, 2)); err == nil {
		t.Error("wrong x0 dimension accepted (explicit gain)")
	}
}

func TestObserverStepErrorsOnBadDimensions(t *testing.T) {
	sys := lti.MustNew(mat.Diag(0.9), mat.ColVec(mat.VecOf(1)), nil, 1)
	obs, err := NewObserverWithGain(sys, mat.Diag(0.5), mat.VecOf(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.Step(mat.VecOf(1, 2), nil); err == nil {
		t.Error("mismatched measurement dimension must error")
	}
	if _, err := obs.Step(mat.VecOf(1), mat.VecOf(1, 2)); err == nil {
		t.Error("mismatched input dimension must error")
	}
	// A rejected step must leave the estimate untouched.
	if !mat.ApproxEq(obs.Estimate()[0], 3, 0) {
		t.Errorf("estimate after rejected steps = %v, want 3", obs.Estimate()[0])
	}
}

func TestObserverResetAndAccessors(t *testing.T) {
	sys := lti.MustNew(mat.Diag(0.9), mat.ColVec(mat.VecOf(1)), nil, 1)
	obs, err := NewObserverWithGain(sys, mat.Diag(0.5), mat.VecOf(3))
	if err != nil {
		t.Fatal(err)
	}
	if obs.Estimate()[0] != 3 {
		t.Error("initial estimate wrong")
	}
	if _, err := obs.Step(mat.VecOf(1), mat.VecOf(0)); err != nil {
		t.Fatal(err)
	}
	if err := obs.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if obs.Estimate()[0] != 0 {
		t.Error("Reset(nil) should zero the estimate")
	}
	if err := obs.Reset(mat.VecOf(7)); err != nil {
		t.Fatal(err)
	}
	if obs.Estimate()[0] != 7 {
		t.Error("Reset(x0) wrong")
	}
	if err := obs.Reset(mat.VecOf(1, 2)); err == nil {
		t.Error("Reset with wrong dimension must error")
	}
	g := obs.Gain()
	g.Set(0, 0, 99)
	if obs.gain.At(0, 0) == 99 {
		t.Error("Gain() aliased internal state")
	}
}

func TestObserverNilInputTreatedAsZero(t *testing.T) {
	sys := lti.MustNew(mat.Diag(1), mat.ColVec(mat.VecOf(1)), nil, 1)
	obs, err := NewObserverWithGain(sys, mat.Diag(1), mat.VecOf(2))
	if err != nil {
		t.Fatal(err)
	}
	// With gain 1, corrected = y; next = A·y + B·0 = y.
	if _, err := obs.Step(mat.VecOf(5), nil); err != nil {
		t.Fatal(err)
	}
	if obs.Estimate()[0] != 5 {
		t.Errorf("estimate = %v, want 5", obs.Estimate()[0])
	}
}
