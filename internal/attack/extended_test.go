package attack

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestFreezeServesLastCleanSample(t *testing.T) {
	f := NewFreeze(Schedule{Start: 3, End: 6}, nil)
	var got []float64
	for i := 0; i < 7; i++ {
		out := f.Apply(i, mat.VecOf(float64(i)))
		got = append(got, out[0])
	}
	want := []float64{0, 1, 2, 2, 2, 2, 6} // frozen at the step-2 value
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d: got %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestFreezeMaskedDimensions(t *testing.T) {
	f := NewFreeze(Schedule{Start: 1, End: 3}, []bool{true, false})
	f.Apply(0, mat.VecOf(10, 20))
	out := f.Apply(1, mat.VecOf(11, 21))
	if out[0] != 10 || out[1] != 21 {
		t.Errorf("masked freeze = %v, want [10 21]", out)
	}
}

func TestFreezeBeforeAnySamplePassesThrough(t *testing.T) {
	f := NewFreeze(Schedule{Start: 0, End: 2}, nil)
	if out := f.Apply(0, mat.VecOf(5)); out[0] != 5 {
		t.Errorf("freeze with no history = %v", out)
	}
}

func TestFreezeMaskDimensionMismatchPanics(t *testing.T) {
	f := NewFreeze(Schedule{Start: 1}, []bool{true})
	f.Apply(0, mat.VecOf(1, 2)) // records clean sample of dim 2
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Apply(1, mat.VecOf(1, 2))
}

func TestFreezeReset(t *testing.T) {
	f := NewFreeze(Schedule{Start: 1}, nil)
	f.Apply(0, mat.VecOf(42))
	f.Reset()
	if out := f.Apply(1, mat.VecOf(7)); out[0] != 7 {
		t.Errorf("post-reset freeze served stale value %v", out[0])
	}
}

func TestFreezeMaskCopied(t *testing.T) {
	mask := []bool{true}
	f := NewFreeze(Schedule{Start: 1}, mask)
	mask[0] = false
	f.Apply(0, mat.VecOf(1))
	if out := f.Apply(1, mat.VecOf(9)); out[0] != 1 {
		t.Error("freeze aliased caller's mask")
	}
}

func TestRampGrowsLinearly(t *testing.T) {
	r := NewRamp(Schedule{Start: 10}, mat.VecOf(4), 4)
	cases := []struct {
		step int
		want float64
	}{
		{9, 0}, {10, 1}, {11, 2}, {12, 3}, {13, 4}, {20, 4},
	}
	for _, c := range cases {
		out := r.Apply(c.step, mat.VecOf(0))
		if math.Abs(out[0]-c.want) > 1e-12 {
			t.Errorf("step %d: offset %v, want %v", c.step, out[0], c.want)
		}
	}
}

func TestRampNoOnsetDiscontinuity(t *testing.T) {
	// The injected offset at the first attacked step must be only one
	// ramp increment, not the full bias.
	r := NewRamp(Schedule{Start: 5}, mat.VecOf(10), 100)
	out := r.Apply(5, mat.VecOf(0))
	if out[0] > 0.11 {
		t.Errorf("first-step offset %v too large for stealth", out[0])
	}
}

func TestRampValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRamp(Schedule{}, mat.VecOf(1), 0)
}

func TestNoiseInjectionBoundedAndSeeded(t *testing.T) {
	n1 := NewNoiseInjection(Schedule{Start: 0}, mat.VecOf(0.5, 0), 9)
	n2 := NewNoiseInjection(Schedule{Start: 0}, mat.VecOf(0.5, 0), 9)
	for i := 0; i < 1000; i++ {
		a := n1.Apply(i, mat.VecOf(1, 1))
		b := n2.Apply(i, mat.VecOf(1, 1))
		if math.Abs(a[0]-1) > 0.5 {
			t.Fatalf("step %d: injected noise out of bounds: %v", i, a[0])
		}
		if a[1] != 1 {
			t.Fatalf("zero-amplitude channel perturbed: %v", a[1])
		}
		if a[0] != b[0] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestNoiseInjectionInactiveOutsideSchedule(t *testing.T) {
	n := NewNoiseInjection(Schedule{Start: 10, End: 20}, mat.VecOf(1), 3)
	if out := n.Apply(5, mat.VecOf(2)); out[0] != 2 {
		t.Error("noise injected outside schedule")
	}
}

func TestNoiseInjectionResetReplaysStream(t *testing.T) {
	n := NewNoiseInjection(Schedule{Start: 0}, mat.VecOf(1), 17)
	first := n.Apply(0, mat.VecOf(0))[0]
	n.Apply(1, mat.VecOf(0))
	n.Reset()
	if got := n.Apply(0, mat.VecOf(0))[0]; got != first {
		t.Errorf("post-reset first draw %v != %v", got, first)
	}
}

func TestNoiseInjectionNegativeAmpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNoiseInjection(Schedule{}, mat.VecOf(-0.1), 1)
}

func TestMaskedRestrictsAttackToDimensions(t *testing.T) {
	inner := NewBias(Schedule{Start: 0}, mat.VecOf(5, 5))
	m := NewMasked(inner, []bool{false, true})
	out := m.Apply(0, mat.VecOf(1, 1))
	if out[0] != 1 || out[1] != 6 {
		t.Errorf("masked bias = %v, want [1 6]", out)
	}
	if m.Name() != "masked-bias" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestMaskedPartialCompromiseInvariant(t *testing.T) {
	// Threat model: 0 < ‖e_t‖₀ < n. With a single masked dimension the
	// error vector must have exactly one non-zero entry.
	inner := NewBias(Schedule{Start: 0}, mat.VecOf(3, 3, 3))
	m := NewMasked(inner, []bool{false, true, false})
	clean := mat.VecOf(1, 2, 3)
	out := m.Apply(0, clean)
	nonzero := 0
	for i := range out {
		if out[i] != clean[i] {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("‖e‖₀ = %d, want 1", nonzero)
	}
}

func TestMaskedValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewMasked(nil, []bool{true}) },
		func() { NewMasked(None{}, nil) },
		func() { NewMasked(NewBias(Schedule{}, mat.VecOf(1)), []bool{true, false}).Apply(0, mat.VecOf(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMaskedResetPropagates(t *testing.T) {
	inner := NewDelay(Schedule{Start: 1}, 1)
	m := NewMasked(inner, []bool{true})
	m.Apply(0, mat.VecOf(100))
	m.Reset()
	m.Apply(0, mat.VecOf(5))
	if out := m.Apply(1, mat.VecOf(6)); out[0] != 5 {
		t.Errorf("reset did not propagate: %v", out[0])
	}
}

func TestExtendedAttacksImplementInterface(t *testing.T) {
	for _, a := range []Attack{
		NewFreeze(Schedule{Start: 1}, nil),
		NewRamp(Schedule{Start: 1}, mat.VecOf(1), 5),
		NewNoiseInjection(Schedule{Start: 1}, mat.VecOf(1), 1),
		NewMasked(None{}, []bool{true}),
	} {
		if a.Name() == "" {
			t.Errorf("%T has empty name", a)
		}
	}
}
