package attack

import "repro/internal/mat"

// Sequence chains multiple attacks into one measurement-stream adversary:
// each step, every stage observes the stream in order and may corrupt it
// further (stage i sees stage i−1's output as its "clean" input). This
// models the multi-stage campaigns of the threat model — e.g. a
// reconnaissance replay-recording phase followed by a bias injection, or a
// noise-floor raise that masks a concurrent ramp.
type Sequence struct {
	stages []Attack
}

// NewSequence chains the given attacks in application order.
func NewSequence(stages ...Attack) *Sequence {
	if len(stages) == 0 {
		panic("attack: empty sequence")
	}
	for i, s := range stages {
		if s == nil {
			panic("attack: nil stage in sequence")
		}
		_ = i
	}
	cp := make([]Attack, len(stages))
	copy(cp, stages)
	return &Sequence{stages: cp}
}

// Name joins the stage names with "+".
func (s *Sequence) Name() string {
	out := ""
	for i, st := range s.stages {
		if i > 0 {
			out += "+"
		}
		out += st.Name()
	}
	return out
}

// Active reports whether any stage corrupts step t.
func (s *Sequence) Active(t int) bool {
	for _, st := range s.stages {
		if st.Active(t) {
			return true
		}
	}
	return false
}

// Apply threads the measurement through every stage in order.
func (s *Sequence) Apply(t int, clean mat.Vec) mat.Vec {
	out := clean
	for _, st := range s.stages {
		out = st.Apply(t, out)
	}
	return out
}

// Reset resets every stage.
func (s *Sequence) Reset() {
	for _, st := range s.stages {
		st.Reset()
	}
}

// Onset returns the earliest stage onset, or -1 if no stage has a schedule.
func (s *Sequence) Onset() int {
	onset := -1
	for _, st := range s.stages {
		var so int
		switch v := st.(type) {
		case *Bias:
			so = v.Schedule.Start
		case *Delay:
			so = v.Schedule.Start
		case *Replay:
			so = v.Schedule.Start
		case *Freeze:
			so = v.Schedule.Start
		case *Ramp:
			so = v.Schedule.Start
		case *NoiseInjection:
			so = v.Schedule.Start
		case *Masked:
			so = onsetOf(v.Inner)
		default:
			continue
		}
		if so >= 0 && (onset < 0 || so < onset) {
			onset = so
		}
	}
	return onset
}

func onsetOf(a Attack) int {
	if seq, ok := a.(*Sequence); ok {
		return seq.Onset()
	}
	s := NewSequence(a)
	return s.Onset()
}
