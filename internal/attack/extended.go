package attack

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/noise"
)

// This file extends the three headline scenarios of Sec. 6.1.1 with the
// rest of the paper's threat model (Sec. 2): availability attacks (a stuck
// sensor is the measurement-stream view of DoS), stealthier integrity
// attacks (ramping bias), partial compromise (‖e_t‖₀ < n via per-dimension
// masks), and transduction-style noise injection (the acoustic-gyroscope
// attacks the introduction cites raise the victim channel's noise floor).

// Freeze is a stuck-at / availability attack: inside the schedule the
// controller keeps receiving the last measurement seen before the attack
// (optionally only on masked dimensions). This models a sensor DoS where
// the data source stops updating.
type Freeze struct {
	Schedule Schedule
	// Mask selects the frozen dimensions; nil freezes all of them.
	Mask []bool

	frozen mat.Vec
}

// NewFreeze returns a stuck-at attack. mask may be nil (freeze everything);
// otherwise its length must match the measurement dimension at Apply time.
func NewFreeze(sched Schedule, mask []bool) *Freeze {
	var cp []bool
	if mask != nil {
		cp = make([]bool, len(mask))
		copy(cp, mask)
	}
	return &Freeze{Schedule: sched, Mask: cp}
}

// Name returns "freeze".
func (f *Freeze) Name() string { return "freeze" }

// Active reports whether measurements are stuck at step t.
func (f *Freeze) Active(t int) bool { return f.Schedule.Active(t) }

// Apply records the latest clean measurement while inactive and serves the
// frozen value inside the schedule.
func (f *Freeze) Apply(t int, clean mat.Vec) mat.Vec {
	if !f.Active(t) {
		f.frozen = clean.Clone()
		return clean
	}
	if f.frozen == nil {
		// Attack began before any clean sample was seen; nothing to serve.
		return clean
	}
	if f.Mask == nil {
		return f.frozen.Clone()
	}
	if len(f.Mask) != len(clean) {
		panic(fmt.Sprintf("attack: freeze mask dimension %d vs measurement %d", len(f.Mask), len(clean)))
	}
	out := clean.Clone()
	for i, m := range f.Mask {
		if m {
			out[i] = f.frozen[i]
		}
	}
	return out
}

// Reset clears the frozen sample.
func (f *Freeze) Reset() { f.frozen = nil }

// Ramp is a stealthy integrity attack: the injected offset grows linearly
// from zero to Offset over RampSteps, then holds. Because there is no onset
// discontinuity, window detectors only see the sustained model-mismatch
// term — the hardest case for residual detection (cf. the stealthy-attack
// analysis of Urbina et al. the paper cites).
type Ramp struct {
	Schedule  Schedule
	Offset    mat.Vec
	RampSteps int
}

// NewRamp returns a ramping bias attack.
func NewRamp(sched Schedule, offset mat.Vec, rampSteps int) *Ramp {
	if rampSteps < 1 {
		panic(fmt.Sprintf("attack: ramp steps %d must be >= 1", rampSteps))
	}
	return &Ramp{Schedule: sched, Offset: offset.Clone(), RampSteps: rampSteps}
}

// Name returns "ramp".
func (r *Ramp) Name() string { return "ramp" }

// Active reports whether the ramp corrupts step t.
func (r *Ramp) Active(t int) bool { return r.Schedule.Active(t) }

// Apply adds the scaled offset inside the schedule.
func (r *Ramp) Apply(t int, clean mat.Vec) mat.Vec {
	if !r.Active(t) {
		return clean
	}
	if len(clean) != len(r.Offset) {
		panic(fmt.Sprintf("attack: ramp offset dimension %d vs measurement %d", len(r.Offset), len(clean)))
	}
	progress := float64(t-r.Schedule.Start+1) / float64(r.RampSteps)
	if progress > 1 {
		progress = 1
	}
	return clean.Add(r.Offset.Scale(progress))
}

// Reset is a no-op for the stateless ramp.
func (r *Ramp) Reset() {}

// NoiseInjection raises the noise floor of masked channels — the
// measurement-stream effect of transduction attacks (acoustic injection on
// gyroscopes, EMI on analog sensors) from the papers cited in Sec. 1.
type NoiseInjection struct {
	Schedule Schedule
	// Amp is the per-dimension uniform amplitude of the injected noise.
	Amp  mat.Vec
	Seed uint64

	src *noise.Source
}

// NewNoiseInjection returns a noise-floor attack with deterministic seed.
func NewNoiseInjection(sched Schedule, amp mat.Vec, seed uint64) *NoiseInjection {
	for i, a := range amp {
		if a < 0 {
			panic(fmt.Sprintf("attack: negative noise amplitude %v in dimension %d", a, i))
		}
	}
	return &NoiseInjection{Schedule: sched, Amp: amp.Clone(), Seed: seed, src: noise.NewSource(seed)}
}

// Name returns "noise".
func (n *NoiseInjection) Name() string { return "noise" }

// Active reports whether noise is injected at step t.
func (n *NoiseInjection) Active(t int) bool { return n.Schedule.Active(t) }

// Apply adds bounded uniform noise inside the schedule.
func (n *NoiseInjection) Apply(t int, clean mat.Vec) mat.Vec {
	if !n.Active(t) {
		return clean
	}
	if len(clean) != len(n.Amp) {
		panic(fmt.Sprintf("attack: noise amplitude dimension %d vs measurement %d", len(n.Amp), len(clean)))
	}
	out := clean.Clone()
	for i, a := range n.Amp {
		if a > 0 {
			out[i] += n.src.Uniform(-a, a)
		}
	}
	return out
}

// Reset re-seeds the noise stream for a fresh run.
func (n *NoiseInjection) Reset() { n.src = noise.NewSource(n.Seed) }

// Masked restricts an inner attack to a subset of measurement dimensions,
// modelling partial compromise 0 < ‖e_t‖₀ < n (Sec. 2's threat model): only
// masked dimensions take the attacked values, the rest pass through clean.
type Masked struct {
	Inner Attack
	Mask  []bool
}

// NewMasked wraps an attack with a dimension mask.
func NewMasked(inner Attack, mask []bool) *Masked {
	if inner == nil {
		panic("attack: nil inner attack")
	}
	if len(mask) == 0 {
		panic("attack: empty mask")
	}
	cp := make([]bool, len(mask))
	copy(cp, mask)
	return &Masked{Inner: inner, Mask: cp}
}

// Name returns the inner attack's name with a "masked-" prefix.
func (m *Masked) Name() string { return "masked-" + m.Inner.Name() }

// Active defers to the inner attack.
func (m *Masked) Active(t int) bool { return m.Inner.Active(t) }

// Apply runs the inner attack and then restores unmasked dimensions.
func (m *Masked) Apply(t int, clean mat.Vec) mat.Vec {
	if len(m.Mask) != len(clean) {
		panic(fmt.Sprintf("attack: mask dimension %d vs measurement %d", len(m.Mask), len(clean)))
	}
	attacked := m.Inner.Apply(t, clean)
	out := clean.Clone()
	for i, sel := range m.Mask {
		if sel {
			out[i] = attacked[i]
		}
	}
	return out
}

// Reset defers to the inner attack.
func (m *Masked) Reset() { m.Inner.Reset() }
