package attack

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestStealthyResidualStaysUnderBudget(t *testing.T) {
	// For the pure offset sequence, the induced residual |o_t − A o_{t−1}|
	// must never exceed α·τ in any dimension.
	a := mat.FromRows([][]float64{{0.9, 0.1}, {0, 0.95}})
	s := NewStealthy(Schedule{Start: 0}, a, mat.VecOf(1, 0.5), mat.VecOf(0.1, 0.2), 0.5)
	prev := mat.NewVec(2)
	for step := 0; step < 200; step++ {
		s.Apply(step, mat.NewVec(2))
		o := s.Offset()
		delta := o.Sub(a.MulVec(prev))
		if delta[0] > 0.05+1e-12 || delta[1] > 0.1+1e-12 {
			t.Fatalf("step %d: residual budget exceeded: %v", step, delta)
		}
		prev = o
	}
}

func TestStealthyCeilingStablePlant(t *testing.T) {
	// Scalar A = 0.9, τ = 0.1, α = 0.5: per-step budget γ = 0.05, offset
	// converges to γ/(1−A) = 0.5.
	s := NewStealthy(Schedule{Start: 0}, mat.Diag(0.9), mat.VecOf(1), mat.VecOf(0.1), 0.5)
	for step := 0; step < 500; step++ {
		s.Apply(step, mat.VecOf(0))
	}
	if got := s.Offset()[0]; math.Abs(got-0.5) > 1e-6 {
		t.Errorf("stealth ceiling = %v, want 0.5", got)
	}
}

func TestStealthyUnboundedOnIntegrator(t *testing.T) {
	// A = 1 (integrator state): the stealthy offset grows without bound —
	// the classic result that integrating plants are unboundedly
	// attackable below any residual threshold.
	s := NewStealthy(Schedule{Start: 0}, mat.Diag(1), mat.VecOf(1), mat.VecOf(0.1), 0.5)
	for step := 0; step < 100; step++ {
		s.Apply(step, mat.VecOf(0))
	}
	if got := s.Offset()[0]; math.Abs(got-100*0.05) > 1e-9 {
		t.Errorf("integrator offset = %v, want 5 (100 steps x 0.05)", got)
	}
}

func TestStealthyInvisibleToWindowDetector(t *testing.T) {
	// Closed check at the residual level: feed the offset deltas through
	// the window rule at every window size 0..20 — never an alarm (the
	// windowed average of values <= ατ < τ cannot exceed τ).
	a := mat.Diag(0.9)
	s := NewStealthy(Schedule{Start: 0}, a, mat.VecOf(1), mat.VecOf(0.1), 0.6)
	prev := mat.NewVec(1)
	var residuals []float64
	for step := 0; step < 100; step++ {
		s.Apply(step, mat.VecOf(0))
		o := s.Offset()
		residuals = append(residuals, math.Abs(o[0]-0.9*prev[0]))
		prev = o
	}
	for w := 0; w <= 20; w++ {
		for end := w; end < len(residuals); end++ {
			sum := 0.0
			for k := end - w; k <= end; k++ {
				sum += residuals[k]
			}
			if avg := sum / float64(w+1); avg > 0.1 {
				t.Fatalf("window %d at %d: avg %v exceeds tau", w, end, avg)
			}
		}
	}
}

func TestStealthyInactiveAndReset(t *testing.T) {
	s := NewStealthy(Schedule{Start: 10}, mat.Diag(0.9), mat.VecOf(1), mat.VecOf(0.1), 0.5)
	if out := s.Apply(0, mat.VecOf(7)); out[0] != 7 {
		t.Error("inactive stealthy modified the measurement")
	}
	s.Apply(10, mat.VecOf(0))
	if s.Offset()[0] == 0 {
		t.Error("active stealthy did not inject")
	}
	s.Reset()
	if s.Offset()[0] != 0 {
		t.Error("reset did not clear the offset")
	}
}

func TestStealthyValidation(t *testing.T) {
	a := mat.Diag(0.9)
	for i, fn := range []func(){
		func() { NewStealthy(Schedule{}, nil, mat.VecOf(1), mat.VecOf(1), 0.5) },
		func() { NewStealthy(Schedule{}, mat.NewDense(1, 2), mat.VecOf(1), mat.VecOf(1), 0.5) },
		func() { NewStealthy(Schedule{}, a, mat.VecOf(1, 2), mat.VecOf(1), 0.5) },
		func() { NewStealthy(Schedule{}, a, mat.VecOf(0), mat.VecOf(1), 0.5) },
		func() { NewStealthy(Schedule{}, a, mat.VecOf(1), mat.VecOf(0), 0.5) },
		func() { NewStealthy(Schedule{}, a, mat.VecOf(1), mat.VecOf(1), 0) },
		func() { NewStealthy(Schedule{}, a, mat.VecOf(1), mat.VecOf(1), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
