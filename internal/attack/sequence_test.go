package attack

import (
	"testing"

	"repro/internal/mat"
)

func TestSequenceAppliesStagesInOrder(t *testing.T) {
	// Stage 1 adds 1 from step 0; stage 2 adds 10 from step 5.
	s := NewSequence(
		NewBias(Schedule{Start: 0}, mat.VecOf(1)),
		NewBias(Schedule{Start: 5}, mat.VecOf(10)),
	)
	if out := s.Apply(0, mat.VecOf(0)); out[0] != 1 {
		t.Errorf("step 0 = %v, want 1", out[0])
	}
	if out := s.Apply(5, mat.VecOf(0)); out[0] != 11 {
		t.Errorf("step 5 = %v, want 11", out[0])
	}
	if s.Name() != "bias+bias" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestSequenceStagesSeeUpstreamOutput(t *testing.T) {
	// A replay stage records the *biased* stream — reconnaissance on the
	// already-corrupted channel.
	bias := NewBias(Schedule{Start: 0, End: 3}, mat.VecOf(100))
	replay := NewReplay(Schedule{Start: 10}, 0, 2)
	s := NewSequence(bias, replay)
	s.Apply(0, mat.VecOf(1)) // replay records 101
	s.Apply(1, mat.VecOf(2)) // records 102
	for step := 2; step < 10; step++ {
		s.Apply(step, mat.VecOf(0))
	}
	if out := s.Apply(10, mat.VecOf(0)); out[0] != 101 {
		t.Errorf("replayed value = %v, want the biased 101", out[0])
	}
}

func TestSequenceActiveAndOnset(t *testing.T) {
	s := NewSequence(
		NewDelay(Schedule{Start: 30, End: 40}, 2),
		NewBias(Schedule{Start: 20, End: 25}, mat.VecOf(1)),
	)
	if !s.Active(22) || !s.Active(35) || s.Active(27) {
		t.Error("Active union wrong")
	}
	if s.Onset() != 20 {
		t.Errorf("Onset = %d, want 20", s.Onset())
	}
}

func TestSequenceOnsetWithMaskedStage(t *testing.T) {
	s := NewSequence(NewMasked(NewBias(Schedule{Start: 7}, mat.VecOf(1)), []bool{true}))
	if s.Onset() != 7 {
		t.Errorf("Onset = %d, want 7", s.Onset())
	}
}

func TestSequenceOnsetNone(t *testing.T) {
	s := NewSequence(None{})
	if s.Onset() != -1 {
		t.Errorf("Onset = %d, want -1", s.Onset())
	}
}

func TestSequenceReset(t *testing.T) {
	d := NewDelay(Schedule{Start: 1}, 1)
	s := NewSequence(d)
	s.Apply(0, mat.VecOf(9))
	s.Reset()
	s.Apply(0, mat.VecOf(5))
	if out := s.Apply(1, mat.VecOf(6)); out[0] != 5 {
		t.Errorf("reset not propagated: %v", out[0])
	}
}

func TestSequenceValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewSequence() },
		func() { NewSequence(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
