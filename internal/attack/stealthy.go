package attack

import (
	"fmt"

	"repro/internal/mat"
)

// Stealthy is the residual-aware adversary of the stealthy-attack
// literature the paper builds on (Urbina et al., "Limiting the impact of
// stealthy attacks on industrial control systems"): it knows the plant
// model AND the detection threshold, and shapes its injected offset so the
// residual it induces stays below a fraction α of τ in every dimension at
// every step — invisible to any residual detector with that threshold, no
// matter the window size.
//
// For the additive sensor offset o_t, the induced residual is
//
//	Δz_t = |o_t − A o_{t−1}|
//
// (the clean terms cancel), so the attacker greedily grows o toward its
// goal direction while capping each step's |o_t − A o_{t−1}| at α·τ.
// The reachable offset saturates where the sustained term |(I−A) o| hits
// the cap — the quantitative "stealth ceiling" that bounds the attack's
// impact. The StealthyImpact experiment measures that ceiling.
type Stealthy struct {
	Schedule Schedule
	// Direction is the unit-intent of the attacker in sensor space; the
	// offset grows along it.
	Direction mat.Vec
	// Alpha is the fraction of τ the induced residual may use (< 1 for
	// guaranteed invisibility against threshold τ).
	Alpha float64
	// Tau is the detector's per-dimension threshold the attacker evades.
	Tau mat.Vec
	// A is the plant's state matrix (the attacker's model knowledge).
	A *matDense

	offset mat.Vec
}

// matDense aliases mat.Dense to keep the struct self-describing without an
// import cycle risk in user code.
type matDense = mat.Dense

// NewStealthy builds a residual-aware stealthy attack.
func NewStealthy(sched Schedule, a *mat.Dense, direction, tau mat.Vec, alpha float64) *Stealthy {
	if a == nil || a.Rows() != a.Cols() {
		panic("attack: stealthy needs a square A")
	}
	n := a.Rows()
	if len(direction) != n || len(tau) != n {
		panic(fmt.Sprintf("attack: stealthy dimension mismatch (A %dx%d, dir %d, tau %d)",
			n, n, len(direction), len(tau)))
	}
	if direction.Norm2() == 0 {
		panic("attack: stealthy zero direction")
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("attack: stealthy alpha %v outside (0, 1)", alpha))
	}
	for i, v := range tau {
		if v <= 0 {
			panic(fmt.Sprintf("attack: stealthy tau[%d] = %v must be positive", i, v))
		}
	}
	return &Stealthy{
		Schedule:  sched,
		Direction: direction.Scale(1 / direction.Norm2()),
		Alpha:     alpha,
		Tau:       tau.Clone(),
		A:         a.Clone(),
	}
}

// Name returns "stealthy".
func (s *Stealthy) Name() string { return "stealthy" }

// Active reports whether the offset is applied at step t.
func (s *Stealthy) Active(t int) bool { return s.Schedule.Active(t) }

// Apply grows the offset along the goal direction as fast as the residual
// budget allows and adds it to the measurement.
func (s *Stealthy) Apply(t int, clean mat.Vec) mat.Vec {
	if !s.Active(t) {
		return clean
	}
	n := len(s.Tau)
	if len(clean) != n {
		panic(fmt.Sprintf("attack: stealthy measurement dimension %d, want %d", len(clean), n))
	}
	if s.offset == nil {
		s.offset = mat.NewVec(n)
	}
	// Baseline: carrying A·o_prev forward induces zero residual. Any move
	// d from there costs |d| per dimension; spend the budget along the goal
	// direction.
	carried := s.A.MulVec(s.offset)
	// Largest gamma such that |gamma·dir_i| <= α·τ_i for all i.
	gamma := 1e308
	for i := 0; i < n; i++ {
		d := s.Direction[i]
		if d == 0 {
			continue
		}
		if lim := s.Alpha * s.Tau[i] / abs(d); lim < gamma {
			gamma = lim
		}
	}
	s.offset = carried.Add(s.Direction.Scale(gamma))
	return clean.Add(s.offset)
}

// Offset returns a copy of the current injected offset.
func (s *Stealthy) Offset() mat.Vec {
	if s.offset == nil {
		return mat.NewVec(len(s.Tau))
	}
	return s.offset.Clone()
}

// Reset clears the accumulated offset.
func (s *Stealthy) Reset() { s.offset = nil }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
