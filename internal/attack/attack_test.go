package attack

import (
	"testing"

	"repro/internal/mat"
)

func TestScheduleActive(t *testing.T) {
	s := Schedule{Start: 10, End: 20}
	if s.Active(9) || !s.Active(10) || !s.Active(19) || s.Active(20) {
		t.Error("bounded schedule activation wrong")
	}
	open := Schedule{Start: 5}
	if !open.Active(5) || !open.Active(1<<20) || open.Active(4) {
		t.Error("open-ended schedule activation wrong")
	}
}

func TestNonePassesThrough(t *testing.T) {
	var a None
	y := mat.VecOf(1, 2)
	if got := a.Apply(3, y); !got.Equal(y, 0) {
		t.Errorf("None.Apply = %v", got)
	}
	if a.Active(0) || a.Name() != "none" {
		t.Error("None metadata wrong")
	}
	a.Reset() // must not panic
}

func TestBiasInsideAndOutsideWindow(t *testing.T) {
	b := NewBias(Schedule{Start: 5, End: 8}, mat.VecOf(2.5))
	if got := b.Apply(4, mat.VecOf(1)); !got.Equal(mat.VecOf(1), 0) {
		t.Errorf("bias before window = %v", got)
	}
	if got := b.Apply(5, mat.VecOf(1)); !got.Equal(mat.VecOf(3.5), 0) {
		t.Errorf("bias inside window = %v", got)
	}
	if got := b.Apply(8, mat.VecOf(1)); !got.Equal(mat.VecOf(1), 0) {
		t.Errorf("bias after window = %v", got)
	}
	if b.Name() != "bias" {
		t.Error("name")
	}
}

func TestBiasDoesNotAliasOffset(t *testing.T) {
	off := mat.VecOf(1)
	b := NewBias(Schedule{Start: 0}, off)
	off[0] = 99
	if got := b.Apply(0, mat.VecOf(0)); !got.Equal(mat.VecOf(1), 0) {
		t.Errorf("bias aliased caller's offset: %v", got)
	}
}

func TestBiasDimensionMismatchPanics(t *testing.T) {
	b := NewBias(Schedule{Start: 0}, mat.VecOf(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Apply(0, mat.VecOf(1, 2))
}

func TestDelayServesStaleData(t *testing.T) {
	d := NewDelay(Schedule{Start: 3, End: 6}, 2)
	// Feed measurements 0,1,2,3,4,5 at steps 0..5.
	var got []float64
	for t0 := 0; t0 < 6; t0++ {
		out := d.Apply(t0, mat.VecOf(float64(t0)))
		got = append(got, out[0])
	}
	// Steps 0-2 clean; steps 3-5 lagged by 2: 1, 2, 3.
	want := []float64{0, 1, 2, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d: got %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestDelayClampsAtOldest(t *testing.T) {
	d := NewDelay(Schedule{Start: 0, End: 3}, 10)
	out := d.Apply(0, mat.VecOf(7))
	if out[0] != 7 {
		t.Errorf("clamped delay = %v, want oldest sample 7", out[0])
	}
}

func TestDelayReset(t *testing.T) {
	d := NewDelay(Schedule{Start: 1, End: 10}, 1)
	d.Apply(0, mat.VecOf(100))
	d.Reset()
	// After reset the history starts fresh; step 0 is clean anyway, step 1
	// should serve the new step-0 value, not the stale pre-reset one.
	d.Apply(0, mat.VecOf(5))
	if out := d.Apply(1, mat.VecOf(6)); out[0] != 5 {
		t.Errorf("post-reset delayed value = %v, want 5", out[0])
	}
}

func TestDelayNonPositiveLagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDelay(Schedule{}, 0)
}

func TestReplayReplaysRecording(t *testing.T) {
	r := NewReplay(Schedule{Start: 5, End: 11}, 1, 3) // record steps 1,2,3
	var got []float64
	for t0 := 0; t0 < 11; t0++ {
		out := r.Apply(t0, mat.VecOf(float64(t0)*10))
		got = append(got, out[0])
	}
	// Steps 0-4 clean (0..40); steps 5-10 replay recording [10,20,30] looping.
	want := []float64{0, 10, 20, 30, 40, 10, 20, 30, 10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d: got %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestReplayEmptyRecordingPassesThrough(t *testing.T) {
	// Recording window hasn't produced anything (Apply never called during
	// it) — replay degrades to pass-through instead of panicking.
	r := NewReplay(Schedule{Start: 5, End: 8}, 0, 2)
	if out := r.Apply(6, mat.VecOf(9)); out[0] != 9 {
		t.Errorf("empty-recording replay = %v", out[0])
	}
}

func TestReplayValidation(t *testing.T) {
	cases := []func(){
		func() { NewReplay(Schedule{Start: 5}, 0, 0) },  // non-positive n
		func() { NewReplay(Schedule{Start: 5}, -1, 2) }, // negative start
		func() { NewReplay(Schedule{Start: 5}, 4, 3) },  // overlaps attack
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestReplayReset(t *testing.T) {
	r := NewReplay(Schedule{Start: 3, End: 6}, 0, 2)
	r.Apply(0, mat.VecOf(1))
	r.Apply(1, mat.VecOf(2))
	r.Reset()
	// Fresh run: record again.
	r.Apply(0, mat.VecOf(7))
	r.Apply(1, mat.VecOf(8))
	r.Apply(2, mat.VecOf(9))
	if out := r.Apply(3, mat.VecOf(0)); out[0] != 7 {
		t.Errorf("post-reset replay = %v, want 7", out[0])
	}
}

func TestAttacksImplementInterface(t *testing.T) {
	for _, a := range []Attack{None{}, NewBias(Schedule{}, mat.VecOf(1)),
		NewDelay(Schedule{Start: 1}, 1), NewReplay(Schedule{Start: 5}, 0, 2)} {
		if a.Name() == "" {
			t.Errorf("%T has empty name", a)
		}
	}
}
