// Package attack implements the three sensor attack scenarios of the
// evaluation (Sec. 6.1.1):
//
//   - Bias: sensor data replaced by the clean value plus an arbitrary offset.
//   - Delay: the controller receives stale measurements, so the state
//     estimate is not updated in time.
//   - Replay: sensor data replaced by previously recorded values.
//
// An Attack is stateful (delay and replay must observe the clean stream to
// build their buffers) and is driven once per control step by the simulator.
package attack

import (
	"fmt"

	"repro/internal/mat"
)

// Attack corrupts the sensor measurement stream. Apply must be called
// exactly once per control step, in order, with the clean measurement; it
// returns the measurement the controller actually sees.
type Attack interface {
	// Name identifies the attack scenario ("bias", "delay", "replay", ...).
	Name() string
	// Apply observes the clean measurement for step t and returns the
	// (possibly corrupted) measurement delivered to the controller.
	Apply(t int, clean mat.Vec) mat.Vec
	// Active reports whether the attack corrupts step t.
	Active(t int) bool
	// Reset clears internal buffers so the attack can drive a fresh run.
	Reset()
}

// Schedule is the activation window [Start, End) in control steps.
// End <= 0 means "until the end of the run".
type Schedule struct {
	Start, End int
}

// Active reports whether step t falls inside the schedule.
func (s Schedule) Active(t int) bool {
	return t >= s.Start && (s.End <= 0 || t < s.End)
}

// None is the absence of an attack; it passes measurements through
// untouched. Useful for false-positive (clean-run) campaigns.
type None struct{}

// Name returns "none".
func (None) Name() string { return "none" }

// Apply returns the clean measurement unchanged.
func (None) Apply(_ int, clean mat.Vec) mat.Vec { return clean }

// Active always reports false.
func (None) Active(int) bool { return false }

// Reset is a no-op.
func (None) Reset() {}

// Bias adds a fixed offset to every measurement inside the schedule.
type Bias struct {
	Schedule Schedule
	Offset   mat.Vec
}

// NewBias returns a bias attack adding offset during sched.
func NewBias(sched Schedule, offset mat.Vec) *Bias {
	return &Bias{Schedule: sched, Offset: offset.Clone()}
}

// Name returns "bias".
func (b *Bias) Name() string { return "bias" }

// Active reports whether the bias is applied at step t.
func (b *Bias) Active(t int) bool { return b.Schedule.Active(t) }

// Apply adds the offset inside the schedule.
func (b *Bias) Apply(t int, clean mat.Vec) mat.Vec {
	if !b.Active(t) {
		return clean
	}
	if len(clean) != len(b.Offset) {
		panic(fmt.Sprintf("attack: bias offset dimension %d vs measurement %d", len(b.Offset), len(clean)))
	}
	return clean.Add(b.Offset)
}

// Reset is a no-op for the stateless bias attack.
func (b *Bias) Reset() {}

// Delay withholds fresh measurements: inside the schedule the controller
// receives the measurement from Lag steps earlier (clamped to the oldest
// observed sample). This models a sensor-availability (DoS-style) attack.
type Delay struct {
	Schedule Schedule
	Lag      int

	history []mat.Vec
}

// NewDelay returns a delay attack with the given lag in control steps.
func NewDelay(sched Schedule, lag int) *Delay {
	if lag <= 0 {
		panic(fmt.Sprintf("attack: delay lag must be positive, got %d", lag))
	}
	return &Delay{Schedule: sched, Lag: lag}
}

// Name returns "delay".
func (d *Delay) Name() string { return "delay" }

// Active reports whether stale data is served at step t.
func (d *Delay) Active(t int) bool { return d.Schedule.Active(t) }

// Apply records the clean measurement and, inside the schedule, serves the
// measurement observed Lag steps ago.
func (d *Delay) Apply(t int, clean mat.Vec) mat.Vec {
	d.history = append(d.history, clean.Clone())
	if !d.Active(t) {
		return clean
	}
	idx := len(d.history) - 1 - d.Lag
	if idx < 0 {
		idx = 0
	}
	return d.history[idx].Clone()
}

// Reset clears the measurement history.
func (d *Delay) Reset() { d.history = nil }

// Replay records clean measurements during [RecordStart, RecordStart+N) and,
// inside the attack schedule, replaces measurements with the recording,
// looping if the attack outlasts it.
type Replay struct {
	Schedule    Schedule
	RecordStart int
	N           int

	recorded []mat.Vec
}

// NewReplay returns a replay attack that records n steps starting at
// recordStart and replays them during sched.
func NewReplay(sched Schedule, recordStart, n int) *Replay {
	if n <= 0 {
		panic(fmt.Sprintf("attack: replay length must be positive, got %d", n))
	}
	if recordStart < 0 {
		panic(fmt.Sprintf("attack: negative record start %d", recordStart))
	}
	if recordStart+n > sched.Start {
		panic(fmt.Sprintf("attack: recording window [%d,%d) overlaps attack start %d",
			recordStart, recordStart+n, sched.Start))
	}
	return &Replay{Schedule: sched, RecordStart: recordStart, N: n}
}

// Name returns "replay".
func (r *Replay) Name() string { return "replay" }

// Active reports whether recorded data is served at step t.
func (r *Replay) Active(t int) bool { return r.Schedule.Active(t) }

// Apply records during the recording window and replays during the attack.
func (r *Replay) Apply(t int, clean mat.Vec) mat.Vec {
	if t >= r.RecordStart && t < r.RecordStart+r.N {
		r.recorded = append(r.recorded, clean.Clone())
	}
	if !r.Active(t) || len(r.recorded) == 0 {
		return clean
	}
	return r.recorded[(t-r.Schedule.Start)%len(r.recorded)].Clone()
}

// Reset clears the recording.
func (r *Replay) Reset() { r.recorded = nil }
