package sim

import (
	"runtime"
	"sync"

	"repro/internal/attack"
)

// CampaignParallel is Campaign distributed over a worker pool. Because
// attacks are stateful (delay and replay keep buffers), each run needs its
// own instance: makeAttack is called once per run (nil for clean runs).
// Results are deterministic and identical to the serial Campaign for the
// same base config — runs are independent and seeded individually.
func CampaignParallel(base Config, n, workers int, makeAttack func() (attack.Attack, error)) (CampaignResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if makeAttack != nil {
			att, err := makeAttack()
			if err != nil {
				return CampaignResult{}, err
			}
			base.Attack = att
		}
		return Campaign(base, n)
	}

	type runOut struct {
		met         Metrics
		attackStart int
		err         error
	}
	outs := make([]runOut, n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cfg := base
				cfg.Seed = base.Seed + uint64(i)*7919
				if makeAttack != nil {
					att, err := makeAttack()
					if err != nil {
						outs[i] = runOut{err: err}
						continue
					}
					cfg.Attack = att
				} else {
					cfg.Attack = nil
				}
				tr, err := Run(cfg)
				if err != nil {
					outs[i] = runOut{err: err}
					continue
				}
				outs[i] = runOut{met: Analyze(tr), attackStart: tr.AttackStart}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := CampaignResult{Runs: n}
	totalDelay, detected := 0, 0
	for _, o := range outs {
		if o.err != nil {
			return CampaignResult{}, o.err
		}
		if o.met.FPRate > FPRateThreshold {
			res.FPExperiments++
		}
		if o.attackStart >= 0 {
			base.Observer.ObserveRun(o.met.DetectionDelay, o.met.Detected, o.met.DeadlineMissed)
			if !o.met.Detected {
				res.FNExperiments++
			} else {
				totalDelay += o.met.DetectionDelay
				detected++
			}
			if o.met.DeadlineMissed {
				res.DeadlineMisses++
			}
		}
	}
	if detected > 0 {
		res.MeanDelay = float64(totalDelay) / float64(detected)
	} else {
		res.MeanDelay = -1
	}
	return res, nil
}
