package sim

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/models"
)

// Calibration regression tests: the evaluation's qualitative results rest
// on each plant's closed loop behaving in a specific regime (tracks its
// reference, operates near the safe boundary, keeps its clean residuals
// below τ on average). These tests pin that regime down so a model edit
// that silently breaks an experiment fails here first.

func TestCalibrationCleanLoopsTrackReferences(t *testing.T) {
	for _, m := range append(models.All(), models.TestbedCar()) {
		tr, err := Run(Config{Model: m, Strategy: Adaptive, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		// Steady-state tracking: average |state − ref| over the last 50
		// steps must be within 20% of the reference span (loose enough for
		// the deliberately-oscillatory aircraft loop).
		last := tr.Records[len(tr.Records)-50:]
		sum := 0.0
		for _, r := range last {
			sum += math.Abs(r.TrueState[m.CtrlDim] - r.Ref)
		}
		avg := sum / float64(len(last))
		span := math.Abs(last[0].Ref)
		if span == 0 {
			span = 1
		}
		if avg > 0.2*span {
			t.Errorf("%s: steady tracking error %.3g vs reference %.3g", m.Name, avg, span)
		}
	}
}

func TestCalibrationCleanRunsStaySafeAfterTransient(t *testing.T) {
	// The bias scenarios rely on the CLEAN loop staying inside the safe set
	// once settled (transient overshoot before the attack window is
	// tolerated — vehicle turning grazes the boundary by design).
	for _, m := range append(models.All(), models.TestbedCar()) {
		tr, err := Run(Config{Model: m, Strategy: FixedWindow, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		settled := m.Attack.BiasStart
		// The operating points deliberately hug the boundary, so rare
		// noise-driven grazes are tolerated as long as the excursion depth
		// stays within 2% of the controlled dimension's safe span.
		iv := m.Safe.Interval(m.CtrlDim)
		tol := 0.02 * iv.Width()
		if math.IsInf(tol, 1) {
			tol = 0
		}
		for _, r := range tr.Records[settled:] {
			v := r.TrueState[m.CtrlDim]
			if v > iv.Hi+tol || v < iv.Lo-tol {
				t.Errorf("%s: clean run left the safe band at step %d (state %.4g)", m.Name, r.Step, v)
				break
			}
		}
	}
}

func TestCalibrationCleanResidualFloorBelowTau(t *testing.T) {
	// τ must sit above the clean average residual in every dimension, or
	// the fixed baseline would false-alarm constantly and Table 2's
	// contrast would collapse.
	for _, m := range append(models.All(), models.TestbedCar()) {
		tr, err := Run(Config{Model: m, Strategy: FixedWindow, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		n := m.Sys.StateDim()
		sums := make([]float64, n)
		count := 0
		for _, r := range tr.Records[1:] {
			for d := 0; d < n; d++ {
				sums[d] += r.Residual[d]
			}
			count++
		}
		for d := 0; d < n; d++ {
			if mean := sums[d] / float64(count); mean >= m.Tau[d] {
				t.Errorf("%s: clean residual mean %.4g >= tau %.4g in dim %d",
					m.Name, mean, m.Tau[d], d)
			}
		}
	}
}

func TestCalibrationDeadlinesTightenNearBoundary(t *testing.T) {
	// The adaptive mechanism only matters if the operating point actually
	// produces deadlines below w_m — check the post-transient window sizes.
	for _, m := range models.All() {
		tr, err := Run(Config{Model: m, Strategy: Adaptive, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		minWin := m.MaxWindow
		for _, r := range tr.Records[m.Attack.BiasStart:] {
			if r.Window < minWin {
				minWin = r.Window
			}
		}
		if minWin >= m.MaxWindow {
			t.Errorf("%s: adaptive window never tightened below w_m = %d", m.Name, m.MaxWindow)
		}
	}
}

func TestExtendedScenariosIntegrate(t *testing.T) {
	// freeze / ramp / noise must run end-to-end on every plant and carry
	// correct onset metadata.
	for _, m := range models.All() {
		for _, name := range []string{"freeze", "ramp", "noise"} {
			att, err := BuildAttack(m, name)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, name, err)
			}
			tr, err := Run(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 6, Steps: m.Attack.BiasStart + 60})
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, name, err)
			}
			if tr.AttackStart < 0 {
				t.Errorf("%s/%s: onset metadata missing", m.Name, name)
			}
		}
	}
}

func TestMaskedAndSequenceIntegrate(t *testing.T) {
	m := models.SeriesRLC()
	bias, _ := BuildAttack(m, "bias")
	delay, _ := BuildAttack(m, "delay")
	seq := attack.NewSequence(bias, delay)
	tr, err := Run(Config{Model: m, Attack: seq, Strategy: Adaptive, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.AttackStart != m.Attack.DelayStart { // delay starts earlier
		t.Errorf("sequence onset = %d, want %d", tr.AttackStart, m.Attack.DelayStart)
	}
	met := Analyze(tr)
	if !met.Detected {
		t.Error("combined attack undetected")
	}
}
