package sim

import (
	"errors"
	"testing"

	"repro/internal/attack"
	"repro/internal/models"
	"repro/internal/obs"
)

// TestCampaignParallelMatchesSerial pins the parallel campaign runner to
// the serial one bit-for-bit across plants and strategies: same seeds,
// same attacks, same workers-irrelevant aggregate. Any scheduling
// dependence in the per-run pipeline would show up here as a result diff.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		model    func() *models.Model
		strategy Strategy
	}{
		{models.VehicleTurning, Adaptive},
		{models.VehicleTurning, FixedWindow},
		{models.AircraftPitch, Adaptive},
		{models.DCMotorPosition, FixedWindow},
	}
	for _, tc := range cases {
		m := tc.model()
		t.Run(m.Name+"/"+tc.strategy.String(), func(t *testing.T) {
			att, err := BuildAttack(m, "bias")
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Campaign(Config{Model: m, Attack: att, Strategy: tc.strategy, Seed: 77}, 8)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := CampaignParallel(
				Config{Model: m, Strategy: tc.strategy, Seed: 77}, 8, 4,
				func() (attack.Attack, error) { return BuildAttack(m, "bias") },
			)
			if err != nil {
				t.Fatal(err)
			}
			if serial != parallel {
				t.Errorf("serial %+v != parallel %+v", serial, parallel)
			}
		})
	}
}

func TestCampaignParallelCleanRuns(t *testing.T) {
	m := models.SeriesRLC()
	res, err := CampaignParallel(Config{Model: m, Strategy: FixedWindow, Seed: 3, Steps: 60}, 6, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 6 || res.FNExperiments != 0 || res.DeadlineMisses != 0 {
		t.Errorf("clean parallel campaign: %+v", res)
	}
	if res.MeanDelay != -1 {
		t.Errorf("clean campaign mean delay = %v, want -1", res.MeanDelay)
	}
}

func TestCampaignParallelSingleWorkerFallsBackToSerial(t *testing.T) {
	m := models.VehicleTurning()
	res, err := CampaignParallel(
		Config{Model: m, Strategy: Adaptive, Seed: 5, Steps: 100}, 3, 1,
		func() (attack.Attack, error) { return BuildAttack(m, "bias") },
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 {
		t.Errorf("runs = %d", res.Runs)
	}
}

func TestCampaignParallelPropagatesAttackError(t *testing.T) {
	m := models.VehicleTurning()
	wantErr := errors.New("boom")
	_, err := CampaignParallel(
		Config{Model: m, Strategy: Adaptive, Seed: 5, Steps: 50}, 4, 2,
		func() (attack.Attack, error) { return nil, wantErr },
	)
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
}

func TestCampaignParallelSharedObserver(t *testing.T) {
	// All workers funnel telemetry into one Observer: atomic instruments
	// and the mutex-guarded ring sink. Run under -race (make check / CI)
	// this doubles as the concurrency-safety proof for the shared path;
	// the accounting below proves no event was lost on the way.
	m := models.VehicleTurning()
	sink := obs.NewRingSink(64)
	observer := obs.NewObserver(nil, sink)
	res, err := CampaignParallel(
		Config{Model: m, Strategy: Adaptive, Seed: 77, Observer: observer}, 12, 4,
		func() (attack.Attack, error) { return BuildAttack(m, "bias") },
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 12 {
		t.Fatalf("runs = %d, want 12", res.Runs)
	}

	reg := observer.Registry()
	steps := reg.Counter(obs.MetricSteps, "").Value()
	if steps == 0 {
		t.Fatal("shared observer saw no steps")
	}
	// Ring-sink conservation: every counted step was emitted, and every
	// emitted event is either retained or accounted as dropped.
	if got := int64(len(sink.Events())) + sink.Dropped(); got != steps {
		t.Errorf("sink retained+dropped = %d, steps counter = %d", got, steps)
	}
	runs := reg.Counter(obs.MetricRuns, "").Value()
	detected := reg.Counter(obs.MetricRunsDetected, "").Value()
	if runs != 12 {
		t.Errorf("observer runs counter = %d, want 12", runs)
	}
	if want := 12 - int64(res.FNExperiments); detected != want {
		t.Errorf("observer detected counter = %d, want %d", detected, want)
	}
}
