package sim

import (
	"errors"
	"testing"

	"repro/internal/attack"
	"repro/internal/models"
)

func TestCampaignParallelMatchesSerial(t *testing.T) {
	m := models.VehicleTurning()
	att, _ := BuildAttack(m, "bias")
	serial, err := Campaign(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 77}, 8)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CampaignParallel(
		Config{Model: m, Strategy: Adaptive, Seed: 77}, 8, 4,
		func() (attack.Attack, error) { return BuildAttack(m, "bias") },
	)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("serial %+v != parallel %+v", serial, parallel)
	}
}

func TestCampaignParallelCleanRuns(t *testing.T) {
	m := models.SeriesRLC()
	res, err := CampaignParallel(Config{Model: m, Strategy: FixedWindow, Seed: 3, Steps: 60}, 6, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 6 || res.FNExperiments != 0 || res.DeadlineMisses != 0 {
		t.Errorf("clean parallel campaign: %+v", res)
	}
	if res.MeanDelay != -1 {
		t.Errorf("clean campaign mean delay = %v, want -1", res.MeanDelay)
	}
}

func TestCampaignParallelSingleWorkerFallsBackToSerial(t *testing.T) {
	m := models.VehicleTurning()
	res, err := CampaignParallel(
		Config{Model: m, Strategy: Adaptive, Seed: 5, Steps: 100}, 3, 1,
		func() (attack.Attack, error) { return BuildAttack(m, "bias") },
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 {
		t.Errorf("runs = %d", res.Runs)
	}
}

func TestCampaignParallelPropagatesAttackError(t *testing.T) {
	m := models.VehicleTurning()
	wantErr := errors.New("boom")
	_, err := CampaignParallel(
		Config{Model: m, Strategy: Adaptive, Seed: 5, Steps: 50}, 4, 2,
		func() (attack.Attack, error) { return nil, wantErr },
	)
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
}
