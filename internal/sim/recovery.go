package sim

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/recovery"
)

// RecoveryOutcome summarizes a run where detection hands off to the
// recovery controller of internal/recovery (the paper's companion works
// [13, 14]): on the first alarm the loop abandons the compromised sensors,
// dead-reckons the physical state from the last trusted estimate plus the
// recorded inputs, and steers back to the pre-attack reference with LQR.
type RecoveryOutcome struct {
	AttackStart int
	AlarmStep   int // -1 = never alarmed (no recovery engaged)
	// EverUnsafe reports whether the true state left the safe set at any
	// point during the run.
	EverUnsafe bool
	// FinalSafe reports whether the run ended inside the safe set.
	FinalSafe bool
	// FinalError is the distance of the controlled dimension from the
	// recovery target at the end of the run.
	FinalError float64
}

// RunWithRecovery executes a closed-loop run that switches from PID-on-
// estimates to sensor-free LQR recovery at the first alarm. The recovery
// target holds the controlled dimension at its pre-attack reference.
func RunWithRecovery(cfg Config) (*RecoveryOutcome, error) {
	m := cfg.Model
	det, err := Detector(cfg)
	if err != nil {
		return nil, err
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = m.RunLength
	}
	att := cfg.Attack
	if att == nil {
		att = attack.None{}
	} else {
		att.Reset()
	}

	sys := m.Sys
	procNoise := noise.NewBall(cfg.Seed*2+1, sys.StateDim(), m.Eps)
	sensNoise := noise.NewUniformBox(cfg.Seed*2+2, m.SensorNoise)
	pid := m.Controller()
	uLo, uHi := m.U.Lo(), m.U.Hi()

	// LQR design for the recovery phase. The cost weights the controlled
	// dimension heavily and the inputs mildly; enough for all six plants.
	q := mat.NewDense(sys.StateDim(), sys.StateDim())
	for i := 0; i < sys.StateDim(); i++ {
		q.Set(i, i, 0.01)
	}
	q.Set(m.CtrlDim, m.CtrlDim, 1)
	r := mat.NewDense(sys.InputDim(), sys.InputDim())
	for i := 0; i < sys.InputDim(); i++ {
		r.Set(i, i, 0.1)
	}
	lqr, err := recovery.InfiniteHorizonLQR(sys.A, sys.B, q, r, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("sim: recovery LQR design: %w", err)
	}

	out := &RecoveryOutcome{AttackStart: Onset(att), AlarmStep: -1}

	x := m.X0.Clone()
	u := mat.NewVec(sys.InputDim())
	var inputLog []mat.Vec
	var recoverer *recovery.Controller

	for t := 0; t < steps; t++ {
		if !m.Safe.Contains(x) {
			out.EverUnsafe = true
		}

		if recoverer != nil {
			// Sensor-free recovery phase.
			u = recoverer.Step()
		} else {
			measured := x.Add(sensNoise.Sample(t))
			estimate := att.Apply(t, measured)
			dec, err := det.Step(estimate, u)
			if err != nil {
				return out, fmt.Errorf("sim: step %d: %w", t, err)
			}

			if dec.Alarmed() && out.AttackStart >= 0 && t >= out.AttackStart {
				out.AlarmStep = t
				// Hand off: trusted estimate from just outside the window,
				// then catch up over the inputs applied since.
				trusted, ok := det.Log().TrustedEstimate(dec.Window)
				if ok {
					// The logger hands out a view into its ring storage;
					// the recovery controller outlives the entry's
					// retention, so take a copy.
					trusted = trusted.Clone()
				} else {
					trusted = estimate.Clone()
				}
				trustedStep := t - dec.Window - 1
				if trustedStep < 0 {
					trustedStep = 0
				}
				var recorded []mat.Vec
				if trustedStep < len(inputLog) {
					recorded = inputLog[trustedStep:]
				}
				target := mat.NewVec(sys.StateDim())
				target[m.CtrlDim] = m.Ref.At(out.AttackStart - 1)
				recoverer, err = recovery.NewController(sys, lqr, trusted, recorded, target, m.U)
				if err != nil {
					return nil, err
				}
				u = recoverer.Step()
			} else {
				ref := m.Ref.At(t)
				raw := pid.UpdateClamped(ref-estimate[m.CtrlDim], uLo[m.InputIdx], uHi[m.InputIdx])
				u = mat.NewVec(sys.InputDim())
				u[m.InputIdx] = raw
			}
		}

		inputLog = append(inputLog, u.Clone())
		x = sys.Step(x, u, procNoise.Sample(t))
	}

	out.FinalSafe = m.Safe.Contains(x)
	targetVal := m.Ref.At(maxInt(out.AttackStart-1, 0))
	diff := x[m.CtrlDim] - targetVal
	if diff < 0 {
		diff = -diff
	}
	out.FinalError = diff
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
