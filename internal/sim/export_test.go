package sim

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"repro/internal/models"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	m := models.SeriesRLC()
	att, _ := BuildAttack(m, "bias")
	tr, err := Run(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 4, Steps: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 51 { // header + 50 steps
		t.Fatalf("rows = %d", len(rows))
	}
	header := rows[0]
	// 8 meta columns + 2 state + 2 est + 2 residual + 1 input.
	if len(header) != 8+2+2+2+1 {
		t.Fatalf("columns = %d: %v", len(header), header)
	}
	if header[0] != "step" || header[8] != "x0" {
		t.Errorf("header layout wrong: %v", header)
	}
	// Spot-check a data row against the trace.
	rec := tr.Records[10]
	row := rows[11]
	if row[0] != "10" {
		t.Errorf("step column = %q", row[0])
	}
	x0, err := strconv.ParseFloat(row[8], 64)
	if err != nil || x0 != rec.TrueState[0] {
		t.Errorf("x0 = %q, want %v", row[8], rec.TrueState[0])
	}
	if row[4] != strconv.FormatBool(rec.Alarm) {
		t.Errorf("alarm column = %q", row[4])
	}
}

func TestWriteCSVQuadrotorWideRows(t *testing.T) {
	m := models.Quadrotor()
	tr, err := Run(Config{Model: m, Strategy: FixedWindow, Seed: 2, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, "x11") || !strings.Contains(first, "u3") {
		t.Errorf("quadrotor header missing wide columns: %s", first)
	}
}
