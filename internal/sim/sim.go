// Package sim runs the closed-loop experiments of Sec. 6: a plant from
// internal/models under PID control, sensor attacks injected into the
// measurement stream, bounded process and measurement noise, and one of the
// detection strategies (adaptive, fixed-window, CUSUM) watching the
// residual stream produced by the Data Logger.
//
// Per control step the loop is exactly Fig. 1:
//
//  1. sensors measure the true state (plus bounded noise),
//  2. the attack corrupts the measurement into the state estimate x̂_t,
//  3. the detection system logs the residual, estimates the deadline, and
//     runs its (possibly re-sized) window check,
//  4. the PID computes the next input from x̂_t, saturated to U,
//  5. the plant advances under the true dynamics plus uncertainty.
package sim

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/obs"
)

// Strategy selects the detector under test.
type Strategy int

// Available detection strategies.
const (
	// Adaptive is the paper's contribution: window re-sized each step to
	// the reachability deadline.
	Adaptive Strategy = iota
	// FixedWindow is the Table 2 / Fig. 8 baseline: a constant window.
	FixedWindow
	// CUSUMBaseline is the classic cumulative-sum detector (ablation).
	CUSUMBaseline
	// EWMABaseline is the exponentially-weighted moving-average detector
	// (ablation).
	EWMABaseline
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Adaptive:
		return "adaptive"
	case FixedWindow:
		return "fixed"
	case CUSUMBaseline:
		return "cusum"
	case EWMABaseline:
		return "ewma"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config describes one experiment run.
type Config struct {
	Model    *models.Model
	Attack   attack.Attack // nil means no attack (clean run)
	Strategy Strategy
	// FixedWin is the window size for FixedWindow runs; 0 uses the model's
	// MaxWindow (the natural "usability-first" baseline) and a negative
	// value selects the degenerate single-sample window (paper's size 0).
	FixedWin int
	// Steps overrides the model's RunLength when > 0.
	Steps int
	// Seed drives all stochastic inputs (process noise, sensor noise).
	Seed uint64
	// DisableComplementary turns off the complementary detection pass
	// (Sec. 4.2.1) for the ablation study.
	DisableComplementary bool
	// Observer receives per-step telemetry from the detection system and
	// per-run aggregates from Campaign. Nil disables observability. The
	// observer's instruments are atomic, so one observer may be shared
	// across parallel campaign workers.
	Observer *obs.Observer
}

// StepRecord captures one control step of a run.
type StepRecord struct {
	Step          int
	TrueState     mat.Vec
	Estimate      mat.Vec
	Residual      mat.Vec
	Ref           float64
	Input         mat.Vec
	Window        int
	Deadline      int
	Alarm         bool
	Complementary bool
	AttackActive  bool
	Unsafe        bool // true state outside the safe set
}

// Trace is a full run: the per-step records plus run metadata.
type Trace struct {
	Model       *models.Model
	Strategy    Strategy
	AttackName  string
	AttackStart int // -1 when no attack
	Records     []StepRecord
}

// Detector constructs the detection system for a config; exported so
// examples and benches can drive core.System directly with model settings.
func Detector(cfg Config) (*core.System, error) {
	m := cfg.Model
	if m == nil {
		return nil, fmt.Errorf("sim: nil model")
	}
	cc := core.Config{
		Sys:                  m.Sys,
		Inputs:               m.U,
		Eps:                  m.Eps,
		Safe:                 m.Safe,
		Tau:                  m.Tau,
		MaxWindow:            m.MaxWindow,
		InitRadius:           m.EstimatorRadius(),
		DisableComplementary: cfg.DisableComplementary,
		Observer:             cfg.Observer,
	}
	switch cfg.Strategy {
	case Adaptive:
		return core.New(cc)
	case FixedWindow:
		return core.NewFixed(cc, cfg.FixedWin)
	case CUSUMBaseline:
		return core.NewCUSUM(cc)
	case EWMABaseline:
		return core.NewEWMA(cc)
	default:
		return nil, fmt.Errorf("sim: unknown strategy %v", cfg.Strategy)
	}
}

// Run executes one closed-loop experiment.
func Run(cfg Config) (*Trace, error) {
	m := cfg.Model
	det, err := Detector(cfg)
	if err != nil {
		return nil, err
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = m.RunLength
	}

	att := cfg.Attack
	attackStart := -1
	if att == nil {
		att = attack.None{}
	} else {
		att.Reset()
		attackStart = Onset(att)
	}

	sys := m.Sys
	procNoise := noise.NewBall(cfg.Seed*2+1, sys.StateDim(), m.Eps)
	sensNoise := noise.NewUniformBox(cfg.Seed*2+2, m.SensorNoise)
	pid := m.Controller()
	uLo, uHi := m.U.Lo(), m.U.Hi()

	x := m.X0.Clone()
	u := mat.NewVec(sys.InputDim())

	trace := &Trace{
		Model:       m,
		Strategy:    cfg.Strategy,
		AttackName:  att.Name(),
		AttackStart: attackStart,
		Records:     make([]StepRecord, 0, steps),
	}

	for t := 0; t < steps; t++ {
		measured := x.Add(sensNoise.Sample(t))
		estimate := att.Apply(t, measured)

		dec, err := det.Step(estimate, u)
		if err != nil {
			return nil, fmt.Errorf("sim: step %d: %w", t, err)
		}
		entry, _ := det.Log().Entry(t)

		ref := m.Ref.At(t)
		raw := pid.UpdateClamped(ref-estimate[m.CtrlDim], uLo[m.InputIdx], uHi[m.InputIdx])
		u = mat.NewVec(sys.InputDim())
		u[m.InputIdx] = raw

		trace.Records = append(trace.Records, StepRecord{
			Step:          t,
			TrueState:     x.Clone(),
			Estimate:      estimate.Clone(),
			Residual:      entry.Residual.Clone(),
			Ref:           ref,
			Input:         u.Clone(),
			Window:        dec.Window,
			Deadline:      dec.Deadline,
			Alarm:         dec.Alarm,
			Complementary: dec.Complementary,
			AttackActive:  att.Active(t),
			Unsafe:        !m.Safe.Contains(x),
		})

		x = sys.Step(x, u, procNoise.Sample(t))
	}
	return trace, nil
}

// Onset returns the first step an attack corrupts, or -1 for attacks
// without a schedule (attack.None).
func Onset(a attack.Attack) int {
	switch v := a.(type) {
	case *attack.Bias:
		return v.Schedule.Start
	case *attack.Delay:
		return v.Schedule.Start
	case *attack.Replay:
		return v.Schedule.Start
	case *attack.Freeze:
		return v.Schedule.Start
	case *attack.Ramp:
		return v.Schedule.Start
	case *attack.NoiseInjection:
		return v.Schedule.Start
	case *attack.Stealthy:
		return v.Schedule.Start
	case *attack.Masked:
		return Onset(v.Inner)
	case *attack.Sequence:
		return v.Onset()
	default:
		return -1
	}
}

// BuildAttack instantiates one of the model's default attack scenarios by
// name. The paper's three scenarios are "bias", "delay", and "replay"
// (Sec. 6.1.1); the extended threat-model scenarios "freeze", "ramp", and
// "noise" (Sec. 2) derive their parameters from the same defaults. "none"
// returns the pass-through non-attack.
func BuildAttack(m *models.Model, name string) (attack.Attack, error) {
	d := m.Attack
	sched := func(start int) attack.Schedule {
		end := 0
		if d.Duration > 0 {
			end = start + d.Duration
		}
		return attack.Schedule{Start: start, End: end}
	}
	switch name {
	case "bias":
		return attack.NewBias(sched(d.BiasStart), d.Bias), nil
	case "delay":
		return attack.NewDelay(sched(d.DelayStart), d.DelayLag), nil
	case "replay":
		return attack.NewReplay(sched(d.ReplayStart), d.RecordStart, d.ReplayLen), nil
	case "freeze":
		// Freezing measurements across the reference transient has the same
		// availability effect as a long delay.
		return attack.NewFreeze(sched(d.DelayStart), nil), nil
	case "ramp":
		// Stealthy variant of the bias scenario: same final offset scaled
		// up, reached gradually so there is no onset discontinuity.
		return attack.NewRamp(sched(d.BiasStart), d.Bias.Scale(1.5), 80), nil
	case "noise":
		// Transduction-style attack: raise the noise floor well above the
		// plant's nominal sensor noise.
		return attack.NewNoiseInjection(sched(d.BiasStart), m.SensorNoise.Scale(8), 0xA77AC4), nil
	case "none":
		return attack.None{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown attack scenario %q", name)
	}
}
