package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV streams a trace as CSV: one row per control step with the true
// state, the (possibly attacked) estimate, the residual, and the detector's
// decision. State vectors are expanded into one column per dimension
// (x0..x{n−1}, est0.., z0..).
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	n := tr.Model.Sys.StateDim()
	m := tr.Model.Sys.InputDim()

	header := []string{"step", "ref", "window", "deadline", "alarm", "complementary", "attack_active", "unsafe"}
	for i := 0; i < n; i++ {
		header = append(header, fmt.Sprintf("x%d", i))
	}
	for i := 0; i < n; i++ {
		header = append(header, fmt.Sprintf("est%d", i))
	}
	for i := 0; i < n; i++ {
		header = append(header, fmt.Sprintf("z%d", i))
	}
	for i := 0; i < m; i++ {
		header = append(header, fmt.Sprintf("u%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	row := make([]string, 0, len(header))
	for _, r := range tr.Records {
		row = row[:0]
		row = append(row,
			strconv.Itoa(r.Step),
			formatFloat(r.Ref),
			strconv.Itoa(r.Window),
			strconv.Itoa(r.Deadline),
			strconv.FormatBool(r.Alarm),
			strconv.FormatBool(r.Complementary),
			strconv.FormatBool(r.AttackActive),
			strconv.FormatBool(r.Unsafe),
		)
		for _, v := range r.TrueState {
			row = append(row, formatFloat(v))
		}
		for _, v := range r.Estimate {
			row = append(row, formatFloat(v))
		}
		for _, v := range r.Residual {
			row = append(row, formatFloat(v))
		}
		for _, v := range r.Input {
			row = append(row, formatFloat(v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat uses the shortest representation that round-trips exactly.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
