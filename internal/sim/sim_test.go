package sim

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/mat"
	"repro/internal/models"
)

func TestRunCleanVehicleTracksReference(t *testing.T) {
	m := models.VehicleTurning()
	tr, err := Run(Config{Model: m, Strategy: Adaptive, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != m.RunLength {
		t.Fatalf("trace length %d, want %d", len(tr.Records), m.RunLength)
	}
	last := tr.Records[len(tr.Records)-1]
	if diff := last.TrueState[0] - last.Ref; diff > 0.3 || diff < -0.3 {
		t.Errorf("end state %v far from reference %v", last.TrueState[0], last.Ref)
	}
	if tr.AttackStart != -1 || tr.AttackName != "none" {
		t.Errorf("clean run metadata: %v %q", tr.AttackStart, tr.AttackName)
	}
}

func TestRunNilModelErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestRunUnknownStrategyErrors(t *testing.T) {
	if _, err := Run(Config{Model: models.VehicleTurning(), Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	m := models.SeriesRLC()
	att1, _ := BuildAttack(m, "bias")
	att2, _ := BuildAttack(m, "bias")
	tr1, err := Run(Config{Model: m, Attack: att1, Strategy: Adaptive, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Run(Config{Model: m, Attack: att2, Strategy: Adaptive, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr1.Records {
		if !tr1.Records[i].TrueState.Equal(tr2.Records[i].TrueState, 0) ||
			tr1.Records[i].Alarm != tr2.Records[i].Alarm {
			t.Fatalf("step %d diverged across identical seeds", i)
		}
	}
	tr3, err := Run(Config{Model: m, Attack: att1, Strategy: Adaptive, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range tr1.Records {
		if !tr1.Records[i].TrueState.Equal(tr3.Records[i].TrueState, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestRunStepsOverride(t *testing.T) {
	tr, err := Run(Config{Model: models.VehicleTurning(), Strategy: FixedWindow, Steps: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 50 {
		t.Errorf("trace length %d, want 50", len(tr.Records))
	}
}

func TestBuildAttackScenarios(t *testing.T) {
	m := models.AircraftPitch()
	for _, name := range []string{"bias", "delay", "replay", "none"} {
		att, err := BuildAttack(m, name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if att.Name() != name {
			t.Errorf("attack name = %q, want %q", att.Name(), name)
		}
	}
	if _, err := BuildAttack(m, "emp"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestBuildAttackUsesScenarioOnsets(t *testing.T) {
	m := models.AircraftPitch()
	b, _ := BuildAttack(m, "bias")
	d, _ := BuildAttack(m, "delay")
	r, _ := BuildAttack(m, "replay")
	if Onset(b) != m.Attack.BiasStart || Onset(d) != m.Attack.DelayStart || Onset(r) != m.Attack.ReplayStart {
		t.Errorf("onsets: %d %d %d, want %d %d %d", Onset(b), Onset(d), Onset(r),
			m.Attack.BiasStart, m.Attack.DelayStart, m.Attack.ReplayStart)
	}
	if Onset(attack.None{}) != -1 {
		t.Error("None onset should be -1")
	}
}

func TestAttackedRunFlagsAttackSteps(t *testing.T) {
	m := models.VehicleTurning()
	att, _ := BuildAttack(m, "bias")
	tr, err := Run(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	onset := m.Attack.BiasStart
	if tr.AttackStart != onset {
		t.Fatalf("AttackStart = %d, want %d", tr.AttackStart, onset)
	}
	if tr.Records[onset-1].AttackActive || !tr.Records[onset].AttackActive {
		t.Error("AttackActive flags wrong around onset")
	}
}

func TestAdaptiveDetectsBiasBeforeUnsafe(t *testing.T) {
	// The headline behaviour: for every plant's default bias scenario the
	// adaptive detector fires before the state goes unsafe.
	for _, m := range models.All() {
		att, _ := BuildAttack(m, "bias")
		tr, err := Run(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		met := Analyze(tr)
		if !met.Detected {
			t.Errorf("%s: bias attack undetected", m.Name)
			continue
		}
		if met.DeadlineMissed {
			t.Errorf("%s: adaptive missed the deadline (alarm %d, unsafe %d)",
				m.Name, met.FirstAlarm, met.UnsafeStep)
		}
	}
}

func TestFixedSlowerThanAdaptive(t *testing.T) {
	// Detection-delay ordering, the core Table 2 claim. Compare mean delays
	// over a small campaign for every plant/attack combination.
	for _, m := range models.All() {
		for _, an := range []string{"bias", "delay", "replay"} {
			att, _ := BuildAttack(m, an)
			ra, err := Campaign(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 40}, 5)
			if err != nil {
				t.Fatal(err)
			}
			att2, _ := BuildAttack(m, an)
			rf, err := Campaign(Config{Model: m, Attack: att2, Strategy: FixedWindow, Seed: 40}, 5)
			if err != nil {
				t.Fatal(err)
			}
			// Undetected (≡ infinite delay) is encoded as -1; map to +inf.
			da, df := ra.MeanDelay, rf.MeanDelay
			if da < 0 {
				da = 1e18
			}
			if df < 0 {
				df = 1e18
			}
			if da > df {
				t.Errorf("%s/%s: adaptive mean delay %.1f > fixed %.1f", m.Name, an, ra.MeanDelay, rf.MeanDelay)
			}
		}
	}
}

func TestAnalyzeMetrics(t *testing.T) {
	tr := &Trace{AttackStart: 5, Records: []StepRecord{
		{Step: 0}, {Step: 1, Alarm: true}, {Step: 2}, {Step: 3}, {Step: 4},
		{Step: 5}, {Step: 6}, {Step: 7, Unsafe: true}, {Step: 8, Alarm: true},
	}}
	m := Analyze(tr)
	if m.PreAttackSteps != 5 || m.PreAttackAlarms != 1 {
		t.Errorf("pre-attack: %d/%d", m.PreAttackAlarms, m.PreAttackSteps)
	}
	if m.FPRate != 0.2 {
		t.Errorf("FPRate = %v", m.FPRate)
	}
	if !m.Detected || m.FirstAlarm != 8 || m.DetectionDelay != 3 {
		t.Errorf("detection: %+v", m)
	}
	if m.UnsafeStep != 7 || !m.DeadlineMissed {
		t.Errorf("unsafe entered at 7 before alarm at 8: %+v", m)
	}
}

func TestAnalyzeNoMissWhenAlarmBeforeUnsafe(t *testing.T) {
	tr := &Trace{AttackStart: 1, Records: []StepRecord{
		{Step: 0}, {Step: 1}, {Step: 2, Alarm: true}, {Step: 3, Unsafe: true},
	}}
	m := Analyze(tr)
	if m.DeadlineMissed {
		t.Error("alarm before unsafe should not be a miss")
	}
}

func TestAnalyzeNegligibleAttackNotAMiss(t *testing.T) {
	// Attack never drives the state unsafe and is never detected: per the
	// paper's reading, that is a false negative but not a deadline miss.
	tr := &Trace{AttackStart: 1, Records: []StepRecord{
		{Step: 0}, {Step: 1}, {Step: 2}, {Step: 3},
	}}
	m := Analyze(tr)
	if m.Detected || m.DeadlineMissed {
		t.Errorf("negligible attack metrics: %+v", m)
	}
}

func TestAnalyzeComplementaryAlarmCounts(t *testing.T) {
	tr := &Trace{AttackStart: 1, Records: []StepRecord{
		{Step: 0}, {Step: 1}, {Step: 2, Complementary: true},
	}}
	m := Analyze(tr)
	if !m.Detected || m.FirstAlarm != 2 {
		t.Errorf("complementary alarm not counted: %+v", m)
	}
}

func TestCampaignAggregates(t *testing.T) {
	m := models.VehicleTurning()
	att, _ := BuildAttack(m, "bias")
	res, err := Campaign(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 4 {
		t.Errorf("Runs = %d", res.Runs)
	}
	if res.FNExperiments+res.DeadlineMisses < 0 || res.FPExperiments > 4 {
		t.Errorf("implausible campaign: %+v", res)
	}
	if res.MeanDelay < 0 && res.FNExperiments < 4 {
		t.Errorf("mean delay should be defined when something was detected: %+v", res)
	}
}

func TestStrategyString(t *testing.T) {
	if Adaptive.String() != "adaptive" || FixedWindow.String() != "fixed" || CUSUMBaseline.String() != "cusum" {
		t.Error("strategy names wrong")
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Error("unknown strategy rendering wrong")
	}
}

func TestDisableComplementaryPropagates(t *testing.T) {
	// With the pass disabled the run must still work; the ablation
	// difference itself is exercised in the detect package and benches.
	m := models.VehicleTurning()
	att, _ := BuildAttack(m, "bias")
	if _, err := Run(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 5, DisableComplementary: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCUSUMStrategyRuns(t *testing.T) {
	m := models.SeriesRLC()
	att, _ := BuildAttack(m, "bias")
	tr, err := Run(Config{Model: m, Attack: att, Strategy: CUSUMBaseline, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != m.RunLength {
		t.Error("CUSUM run incomplete")
	}
}

func TestRecordsCarryResiduals(t *testing.T) {
	m := models.VehicleTurning()
	tr, err := Run(Config{Model: m, Strategy: Adaptive, Seed: 2, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Records {
		if r.Residual == nil {
			t.Fatalf("step %d: nil residual", i)
		}
		if len(r.Residual) != 1 {
			t.Fatalf("step %d: residual dim %d", i, len(r.Residual))
		}
	}
}

func TestInputsSaturatedToU(t *testing.T) {
	m := models.VehicleTurning()
	att := attack.NewBias(attack.Schedule{Start: 10}, mat.VecOf(-50)) // extreme bias rails the PID
	tr, err := Run(Config{Model: m, Attack: att, Strategy: FixedWindow, Seed: 2, Steps: 60})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.U.Lo(), m.U.Hi()
	for _, r := range tr.Records {
		for i := range r.Input {
			if r.Input[i] < lo[i]-1e-12 || r.Input[i] > hi[i]+1e-12 {
				t.Fatalf("step %d: input %v outside U", r.Step, r.Input)
			}
		}
	}
}

func TestRunWithRecoveryAdaptiveKeepsPlantSafe(t *testing.T) {
	m := models.SeriesRLC()
	att, _ := BuildAttack(m, "bias")
	out, err := RunWithRecovery(Config{Model: m, Attack: att, Strategy: Adaptive, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.AlarmStep < 0 {
		t.Fatal("recovery never engaged")
	}
	if !out.FinalSafe {
		t.Errorf("run ended unsafe: %+v", out)
	}
}

func TestRunWithRecoveryNoAttackNeverEngages(t *testing.T) {
	m := models.SeriesRLC()
	out, err := RunWithRecovery(Config{Model: m, Strategy: Adaptive, Seed: 9, Steps: 80})
	if err != nil {
		t.Fatal(err)
	}
	if out.AlarmStep >= 0 {
		t.Errorf("recovery engaged on a clean run: %+v", out)
	}
	if !out.FinalSafe {
		t.Error("clean run ended unsafe")
	}
}
