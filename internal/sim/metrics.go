package sim

// Metrics condenses a trace into the quantities the paper reports.
type Metrics struct {
	// False positives: alarms raised strictly before the attack onset (or
	// over the whole run when there is no attack).
	PreAttackSteps  int
	PreAttackAlarms int
	FPRate          float64

	// Detection.
	Detected       bool
	FirstAlarm     int // first alarm step at/after onset; -1 if none
	DetectionDelay int // FirstAlarm − onset; -1 if undetected

	// Safety.
	UnsafeStep int // first step the true state left the safe set after onset; -1 if never
	// DeadlineMissed: the physical system entered the unsafe region before
	// (or without) the first alarm — detection arrived after consequences
	// ("detecting an attack after car accidents is useless"). Attacks with
	// negligible physical effect (UnsafeStep < 0) never count as misses,
	// matching the paper's reading of Table 2.
	DeadlineMissed bool
}

// Analyze computes the metrics of one trace. For clean runs (AttackStart <
// 0) only the false-positive fields are meaningful.
func Analyze(tr *Trace) Metrics {
	m := Metrics{FirstAlarm: -1, DetectionDelay: -1, UnsafeStep: -1}
	onset := tr.AttackStart
	for _, r := range tr.Records {
		pre := onset < 0 || r.Step < onset
		if pre {
			m.PreAttackSteps++
			if r.Alarm || r.Complementary {
				m.PreAttackAlarms++
			}
			continue
		}
		if (r.Alarm || r.Complementary) && m.FirstAlarm < 0 {
			m.FirstAlarm = r.Step
		}
		if r.Unsafe && m.UnsafeStep < 0 {
			m.UnsafeStep = r.Step
		}
	}
	if m.PreAttackSteps > 0 {
		m.FPRate = float64(m.PreAttackAlarms) / float64(m.PreAttackSteps)
	}
	if onset >= 0 {
		m.Detected = m.FirstAlarm >= 0
		if m.Detected {
			m.DetectionDelay = m.FirstAlarm - onset
		}
		if m.UnsafeStep >= 0 && (!m.Detected || m.FirstAlarm > m.UnsafeStep) {
			m.DeadlineMissed = true
		}
	}
	return m
}

// CampaignResult aggregates a Monte-Carlo campaign (the paper's "out of 100
// simulations" counters of Table 2 and Fig. 7).
type CampaignResult struct {
	Runs int
	// FPExperiments counts runs whose pre-attack false-positive rate
	// exceeds the 10% cut the paper uses (Sec. 6.1.2).
	FPExperiments int
	// FNExperiments counts runs where the attack was never detected.
	FNExperiments int
	// DeadlineMisses counts runs where the state went unsafe before the
	// first alarm.
	DeadlineMisses int
	// MeanDelay averages the detection delay over detected runs (-1 when
	// nothing was detected).
	MeanDelay float64
}

// FPRateThreshold is the per-run false-positive-rate cut that makes a run a
// "false positive experiment" (Sec. 6.1.2: "counted as a false positive
// experiment if the false positive rate exceeds 10%").
const FPRateThreshold = 0.10

// Campaign runs n seeded experiments of the given base configuration,
// varying only the seed, and aggregates the counters. Stateful attacks are
// reset by Run at the start of every experiment.
func Campaign(base Config, n int) (CampaignResult, error) {
	res := CampaignResult{Runs: n}
	totalDelay, detected := 0, 0
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)*7919
		tr, err := Run(cfg)
		if err != nil {
			return CampaignResult{}, err
		}
		m := Analyze(tr)
		if m.FPRate > FPRateThreshold {
			res.FPExperiments++
		}
		if tr.AttackStart >= 0 {
			base.Observer.ObserveRun(m.DetectionDelay, m.Detected, m.DeadlineMissed)
			if !m.Detected {
				res.FNExperiments++
			} else {
				totalDelay += m.DetectionDelay
				detected++
			}
			if m.DeadlineMissed {
				res.DeadlineMisses++
			}
		}
	}
	if detected > 0 {
		res.MeanDelay = float64(totalDelay) / float64(detected)
	} else {
		res.MeanDelay = -1
	}
	return res, nil
}
