// Package noise generates the bounded stochastic signals of the evaluation:
// per-step process uncertainty v_t with ‖v_t‖₂ ≤ ε (Sec. 3.2.1) and bounded
// measurement noise. All generators are deterministic functions of a seed so
// the 100-experiment campaigns of Sec. 6 are exactly reproducible.
package noise

import (
	"math"

	"repro/internal/mat"
)

// Source is a small deterministic PRNG (splitmix64 core) that avoids any
// dependence on global state. The zero value is a valid source with seed 0.
type Source struct {
	state uint64
}

// NewSource returns a source seeded deterministically.
func NewSource(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next raw 64-bit value (splitmix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics for n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("noise: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Normal returns a standard normal deviate via Box-Muller.
func (s *Source) Normal() float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bounded generators. Each is a func(step) -> vector so simulation code can
// treat noise injection uniformly.

// Gen produces one bounded noise vector per control step.
type Gen interface {
	// Sample returns the noise vector for control step t.
	Sample(t int) mat.Vec
	// Bound returns a radius r such that every sample satisfies ‖v‖₂ ≤ r.
	Bound() float64
}

// ballGen samples uniformly from a Euclidean ball of radius eps — exactly
// the over-approximation set B_ε the deadline estimator assumes.
type ballGen struct {
	src *Source
	n   int
	eps float64
}

// NewBall returns a generator of n-dimensional noise uniform in the
// ε-radius Euclidean ball.
func NewBall(seed uint64, n int, eps float64) Gen {
	if eps < 0 {
		panic("noise: negative ball radius")
	}
	return &ballGen{src: NewSource(seed), n: n, eps: eps}
}

func (g *ballGen) Bound() float64 { return g.eps }

func (g *ballGen) Sample(int) mat.Vec {
	if g.eps == 0 {
		return mat.NewVec(g.n)
	}
	// Sample a direction from a spherical Gaussian, then a radius with the
	// density proportional to r^{n-1} so points are uniform in the ball.
	v := make(mat.Vec, g.n)
	for i := range v {
		v[i] = g.src.Normal()
	}
	norm := v.Norm2()
	if norm == 0 {
		return mat.NewVec(g.n)
	}
	r := g.eps * math.Pow(g.src.Float64(), 1/float64(g.n))
	return v.Scale(r / norm)
}

// zeroGen emits zero vectors; used for noise-free ablations.
type zeroGen struct{ n int }

// Zero returns a generator that always emits the zero vector.
func Zero(n int) Gen { return zeroGen{n: n} }

func (g zeroGen) Sample(int) mat.Vec { return mat.NewVec(g.n) }
func (g zeroGen) Bound() float64     { return 0 }

// scaledGen samples each dimension uniformly in [-amp_i, amp_i]; used for
// sensor (measurement) noise where per-channel amplitudes differ.
type scaledGen struct {
	src *Source
	amp mat.Vec
}

// NewUniformBox returns a generator uniform over the centered box with the
// given per-dimension amplitudes.
func NewUniformBox(seed uint64, amp mat.Vec) Gen {
	for _, a := range amp {
		if a < 0 {
			panic("noise: negative amplitude")
		}
	}
	return &scaledGen{src: NewSource(seed), amp: amp.Clone()}
}

func (g *scaledGen) Bound() float64 { return g.amp.Norm2() }

func (g *scaledGen) Sample(int) mat.Vec {
	v := make(mat.Vec, len(g.amp))
	for i, a := range g.amp {
		if a > 0 {
			v[i] = g.src.Uniform(-a, a)
		}
	}
	return v
}
