package noise

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestSourceDeterministic(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws across different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(8)
	for i := 0; i < 10000; i++ {
		f := s.Uniform(-3, 5)
		if f < -3 || f >= 5 {
			t.Fatalf("Uniform = %v out of [-3,5)", f)
		}
	}
}

func TestIntn(t *testing.T) {
	s := NewSource(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn only produced %d distinct values", len(seen))
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := NewSource(10)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestBallGenRespectsBound(t *testing.T) {
	g := NewBall(11, 3, 0.25)
	if g.Bound() != 0.25 {
		t.Errorf("Bound = %v", g.Bound())
	}
	for i := 0; i < 5000; i++ {
		v := g.Sample(i)
		if len(v) != 3 {
			t.Fatalf("dim = %d", len(v))
		}
		if v.Norm2() > 0.25+1e-12 {
			t.Fatalf("sample %d outside ball: ‖v‖=%v", i, v.Norm2())
		}
	}
}

func TestBallGenFillsBall(t *testing.T) {
	// The radius distribution should reach near the boundary — a sanity
	// check that we are not sampling only near the center.
	g := NewBall(12, 2, 1)
	maxNorm := 0.0
	for i := 0; i < 5000; i++ {
		if n := g.Sample(i).Norm2(); n > maxNorm {
			maxNorm = n
		}
	}
	if maxNorm < 0.99 {
		t.Errorf("max sample norm = %v, expected close to 1", maxNorm)
	}
}

func TestBallGenZeroEps(t *testing.T) {
	g := NewBall(13, 4, 0)
	if v := g.Sample(0); v.Norm2() != 0 {
		t.Errorf("zero-eps sample = %v", v)
	}
}

func TestBallGenNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBall(1, 2, -0.1)
}

func TestZeroGen(t *testing.T) {
	g := Zero(3)
	if g.Bound() != 0 {
		t.Errorf("Bound = %v", g.Bound())
	}
	if v := g.Sample(5); !v.Equal(mat.NewVec(3), 0) {
		t.Errorf("Sample = %v", v)
	}
}

func TestUniformBoxGen(t *testing.T) {
	amp := mat.VecOf(0.1, 0, 2)
	g := NewUniformBox(14, amp)
	for i := 0; i < 5000; i++ {
		v := g.Sample(i)
		if math.Abs(v[0]) > 0.1 || v[1] != 0 || math.Abs(v[2]) > 2 {
			t.Fatalf("sample %d out of box: %v", i, v)
		}
	}
	if math.Abs(g.Bound()-amp.Norm2()) > 1e-12 {
		t.Errorf("Bound = %v", g.Bound())
	}
}

func TestUniformBoxNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniformBox(1, mat.VecOf(-1))
}

func TestUniformBoxDoesNotAliasAmp(t *testing.T) {
	amp := mat.VecOf(1)
	g := NewUniformBox(15, amp)
	amp[0] = 0
	if v := g.Sample(0); v[0] == 0 {
		// Exceedingly unlikely to be exactly zero if amplitude stayed 1.
		v2 := g.Sample(1)
		if v2[0] == 0 {
			t.Error("generator appears to alias caller's amplitude slice")
		}
	}
}
