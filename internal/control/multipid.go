package control

import (
	"fmt"

	"repro/internal/mat"
)

// Loop is one channel of a multi-loop PID controller: a PID on the error
// between a reference and one tracked state dimension, driving one input
// channel. This is how multi-input plants (the quadrotor's thrust + three
// torques) are supervised by decoupled PID loops in practice.
type Loop struct {
	StateDim   int // tracked state dimension
	InputIdx   int // driven input channel
	Ref        Reference
	Kp, Ki, Kd float64
}

// MultiPID runs several decoupled PID loops against one state estimate,
// producing a full input vector saturated to the actuator box.
type MultiPID struct {
	loops []Loop
	pids  []*PID
	lo    mat.Vec
	hi    mat.Vec
}

// NewMultiPID validates the loop definitions against the given actuator
// bounds (which fix the input dimension) and builds fresh PID state for
// each loop. Multiple loops may not drive the same input channel.
func NewMultiPID(dt float64, lo, hi mat.Vec, loops ...Loop) (*MultiPID, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, fmt.Errorf("control: actuator bounds length %d/%d", len(lo), len(hi))
	}
	if len(loops) == 0 {
		return nil, fmt.Errorf("control: no loops")
	}
	used := make(map[int]bool)
	pids := make([]*PID, len(loops))
	for i, l := range loops {
		if l.InputIdx < 0 || l.InputIdx >= len(lo) {
			return nil, fmt.Errorf("control: loop %d input channel %d out of range", i, l.InputIdx)
		}
		if used[l.InputIdx] {
			return nil, fmt.Errorf("control: loops share input channel %d", l.InputIdx)
		}
		used[l.InputIdx] = true
		if l.StateDim < 0 {
			return nil, fmt.Errorf("control: loop %d negative state dimension", i)
		}
		if l.Ref == nil {
			return nil, fmt.Errorf("control: loop %d nil reference", i)
		}
		pids[i] = NewPID(l.Kp, l.Ki, l.Kd, dt)
	}
	return &MultiPID{loops: append([]Loop(nil), loops...), pids: pids, lo: lo.Clone(), hi: hi.Clone()}, nil
}

// Update computes the saturated input vector for control step t from the
// state estimate. Channels not driven by any loop stay zero.
func (m *MultiPID) Update(t int, estimate mat.Vec) mat.Vec {
	u := mat.NewVec(len(m.lo))
	for i, l := range m.loops {
		if l.StateDim >= len(estimate) {
			panic(fmt.Sprintf("control: loop %d tracks dimension %d of a %d-dim estimate",
				i, l.StateDim, len(estimate)))
		}
		err := l.Ref.At(t) - estimate[l.StateDim]
		u[l.InputIdx] = m.pids[i].UpdateClamped(err, m.lo[l.InputIdx], m.hi[l.InputIdx])
	}
	return u
}

// Reset clears every loop's PID state.
func (m *MultiPID) Reset() {
	for _, p := range m.pids {
		p.Reset()
	}
}
