// Package control implements the PID feedback loop that supervises every
// plant in the evaluation (Table 1 lists the gains), plus reference signal
// generators and actuator saturation to the control input range U.
package control

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// PID is a discrete PID controller acting on a scalar error signal.
// The integral term accumulates err·dt; the derivative term differences the
// error across one control step. Output saturation (the actuator's range U)
// is applied by the caller via Saturate, and anti-windup conditionally
// freezes the integrator when the output is saturated.
type PID struct {
	Kp, Ki, Kd float64
	dt         float64

	integral float64
	prevErr  float64
	primed   bool // prevErr valid?
}

// NewPID returns a PID controller with the given gains and control period.
func NewPID(kp, ki, kd, dt float64) *PID {
	if dt <= 0 {
		panic(fmt.Sprintf("control: non-positive dt %v", dt))
	}
	return &PID{Kp: kp, Ki: ki, Kd: kd, dt: dt}
}

// Update advances the controller one step with the given error
// (reference − measurement) and returns the raw (unsaturated) output.
func (p *PID) Update(err float64) float64 {
	p.integral += err * p.dt
	d := 0.0
	if p.primed {
		d = (err - p.prevErr) / p.dt
	}
	p.prevErr = err
	p.primed = true
	return p.Kp*err + p.Ki*p.integral + p.Kd*d
}

// UpdateClamped is Update with output saturation to [lo, hi] and
// conditional-integration anti-windup: if the raw output exceeds the limits
// and the error would push it further, the integral contribution of this
// step is rolled back.
func (p *PID) UpdateClamped(err, lo, hi float64) float64 {
	raw := p.Update(err)
	if raw > hi {
		if err > 0 {
			p.integral -= err * p.dt
		}
		return hi
	}
	if raw < lo {
		if err < 0 {
			p.integral -= err * p.dt
		}
		return lo
	}
	return raw
}

// Reset clears the controller's internal state.
func (p *PID) Reset() {
	p.integral = 0
	p.prevErr = 0
	p.primed = false
}

// Saturate clamps each input channel to its interval in the box U
// (Sec. 3.2.2: every actuator has a bounded range).
func Saturate(u mat.Vec, lo, hi mat.Vec) mat.Vec {
	if len(u) != len(lo) || len(u) != len(hi) {
		panic("control: Saturate dimension mismatch")
	}
	out := make(mat.Vec, len(u))
	for i := range u {
		out[i] = math.Min(math.Max(u[i], lo[i]), hi[i])
	}
	return out
}

// Reference produces the desired (reference) state r_t for a control step.
type Reference interface {
	At(t int) float64
}

// ConstantRef holds a fixed set point.
type ConstantRef float64

// At returns the constant set point.
func (c ConstantRef) At(int) float64 { return float64(c) }

// StepRef switches from Before to After at step At0 (a set-point change,
// e.g. the start of a turn for the vehicle-turning plant).
type StepRef struct {
	Before, After float64
	At0           int
}

// At returns Before for t < At0 and After from At0 on.
func (s StepRef) At(t int) float64 {
	if t < s.At0 {
		return s.Before
	}
	return s.After
}

// RampRef ramps linearly from Start to End over [0, Steps], holding End
// afterwards.
type RampRef struct {
	Start, End float64
	Steps      int
}

// At returns the ramped reference value.
func (r RampRef) At(t int) float64 {
	if r.Steps <= 0 || t >= r.Steps {
		return r.End
	}
	if t <= 0 {
		return r.Start
	}
	return r.Start + (r.End-r.Start)*float64(t)/float64(r.Steps)
}

// SineRef oscillates around Center with the given amplitude and period (in
// steps); used by the quadrotor hover-with-sway scenario.
type SineRef struct {
	Center, Amplitude float64
	Period            int
}

// At returns the sinusoidal reference value.
func (s SineRef) At(t int) float64 {
	if s.Period <= 0 {
		return s.Center
	}
	return s.Center + s.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(s.Period))
}
