package control

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestNewMultiPIDValidation(t *testing.T) {
	lo, hi := mat.VecOf(-1, -1), mat.VecOf(1, 1)
	good := Loop{StateDim: 0, InputIdx: 0, Ref: ConstantRef(1), Kp: 1}
	cases := []struct {
		name  string
		lo    mat.Vec
		hi    mat.Vec
		loops []Loop
	}{
		{"mismatched bounds", mat.VecOf(0), hi, []Loop{good}},
		{"no loops", lo, hi, nil},
		{"input out of range", lo, hi, []Loop{{StateDim: 0, InputIdx: 5, Ref: ConstantRef(0)}}},
		{"duplicate channel", lo, hi, []Loop{good, {StateDim: 1, InputIdx: 0, Ref: ConstantRef(0)}}},
		{"negative state dim", lo, hi, []Loop{{StateDim: -1, InputIdx: 0, Ref: ConstantRef(0)}}},
		{"nil reference", lo, hi, []Loop{{StateDim: 0, InputIdx: 0}}},
	}
	for _, c := range cases {
		if _, err := NewMultiPID(0.1, c.lo, c.hi, c.loops...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewMultiPID(0.1, lo, hi, good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMultiPIDDrivesAssignedChannels(t *testing.T) {
	m, err := NewMultiPID(0.1, mat.VecOf(-10, -10, -10), mat.VecOf(10, 10, 10),
		Loop{StateDim: 0, InputIdx: 0, Ref: ConstantRef(1), Kp: 2},
		Loop{StateDim: 1, InputIdx: 2, Ref: ConstantRef(-1), Kp: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Update(0, mat.VecOf(0, 0))
	// Channel 0: 2·(1−0) = 2; channel 1 undriven = 0; channel 2: 3·(−1−0) = −3.
	if math.Abs(u[0]-2) > 1e-12 || u[1] != 0 || math.Abs(u[2]+3) > 1e-12 {
		t.Errorf("u = %v", u)
	}
}

func TestMultiPIDSaturates(t *testing.T) {
	m, err := NewMultiPID(0.1, mat.VecOf(-1), mat.VecOf(1),
		Loop{StateDim: 0, InputIdx: 0, Ref: ConstantRef(100), Kp: 50},
	)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Update(0, mat.VecOf(0))
	if u[0] != 1 {
		t.Errorf("u = %v, want saturated 1", u[0])
	}
}

func TestMultiPIDClosedLoopTwoChannels(t *testing.T) {
	// Two decoupled scalar plants x_i' = x_i + 0.1 u_i, tracked to
	// different set points by separate loops over one estimate vector.
	m, err := NewMultiPID(0.1, mat.VecOf(-10, -10), mat.VecOf(10, 10),
		Loop{StateDim: 0, InputIdx: 0, Ref: ConstantRef(2), Kp: 2, Ki: 1},
		Loop{StateDim: 1, InputIdx: 1, Ref: ConstantRef(-3), Kp: 2, Ki: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.VecOf(0, 0)
	for t0 := 0; t0 < 600; t0++ {
		u := m.Update(t0, x)
		x[0] += 0.1 * u[0]
		x[1] += 0.1 * u[1]
	}
	if math.Abs(x[0]-2) > 1e-2 || math.Abs(x[1]+3) > 1e-2 {
		t.Errorf("settled at %v, want (2, -3)", x)
	}
}

func TestMultiPIDReset(t *testing.T) {
	m, err := NewMultiPID(0.1, mat.VecOf(-10), mat.VecOf(10),
		Loop{StateDim: 0, InputIdx: 0, Ref: ConstantRef(1), Ki: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	u1 := m.Update(0, mat.VecOf(0))
	m.Update(1, mat.VecOf(0)) // integral accumulates
	m.Reset()
	u2 := m.Update(0, mat.VecOf(0))
	if u1[0] != u2[0] {
		t.Errorf("post-reset output %v != fresh output %v", u2[0], u1[0])
	}
}

func TestMultiPIDPanicsOnShortEstimate(t *testing.T) {
	m, err := NewMultiPID(0.1, mat.VecOf(-1), mat.VecOf(1),
		Loop{StateDim: 3, InputIdx: 0, Ref: ConstantRef(0), Kp: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Update(0, mat.VecOf(0, 0))
}
