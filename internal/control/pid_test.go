package control

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestPIDProportionalOnly(t *testing.T) {
	p := NewPID(2, 0, 0, 0.1)
	if got := p.Update(3); got != 6 {
		t.Errorf("P-only output = %v, want 6", got)
	}
}

func TestPIDIntegralAccumulates(t *testing.T) {
	p := NewPID(0, 1, 0, 0.5)
	p.Update(2) // integral = 1
	if got := p.Update(2); math.Abs(got-2) > 1e-12 {
		t.Errorf("I output after 2 steps = %v, want 2", got)
	}
}

func TestPIDDerivativeFirstStepZero(t *testing.T) {
	p := NewPID(0, 0, 1, 0.1)
	if got := p.Update(5); got != 0 {
		t.Errorf("D output on first step = %v, want 0 (unprimed)", got)
	}
	// Second step: (3-5)/0.1 = -20.
	if got := p.Update(3); math.Abs(got+20) > 1e-12 {
		t.Errorf("D output = %v, want -20", got)
	}
}

func TestPIDReset(t *testing.T) {
	p := NewPID(1, 1, 1, 0.1)
	p.Update(1)
	p.Update(2)
	p.Reset()
	q := NewPID(1, 1, 1, 0.1)
	if p.Update(3) != q.Update(3) {
		t.Error("Reset did not restore initial behaviour")
	}
}

func TestPIDNonPositiveDtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPID(1, 0, 0, 0)
}

func TestUpdateClampedSaturates(t *testing.T) {
	p := NewPID(10, 0, 0, 0.1)
	if got := p.UpdateClamped(5, -1, 1); got != 1 {
		t.Errorf("clamped output = %v, want 1", got)
	}
	if got := p.UpdateClamped(-5, -1, 1); got != -1 {
		t.Errorf("clamped output = %v, want -1", got)
	}
}

func TestUpdateClampedAntiWindup(t *testing.T) {
	// With huge sustained error and windup, recovery takes many steps; with
	// conditional integration the controller recovers immediately once the
	// error flips sign.
	p := NewPID(1, 10, 0, 0.1)
	for i := 0; i < 100; i++ {
		p.UpdateClamped(10, -1, 1) // saturated high for a long time
	}
	if p.integral > 10*0.1+1e-9 {
		t.Errorf("integral wound up to %v despite saturation", p.integral)
	}
	// Error reverses; output should leave the upper rail promptly.
	out := p.UpdateClamped(-1, -1, 1)
	if out >= 1 {
		t.Errorf("output stuck at rail: %v", out)
	}
}

func TestPIDClosedLoopConvergence(t *testing.T) {
	// Scalar plant x' = x + 0.1u tracked to a set point: PI control must
	// drive the error to ~0.
	p := NewPID(2, 1, 0, 0.1)
	x, ref := 0.0, 1.0
	for i := 0; i < 500; i++ {
		u := p.UpdateClamped(ref-x, -10, 10)
		x += 0.1 * u
	}
	if math.Abs(x-ref) > 1e-3 {
		t.Errorf("closed loop settled at %v, want %v", x, ref)
	}
}

func TestSaturateVector(t *testing.T) {
	u := mat.VecOf(-5, 0.5, 9)
	lo := mat.VecOf(-1, -1, -1)
	hi := mat.VecOf(1, 1, 1)
	got := Saturate(u, lo, hi)
	if !got.Equal(mat.VecOf(-1, 0.5, 1), 0) {
		t.Errorf("Saturate = %v", got)
	}
}

func TestSaturateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Saturate(mat.VecOf(1), mat.VecOf(0, 0), mat.VecOf(1, 1))
}

func TestConstantRef(t *testing.T) {
	r := ConstantRef(4)
	if r.At(0) != 4 || r.At(1000) != 4 {
		t.Error("ConstantRef not constant")
	}
}

func TestStepRef(t *testing.T) {
	r := StepRef{Before: 0, After: 2, At0: 10}
	if r.At(9) != 0 || r.At(10) != 2 || r.At(11) != 2 {
		t.Errorf("StepRef values: %v %v %v", r.At(9), r.At(10), r.At(11))
	}
}

func TestRampRef(t *testing.T) {
	r := RampRef{Start: 0, End: 10, Steps: 10}
	if r.At(0) != 0 || r.At(5) != 5 || r.At(10) != 10 || r.At(99) != 10 {
		t.Errorf("RampRef: %v %v %v %v", r.At(0), r.At(5), r.At(10), r.At(99))
	}
	if r.At(-1) != 0 {
		t.Errorf("RampRef before start = %v", r.At(-1))
	}
	degenerate := RampRef{Start: 1, End: 2, Steps: 0}
	if degenerate.At(0) != 2 {
		t.Errorf("degenerate ramp = %v", degenerate.At(0))
	}
}

func TestSineRef(t *testing.T) {
	r := SineRef{Center: 1, Amplitude: 2, Period: 4}
	if math.Abs(r.At(0)-1) > 1e-12 {
		t.Errorf("sine at 0 = %v", r.At(0))
	}
	if math.Abs(r.At(1)-3) > 1e-12 {
		t.Errorf("sine at quarter period = %v, want 3", r.At(1))
	}
	flat := SineRef{Center: 5, Amplitude: 1, Period: 0}
	if flat.At(3) != 5 {
		t.Errorf("zero-period sine = %v", flat.At(3))
	}
}
