package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := Quantile(xs, 1.0/3); math.Abs(got-2) > 1e-12 {
		t.Errorf("q(1/3) = %v, want 2", got)
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestWilsonIntervalKnown(t *testing.T) {
	// 50/100 at 95%: approximately [0.404, 0.596].
	lo, hi := WilsonInterval(50, 100, 1.96)
	if math.Abs(lo-0.404) > 0.005 || math.Abs(hi-0.596) > 0.005 {
		t.Errorf("interval = [%v, %v]", lo, hi)
	}
	// Extremes stay in [0, 1] and are non-degenerate.
	lo0, hi0 := WilsonInterval(0, 100, 1.96)
	if lo0 != 0 || hi0 <= 0 || hi0 > 0.1 {
		t.Errorf("zero-successes interval = [%v, %v]", lo0, hi0)
	}
	loN, hiN := WilsonInterval(100, 100, 1.96)
	if hiN < 1-1e-12 || loN >= 1 || loN < 0.9 {
		t.Errorf("all-successes interval = [%v, %v]", loN, hiN)
	}
}

func TestWilsonIntervalValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { WilsonInterval(0, 0, 1.96) },
		func() { WilsonInterval(-1, 10, 1.96) },
		func() { WilsonInterval(11, 10, 1.96) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFormatCount(t *testing.T) {
	out := FormatCount(3, 10)
	if out == "" || out[0] != '3' {
		t.Errorf("FormatCount = %q", out)
	}
}

// Property: the Wilson interval always contains the point estimate.
func TestWilsonContainsPointEstimateProperty(t *testing.T) {
	f := func(kRaw, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := WilsonInterval(k, n, 1.96)
		p := float64(k) / float64(n)
		return lo <= p+1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw [6]float64, q1Raw, q2Raw uint8) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		xs := raw[:]
		s := Summarize(xs)
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2+1e-12 && v1 >= s.Min-1e-12 && v2 <= s.Max+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max] and std is non-negative.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(raw [8]float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		s := Summarize(raw[:])
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
