// Package stats provides the summary statistics the evaluation reports:
// moments, quantiles, and binomial proportion confidence intervals for the
// "k out of 100 runs" counters of Table 2 / Fig. 7. Pure stdlib.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and extrema of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) with linear interpolation
// between order statistics. It panics on an empty sample or q outside
// [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion with k successes out of n trials at the given z
// (1.96 for 95%). It panics for n <= 0 or k outside [0, n].
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		panic("stats: non-positive trial count")
	}
	if k < 0 || k > n {
		panic(fmt.Sprintf("stats: successes %d outside [0, %d]", k, n))
	}
	if z <= 0 {
		z = 1.96
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}

// FormatCount renders "k/n (lo–hi%)" with a 95% Wilson interval — the house
// style for campaign counters.
func FormatCount(k, n int) string {
	lo, hi := WilsonInterval(k, n, 1.96)
	return fmt.Sprintf("%d/%d (%.0f–%.0f%%)", k, n, 100*lo, 100*hi)
}
