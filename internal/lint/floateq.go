// Package lint hosts the awdlint analyzers: domain-specific static checks
// that keep the implementation honest about the invariants the paper's
// guarantees (Theorems 1–2) silently rely on. See the individual analyzer
// docs and README.md's "Static analysis" section for the mapping from each
// check to the property it protects.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// floatEqScope lists the numerical packages where exact float equality is
// almost always a bug: residual/threshold comparisons (Murguia & Ruths show
// detector behaviour is dominated by threshold-comparison details) and the
// support-function reachability core.
var floatEqScope = []string{
	"repro/internal/detect",
	"repro/internal/reach",
	"repro/internal/geom",
	"repro/internal/mat",
	"repro/internal/estim",
	"repro/internal/stats",
	"repro/internal/fleet",
}

// FloatEq flags == and != between floating-point expressions. The paper's
// no-false-alarm argument (Theorem 1) assumes tolerance-based comparisons;
// exact equality on computed floats silently breaks it. Use
// mat.ApproxEq/mat.ApproxZero (or math.IsNaN for the x != x idiom), or
// annotate a deliberately exact sentinel with
// //awdlint:allow floateq -- <why exactness is correct here>.
var FloatEq = &analysis.Analyzer{
	Name:  "floateq",
	Doc:   "flags ==/!= between floating-point expressions in the numerical packages; use the mat.ApproxEq tolerance helpers instead",
	Match: matchAny(floatEqScope),
	Run:   runFloatEq,
}

func runFloatEq(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := pass.TypesInfo.Types[be.X]
			ty := pass.TypesInfo.Types[be.Y]
			if tx.Value != nil && ty.Value != nil {
				return true // constant folding is exact
			}
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				pass.Reportf(be.OpPos, "self-comparison of floating-point expression %s; use math.IsNaN", types.ExprString(be.X))
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use mat.ApproxEq/ApproxZero or annotate //awdlint:allow floateq -- reason", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// matchAny returns a package filter accepting exactly the listed paths.
func matchAny(paths []string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if pkgPath == p {
				return true
			}
		}
		return false
	}
}

// matchPrefix returns a package filter accepting the module's packages.
func matchPrefix(prefix string) func(string) bool {
	return func(pkgPath string) bool {
		return pkgPath == strings.TrimSuffix(prefix, "/") || strings.HasPrefix(pkgPath, prefix)
	}
}
