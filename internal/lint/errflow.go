package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// errFlowSources are the packages whose error returns guard the matrix
// algebra under the reachability core. A swallowed dimension or
// singularity error there does not crash — it silently corrupts the
// reachable-set over-approximation, and with it the deadline t_d that
// Theorem 2's detection guarantee is measured against.
var errFlowSources = map[string]bool{
	"repro/internal/mat": true,
	"repro/internal/lti": true,
}

// ErrFlow flags calls into internal/mat and internal/lti whose error
// result is dropped: either the whole call used as a statement, or the
// error position assigned to the blank identifier.
var ErrFlow = &analysis.Analyzer{
	Name:  "errflow",
	Doc:   "forbids discarding error returns from internal/mat and internal/lti; a swallowed dimension error corrupts reachability",
	Match: matchPrefix("repro/"),
	Run:   runErrFlow,
}

func runErrFlow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name, ok := droppedErrCall(pass, call); ok {
						pass.Reportf(call.Pos(), "result of %s dropped; its error must be checked", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := droppedErrCall(pass, st.Call); ok {
					pass.Reportf(st.Call.Pos(), "go statement discards the error from %s", name)
				}
			case *ast.DeferStmt:
				if name, ok := droppedErrCall(pass, st.Call); ok {
					pass.Reportf(st.Call.Pos(), "defer discards the error from %s", name)
				}
			case *ast.AssignStmt:
				checkAssignErrFlow(pass, st)
			}
			return true
		})
	}
	return nil
}

// droppedErrCall reports whether the call targets an error-returning
// function of the guarded packages, with its printable name.
func droppedErrCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	obj := calleeOf(pass, call)
	if obj == nil || obj.Pkg() == nil || !errFlowSources[obj.Pkg().Path()] {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return "", false
	}
	return types.ExprString(call.Fun), true
}

// checkAssignErrFlow flags `v, _ := mat.F(...)` — the error position
// assigned to blank.
func checkAssignErrFlow(pass *analysis.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := droppedErrCall(pass, call)
	if !ok || len(st.Lhs) == 0 {
		return
	}
	if id, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "error from %s assigned to blank; handle or propagate it", name)
	}
}

// calleeOf resolves the called function object, if statically known.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorIface) }
