package lint

import (
	"testing"

	"repro/internal/lint/analysistest"
)

// Each analyzer is exercised against a flagged testdata package (every
// diagnostic pinned by a want comment, including suppression directives)
// and a clean one (zero diagnostics asserted).

func TestFloatEqFlagged(t *testing.T) {
	analysistest.Run(t, FloatEq, "repro/internal/lint/testdata/floateq", "floateq/flagged")
}

func TestFloatEqClean(t *testing.T) {
	analysistest.Run(t, FloatEq, "repro/internal/lint/testdata/floateq", "floateq/clean")
}

func TestNoPanicFlagged(t *testing.T) {
	analysistest.Run(t, NoPanic, "repro/internal/lint/testdata/nopanic", "nopanic/flagged")
}

func TestNoPanicClean(t *testing.T) {
	analysistest.Run(t, NoPanic, "repro/internal/lint/testdata/nopanic", "nopanic/clean")
}

// The observer testdata is type-checked under the real obs import path so
// the analyzer applies its in-package receiver-guard rule.

func TestObsGuardObserverFlagged(t *testing.T) {
	analysistest.Run(t, ObsGuard, "repro/internal/obs", "obsguard/observer_flagged")
}

func TestObsGuardObserverClean(t *testing.T) {
	analysistest.Run(t, ObsGuard, "repro/internal/obs", "obsguard/observer_clean")
}

func TestObsGuardSinkFlagged(t *testing.T) {
	analysistest.Run(t, ObsGuard, "repro/internal/lint/testdata/sinkuse", "obsguard/sink_flagged")
}

func TestObsGuardSinkClean(t *testing.T) {
	analysistest.Run(t, ObsGuard, "repro/internal/lint/testdata/sinkuse", "obsguard/sink_clean")
}

func TestErrFlowFlagged(t *testing.T) {
	analysistest.Run(t, ErrFlow, "repro/internal/lint/testdata/errflow", "errflow/flagged")
}

func TestErrFlowClean(t *testing.T) {
	analysistest.Run(t, ErrFlow, "repro/internal/lint/testdata/errflow", "errflow/clean")
}

func TestDetOrderFlagged(t *testing.T) {
	analysistest.Run(t, DetOrder, "repro/internal/lint/testdata/detorder", "detorder/flagged")
}

func TestDetOrderClean(t *testing.T) {
	analysistest.Run(t, DetOrder, "repro/internal/lint/testdata/detorder", "detorder/clean")
}

func TestWallClockFlagged(t *testing.T) {
	analysistest.Run(t, WallClock, "repro/internal/lint/testdata/wallclock", "wallclock/flagged")
}

func TestWallClockClean(t *testing.T) {
	analysistest.Run(t, WallClock, "repro/internal/lint/testdata/wallclock", "wallclock/clean")
}

func TestLockFlowFlagged(t *testing.T) {
	analysistest.Run(t, LockFlow, "repro/internal/lint/testdata/lockflow", "lockflow/flagged")
}

func TestLockFlowClean(t *testing.T) {
	analysistest.Run(t, LockFlow, "repro/internal/lint/testdata/lockflow", "lockflow/clean")
}

func TestStatePairFlagged(t *testing.T) {
	analysistest.Run(t, StatePair, "repro/internal/lint/testdata/statepair", "statepair/flagged")
}

func TestStatePairClean(t *testing.T) {
	analysistest.Run(t, StatePair, "repro/internal/lint/testdata/statepair", "statepair/clean")
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"floateq", "nopanic"})
	if err != nil || len(as) != 2 || as[0] != FloatEq || as[1] != NoPanic {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Error("unknown analyzer accepted")
	}
	all, err := ByName(nil)
	if err != nil || len(all) != len(Suite()) {
		t.Fatalf("ByName(nil) = %v, %v", all, err)
	}
}
