package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// detOrderScope is the bit-identity perimeter: the packages whose outputs —
// encoded snapshot bytes (state), wire frames (wire), and detector decision
// sequences (core, fleet) — must be a pure function of the sample stream.
// Go map iteration order is deliberately randomized per run, so any
// order-sensitive work inside a map range in these packages is a latent
// nondeterminism bug: two identical fleets would emit different snapshot
// bytes, breaking the restore==never-crashed differential tests and the
// byte-equality the checkpoint lifecycle depends on.
var detOrderScope = []string{
	"repro/internal/state",
	"repro/internal/fleet",
	"repro/internal/wire",
	"repro/internal/core",
}

// DetOrder forbids order-sensitive statements inside `range` over a map in
// the snapshot/fleet/wire/core packages. The required shape is the
// sorted-key idiom the fleet snapshot already uses: range the map only to
// collect keys (or values) into a slice, sort the slice, then do the real
// work iterating the slice. Order-insensitive bodies — key collection via
// self-append, keyed map writes, integer counters and masks, delete — are
// recognized and allowed; anything whose effect can depend on iteration
// order (calls, channel sends, float accumulation, last-writer-wins
// assignments, early returns) is flagged.
var DetOrder = &analysis.Analyzer{
	Name:  "detorder",
	Doc:   "forbids order-sensitive work inside map iteration in internal/{state,fleet,wire,core}; collect keys into a slice and sort first (the fleet snapshot idiom)",
	Match: matchAny(detOrderScope),
	Run:   runDetOrder,
}

func runDetOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
				return true
			}
			c := &detOrderChecker{pass: pass, locals: map[types.Object]bool{}}
			c.noteLocal(rs.Key)
			c.noteLocal(rs.Value)
			for _, st := range rs.Body.List {
				c.stmt(st)
			}
			// Nested map ranges inside this body are re-visited by the outer
			// Inspect and judged with their own checker.
			return true
		})
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// detOrderChecker classifies the statements of one map-range body.
type detOrderChecker struct {
	pass *analysis.Pass
	// locals holds the loop variables and every object defined inside the
	// body; their values die with the iteration, so writes to them cannot
	// leak iteration order out of the loop by themselves.
	locals map[types.Object]bool
}

func (c *detOrderChecker) noteLocal(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		c.locals[obj] = true
	}
}

// detOrderBuiltins are side-effect-free (or commutative, for delete) calls
// that an order-insensitive body may make.
var detOrderBuiltins = map[string]bool{
	"append": true, "len": true, "cap": true, "delete": true,
	"make": true, "new": true, "min": true, "max": true,
}

func (c *detOrderChecker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.IncDecStmt:
		// x++ applies the identical step each iteration; any interleaving
		// yields the same final value.
		c.exprCalls(st.X)
	case *ast.IfStmt:
		c.stmt(st.Init)
		c.exprCalls(st.Cond)
		c.stmt(st.Body)
		c.stmt(st.Else)
	case *ast.BlockStmt:
		for _, inner := range st.List {
			c.stmt(inner)
		}
	case *ast.SendStmt:
		c.exprCalls(st.Chan)
		c.exprCalls(st.Value)
		c.pass.Reportf(st.Arrow, "channel send inside map iteration: delivery order follows the map's randomized iteration order; collect and sort the keys first")
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			c.exprCalls(call)
			return
		}
		c.pass.Reportf(st.Pos(), "order-sensitive statement inside map iteration; collect the keys, sort them, and iterate the slice (the fleet snapshot idiom)")
	case *ast.BranchStmt:
		// break/continue are fine by themselves; whatever made them order-
		// sensitive (an assignment, a call) is flagged where it happens.
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.exprCalls(r)
		}
		if len(st.Results) > 0 {
			c.pass.Reportf(st.Return, "return inside map iteration selects an element in randomized map order; iterate sorted keys to make the selection deterministic")
		}
	case *ast.RangeStmt:
		if isMapType(c.pass.TypesInfo.TypeOf(st.X)) {
			return // judged by its own checker
		}
		c.exprCalls(st.X)
		c.noteLocal(st.Key)
		c.noteLocal(st.Value)
		c.stmt(st.Body)
	case *ast.ForStmt:
		c.stmt(st.Init)
		c.exprCalls(st.Cond)
		c.stmt(st.Post)
		c.stmt(st.Body)
	case *ast.SwitchStmt:
		c.stmt(st.Init)
		c.exprCalls(st.Tag)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.exprCalls(e)
				}
				for _, inner := range cl.Body {
					c.stmt(inner)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, sp := range gd.Specs {
			if vs, ok := sp.(*ast.ValueSpec); ok {
				for _, name := range vs.Names {
					c.noteLocal(name)
				}
				for _, v := range vs.Values {
					c.exprCalls(v)
				}
			}
		}
	default:
		c.pass.Reportf(s.Pos(), "order-sensitive statement inside map iteration; collect the keys, sort them, and iterate the slice (the fleet snapshot idiom)")
	}
}

// assign judges one assignment inside the map-range body.
func (c *detOrderChecker) assign(st *ast.AssignStmt) {
	for _, r := range st.Rhs {
		c.exprCalls(r)
	}
	if st.Tok == token.DEFINE {
		for _, l := range st.Lhs {
			c.noteLocal(l)
		}
		return
	}
	for i, l := range st.Lhs {
		c.target(st, l, i)
	}
}

// target judges one assignment destination.
func (c *detOrderChecker) target(st *ast.AssignStmt, l ast.Expr, i int) {
	if id, ok := l.(*ast.Ident); ok {
		if id.Name == "_" || c.locals[c.pass.TypesInfo.Uses[id]] {
			return
		}
	}
	if ix, ok := l.(*ast.IndexExpr); ok && isMapType(c.pass.TypesInfo.TypeOf(ix.X)) {
		// Keyed map writes commute across the distinct keys of one range.
		return
	}
	if st.Tok == token.ASSIGN {
		// x = append(x, ...) is the collect half of the sorted-key idiom.
		if i < len(st.Rhs) && isSelfAppend(l, st.Rhs[i]) {
			return
		}
		// Idempotent writes (RHS independent of the iteration) are fine;
		// anything fed by the loop variables is last-writer-wins.
		rhs := st.Rhs
		if len(st.Lhs) == len(st.Rhs) {
			rhs = st.Rhs[i : i+1]
		}
		for _, r := range rhs {
			if c.usesLocal(r) {
				c.pass.Reportf(st.TokPos, "assignment to %s takes its value from the map iteration: the survivor is whichever key the randomized order visits last", types.ExprString(l))
				return
			}
		}
		if _, ok := l.(*ast.Ident); ok {
			return
		}
		// Non-ident, non-map destinations (slice index, dereference) written
		// per iteration are order-sensitive even with loop-independent RHS
		// only when indexed by loop state — which usesLocal caught above —
		// so a constant write to a fixed cell is idempotent too.
		return
	}
	// Compound assignment: integer accumulation with commutative operators
	// is order-insensitive; float accumulation is not (rounding makes + and
	// * non-associative), and shifts/division/modulo are not commutative.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		if isFloat(c.pass.TypesInfo.TypeOf(l)) {
			c.pass.Reportf(st.TokPos, "floating-point accumulation across map iteration: rounding makes the result depend on the randomized order; iterate sorted keys")
			return
		}
		return
	default:
		c.pass.Reportf(st.TokPos, "%s inside map iteration is order-sensitive; collect and sort the keys first", st.Tok)
	}
}

// isSelfAppend reports whether rhs is append(lhs, ...).
func isSelfAppend(l, r ast.Expr) bool {
	call, ok := r.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	return types.ExprString(call.Args[0]) == types.ExprString(l)
}

// usesLocal reports whether e reads any loop variable or body-local object.
func (c *detOrderChecker) usesLocal(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.locals[c.pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// exprCalls flags every non-builtin, non-conversion call inside e: a call's
// effects (encoding, I/O, telemetry) occur once per iteration, in map order.
func (c *detOrderChecker) exprCalls(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				if _, builtin := obj.(*types.Builtin); builtin && detOrderBuiltins[id.Name] {
					return true
				}
			}
		}
		c.pass.Reportf(call.Pos(), "call to %s inside map iteration: its effects happen in the map's randomized order; collect and sort the keys first", types.ExprString(call.Fun))
		return true
	})
}
