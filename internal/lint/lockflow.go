package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// lockFlowScope is where the repo actually holds mutexes on hot paths: the
// sharded fleet engine and the wire server. Both use short critical sections
// by design (ROADMAP: "no blocking work under shard locks"); a channel send,
// a network write, or a whole-fleet Snapshot under a shard mutex turns a
// bounded batch tick into an unbounded stall for every stream on the shard.
var lockFlowScope = []string{
	"repro/internal/fleet",
	"repro/internal/wire",
}

// LockFlow checks two properties of every function in fleet/wire, each judged
// per function body (closures are judged independently — a lock taken in a
// goroutine body is that body's obligation, not its parent's):
//
//  1. Balance: a mutex locked in a body is unlocked on every return path,
//     either explicitly before the return or by a defer. A cross-function
//     hand-off (locking in one method, unlocking in another, as the fleet's
//     per-stream token does) is a real design and must carry an
//     //awdlint:allow lockflow -- <reason> directive at the return.
//  2. No blocking work under a lock: while any mutex is held and not yet
//     released, the body must not send on a channel, perform network I/O,
//     or call Snapshot/Restore. Quiesce barriers that encode under a lock
//     on purpose (the wire server's checkpoint) are allow-listed.
var LockFlow = &analysis.Analyzer{
	Name:  "lockflow",
	Doc:   "every Lock needs an Unlock on all return paths, and no channel send, network I/O, or Snapshot/Restore may run while a fleet/wire mutex is held",
	Match: matchAny(lockFlowScope),
	Run:   runLockFlow,
}

func runLockFlow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockFlow(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockFlow(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// lockState tracks, for one function body, which mutexes are currently held
// (keyed by the receiver expression's source text) and which of those have a
// pending deferred release. A defer-released lock is still "held" for the
// blocking-work rule — the critical section extends to function exit — but
// satisfied for the balance rule.
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (ls *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range ls.held {
		c.held[k] = v
	}
	for k := range ls.deferred {
		c.deferred[k] = true
	}
	return c
}

// leaked returns the receivers still locked with no deferred release, in a
// deterministic order.
func (ls *lockState) leaked() []string {
	var out []string
	for recv := range ls.held {
		if !ls.deferred[recv] {
			out = append(out, recv)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func checkLockFlow(pass *analysis.Pass, body *ast.BlockStmt) {
	ls := newLockState()
	walkLockFlow(pass, body, ls)
	// A body whose last statement is a return already reported there; the
	// closing brace is unreachable.
	if n := len(body.List); n > 0 {
		if _, ok := body.List[n-1].(*ast.ReturnStmt); ok {
			return
		}
	}
	for _, recv := range ls.leaked() {
		pass.Reportf(body.Rbrace, "function ends with %s still locked: unlock on every path or defer the unlock", recv)
	}
}

// walkLockFlow interprets stmts linearly, forking the state at branches.
// Branch joins are approximated optimistically (the fall-through state is the
// pre-branch state): a lock acquired inside one arm of an if and leaked past
// its return is caught inside that arm, which is where the fix belongs.
func walkLockFlow(pass *analysis.Pass, s ast.Stmt, ls *lockState) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			walkLockFlow(pass, inner, ls)
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, op, ok := lockOp(pass, call); ok {
				applyLockOp(ls, recv, op, call.Pos())
				return
			}
		}
		checkUnderLock(pass, st, ls)
	case *ast.DeferStmt:
		// defer mu.Unlock(), or defer func(){ ...; mu.Unlock(); ... }().
		if recv, op, ok := lockOp(pass, st.Call); ok && op == "Unlock" {
			ls.deferred[recv] = true
			return
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			for recv := range deferredUnlocks(pass, fl.Body) {
				ls.deferred[recv] = true
			}
		}
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		checkUnderLock(pass, s, ls)
	case *ast.ReturnStmt:
		checkUnderLock(pass, st, ls)
		for _, recv := range ls.leaked() {
			pass.Reportf(st.Return, "return with %s still locked: unlock before returning or defer the unlock (cross-function hand-offs need //awdlint:allow lockflow -- <reason>)", recv)
		}
	case *ast.IfStmt:
		walkLockFlow(pass, st.Init, ls)
		checkUnderLock(pass, st.Cond, ls)
		walkLockFlow(pass, st.Body, ls.clone())
		if st.Else != nil {
			walkLockFlow(pass, st.Else, ls.clone())
		}
	case *ast.ForStmt:
		walkLockFlow(pass, st.Init, ls)
		checkUnderLock(pass, st.Cond, ls)
		inner := ls.clone()
		walkLockFlow(pass, st.Body, inner)
		walkLockFlow(pass, st.Post, inner)
	case *ast.RangeStmt:
		checkUnderLock(pass, st.X, ls)
		walkLockFlow(pass, st.Body, ls.clone())
	case *ast.SwitchStmt:
		walkLockFlow(pass, st.Init, ls)
		checkUnderLock(pass, st.Tag, ls)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				arm := ls.clone()
				for _, inner := range cl.Body {
					walkLockFlow(pass, inner, arm)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		walkLockFlow(pass, st.Init, ls)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				arm := ls.clone()
				for _, inner := range cl.Body {
					walkLockFlow(pass, inner, arm)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				arm := ls.clone()
				walkLockFlow(pass, cl.Comm, arm)
				for _, inner := range cl.Body {
					walkLockFlow(pass, inner, arm)
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs without this function's locks and is judged
		// as its own body by runLockFlow's Inspect; only the call's arguments
		// evaluate here, under the lock.
		for _, a := range st.Call.Args {
			checkUnderLock(pass, a, ls)
		}
	case *ast.LabeledStmt:
		walkLockFlow(pass, st.Stmt, ls)
	default:
		checkUnderLock(pass, s, ls)
	}
}

// applyLockOp mutates the lock state for one mu.Lock()/mu.Unlock() call.
func applyLockOp(ls *lockState, recv, op string, pos token.Pos) {
	switch op {
	case "Lock":
		ls.held[recv] = pos
	case "Unlock":
		delete(ls.held, recv)
		delete(ls.deferred, recv)
	}
}

// lockOp reports whether call is recv.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex (or a type embedding one), returning the receiver's
// source text and the op normalized to Lock/Unlock.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	var norm string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		norm = "Lock"
	case "Unlock", "RUnlock":
		norm = "Unlock"
	default:
		return "", "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), norm, true
}

// deferredUnlocks collects the receivers unlocked anywhere inside a deferred
// closure body (the fleet snapshot releases all stream tokens this way).
func deferredUnlocks(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, op, ok := lockOp(pass, call); ok && op == "Unlock" {
				out[recv] = true
			}
		}
		return true
	})
	return out
}

// blockedCalls are methods that must not run while a fleet/wire mutex is
// held: whole-tree encodes/decodes hold the lock for O(fleet) work.
var blockedCalls = map[string]bool{"Snapshot": true, "Restore": true}

// netPkgs are packages whose calls perform (or can perform) network I/O.
var netPkgs = map[string]bool{"net": true, "net/http": true}

// checkUnderLock scans one statement or expression for blocking work while
// ls.held is non-empty. FuncLit bodies are not descended: a closure's body
// executes when called, not where written, and is judged separately.
func checkUnderLock(pass *analysis.Pass, n ast.Node, ls *lockState) {
	if n == nil || len(ls.held) == 0 {
		return
	}
	lockNames := ls.leakedOrHeld()
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(x.Arrow, "channel send while %s is held: a blocked receiver stalls every caller waiting on the lock; buffer the value and send after unlocking", lockNames)
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if _, _, isLock := lockOp(pass, x); isLock {
					return true
				}
				if blockedCalls[sel.Sel.Name] {
					pass.Reportf(x.Pos(), "%s called while %s is held: whole-tree encode/decode under a shard or engine mutex stalls every stream behind it (quiesce barriers need //awdlint:allow lockflow -- <reason>)", sel.Sel.Name, lockNames)
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && netPkgs[pn.Imported().Path()] {
						pass.Reportf(x.Pos(), "network call %s.%s while %s is held: I/O latency becomes lock hold time", id.Name, sel.Sel.Name, lockNames)
						return true
					}
				}
				// Method calls on net types (conn.Write, rw.WriteString on a
				// net.Conn) — look at the receiver's type package.
				if tv, ok := pass.TypesInfo.Types[sel.X]; ok && tv.IsValue() {
					if isNetType(tv.Type) {
						pass.Reportf(x.Pos(), "network I/O (%s.%s) while %s is held: I/O latency becomes lock hold time", types.ExprString(sel.X), sel.Sel.Name, lockNames)
						return true
					}
				}
			}
		}
		return true
	})
}

// leakedOrHeld renders the held set for diagnostics, deterministically.
func (ls *lockState) leakedOrHeld() string {
	var names []string
	for recv := range ls.held {
		names = append(names, recv)
	}
	sortStrings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// isNetType reports whether t (or its pointee) is declared in package net.
func isNetType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return netPkgs[n.Obj().Pkg().Path()]
}
