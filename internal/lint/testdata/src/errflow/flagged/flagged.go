// Package errflow is awdlint testdata: every dropped error from the
// guarded packages (repro/internal/mat, repro/internal/lti) must be
// flagged.
package errflow

import (
	"repro/internal/lti"
	"repro/internal/mat"
)

func dropStatement(a *mat.Dense, b mat.Vec) {
	mat.Solve(a, b) // want `result of mat.Solve dropped`
}

func blankAssign(a *mat.Dense, b mat.Vec) mat.Vec {
	v, _ := mat.Solve(a, b) // want `error from mat.Solve assigned to blank`
	return v
}

func dropInGoroutine(a *mat.Dense, b mat.Vec) {
	go mat.Solve(a, b) // want `go statement discards the error from mat.Solve`
}

func dropInDefer(a *mat.Dense, b mat.Vec) {
	defer mat.Solve(a, b) // want `defer discards the error from mat.Solve`
}

func dropConstructor() {
	lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(0)), nil, 1) // want `result of lti.New dropped`
}

func suppressed(a *mat.Dense) {
	//awdlint:allow errflow -- testdata: invertibility established by the caller
	mat.Inverse(a)
}
