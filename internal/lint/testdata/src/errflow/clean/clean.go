// Package errflow is awdlint testdata: handled or propagated errors and
// error-free calls — zero diagnostics expected.
package errflow

import (
	"fmt"

	"repro/internal/mat"
)

func handled(a *mat.Dense, b mat.Vec) (mat.Vec, error) {
	v, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}
	return v, nil
}

func errorKept(a *mat.Dense, b mat.Vec) error {
	_, err := mat.Solve(a, b)
	return err
}

func noErrorResult(a *mat.Dense) *mat.Dense {
	return a.T()
}

func unguardedPackage() {
	fmt.Println("errors from packages outside mat/lti are not errflow's concern")
}
