// Package detorder is awdlint testdata: every order-sensitive construct
// inside a map range below must be flagged exactly where the wants say.
package detorder

func sink(k string, v int) {}

// Calls run once per iteration, in randomized order.
func callInLoop(m map[string]int) {
	for k, v := range m {
		sink(k, v) // want "call to sink inside map iteration"
	}
}

// Sends deliver in randomized order.
func sendInLoop(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside map iteration"
	}
}

// Returning from inside the range picks a random element.
func returnInLoop(m map[string]int) string {
	for k := range m {
		return k // want "return inside map iteration selects an element in randomized map order"
	}
	return ""
}

// Float accumulation is non-associative: the sum depends on visit order.
func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation across map iteration"
	}
	return sum
}

// Plain assignment keeps whichever key the randomized order visits last.
func lastWriter(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want "assignment to last takes its value from the map iteration"
	}
	return last
}

// Division is neither commutative nor associative.
func divAccum(m map[string]int) int {
	q := 1 << 20
	for _, v := range m {
		q /= v // want "/= inside map iteration is order-sensitive"
	}
	return q
}

// The allow directive covers its own line and the next.
func suppressed(m map[string]int) {
	for k, v := range m {
		//awdlint:allow detorder -- testdata: sink is order-insensitive by construction here
		sink(k, v)
	}
}

// A reasonless directive is invalid and must not suppress.
func reasonlessDirectiveDoesNotSuppress(m map[string]int) {
	for k, v := range m {
		//awdlint:allow detorder
		sink(k, v) // want "call to sink inside map iteration"
	}
}
