// Package detorder (clean) holds the order-insensitive map-iteration idioms
// the detorder analyzer must stay silent on.
package detorder

import "sort"

func use(k string, v int) {}

// The sorted-key idiom the fleet snapshot uses: the range only collects,
// the real work iterates the sorted slice.
func sortedKeys(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		use(k, m[k])
	}
}

// Keyed map writes commute across the distinct keys of one range.
func mapCopy(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Integer counters and commutative folds are order-insensitive.
func counters(m map[string]int) (n, total, mask int) {
	for _, v := range m {
		n++
		total += v
		mask |= v
	}
	return n, total, mask
}

// Locals defined inside the body die with the iteration.
func bodyLocals(m map[string]int, dst map[string]int) {
	for k, v := range m {
		doubled := v * 2
		dst[k] = doubled
	}
}

// delete and the other builtin calls are allowed.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// A bare return (no results) selects nothing; break/continue are control
// only.
func existence(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			continue
		}
		found = true
		break
	}
	return found
}
