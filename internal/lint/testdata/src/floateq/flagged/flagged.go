// Package floateq is awdlint testdata: every comparison below must be
// flagged exactly where the want comments say.
package floateq

func exactEq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func exactNe(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

func nanIdiom(x float64) bool {
	return x != x // want "self-comparison of floating-point expression x"
}

func mixedOperands(a float64, b int) bool {
	return a == float64(b) // want "floating-point == comparison"
}

func float32Too(a, b float32) bool {
	return a == b // want "floating-point == comparison"
}

func suppressed(a float64) bool {
	//awdlint:allow floateq -- testdata: sentinel must be bit-exact
	return a == 0
}

func reasonlessDirectiveDoesNotSuppress(a float64) bool {
	//awdlint:allow floateq
	return a == 1 // want "floating-point == comparison"
}
