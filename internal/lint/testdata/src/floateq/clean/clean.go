// Package floateq is awdlint testdata: nothing in this package may be
// flagged (the test asserts zero diagnostics).
package floateq

import "math"

const tol = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= tol }

func approxZero(x float64) bool { return math.Abs(x) <= tol }

func ints(a, b int) bool { return a == b }

func strings(a, b string) bool { return a != b }

func constantFold() bool { return 1.5 == 3.0/2.0 }

func ordering(a, b float64) bool { return a < b || a > b }
