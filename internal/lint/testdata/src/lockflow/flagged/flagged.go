// Package lockflow is awdlint testdata: every lock-discipline violation
// below must be flagged exactly where the wants say.
package lockflow

import (
	"net"
	"sync"
)

type engine struct {
	mu      sync.Mutex
	pending []int
}

type codec struct{}

func (codec) Snapshot() {}
func (codec) Restore()  {}

// A return path that skips the unlock leaks the lock.
func leakOnEarlyReturn(e *engine, stop bool) {
	e.mu.Lock()
	if stop {
		return // want "return with e.mu still locked"
	}
	e.mu.Unlock()
}

// A body that simply never unlocks is reported at its closing brace.
func leakToEnd(e *engine) {
	e.mu.Lock()
	e.pending = nil
} // want "function ends with e.mu still locked"

// A channel send under the lock turns a slow receiver into lock hold time.
func sendUnderLock(e *engine, ch chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ch <- len(e.pending) // want "channel send while e.mu is held"
}

// Whole-tree encode under a mutex stalls everything behind it.
func snapshotUnderLock(e *engine, c codec) {
	e.mu.Lock()
	c.Snapshot() // want "Snapshot called while e.mu is held"
	e.mu.Unlock()
}

// So does decode.
func restoreUnderLock(e *engine, c codec) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c.Restore() // want "Restore called while e.mu is held"
}

// Network I/O latency becomes lock hold time.
func dialUnderLock(e *engine) (net.Conn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return net.Dial("tcp", "localhost:0") // want `network call net.Dial while e.mu is held`
}

// Cross-function hand-offs are a real design, but must be declared.
func handOff(e *engine) {
	e.mu.Lock()
	//awdlint:allow lockflow -- testdata: token hand-off, the worker releases it
	return
}

// RLock leaks are the same defect as Lock leaks.
func rlockLeak(rw *sync.RWMutex, stop bool) {
	rw.RLock()
	if stop {
		return // want `return with rw still locked`
	}
	rw.RUnlock()
}
