// Package lockflow (clean) holds the lock disciplines the lockflow analyzer
// must stay silent on.
package lockflow

import "sync"

type engine struct {
	mu      sync.Mutex
	tokens  []*sync.Mutex
	pending []int
}

type codec struct{}

func (codec) Snapshot() {}

// The canonical shape: defer pairs the unlock with every return path.
func deferred(e *engine, stop bool) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if stop {
		return 0
	}
	return len(e.pending)
}

// Explicit unlocks on every path balance too.
func explicit(e *engine, stop bool) int {
	e.mu.Lock()
	if stop {
		e.mu.Unlock()
		return 0
	}
	n := len(e.pending)
	e.mu.Unlock()
	return n
}

// Copy under the lock, do the blocking work after releasing it.
func sendAfterUnlock(e *engine, ch chan int) {
	e.mu.Lock()
	n := len(e.pending)
	e.mu.Unlock()
	ch <- n
}

// Snapshot outside the critical section is the required shape.
func snapshotAfterUnlock(e *engine, c codec) {
	e.mu.Lock()
	e.pending = e.pending[:0]
	e.mu.Unlock()
	c.Snapshot()
}

// A deferred closure that releases a batch of locks counts as the release
// (the fleet snapshot's quiesce uses this shape).
func batchRelease(e *engine) {
	for _, tok := range e.tokens {
		tok.Lock()
	}
	defer func() {
		for _, tok := range e.tokens {
			tok.Unlock()
		}
	}()
	e.pending = e.pending[:0]
}

// A goroutine body runs without the spawner's locks; its send is not
// charged to them.
func spawnWorker(e *engine, ch chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// The empty critical section used as a drain barrier is balanced.
func drainBarrier(rw *sync.RWMutex) {
	rw.Lock()
	rw.Unlock()
}
