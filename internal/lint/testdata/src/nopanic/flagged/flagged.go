// Package nopanic is awdlint testdata for the hot-path panic rule: panics
// outside constructors/validation must be flagged.
package nopanic

import "errors"

var errNegative = errors.New("negative")

func Step(x int) (int, error) {
	if x < 0 {
		panic("boom") // want "panic on the detection hot path"
	}
	return x, nil
}

func observe() {
	defer func() { _ = recover() }()
	panic(errNegative) // want "panic on the detection hot path"
}

func New(x int) int {
	if x < 0 {
		panic("constructors may panic on programmer error")
	}
	return x
}

func MustStep(x int) int {
	v, err := Step(x)
	if err != nil {
		panic(err)
	}
	return v
}

func validateInput(x int) {
	if x < 0 {
		panic("validation helpers may panic")
	}
}

func shadowed() {
	panic := func(msg string) { _ = msg }
	panic("not the builtin")
}

func suppressed() {
	//awdlint:allow nopanic -- testdata: state corruption is unrecoverable here
	panic("suppressed")
}
