// Package nopanic is awdlint testdata: error returns on the hot path and
// constructor-time panics are both acceptable — zero diagnostics expected.
package nopanic

import "fmt"

type Counter struct{ n int }

func NewCounter(start int) *Counter {
	if start < 0 {
		panic(fmt.Sprintf("nopanic: negative start %d", start))
	}
	return &Counter{n: start}
}

func (c *Counter) Step(delta int) (int, error) {
	if delta < 0 {
		return 0, fmt.Errorf("nopanic: negative delta %d", delta)
	}
	c.n += delta
	return c.n, nil
}
