// Package statepair (clean) holds the snapshot symmetries the statepair
// analyzer must stay silent on.
package statepair

import "repro/internal/state"

const roundVersion = 1

// A complete pair: Snapshot and Restore declared on the same type, one
// Begin and one Expect on the same section tag.
type Round struct {
	steps uint64
}

func (r *Round) Snapshot(enc *state.Encoder) error {
	enc.Begin(state.TagEWMA, roundVersion)
	enc.U64(r.steps)
	return nil
}

func (r *Round) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagEWMA, roundVersion)
	r.steps = dec.U64()
	return dec.Err()
}

// Read-side snapshots (the obs registry's shape) take no encoder and are
// outside the container format.
type gauges struct{}

func (gauges) Snapshot() map[string]float64 { return nil }

// Name-keyed restores (the wire client's shape) take no decoder and are
// outside it too.
type client struct{}

func (client) Restore(name string) error { return nil }
