// Package statepair is awdlint testdata: every snapshot-symmetry violation
// below must be flagged exactly where the wants say.
package statepair

import "repro/internal/state"

// A snapshot no code can restore is dead bytes.
type OneWayOut struct{}

func (OneWayOut) Snapshot(enc *state.Encoder) error { return nil } // want `type OneWayOut declares Snapshot\(\*state.Encoder\) but no Restore\(\*state.Decoder\)`

// A restore with no producer cannot be differentially tested.
type OneWayIn struct{}

func (*OneWayIn) Restore(dec *state.Decoder) error { return nil } // want `type OneWayIn declares Restore\(\*state.Decoder\) but no Snapshot\(\*state.Encoder\)`

// Paired halves are fine even with extra parameters (the fleet engine's
// Restore takes a MakeStream too) — no diagnostics for this type.
type Paired struct{}

func (*Paired) Snapshot(enc *state.Encoder) error             { return nil }
func (*Paired) Restore(dec *state.Decoder, strict bool) error { return nil }

// Two Begins on one tag: two components claim the same section.
func encodeBoth(a, b *Paired, enc *state.Encoder) {
	enc.Begin(state.TagLogger, 1)
	enc.Begin(state.TagLogger, 1) // want `duplicate Begin\(state.TagLogger\)`
}

func decodeOne(dec *state.Decoder) {
	dec.Expect(state.TagLogger, 1)
}

// Encoded but never validated: the section cannot be restored.
func encodeOnly(enc *state.Encoder) {
	enc.Begin(state.TagWindow, 1) // want `state.TagWindow is encoded \(Begin\) but never validated \(Expect\)`
}

// Validated but never encoded: the restore path has no producer.
func decodeOnly(dec *state.Decoder) {
	dec.Expect(state.TagFixed, 1) // want `state.TagFixed is validated \(Expect\) but never encoded \(Begin\)`
}

// Literal tags defeat the pairing check and must be named constants.
func literalTag(enc *state.Encoder) {
	enc.Begin(0x51, 1) // want `Begin tag must be a state.Tag\* constant`
}

// Methods named Snapshot/Restore without the codec types are not part of
// the container format: no diagnostics.
type readSide struct{}

func (readSide) Snapshot() []int           { return nil }
func (readSide) Restore(name string) error { return nil }

// The allow directive covers the declaration it precedes.
type handRolled struct{}

//awdlint:allow statepair -- testdata: restore half lives in a sibling tool by design
func (handRolled) Snapshot(enc *state.Encoder) error { return nil }
