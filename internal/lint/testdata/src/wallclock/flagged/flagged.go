// Package wallclock is awdlint testdata: every ambient time or randomness
// read below must be flagged exactly where the wants say.
package wallclock

import (
	"math/rand" // want "import of math/rand in a decision/codec path"
	"time"
)

// Reading the wall clock on a decision path breaks replay.
func decideNow() int64 {
	return time.Now().UnixNano() // want "time.Now in a decision/codec path"
}

// Elapsed-time branching is still a wall-clock read.
func timedOut(start time.Time, budget time.Duration) bool {
	return time.Since(start) > budget // want "time.Since in a decision/codec path"
}

// So is the symmetric form.
func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time.Until in a decision/codec path"
}

// Ambient randomness is flagged at the use too (the import was already).
func jitter(n int) int {
	return rand.Intn(n) // want "rand.Intn in a decision/codec path"
}

// Telemetry sites carry an explicit, reasoned exemption.
func observedLatency(observe func(time.Duration)) {
	//awdlint:allow wallclock -- testdata: latency telemetry only, never feeds a decision
	start := time.Now()
	//awdlint:allow wallclock -- testdata: closes the measurement above
	observe(time.Since(start))
}

// A directive naming a different analyzer must not suppress.
func wrongDirective() int64 {
	//awdlint:allow floateq -- testdata: wrong analyzer name
	return time.Now().UnixNano() // want "time.Now in a decision/codec path"
}
