// Package wallclock (clean) holds the time-as-data idioms the wallclock
// analyzer must stay silent on: timestamps arrive as parameters, clocks are
// injected, and the time package's pure values remain free to use.
package wallclock

import "time"

// A clock is injected as data; calling it is the caller's declaration that
// this component may see time.
type sampler struct {
	now func() time.Time
}

func (s *sampler) stamp() time.Time { return s.now() }

// Durations, conversions, and constants are pure values.
func budgetMicros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// Elapsed time computed from two supplied instants reads no clock.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// Reconstructing an instant from recorded data is replay-safe.
func fromRecord(sec, nsec int64) time.Time {
	return time.Unix(sec, nsec)
}
