// Package obs is awdlint testdata standing in for the real telemetry
// package: the harness type-checks it under the import path
// repro/internal/obs, so the analyzer applies its in-package rule — every
// *Observer method touching receiver state must open with the nil guard.
package obs

type Registry struct{ steps int }

// Inc is a method on a non-Observer type: exempt from the rule.
func (r *Registry) Inc() { r.steps++ }

type Observer struct {
	reg *Registry
	on  bool
}

func (o *Observer) Unguarded() *Registry { // want `uses receiver state but does not start with`
	return o.reg
}

func (o *Observer) FieldGuardIsNotReceiverGuard() bool { // want `uses receiver state but does not start with`
	if o.reg == nil {
		return false
	}
	return o.on
}

func (o *Observer) Guarded() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

func (o *Observer) GuardedFlipped() bool {
	if nil == o {
		return false
	}
	return o.on
}

func (o *Observer) Stateless() int { return 42 }
