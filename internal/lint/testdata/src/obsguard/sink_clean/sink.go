// Package sinkuse is awdlint testdata: every obs.Sink call is nil-guarded
// and concrete sink types are exempt — zero diagnostics expected.
package sinkuse

import "repro/internal/obs"

type recorder struct {
	sink obs.Sink
	ring *obs.RingSink
}

func (r *recorder) emit(ev obs.StepEvent) {
	if r.sink != nil {
		r.sink.Emit(ev)
	}
}

func (r *recorder) emitConcrete(ev obs.StepEvent) {
	// Calls on concrete sink types never dispatch through a nil interface.
	obs.NopSink{}.Emit(ev)
	r.ring.Emit(ev)
}
