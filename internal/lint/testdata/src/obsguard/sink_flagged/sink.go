// Package sinkuse is awdlint testdata for the out-of-package rule: method
// calls on obs.Sink values (the real repro/internal/obs interface) need an
// enclosing nil guard on the same expression.
package sinkuse

import "repro/internal/obs"

type pipeline struct {
	sink obs.Sink
}

func (p *pipeline) unguarded(ev obs.StepEvent) {
	p.sink.Emit(ev) // want `call to p.sink.Emit on an obs.Sink value`
}

func (p *pipeline) guarded(ev obs.StepEvent) {
	if p.sink != nil {
		p.sink.Emit(ev)
	}
}

func (p *pipeline) conjunction(ev obs.StepEvent, enabled bool) {
	if enabled && p.sink != nil {
		p.sink.Emit(ev)
	}
}

func (p *pipeline) guardOnDifferentValue(ev obs.StepEvent, other obs.Sink) {
	if other != nil {
		p.sink.Emit(ev) // want `call to p.sink.Emit on an obs.Sink value`
	}
}

func (p *pipeline) elseBranchIsNotGuarded(ev obs.StepEvent) {
	if p.sink != nil {
		p.sink.Emit(ev)
	} else {
		p.sink.Emit(ev) // want `call to p.sink.Emit on an obs.Sink value`
	}
}
