// Package obs is awdlint testdata type-checked as repro/internal/obs:
// every state-touching method is properly guarded — zero diagnostics.
package obs

type Registry struct{ steps int }

type Observer struct {
	reg *Registry
}

func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

func (o *Observer) Enabled() bool {
	return o != nil
}
