package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// statePkgPath is the snapshot codec package whose Encoder/Decoder and Tag*
// constants define the on-disk container format.
const statePkgPath = "repro/internal/state"

// StatePair enforces the two symmetries the snapshot container format rests
// on, per package:
//
//  1. Every type that declares Snapshot(*state.Encoder) also declares
//     Restore(*state.Decoder), and vice versa. A snapshot no code can
//     restore is dead bytes; a restore with no producer is untestable.
//  2. Every state.Tag* section constant is used by exactly one
//     Encoder.Begin / Decoder.Expect pair. Two Begins on one tag mean two
//     components claim the same section — the decode side will validate
//     whichever got encoded and silently answer for the wrong component,
//     which is exactly how a restored deadline anchor ends up vouching for
//     the wrong plant. The tag argument must be a state.Tag* constant, not
//     a literal, so this pairing stays statically checkable.
//
// Methods named Snapshot/Restore that do not take the codec types (the obs
// registry's read-side Snapshot, the wire client's Restore(name)) are not
// part of the container format and are ignored.
var StatePair = &analysis.Analyzer{
	Name:  "statepair",
	Doc:   "every Snapshot(*state.Encoder) needs a matching Restore(*state.Decoder), and each state.Tag* constant must be used by exactly one Begin/Expect pair per package",
	Match: matchPrefix("repro/"),
	Run:   runStatePair,
}

// codecHalf records where one half of a Snapshot/Restore pair was declared.
type codecHalf struct {
	snapshot, restore token.Pos
}

// tagUse records every Begin/Expect call site for one state.Tag* constant.
type tagUse struct {
	begins, expects []token.Pos
}

func runStatePair(pass *analysis.Pass) error {
	pairs := map[string]*codecHalf{}
	tags := map[string]*tagUse{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			recvName := receiverTypeName(fn.Recv.List[0].Type)
			if recvName == "" {
				continue
			}
			switch fn.Name.Name {
			case "Snapshot":
				if hasCodecParam(pass, fn, "Encoder") {
					half(pairs, recvName).snapshot = fn.Name.Pos()
				}
			case "Restore":
				if hasCodecParam(pass, fn, "Decoder") {
					half(pairs, recvName).restore = fn.Name.Pos()
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var isBegin bool
			switch sel.Sel.Name {
			case "Begin":
				isBegin = true
			case "Expect":
			default:
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != statePkgPath {
				return true
			}
			name, ok := tagConstName(pass, call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "%s tag must be a state.Tag* constant, not %s: literal tags defeat the one-Begin-one-Expect pairing check", sel.Sel.Name, types.ExprString(call.Args[0]))
				return true
			}
			u := tags[name]
			if u == nil {
				u = &tagUse{}
				tags[name] = u
			}
			if isBegin {
				u.begins = append(u.begins, call.Pos())
			} else {
				u.expects = append(u.expects, call.Pos())
			}
			return true
		})
	}

	names := make([]string, 0, len(pairs))
	for name := range pairs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := pairs[name]
		switch {
		case p.snapshot != token.NoPos && p.restore == token.NoPos:
			pass.Reportf(p.snapshot, "type %s declares Snapshot(*state.Encoder) but no Restore(*state.Decoder): a snapshot no code can restore is dead bytes", name)
		case p.restore != token.NoPos && p.snapshot == token.NoPos:
			pass.Reportf(p.restore, "type %s declares Restore(*state.Decoder) but no Snapshot(*state.Encoder): a restore path with no producer cannot be differentially tested", name)
		}
	}

	tagNames := make([]string, 0, len(tags))
	for name := range tags {
		tagNames = append(tagNames, name)
	}
	sort.Strings(tagNames)
	for _, name := range tagNames {
		u := tags[name]
		for _, pos := range u.begins[min(1, len(u.begins)):] {
			pass.Reportf(pos, "duplicate Begin(state.%s): two components claim the same section tag, so the decode side will answer for whichever encoded first", name)
		}
		for _, pos := range u.expects[min(1, len(u.expects)):] {
			pass.Reportf(pos, "duplicate Expect(state.%s): two components validate the same section tag", name)
		}
		if len(u.begins) > 0 && len(u.expects) == 0 {
			pass.Reportf(u.begins[0], "state.%s is encoded (Begin) but never validated (Expect) in this package: the section cannot be restored", name)
		}
		if len(u.expects) > 0 && len(u.begins) == 0 {
			pass.Reportf(u.expects[0], "state.%s is validated (Expect) but never encoded (Begin) in this package: the restore path has no producer", name)
		}
	}
	return nil
}

func half(pairs map[string]*codecHalf, name string) *codecHalf {
	p := pairs[name]
	if p == nil {
		p = &codecHalf{}
		pairs[name] = p
	}
	return p
}

// receiverTypeName unwraps *T, T, and generic T[P] receivers to T's name.
func receiverTypeName(t ast.Expr) string {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// hasCodecParam reports whether fn takes a *state.<name> parameter.
func hasCodecParam(pass *analysis.Pass, fn *ast.FuncDecl, name string) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isPtrToNamed(pass.TypesInfo.TypeOf(field.Type), statePkgPath, name) {
			return true
		}
	}
	return false
}

// tagConstName resolves a Begin/Expect tag argument to the state.Tag*
// constant it names, if it is one.
func tagConstName(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != statePkgPath {
		return "", false
	}
	if len(c.Name()) <= 3 || c.Name()[:3] != "Tag" {
		return "", false
	}
	return c.Name(), true
}
