package lint

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Suite returns every awdlint analyzer in deterministic (alphabetical) order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetOrder, ErrFlow, FloatEq, LockFlow,
		NoPanic, ObsGuard, StatePair, WallClock,
	}
}

// ByName resolves a subset of the suite; unknown names are an error.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return Suite(), nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range Suite() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run loads the packages matching patterns (rooted at dir) and applies
// every analyzer whose Match accepts the package. Diagnostics are written
// to w in file:line:col order; the count of findings is returned.
func Run(w io.Writer, dir string, analyzers []*analysis.Analyzer, patterns ...string) (int, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		var ds []analysis.Diagnostic
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.PkgPath) {
				continue
			}
			pass := analysis.NewPass(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo)
			if err := a.Run(pass); err != nil {
				return total, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			ds = append(ds, pass.Diagnostics()...)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
		for _, d := range ds {
			fmt.Fprintln(w, d.Format(pkg.Fset))
		}
		total += len(ds)
	}
	return total, nil
}
