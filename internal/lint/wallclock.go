package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// wallClockScope covers every package whose outputs must replay bit-identically
// from a recorded sample stream: the detector decision path (core, detect,
// estim, deadline, reach), the structured logger whose records are part of the
// evidence trail, the snapshot codec, and the fleet engine that batches them.
// Telemetry in these packages may still read wall time, but each such site
// must carry an explicit //awdlint:allow wallclock -- <reason> directive so
// the exemption is visible in review and greppable later.
var wallClockScope = []string{
	"repro/internal/core",
	"repro/internal/detect",
	"repro/internal/logger",
	"repro/internal/estim",
	"repro/internal/deadline",
	"repro/internal/reach",
	"repro/internal/state",
	"repro/internal/fleet",
}

// WallClock forbids ambient wall-clock reads (time.Now, time.Since,
// time.Until) and ambient randomness (math/rand, math/rand/v2) in decision and
// codec paths. A detector whose verdicts are a pure function of the sample
// stream is the premise of the paper's guarantees and of this repo's
// restore==never-crashed differential tests; a single time.Now on the
// decision path silently voids both. Code that needs time takes it as data
// (a sample timestamp, an injected clock); code that needs randomness takes
// a seeded source as a parameter.
var WallClock = &analysis.Analyzer{
	Name:  "wallclock",
	Doc:   "forbids time.Now/Since/Until and math/rand in decision and codec paths; inject a clock or seeded source, or allow-list telemetry with a reason",
	Match: matchAny(wallClockScope),
	Run:   runWallClock,
}

// wallClockFns are the ambient time readings; other time package members
// (Duration, Time, Microsecond, ...) are pure values and remain free to use.
var wallClockFns = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a decision/codec path: ambient randomness breaks replay determinism; take a seeded source as a parameter", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFns[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s in a decision/codec path: wall-clock readings break replay and restore determinism; inject a clock, or annotate telemetry with //awdlint:allow wallclock -- <reason>", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(), "%s.%s in a decision/codec path: ambient randomness breaks replay determinism; take a seeded source as a parameter", id.Name, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
