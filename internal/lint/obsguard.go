package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

const obsPkgPath = "repro/internal/obs"

// ObsGuard enforces the zero-cost-when-off telemetry invariant from PR 1:
//
//   - inside internal/obs, every method on *Observer that touches receiver
//     state must open with the `if o == nil` guard — that guard IS the
//     nil-safe wrapper the rest of the pipeline relies on;
//   - outside internal/obs, a method call on an obs.Sink value must be
//     nil-guarded (calling a method on a nil interface panics), unless the
//     value flows straight out of an obs constructor.
//
// Together the two rules keep `Observer == nil` a valid, free "telemetry
// off" state for the hot path.
var ObsGuard = &analysis.Analyzer{
	Name:  "obsguard",
	Doc:   "requires nil-receiver guards on obs.Observer methods and nil checks around obs.Sink calls outside the wrapper",
	Match: matchPrefix("repro/"),
	Run:   runObsGuard,
}

func runObsGuard(pass *analysis.Pass) error {
	if pass.Pkg.Path() == obsPkgPath {
		runObserverReceiverGuards(pass)
		return nil
	}
	runSinkCallGuards(pass)
	return nil
}

// runObserverReceiverGuards checks rule one: *Observer methods that use
// receiver state must begin with the nil-receiver guard.
func runObserverReceiverGuards(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := fd.Recv.List[0]
			if !isPtrToNamed(pass.TypesInfo.TypeOf(recv.Type), obsPkgPath, "Observer") {
				continue
			}
			if len(recv.Names) == 0 {
				continue // receiver unused, nothing to deref
			}
			recvObj := pass.TypesInfo.Defs[recv.Names[0]]
			if recvObj == nil || !usesReceiverState(pass, fd.Body, recvObj) {
				continue
			}
			if !startsWithNilGuard(pass, fd.Body, recvObj) {
				pass.Reportf(fd.Name.Pos(), "method (*Observer).%s uses receiver state but does not start with the `if %s == nil` guard; a nil Observer must stay a free no-op", fd.Name.Name, recvObj.Name())
			}
		}
	}
}

// usesReceiverState reports whether the body selects a field through the
// receiver object (directly or via a field's own methods).
func usesReceiverState(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			found = true
			return false
		}
		return true
	})
	return found
}

// startsWithNilGuard reports whether the first statement is an if whose
// condition compares the receiver against nil.
func startsWithNilGuard(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	be, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	return (isRecvIdent(pass, be.X, recv) && isNil(pass, be.Y)) ||
		(isRecvIdent(pass, be.Y, recv) && isNil(pass, be.X))
}

func isRecvIdent(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recv
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// runSinkCallGuards checks rule two: outside internal/obs, method calls on
// obs.Sink values need an enclosing nil check on the same expression.
func runSinkCallGuards(pass *analysis.Pass) {
	for _, f := range pass.Files {
		// Track the if-guarded expressions on the path to each node.
		var walk func(n ast.Node, guarded map[string]bool)
		walk = func(n ast.Node, guarded map[string]bool) {
			switch v := n.(type) {
			case nil:
				return
			case *ast.IfStmt:
				if v.Init != nil {
					walk(v.Init, guarded)
				}
				walk(v.Cond, guarded)
				thenGuards := guardsFromCond(pass, v.Cond, guarded)
				walk(v.Body, thenGuards)
				if v.Else != nil {
					walk(v.Else, guarded)
				}
				return
			case *ast.CallExpr:
				checkSinkCall(pass, v, guarded)
			}
			// Generic traversal one level down.
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				if c == nil {
					return false
				}
				walk(c, guarded)
				return false
			})
		}
		walk(f, map[string]bool{})
	}
}

// guardsFromCond extends the guard set with `x != nil` conjuncts of cond.
func guardsFromCond(pass *analysis.Pass, cond ast.Expr, base map[string]bool) map[string]bool {
	out := make(map[string]bool, len(base)+1)
	for k := range base {
		out[k] = true
	}
	var collect func(e ast.Expr)
	collect = func(e ast.Expr) {
		be, ok := e.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case token.LAND:
			collect(be.X)
			collect(be.Y)
		case token.NEQ:
			if isNil(pass, be.Y) {
				out[types.ExprString(be.X)] = true
			} else if isNil(pass, be.X) {
				out[types.ExprString(be.Y)] = true
			}
		}
	}
	collect(cond)
	return out
}

func checkSinkCall(pass *analysis.Pass, call *ast.CallExpr, guarded map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if !isNamed(recvType, obsPkgPath, "Sink") {
		return
	}
	if guarded[types.ExprString(sel.X)] {
		return
	}
	pass.Reportf(call.Pos(), "call to %s on an obs.Sink value without a nil guard; a disabled observer hands out nil sinks", types.ExprString(call.Fun))
}

func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(p.Elem(), pkgPath, name)
}

func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
