package loader

import (
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this file to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "repro/internal/detect")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "repro/internal/detect" {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
	if len(p.Syntax) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatalf("incomplete package: %d files", len(p.Syntax))
	}
	if p.Types.Scope().Lookup("Window") == nil {
		t.Error("type-checked package is missing detect.Window")
	}
}

func TestLoadResolvesCrossPackageTypes(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	obj := pkgs[0].Types.Scope().Lookup("System")
	if obj == nil {
		t.Fatal("missing core.System")
	}
}

func TestEnvCheckDirRejectsMissingDir(t *testing.T) {
	env, err := NewEnv(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.CheckDir("nope", filepath.Join(moduleRoot(t), "no-such-dir")); err == nil {
		t.Error("expected error for missing directory")
	}
}
