package loader

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this file to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "repro/internal/detect")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "repro/internal/detect" {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
	if len(p.Syntax) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatalf("incomplete package: %d files", len(p.Syntax))
	}
	if p.Types.Scope().Lookup("Window") == nil {
		t.Error("type-checked package is missing detect.Window")
	}
}

func TestLoadResolvesCrossPackageTypes(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	obj := pkgs[0].Types.Scope().Lookup("System")
	if obj == nil {
		t.Fatal("missing core.System")
	}
}

// writeModule materializes a throwaway module in a temp dir so the loader
// can be pinned on package shapes the repo itself doesn't contain. Files
// maps base names to contents; a minimal go.mod is added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module tmpmod\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadGenericsPackage pins the loader on type-parameterized code: the
// parser must accept the syntax and go/types must resolve instantiations,
// since analyzers read TypesInfo.Uses/Types for generic calls like any
// other.
func TestLoadGenericsPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ring.go": `package ring

// Ring is a generic fixed-capacity buffer.
type Ring[T any] struct {
	buf []T
}

func New[T any](n int) *Ring[T] { return &Ring[T]{buf: make([]T, 0, n)} }

func (r *Ring[T]) Push(v T) { r.buf = append(r.buf, v) }

func Sum[T ~int | ~int64](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

var used = Sum([]int{1, 2, 3})
`,
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	obj := p.Types.Scope().Lookup("Ring")
	if obj == nil {
		t.Fatal("missing generic type Ring")
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || named.TypeParams().Len() != 1 {
		t.Fatalf("Ring is not a one-parameter generic type: %v", obj.Type())
	}
	// The instantiation Sum([]int{...}) must have resolved: its ident maps
	// to the generic object and the call expression to a concrete int.
	found := false
	for _, f := range p.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Sum" {
				tv := p.TypesInfo.Types[ast.Expr(call)]
				if b, ok := tv.Type.(*types.Basic); !ok || b.Kind() != types.Int {
					t.Errorf("Sum instantiation has type %v, want int", tv.Type)
				}
				found = true
			}
			return true
		})
	}
	if !found {
		t.Error("no Sum call found in syntax")
	}
}

// TestLoadBuildTaggedPackage pins the loader's tag awareness: Load follows
// `go list` GoFiles, so a file excluded by its build constraint must be
// neither parsed nor type-checked — the excluded file here would fail
// type-checking (and redeclare Mode) if it were included.
func TestLoadBuildTaggedPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"mode_default.go": `package mode

const Mode = "default"
`,
		"mode_special.go": `//go:build special

package mode

const Mode = "special"

var _ = undefinedSymbol
`,
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Syntax) != 1 {
		t.Fatalf("got %d packages / %d files, want 1/1 (tagged file excluded)", len(pkgs), len(pkgs[0].Syntax))
	}
	obj := pkgs[0].Types.Scope().Lookup("Mode")
	if obj == nil {
		t.Fatal("missing Mode")
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Val().String() != `"default"` {
		t.Fatalf("Mode = %v, want \"default\"", obj)
	}
}

// TestEnvCheckDirGenerics pins the analysistest path (CheckDir) on generic
// testdata: analyzers must be able to run over type-parameterized fixture
// packages.
func TestEnvCheckDirGenerics(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

var lengths = Map([]string{"a", "bb"}, func(s string) int { return len(s) })
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := env.CheckDir("example/fixture", dir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Scope().Lookup("Map") == nil {
		t.Error("missing generic func Map")
	}
	v := pkg.Types.Scope().Lookup("lengths")
	if v == nil {
		t.Fatal("missing lengths")
	}
	sl, ok := v.Type().(*types.Slice)
	if !ok {
		t.Fatalf("lengths has type %v, want []int", v.Type())
	}
	if b, ok := sl.Elem().(*types.Basic); !ok || b.Kind() != types.Int {
		t.Fatalf("lengths element type %v, want int", sl.Elem())
	}
}

func TestEnvCheckDirRejectsMissingDir(t *testing.T) {
	env, err := NewEnv(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.CheckDir("nope", filepath.Join(moduleRoot(t), "no-such-dir")); err == nil {
		t.Error("expected error for missing directory")
	}
}
