// Package loader turns package patterns into fully type-checked syntax
// trees using nothing but the go toolchain and the standard library — a
// minimal, offline substitute for golang.org/x/tools/go/packages.
//
// It shells out to `go list -export -deps -json`, which compiles (or reuses
// from the build cache) every package in the dependency closure and reports
// the path of each package's gc export data. Target packages are then
// parsed with go/parser and type-checked with go/types, resolving every
// import through the export data via go/importer's gc mode — no network,
// no GOPATH assumptions, and exact agreement with the compiler's view of
// the code.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// exportIndex maps import paths to gc export data files.
type exportIndex map[string]string

// goList runs `go list -export -deps -json` for the patterns rooted at dir.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newImporter builds a types.Importer that serves every import from the
// export index. The gc importer caches, so shared deps are read once.
func newImporter(fset *token.FileSet, idx exportIndex) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := idx[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// checkDir parses and type-checks the given files as one package.
func checkDir(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}

// Load type-checks the packages matching the patterns (relative to dir;
// "" = current directory). Only the matched packages are parsed; their
// dependencies are resolved from compiled export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	idx := exportIndex{}
	for _, p := range listed {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, idx)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkDir(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Env captures a reusable type-checking environment: the export-data
// closure of a module's packages. It lets callers (the analysistest
// harness) type-check out-of-module directories — testdata packages —
// against real module and stdlib dependencies.
type Env struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewEnv builds an environment whose importable universe is the dependency
// closure of the module rooted at moduleDir.
func NewEnv(moduleDir string) (*Env, error) {
	listed, err := goList(moduleDir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	idx := exportIndex{}
	for _, p := range listed {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	return &Env{fset: fset, imp: newImporter(fset, idx)}, nil
}

// Fset returns the environment's shared file set.
func (e *Env) Fset() *token.FileSet { return e.fset }

// CheckDir parses and type-checks every .go file in dir as a single
// package with the given import path. Imports must lie inside the
// environment's closure.
func (e *Env) CheckDir(pkgPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, ent := range entries {
		if !ent.IsDir() && filepath.Ext(ent.Name()) == ".go" {
			files = append(files, ent.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no .go files in %s", dir)
	}
	sort.Strings(files)
	return checkDir(e.fset, e.imp, pkgPath, dir, files)
}
