// Package analysistest runs awdlint analyzers over testdata packages and
// checks their diagnostics against expectations written in the testdata
// source itself — a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are trailing comments of the form
//
//	// want "regexp" `regexp` ...
//
// Each diagnostic must be claimed by a want on its source line, and every
// want must be claimed by exactly one diagnostic; anything unmatched in
// either direction fails the test. A testdata file with no want comments
// therefore asserts the analyzer stays silent on it.
package analysistest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

var (
	envOnce   sync.Once
	sharedEnv *loader.Env
	envErr    error
)

// Root returns the module root, located relative to this source file.
func Root() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// environment lazily builds the shared type-checking environment: the
// export-data closure of the whole module, so testdata may import real
// module packages (repro/internal/obs, repro/internal/mat, ...).
func environment(t *testing.T) *loader.Env {
	t.Helper()
	envOnce.Do(func() { sharedEnv, envErr = loader.NewEnv(Root()) })
	if envErr != nil {
		t.Fatalf("analysistest: building type-check environment: %v", envErr)
	}
	return sharedEnv
}

// expectation is one parsed want clause.
type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	claimed bool
}

var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
	argRe  = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")
)

// parseWants scans every .go file under dir for want comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var wants []*expectation
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".go" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, arg := range argRe.FindAllStringSubmatch(m[1], -1) {
				var pat string
				if strings.HasPrefix(arg[0], "\"") {
					pat = unquote(arg[1])
				} else {
					pat = arg[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", ent.Name(), line, pat, err)
				}
				wants = append(wants, &expectation{file: ent.Name(), line: line, re: re})
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatalf("analysistest: %v", err)
		}
	}
	return wants
}

// unquote resolves the double-quoted escape forms used in want patterns.
func unquote(s string) string {
	r := strings.NewReplacer(`\"`, `"`, `\\`, `\`)
	return r.Replace(s)
}

// Run type-checks the testdata package in internal/lint/testdata/src/<dir>
// under the given import path, applies the analyzer, and verifies the
// diagnostics against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath, dir string) {
	t.Helper()
	env := environment(t)
	abs := filepath.Join(Root(), "internal", "lint", "testdata", "src", filepath.FromSlash(dir))
	pkg, err := env.CheckDir(pkgPath, abs)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	pass := analysis.NewPass(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, dir, err)
	}

	wants := parseWants(t, abs)
	for _, d := range pass.Diagnostics() {
		p := d.Position(pkg.Fset)
		if !claim(wants, filepath.Base(p.Filename), p.Line, d.Message) {
			t.Errorf("%s/%s:%d: unexpected diagnostic: %s", dir, filepath.Base(p.Filename), p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s/%s:%d: no diagnostic matched %q", dir, w.file, w.line, w.re)
		}
	}
}

// claim marks the first unclaimed expectation on (file, line) whose pattern
// matches the message.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.claimed && w.file == file && w.line == line && w.re.MatchString(message) {
			w.claimed = true
			return true
		}
	}
	return false
}
