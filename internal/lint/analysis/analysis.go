// Package analysis is a self-contained, stdlib-only re-implementation of
// the core golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) used by the awdlint suite. The repo builds with zero
// third-party dependencies, so rather than vendoring x/tools this package
// provides the same shape on top of go/ast + go/types; analyzers written
// against it port to the upstream API by changing one import path.
//
// Suppression: a site can opt out of a specific analyzer with a trailing
// or preceding comment of the form
//
//	//awdlint:allow <analyzer> [<analyzer>...] -- <reason>
//
// The directive applies to its own source line and to the line that
// follows it, so it works both as a trailing comment and on the line
// above the exempted statement. The reason ("-- ..." suffix) is mandatory
// so every exemption is self-documenting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //awdlint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by `awdlint -help`.
	Doc string
	// Run executes the pass over one package.
	Run func(*Pass) error
	// Match restricts the packages the driver applies this analyzer to
	// (nil = every package). Tests bypass it and run the analyzer
	// directly, mirroring how vet's own flags gate analyzers rather than
	// the analyzers gating themselves.
	Match func(pkgPath string) bool
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	allow       map[lineKey][]string
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Position resolves the diagnostic's file position.
func (d Diagnostic) Position(fset *token.FileSet) token.Position { return fset.Position(d.Pos) }

// String renders the go-vet style one-liner.
func (d Diagnostic) Format(fset *token.FileSet) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s: %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
}

type lineKey struct {
	file string
	line int
}

var directiveRe = regexp.MustCompile(`^//awdlint:allow\s+([a-z0-9_,\s]+?)\s*--\s*\S`)

// NewPass assembles a pass for one package. The allow-directive index is
// built once per pass from the files' comments.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, allow: map[lineKey][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				pos := fset.Position(c.Slash)
				p.allow[lineKey{pos.Filename, pos.Line}] = append(p.allow[lineKey{pos.Filename, pos.Line}], names...)
				p.allow[lineKey{pos.Filename, pos.Line + 1}] = append(p.allow[lineKey{pos.Filename, pos.Line + 1}], names...)
			}
		}
	}
	return p
}

// Reportf records a diagnostic unless an //awdlint:allow directive covers
// the position for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	pp := p.Fset.Position(pos)
	for _, name := range p.allow[lineKey{pp.Filename, pp.Line}] {
		if name == p.Analyzer.Name {
			return
		}
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }
