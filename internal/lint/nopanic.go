package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// noPanicScope is the per-control-step runtime hot path: the packages a
// deployed detector executes every control period. A panic here takes the
// whole control loop down mid-flight; errors must be returned and handled
// by the supervisor instead. Constructors and validation helpers run at
// configuration time and may panic on programmer error (the mat package
// convention, mirroring gonum).
var noPanicScope = []string{
	"repro/internal/core",
	"repro/internal/detect",
	"repro/internal/logger",
	"repro/internal/estim",
	"repro/internal/deadline",
	"repro/internal/reach",
	"repro/internal/fleet",
	"repro/internal/state",
	"repro/internal/wire",
	// The operations console must never die mid-watch either: a dashboard
	// that panics on a malformed snapshot is useless exactly when needed.
	"repro/cmd/awdtop",
}

// NoPanic forbids panic calls on the runtime hot path outside
// constructors/validation. Detection before the deadline t_d (Theorem 2)
// is void if the detector process dies instead of deciding.
var NoPanic = &analysis.Analyzer{
	Name:  "nopanic",
	Doc:   "forbids panic in the per-step hot-path packages outside constructors and validation helpers; return errors instead",
	Match: matchAny(noPanicScope),
	Run:   runNoPanic,
}

// panicAllowedIn reports whether the enclosing function is a construction
// or validation context where panicking on programmer error is accepted.
func panicAllowedIn(name string) bool {
	return strings.HasPrefix(name, "New") ||
		strings.HasPrefix(name, "Must") ||
		strings.HasPrefix(name, "must") ||
		name == "init" ||
		strings.Contains(strings.ToLower(name), "validate")
}

func runNoPanic(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || panicAllowedIn(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj, ok := pass.TypesInfo.Uses[id]; !ok || obj == nil {
					return true
				} else if _, builtin := obj.(*types.Builtin); !builtin {
					return true // shadowed identifier, not the builtin
				}
				pass.Reportf(call.Pos(), "panic on the detection hot path (func %s); return an error so the control loop survives", fd.Name.Name)
				return true
			})
		}
	}
	return nil
}
