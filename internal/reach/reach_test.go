package reach

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/noise"
)

// Scalar plant x' = a x + b u.
func scalar(t *testing.T, a, b float64) *lti.System {
	t.Helper()
	s, err := lti.New(mat.Diag(a), mat.ColVec(mat.VecOf(b)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	sys := scalar(t, 1, 1)
	u := geom.UniformBox(1, -1, 1)
	if _, err := New(sys, geom.UniformBox(2, -1, 1), 0, 5); err == nil {
		t.Error("wrong input dimension accepted")
	}
	if _, err := New(sys, geom.NewBox(geom.Whole()), 0, 5); err == nil {
		t.Error("unbounded input box accepted")
	}
	if _, err := New(sys, u, -1, 5); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := New(sys, u, 0, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestReachBoxStepZeroIsPoint(t *testing.T) {
	sys := scalar(t, 0.9, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.ReachBox(mat.VecOf(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Interval(0).Lo != 3 || b.Interval(0).Hi != 3 {
		t.Errorf("step-0 box = %v, want point {3}", b)
	}
}

func TestReachBoxScalarHandComputed(t *testing.T) {
	// x' = x + u, u ∈ [-1, 1], eps = 0, x0 = 0.
	// After t steps: x_t ∈ [-t, t].
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 10; tt++ {
		b, err := a.ReachBox(mat.VecOf(0), tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b.Interval(0).Lo+float64(tt)) > 1e-12 || math.Abs(b.Interval(0).Hi-float64(tt)) > 1e-12 {
			t.Errorf("t=%d: box = %v, want [-%d, %d]", tt, b, tt, tt)
		}
	}
}

func TestReachBoxOffsetInputBox(t *testing.T) {
	// x' = x + u, u ∈ [1, 3] (center 2, halfwidth 1), eps=0, x0=0:
	// x_t ∈ [2t - t, 2t + t] = [t, 3t].
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, 1, 3), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.ReachBox(mat.VecOf(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Interval(0).Lo-4) > 1e-12 || math.Abs(b.Interval(0).Hi-12) > 1e-12 {
		t.Errorf("box = %v, want [4, 12]", b)
	}
}

func TestReachBoxUncertaintyAccumulates(t *testing.T) {
	// x' = x (no input effect), eps = 0.5: x_t ∈ x0 ± 0.5 t.
	sys := scalar(t, 1, 0)
	a, err := New(sys, geom.UniformBox(1, 0, 0), 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.ReachBox(mat.VecOf(1), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Interval(0).Lo-(1-3)) > 1e-12 || math.Abs(b.Interval(0).Hi-(1+3)) > 1e-12 {
		t.Errorf("box = %v, want [-2, 4]", b)
	}
}

func TestReachBoxContractionStaysBounded(t *testing.T) {
	// Stable a=0.5: spread converges to eps/(1-a) = 0.2; box must stay small.
	sys := scalar(t, 0.5, 0)
	a, err := New(sys, geom.UniformBox(1, 0, 0), 0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.ReachBox(mat.VecOf(0), 50)
	if err != nil {
		t.Fatal(err)
	}
	if b.Interval(0).Hi > 0.21 {
		t.Errorf("stable system spread = %v, want < 0.21", b.Interval(0).Hi)
	}
}

func TestReachBoxFromBallAddsInitialSpread(t *testing.T) {
	sys := scalar(t, 2, 0)
	a, err := New(sys, geom.UniformBox(1, 0, 0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Initial ball radius 0.1; after 3 steps of doubling: ±0.8.
	b, err := a.ReachBoxFromBall(mat.VecOf(0), 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Interval(0).Hi-0.8) > 1e-12 {
		t.Errorf("ball spread = %v, want 0.8", b.Interval(0).Hi)
	}
}

func TestReachMatchesNaiveOracle(t *testing.T) {
	ac := mat.FromRows([][]float64{{0.9, 0.2, 0}, {-0.1, 0.85, 0.1}, {0.05, 0, 0.7}})
	bc := mat.FromRows([][]float64{{0.1, 0}, {0, 0.2}, {0.05, 0.05}})
	sys, err := lti.New(ac, bc, nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.BoxFromBounds([]float64{-1, 0}, []float64{2, 3})
	const eps = 0.05
	a, err := New(sys, u, eps, 12)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(1, -0.5, 0.25)
	for tt := 0; tt <= 12; tt++ {
		fast, err := a.ReachBox(x0, tt)
		if err != nil {
			t.Fatal(err)
		}
		slow := NaiveReachBox(sys, u, eps, x0, tt)
		for i := 0; i < 3; i++ {
			if math.Abs(fast.Interval(i).Lo-slow.Interval(i).Lo) > 1e-9 ||
				math.Abs(fast.Interval(i).Hi-slow.Interval(i).Hi) > 1e-9 {
				t.Errorf("t=%d dim=%d: fast=%v naive=%v", tt, i, fast.Interval(i), slow.Interval(i))
			}
		}
	}
}

func TestStepperMatchesReachBox(t *testing.T) {
	sys := scalar(t, 1.1, 0.5)
	a, err := New(sys, geom.UniformBox(1, -2, 2), 0.01, 20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Stepper(mat.VecOf(0.7), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for {
		want, err := a.ReachBoxFromBall(mat.VecOf(0.7), 0.05, s.Step())
		if err != nil {
			t.Fatal(err)
		}
		got := s.Box()
		// The stepper evaluates powers[t]·x0 exactly like ReachBoxFromBall,
		// so agreement is bit-exact, not merely within tolerance.
		if got.Interval(0).Lo != want.Interval(0).Lo ||
			got.Interval(0).Hi != want.Interval(0).Hi {
			t.Fatalf("step %d: stepper=%v direct=%v", s.Step(), got, want)
		}
		if !s.Advance() {
			break
		}
	}
	if s.Step() != 20 {
		t.Errorf("stepper stopped at %d, want horizon 20", s.Step())
	}
}

func TestStepperJumpToMatchesAdvance(t *testing.T) {
	ac := mat.FromRows([][]float64{{0.97, 0.12, -0.03}, {-0.08, 0.91, 0.06}, {0.02, -0.01, 0.88}})
	bc := mat.ColVec(mat.VecOf(0.1, 0.05, 0.02))
	sys, err := lti.New(ac, bc, nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(sys, geom.UniformBox(1, -2, 2), 0.03, 15)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.4, -0.9, 0.2)
	walk, err := a.Stepper(x0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	jump, err := a.Stepper(x0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lo1, hi1 := make([]float64, 3), make([]float64, 3)
	lo2, hi2 := make([]float64, 3), make([]float64, 3)
	for walk.Advance() {
		if err := jump.JumpTo(walk.Step()); err != nil {
			t.Fatal(err)
		}
		walk.Bounds(lo1, hi1)
		jump.Bounds(lo2, hi2)
		for i := range lo1 {
			if lo1[i] != lo2[i] || hi1[i] != hi2[i] {
				t.Fatalf("step %d dim %d: advance=[%v,%v] jump=[%v,%v]",
					walk.Step(), i, lo1[i], hi1[i], lo2[i], hi2[i])
			}
		}
	}
	if err := jump.JumpTo(99); err == nil {
		t.Error("JumpTo past horizon accepted")
	}
	if err := jump.JumpTo(-1); err == nil {
		t.Error("negative JumpTo accepted")
	}
}

func TestStepperInsideBoxMatchesContainsBox(t *testing.T) {
	sys := scalar(t, 1.08, 0.6)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.02, 25)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -6, 6)
	s, err := a.Stepper(mat.VecOf(0.3), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for {
		want := safe.ContainsBox(s.Box())
		if got := s.InsideBox(safe); got != want {
			t.Fatalf("step %d: InsideBox=%v ContainsBox=%v", s.Step(), got, want)
		}
		sl := s.SafeSlack(safe)
		if want && sl < 0 {
			t.Fatalf("step %d: contained but SafeSlack=%v", s.Step(), sl)
		}
		if !want && sl >= 0 {
			t.Fatalf("step %d: outside but SafeSlack=%v", s.Step(), sl)
		}
		if !s.Advance() {
			break
		}
	}
}

// SafeSlack's certificate: moving x0 by strictly less than the reported
// slack must keep the same step's reach box inside the safe set.
func TestSafeSlackCertificateProperty(t *testing.T) {
	ac := mat.FromRows([][]float64{{1.01, 0.1}, {-0.05, 0.98}})
	bc := mat.ColVec(mat.VecOf(0.1, 0.06))
	sys, err := lti.New(ac, bc, nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.01, 20)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(2, -8, 8)
	x0 := mat.VecOf(0.5, -0.3)
	s, err := a.Stepper(x0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := a.Stepper(x0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for {
		sl := s.SafeSlack(safe)
		if sl > 0 && !math.IsInf(sl, 1) {
			// Perturb x0 by 0.9·slack along each axis; containment must hold.
			for dim := 0; dim < 2; dim++ {
				for _, sign := range []float64{1, -1} {
					moved := x0.Clone()
					moved[dim] += sign * 0.9 * sl
					if err := probe.Reset(moved, 0.02); err != nil {
						t.Fatal(err)
					}
					if err := probe.JumpTo(s.Step()); err != nil {
						t.Fatal(err)
					}
					if !probe.InsideBox(safe) {
						t.Fatalf("step %d: slack %v violated by move %v along dim %d",
							s.Step(), sl, sign*0.9*sl, dim)
					}
				}
			}
		}
		if !s.Advance() {
			break
		}
	}
}

// Soundness: the over-approximation must contain every trajectory simulated
// under admissible inputs and disturbances. This is the core guarantee
// (Definition 3.1) that makes the deadline conservative.
func TestReachSoundnessProperty(t *testing.T) {
	ac := mat.FromRows([][]float64{{0.95, 0.1}, {-0.12, 0.9}})
	bc := mat.ColVec(mat.VecOf(0.1, 0.05))
	sys, err := lti.New(ac, bc, nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.UniformBox(1, -3, 3)
	const eps = 0.02
	const horizon = 25
	a, err := New(sys, u, eps, horizon)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.5, -1)
	src := noise.NewSource(99)
	ball := noise.NewBall(100, 2, eps)
	for trial := 0; trial < 50; trial++ {
		x := x0.Clone()
		for tt := 1; tt <= horizon; tt++ {
			uval := mat.VecOf(src.Uniform(-3, 3))
			x = sys.Step(x, uval, ball.Sample(tt))
			box, err := a.ReachBox(x0, tt)
			if err != nil {
				t.Fatal(err)
			}
			if !box.Contains(x) {
				t.Fatalf("trial %d step %d: state %v escapes over-approximation %v", trial, tt, x, box)
			}
		}
	}
}

// Monotonicity: enlarging eps or the input box can only widen the bounds.
func TestReachMonotonicityProperty(t *testing.T) {
	sys := scalar(t, 1.05, 1)
	small, err := New(sys, geom.UniformBox(1, -1, 1), 0.01, 15)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(sys, geom.UniformBox(1, -2, 2), 0.05, 15)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.3)
	for tt := 0; tt <= 15; tt++ {
		bs, err := small.ReachBox(x0, tt)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := big.ReachBox(x0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if !bb.ContainsBox(bs) {
			t.Errorf("t=%d: larger uncertainty produced smaller box", tt)
		}
	}
}

func TestFirstUnsafeAndDeadline(t *testing.T) {
	// x' = x + u, u ∈ [-1,1], x0 = 0, safe |x| <= 4.5.
	// Reach box at t is [-t, t]; first unsafe t = 5, so deadline 4.
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -4.5, 4.5)
	first, found, err := a.FirstUnsafe(mat.VecOf(0), 0, safe)
	if err != nil {
		t.Fatal(err)
	}
	if !found || first != 5 {
		t.Errorf("FirstUnsafe = %d found=%v, want 5 true", first, found)
	}
	if d, err := a.Deadline(mat.VecOf(0), 0, safe); err != nil || d != 4 {
		t.Errorf("Deadline = %d (err %v), want 4", d, err)
	}
}

func TestDeadlineZeroWhenAlreadyMarginal(t *testing.T) {
	// x0 right at the boundary: the very next step can be unsafe.
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -4.5, 4.5)
	if d, err := a.Deadline(mat.VecOf(4.4), 0, safe); err != nil || d != 0 {
		t.Errorf("Deadline at boundary = %d (err %v), want 0", d, err)
	}
}

func TestDeadlineClampsToHorizon(t *testing.T) {
	// Stable system far from a huge safe set: never unsafe within horizon.
	sys := scalar(t, 0.5, 0.1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.001, 30)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -100, 100)
	first, found, err := a.FirstUnsafe(mat.VecOf(0), 0, safe)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Errorf("unexpected unsafe at %d", first)
	}
	if d, err := a.Deadline(mat.VecOf(0), 0, safe); err != nil || d != 30 {
		t.Errorf("Deadline = %d (err %v), want horizon 30", d, err)
	}
}

func TestDeadlineMonotoneInDistanceProperty(t *testing.T) {
	// Closer to the unsafe boundary => deadline can only shrink.
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.01, 40)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -10, 10)
	prev := math.MaxInt
	for x := 0.0; x <= 9.5; x += 0.5 {
		d, err := a.Deadline(mat.VecOf(x), 0, safe)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev {
			t.Errorf("deadline increased from %d to %d as state moved toward unsafe (x=%v)", prev, d, x)
		}
		prev = d
	}
}

func TestDeadlineWithUnboundedSafeDims(t *testing.T) {
	// Two-dim plant, safe set bounded only in dim 1 (Table 1 style).
	ac := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	bc := mat.ColVec(mat.VecOf(0, 0.1))
	sys, err := lti.New(ac, bc, nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.NewBox(geom.NewInterval(-2, 2), geom.Whole())
	d, err := a.Deadline(mat.VecOf(0, 0), 0, safe)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d >= 50 {
		t.Errorf("deadline = %d, want interior value", d)
	}
}

func TestReachBoxConfigFaultsReturnErrors(t *testing.T) {
	sys := scalar(t, 1, 1)
	a, _ := New(sys, geom.UniformBox(1, -1, 1), 0, 5)
	if _, err := a.ReachBox(mat.VecOf(0), 6); err == nil {
		t.Error("out-of-horizon step accepted")
	}
	if _, err := a.ReachBox(mat.VecOf(0), -1); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := a.ReachBoxFromBall(mat.VecOf(0), -0.1, 2); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := a.ReachBox(mat.VecOf(0, 0), 2); err == nil {
		t.Error("wrong x0 dimension accepted")
	}
	if _, err := a.Stepper(mat.VecOf(0, 0), 0); err == nil {
		t.Error("Stepper with wrong x0 dimension accepted")
	}
	if _, err := a.Stepper(mat.VecOf(0), -1); err == nil {
		t.Error("Stepper with negative radius accepted")
	}
	if _, _, err := a.FirstUnsafe(mat.VecOf(0), 0, geom.UniformBox(2, -1, 1)); err == nil {
		t.Error("FirstUnsafe with wrong safe-set dimension accepted")
	}
}

func TestAccessors(t *testing.T) {
	sys := scalar(t, 1, 1)
	u := geom.UniformBox(1, -2, 2)
	a, err := New(sys, u, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Horizon() != 7 || a.Eps() != 0.3 {
		t.Errorf("accessors: %d %v", a.Horizon(), a.Eps())
	}
	if a.Inputs().Interval(0).Hi != 2 {
		t.Errorf("Inputs = %v", a.Inputs())
	}
}
