package reach

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/noise"
)

// Scalar plant x' = a x + b u.
func scalar(t *testing.T, a, b float64) *lti.System {
	t.Helper()
	s, err := lti.New(mat.Diag(a), mat.ColVec(mat.VecOf(b)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	sys := scalar(t, 1, 1)
	u := geom.UniformBox(1, -1, 1)
	if _, err := New(sys, geom.UniformBox(2, -1, 1), 0, 5); err == nil {
		t.Error("wrong input dimension accepted")
	}
	if _, err := New(sys, geom.NewBox(geom.Whole()), 0, 5); err == nil {
		t.Error("unbounded input box accepted")
	}
	if _, err := New(sys, u, -1, 5); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := New(sys, u, 0, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestReachBoxStepZeroIsPoint(t *testing.T) {
	sys := scalar(t, 0.9, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	b := a.ReachBox(mat.VecOf(3), 0)
	if b.Interval(0).Lo != 3 || b.Interval(0).Hi != 3 {
		t.Errorf("step-0 box = %v, want point {3}", b)
	}
}

func TestReachBoxScalarHandComputed(t *testing.T) {
	// x' = x + u, u ∈ [-1, 1], eps = 0, x0 = 0.
	// After t steps: x_t ∈ [-t, t].
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 10; tt++ {
		b := a.ReachBox(mat.VecOf(0), tt)
		if math.Abs(b.Interval(0).Lo+float64(tt)) > 1e-12 || math.Abs(b.Interval(0).Hi-float64(tt)) > 1e-12 {
			t.Errorf("t=%d: box = %v, want [-%d, %d]", tt, b, tt, tt)
		}
	}
}

func TestReachBoxOffsetInputBox(t *testing.T) {
	// x' = x + u, u ∈ [1, 3] (center 2, halfwidth 1), eps=0, x0=0:
	// x_t ∈ [2t - t, 2t + t] = [t, 3t].
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, 1, 3), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := a.ReachBox(mat.VecOf(0), 4)
	if math.Abs(b.Interval(0).Lo-4) > 1e-12 || math.Abs(b.Interval(0).Hi-12) > 1e-12 {
		t.Errorf("box = %v, want [4, 12]", b)
	}
}

func TestReachBoxUncertaintyAccumulates(t *testing.T) {
	// x' = x (no input effect), eps = 0.5: x_t ∈ x0 ± 0.5 t.
	sys := scalar(t, 1, 0)
	a, err := New(sys, geom.UniformBox(1, 0, 0), 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	b := a.ReachBox(mat.VecOf(1), 6)
	if math.Abs(b.Interval(0).Lo-(1-3)) > 1e-12 || math.Abs(b.Interval(0).Hi-(1+3)) > 1e-12 {
		t.Errorf("box = %v, want [-2, 4]", b)
	}
}

func TestReachBoxContractionStaysBounded(t *testing.T) {
	// Stable a=0.5: spread converges to eps/(1-a) = 0.2; box must stay small.
	sys := scalar(t, 0.5, 0)
	a, err := New(sys, geom.UniformBox(1, 0, 0), 0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	b := a.ReachBox(mat.VecOf(0), 50)
	if b.Interval(0).Hi > 0.21 {
		t.Errorf("stable system spread = %v, want < 0.21", b.Interval(0).Hi)
	}
}

func TestReachBoxFromBallAddsInitialSpread(t *testing.T) {
	sys := scalar(t, 2, 0)
	a, err := New(sys, geom.UniformBox(1, 0, 0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Initial ball radius 0.1; after 3 steps of doubling: ±0.8.
	b := a.ReachBoxFromBall(mat.VecOf(0), 0.1, 3)
	if math.Abs(b.Interval(0).Hi-0.8) > 1e-12 {
		t.Errorf("ball spread = %v, want 0.8", b.Interval(0).Hi)
	}
}

func TestReachMatchesNaiveOracle(t *testing.T) {
	ac := mat.FromRows([][]float64{{0.9, 0.2, 0}, {-0.1, 0.85, 0.1}, {0.05, 0, 0.7}})
	bc := mat.FromRows([][]float64{{0.1, 0}, {0, 0.2}, {0.05, 0.05}})
	sys, err := lti.New(ac, bc, nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.BoxFromBounds([]float64{-1, 0}, []float64{2, 3})
	const eps = 0.05
	a, err := New(sys, u, eps, 12)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(1, -0.5, 0.25)
	for tt := 0; tt <= 12; tt++ {
		fast := a.ReachBox(x0, tt)
		slow := NaiveReachBox(sys, u, eps, x0, tt)
		for i := 0; i < 3; i++ {
			if math.Abs(fast.Interval(i).Lo-slow.Interval(i).Lo) > 1e-9 ||
				math.Abs(fast.Interval(i).Hi-slow.Interval(i).Hi) > 1e-9 {
				t.Errorf("t=%d dim=%d: fast=%v naive=%v", tt, i, fast.Interval(i), slow.Interval(i))
			}
		}
	}
}

func TestStepperMatchesReachBox(t *testing.T) {
	sys := scalar(t, 1.1, 0.5)
	a, err := New(sys, geom.UniformBox(1, -2, 2), 0.01, 20)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Stepper(mat.VecOf(0.7), 0.05)
	for {
		want := a.ReachBoxFromBall(mat.VecOf(0.7), 0.05, s.Step())
		got := s.Box()
		if math.Abs(got.Interval(0).Lo-want.Interval(0).Lo) > 1e-9 ||
			math.Abs(got.Interval(0).Hi-want.Interval(0).Hi) > 1e-9 {
			t.Fatalf("step %d: stepper=%v direct=%v", s.Step(), got, want)
		}
		if !s.Advance() {
			break
		}
	}
	if s.Step() != 20 {
		t.Errorf("stepper stopped at %d, want horizon 20", s.Step())
	}
}

// Soundness: the over-approximation must contain every trajectory simulated
// under admissible inputs and disturbances. This is the core guarantee
// (Definition 3.1) that makes the deadline conservative.
func TestReachSoundnessProperty(t *testing.T) {
	ac := mat.FromRows([][]float64{{0.95, 0.1}, {-0.12, 0.9}})
	bc := mat.ColVec(mat.VecOf(0.1, 0.05))
	sys, err := lti.New(ac, bc, nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.UniformBox(1, -3, 3)
	const eps = 0.02
	const horizon = 25
	a, err := New(sys, u, eps, horizon)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.5, -1)
	src := noise.NewSource(99)
	ball := noise.NewBall(100, 2, eps)
	for trial := 0; trial < 50; trial++ {
		x := x0.Clone()
		for tt := 1; tt <= horizon; tt++ {
			uval := mat.VecOf(src.Uniform(-3, 3))
			x = sys.Step(x, uval, ball.Sample(tt))
			box := a.ReachBox(x0, tt)
			if !box.Contains(x) {
				t.Fatalf("trial %d step %d: state %v escapes over-approximation %v", trial, tt, x, box)
			}
		}
	}
}

// Monotonicity: enlarging eps or the input box can only widen the bounds.
func TestReachMonotonicityProperty(t *testing.T) {
	sys := scalar(t, 1.05, 1)
	small, err := New(sys, geom.UniformBox(1, -1, 1), 0.01, 15)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(sys, geom.UniformBox(1, -2, 2), 0.05, 15)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.3)
	for tt := 0; tt <= 15; tt++ {
		bs, bb := small.ReachBox(x0, tt), big.ReachBox(x0, tt)
		if !bb.ContainsBox(bs) {
			t.Errorf("t=%d: larger uncertainty produced smaller box", tt)
		}
	}
}

func TestFirstUnsafeAndDeadline(t *testing.T) {
	// x' = x + u, u ∈ [-1,1], x0 = 0, safe |x| <= 4.5.
	// Reach box at t is [-t, t]; first unsafe t = 5, so deadline 4.
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -4.5, 4.5)
	first, found := a.FirstUnsafe(mat.VecOf(0), 0, safe)
	if !found || first != 5 {
		t.Errorf("FirstUnsafe = %d found=%v, want 5 true", first, found)
	}
	if d := a.Deadline(mat.VecOf(0), 0, safe); d != 4 {
		t.Errorf("Deadline = %d, want 4", d)
	}
}

func TestDeadlineZeroWhenAlreadyMarginal(t *testing.T) {
	// x0 right at the boundary: the very next step can be unsafe.
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -4.5, 4.5)
	if d := a.Deadline(mat.VecOf(4.4), 0, safe); d != 0 {
		t.Errorf("Deadline at boundary = %d, want 0", d)
	}
}

func TestDeadlineClampsToHorizon(t *testing.T) {
	// Stable system far from a huge safe set: never unsafe within horizon.
	sys := scalar(t, 0.5, 0.1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.001, 30)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -100, 100)
	first, found := a.FirstUnsafe(mat.VecOf(0), 0, safe)
	if found {
		t.Errorf("unexpected unsafe at %d", first)
	}
	if d := a.Deadline(mat.VecOf(0), 0, safe); d != 30 {
		t.Errorf("Deadline = %d, want horizon 30", d)
	}
}

func TestDeadlineMonotoneInDistanceProperty(t *testing.T) {
	// Closer to the unsafe boundary => deadline can only shrink.
	sys := scalar(t, 1, 1)
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0.01, 40)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(1, -10, 10)
	prev := math.MaxInt
	for x := 0.0; x <= 9.5; x += 0.5 {
		d := a.Deadline(mat.VecOf(x), 0, safe)
		if d > prev {
			t.Errorf("deadline increased from %d to %d as state moved toward unsafe (x=%v)", prev, d, x)
		}
		prev = d
	}
}

func TestDeadlineWithUnboundedSafeDims(t *testing.T) {
	// Two-dim plant, safe set bounded only in dim 1 (Table 1 style).
	ac := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	bc := mat.ColVec(mat.VecOf(0, 0.1))
	sys, err := lti.New(ac, bc, nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(sys, geom.UniformBox(1, -1, 1), 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.NewBox(geom.NewInterval(-2, 2), geom.Whole())
	d := a.Deadline(mat.VecOf(0, 0), 0, safe)
	if d <= 0 || d >= 50 {
		t.Errorf("deadline = %d, want interior value", d)
	}
}

func TestReachBoxOutOfHorizonPanics(t *testing.T) {
	sys := scalar(t, 1, 1)
	a, _ := New(sys, geom.UniformBox(1, -1, 1), 0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.ReachBox(mat.VecOf(0), 6)
}

func TestAccessors(t *testing.T) {
	sys := scalar(t, 1, 1)
	u := geom.UniformBox(1, -2, 2)
	a, err := New(sys, u, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Horizon() != 7 || a.Eps() != 0.3 {
		t.Errorf("accessors: %d %v", a.Horizon(), a.Eps())
	}
	if a.Inputs().Interval(0).Hi != 2 {
		t.Errorf("Inputs = %v", a.Inputs())
	}
}
