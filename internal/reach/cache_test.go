package reach

import (
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/mat"
)

// Shared must hand every concurrent caller the same *Analysis for the same
// key, build it exactly once, and the shared tables must match a private
// New. Run under -race in CI: the sync.Once handoff is the interesting part.
func TestSharedConcurrentCallersGetOneAnalysis(t *testing.T) {
	sys := scalar(t, 0.95, 0.5)
	u := geom.UniformBox(1, -1, 1)
	const workers = 16
	got := make([]*Analysis, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			an, err := Shared(sys, u, 0.02, 25)
			if err != nil {
				t.Error(err)
				return
			}
			// Exercise the shared tables concurrently too.
			if _, err := an.ReachBox(mat.VecOf(0.1), 25); err != nil {
				t.Error(err)
			}
			got[w] = an
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatalf("worker %d got a different Analysis pointer", w)
		}
	}

	private, err := New(sys, u, 0.02, 25)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 25; tt++ {
		a, err := got[0].ReachBox(mat.VecOf(0.3), tt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := private.ReachBox(mat.VecOf(0.3), tt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Interval(0) != b.Interval(0) {
			t.Fatalf("t=%d: shared %v != private %v", tt, a.Interval(0), b.Interval(0))
		}
	}
}

func TestSharedKeyDiscriminates(t *testing.T) {
	sys := scalar(t, 0.9, 1)
	sys2 := scalar(t, 0.9, 1) // same values, distinct pointer
	u := geom.UniformBox(1, -1, 1)
	base, err := Shared(sys, u, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Shared(sys, u, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Error("identical key did not hit the cache")
	}
	cases := []struct {
		name string
		call func() (*Analysis, error)
	}{
		{"horizon", func() (*Analysis, error) { return Shared(sys, u, 0.01, 11) }},
		{"eps", func() (*Analysis, error) { return Shared(sys, u, 0.02, 10) }},
		{"inputs", func() (*Analysis, error) { return Shared(sys, geom.UniformBox(1, -2, 2), 0.01, 10) }},
		{"system pointer", func() (*Analysis, error) { return Shared(sys2, u, 0.01, 10) }},
	}
	for _, c := range cases {
		an, err := c.call()
		if err != nil {
			t.Fatal(err)
		}
		if an == base {
			t.Errorf("%s change reused the cached Analysis", c.name)
		}
	}
}

func TestSharedPropagatesConstructionErrors(t *testing.T) {
	sys := scalar(t, 1, 1)
	if _, err := Shared(sys, geom.UniformBox(2, -1, 1), 0, 5); err == nil {
		t.Error("wrong input dimension accepted")
	}
	if _, err := Shared(sys, geom.UniformBox(1, -1, 1), -1, 5); err == nil {
		t.Error("negative eps accepted")
	}
}
