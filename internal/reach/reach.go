// Package reach implements the support-function reachability analysis of
// Sec. 3: a box over-approximation of the t-step reachable set of
//
//	x_{t+1} = A x_t + B u_t + v_t,  u_t ∈ U (a box),  ‖v_t‖₂ ≤ ε,
//
// evaluated per Eq. (4)/(5):
//
//	upper_i(t) = e_iᵀA^t x₀ + Σ_{j<t} e_iᵀA^jB c + Σ_{j<t} ‖(A^jBQ)ᵀe_i‖₁ + Σ_{j<t} ε‖(A^j)ᵀe_i‖₂
//	lower_i(t) = e_iᵀA^t x₀ + Σ_{j<t} e_iᵀA^jB c − Σ_{j<t} ‖(A^jBQ)ᵀe_i‖₁ − Σ_{j<t} ε‖(A^j)ᵀe_i‖₂
//
// where c and Q = diag(γ) are the center and half-widths of U (Sec. 3.2.2).
//
// Everything that does not depend on x₀ — the input-drift sums, the input
// and uncertainty spread sums, and the powers A^t — is precomputed once per
// (plant, horizon) in Analysis, so the per-call deadline search costs one
// n×n mat-vec per step. This is what makes on-the-fly deadline estimation
// cheap enough to run every control period (the paper's "low overhead"
// requirement); BenchmarkReachPrecomputedVsNaive quantifies the gap.
package reach

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

// Analysis holds the precomputed reachability tables for one plant over a
// fixed maximum horizon (the maximum detection window w_m of Sec. 4.3).
type Analysis struct {
	sys     *lti.System
	horizon int
	eps     float64
	inputs  geom.Box

	// Per step t (0..horizon) and state dimension i:
	drift       [][]float64 // Σ_{j<t} e_iᵀ A^j B c
	inputSpread [][]float64 // Σ_{j<t} ‖(A^j B Q)ᵀ e_i‖₁
	noiseSpread [][]float64 // Σ_{j<t} ε ‖(A^j)ᵀ e_i‖₂
	initSpread  [][]float64 // ‖(A^t)ᵀ e_i‖₂, for initial-set balls
	powers      []*mat.Dense
}

// New precomputes reachability tables for sys with control inputs constrained
// to the box u, per-step uncertainty bounded by eps in the 2-norm, up to the
// given horizon in control steps.
func New(sys *lti.System, u geom.Box, eps float64, horizon int) (*Analysis, error) {
	n, m := sys.StateDim(), sys.InputDim()
	if u.Dim() != m {
		return nil, fmt.Errorf("reach: input box dimension %d, want %d", u.Dim(), m)
	}
	if !u.Bounded() {
		return nil, fmt.Errorf("reach: input box must be bounded (actuator range), got %v", u)
	}
	if eps < 0 {
		return nil, fmt.Errorf("reach: negative uncertainty bound %v", eps)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("reach: horizon %d must be >= 1", horizon)
	}

	a := &Analysis{sys: sys, horizon: horizon, eps: eps, inputs: u}
	c := u.Center()         // box center (Sec. 3.2.2)
	gamma := u.HalfWidths() // diag(Q)

	a.powers = sys.A.Powers(horizon)
	a.drift = makeTable(horizon+1, n)
	a.inputSpread = makeTable(horizon+1, n)
	a.noiseSpread = makeTable(horizon+1, n)
	a.initSpread = makeTable(horizon+1, n)

	bc := sys.B.MulVec(c) // B c
	for i := 0; i < n; i++ {
		a.initSpread[0][i] = a.powers[0].Row(i).Norm2() // = 1
	}
	for t := 1; t <= horizon; t++ {
		aj := a.powers[t-1] // A^{t-1}, the term newly entering the sums
		ajB := aj.Mul(sys.B)
		ajBc := aj.MulVec(bc)
		for i := 0; i < n; i++ {
			// ‖(A^j B Q)ᵀ e_i‖₁ = Σ_k |(A^j B)_{ik}| γ_k.
			row := ajB.Row(i)
			s1 := 0.0
			for k := 0; k < m; k++ {
				s1 += math.Abs(row[k]) * gamma[k]
			}
			a.drift[t][i] = a.drift[t-1][i] + ajBc[i]
			a.inputSpread[t][i] = a.inputSpread[t-1][i] + s1
			a.noiseSpread[t][i] = a.noiseSpread[t-1][i] + eps*aj.Row(i).Norm2()
			a.initSpread[t][i] = a.powers[t].Row(i).Norm2()
		}
	}
	return a, nil
}

func makeTable(rows, cols int) [][]float64 {
	flat := make([]float64, rows*cols)
	tbl := make([][]float64, rows)
	for i := range tbl {
		tbl[i] = flat[i*cols : (i+1)*cols]
	}
	return tbl
}

// Horizon returns the precomputed maximum step count.
func (a *Analysis) Horizon() int { return a.horizon }

// Eps returns the per-step uncertainty bound ε.
func (a *Analysis) Eps() float64 { return a.eps }

// Inputs returns the control-input box U.
func (a *Analysis) Inputs() geom.Box { return a.inputs }

// StateDim returns the plant's state dimension n.
func (a *Analysis) StateDim() int { return a.sys.StateDim() }

// ReachBox returns the box over-approximation of the reachable set t steps
// after starting exactly at x0 (Eq. 4/5). t must be in [0, Horizon].
func (a *Analysis) ReachBox(x0 mat.Vec, t int) (geom.Box, error) {
	return a.ReachBoxFromBall(x0, 0, t)
}

// ReachBoxFromBall is ReachBox with the initial state known only up to a
// Euclidean ball of radius r around x0 (Sec. 3.3.1, noisy estimates). The
// ball's image under A^t contributes r‖(A^t)ᵀe_i‖₂ per dimension.
// Out-of-horizon steps, negative radii, and dimension mismatches are
// configuration faults returned as errors so the control loop survives.
func (a *Analysis) ReachBoxFromBall(x0 mat.Vec, r float64, t int) (geom.Box, error) {
	if t < 0 || t > a.horizon {
		return geom.Box{}, fmt.Errorf("reach: step %d outside precomputed horizon [0, %d]", t, a.horizon)
	}
	if r < 0 {
		return geom.Box{}, fmt.Errorf("reach: negative initial radius %v", r)
	}
	n := a.sys.StateDim()
	if len(x0) != n {
		return geom.Box{}, fmt.Errorf("reach: x0 dimension %d, want %d", len(x0), n)
	}
	center := a.powers[t].MulVec(x0)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := 0; i < n; i++ {
		mid := center[i] + a.drift[t][i]
		spread := a.inputSpread[t][i] + a.noiseSpread[t][i] + r*a.initSpread[t][i]
		lo[i] = mid - spread
		hi[i] = mid + spread
	}
	return geom.BoxFromBounds(lo, hi), nil
}

// Stepper walks the reachable-set bounds forward one step at a time from a
// fixed x0 — the inner loop of the deadline search (Fig. 2). The position
// A^t x0 is evaluated against the precomputed power table with one
// destination-passing mat-vec per step into owned scratch, so a Stepper
// allocates only at construction and is bit-identical to ReachBoxFromBall
// at every step. Reset re-arms the same scratch for a new start state,
// which is what keeps the per-control-period deadline search
// allocation-free.
type Stepper struct {
	a    *Analysis
	x0   mat.Vec // start state (owned copy)
	x    mat.Vec // A^step · x0 (owned scratch)
	r    float64
	step int
}

// Stepper returns a fresh stepper positioned at step 0 (the initial set).
// Dimension mismatches and negative radii are returned as errors.
func (a *Analysis) Stepper(x0 mat.Vec, initRadius float64) (*Stepper, error) {
	n := a.sys.StateDim()
	s := &Stepper{a: a, x0: mat.NewVec(n), x: mat.NewVec(n)}
	if err := s.Reset(x0, initRadius); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset repositions the stepper at step 0 with a new start state and
// radius, reusing the owned scratch so steady-state searches do not
// allocate.
func (s *Stepper) Reset(x0 mat.Vec, initRadius float64) error {
	if len(x0) != len(s.x0) {
		return fmt.Errorf("reach: x0 dimension %d, want %d", len(x0), len(s.x0))
	}
	if initRadius < 0 {
		return fmt.Errorf("reach: negative initial radius %v", initRadius)
	}
	copy(s.x0, x0)
	copy(s.x, x0)
	s.r = initRadius
	s.step = 0
	return nil
}

// Step returns the current step index.
func (s *Stepper) Step() int { return s.step }

// Box returns the reachable-set box at the current step. It materializes a
// fresh geom.Box; the search loops use InsideBox / SafeSlack / Bounds
// instead to stay allocation-free.
func (s *Stepper) Box() geom.Box {
	n := len(s.x)
	lo := make([]float64, n)
	hi := make([]float64, n)
	s.Bounds(lo, hi)
	return geom.BoxFromBounds(lo, hi)
}

// Bounds writes the current step's lower/upper reach bounds into the
// caller's slices (each of length ≥ StateDim) without allocating.
func (s *Stepper) Bounds(lo, hi []float64) {
	n := len(s.x)
	lo, hi = lo[:n], hi[:n]
	for i := 0; i < n; i++ {
		mid := s.x[i] + s.a.drift[s.step][i]
		spread := s.a.inputSpread[s.step][i] + s.a.noiseSpread[s.step][i] + s.r*s.a.initSpread[s.step][i]
		lo[i] = mid - spread
		hi[i] = mid + spread
	}
}

// InsideBox reports whether the current step's reach box is contained in b
// without materializing a geom.Box. The comparisons mirror
// Box.ContainsBounds exactly, so the result is bit-identical to
// b.ContainsBox(s.Box()) for finite bounds; non-finite arithmetic (NaN from
// a corrupt start state) conservatively reports "outside".
func (s *Stepper) InsideBox(b geom.Box) bool {
	for i := range s.x {
		mid := s.x[i] + s.a.drift[s.step][i]
		spread := s.a.inputSpread[s.step][i] + s.a.noiseSpread[s.step][i] + s.r*s.a.initSpread[s.step][i]
		iv := b.Interval(i)
		if !(mid-spread >= iv.Lo && mid+spread <= iv.Hi) {
			return false
		}
	}
	return true
}

// SafeSlack returns the largest Euclidean distance δ the start state x0 may
// move while the current step's reach box provably remains inside b, or a
// negative value when the box is not contained (matching InsideBox). The
// bound is per-dimension Cauchy–Schwarz: moving x0 by δ shifts the step-t
// center in dimension i by at most ‖(A^t)ᵀe_i‖₂·δ = initSpread[t][i]·δ,
// so a containment margin m_i tolerates any δ ≤ m_i / initSpread[t][i].
// This is the warm-start certificate of the deadline estimator.
func (s *Stepper) SafeSlack(b geom.Box) float64 {
	slack := math.Inf(1)
	t := s.step
	for i := range s.x {
		mid := s.x[i] + s.a.drift[t][i]
		spread := s.a.inputSpread[t][i] + s.a.noiseSpread[t][i] + s.r*s.a.initSpread[t][i]
		iv := b.Interval(i)
		m := mid - spread - iv.Lo
		if up := iv.Hi - (mid + spread); up < m {
			m = up
		}
		if !(m >= 0) {
			return -1
		}
		if isp := s.a.initSpread[t][i]; isp > 0 {
			if sl := m / isp; sl < slack {
				slack = sl
			}
		}
	}
	return slack
}

// UnsafeSlack is the dual of SafeSlack: the largest Euclidean distance δ
// the start state x0 may move while the current step's reach box provably
// remains NOT contained in b, or a negative value when the box is contained
// (no violation to preserve). The bound is the same per-dimension
// Cauchy–Schwarz argument: moving x0 by δ shifts the step-t center in
// dimension i by at most initSpread[t][i]·δ, so a face violated by v_i
// stays violated for any δ < v_i / initSpread[t][i]; the box stays outside
// b as long as one violated face survives, hence the max over faces. A
// dimension with zero initSpread keeps its violation for every δ
// (+Inf slack). Non-finite bounds (NaN from a corrupt start state) report
// no preservable violation, the conservative answer for certificate use.
func (s *Stepper) UnsafeSlack(b geom.Box) float64 {
	worst := -1.0
	t := s.step
	for i := range s.x {
		mid := s.x[i] + s.a.drift[t][i]
		spread := s.a.inputSpread[t][i] + s.a.noiseSpread[t][i] + s.r*s.a.initSpread[t][i]
		iv := b.Interval(i)
		isp := s.a.initSpread[t][i]
		if v := iv.Lo - (mid - spread); v > 0 {
			sl := math.Inf(1)
			if isp > 0 {
				sl = v / isp
			}
			if sl > worst {
				worst = sl
			}
		}
		if v := (mid + spread) - iv.Hi; v > 0 {
			sl := math.Inf(1)
			if isp > 0 {
				sl = v / isp
			}
			if sl > worst {
				worst = sl
			}
		}
	}
	return worst
}

// Advance moves to the next step; it reports false once the horizon is
// exhausted.
func (s *Stepper) Advance() bool {
	if s.step >= s.a.horizon {
		return false
	}
	s.step++
	s.a.powers[s.step].MulVecTo(s.x, s.x0)
	return true
}

// JumpTo positions the stepper directly at step t via the precomputed power
// table — bit-identical to Advancing t times from a fresh Reset, at the
// cost of a single mat-vec. This is what lets the warm-started deadline
// search skip its provably-safe prefix.
func (s *Stepper) JumpTo(t int) error {
	if t < 0 || t > s.a.horizon {
		return fmt.Errorf("reach: jump step %d outside horizon [0, %d]", t, s.a.horizon)
	}
	s.step = t
	if t == 0 {
		copy(s.x, s.x0)
		return nil
	}
	s.a.powers[t].MulVecTo(s.x, s.x0)
	return nil
}

// FirstUnsafe searches steps 1..Horizon for the first step at which the
// reachable-set over-approximation is no longer contained in the safe box
// (equivalently, intersects the unsafe complement F — Definition 3.1). It
// returns that step and true, or Horizon and false if the system remains
// conservatively safe over the whole horizon. Dimension mismatches are
// returned as errors.
func (a *Analysis) FirstUnsafe(x0 mat.Vec, initRadius float64, safe geom.Box) (int, bool, error) {
	if safe.Dim() != a.sys.StateDim() {
		return 0, false, fmt.Errorf("reach: safe set dimension %d, want %d", safe.Dim(), a.sys.StateDim())
	}
	s, err := a.Stepper(x0, initRadius)
	if err != nil {
		return 0, false, err
	}
	for s.Advance() {
		if !s.InsideBox(safe) {
			return s.Step(), true, nil
		}
	}
	return a.horizon, false, nil
}

// Deadline returns the detection deadline t_d from x0 (Sec. 3.3.2): the last
// step before the reachable set can leave the safe box, clamped to the
// horizon. A deadline of 0 means the very next step may already be unsafe.
func (a *Analysis) Deadline(x0 mat.Vec, initRadius float64, safe geom.Box) (int, error) {
	t, found, err := a.FirstUnsafe(x0, initRadius, safe)
	if err != nil {
		return 0, err
	}
	if !found {
		return a.horizon, nil
	}
	return t - 1, nil
}

// NaiveReachBox evaluates Eq. (2) directly — rebuilding every Minkowski-sum
// term from scratch, with no precomputation — as a differential oracle for
// Analysis and as the baseline in the overhead ablation.
func NaiveReachBox(sys *lti.System, u geom.Box, eps float64, x0 mat.Vec, t int) geom.Box {
	n, m := sys.StateDim(), sys.InputDim()
	c := u.Center()
	gamma := u.HalfWidths()
	lo := make([]float64, n)
	hi := make([]float64, n)
	at := sys.A.Pow(t)
	center := at.MulVec(x0)
	for i := 0; i < n; i++ {
		mid := center[i]
		spread := 0.0
		for j := 0; j < t; j++ {
			aj := sys.A.Pow(j)
			ajB := aj.Mul(sys.B)
			row := ajB.Row(i)
			mid += row.Dot(c)
			s1 := 0.0
			for k := 0; k < m; k++ {
				s1 += math.Abs(row[k]) * gamma[k]
			}
			spread += s1 + eps*aj.Row(i).Norm2()
		}
		lo[i] = mid - spread
		hi[i] = mid + spread
	}
	return geom.BoxFromBounds(lo, hi)
}
