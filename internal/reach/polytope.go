package reach

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/mat"
)

// This file generalizes the deadline search from box safe sets to
// polytopic ones by evaluating the support function of the reachable set
// (Eq. 3) directly along each face normal l:
//
//	ρ_R(l, t) = lᵀA^t x₀ + Σ_{j<t} (A^jᵀl)ᵀBc + Σ_{j<t} ‖Qᵀ Bᵀ A^jᵀ l‖₁
//	          + Σ_{j<t} ε‖A^jᵀ l‖₂ (+ r‖A^tᵀ l‖₂ for an initial ball)
//
// The per-direction sums are accumulated incrementally via v_{j+1} = Aᵀv_j,
// so a full horizon sweep over F faces costs O(F · horizon · n²) — the same
// order as the box search with F = 2n axis directions.

// SupportSweep walks ρ_R(l, ·) along one direction across the horizon.
type SupportSweep struct {
	a     *Analysis
	x0    mat.Vec
	r     float64
	l     mat.Vec
	v     mat.Vec // (Aᵀ)^t l
	drift float64 // Σ (A^jᵀl)ᵀ B c
	s1    float64 // Σ ‖Qᵀ Bᵀ A^jᵀ l‖₁
	s2    float64 // Σ ε ‖A^jᵀ l‖₂
	step  int

	bc    mat.Vec
	gamma mat.Vec
}

// SupportSweep returns a sweep for direction l positioned at step 0.
// Dimension mismatches and negative radii are configuration faults
// returned as errors.
func (a *Analysis) SupportSweep(x0 mat.Vec, initRadius float64, l mat.Vec) (*SupportSweep, error) {
	n := a.sys.StateDim()
	if len(x0) != n {
		return nil, fmt.Errorf("reach: x0 dimension %d, want %d", len(x0), n)
	}
	if len(l) != n {
		return nil, fmt.Errorf("reach: direction dimension %d, want %d", len(l), n)
	}
	if initRadius < 0 {
		return nil, fmt.Errorf("reach: negative initial radius %v", initRadius)
	}
	return &SupportSweep{
		a:     a,
		x0:    x0.Clone(),
		r:     initRadius,
		l:     l.Clone(),
		v:     l.Clone(),
		bc:    a.sys.B.MulVec(a.inputs.Center()),
		gamma: a.inputs.HalfWidths(),
	}, nil
}

// Step returns the current step index.
func (s *SupportSweep) Step() int { return s.step }

// Value returns ρ_R(l) at the current step.
func (s *SupportSweep) Value() float64 {
	return s.v.Dot(s.x0) + s.drift + s.s1 + s.s2 + s.r*s.v.Norm2()
}

// Advance moves one step forward; false once the horizon is exhausted.
func (s *SupportSweep) Advance() bool {
	if s.step >= s.a.horizon {
		return false
	}
	// Fold the step-j terms (j = current step) into the sums, then advance
	// v to (Aᵀ)^{j+1} l.
	s.drift += s.v.Dot(s.bc)
	btv := s.a.sys.B.MulVecTrans(s.v) // Bᵀ v
	acc := 0.0
	for k, g := range s.gamma {
		if btv[k] < 0 {
			acc -= btv[k] * g
		} else {
			acc += btv[k] * g
		}
	}
	s.s1 += acc
	s.s2 += s.a.eps * s.v.Norm2()
	s.v = s.a.sys.A.MulVecTrans(s.v) // Aᵀ v
	s.step++
	return true
}

// SupportAt evaluates ρ_R(l) of the reachable set t steps from x0 (with an
// optional initial ball of radius initRadius). t must be within the
// horizon.
func (a *Analysis) SupportAt(x0 mat.Vec, initRadius float64, l mat.Vec, t int) (float64, error) {
	if t < 0 || t > a.horizon {
		return 0, fmt.Errorf("reach: step %d outside horizon [0, %d]", t, a.horizon)
	}
	s, err := a.SupportSweep(x0, initRadius, l)
	if err != nil {
		return 0, err
	}
	for s.Step() < t {
		s.Advance()
	}
	return s.Value(), nil
}

// FirstUnsafePolytope searches steps 1..Horizon for the first step at which
// the reachable set's support exceeds any face of the polytopic safe set
// (Definition 3.1 for general convex safe regions). It returns that step
// and true, or Horizon and false when conservatively safe throughout.
func (a *Analysis) FirstUnsafePolytope(x0 mat.Vec, initRadius float64, safe geom.Polytope) (int, bool, error) {
	if safe.Dim() != a.sys.StateDim() {
		return 0, false, fmt.Errorf("reach: polytope dimension %d, want %d", safe.Dim(), a.sys.StateDim())
	}
	sweeps := make([]*SupportSweep, safe.NumFaces())
	for i := range sweeps {
		s, err := a.SupportSweep(x0, initRadius, safe.Face(i).Normal)
		if err != nil {
			return 0, false, err
		}
		sweeps[i] = s
	}
	for t := 1; t <= a.horizon; t++ {
		for i, s := range sweeps {
			s.Advance()
			if s.Value() > safe.Face(i).Offset {
				return t, true, nil
			}
		}
	}
	return a.horizon, false, nil
}

// DeadlinePolytope is the polytopic-safe-set deadline: the last step before
// the reachable set can cross any face, clamped to the horizon.
func (a *Analysis) DeadlinePolytope(x0 mat.Vec, initRadius float64, safe geom.Polytope) (int, error) {
	t, found, err := a.FirstUnsafePolytope(x0, initRadius, safe)
	if err != nil {
		return 0, err
	}
	if !found {
		return a.horizon, nil
	}
	return t - 1, nil
}
