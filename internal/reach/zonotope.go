package reach

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

// ZonotopeStepper propagates the reachable set as a zonotope:
//
//	X_{t+1} = A X_t ⊕ B·U ⊕ W,   W = box over-approximation of B_ε,
//
// with Girard-style order reduction to keep the generator count bounded.
// It is the classic Le Guernic/Girard recurrence the paper's support-
// function method is derived from, provided as an alternative backend:
// exact for the box-shaped input set, conservative for the ε-ball noise
// (a box inscribing the ball is used, so per-axis bounds are looser by up
// to the 1-norm/2-norm gap; with ε = 0 the per-axis bounds coincide with
// Eq. (4)/(5) exactly — the tests pin both facts down).
type ZonotopeStepper struct {
	sys      *lti.System
	inputSet geom.Zonotope
	noiseSet geom.Zonotope
	maxOrder int

	cur  geom.Zonotope
	step int
}

// NewZonotopeStepper starts the recurrence at the point x0. maxOrder bounds
// the generator count (clamped to at least the state dimension); 0 selects
// a default of 5n.
func NewZonotopeStepper(sys *lti.System, u geom.Box, eps float64, x0 mat.Vec, maxOrder int) (*ZonotopeStepper, error) {
	n := sys.StateDim()
	if len(x0) != n {
		return nil, fmt.Errorf("reach: x0 dimension %d, want %d", len(x0), n)
	}
	if u.Dim() != sys.InputDim() {
		return nil, fmt.Errorf("reach: input box dimension %d, want %d", u.Dim(), sys.InputDim())
	}
	if !u.Bounded() {
		return nil, fmt.Errorf("reach: input box must be bounded")
	}
	if eps < 0 {
		return nil, fmt.Errorf("reach: negative eps %v", eps)
	}
	if maxOrder <= 0 {
		maxOrder = 5 * n
	}

	// B·U as a zonotope: map the input box through B.
	inputSet := geom.ZonotopeFromBox(u).LinearMap(sys.B)
	// Noise ball over-approximated by the inscribing box [−ε, ε]^n.
	noiseSet := geom.NewZonotope(mat.NewVec(n))
	if eps > 0 {
		noiseSet = geom.ZonotopeFromBox(geom.UniformBox(n, -eps, eps))
	}
	return &ZonotopeStepper{
		sys:      sys,
		inputSet: inputSet,
		noiseSet: noiseSet,
		maxOrder: maxOrder,
		cur:      geom.NewZonotope(x0),
	}, nil
}

// Step returns the current step index.
func (zs *ZonotopeStepper) Step() int { return zs.step }

// Set returns the current reachable-set zonotope.
func (zs *ZonotopeStepper) Set() geom.Zonotope { return zs.cur }

// Box returns the bounding box of the current reachable set.
func (zs *ZonotopeStepper) Box() geom.Box { return zs.cur.BoundingBox() }

// Advance applies one step of the recurrence.
func (zs *ZonotopeStepper) Advance() {
	next := zs.cur.LinearMap(zs.sys.A).MinkowskiSum(zs.inputSet).MinkowskiSum(zs.noiseSet)
	zs.cur = next.Reduce(zs.maxOrder)
	zs.step++
}

// FirstUnsafeZonotope searches steps 1..maxSteps for the first step whose
// zonotope reachable set is not contained in the safe box.
func FirstUnsafeZonotope(sys *lti.System, u geom.Box, eps float64, x0 mat.Vec,
	safe geom.Box, maxSteps, maxOrder int) (int, bool, error) {
	zs, err := NewZonotopeStepper(sys, u, eps, x0, maxOrder)
	if err != nil {
		return 0, false, err
	}
	for t := 1; t <= maxSteps; t++ {
		zs.Advance()
		if !safe.ContainsBox(zs.Box()) {
			return t, true, nil
		}
	}
	return maxSteps, false, nil
}
