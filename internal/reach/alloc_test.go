package reach

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

// A Stepper allocates only at construction: the reset / advance / contain
// cycle that the deadline search runs every control period must be free of
// heap allocations.
func TestStepperNoAllocsSteadyState(t *testing.T) {
	ac := mat.FromRows([][]float64{{0.96, 0.1, 0}, {-0.07, 0.93, 0.05}, {0.01, 0, 0.9}})
	bc := mat.ColVec(mat.VecOf(0.1, 0.05, 0.02))
	sys, err := lti.New(ac, bc, nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(sys, geom.UniformBox(1, -1, 1), 0.02, 30)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(3, -50, 50)
	x0 := mat.VecOf(0.3, -0.2, 0.1)
	s, err := an.Stepper(x0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := make([]float64, 3), make([]float64, 3)
	if allocs := testing.AllocsPerRun(100, func() {
		if err := s.Reset(x0, 0.05); err != nil {
			t.Fatal(err)
		}
		for s.Advance() {
			if !s.InsideBox(safe) {
				t.Fatal("unexpectedly outside the roomy safe set")
			}
			s.Bounds(lo, hi)
			_ = s.SafeSlack(safe)
		}
		if err := s.JumpTo(15); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Stepper cycle allocates %v per run, want 0", allocs)
	}
}
