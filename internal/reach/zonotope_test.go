package reach

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/noise"
)

func TestZonotopeStepperMatchesBoxBoundsWithoutNoise(t *testing.T) {
	// With ε = 0 the zonotope recurrence is exact for box inputs, and its
	// per-axis bounding box must coincide with the Eq. (4)/(5) bounds.
	sys := twoDimSystem(t)
	u := geom.BoxFromBounds([]float64{-1, 0.5}, []float64{2, 3})
	an, err := New(sys, u, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.7, -0.4)
	zs, err := NewZonotopeStepper(sys, u, 0, x0, 200) // high order: no reduction error
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 12; tt++ {
		zs.Advance()
		want, err := an.ReachBox(x0, tt)
		if err != nil {
			t.Fatal(err)
		}
		got := zs.Box()
		for d := 0; d < 2; d++ {
			if math.Abs(got.Interval(d).Lo-want.Interval(d).Lo) > 1e-9 ||
				math.Abs(got.Interval(d).Hi-want.Interval(d).Hi) > 1e-9 {
				t.Fatalf("t=%d dim=%d: zonotope %v vs support-function %v",
					tt, d, got.Interval(d), want.Interval(d))
			}
		}
	}
}

func TestZonotopeStepperConservativeForBallNoise(t *testing.T) {
	// With ε > 0 the zonotope uses the inscribing box for the noise ball,
	// so its per-axis bounds must contain the (tighter, ball-exact)
	// support-function bounds.
	sys := twoDimSystem(t)
	u := geom.UniformBox(2, -1, 1)
	const eps = 0.05
	an, err := New(sys, u, eps, 10)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.2, 0.1)
	zs, err := NewZonotopeStepper(sys, u, eps, x0, 200)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 10; tt++ {
		zs.Advance()
		exact, err := an.ReachBox(x0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if !zs.Box().ContainsBox(exact) {
			t.Fatalf("t=%d: zonotope box %v does not contain support bounds %v", tt, zs.Box(), exact)
		}
	}
}

func TestZonotopeStepperSoundnessProperty(t *testing.T) {
	// Simulated admissible trajectories stay inside the zonotope bounds
	// even with aggressive order reduction.
	sys := twoDimSystem(t)
	u := geom.UniformBox(2, -1, 1)
	const eps = 0.03
	x0 := mat.VecOf(0.5, -0.5)
	zs, err := NewZonotopeStepper(sys, u, eps, x0, 0) // default (reduced) order
	if err != nil {
		t.Fatal(err)
	}
	boxes := make([]geom.Box, 0, 15)
	for tt := 1; tt <= 15; tt++ {
		zs.Advance()
		boxes = append(boxes, zs.Box())
	}
	src := noise.NewSource(91)
	ball := noise.NewBall(92, 2, eps)
	for trial := 0; trial < 40; trial++ {
		x := x0.Clone()
		for tt := 1; tt <= 15; tt++ {
			uv := mat.VecOf(src.Uniform(-1, 1), src.Uniform(-1, 1))
			x = sys.Step(x, uv, ball.Sample(tt))
			if !boxes[tt-1].Contains(x) {
				t.Fatalf("trial %d step %d: trajectory escaped zonotope bounds", trial, tt)
			}
		}
	}
}

func TestZonotopeOrderStaysBounded(t *testing.T) {
	sys := twoDimSystem(t)
	zs, err := NewZonotopeStepper(sys, geom.UniformBox(2, -1, 1), 0.01, mat.VecOf(0, 0), 12)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 100; tt++ {
		zs.Advance()
		if zs.Set().Order() > 12 {
			t.Fatalf("step %d: order %d exceeds cap", tt, zs.Set().Order())
		}
	}
	if zs.Step() != 100 {
		t.Errorf("step counter = %d", zs.Step())
	}
}

func TestFirstUnsafeZonotopeAgreesWithBoxSearch(t *testing.T) {
	// ε = 0: both representations are exact per-axis, so the first-unsafe
	// step must agree.
	sys := twoDimSystem(t)
	u := geom.UniformBox(2, -1, 1)
	an, err := New(sys, u, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	safe := geom.UniformBox(2, -2, 2)
	for _, x0 := range []mat.Vec{{0, 0}, {1.5, 1.5}, {-1.9, 0}} {
		tb, fb, err := an.FirstUnsafe(x0, 0, safe)
		if err != nil {
			t.Fatal(err)
		}
		tz, fz, err := FirstUnsafeZonotope(sys, u, 0, x0, safe, 30, 200)
		if err != nil {
			t.Fatal(err)
		}
		if tb != tz || fb != fz {
			t.Errorf("x0=%v: box (%d,%v) vs zonotope (%d,%v)", x0, tb, fb, tz, fz)
		}
	}
}

func TestZonotopeStepperValidation(t *testing.T) {
	sys := twoDimSystem(t)
	u := geom.UniformBox(2, -1, 1)
	if _, err := NewZonotopeStepper(sys, u, 0, mat.VecOf(1), 0); err == nil {
		t.Error("bad x0 accepted")
	}
	if _, err := NewZonotopeStepper(sys, geom.UniformBox(1, -1, 1), 0, mat.VecOf(0, 0), 0); err == nil {
		t.Error("bad input box accepted")
	}
	if _, err := NewZonotopeStepper(sys, geom.NewBox(geom.Whole(), geom.Whole()), 0, mat.VecOf(0, 0), 0); err == nil {
		t.Error("unbounded input box accepted")
	}
	if _, err := NewZonotopeStepper(sys, u, -1, mat.VecOf(0, 0), 0); err == nil {
		t.Error("negative eps accepted")
	}
}
