package reach

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/noise"
)

func twoDimSystem(t *testing.T) *lti.System {
	t.Helper()
	sys, err := lti.New(
		mat.FromRows([][]float64{{0.97, 0.08}, {-0.06, 0.95}}),
		mat.FromRows([][]float64{{0.05, 0}, {0, 0.04}}),
		nil, 0.02,
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSupportAtMatchesBoxOnAxisDirections(t *testing.T) {
	sys := twoDimSystem(t)
	u := geom.BoxFromBounds([]float64{-1, 0}, []float64{2, 3})
	an, err := New(sys, u, 0.03, 15)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.4, -0.2)
	const r = 0.05
	for tt := 0; tt <= 15; tt++ {
		box, err := an.ReachBoxFromBall(x0, r, tt)
		if err != nil {
			t.Fatal(err)
		}
		for dim := 0; dim < 2; dim++ {
			up, err := an.SupportAt(x0, r, mat.Basis(2, dim), tt)
			if err != nil {
				t.Fatal(err)
			}
			down, err := an.SupportAt(x0, r, mat.Basis(2, dim).Scale(-1), tt)
			if err != nil {
				t.Fatal(err)
			}
			lo := -down
			if math.Abs(up-box.Interval(dim).Hi) > 1e-9 || math.Abs(lo-box.Interval(dim).Lo) > 1e-9 {
				t.Errorf("t=%d dim=%d: support [%v,%v] vs box %v", tt, dim, lo, up, box.Interval(dim))
			}
		}
	}
}

func TestSupportSweepMatchesSupportAt(t *testing.T) {
	sys := twoDimSystem(t)
	an, err := New(sys, geom.UniformBox(2, -1, 1), 0.02, 12)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(1, 1)
	l := mat.VecOf(0.6, -0.8)
	s, err := an.SupportSweep(x0, 0.01, l)
	if err != nil {
		t.Fatal(err)
	}
	for {
		want, err := an.SupportAt(x0, 0.01, l, s.Step())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Value()-want) > 1e-9 {
			t.Fatalf("step %d: sweep %v vs direct %v", s.Step(), s.Value(), want)
		}
		if !s.Advance() {
			break
		}
	}
}

// Soundness along arbitrary directions: lᵀx_t <= ρ_R(l, t) for every
// simulated admissible trajectory.
func TestSupportSoundnessProperty(t *testing.T) {
	sys := twoDimSystem(t)
	u := geom.UniformBox(2, -1, 1)
	const eps = 0.02
	an, err := New(sys, u, eps, 20)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(0.3, -0.5)
	src := noise.NewSource(77)
	ball := noise.NewBall(78, 2, eps)
	dirs := []mat.Vec{{1, 1}, {1, -1}, {-2, 0.5}, {0.3, 0.9}}
	for trial := 0; trial < 30; trial++ {
		x := x0.Clone()
		for tt := 1; tt <= 20; tt++ {
			uv := mat.VecOf(src.Uniform(-1, 1), src.Uniform(-1, 1))
			x = sys.Step(x, uv, ball.Sample(tt))
			for _, l := range dirs {
				sup, err := an.SupportAt(x0, 0, l, tt)
				if err != nil {
					t.Fatal(err)
				}
				if l.Dot(x) > sup+1e-9 {
					t.Fatalf("trial %d step %d: support violated along %v", trial, tt, l)
				}
			}
		}
	}
}

func TestFirstUnsafePolytopeMatchesBoxForBoxSafeSets(t *testing.T) {
	sys := twoDimSystem(t)
	an, err := New(sys, geom.UniformBox(2, -1, 1), 0.02, 30)
	if err != nil {
		t.Fatal(err)
	}
	safeBox := geom.UniformBox(2, -2, 2)
	safePoly := geom.PolytopeFromBox(safeBox)
	for _, x0 := range []mat.Vec{{0, 0}, {1.5, 0}, {1.2, -1.2}, {1.95, 1.95}} {
		tb, fb, err := an.FirstUnsafe(x0, 0.01, safeBox)
		if err != nil {
			t.Fatal(err)
		}
		tp, fp, err := an.FirstUnsafePolytope(x0, 0.01, safePoly)
		if err != nil {
			t.Fatal(err)
		}
		if tb != tp || fb != fp {
			t.Errorf("x0=%v: box (%d,%v) vs polytope (%d,%v)", x0, tb, fb, tp, fp)
		}
	}
}

func TestPolytopeDeadlineTighterForDiagonalFaces(t *testing.T) {
	// A diagonal face x+y <= b cannot be represented by a box safe set; the
	// nearest box either over- or under-constrains. Check that the polytopic
	// deadline search reacts to the diagonal distance rather than the
	// per-axis distance: a state near the diagonal face but far from any
	// axis bound must get a small deadline.
	sys, err := lti.New(
		mat.FromRows([][]float64{{1, 0.05}, {0, 1}}),
		mat.Diag(0.1, 0.1),
		nil, 0.02,
	)
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(sys, geom.UniformBox(2, -1, 1), 0.01, 40)
	if err != nil {
		t.Fatal(err)
	}
	diag := geom.NewPolytope(geom.NewHalfspace(mat.VecOf(1, 1), 3))
	near := mat.VecOf(1.45, 1.45) // x+y = 2.9, close to the face
	far := mat.VecOf(-1, -1)
	dn, err := an.DeadlinePolytope(near, 0, diag)
	if err != nil {
		t.Fatal(err)
	}
	df, err := an.DeadlinePolytope(far, 0, diag)
	if err != nil {
		t.Fatal(err)
	}
	if dn >= df {
		t.Errorf("near-face deadline %d should be tighter than far %d", dn, df)
	}
	if dn > 10 {
		t.Errorf("near-face deadline %d suspiciously large", dn)
	}
}

func TestDeadlinePolytopeClampsToHorizon(t *testing.T) {
	sys := twoDimSystem(t)
	an, err := New(sys, geom.UniformBox(2, -0.01, 0.01), 0.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	roomy := geom.NewPolytope(geom.NewHalfspace(mat.VecOf(1, 0), 1e6))
	if d, err := an.DeadlinePolytope(mat.VecOf(0, 0), 0, roomy); err != nil || d != 10 {
		t.Errorf("deadline = %d (err %v), want horizon 10", d, err)
	}
}

func TestSupportSweepValidation(t *testing.T) {
	sys := twoDimSystem(t)
	an, _ := New(sys, geom.UniformBox(2, -1, 1), 0, 5)
	for i, fn := range []func() error{
		func() error { _, err := an.SupportSweep(mat.VecOf(1), 0, mat.VecOf(1, 0)); return err },
		func() error { _, err := an.SupportSweep(mat.VecOf(1, 0), 0, mat.VecOf(1)); return err },
		func() error { _, err := an.SupportSweep(mat.VecOf(1, 0), -1, mat.VecOf(1, 0)); return err },
		func() error { _, err := an.SupportAt(mat.VecOf(1, 0), 0, mat.VecOf(1, 0), 6); return err },
		func() error {
			_, _, err := an.FirstUnsafePolytope(mat.VecOf(1, 0), 0, geom.NewPolytope(geom.NewHalfspace(mat.VecOf(1), 0)))
			return err
		},
	} {
		if err := fn(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
