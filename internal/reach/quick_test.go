package reach

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/noise"
)

// Quick-generated soundness: for randomly generated stable 2-D plants,
// input boxes, and initial states, simulated admissible trajectories must
// stay inside the Eq. (4)/(5) over-approximation at every step. This is the
// repository's most important invariant — a violation would make the
// "conservatively safe" guarantee (Definition 3.1) false.
func TestQuickReachSoundnessRandomSystems(t *testing.T) {
	trial := 0
	f := func(aRaw [4]int8, bRaw [2]uint8, uRaw [2]uint8, x0Raw [2]int8, epsRaw uint8) bool {
		trial++
		// Build a contraction-scaled A (entries in [−1.27, 1.27] scaled by
		// 0.6 keeps most draws stable; stability is not actually required
		// for soundness, only boundedness over the horizon).
		a := mat.FromRows([][]float64{
			{float64(aRaw[0]) / 100 * 0.6, float64(aRaw[1]) / 100 * 0.6},
			{float64(aRaw[2]) / 100 * 0.6, float64(aRaw[3]) / 100 * 0.6},
		})
		bm := mat.ColVec(mat.VecOf(float64(bRaw[0])/200, float64(bRaw[1])/200))
		sys, err := lti.New(a, bm, nil, 0.02)
		if err != nil {
			return false
		}
		uLo := -float64(uRaw[0]) / 50
		uHi := float64(uRaw[1]) / 50
		if uHi < uLo {
			uLo, uHi = uHi, uLo
		}
		u := geom.BoxFromBounds([]float64{uLo}, []float64{uHi})
		eps := float64(epsRaw) / 2000
		const horizon = 12
		an, err := New(sys, u, eps, horizon)
		if err != nil {
			return false
		}
		x0 := mat.VecOf(float64(x0Raw[0])/20, float64(x0Raw[1])/20)

		src := noise.NewSource(uint64(trial))
		ball := noise.NewBall(uint64(trial)+1000, 2, eps)
		x := x0.Clone()
		for tt := 1; tt <= horizon; tt++ {
			uv := mat.VecOf(src.Uniform(uLo, uHi+1e-300))
			x = sys.Step(x, uv, ball.Sample(tt))
			box, err := an.ReachBox(x0, tt)
			if err != nil || !box.Inflate(1e-9).Contains(x) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Quick-generated agreement: the zonotope backend (ε = 0) and the
// support-function tables must produce identical per-axis bounds on random
// systems.
func TestQuickZonotopeBoxAgreementRandomSystems(t *testing.T) {
	f := func(aRaw [4]int8, x0Raw [2]int8) bool {
		a := mat.FromRows([][]float64{
			{float64(aRaw[0]) / 100, float64(aRaw[1]) / 100},
			{float64(aRaw[2]) / 100, float64(aRaw[3]) / 100},
		})
		bm := mat.Diag(0.1, 0.05)
		sys, err := lti.New(a, bm, nil, 0.02)
		if err != nil {
			return false
		}
		u := geom.UniformBox(2, -1, 1)
		const horizon = 8
		an, err := New(sys, u, 0, horizon)
		if err != nil {
			return false
		}
		x0 := mat.VecOf(float64(x0Raw[0])/10, float64(x0Raw[1])/10)
		zs, err := NewZonotopeStepper(sys, u, 0, x0, 500)
		if err != nil {
			return false
		}
		for tt := 1; tt <= horizon; tt++ {
			zs.Advance()
			want, err := an.ReachBox(x0, tt)
			if err != nil {
				return false
			}
			got := zs.Box()
			for d := 0; d < 2; d++ {
				if diff := got.Interval(d).Lo - want.Interval(d).Lo; diff > 1e-8 || diff < -1e-8 {
					return false
				}
				if diff := got.Interval(d).Hi - want.Interval(d).Hi; diff > 1e-8 || diff < -1e-8 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
