package reach

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lti"
	"repro/internal/mat"
)

// FuzzSupportFunction fuzzes the geometric primitives the reachability
// core is built on (Sec. 3.2): support functions of boxes and zonotopes
// and the precomputed reach bound. Checked invariants:
//
//   - positive homogeneity: h(k·l) = k·h(l) for k > 0;
//   - translation covariance: h_{Z+v}(l) = h_Z(l) + l·v;
//   - box/zonotope agreement: a box and its zonotope form have identical
//     support in every direction;
//   - no NaN/Inf escapes from finite inputs — a single rogue non-finite
//     support value corrupts the deadline search silently.
func FuzzSupportFunction(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 0.5, -0.5)
	f.Add(1.0, -2.0, 0.5, 0.25, -0.1, 0.3, -1.0, 0.5, 0.1, 3.0, 4.0)
	f.Add(-5.0, 5.0, 0.0, 0.0, 2.0, -2.0, 0.0, -1.0, 10.0, -1.0, 1.0)

	f.Fuzz(func(t *testing.T, cx, cy, g1x, g1y, g2x, g2y, lx, ly, k, vx, vy float64) {
		for _, v := range []float64{cx, cy, g1x, g1y, g2x, g2y, lx, ly, k, vx, vy} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				t.Skip("inputs constrained to finite, overflow-safe range")
			}
		}
		z := geom.NewZonotope(mat.VecOf(cx, cy), mat.VecOf(g1x, g1y), mat.VecOf(g2x, g2y))
		l := mat.VecOf(lx, ly)
		v := mat.VecOf(vx, vy)

		h := z.Support(l)
		if math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("support escaped to %v for finite zonotope and direction", h)
		}

		// Positive homogeneity. Scale k into (0, 1e3] to keep products finite.
		scale := math.Abs(k)
		if scale > 1e3 {
			scale = 1e3
		}
		if scale > 0 {
			got := z.Support(l.Scale(scale))
			want := scale * h
			if !mat.ApproxEq(got, want, 1e-6*(1+math.Abs(want))) {
				t.Fatalf("homogeneity: h(%v·l) = %v, want %v", scale, got, want)
			}
		}

		// Translation covariance.
		got := z.Translate(v).Support(l)
		want := h + l.Dot(v)
		if !mat.ApproxEq(got, want, 1e-6*(1+math.Abs(want))) {
			t.Fatalf("translation: h = %v, want %v", got, want)
		}

		// A box and its zonotope form agree in every fuzzed direction.
		lo := mat.VecOf(math.Min(cx, cy), math.Min(g1x, g1y))
		hi := mat.VecOf(math.Max(cx, cy)+math.Abs(vx), math.Max(g1x, g1y)+math.Abs(vy))
		box := geom.BoxFromBounds(lo, hi)
		hb := box.Support(l)
		hz := geom.ZonotopeFromBox(box).Support(l)
		if !mat.ApproxEq(hb, hz, 1e-6*(1+math.Abs(hb))) {
			t.Fatalf("box support %v != zonotope-from-box support %v", hb, hz)
		}
	})
}

// FuzzReachBoundFinite fuzzes the precomputed reach bound (Eq. 4/5):
// for any finite plant in the contraction regime, initial state, and
// direction, SupportAt must stay finite, agree with the incremental
// SupportSweep, and grow monotonically with the initial-set radius.
func FuzzReachBoundFinite(f *testing.F) {
	f.Add(0.9, 0.1, 0.5, 1.0, 0.5, 0.25)
	f.Add(-0.5, 0.3, -1.0, 0.0, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, a11, a12, x1, x2, lx, r float64) {
		for _, v := range []float64{a11, a12, x1, x2, lx, r} {
			if math.IsNaN(v) || math.Abs(v) > 1e3 {
				t.Skip("inputs constrained")
			}
		}
		// Keep A a contraction so the horizon sums stay bounded.
		clamp := func(v float64) float64 { return math.Mod(v, 1) * 0.95 }
		A := mat.FromRows([][]float64{{clamp(a11), clamp(a12)}, {0, 0.5}})
		sys, err := lti.New(A, mat.ColVec(mat.VecOf(0.1, 0.2)), nil, 1)
		if err != nil {
			t.Skip(err)
		}
		an, err := New(sys, geom.UniformBox(1, -1, 1), 0.01, 6)
		if err != nil {
			t.Fatal(err)
		}
		x0 := mat.VecOf(x1, x2)
		l := mat.VecOf(lx, 1-lx)
		radius := math.Abs(math.Mod(r, 10))

		sweep, err := an.SupportSweep(x0, radius, l)
		if err != nil {
			t.Fatal(err)
		}
		for ti := 0; ti <= an.Horizon(); ti++ {
			direct, err := an.SupportAt(x0, radius, l, ti)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(direct) || math.IsInf(direct, 0) {
				t.Fatalf("SupportAt(t=%d) escaped to %v", ti, direct)
			}
			if sweep.Step() != ti {
				t.Fatalf("sweep step %d, want %d", sweep.Step(), ti)
			}
			if !mat.ApproxEq(sweep.Value(), direct, 1e-6*(1+math.Abs(direct))) {
				t.Fatalf("sweep value %v != SupportAt %v at t=%d", sweep.Value(), direct, ti)
			}
			// Monotone in the initial-set radius: a bigger trusted ball can
			// only widen the over-approximation.
			wider, err := an.SupportAt(x0, radius+1, l, ti)
			if err != nil {
				t.Fatal(err)
			}
			if wider < direct-1e-9 {
				t.Fatalf("radius monotonicity violated at t=%d: %v < %v", ti, wider, direct)
			}
			if ti < an.Horizon() && !sweep.Advance() {
				t.Fatalf("sweep refused to advance at t=%d", ti)
			}
		}
	})
}

// FuzzStepperMatchesReachBox fuzzes the allocation-free Stepper against the
// direct ReachBoxFromBall evaluation: bounds must agree bit-exactly at every
// step (both evaluate powers[t]·x0 with the same kernel), and the
// InsideBox / SafeSlack fast paths must agree with the materialized
// geom.Box containment check.
func FuzzStepperMatchesReachBox(f *testing.F) {
	f.Add(0.9, 0.1, 0.5, 1.0, 0.25, 2.0)
	f.Add(-0.5, 0.3, -1.0, 0.0, 0.0, 5.0)
	f.Add(0.2, -0.7, 2.0, -2.0, 1.0, 0.5)
	f.Fuzz(func(t *testing.T, a11, a12, x1, x2, r, half float64) {
		for _, v := range []float64{a11, a12, x1, x2, r, half} {
			if math.IsNaN(v) || math.Abs(v) > 1e3 {
				t.Skip("inputs constrained")
			}
		}
		clamp := func(v float64) float64 { return math.Mod(v, 1) * 0.95 }
		A := mat.FromRows([][]float64{{clamp(a11), clamp(a12)}, {0, 0.5}})
		sys, err := lti.New(A, mat.ColVec(mat.VecOf(0.1, 0.2)), nil, 1)
		if err != nil {
			t.Skip(err)
		}
		an, err := New(sys, geom.UniformBox(1, -1, 1), 0.01, 8)
		if err != nil {
			t.Fatal(err)
		}
		x0 := mat.VecOf(x1, x2)
		radius := math.Abs(math.Mod(r, 10))
		hw := math.Abs(math.Mod(half, 20))
		safe := geom.UniformBox(2, -hw, hw)

		s, err := an.Stepper(x0, radius)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := make([]float64, 2), make([]float64, 2)
		for {
			ti := s.Step()
			want, err := an.ReachBoxFromBall(x0, radius, ti)
			if err != nil {
				t.Fatal(err)
			}
			s.Bounds(lo, hi)
			for i := 0; i < 2; i++ {
				iv := want.Interval(i)
				if lo[i] != iv.Lo || hi[i] != iv.Hi {
					t.Fatalf("t=%d dim=%d: stepper [%v,%v] != direct [%v,%v]",
						ti, i, lo[i], hi[i], iv.Lo, iv.Hi)
				}
			}
			if got, ref := s.InsideBox(safe), safe.ContainsBox(want); got != ref {
				t.Fatalf("t=%d: InsideBox=%v ContainsBox=%v", ti, got, ref)
			}
			if sl := s.SafeSlack(safe); (sl >= 0) != safe.ContainsBox(want) {
				t.Fatalf("t=%d: SafeSlack sign %v disagrees with containment", ti, sl)
			}
			if !s.Advance() {
				break
			}
		}
	})
}
