package reach

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/lti"
)

// The precomputed Analysis tables cost O(horizon·n³) to build (the power
// table dominates) but are immutable afterwards — every method only reads
// them. Monte-Carlo campaigns construct one detection system per run over
// the same handful of plants, so rebuilding the tables per run wastes the
// bulk of a campaign's wall-clock. Shared memoizes construction per
// (system, inputs, eps, horizon) so each plant pays for its tables once
// per process, with sync.Once semantics under concurrent access (the
// parallel campaign workers all hit the cache at run start).

type sharedKey struct {
	sys     *lti.System
	horizon int
	eps     float64
	inputs  string // canonical bit-exact encoding of the input box bounds
}

type sharedEntry struct {
	once sync.Once
	an   *Analysis
	err  error
}

var (
	sharedMu     sync.Mutex
	sharedTables map[sharedKey]*sharedEntry
)

// sharedCap bounds the memo so a long-lived process sweeping many ad-hoc
// plants or horizons cannot grow it without bound; on overflow the whole
// map is dropped (entries already handed out keep working — they are
// plain immutable *Analysis values).
const sharedCap = 128

// Shared returns the memoized Analysis for (sys, u, eps, horizon), building
// it on first use. It is safe for concurrent callers: exactly one builds,
// the rest wait and share the result. The cache keys on the *lti.System
// pointer, so callers must not mutate the system's matrices after first
// use — the same immutability New itself assumes. The returned Analysis is
// read-only and safe to share across goroutines; per-search state lives in
// Stepper and SupportSweep values, never in the Analysis.
func Shared(sys *lti.System, u geom.Box, eps float64, horizon int) (*Analysis, error) {
	var b strings.Builder
	for i := 0; i < u.Dim(); i++ {
		iv := u.Interval(i)
		b.WriteString(strconv.FormatFloat(iv.Lo, 'b', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(iv.Hi, 'b', -1, 64))
		b.WriteByte(';')
	}
	key := sharedKey{sys: sys, horizon: horizon, eps: eps, inputs: b.String()}

	sharedMu.Lock()
	if sharedTables == nil {
		sharedTables = make(map[sharedKey]*sharedEntry)
	}
	e, ok := sharedTables[key]
	if !ok {
		if len(sharedTables) >= sharedCap {
			sharedTables = make(map[sharedKey]*sharedEntry)
		}
		e = &sharedEntry{}
		sharedTables[key] = e
	}
	sharedMu.Unlock()

	e.once.Do(func() { e.an, e.err = New(sys, u, eps, horizon) })
	return e.an, e.err
}
