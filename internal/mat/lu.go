package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by Solve and Inverse when the coefficient matrix is
// numerically singular (a pivot below the tolerance was encountered).
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds a packed LU factorization with partial pivoting of a square
// matrix: PA = LU. It supports repeated right-hand-side solves.
type LU struct {
	lu    *Dense
	pivot []int
	sign  int
}

// Factorize computes the LU decomposition of a. It returns ErrSingular if a
// pivot smaller than ~1e-300 in magnitude is encountered.
func Factorize(a *Dense) (*LU, error) {
	a.mustSquare()
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for i := range pivot {
		pivot[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the largest magnitude entry in this column.
		p := col
		max := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if max < 1e-300 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.data[col*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[col*n+j]
			}
			pivot[col], pivot[p] = pivot[p], pivot[col]
			sign = -sign
		}
		d := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			lu.Set(r, col, f)
			for j := col + 1; j < n; j++ {
				lu.Set(r, j, lu.At(r, j)-f*lu.At(col, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// SolveVec solves A x = b for the factorized A.
func (f *LU) SolveVec(b Vec) Vec {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveVec dimension mismatch %d vs %d", len(b), n))
	}
	x := make(Vec, n)
	// Apply permutation.
	for i, p := range f.pivot {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A x = b and returns x. It factorizes A on every call; use
// Factorize + SolveVec for repeated solves against the same matrix.
func Solve(a *Dense, b Vec) (Vec, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// Inverse returns A^{-1}, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := NewDense(n, n)
	for j := 0; j < n; j++ {
		col := f.SolveVec(Basis(n, j))
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
