package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix.
//
// The zero value is not useful; construct with NewDense, FromRows, Identity,
// or Diag. All arithmetic methods return fresh matrices and never alias their
// receivers, so call sites can freely retain results.
type Dense struct {
	rows, cols int
	data       []float64 // len rows*cols, row-major
}

// NewDense returns a rows x cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: NewDense with non-positive shape %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: FromRows ragged row %d: %d vs %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with the given diagonal entries.
func Diag(d ...float64) *Dense {
	m := NewDense(len(d), len(d))
	for i, x := range d {
		m.data[i*len(d)+i] = x
	}
	return m
}

// ColVec returns an n x 1 matrix holding v.
func ColVec(v Vec) *Dense {
	m := NewDense(len(v), 1)
	copy(m.data, v)
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the (i, j) entry.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i as a Vec.
func (m *Dense) Row(i int) Vec {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return VecOf(m.data[i*m.cols : (i+1)*m.cols]...)
}

// Col returns a copy of column j as a Vec.
func (m *Dense) Col(j int) Vec {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	v := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		v[i] = m.data[i*m.cols+j]
	}
	return v
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.mustSameShape(b)
	out := NewDense(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Dense) Sub(b *Dense) *Dense {
	m.mustSameShape(b)
	out := NewDense(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// Scale returns c*m.
func (m *Dense) Scale(c float64) *Dense {
	out := NewDense(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = c * m.data[i]
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, a := range mrow {
			//awdlint:allow floateq -- sparsity fast path: skipping exact zeros changes no result bit
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, x := range brow {
				orow[j] += a * x
			}
		}
	}
	return out
}

// MulVec returns m * v.
func (m *Dense) MulVec(v Vec) Vec {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	out := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTo computes m * v into dst without allocating. The summation order
// matches MulVec exactly, so results are bit-identical to the allocating
// kernel. dst must not alias v; shape mismatches and aliasing panic
// (programmer error, caught at construction time by every caller in this
// repo).
func (m *Dense) MulVecTo(dst, v Vec) {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVecTo shape mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecTo dst length %d, want %d", len(dst), m.rows))
	}
	if len(dst) > 0 && len(v) > 0 && &dst[0] == &v[0] {
		panic("mat: MulVecTo dst aliases v")
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		dst[i] = s
	}
}

// MulVecAddTo accumulates dst += m * v without allocating; the per-row dot
// product uses the same summation order as MulVec. dst must not alias v.
func (m *Dense) MulVecAddTo(dst, v Vec) {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVecAddTo shape mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecAddTo dst length %d, want %d", len(dst), m.rows))
	}
	if len(dst) > 0 && len(v) > 0 && &dst[0] == &v[0] {
		panic("mat: MulVecAddTo dst aliases v")
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		dst[i] += s
	}
}

// MulVecTrans returns vᵀ * m as a vector (equivalently mᵀ v). It completes
// the MulVec/MulVecTo/MulBatchTo naming family for the transposed product
// the support-function machinery uses.
func (m *Dense) MulVecTrans(v Vec) Vec {
	if m.rows != len(v) {
		panic(fmt.Sprintf("mat: MulVecTrans shape mismatch %d * %dx%d", len(v), m.rows, m.cols))
	}
	out := make(Vec, m.cols)
	m.mulVecTransInto(out, v)
	return out
}

// MulVecTransTo computes vᵀ * m into dst without allocating, with the same
// accumulation order (and therefore the same result bits) as MulVecTrans.
// dst must not alias v.
func (m *Dense) MulVecTransTo(dst, v Vec) {
	if m.rows != len(v) {
		panic(fmt.Sprintf("mat: MulVecTransTo shape mismatch %d * %dx%d", len(v), m.rows, m.cols))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("mat: MulVecTransTo dst length %d, want %d", len(dst), m.cols))
	}
	if len(dst) > 0 && len(v) > 0 && &dst[0] == &v[0] {
		panic("mat: MulVecTransTo dst aliases v")
	}
	for i := range dst {
		dst[i] = 0
	}
	m.mulVecTransInto(dst, v)
}

// mulVecTransInto accumulates vᵀ * m into out, which must be zeroed.
func (m *Dense) mulVecTransInto(out, v Vec) {
	for i, a := range v {
		//awdlint:allow floateq -- sparsity fast path: skipping exact zeros changes no result bit
		if a == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, x := range row {
			out[j] += a * x
		}
	}
}

// T returns the transpose of m.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Pow returns m^k for k >= 0 by binary exponentiation. m must be square.
// Pow(m, 0) is the identity.
func (m *Dense) Pow(k int) *Dense {
	m.mustSquare()
	if k < 0 {
		panic("mat: Pow with negative exponent")
	}
	result := Identity(m.rows)
	base := m.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		k >>= 1
		if k > 0 {
			base = base.Mul(base)
		}
	}
	return result
}

// Powers returns the slice [I, m, m², …, m^k], sharing no storage between
// entries. It is the building block for the precomputed reachability tables.
func (m *Dense) Powers(k int) []*Dense {
	m.mustSquare()
	if k < 0 {
		panic("mat: Powers with negative exponent")
	}
	out := make([]*Dense, k+1)
	out[0] = Identity(m.rows)
	for i := 1; i <= k; i++ {
		out[i] = out[i-1].Mul(m)
	}
	return out
}

// NormInf returns the operator infinity-norm: max absolute row sum.
func (m *Dense) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for _, x := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(x)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Norm1 returns the operator 1-norm: max absolute column sum.
func (m *Dense) Norm1() float64 {
	max := 0.0
	for j := 0; j < m.cols; j++ {
		s := 0.0
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	return Vec(m.data).Norm2()
}

// Equal reports whether m and b share shape and agree entry-wise within tol.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if !ApproxEq(m.data[i], b.data[i], tol) {
			return false
		}
	}
	return true
}

func (m *Dense) mustSameShape(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

func (m *Dense) mustSquare() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: %dx%d matrix is not square", m.rows, m.cols))
	}
}

// String renders the matrix one row per line.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.data[i*m.cols+j])
		}
		b.WriteString("]")
		if i < m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
