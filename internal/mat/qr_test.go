package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestLeastSquaresExactSystem(t *testing.T) {
	// Square invertible: least squares = exact solve.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, VecOf(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(VecOf(0.8, 1.4), 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit a line y = c0 + c1 t through (0,1), (1,3), (2,5): exact c = (1,2).
	a := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}})
	x, err := LeastSquares(a, VecOf(1, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(VecOf(1, 2), 1e-12) {
		t.Errorf("fit = %v, want (1, 2)", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The optimal residual is orthogonal to the column space: Aᵀ(Ax−b) = 0.
	r := rand.New(rand.NewSource(31))
	a := NewDense(6, 3)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	b := make(Vec, 6)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := a.MulVec(x).Sub(b)
	ortho := a.T().MulVec(resid)
	if ortho.NormInf() > 1e-10 {
		t.Errorf("Aᵀr = %v, want ~0", ortho)
	}
}

func TestQRValidation(t *testing.T) {
	if _, err := FactorQR(NewDense(2, 3)); err == nil {
		t.Error("wide matrix accepted")
	}
	if _, err := FactorQR(NewDense(3, 2)); err == nil {
		t.Error("zero (rank-deficient) matrix accepted")
	}
}

func TestQRSolveDimensionPanics(t *testing.T) {
	f, err := FactorQR(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.SolveVec(VecOf(1, 2, 3))
}

func TestJacobiEigenDiagonal(t *testing.T) {
	eig, v, err := JacobiEigen(Diag(3, 1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := eig[0] + eig[1] + eig[2]
	if math.Abs(sum-6) > 1e-12 {
		t.Errorf("trace = %v, want 6", sum)
	}
	if !v.Mul(v.T()).Equal(Identity(3), 1e-10) {
		t.Error("eigenvectors not orthonormal")
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	eig, _, err := JacobiEigen(FromRows([][]float64{{2, 1}, {1, 2}}), 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(eig[0], eig[1]), math.Max(eig[0], eig[1])
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Errorf("eigenvalues = %v, want {1, 3}", eig)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	// A = V diag(λ) Vᵀ for random symmetric matrices.
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(5)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		eig, vecs, err := JacobiEigen(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		recon := vecs.Mul(Diag(eig...)).Mul(vecs.T())
		if !recon.Equal(a, 1e-8) {
			t.Fatalf("trial %d: reconstruction failed", trial)
		}
	}
}

func TestJacobiEigenRejectsAsymmetric(t *testing.T) {
	if _, _, err := JacobiEigen(FromRows([][]float64{{1, 2}, {3, 4}}), 0); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, _, err := JacobiEigen(NewDense(2, 3), 0); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestJacobiEigenPSDCovariance(t *testing.T) {
	// Gram matrices are PSD: all eigenvalues must be >= 0 (within noise).
	r := rand.New(rand.NewSource(33))
	g := NewDense(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			g.Set(i, j, r.NormFloat64())
		}
	}
	gram := g.Mul(g.T())
	eig, _, err := JacobiEigen(gram, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range eig {
		if l < -1e-9 {
			t.Errorf("PSD matrix has eigenvalue %v", l)
		}
	}
}
