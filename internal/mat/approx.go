package mat

import "math"

// DefaultTol is the shared absolute tolerance for floating-point
// comparisons across the numerical packages. Residuals, thresholds, and
// reachability bounds in this codebase are O(1)-scaled physical
// quantities, so one absolute tolerance near the square root of the
// float64 epsilon serves the whole pipeline; callers with calibrated
// tolerances pass their own.
const DefaultTol = 1e-9

// ApproxEq reports |a−b| <= tol. NaN compares unequal to everything,
// matching IEEE semantics. This is the comparison the detector's
// guarantees assume: the paper's no-false-alarm argument (Theorem 1)
// breaks if two mathematically equal quantities are distinguished by
// rounding noise. Exact `==` on computed floats is flagged by the
// floateq analyzer; use this instead.
func ApproxEq(a, b, tol float64) bool {
	//awdlint:allow floateq -- identical-value fast path: equal infinities must compare equal (Inf−Inf is NaN)
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// ApproxZero reports |x| <= tol.
func ApproxZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}
