package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestExpmZeroIsIdentity(t *testing.T) {
	if got := Expm(NewDense(3, 3)); !got.Equal(Identity(3), 1e-15) {
		t.Errorf("Expm(0) = %v", got)
	}
}

func TestExpmDiagonal(t *testing.T) {
	m := Diag(1, -2, 0.5)
	got := Expm(m)
	want := Diag(math.E, math.Exp(-2), math.Exp(0.5))
	if !got.Equal(want, 1e-12) {
		t.Errorf("Expm(diag) = %v, want %v", got, want)
	}
}

func TestExpmNilpotent(t *testing.T) {
	// For nilpotent N with N²=0, e^N = I + N exactly.
	n := FromRows([][]float64{{0, 3}, {0, 0}})
	got := Expm(n)
	want := FromRows([][]float64{{1, 3}, {0, 1}})
	if !got.Equal(want, 1e-14) {
		t.Errorf("Expm(nilpotent) = %v", got)
	}
}

func TestExpmRotation(t *testing.T) {
	// e^{θJ} with J = [[0,-1],[1,0]] is a rotation by θ.
	theta := 0.7
	j := FromRows([][]float64{{0, -theta}, {theta, 0}})
	got := Expm(j)
	want := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	if !got.Equal(want, 1e-12) {
		t.Errorf("Expm(rotation) = %v, want %v", got, want)
	}
}

func TestExpmScalarLargeNorm(t *testing.T) {
	// Exercises the scaling-and-squaring path (norm >> 0.5).
	m := Diag(5)
	got := Expm(m)
	if math.Abs(got.At(0, 0)-math.Exp(5))/math.Exp(5) > 1e-12 {
		t.Errorf("Expm(5) = %v, want e^5=%v", got.At(0, 0), math.Exp(5))
	}
}

// Property: e^{A} e^{-A} = I for random small matrices.
func TestExpmInverseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		a := randomDense(r, 3).Scale(0.5)
		prod := Expm(a).Mul(Expm(a.Scale(-1)))
		if !prod.Equal(Identity(3), 1e-9) {
			t.Fatalf("trial %d: e^A e^-A != I: %v", trial, prod)
		}
	}
}

// Property: for commuting matrices (scalar multiples), e^{A+B} = e^A e^B.
func TestExpmAdditiveCommutingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		a := randomDense(r, 3).Scale(0.3)
		b := a.Scale(r.Float64() * 2)
		lhs := Expm(a.Add(b))
		rhs := Expm(a).Mul(Expm(b))
		if !lhs.Equal(rhs, 1e-8*math.Max(1, lhs.NormInf())) {
			t.Fatalf("trial %d: e^(A+B) != e^A e^B for commuting A,B", trial)
		}
	}
}

// Cross-check against the series definition on a random matrix.
func TestExpmMatchesSeries(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomDense(r, 4).Scale(0.2)
	series := Identity(4)
	term := Identity(4)
	for k := 1; k < 30; k++ {
		term = term.Mul(a).Scale(1 / float64(k))
		series = series.Add(term)
	}
	if got := Expm(a); !got.Equal(series, 1e-12) {
		t.Errorf("Expm differs from direct series")
	}
}
