package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("At wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestNewDenseNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(0, 3)
}

func TestIdentityMul(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := Identity(2).Mul(m); !got.Equal(m, 0) {
		t.Errorf("I*m = %v", got)
	}
	if got := m.Mul(Identity(2)); !got.Equal(m, 0) {
		t.Errorf("m*I = %v", got)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestMulVecKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.MulVec(VecOf(1, 1)); !got.Equal(VecOf(3, 7), 1e-12) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMulVecTransIsTransposeMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := VecOf(1, -1)
	got := a.MulVecTrans(v)
	want := a.T().MulVec(v)
	if !got.Equal(want, 1e-12) {
		t.Errorf("MulVecTrans = %v, want %v", got, want)
	}
}

func TestMulVecTransToMatchesMulVecTrans(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 0, -1}})
	v := VecOf(0.5, -1.25, 3)
	want := a.MulVecTrans(v)
	dst := NewVec(3)
	a.MulVecTransTo(dst, v)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecTransTo[%d] = %v, want %v (must be bit-identical)", i, dst[i], want[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Errorf("T entry wrong: %v", at)
	}
	if !at.T().Equal(a, 0) {
		t.Error("double transpose differs")
	}
}

func TestDiag(t *testing.T) {
	d := Diag(1, 2, 3)
	want := FromRows([][]float64{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}})
	if !d.Equal(want, 0) {
		t.Errorf("Diag = %v", d)
	}
}

func TestRowColAccessors(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if !a.Row(1).Equal(VecOf(3, 4), 0) {
		t.Errorf("Row = %v", a.Row(1))
	}
	if !a.Col(0).Equal(VecOf(1, 3), 0) {
		t.Errorf("Col = %v", a.Col(0))
	}
}

func TestPow(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {0, 1}})
	if got := a.Pow(0); !got.Equal(Identity(2), 0) {
		t.Errorf("Pow(0) = %v", got)
	}
	// a^k has upper-right entry k for this shear matrix.
	if got := a.Pow(5); got.At(0, 1) != 5 {
		t.Errorf("Pow(5) = %v", got)
	}
}

func TestPowersConsistentWithPow(t *testing.T) {
	a := FromRows([][]float64{{0.5, 0.1}, {-0.2, 0.9}})
	ps := a.Powers(6)
	for k, p := range ps {
		if !p.Equal(a.Pow(k), 1e-12) {
			t.Errorf("Powers[%d] differs from Pow(%d)", k, k)
		}
	}
}

func TestPowersNoAliasing(t *testing.T) {
	a := Identity(2)
	ps := a.Powers(2)
	ps[1].Set(0, 0, 99)
	if ps[0].At(0, 0) == 99 || ps[2].At(0, 0) == 99 {
		t.Error("Powers entries share storage")
	}
}

func TestOperatorNorms(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 4}})
	if got := a.NormInf(); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got := a.Norm1(); got != 6 {
		t.Errorf("Norm1 = %v, want 6", got)
	}
	if got := a.FrobeniusNorm(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("Frobenius = %v", got)
	}
}

func TestColVec(t *testing.T) {
	m := ColVec(VecOf(1, 2, 3))
	if m.Rows() != 3 || m.Cols() != 1 || m.At(2, 0) != 3 {
		t.Errorf("ColVec = %v", m)
	}
}

func TestCloneAndEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
	if a.Equal(b, 0) {
		t.Error("Equal should be false after mutation")
	}
	if a.Equal(NewDense(2, 3), 1e9) {
		t.Error("Equal should be false for different shapes")
	}
}

func TestDenseString(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {3, 4}}).String()
	if s != "[1 2]\n[3 4]" {
		t.Errorf("String = %q", s)
	}
}

func randomDense(r *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	return m
}

// Property: (AB)v == A(Bv).
func TestMulAssociativityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a, b := randomDense(r, 4), randomDense(r, 4)
		v := VecOf(r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		lhs := a.Mul(b).MulVec(v)
		rhs := a.MulVec(b.MulVec(v))
		if !lhs.Equal(rhs, 1e-9) {
			t.Fatalf("trial %d: (AB)v=%v, A(Bv)=%v", trial, lhs, rhs)
		}
	}
}

// Property: transpose reverses products: (AB)^T = B^T A^T.
func TestTransposeProductProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a, b := randomDense(r, 3), randomDense(r, 3)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		if !lhs.Equal(rhs, 1e-10) {
			t.Fatalf("trial %d: transpose product mismatch", trial)
		}
	}
}

// Property: matrix addition commutes element-wise (quick-generated).
func TestAddCommutesProperty(t *testing.T) {
	f := func(a, b [2][2]float64) bool {
		ma := FromRows([][]float64{a[0][:], a[1][:]})
		mb := FromRows([][]float64{b[0][:], b[1][:]})
		return ma.Add(mb).Equal(mb.Add(ma), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pow(k1+k2) == Pow(k1)*Pow(k2) for a contraction matrix.
func TestPowAdditiveProperty(t *testing.T) {
	a := FromRows([][]float64{{0.9, 0.05}, {-0.05, 0.8}})
	for k1 := 0; k1 <= 5; k1++ {
		for k2 := 0; k2 <= 5; k2++ {
			lhs := a.Pow(k1 + k2)
			rhs := a.Pow(k1).Mul(a.Pow(k2))
			if !lhs.Equal(rhs, 1e-12) {
				t.Fatalf("Pow additivity failed at %d,%d", k1, k2)
			}
		}
	}
}
