package mat

import "math"

// Expm returns the matrix exponential e^m computed by scaling-and-squaring
// with a degree-13 Padé-style truncated Taylor core.
//
// The continuous-time plant matrices in this repository are small (n <= 13
// counting the input-augmented block) and well scaled, so a Taylor core with
// scaling s chosen such that ||m/2^s||_inf <= 0.5 converges to machine
// precision in at most ~20 terms. This is the workhorse behind
// lti.Discretize.
func Expm(m *Dense) *Dense {
	m.mustSquare()
	n := m.rows

	norm := m.NormInf()
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scaled := m.Scale(1 / math.Pow(2, float64(s)))

	// Truncated Taylor series: sum_{k=0..K} scaled^k / k!.
	result := Identity(n)
	term := Identity(n)
	const maxTerms = 40
	for k := 1; k <= maxTerms; k++ {
		term = term.Mul(scaled).Scale(1 / float64(k))
		result = result.Add(term)
		if term.NormInf() < 1e-18*result.NormInf() {
			break
		}
	}

	// Undo the scaling: e^m = (e^(m/2^s))^(2^s).
	for i := 0; i < s; i++ {
		result = result.Mul(result)
	}
	return result
}
