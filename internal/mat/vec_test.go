package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecOfCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	v := VecOf(src...)
	src[0] = 99
	if v[0] != 1 {
		t.Fatalf("VecOf did not copy: got %v", v)
	}
}

func TestVecAddSub(t *testing.T) {
	v := VecOf(1, 2, 3)
	w := VecOf(4, 5, 6)
	if got := v.Add(w); !got.Equal(VecOf(5, 7, 9), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(VecOf(3, 3, 3), 0) {
		t.Errorf("Sub = %v", got)
	}
}

func TestVecAddDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	VecOf(1, 2).Add(VecOf(1, 2, 3))
}

func TestVecAddInPlace(t *testing.T) {
	v := VecOf(1, 2)
	v.AddInPlace(VecOf(10, 20))
	if !v.Equal(VecOf(11, 22), 0) {
		t.Errorf("AddInPlace = %v", v)
	}
}

func TestVecScaleDot(t *testing.T) {
	v := VecOf(1, -2, 3)
	if got := v.Scale(2); !got.Equal(VecOf(2, -4, 6), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(VecOf(1, 1, 1)); got != 2 {
		t.Errorf("Dot = %v, want 2", got)
	}
}

func TestVecAbs(t *testing.T) {
	v := VecOf(-1, 2, -3)
	if got := v.Abs(); !got.Equal(VecOf(1, 2, 3), 0) {
		t.Errorf("Abs = %v", got)
	}
}

func TestNorms(t *testing.T) {
	v := VecOf(3, -4)
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestNormGeneralK(t *testing.T) {
	v := VecOf(1, 1, 1, 1)
	// ||v||_4 = (4)^(1/4) = sqrt(2)
	if got := v.Norm(4); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Norm(4) = %v, want sqrt(2)", got)
	}
	if got := v.Norm(math.Inf(1)); got != 1 {
		t.Errorf("Norm(inf) = %v, want 1", got)
	}
	if got := v.Norm(1); got != 4 {
		t.Errorf("Norm(1) = %v, want 4", got)
	}
	if got := v.Norm(2); math.Abs(got-2) > 1e-12 {
		t.Errorf("Norm(2) = %v, want 2", got)
	}
}

func TestNormKLessThanOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 1")
		}
	}()
	VecOf(1).Norm(0.5)
}

func TestNorm2Extremes(t *testing.T) {
	// Values that would overflow a naive sum-of-squares.
	v := VecOf(1e200, 1e200)
	want := 1e200 * math.Sqrt2
	if got := v.Norm2(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 overflow-safe = %v, want %v", got, want)
	}
	if got := NewVec(3).Norm2(); got != 0 {
		t.Errorf("Norm2 of zero vector = %v", got)
	}
	if got := VecOf(math.Inf(1), 1).Norm2(); !math.IsInf(got, 1) {
		t.Errorf("Norm2 with +Inf entry = %v, want +Inf", got)
	}
}

func TestBasis(t *testing.T) {
	e1 := Basis(3, 1)
	if !e1.Equal(VecOf(0, 1, 0), 0) {
		t.Errorf("Basis(3,1) = %v", e1)
	}
}

func TestBasisOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Basis(2, 2)
}

func TestConstant(t *testing.T) {
	if got := Constant(3, 7); !got.Equal(VecOf(7, 7, 7), 0) {
		t.Errorf("Constant = %v", got)
	}
}

func TestMaxMin(t *testing.T) {
	v := VecOf(3, -1, 2)
	if v.Max() != 3 || v.Min() != -1 {
		t.Errorf("Max/Min = %v/%v", v.Max(), v.Min())
	}
}

func TestCloneIndependence(t *testing.T) {
	v := VecOf(1, 2)
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestVecString(t *testing.T) {
	if got := VecOf(1, 2.5).String(); got != "[1 2.5]" {
		t.Errorf("String = %q", got)
	}
}

// Property: triangle inequality for all three norms.
func TestNormTriangleInequalityProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		v, w := VecOf(a[:]...), VecOf(b[:]...)
		s := v.Add(w)
		const slack = 1e-9
		return s.Norm1() <= v.Norm1()+w.Norm1()+slack &&
			s.Norm2() <= v.Norm2()+w.Norm2()+slack*(1+v.Norm2()+w.Norm2()) &&
			s.NormInf() <= v.NormInf()+w.NormInf()+slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: norm ordering ||v||_inf <= ||v||_2 <= ||v||_1.
func TestNormOrderingProperty(t *testing.T) {
	f := func(a [5]float64) bool {
		v := VecOf(a[:]...)
		const slack = 1e-9
		n1, n2, ni := v.Norm1(), v.Norm2(), v.NormInf()
		return ni <= n2*(1+slack)+slack && n2 <= n1*(1+slack)+slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |v.w| <= ||v||_2 ||w||_2.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for _, x := range append(a[:], b[:]...) {
			if math.Abs(x) > 1e150 {
				return true // Dot itself would overflow; property not meaningful
			}
		}
		v, w := VecOf(a[:]...), VecOf(b[:]...)
		lhs := math.Abs(v.Dot(w))
		rhs := v.Norm2() * w.Norm2()
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling is absolutely homogeneous for Norm2.
func TestNormHomogeneityProperty(t *testing.T) {
	f := func(a [3]float64, c float64) bool {
		if math.Abs(c) > 1e100 {
			return true // avoid overflow-dominated comparisons
		}
		v := VecOf(a[:]...)
		lhs := v.Scale(c).Norm2()
		rhs := math.Abs(c) * v.Norm2()
		diff := math.Abs(lhs - rhs)
		return diff <= 1e-9*(1+rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
