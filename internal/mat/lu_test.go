package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, VecOf(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=3, x+3y=5 -> x=4/5, y=7/5
	if !x.Equal(VecOf(0.8, 1.4), 1e-12) {
		t.Errorf("Solve = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, VecOf(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(VecOf(3, 2), 1e-12) {
		t.Errorf("Solve with pivot = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	_, err := Solve(a, VecOf(1, 2))
	if !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-2)) > 1e-12 {
		t.Errorf("Det = %v, want -2", d)
	}
}

func TestDetWithPivotSignFlip(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-1)) > 1e-12 {
		t.Errorf("Det = %v, want -1", d)
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Mul(inv); !got.Equal(Identity(2), 1e-12) {
		t.Errorf("A*A^-1 = %v", got)
	}
}

func TestInverseSingular(t *testing.T) {
	if _, err := Inverse(NewDense(2, 2)); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// Property: A * Solve(A, b) == b for random well-conditioned matrices.
func TestSolveResidualProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(5)
		// Diagonally dominant => well conditioned.
		a := randomDense(r, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make(Vec, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := a.MulVec(x); !got.Equal(b, 1e-9) {
			t.Fatalf("trial %d: residual too large: Ax=%v b=%v", trial, got, b)
		}
	}
}

// Property: repeated SolveVec with one factorization matches fresh solves.
func TestFactorizeReuseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomDense(r, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+10)
	}
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		b := VecOf(r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		x1 := f.SolveVec(b)
		x2, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !x1.Equal(x2, 1e-12) {
			t.Fatalf("trial %d: reuse mismatch", trial)
		}
	}
}
