package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestBatchAccessors(t *testing.T) {
	b := NewBatch(3, 4)
	if b.Dim() != 3 || b.Len() != 4 {
		t.Fatalf("shape = %dx%d", b.Dim(), b.Len())
	}
	b.Set(2, 1, 7)
	if b.At(2, 1) != 7 {
		t.Errorf("At(2,1) = %v", b.At(2, 1))
	}
	v := VecOf(1, 2, 3)
	b.SetCol(3, v)
	got := NewVec(3)
	b.ColTo(got, 3)
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("ColTo[%d] = %v, want %v", i, got[i], v[i])
		}
	}
	if b.Row(1)[3] != 2 {
		t.Errorf("Row(1)[3] = %v", b.Row(1)[3])
	}
	b.ZeroCol(3)
	b.ColTo(got, 3)
	for i := range got {
		if got[i] != 0 {
			t.Errorf("after ZeroCol, col[%d] = %v", i, got[i])
		}
	}
}

// TestMulBatchToBitIdentical pins the fleet-engine contract: every column of
// a batched product must carry exactly the bits MulVecTo produces for that
// stream alone — including counts that exercise the cache-tiling boundary.
func TestMulBatchToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{1, 2, 3, 6} {
		for _, n := range []int{1, 7, BatchTile - 1, BatchTile, BatchTile + 3, 2*BatchTile + 5} {
			m := randDense(rng, dim, dim)
			x := NewBatch(dim, n)
			for s := 0; s < n; s++ {
				for j := 0; j < dim; j++ {
					x.Set(j, s, rng.NormFloat64())
				}
			}
			dst := NewBatch(dim, n)
			m.MulBatchTo(dst, x)

			xs, want, got := NewVec(dim), NewVec(dim), NewVec(dim)
			for s := 0; s < n; s++ {
				x.ColTo(xs, s)
				m.MulVecTo(want, xs)
				dst.ColTo(got, s)
				for j := range want {
					if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
						t.Fatalf("dim=%d n=%d col %d row %d: batch %v != serial %v", dim, n, s, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestMulBatchAddToBitIdentical pins the accumulate kernel against
// MulVecAddTo, whose grouping (dst + full private dot product) differs from
// a naive in-place axpy — the difference the scratch-tile accumulator
// exists to avoid.
func TestMulBatchAddToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, shape := range [][2]int{{1, 1}, {3, 1}, {3, 2}, {6, 4}} {
		rows, cols := shape[0], shape[1]
		for _, n := range []int{1, 5, BatchTile, BatchTile + 9} {
			m := randDense(rng, rows, cols)
			x := NewBatch(cols, n)
			dst := NewBatch(rows, n)
			serial := make([]Vec, n)
			for s := 0; s < n; s++ {
				for j := 0; j < cols; j++ {
					x.Set(j, s, rng.NormFloat64())
				}
				serial[s] = NewVec(rows)
				for i := 0; i < rows; i++ {
					v := rng.NormFloat64()
					dst.Set(i, s, v)
					serial[s][i] = v
				}
			}
			m.MulBatchAddTo(dst, x)

			xs, got := NewVec(cols), NewVec(rows)
			for s := 0; s < n; s++ {
				x.ColTo(xs, s)
				m.MulVecAddTo(serial[s], xs)
				dst.ColTo(got, s)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(serial[s][i]) {
						t.Fatalf("%dx%d n=%d col %d row %d: batch %v != serial %v", rows, cols, n, s, i, got[i], serial[s][i])
					}
				}
			}
		}
	}
}

// Non-finite inputs must flow through the batch kernels exactly as through
// the vector kernels (no zero-skip shortcuts that would turn 0*Inf into 0).
func TestMulBatchToNonFinite(t *testing.T) {
	m := FromRows([][]float64{{0, 1}, {1, 0}})
	x := NewBatch(2, 2)
	x.SetCol(0, VecOf(math.Inf(1), 2))
	x.SetCol(1, VecOf(math.NaN(), -1))
	dst := NewBatch(2, 2)
	m.MulBatchTo(dst, x)
	xs, want, got := NewVec(2), NewVec(2), NewVec(2)
	for s := 0; s < 2; s++ {
		x.ColTo(xs, s)
		m.MulVecTo(want, xs)
		dst.ColTo(got, s)
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("col %d row %d: batch %x != serial %x", s, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
			}
		}
	}
}

func TestMulBatchToShapePanics(t *testing.T) {
	m := Identity(3)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"x dim", func() { m.MulBatchTo(NewBatch(3, 2), NewBatch(2, 2)) }},
		{"dst dim", func() { m.MulBatchTo(NewBatch(2, 2), NewBatch(3, 2)) }},
		{"count", func() { m.MulBatchTo(NewBatch(3, 2), NewBatch(3, 3)) }},
		{"alias", func() { b := NewBatch(3, 2); m.MulBatchTo(b, b) }},
		{"add x dim", func() { m.MulBatchAddTo(NewBatch(3, 2), NewBatch(2, 2)) }},
		{"add alias", func() { b := NewBatch(3, 2); m.MulBatchAddTo(b, b) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestMulBatchToAllocFree(t *testing.T) {
	m := randDense(rand.New(rand.NewSource(7)), 4, 4)
	x, dst := NewBatch(4, 300), NewBatch(4, 300)
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulBatchTo(dst, x)
		m.MulBatchAddTo(dst, x)
		m.MulBatchRangeTo(dst, x, 3, 299)
		m.MulBatchAddRangeTo(dst, x, 3, 299)
	}); allocs != 0 {
		t.Errorf("batch kernels allocate %v per run, want 0", allocs)
	}
}

// TestMulBatchRangeToBitIdentical pins the range kernels the fused
// multi-kernel sweep is built from: columns inside [s0, s1) carry exactly
// the bits of the full-batch kernels (and therefore of MulVecTo /
// MulVecAddTo), and columns outside the range are untouched. Ranges are
// chosen to start and end off tile boundaries, inside a single tile, and
// across several tiles.
func TestMulBatchRangeToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const dim = 3
	n := 2*BatchTile + 17
	m := randDense(rng, dim, dim)
	x := NewBatch(dim, n)
	for s := 0; s < n; s++ {
		for j := 0; j < dim; j++ {
			x.Set(j, s, rng.NormFloat64())
		}
	}
	full := NewBatch(dim, n)
	m.MulBatchTo(full, x)
	fullAdd := NewBatch(dim, n)
	m.MulBatchAddTo(fullAdd, x)

	const sentinel = -1234.5
	for _, r := range [][2]int{
		{0, n},                         // whole batch
		{5, 9},                         // inside the first tile
		{BatchTile - 3, BatchTile + 3}, // straddles one tile boundary
		{7, 2*BatchTile + 1},           // crosses two boundaries, both ends misaligned
		{2 * BatchTile, n},             // the ragged last tile alone
	} {
		s0, s1 := r[0], r[1]
		dst := NewBatch(dim, n)
		for j := 0; j < dim; j++ {
			row := dst.Row(j)
			for s := range row {
				row[s] = sentinel
			}
		}
		m.MulBatchRangeTo(dst, x, s0, s1)
		dstAdd := NewBatch(dim, n) // zero-initialized, so += matches fullAdd
		m.MulBatchAddRangeTo(dstAdd, x, s0, s1)
		for j := 0; j < dim; j++ {
			got, want := dst.Row(j), full.Row(j)
			gotAdd, wantAdd := dstAdd.Row(j), fullAdd.Row(j)
			for s := 0; s < n; s++ {
				in := s >= s0 && s < s1
				if in && math.Float64bits(got[s]) != math.Float64bits(want[s]) {
					t.Fatalf("range [%d,%d) col %d row %d: %v != full %v", s0, s1, s, j, got[s], want[s])
				}
				if !in && got[s] != sentinel {
					t.Fatalf("range [%d,%d) wrote outside the range at col %d row %d", s0, s1, s, j)
				}
				if in && math.Float64bits(gotAdd[s]) != math.Float64bits(wantAdd[s]) {
					t.Fatalf("add range [%d,%d) col %d row %d: %v != full %v", s0, s1, s, j, gotAdd[s], wantAdd[s])
				}
				if !in && gotAdd[s] != 0 {
					t.Fatalf("add range [%d,%d) wrote outside the range at col %d row %d", s0, s1, s, j)
				}
			}
		}
	}
}

// TestMulBatchRangeToPanics pins the range-fault contract.
func TestMulBatchRangeToPanics(t *testing.T) {
	m := Identity(3)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"negative s0", func() { m.MulBatchRangeTo(NewBatch(3, 4), NewBatch(3, 4), -1, 2) }},
		{"s1 past end", func() { m.MulBatchRangeTo(NewBatch(3, 4), NewBatch(3, 4), 0, 5) }},
		{"inverted", func() { m.MulBatchRangeTo(NewBatch(3, 4), NewBatch(3, 4), 3, 2) }},
		{"empty", func() { m.MulBatchRangeTo(NewBatch(3, 4), NewBatch(3, 4), 2, 2) }},
		{"add inverted", func() { m.MulBatchAddRangeTo(NewBatch(3, 4), NewBatch(3, 4), 3, 2) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}
