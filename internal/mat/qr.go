package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q R of an m×n matrix with
// m >= n: Q is m×m orthogonal (stored implicitly as reflectors), R is n×n
// upper triangular. It supports least-squares solves, which back the
// recovery controller's feedforward and any over-determined identification
// problem.
type QR struct {
	rows, cols int
	qr         *Dense // reflectors below the diagonal, R on and above
	rdiag      []float64
}

// FactorQR computes the Householder QR factorization. It returns an error
// for m < n or a rank-deficient column (zero reflector norm).
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("mat: QR needs rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) row k.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		//awdlint:allow floateq -- exact: the column norm vanishes only for an exactly zero column (true rank deficiency)
		if norm == 0 {
			return nil, fmt.Errorf("mat: QR rank-deficient at column %d", k)
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -norm
	}
	return &QR{rows: m, cols: n, qr: qr, rdiag: rdiag}, nil
}

// SolveVec returns the least-squares solution x minimizing ‖A x − b‖₂.
func (f *QR) SolveVec(b Vec) Vec {
	if len(b) != f.rows {
		panic(fmt.Sprintf("mat: QR solve dimension %d, want %d", len(b), f.rows))
	}
	y := b.Clone()
	// Apply Qᵀ to b.
	for k := 0; k < f.cols; k++ {
		s := 0.0
		for i := k; i < f.rows; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.rows; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = (Qᵀ b)[:n].
	x := make(Vec, f.cols)
	for i := f.cols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.cols; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x
}

// LeastSquares solves min ‖A x − b‖₂ via QR.
func LeastSquares(a *Dense, b Vec) (Vec, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// JacobiEigen computes the eigenvalues and eigenvectors of a symmetric
// matrix by the cyclic Jacobi method. It returns the eigenvalues (in the
// order the diagonal settles) and the matrix of column eigenvectors V with
// A = V diag(λ) Vᵀ. The input must be symmetric within symTol (0 defaults
// to 1e-9 relative).
func JacobiEigen(a *Dense, symTol float64) (Vec, *Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("mat: JacobiEigen needs a square matrix")
	}
	if symTol <= 0 {
		symTol = 1e-9
	}
	scale := 1 + a.NormInf()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !ApproxEq(a.At(i, j), a.At(j, i), symTol*scale) {
				return nil, nil, fmt.Errorf("mat: JacobiEigen input not symmetric at (%d,%d)", i, j)
			}
		}
	}
	w := a.Clone()
	// Symmetrize exactly to kill round-off drift.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (w.At(i, j) + w.At(j, i)) / 2
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-24*scale*scale {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if ApproxZero(apq, 1e-300) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of w, and columns of v.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	eig := make(Vec, n)
	for i := 0; i < n; i++ {
		eig[i] = w.At(i, i)
	}
	return eig, v, nil
}
