package mat

import "fmt"

// batchTile is the stream-tile width (columns per cache block) the batch
// kernels process at a time: 256 float64s = 2 KiB per component row, so a
// full x-tile plus dst-tile for the bundled plants (state dimension ≤ 8)
// stays resident in L1 while every matrix row streams over it.
const batchTile = 256

// Batch is a struct-of-arrays block of n vectors sharing dimension dim:
// component j of every vector is contiguous in row j (data[j*n : (j+1)*n]).
// It is the memory layout the fleet batch kernels use so one plant matrix
// is streamed through cache once per batch instead of once per stream.
//
// A Batch is a plain buffer with no synchronization; concurrent use
// requires external coordination (each fleet shard owns its blocks and is
// processed by one worker at a time).
type Batch struct {
	dim, n  int
	data    []float64
	scratch []float64 // one tile row for MulBatchAddTo's grouping-preserving accumulator
}

// NewBatch returns a zeroed dim x n block.
func NewBatch(dim, n int) *Batch {
	if dim <= 0 || n <= 0 {
		panic(fmt.Sprintf("mat: NewBatch with non-positive shape %dx%d", dim, n))
	}
	tile := n
	if tile > batchTile {
		tile = batchTile
	}
	return &Batch{dim: dim, n: n, data: make([]float64, dim*n), scratch: make([]float64, tile)}
}

// Resize reshapes the block to hold n vectors of the same dimension,
// reusing the existing storage whenever capacity allows — the fleet shards
// call this once per batch with the batch's stream count, so steady-state
// processing never allocates. Contents become unspecified; callers must
// overwrite every column they read back.
func (b *Batch) Resize(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("mat: Batch Resize to non-positive count %d", n))
	}
	if need := b.dim * n; cap(b.data) < need {
		b.data = make([]float64, need)
	} else {
		b.data = b.data[:need]
	}
	b.n = n
	tile := n
	if tile > batchTile {
		tile = batchTile
	}
	if len(b.scratch) < tile {
		b.scratch = make([]float64, tile)
	}
}

// Dim returns the vector dimension (rows).
func (b *Batch) Dim() int { return b.dim }

// Len returns the number of vectors in the block (columns).
func (b *Batch) Len() int { return b.n }

// Row returns component j across all vectors, aliasing the block's storage.
func (b *Batch) Row(j int) []float64 {
	if j < 0 || j >= b.dim {
		panic(fmt.Sprintf("mat: Batch row %d out of range for dimension %d", j, b.dim))
	}
	return b.data[j*b.n : (j+1)*b.n]
}

// At returns component j of vector s.
func (b *Batch) At(j, s int) float64 {
	b.boundsCheck(j, s)
	return b.data[j*b.n+s]
}

// Set assigns component j of vector s.
func (b *Batch) Set(j, s int, v float64) {
	b.boundsCheck(j, s)
	b.data[j*b.n+s] = v
}

func (b *Batch) boundsCheck(j, s int) {
	if j < 0 || j >= b.dim || s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch index (%d,%d) out of range for %dx%d block", j, s, b.dim, b.n))
	}
}

// SetCol scatters v into column s (vector s of the block).
func (b *Batch) SetCol(s int, v Vec) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("mat: Batch SetCol dimension %d, want %d", len(v), b.dim))
	}
	if s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch column %d out of range for %d vectors", s, b.n))
	}
	for j, x := range v {
		b.data[j*b.n+s] = x
	}
}

// ColTo gathers column s (vector s of the block) into dst.
func (b *Batch) ColTo(dst Vec, s int) {
	if len(dst) != b.dim {
		panic(fmt.Sprintf("mat: Batch ColTo dimension %d, want %d", len(dst), b.dim))
	}
	if s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch column %d out of range for %d vectors", s, b.n))
	}
	for j := range dst {
		dst[j] = b.data[j*b.n+s]
	}
}

// ZeroCol clears column s.
func (b *Batch) ZeroCol(s int) {
	if s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch column %d out of range for %d vectors", s, b.n))
	}
	for j := 0; j < b.dim; j++ {
		b.data[j*b.n+s] = 0
	}
}

// MulBatchTo computes m * x column-wise into dst: dst[:,s] = m * x[:,s] for
// every vector s, cache-blocked over stream tiles. The per-column summation
// order is exactly MulVecTo's (accumulate over j = 0..cols-1 starting from
// zero), so each column is bit-identical to a standalone MulVecTo call —
// the property the fleet engine's differential tests pin. dst must not
// alias x; shape mismatches and aliasing panic (programmer error, caught at
// construction time by every caller in this repo).
func (m *Dense) MulBatchTo(dst, x *Batch) {
	if x.dim != m.cols {
		panic(fmt.Sprintf("mat: MulBatchTo shape mismatch %dx%d * %dx%d", m.rows, m.cols, x.dim, x.n))
	}
	if dst.dim != m.rows {
		panic(fmt.Sprintf("mat: MulBatchTo dst dimension %d, want %d", dst.dim, m.rows))
	}
	if dst.n != x.n {
		panic(fmt.Sprintf("mat: MulBatchTo dst has %d vectors, x has %d", dst.n, x.n))
	}
	if &dst.data[0] == &x.data[0] {
		panic("mat: MulBatchTo dst aliases x")
	}
	n := x.n
	for s0 := 0; s0 < n; s0 += batchTile {
		s1 := s0 + batchTile
		if s1 > n {
			s1 = n
		}
		for i := 0; i < m.rows; i++ {
			out := dst.data[i*n+s0 : i*n+s1]
			for k := range out {
				out[k] = 0
			}
			row := m.data[i*m.cols : (i+1)*m.cols]
			for j, a := range row {
				xr := x.data[j*n+s0 : j*n+s1]
				for k, v := range xr {
					out[k] += a * v
				}
			}
		}
	}
}

// MulBatchAddTo accumulates dst[:,s] += m * x[:,s] for every vector s.
// Like MulVecAddTo, the product for each output component is summed into a
// private accumulator first (dst's scratch tile) and added to dst in one
// operation, so the floating-point grouping — dst + (sum over j) — matches
// MulVecAddTo bit-for-bit per column. dst must not alias x.
func (m *Dense) MulBatchAddTo(dst, x *Batch) {
	if x.dim != m.cols {
		panic(fmt.Sprintf("mat: MulBatchAddTo shape mismatch %dx%d * %dx%d", m.rows, m.cols, x.dim, x.n))
	}
	if dst.dim != m.rows {
		panic(fmt.Sprintf("mat: MulBatchAddTo dst dimension %d, want %d", dst.dim, m.rows))
	}
	if dst.n != x.n {
		panic(fmt.Sprintf("mat: MulBatchAddTo dst has %d vectors, x has %d", dst.n, x.n))
	}
	if &dst.data[0] == &x.data[0] {
		panic("mat: MulBatchAddTo dst aliases x")
	}
	n := x.n
	for s0 := 0; s0 < n; s0 += batchTile {
		s1 := s0 + batchTile
		if s1 > n {
			s1 = n
		}
		tmp := dst.scratch[:s1-s0]
		for i := 0; i < m.rows; i++ {
			for k := range tmp {
				tmp[k] = 0
			}
			row := m.data[i*m.cols : (i+1)*m.cols]
			for j, a := range row {
				xr := x.data[j*n+s0 : j*n+s1]
				for k, v := range xr {
					tmp[k] += a * v
				}
			}
			out := dst.data[i*n+s0 : i*n+s1]
			for k, v := range tmp {
				out[k] += v
			}
		}
	}
}
