package mat

import "fmt"

// BatchTile is the stream-tile width (columns per cache block) the batch
// kernels process at a time: 256 float64s = 2 KiB per component row, so a
// full x-tile plus dst-tile for the bundled plants (state dimension ≤ 8)
// stays resident in L1 while every matrix row streams over it. It is
// exported so downstream batch loops (the fused lti.PredictBatchTo sweep,
// the fleet engine's shard sizing) can align their blocking to the same
// tile and keep one tile's working set resident across fused kernels.
const BatchTile = 256

// Batch is a struct-of-arrays block of n vectors sharing dimension dim:
// component j of every vector is contiguous in row j (data[j*n : (j+1)*n]).
// It is the memory layout the fleet batch kernels use so one plant matrix
// is streamed through cache once per batch instead of once per stream.
//
// A Batch is a plain buffer with no synchronization; concurrent use
// requires external coordination (each fleet shard owns its blocks and is
// processed by one worker at a time).
type Batch struct {
	dim, n  int
	data    []float64
	scratch []float64 // one tile row for MulBatchAddTo's grouping-preserving accumulator
}

// NewBatch returns a zeroed dim x n block.
func NewBatch(dim, n int) *Batch {
	if dim <= 0 || n <= 0 {
		panic(fmt.Sprintf("mat: NewBatch with non-positive shape %dx%d", dim, n))
	}
	tile := n
	if tile > BatchTile {
		tile = BatchTile
	}
	return &Batch{dim: dim, n: n, data: make([]float64, dim*n), scratch: make([]float64, tile)}
}

// Resize reshapes the block to hold n vectors of the same dimension,
// reusing the existing storage whenever capacity allows — the fleet shards
// call this once per batch with the batch's stream count, so steady-state
// processing never allocates. Contents become unspecified; callers must
// overwrite every column they read back.
func (b *Batch) Resize(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("mat: Batch Resize to non-positive count %d", n))
	}
	if need := b.dim * n; cap(b.data) < need {
		b.data = make([]float64, need)
	} else {
		b.data = b.data[:need]
	}
	b.n = n
	tile := n
	if tile > BatchTile {
		tile = BatchTile
	}
	if len(b.scratch) < tile {
		b.scratch = make([]float64, tile)
	}
}

// Dim returns the vector dimension (rows).
func (b *Batch) Dim() int { return b.dim }

// Len returns the number of vectors in the block (columns).
func (b *Batch) Len() int { return b.n }

// Row returns component j across all vectors, aliasing the block's storage.
func (b *Batch) Row(j int) []float64 {
	if j < 0 || j >= b.dim {
		panic(fmt.Sprintf("mat: Batch row %d out of range for dimension %d", j, b.dim))
	}
	return b.data[j*b.n : (j+1)*b.n]
}

// At returns component j of vector s.
func (b *Batch) At(j, s int) float64 {
	b.boundsCheck(j, s)
	return b.data[j*b.n+s]
}

// Set assigns component j of vector s.
func (b *Batch) Set(j, s int, v float64) {
	b.boundsCheck(j, s)
	b.data[j*b.n+s] = v
}

func (b *Batch) boundsCheck(j, s int) {
	if j < 0 || j >= b.dim || s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch index (%d,%d) out of range for %dx%d block", j, s, b.dim, b.n))
	}
}

// SetCol scatters v into column s (vector s of the block).
func (b *Batch) SetCol(s int, v Vec) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("mat: Batch SetCol dimension %d, want %d", len(v), b.dim))
	}
	if s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch column %d out of range for %d vectors", s, b.n))
	}
	for j, x := range v {
		b.data[j*b.n+s] = x
	}
}

// ColTo gathers column s (vector s of the block) into dst.
func (b *Batch) ColTo(dst Vec, s int) {
	if len(dst) != b.dim {
		panic(fmt.Sprintf("mat: Batch ColTo dimension %d, want %d", len(dst), b.dim))
	}
	if s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch column %d out of range for %d vectors", s, b.n))
	}
	for j := range dst {
		dst[j] = b.data[j*b.n+s]
	}
}

// ZeroCol clears column s.
func (b *Batch) ZeroCol(s int) {
	if s < 0 || s >= b.n {
		panic(fmt.Sprintf("mat: Batch column %d out of range for %d vectors", s, b.n))
	}
	for j := 0; j < b.dim; j++ {
		b.data[j*b.n+s] = 0
	}
}

// checkMulShapes validates one batch-kernel call site; op names the kernel
// in the panic message. Shape and aliasing faults are programmer errors
// caught at construction time by every caller in this repo.
func (m *Dense) checkMulShapes(op string, dst, x *Batch) {
	if x.dim != m.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d * %dx%d", op, m.rows, m.cols, x.dim, x.n))
	}
	if dst.dim != m.rows {
		panic(fmt.Sprintf("mat: %s dst dimension %d, want %d", op, dst.dim, m.rows))
	}
	if dst.n != x.n {
		panic(fmt.Sprintf("mat: %s dst has %d vectors, x has %d", op, dst.n, x.n))
	}
	if &dst.data[0] == &x.data[0] {
		panic(fmt.Sprintf("mat: %s dst aliases x", op))
	}
}

// checkRange validates a [s0, s1) column range for a range kernel.
func (b *Batch) checkRange(op string, s0, s1 int) {
	if s0 < 0 || s1 > b.n || s0 >= s1 {
		panic(fmt.Sprintf("mat: %s column range [%d,%d) invalid for %d vectors", op, s0, s1, b.n))
	}
}

// mulTile computes dst[:, s0:s1) = m * x[:, s0:s1) for one stream tile.
// No validation: callers have checked shapes, aliasing, and the range.
func (m *Dense) mulTile(dst, x *Batch, s0, s1 int) {
	n := x.n
	for i := 0; i < m.rows; i++ {
		out := dst.data[i*n+s0 : i*n+s1]
		for k := range out {
			out[k] = 0
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			xr := x.data[j*n+s0 : j*n+s1]
			for k, v := range xr {
				out[k] += a * v
			}
		}
	}
}

// mulAddTile accumulates dst[:, s0:s1) += m * x[:, s0:s1) for one stream
// tile, summing each output component into dst's scratch tile first so the
// floating-point grouping — dst + (sum over j) — matches MulVecAddTo
// bit-for-bit per column. s1-s0 must not exceed len(dst.scratch) (both are
// capped at BatchTile by construction).
func (m *Dense) mulAddTile(dst, x *Batch, s0, s1 int) {
	n := x.n
	tmp := dst.scratch[:s1-s0]
	for i := 0; i < m.rows; i++ {
		for k := range tmp {
			tmp[k] = 0
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			xr := x.data[j*n+s0 : j*n+s1]
			for k, v := range xr {
				tmp[k] += a * v
			}
		}
		out := dst.data[i*n+s0 : i*n+s1]
		for k, v := range tmp {
			out[k] += v
		}
	}
}

// MulBatchRangeTo computes dst[:,s] = m * x[:,s] for the column range
// [s0, s1) only, cache-blocked over BatchTile-wide stream tiles. It is the
// building block fused multi-kernel sweeps (lti.System.PredictBatchTo) use
// to keep one stream tile's dst block L1-resident across consecutive
// kernels instead of sweeping the whole batch once per kernel. The
// per-column summation order is exactly MulVecTo's (accumulate over
// j = 0..cols-1 starting from zero), so each column is bit-identical to a
// standalone MulVecTo call — the property the fleet engine's differential
// tests pin. dst must not alias x; shape, aliasing, and range faults panic.
func (m *Dense) MulBatchRangeTo(dst, x *Batch, s0, s1 int) {
	m.checkMulShapes("MulBatchRangeTo", dst, x)
	dst.checkRange("MulBatchRangeTo", s0, s1)
	for t0 := s0; t0 < s1; t0 += BatchTile {
		t1 := t0 + BatchTile
		if t1 > s1 {
			t1 = s1
		}
		m.mulTile(dst, x, t0, t1)
	}
}

// MulBatchAddRangeTo accumulates dst[:,s] += m * x[:,s] for the column
// range [s0, s1) only, with MulVecAddTo's grouped summation per column (see
// MulBatchAddTo). dst must not alias x; shape, aliasing, and range faults
// panic.
func (m *Dense) MulBatchAddRangeTo(dst, x *Batch, s0, s1 int) {
	m.checkMulShapes("MulBatchAddRangeTo", dst, x)
	dst.checkRange("MulBatchAddRangeTo", s0, s1)
	for t0 := s0; t0 < s1; t0 += BatchTile {
		t1 := t0 + BatchTile
		if t1 > s1 {
			t1 = s1
		}
		m.mulAddTile(dst, x, t0, t1)
	}
}

// MulBatchTo computes m * x column-wise into dst: dst[:,s] = m * x[:,s] for
// every vector s, cache-blocked over stream tiles. The per-column summation
// order is exactly MulVecTo's (accumulate over j = 0..cols-1 starting from
// zero), so each column is bit-identical to a standalone MulVecTo call —
// the property the fleet engine's differential tests pin. dst must not
// alias x; shape mismatches and aliasing panic (programmer error, caught at
// construction time by every caller in this repo).
func (m *Dense) MulBatchTo(dst, x *Batch) {
	m.checkMulShapes("MulBatchTo", dst, x)
	n := x.n
	for s0 := 0; s0 < n; s0 += BatchTile {
		s1 := s0 + BatchTile
		if s1 > n {
			s1 = n
		}
		m.mulTile(dst, x, s0, s1)
	}
}

// MulBatchAddTo accumulates dst[:,s] += m * x[:,s] for every vector s.
// Like MulVecAddTo, the product for each output component is summed into a
// private accumulator first (dst's scratch tile) and added to dst in one
// operation, so the floating-point grouping — dst + (sum over j) — matches
// MulVecAddTo bit-for-bit per column. dst must not alias x.
func (m *Dense) MulBatchAddTo(dst, x *Batch) {
	m.checkMulShapes("MulBatchAddTo", dst, x)
	n := x.n
	for s0 := 0; s0 < n; s0 += BatchTile {
		s1 := s0 + BatchTile
		if s1 > n {
			s1 = n
		}
		m.mulAddTile(dst, x, s0, s1)
	}
}
