// Package mat provides the dense linear-algebra substrate used by the
// reachability analysis, LTI simulation, and detection pipeline. It is a
// deliberately small, allocation-conscious library over float64 slices:
// vectors are []float64 wrapped in Vec, matrices are row-major Dense values.
//
// Everything in this package is pure stdlib and deterministic. The API
// mirrors the handful of operations the paper's math needs: matrix-vector
// and matrix-matrix products, matrix powers A^i, the matrix exponential for
// continuous-to-discrete conversion, and the vector norms (L1, L2, L-inf)
// that appear in the support-function bounds of Eq. (4)/(5).
package mat

import (
	"fmt"
	"math"
)

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// VecOf returns a vector holding a copy of the given values.
func VecOf(vals ...float64) Vec {
	v := make(Vec, len(vals))
	copy(v, vals)
	return v
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// CopyTo copies v into dst without allocating. It panics if lengths differ,
// following the package's constructor-time validation convention.
func (v Vec) CopyTo(dst Vec) {
	mustSameLen(v, dst)
	copy(dst, v)
}

// AbsDiffTo writes |a - b| element-wise into dst — the residual kernel of
// the Data Logger's hot path. dst may alias a or b. It panics on length
// mismatch.
func AbsDiffTo(dst, a, b Vec) {
	mustSameLen(a, b)
	mustSameLen(dst, a)
	for i := range dst {
		dst[i] = math.Abs(a[i] - b[i])
	}
}

// Len returns the dimension of v.
func (v Vec) Len() int { return len(v) }

// Add returns v + w as a new vector. It panics if dimensions differ.
func (v Vec) Add(w Vec) Vec {
	mustSameLen(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector. It panics if dimensions differ.
func (v Vec) Sub(w Vec) Vec {
	mustSameLen(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace adds w into v element-wise.
func (v Vec) AddInPlace(w Vec) {
	mustSameLen(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// Scale returns c*v as a new vector.
func (v Vec) Scale(c float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Dot returns the inner product of v and w. It panics if dimensions differ.
func (v Vec) Dot(w Vec) float64 {
	mustSameLen(v, w)
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Abs returns the element-wise absolute value of v as a new vector.
func (v Vec) Abs() Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = math.Abs(v[i])
	}
	return out
}

// Norm1 returns the L1 norm of v: sum of absolute entries.
func (v Vec) Norm1() float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v. The implementation rescales by
// the largest magnitude entry so that it neither overflows nor underflows for
// extreme values.
func (v Vec) Norm2() float64 {
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	//awdlint:allow floateq -- exact: the norm is zero only when every entry is exactly zero
	if maxAbs == 0 {
		return 0
	}
	if math.IsInf(maxAbs, 0) {
		return math.Inf(1)
	}
	s := 0.0
	for _, x := range v {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the L-infinity norm of v: the largest absolute entry.
func (v Vec) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm returns the k-norm of v for k >= 1; k = math.Inf(1) yields NormInf.
func (v Vec) Norm(k float64) float64 {
	switch {
	case math.IsInf(k, 1):
		return v.NormInf()
	//awdlint:allow floateq -- exact fast-path dispatch; the general branch below is correct for any k
	case k == 1:
		return v.Norm1()
	//awdlint:allow floateq -- exact fast-path dispatch; the general branch below is correct for any k
	case k == 2:
		return v.Norm2()
	case k < 1:
		panic(fmt.Sprintf("mat: Norm called with k=%v < 1", k))
	}
	s := 0.0
	for _, x := range v {
		s += math.Pow(math.Abs(x), k)
	}
	return math.Pow(s, 1/k)
}

// Equal reports whether v and w have the same length and entries within tol.
func (v Vec) Equal(w Vec, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if !ApproxEq(v[i], w[i], tol) {
			return false
		}
	}
	return true
}

// Max returns the largest entry of v. It panics on an empty vector.
func (v Vec) Max() float64 {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest entry of v. It panics on an empty vector.
func (v Vec) Min() float64 {
	if len(v) == 0 {
		panic("mat: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Basis returns the i-th standard basis vector of dimension n (e_i).
func Basis(n, i int) Vec {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("mat: Basis index %d out of range for dimension %d", i, n))
	}
	v := make(Vec, n)
	v[i] = 1
	return v
}

// Constant returns a length-n vector with every entry set to c.
func Constant(n int, c float64) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = c
	}
	return v
}

func mustSameLen(v, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// String implements fmt.Stringer with a compact bracketed rendering.
func (v Vec) String() string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.6g", x)
	}
	return s + "]"
}
