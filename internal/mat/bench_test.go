package mat

import (
	"math/rand"
	"testing"
)

func benchMatrix(n int) *Dense {
	r := rand.New(rand.NewSource(1))
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	return m
}

func BenchmarkMulVec12(b *testing.B) {
	m := benchMatrix(12)
	v := make(Vec, 12)
	for i := range v {
		v[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MulVec(v)
	}
}

func BenchmarkMul12(b *testing.B) {
	m := benchMatrix(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mul(m)
	}
}

func BenchmarkExpm12(b *testing.B) {
	m := benchMatrix(12).Scale(0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Expm(m)
	}
}

func BenchmarkLUSolve12(b *testing.B) {
	m := benchMatrix(12)
	for i := 0; i < 12; i++ {
		m.Set(i, i, m.At(i, i)+20) // well conditioned
	}
	v := make(Vec, 12)
	for i := range v {
		v[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowers40(b *testing.B) {
	m := benchMatrix(12).Scale(0.08)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Powers(40)
	}
}
