package obs

import "time"

// Metric names exported by the Observer — the catalogue README.md
// documents. Keeping them as constants lets tests and dashboards reference
// series without stringly-typed drift.
const (
	MetricSteps          = "awd_detector_steps_total"
	MetricAlarms         = "awd_detector_alarms_total"
	MetricCompAlarms     = "awd_detector_complementary_alarms_total"
	MetricWindow         = "awd_detector_window_size"
	MetricDeadline       = "awd_detector_deadline_steps"
	MetricResidualMax    = "awd_detector_residual_avg_max"
	MetricReachLatency   = "awd_reach_deadline_duration_us"
	MetricLoggerLen      = "awd_logger_occupancy"
	MetricLoggerObserved = "awd_logger_observed_total"
	MetricLoggerReleased = "awd_logger_released_total"
	MetricRuns           = "awd_runs_total"
	MetricRunsDetected   = "awd_runs_detected_total"
	MetricRunsMissed     = "awd_runs_deadline_missed_total"
	MetricRunDelay       = "awd_run_detection_delay_steps"
)

// ReachLatencyBuckets are the µs buckets for the reachability deadline
// search — Table 2-scale plants land between a few and a few hundred µs.
var ReachLatencyBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// RunDelayBuckets bucket per-run detection latency in control steps (the
// paper's delay column spans roughly 1–150 steps).
var RunDelayBuckets = []float64{1, 2, 5, 10, 20, 40, 80, 160, 320}

// Observer is the hook the detection pipeline calls into. A nil *Observer
// is the disabled state: every method is nil-safe and free, so the hot
// path carries exactly one pointer check per instrumentation point. An
// enabled Observer fans each step out to its metric instruments (atomics)
// and its trace sink.
type Observer struct {
	reg  *Registry
	sink Sink

	steps       *Counter
	alarms      *Counter
	compAlarms  *Counter
	window      *Gauge
	deadline    *Gauge
	residualMax *Gauge
	reachUS     *Histogram

	loggerLen      *Gauge
	loggerObserved *Gauge
	loggerReleased *Gauge

	runs         *Counter
	runsDetected *Counter
	runsMissed   *Counter
	runDelay     *Histogram
}

// NewObserver builds an observer over the registry and sink. A nil
// registry gets a fresh one; a nil sink defaults to NopSink.
func NewObserver(reg *Registry, sink Sink) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	if sink == nil {
		sink = NopSink{}
	}
	return &Observer{
		reg:  reg,
		sink: sink,

		steps:       reg.Counter(MetricSteps, "detection steps executed"),
		alarms:      reg.Counter(MetricAlarms, "primary window-rule alarms"),
		compAlarms:  reg.Counter(MetricCompAlarms, "complementary-pass alarms"),
		window:      reg.Gauge(MetricWindow, "detection window size w_c of the latest step"),
		deadline:    reg.Gauge(MetricDeadline, "detection deadline t_d of the latest step"),
		residualMax: reg.Gauge(MetricResidualMax, "max per-dimension windowed average residual"),
		reachUS:     reg.Histogram(MetricReachLatency, "reachability deadline search latency (microseconds)", ReachLatencyBuckets),

		loggerLen:      reg.Gauge(MetricLoggerLen, "entries retained in the data logger sliding window"),
		loggerObserved: reg.Gauge(MetricLoggerObserved, "samples observed by the data logger this run"),
		loggerReleased: reg.Gauge(MetricLoggerReleased, "samples released past the sliding window this run"),

		runs:         reg.Counter(MetricRuns, "attacked evaluation runs analyzed"),
		runsDetected: reg.Counter(MetricRunsDetected, "runs whose attack was detected"),
		runsMissed:   reg.Counter(MetricRunsMissed, "runs unsafe before the first alarm"),
		runDelay:     reg.Histogram(MetricRunDelay, "per-run detection delay (control steps)", RunDelayBuckets),
	}
}

// Enabled reports whether observability is on; safe on a nil receiver.
func (o *Observer) Enabled() bool { return o != nil }

// Registry returns the metric registry backing this observer (nil when
// disabled).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Sink returns the trace sink (nil when disabled).
func (o *Observer) Sink() Sink {
	if o == nil {
		return nil
	}
	return o.sink
}

// Now returns the current time when enabled and the zero time when
// disabled, so call sites can guard clock reads with the same nil check.
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveStep records one detection step: counters, level gauges, the
// reachability latency histogram, and the trace event. Nil-safe and
// allocation-free provided ev's slices are caller-owned.
func (o *Observer) ObserveStep(ev StepEvent) {
	if o == nil {
		return
	}
	o.steps.Inc()
	o.window.SetInt(ev.Window)
	o.deadline.SetInt(ev.Deadline)
	if ev.Alarm {
		o.alarms.Inc()
	}
	if ev.Complementary {
		o.compAlarms.Inc()
	}
	if len(ev.ResidualAvg) > 0 {
		max := ev.ResidualAvg[0]
		for _, v := range ev.ResidualAvg[1:] {
			if v > max {
				max = v
			}
		}
		o.residualMax.Set(max)
	}
	if ev.ReachTimed {
		o.reachUS.Observe(ev.ReachMicros)
	}
	o.loggerLen.SetInt(ev.LoggerLen)
	o.loggerObserved.SetInt(ev.LoggerObserved)
	o.loggerReleased.SetInt(ev.LoggerReleased)
	o.sink.Emit(ev)
}

// ObserveRun aggregates one finished evaluation run into the campaign
// histograms: detection latency plus detected / deadline-missed counters.
// Call it once per attacked run (sim.Campaign does). Nil-safe.
func (o *Observer) ObserveRun(detectionDelaySteps int, detected, deadlineMissed bool) {
	if o == nil {
		return
	}
	o.runs.Inc()
	if detected {
		o.runsDetected.Inc()
		o.runDelay.Observe(float64(detectionDelaySteps))
	}
	if deadlineMissed {
		o.runsMissed.Inc()
	}
}

// Close flushes and closes the trace sink. Nil-safe.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	return o.sink.Close()
}
