package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Fleet-engine metric names (see internal/fleet). Per-shard series are
// suffixed with the shard index at registration time via FleetShardMetric,
// keeping the catalogue here in one place.
const (
	MetricFleetStreams          = "awd_fleet_streams"
	MetricFleetShards           = "awd_fleet_shards"
	MetricFleetSteps            = "awd_fleet_steps_total"
	MetricFleetBatches          = "awd_fleet_batches_total"
	MetricFleetAlarms           = "awd_fleet_alarms_total"
	MetricFleetQueueDepth       = "awd_fleet_runq_depth"
	MetricFleetDeadlinePressure = "awd_fleet_deadline_pressure"
	MetricFleetShardBatchUS     = "awd_fleet_shard_batch_us"     // prefix; see FleetShardMetric
	MetricFleetShardSteps       = "awd_fleet_shard_steps_total"  // prefix; see FleetShardMetric
	MetricFleetShardAlarms      = "awd_fleet_shard_alarms_total" // prefix; see FleetShardMetric
	MetricFleetShardStreams     = "awd_fleet_shard_streams"      // prefix; see FleetShardMetric
)

// FleetBatchLatencyBuckets are the µs buckets for one shard batch step:
// a batch spans one stream (a few µs with deadline search) up to hundreds.
var FleetBatchLatencyBuckets = []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000}

// DeadlinePressureBuckets bucket the fleet-wide deadline-pressure metric:
// the fraction of a shard certificate's proven slack radius a stream's
// trusted state has consumed this step (see DESIGN.md §9). 0 means the
// state sits on a fresh anchor with the full distance-to-unsafe slack
// budget ahead of it; 1 means the budget is exhausted and the stream's
// next deadline query pays a full reachability re-scan (and its deadline
// may shrink). The buckets concentrate near 1 because that is where an
// operator needs warning.
var DeadlinePressureBuckets = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}

// FleetShardMetric returns a per-shard series name for a catalogue prefix
// and shard index, e.g. FleetShardMetric(MetricFleetShardSteps, 3) =
// "awd_fleet_shard_steps_total_3".
func FleetShardMetric(prefix string, shard int) string {
	return fmt.Sprintf("%s_%d", prefix, shard)
}

// FleetShardBatchMetric returns the per-shard batch-latency histogram name
// for a shard index, e.g. awd_fleet_shard_batch_us_3.
func FleetShardBatchMetric(shard int) string {
	return FleetShardMetric(MetricFleetShardBatchUS, shard)
}

// ShardRollup aggregates one fleet shard's series out of a Snapshot.
type ShardRollup struct {
	Shard   int   `json:"shard"`
	Streams int   `json:"streams"`
	Steps   int64 `json:"steps"`
	Alarms  int64 `json:"alarms"`
	// BatchUS is the shard's batch-step latency histogram (microseconds).
	BatchUS MetricValue `json:"batch_us"`
}

// FleetRollup is the fleet-wide operational picture assembled from one
// Snapshot: engine totals, the deadline-pressure distribution, and one
// rollup per shard. Assembly is O(shards·log metrics) — it touches only
// registered series, never per-stream state.
type FleetRollup struct {
	Streams    int   `json:"streams"`
	Shards     int   `json:"shards"`
	Steps      int64 `json:"steps"`
	Batches    int64 `json:"batches"`
	Alarms     int64 `json:"alarms"`
	QueueDepth int   `json:"queue_depth"`
	// DeadlinePressure is the fleet-wide slack-consumption histogram; its
	// Count is zero when no adaptive stream has run a certified deadline
	// check yet.
	DeadlinePressure MetricValue   `json:"deadline_pressure"`
	PerShard         []ShardRollup `json:"per_shard"`
}

// FleetRollupFromSnapshot assembles the fleet rollup from a snapshot. The
// second return is false when the snapshot carries no fleet engine metrics
// at all (no fleet ran behind this registry).
func FleetRollupFromSnapshot(s Snapshot) (FleetRollup, bool) {
	if _, ok := s.Get(MetricFleetStreams); !ok {
		return FleetRollup{}, false
	}
	r := FleetRollup{
		Streams:    int(s.GaugeValue(MetricFleetStreams)),
		Shards:     int(s.GaugeValue(MetricFleetShards)),
		Steps:      s.CounterValue(MetricFleetSteps),
		Batches:    s.CounterValue(MetricFleetBatches),
		Alarms:     s.CounterValue(MetricFleetAlarms),
		QueueDepth: int(s.GaugeValue(MetricFleetQueueDepth)),
	}
	r.DeadlinePressure, _ = s.HistogramValue(MetricFleetDeadlinePressure)
	r.PerShard = make([]ShardRollup, 0, r.Shards)
	for i := 0; i < r.Shards; i++ {
		sr := ShardRollup{
			Shard:   i,
			Streams: int(s.GaugeValue(FleetShardMetric(MetricFleetShardStreams, i))),
			Steps:   s.CounterValue(FleetShardMetric(MetricFleetShardSteps, i)),
			Alarms:  s.CounterValue(FleetShardMetric(MetricFleetShardAlarms, i)),
		}
		sr.BatchUS, _ = s.HistogramValue(FleetShardBatchMetric(i))
		r.PerShard = append(r.PerShard, sr)
	}
	return r, true
}

// ShardIndex parses the shard index off a per-shard series name given its
// catalogue prefix; ok is false when name is not prefix + "_" + integer.
func ShardIndex(prefix, name string) (int, bool) {
	if !strings.HasPrefix(name, prefix+"_") {
		return 0, false
	}
	n, err := strconv.Atoi(name[len(prefix)+1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
