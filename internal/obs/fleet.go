package obs

import "fmt"

// Fleet-engine metric names (see internal/fleet). The per-shard batch
// latency series is suffixed with the shard index at registration time via
// FleetShardBatchMetric, keeping the catalogue here in one place.
const (
	MetricFleetStreams      = "awd_fleet_streams"
	MetricFleetShards       = "awd_fleet_shards"
	MetricFleetSteps        = "awd_fleet_steps_total"
	MetricFleetBatches      = "awd_fleet_batches_total"
	MetricFleetQueueDepth   = "awd_fleet_runq_depth"
	MetricFleetShardBatchUS = "awd_fleet_shard_batch_us" // prefix; see FleetShardBatchMetric
)

// FleetBatchLatencyBuckets are the µs buckets for one shard batch step:
// a batch spans one stream (a few µs with deadline search) up to hundreds.
var FleetBatchLatencyBuckets = []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000}

// FleetShardBatchMetric returns the per-shard batch-latency histogram name
// for a shard index, e.g. awd_fleet_shard_batch_us_3.
func FleetShardBatchMetric(shard int) string {
	return fmt.Sprintf("%s_%d", MetricFleetShardBatchUS, shard)
}
