package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFormatDecision(t *testing.T) {
	cases := []struct {
		step, window, deadline int
		alarm, comp            bool
		compStep               int
		dims                   []int
		want                   string
	}{
		{142, 12, 12, true, false, -1, []int{0, 2}, "step  142  w=12 d=12  ALARM dims=[0 2]"},
		{143, 10, 10, false, true, 138, []int{1}, "step  143  w=10 d=10  comp@138 dims=[1]"},
		{144, 10, 10, false, false, -1, nil, "step  144  w=10 d=10  ok"},
		{7, 30, -1, true, false, -1, nil, "step    7  w=30  ALARM"},
		{8, 5, 5, true, true, 3, []int{0}, "step    8  w=5 d=5  ALARM+comp@3 dims=[0]"},
		{9, 5, 5, false, true, -1, nil, "step    9  w=5 d=5  comp"},
	}
	for _, c := range cases {
		got := FormatDecision(c.step, c.window, c.deadline, c.alarm, c.comp, c.compStep, c.dims)
		if got != c.want {
			t.Errorf("FormatDecision(%+v):\n got %q\nwant %q", c, got, c.want)
		}
	}
}

func TestStepEventString(t *testing.T) {
	ev := StepEvent{Step: 5, Window: 3, Deadline: 4, Alarm: true, ComplementaryStep: -1,
		ReachTimed: true, ReachMicros: 12.34, LoggerLen: 9}
	s := ev.String()
	for _, want := range []string{"w=3 d=4", "ALARM", "reach=12.3µs", "log=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestRingSinkWrapsAndCopies(t *testing.T) {
	s := NewRingSink(3)
	shared := []float64{1, 2}
	for i := 0; i < 5; i++ {
		shared[0] = float64(i) // emitter reuses its scratch buffer
		s.Emit(StepEvent{Step: i, ResidualAvg: shared})
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		wantStep := i + 2 // oldest two overwritten
		if ev.Step != wantStep {
			t.Errorf("event %d step = %d, want %d", i, ev.Step, wantStep)
		}
		if ev.ResidualAvg[0] != float64(wantStep) {
			t.Errorf("event %d residual = %v, want %v (retained event aliases emitter scratch)",
				i, ev.ResidualAvg[0], wantStep)
		}
	}
	if got := s.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
}

func TestRingSinkConcurrentEmit(t *testing.T) {
	s := NewRingSink(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Emit(StepEvent{Step: i, Strategy: "adaptive"})
			}
		}(w)
	}
	wg.Wait()
	if got := len(s.Events()); got != 64 {
		t.Fatalf("retained %d events, want 64", got)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(StepEvent{Step: 0, Strategy: "adaptive", Window: 4, Deadline: 6, LoggerLen: 1})
	s.Emit(StepEvent{Step: 1, Window: 3, Deadline: 3, Alarm: true, Dims: []int{1}, LoggerLen: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var ev StepEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Step != 1 || !ev.Alarm || len(ev.Dims) != 1 || ev.Dims[0] != 1 {
		t.Fatalf("round-trip event = %+v", ev)
	}
	// Optional fields stay out of the wire format when empty.
	if strings.Contains(lines[0], "dims") || strings.Contains(lines[0], "complementary") {
		t.Errorf("line 0 carries zero-value noise: %s", lines[0])
	}
}
