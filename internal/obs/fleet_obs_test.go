package obs

import (
	"strings"
	"testing"
)

func TestFleetShardMetricNames(t *testing.T) {
	if got := FleetShardBatchMetric(3); got != "awd_fleet_shard_batch_us_3" {
		t.Errorf("batch metric = %q", got)
	}
	if got := FleetShardMetric(MetricFleetShardSteps, 0); got != "awd_fleet_shard_steps_total_0" {
		t.Errorf("steps metric = %q", got)
	}
	for _, tc := range []struct {
		prefix, name string
		want         int
		ok           bool
	}{
		{MetricFleetShardBatchUS, "awd_fleet_shard_batch_us_7", 7, true},
		{MetricFleetShardSteps, "awd_fleet_shard_steps_total_12", 12, true},
		{MetricFleetShardBatchUS, "awd_fleet_shard_batch_us_", 0, false},
		{MetricFleetShardBatchUS, "awd_fleet_shard_batch_us_x", 0, false},
		{MetricFleetShardBatchUS, "awd_fleet_shard_batch_us_-1", 0, false},
		{MetricFleetShardBatchUS, "awd_fleet_steps_total", 0, false},
	} {
		got, ok := ShardIndex(tc.prefix, tc.name)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ShardIndex(%q, %q) = %d,%v, want %d,%v", tc.prefix, tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

// TestFleetShardExpositionGolden pins the Prometheus text rendering of the
// per-shard series a two-shard fleet registers — the names a scrape config
// or recording rule matches on.
func TestFleetShardExpositionGolden(t *testing.T) {
	r := NewRegistry()
	for sh := 0; sh < 2; sh++ {
		r.Gauge(FleetShardMetric(MetricFleetShardStreams, sh), "streams in shard").SetInt(10 * (sh + 1))
		r.Counter(FleetShardMetric(MetricFleetShardSteps, sh), "steps in shard").Add(int64(100 * (sh + 1)))
		r.Counter(FleetShardMetric(MetricFleetShardAlarms, sh), "alarms in shard").Add(int64(sh))
		h := r.Histogram(FleetShardBatchMetric(sh), "batch latency", FleetBatchLatencyBuckets)
		h.Observe(7)
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE awd_fleet_shard_streams_0 gauge",
		"awd_fleet_shard_streams_0 10",
		"awd_fleet_shard_streams_1 20",
		"# TYPE awd_fleet_shard_steps_total_0 counter",
		"awd_fleet_shard_steps_total_0 100",
		"awd_fleet_shard_steps_total_1 200",
		"awd_fleet_shard_alarms_total_1 1",
		"# TYPE awd_fleet_shard_batch_us_0 histogram",
		`awd_fleet_shard_batch_us_0_bucket{le="10"} 1`,
		`awd_fleet_shard_batch_us_1_bucket{le="5"} 0`,
		"awd_fleet_shard_batch_us_0_count 1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, out.String())
		}
	}
}

func TestFleetRollupFromSnapshot(t *testing.T) {
	s := fleetShapedRegistry(3).Snapshot()
	r, ok := FleetRollupFromSnapshot(s)
	if !ok {
		t.Fatal("rollup not assembled from fleet-shaped snapshot")
	}
	if r.Streams != 750 || r.Shards != 3 || r.Steps != 1e6 || r.Batches != 5000 || r.Alarms != 12 || r.QueueDepth != 3 {
		t.Errorf("fleet totals = %+v", r)
	}
	if r.DeadlinePressure.Kind != KindHistogram || r.DeadlinePressure.Count != 100 {
		t.Errorf("deadline pressure = %+v", r.DeadlinePressure)
	}
	if len(r.PerShard) != 3 {
		t.Fatalf("per-shard rollups = %d, want 3", len(r.PerShard))
	}
	var steps int64
	for i, sh := range r.PerShard {
		if sh.Shard != i || sh.Streams != 250 || sh.Alarms != 3 {
			t.Errorf("shard %d rollup = %+v", i, sh)
		}
		if sh.BatchUS.Kind != KindHistogram || sh.BatchUS.Count != 50 {
			t.Errorf("shard %d batch histogram = %+v", i, sh.BatchUS)
		}
		steps += sh.Steps
	}
	if steps != r.Steps-r.Steps%3 {
		t.Errorf("per-shard steps sum %d inconsistent with fleet total %d", steps, r.Steps)
	}

	// A registry with no fleet series yields no rollup.
	plain := NewRegistry()
	plain.Counter("unrelated_total", "").Inc()
	if _, ok := FleetRollupFromSnapshot(plain.Snapshot()); ok {
		t.Error("rollup assembled from non-fleet snapshot")
	}
}
