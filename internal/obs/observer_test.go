package obs

import (
	"strings"
	"testing"
)

func TestNilObserverIsSafeAndFree(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	if o.Registry() != nil || o.Sink() != nil {
		t.Fatal("nil observer leaks components")
	}
	if !o.Now().IsZero() {
		t.Fatal("nil observer read the clock")
	}
	o.ObserveStep(StepEvent{Step: 1, Alarm: true})
	o.ObserveRun(3, true, false)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		o.ObserveStep(StepEvent{Step: 1})
	}); allocs != 0 {
		t.Fatalf("disabled ObserveStep allocates %v per call", allocs)
	}
}

func TestObserveStepUpdatesInstruments(t *testing.T) {
	ring := NewRingSink(8)
	o := NewObserver(nil, ring)
	o.ObserveStep(StepEvent{
		Step: 0, Strategy: "adaptive", Window: 5, Deadline: 7,
		ResidualAvg: []float64{0.1, 0.4, 0.2},
		ReachTimed:  true, ReachMicros: 12,
		LoggerLen: 6, LoggerObserved: 10, LoggerReleased: 4,
	})
	o.ObserveStep(StepEvent{
		Step: 1, Strategy: "adaptive", Window: 3, Deadline: 3, Alarm: true,
		Complementary: true, ComplementaryStep: 0, Dims: []int{1},
		ReachTimed: true, ReachMicros: 30, LoggerLen: 7,
	})

	reg := o.Registry()
	if got := reg.Counter(MetricSteps, "").Value(); got != 2 {
		t.Errorf("steps = %d, want 2", got)
	}
	if got := reg.Counter(MetricAlarms, "").Value(); got != 1 {
		t.Errorf("alarms = %d, want 1", got)
	}
	if got := reg.Counter(MetricCompAlarms, "").Value(); got != 1 {
		t.Errorf("complementary alarms = %d, want 1", got)
	}
	if got := reg.Gauge(MetricWindow, "").Value(); got != 3 {
		t.Errorf("window gauge = %v, want 3", got)
	}
	if got := reg.Gauge(MetricDeadline, "").Value(); got != 3 {
		t.Errorf("deadline gauge = %v, want 3", got)
	}
	if got := reg.Gauge(MetricResidualMax, "").Value(); got != 0.4 {
		t.Errorf("residual max = %v, want 0.4", got)
	}
	h := reg.Histogram(MetricReachLatency, "", ReachLatencyBuckets)
	if h.Count() != 2 || h.Sum() != 42 {
		t.Errorf("reach histogram count/sum = %d/%v, want 2/42", h.Count(), h.Sum())
	}
	if got := len(ring.Events()); got != 2 {
		t.Errorf("sink saw %d events, want 2", got)
	}
}

func TestObserveRun(t *testing.T) {
	o := NewObserver(nil, nil)
	o.ObserveRun(10, true, false)
	o.ObserveRun(-1, false, true)
	reg := o.Registry()
	if got := reg.Counter(MetricRuns, "").Value(); got != 2 {
		t.Errorf("runs = %d, want 2", got)
	}
	if got := reg.Counter(MetricRunsDetected, "").Value(); got != 1 {
		t.Errorf("detected = %d, want 1", got)
	}
	if got := reg.Counter(MetricRunsMissed, "").Value(); got != 1 {
		t.Errorf("missed = %d, want 1", got)
	}
	h := reg.Histogram(MetricRunDelay, "", RunDelayBuckets)
	if h.Count() != 1 || h.Sum() != 10 {
		t.Errorf("delay histogram count/sum = %d/%v, want 1/10", h.Count(), h.Sum())
	}
}

// TestObserveStepNoAllocsWithNopSink pins the enabled-path allocation
// contract the ISSUE requires: metrics on, tracing discarded, zero
// allocations per step.
func TestObserveStepNoAllocsWithNopSink(t *testing.T) {
	o := NewObserver(nil, NopSink{})
	res := []float64{0.1, 0.2}
	ev := StepEvent{
		Step: 3, Strategy: "adaptive", Window: 4, Deadline: 4,
		ResidualAvg: res, ReachTimed: true, ReachMicros: 8.5,
		LoggerLen: 6, LoggerObserved: 9, LoggerReleased: 3,
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		o.ObserveStep(ev)
	}); allocs != 0 {
		t.Fatalf("enabled ObserveStep with NopSink allocates %v per call, want 0", allocs)
	}
}

func TestObserverExpositionEndToEnd(t *testing.T) {
	o := NewObserver(nil, nil)
	o.ObserveStep(StepEvent{Step: 0, Window: 2, Deadline: 9, Alarm: true, LoggerLen: 1})
	var out strings.Builder
	if err := o.Registry().WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricSteps + " 1",
		MetricAlarms + " 1",
		MetricWindow + " 2",
		MetricDeadline + " 9",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
