package obs

import (
	"sort"
)

// MetricKind tags a snapshotted metric value with its instrument type.
type MetricKind string

// The three instrument kinds a Registry can hold.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// HistogramBucket is one non-overflow bucket of a snapshotted histogram:
// the inclusive upper bound and the cumulative count of observations at or
// below it (the Prometheus `le` convention). The implicit +Inf bucket is
// not materialized — it would not survive JSON — so overflow observations
// are Count minus the last bucket's CumCount.
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	CumCount   int64   `json:"cum_count"`
}

// MetricValue is one metric's state at snapshot time. Kind selects which
// of the value fields are meaningful: Counter for counters, Gauge for
// gauges, Buckets/Count/Sum for histograms.
type MetricValue struct {
	Name    string            `json:"name"`
	Kind    MetricKind        `json:"kind"`
	Help    string            `json:"help,omitempty"`
	Counter int64             `json:"counter,omitempty"`
	Gauge   float64           `json:"gauge,omitempty"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of a histogram metric by
// linear interpolation inside the containing bucket — the usual
// Prometheus-style estimate, good enough for dashboard percentiles. The
// second return is false for non-histograms and empty histograms. Overflow
// observations clamp to the last finite bound.
func (m MetricValue) Quantile(q float64) (float64, bool) {
	if m.Kind != KindHistogram || m.Count == 0 || len(m.Buckets) == 0 || q < 0 || q > 1 {
		return 0, false
	}
	rank := q * float64(m.Count)
	lo, loCum := 0.0, int64(0)
	for _, b := range m.Buckets {
		if float64(b.CumCount) >= rank {
			width := b.UpperBound - lo
			inBucket := b.CumCount - loCum
			if inBucket <= 0 {
				return b.UpperBound, true
			}
			frac := (rank - float64(loCum)) / float64(inBucket)
			return lo + width*frac, true
		}
		lo, loCum = b.UpperBound, b.CumCount
	}
	// Rank falls in the +Inf overflow bucket: clamp to the largest bound.
	return m.Buckets[len(m.Buckets)-1].UpperBound, true
}

// BucketCounts returns the per-bucket (non-cumulative) observation counts,
// one per finite bound plus the trailing overflow bucket — the shape bar
// charts want. Nil for non-histograms.
func (m MetricValue) BucketCounts() []int64 {
	if m.Kind != KindHistogram {
		return nil
	}
	out := make([]int64, len(m.Buckets)+1)
	prev := int64(0)
	for i, b := range m.Buckets {
		out[i] = b.CumCount - prev
		prev = b.CumCount
	}
	out[len(m.Buckets)] = m.Count - prev
	return out
}

// Snapshot is a point-in-time view of every metric in a Registry, sorted
// by name. It is a plain value: JSON-serializable for the /snapshot
// endpoint and safe to retain, compare, and ship across processes.
type Snapshot struct {
	Metrics []MetricValue `json:"metrics"`
}

// Get returns the named metric value; the Metrics slice is sorted by name
// so the lookup is a binary search.
func (s Snapshot) Get(name string) (MetricValue, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return MetricValue{}, false
}

// CounterValue returns the named counter's value, zero when absent or not
// a counter — the forgiving accessor dashboards want.
func (s Snapshot) CounterValue(name string) int64 {
	m, ok := s.Get(name)
	if !ok || m.Kind != KindCounter {
		return 0
	}
	return m.Counter
}

// GaugeValue returns the named gauge's value, zero when absent or not a
// gauge.
func (s Snapshot) GaugeValue(name string) float64 {
	m, ok := s.Get(name)
	if !ok || m.Kind != KindGauge {
		return 0
	}
	return m.Gauge
}

// HistogramValue returns the named histogram value; ok is false when the
// metric is absent or of another kind.
func (s Snapshot) HistogramValue(name string) (MetricValue, bool) {
	m, ok := s.Get(name)
	if !ok || m.Kind != KindHistogram {
		return MetricValue{}, false
	}
	return m, true
}

// Snapshot captures every registered metric's current value. It is
// lock-light: the registry lock is held only to copy the instrument map
// (O(metrics), never O(observations)), and the values themselves are then
// read through the same atomics the hot path writes — Snapshot never
// blocks an Observe, an Inc, or a Set. Within one snapshot each instrument
// is internally consistent (a histogram's buckets may trail its count by
// in-flight observations, exactly as WritePrometheus may), so a fleet-wide
// snapshot costs O(registered series): for the fleet engine that is
// O(shards), not O(streams).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	type named struct {
		name string
		m    metric
	}
	ms := make([]named, 0, len(r.metrics))
	for name, m := range r.metrics {
		ms = append(ms, named{name, m})
	}
	r.mu.RUnlock()

	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := Snapshot{Metrics: make([]MetricValue, 0, len(ms))}
	for _, nm := range ms {
		mv := MetricValue{Name: nm.name, Help: nm.m.metricHelp()}
		switch inst := nm.m.(type) {
		case *Counter:
			mv.Kind = KindCounter
			mv.Counter = inst.Value()
		case *Gauge:
			mv.Kind = KindGauge
			mv.Gauge = inst.Value()
		case *Histogram:
			mv.Kind = KindHistogram
			mv.Buckets = make([]HistogramBucket, len(inst.bounds))
			cum := int64(0)
			for i, b := range inst.bounds {
				cum += inst.counts[i].Load()
				mv.Buckets[i] = HistogramBucket{UpperBound: b, CumCount: cum}
			}
			// Count includes the overflow bucket; read it after the finite
			// buckets so the total can only be >= the cumulative tail and the
			// derived overflow count stays non-negative.
			mv.Count = cum + inst.counts[len(inst.bounds)].Load()
			mv.Sum = inst.Sum()
		}
		out.Metrics = append(out.Metrics, mv)
	}
	return out
}
