package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// PrometheusHandler serves the registry in the Prometheus text exposition
// format.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// SnapshotHandler serves Registry.Snapshot as JSON — the machine-readable
// sibling of /metrics that awdtop and scripts consume without a Prometheus
// text parser.
func SnapshotHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
}

// StreamTailResponse is the JSON body of the /stream drill-down endpoint.
type StreamTailResponse struct {
	Stream string      `json:"stream"`
	Events []StepEvent `json:"events"`
}

// StreamTailHandler serves a StreamTail's retained events as JSON. A
// ?id=<stream> query retargets the tail before responding (the response to
// a retargeting request is therefore usually empty — the tail starts
// collecting the new stream from that moment).
func StreamTailHandler(tail *StreamTail) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "" {
			tail.Retarget(id)
		}
		evs := tail.Events()
		if evs == nil {
			evs = []StepEvent{} // "events": [] not null, for non-Go consumers
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(StreamTailResponse{Stream: tail.Target(), Events: evs})
	})
}

// NewMux bundles the whole diagnostic surface on one mux:
//
//	/metrics        Prometheus text format for the registry
//	/snapshot       the same registry as typed JSON (Registry.Snapshot)
//	/debug/vars     expvar (cmdline, memstats, anything published)
//	/debug/pprof/   live CPU/heap/goroutine profiling
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler(reg))
	mux.Handle("/snapshot", SnapshotHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "awd telemetry\n\n/metrics\n/snapshot\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts the diagnostic endpoint on addr in a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, NewMux(reg))
}

// ServeHandler starts a background HTTP server for an arbitrary handler —
// the seam for callers that add routes (e.g. /stream) to the standard mux.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops accepting connections.
func (s *Server) Close() error { return s.srv.Close() }

// Option customizes Bootstrap beyond the two standard flags.
type Option func(*bootstrapOpts)

type bootstrapOpts struct {
	tail *StreamTail
}

// WithStreamTail attaches a single-stream drill-down tail: its events feed
// from the observer's trace stream (teed with any -trace-out sink) and it
// is served on the metrics mux as /stream (see StreamTailHandler). With a
// tail attached, a metricsAddr or tracePath is still required to enable
// observability at all.
func WithStreamTail(tail *StreamTail) Option {
	return func(b *bootstrapOpts) { b.tail = tail }
}

// Bootstrap wires the standard CLI observability stack from the
// -metrics-addr / -trace-out flag values shared by the cmd/ tools. Both
// empty returns a nil (disabled) observer. tracePath "-" streams JSONL
// events to stdout; any other path truncates and writes that file. The
// returned address is the bound metrics endpoint ("" when not serving);
// the returned shutdown func closes the endpoint and the trace sink and is
// always non-nil.
func Bootstrap(metricsAddr, tracePath string, opts ...Option) (o *Observer, addr string, shutdown func() error, err error) {
	var bo bootstrapOpts
	for _, opt := range opts {
		opt(&bo)
	}
	shutdown = func() error { return nil }
	if metricsAddr == "" && tracePath == "" {
		return nil, "", shutdown, nil
	}
	var sink Sink = NopSink{}
	if tracePath != "" {
		if tracePath == "-" {
			sink = NewJSONLSink(nopCloser{os.Stdout})
		} else {
			f, err := os.Create(tracePath)
			if err != nil {
				return nil, "", shutdown, fmt.Errorf("obs: trace output: %w", err)
			}
			sink = NewJSONLSink(f)
		}
	}
	if bo.tail != nil {
		if _, nop := sink.(NopSink); nop {
			sink = bo.tail
		} else {
			sink = TeeSink(bo.tail, sink)
		}
	}
	o = NewObserver(NewRegistry(), sink)
	var srv *Server
	if metricsAddr != "" {
		mux := NewMux(o.Registry())
		if bo.tail != nil {
			mux.Handle("/stream", StreamTailHandler(bo.tail))
		}
		srv, err = ServeHandler(metricsAddr, mux)
		if err != nil {
			_ = sink.Close()
			return nil, "", func() error { return nil }, err
		}
		addr = srv.Addr
	}
	shutdown = func() error {
		var first error
		if srv != nil {
			first = srv.Close()
		}
		if err := o.Close(); err != nil && first == nil {
			first = err
		}
		return first
	}
	return o, addr, shutdown, nil
}

// nopCloser shields a shared writer (stdout) from JSONLSink.Close.
type nopCloser struct{ w *os.File }

func (n nopCloser) Write(p []byte) (int, error) { return n.w.Write(p) }
