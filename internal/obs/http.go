package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// PrometheusHandler serves the registry in the Prometheus text exposition
// format.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// NewMux bundles the whole diagnostic surface on one mux:
//
//	/metrics        Prometheus text format for the registry
//	/debug/vars     expvar (cmdline, memstats, anything published)
//	/debug/pprof/   live CPU/heap/goroutine profiling
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "awd telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts the diagnostic endpoint on addr in a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops accepting connections.
func (s *Server) Close() error { return s.srv.Close() }

// Bootstrap wires the standard CLI observability stack from the
// -metrics-addr / -trace-out flag values shared by the cmd/ tools. Both
// empty returns a nil (disabled) observer. tracePath "-" streams JSONL
// events to stdout; any other path truncates and writes that file. The
// returned address is the bound metrics endpoint ("" when not serving);
// the returned shutdown func closes the endpoint and the trace sink and is
// always non-nil.
func Bootstrap(metricsAddr, tracePath string) (o *Observer, addr string, shutdown func() error, err error) {
	shutdown = func() error { return nil }
	if metricsAddr == "" && tracePath == "" {
		return nil, "", shutdown, nil
	}
	var sink Sink = NopSink{}
	if tracePath != "" {
		if tracePath == "-" {
			sink = NewJSONLSink(nopCloser{os.Stdout})
		} else {
			f, err := os.Create(tracePath)
			if err != nil {
				return nil, "", shutdown, fmt.Errorf("obs: trace output: %w", err)
			}
			sink = NewJSONLSink(f)
		}
	}
	o = NewObserver(NewRegistry(), sink)
	var srv *Server
	if metricsAddr != "" {
		srv, err = Serve(metricsAddr, o.Registry())
		if err != nil {
			_ = sink.Close()
			return nil, "", func() error { return nil }, err
		}
		addr = srv.Addr
	}
	shutdown = func() error {
		var first error
		if srv != nil {
			first = srv.Close()
		}
		if err := o.Close(); err != nil && first == nil {
			first = err
		}
		return first
	}
	return o, addr, shutdown, nil
}

// nopCloser shields a shared writer (stdout) from JSONLSink.Close.
type nopCloser struct{ w *os.File }

func (n nopCloser) Write(p []byte) (int, error) { return n.w.Write(p) }
