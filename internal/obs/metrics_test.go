package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`h_bucket{le="1"} 2`,   // 0.5 and the inclusive 1
		`h_bucket{le="10"} 3`,  // + 5
		`h_bucket{le="100"} 4`, // + 50
		`h_bucket{le="+Inf"} 5`,
		"h_sum 556.5",
		"h_count 5",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, out.String())
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "")
	b := r.Counter("shared_total", "")
	if a != b {
		t.Fatal("same name produced distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("shared_total", "")
}

func TestRegistryRejectsInvalidName(t *testing.T) {
	for _, bad := range []string{"", "1abc", "with space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
}

// TestPrometheusGolden pins the full text exposition format: sorted names,
// HELP/TYPE headers, counter/gauge/histogram rendering.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bbb_total", "second metric").Add(3)
	r.Gauge("aaa_level", "first metric").Set(0.25)
	h := r.Histogram("ccc_us", "third metric", []float64{1, 2.5})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(9)

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aaa_level first metric
# TYPE aaa_level gauge
aaa_level 0.25
# HELP bbb_total second metric
# TYPE bbb_total counter
bbb_total 3
# HELP ccc_us third metric
# TYPE ccc_us histogram
ccc_us_bucket{le="1"} 1
ccc_us_bucket{le="2.5"} 2
ccc_us_bucket{le="+Inf"} 3
ccc_us_sum 11.5
ccc_us_count 3
`
	if out.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this doubles as the data-race check, and the deterministic
// totals catch lost updates in the CAS paths.
func TestConcurrentUpdates(t *testing.T) {
	const workers, perWorker = 8, 5000
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Instruments resolved inside the goroutine so registration
			// itself races too.
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_level", "")
			h := r.Histogram("conc_hist", "", []float64{0.5, 1})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.75)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_level", "").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("conc_hist", "", []float64{0.5, 1})
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := h.Sum(); got != 0.75*workers*perWorker {
		t.Errorf("histogram sum = %v, want %v", got, 0.75*workers*perWorker)
	}
}
