// Package obs is the zero-dependency observability layer of the detection
// pipeline: atomic metric instruments in a named registry with Prometheus
// text exposition, a per-step structured trace event stream behind a
// pluggable sink, and an HTTP endpoint bundling /metrics with expvar and
// net/http/pprof so a live detector can be inspected while it runs.
//
// Everything here is stdlib-only and safe for concurrent use. The hot-path
// contract is strict: with observability disabled (a nil *Observer) the
// instrumented call sites cost one nil check and zero allocations; with it
// enabled, metric updates are lock-free atomics and trace emission takes a
// single mutex in the sink.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (Prometheus counter).
type Counter struct {
	help string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decrement %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) metricHelp() string { return c.help }

func (c *Counter) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}

// Gauge is an instantaneous float64 value that may go up or down.
type Gauge struct {
	help string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value (convenience for sizes and counts).
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add atomically adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) metricHelp() string { return g.help }

func (g *Gauge) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
	return err
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters.
// Buckets are defined by their inclusive upper bounds; an implicit +Inf
// bucket catches the rest. Observe is lock-free and allocation-free.
type Histogram struct {
	help   string
	bounds []float64      // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1, per-bucket (non-cumulative)
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) metricHelp() string { return h.help }

func (h *Histogram) write(w io.Writer, name string) error {
	cum := int64(0)
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(h.bounds[i]), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type metric interface {
	metricType() string
	metricHelp() string
	write(w io.Writer, name string) error
}

// Registry is a named collection of metric instruments. Instrument lookups
// are get-or-create: registering the same name twice returns the existing
// instrument, so independent call sites can share one series. Names must
// match the Prometheus metric-name grammar.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name string, make func() metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := make()
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricType()))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricType()))
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (sorted copies are taken; must be non-empty and
// strictly increasing).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, func() metric {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		for i := 1; i < len(bounds); i++ {
			if bounds[i] == bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q has duplicate bucket %v", name, bounds[i]))
			}
		}
		return &Histogram{help: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricType()))
	}
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	snapshot := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		snapshot[name] = m
	}
	r.mu.RUnlock()

	sort.Strings(names)
	for _, name := range names {
		m := snapshot[name]
		if help := m.metricHelp(); help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.metricType()); err != nil {
			return err
		}
		if err := m.write(w, name); err != nil {
			return err
		}
	}
	return nil
}
