package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotTypedValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "a counter").Add(7)
	r.Gauge("aa_level", "a gauge").Set(-1.5)
	h := r.Histogram("mm_us", "a histogram", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(100) // overflow

	s := r.Snapshot()
	if len(s.Metrics) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(s.Metrics))
	}
	// Sorted by name.
	for i, want := range []string{"aa_level", "mm_us", "zz_total"} {
		if s.Metrics[i].Name != want {
			t.Errorf("metric[%d] = %q, want %q", i, s.Metrics[i].Name, want)
		}
	}
	if got := s.CounterValue("zz_total"); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := s.GaugeValue("aa_level"); got != -1.5 {
		t.Errorf("gauge = %v, want -1.5", got)
	}
	hv, ok := s.HistogramValue("mm_us")
	if !ok {
		t.Fatal("histogram missing")
	}
	if hv.Count != 4 || hv.Sum != 110.5 {
		t.Errorf("histogram count/sum = %d/%v, want 4/110.5", hv.Count, hv.Sum)
	}
	wantBuckets := []HistogramBucket{{UpperBound: 1, CumCount: 1}, {UpperBound: 10, CumCount: 3}}
	if len(hv.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %v, want %v", hv.Buckets, wantBuckets)
	}
	for i, b := range wantBuckets {
		if hv.Buckets[i] != b {
			t.Errorf("bucket[%d] = %v, want %v", i, hv.Buckets[i], b)
		}
	}
	if got := hv.BucketCounts(); got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("BucketCounts = %v, want [1 2 1]", got)
	}
	// Wrong-kind and absent lookups are forgiving zeros.
	if s.CounterValue("aa_level") != 0 || s.GaugeValue("zz_total") != 0 {
		t.Error("cross-kind accessors should return zero")
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get on absent name reported ok")
	}
	if _, ok := s.HistogramValue("zz_total"); ok {
		t.Error("HistogramValue on a counter reported ok")
	}
}

// TestSnapshotJSONRoundTrip pins the /snapshot wire format: histograms
// survive encoding (no +Inf bound is ever materialized) and decode back to
// identical values.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	h := r.Histogram("h_us", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(99) // lands in the non-materialized overflow bucket

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot did not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot did not unmarshal: %v", err)
	}
	hv, ok := back.HistogramValue("h_us")
	if !ok {
		t.Fatal("histogram lost in round trip")
	}
	for _, b := range hv.Buckets {
		if math.IsInf(b.UpperBound, 0) {
			t.Fatalf("materialized +Inf bound survived JSON: %v", hv.Buckets)
		}
	}
	if counts := hv.BucketCounts(); counts[len(counts)-1] != 1 {
		t.Errorf("overflow count = %v, want trailing 1", counts)
	}
	if back.CounterValue("c_total") != 2 {
		t.Errorf("counter lost in round trip")
	}
}

func TestMetricValueQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_us", "", []float64{10, 20, 40})
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in the first bucket
	}
	hv, _ := r.Snapshot().HistogramValue("q_us")
	if q, ok := hv.Quantile(0.5); !ok || q != 5 {
		t.Errorf("p50 = %v (ok=%v), want 5 by interpolation", q, ok)
	}
	if q, ok := hv.Quantile(1); !ok || q != 10 {
		t.Errorf("p100 = %v (ok=%v), want 10 (bucket bound)", q, ok)
	}

	h2 := r.Histogram("q2_us", "", []float64{10, 20})
	h2.Observe(5)
	h2.Observe(15)
	h2.Observe(999) // overflow
	hv2, _ := r.Snapshot().HistogramValue("q2_us")
	if q, ok := hv2.Quantile(0.99); !ok || q != 20 {
		t.Errorf("p99 = %v (ok=%v), want clamp to last bound 20", q, ok)
	}

	// Degenerate inputs refuse rather than guess.
	if _, ok := (MetricValue{Kind: KindCounter}).Quantile(0.5); ok {
		t.Error("quantile on a counter reported ok")
	}
	if _, ok := hv.Quantile(-0.1); ok {
		t.Error("quantile below 0 reported ok")
	}
	empty, _ := r.Snapshot().HistogramValue("q3_us")
	if _, ok := empty.Quantile(0.5); ok {
		t.Error("quantile on empty histogram reported ok")
	}
}

// TestSnapshotDuringObserve races Snapshot against live writers; under
// -race this is the proof the lock-light read path is sound, and the final
// quiesced snapshot must agree exactly with the instruments.
func TestSnapshotDuringObserve(t *testing.T) {
	const workers, perWorker = 4, 2000
	r := NewRegistry()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("race_total", "")
			h := r.Histogram("race_us", "", []float64{1, 10, 100})
			g := r.Gauge("race_level", "")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				g.SetInt(i)
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for !stop.Load() {
			s := r.Snapshot()
			if hv, ok := s.HistogramValue("race_us"); ok {
				// Mid-flight snapshots must still be internally sane: the
				// cumulative tail can never exceed the reported count.
				if n := len(hv.Buckets); n > 0 && hv.Buckets[n-1].CumCount > hv.Count {
					t.Errorf("cum %d > count %d", hv.Buckets[n-1].CumCount, hv.Count)
					return
				}
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	readers.Wait()

	s := r.Snapshot()
	if got := s.CounterValue("race_total"); got != workers*perWorker {
		t.Errorf("final counter = %d, want %d", got, workers*perWorker)
	}
	hv, _ := s.HistogramValue("race_us")
	if hv.Count != workers*perWorker {
		t.Errorf("final histogram count = %d, want %d", hv.Count, workers*perWorker)
	}
}

// fleetShapedRegistry builds a registry with the series a real fleet of
// the given shard count registers, for snapshot/rollup benchmarks.
func fleetShapedRegistry(shards int) *Registry {
	r := NewRegistry()
	r.Gauge(MetricFleetStreams, "").SetInt(250 * shards)
	r.Gauge(MetricFleetShards, "").SetInt(shards)
	r.Counter(MetricFleetSteps, "").Add(1e6)
	r.Counter(MetricFleetBatches, "").Add(5000)
	r.Counter(MetricFleetAlarms, "").Add(12)
	r.Gauge(MetricFleetQueueDepth, "").SetInt(3)
	hp := r.Histogram(MetricFleetDeadlinePressure, "", DeadlinePressureBuckets)
	for i := 0; i < 100; i++ {
		hp.Observe(float64(i) / 100)
	}
	for sh := 0; sh < shards; sh++ {
		r.Gauge(FleetShardMetric(MetricFleetShardStreams, sh), "").SetInt(250)
		r.Counter(FleetShardMetric(MetricFleetShardSteps, sh), "").Add(1e6 / int64(shards))
		r.Counter(FleetShardMetric(MetricFleetShardAlarms, sh), "").Add(3)
		hb := r.Histogram(FleetShardBatchMetric(sh), "", FleetBatchLatencyBuckets)
		for i := 0; i < 50; i++ {
			hb.Observe(float64(10 * i))
		}
	}
	return r
}

// BenchmarkRegistrySnapshot proves the snapshot cost scales with registered
// series — O(shards) for a fleet — independent of stream count or
// observation volume.
func BenchmarkRegistrySnapshot(b *testing.B) {
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := fleetShapedRegistry(shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := r.Snapshot()
				if len(s.Metrics) == 0 {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
}

// BenchmarkFleetRollup measures folding a snapshot into the per-shard
// rollup awdtop renders each frame.
func BenchmarkFleetRollup(b *testing.B) {
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := fleetShapedRegistry(shards).Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, ok := FleetRollupFromSnapshot(s)
				if !ok || len(r.PerShard) != shards {
					b.Fatal("rollup failed")
				}
			}
		})
	}
}
