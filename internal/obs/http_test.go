package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMuxServesMetricsExpvarAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "demo").Add(7)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "demo_total 7") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code=%d body missing memstats", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline: code=%d empty=%v", code, body == "")
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code=%d body=%q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: code=%d, want 404", code)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapDisabled(t *testing.T) {
	o, addr, shutdown, err := Bootstrap("", "")
	if err != nil {
		t.Fatal(err)
	}
	if o.Enabled() || addr != "" {
		t.Fatalf("disabled bootstrap: observer=%v addr=%q", o.Enabled(), addr)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapMetricsAndTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	o, addr, shutdown, err := Bootstrap("127.0.0.1:0", tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Enabled() || addr == "" {
		t.Fatal("bootstrap did not enable observability")
	}
	o.ObserveStep(StepEvent{Step: 0, Window: 1, Deadline: 2, LoggerLen: 1})

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), MetricSteps+" 1") {
		t.Errorf("/metrics missing step counter:\n%s", body)
	}

	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"step":0`) {
		t.Errorf("trace file missing event: %q", data)
	}
	// Endpoint is down after shutdown.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("metrics endpoint still serving after shutdown")
	}
}
