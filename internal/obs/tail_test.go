package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestStepEventStreamID(t *testing.T) {
	ev := StepEvent{Step: 3, StreamID: "stream-0007", Window: 5, Deadline: 5, LoggerLen: 9}
	if got := ev.String(); !strings.HasPrefix(got, "stream-0007  step") {
		t.Errorf("String() = %q, want stream-id prefix", got)
	}
	ev.StreamID = ""
	if got := ev.String(); strings.Contains(got, "stream-0007") {
		t.Errorf("String() without id still carries it: %q", got)
	}

	// JSONL: the stream field appears when set and stays out otherwise.
	var sb strings.Builder
	s := NewJSONLSink(&sb)
	s.Emit(StepEvent{Step: 1, StreamID: "s-1", Window: 2, Deadline: 2, LoggerLen: 2})
	s.Emit(StepEvent{Step: 2, Window: 2, Deadline: 2, LoggerLen: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.Contains(lines[0], `"stream":"s-1"`) {
		t.Errorf("line 1 missing stream field: %s", lines[0])
	}
	if strings.Contains(lines[1], `"stream"`) {
		t.Errorf("line 2 carries empty stream field: %s", lines[1])
	}
}

func TestStreamTailFiltersAndRetargets(t *testing.T) {
	tail := NewStreamTail(4, "a")
	for i := 0; i < 3; i++ {
		tail.Emit(StepEvent{Step: i, StreamID: "a"})
		tail.Emit(StepEvent{Step: i, StreamID: "b"})
		tail.Emit(StepEvent{Step: i}) // unattributed
	}
	evs := tail.Events()
	if len(evs) != 3 {
		t.Fatalf("tail retained %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.StreamID != "a" {
			t.Errorf("foreign event leaked into tail: %+v", ev)
		}
	}
	if tail.Target() != "a" {
		t.Errorf("target = %q, want a", tail.Target())
	}

	// Retargeting drops the previous stream's events so trajectories never mix.
	tail.Retarget("b")
	if got := len(tail.Events()); got != 0 {
		t.Fatalf("retarget kept %d stale events", got)
	}
	tail.Emit(StepEvent{Step: 9, StreamID: "b"})
	tail.Emit(StepEvent{Step: 9, StreamID: "a"})
	if evs := tail.Events(); len(evs) != 1 || evs[0].StreamID != "b" {
		t.Errorf("post-retarget tail = %+v, want one b event", evs)
	}

	// Retarget to the same id is a no-op and keeps the ring.
	tail.Retarget("b")
	if got := len(tail.Events()); got != 1 {
		t.Errorf("same-id retarget dropped events: %d", got)
	}

	// An untargeted tail discards everything.
	idle := NewStreamTail(4, "")
	idle.Emit(StepEvent{Step: 1, StreamID: "a"})
	if got := len(idle.Events()); got != 0 {
		t.Errorf("untargeted tail retained %d events", got)
	}
}

// TestStreamTailConcurrent hammers Emit/Retarget/Events together; run
// under -race it checks the lock discipline, and the invariant that a read
// never surfaces another stream's event.
func TestStreamTailConcurrent(t *testing.T) {
	tail := NewStreamTail(16, "s-0")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := "s-" + string(rune('0'+w))
			for i := 0; i < 2000; i++ {
				tail.Emit(StepEvent{Step: i, StreamID: id})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tail.Retarget("s-" + string(rune('0'+i%4)))
			target := tail.Target()
			for _, ev := range tail.Events() {
				// Events may predate a concurrent retarget, but they must all
				// belong to ONE stream — the ring is swapped atomically.
				_ = target
				if ev.StreamID == "" {
					t.Error("unattributed event in tail")
					return
				}
			}
		}
	}()
	wg.Wait()
}

func TestTeeSinkFansOut(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	tee := TeeSink(a, b)
	tee.Emit(StepEvent{Step: 1})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Error("tee did not reach both sinks")
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("snap_total", "").Add(4)
	rec := httptest.NewRecorder()
	SnapshotHandler(reg).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/snapshot", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("body not a snapshot: %v", err)
	}
	if s.CounterValue("snap_total") != 4 {
		t.Errorf("snapshot over HTTP lost the counter: %+v", s)
	}
}

func TestStreamTailHandler(t *testing.T) {
	tail := NewStreamTail(8, "s-1")
	tail.Emit(StepEvent{Step: 1, StreamID: "s-1", Window: 3, Deadline: 3})

	get := func(target string) StreamTailResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		StreamTailHandler(tail).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		var r StreamTailResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
			t.Fatalf("body not a tail response: %v", err)
		}
		return r
	}

	r := get("/stream")
	if r.Stream != "s-1" || len(r.Events) != 1 || r.Events[0].StreamID != "s-1" {
		t.Errorf("tail response = %+v", r)
	}

	// ?id= retargets; the response reflects the new (empty) tail.
	r = get("/stream?id=s-2")
	if r.Stream != "s-2" || len(r.Events) != 0 {
		t.Errorf("retarget response = %+v", r)
	}
	if tail.Target() != "s-2" {
		t.Errorf("handler did not retarget the tail: %q", tail.Target())
	}
}
