package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// StepEvent is the structured trace record of one detection step — the
// run-time signals the paper's evaluation plots offline (window size,
// deadline, residual level, alarms) plus the operational context needed to
// monitor a deployed detector (reachability latency, logger occupancy).
type StepEvent struct {
	Step int `json:"step"`
	// StreamID attributes the event to one detection stream in a fleet;
	// empty for standalone detectors (core.System.SetStreamID stamps it).
	StreamID string `json:"stream,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// Window is the detection window size used this step; Deadline the
	// reachability deadline t_d that sized it (adaptive only).
	Window   int `json:"window"`
	Deadline int `json:"deadline"`
	// Alarm / Complementary mirror the step's Decision; Dims attributes a
	// firing check to the suspect residual dimensions.
	Alarm             bool  `json:"alarm"`
	Complementary     bool  `json:"complementary,omitempty"`
	ComplementaryStep int   `json:"complementary_step,omitempty"`
	Dims              []int `json:"dims,omitempty"`
	// ResidualAvg is the per-dimension windowed average residual the window
	// rule compared against τ (nil when the logger could not serve the
	// window).
	ResidualAvg []float64 `json:"residual_avg,omitempty"`
	// ReachTimed reports whether this step ran the reachability deadline
	// search; ReachMicros is its wall-clock cost in microseconds.
	ReachTimed  bool    `json:"reach_timed,omitempty"`
	ReachMicros float64 `json:"reach_us,omitempty"`
	// Logger occupancy and lifetime totals of the Data Logger's sliding
	// window protocol.
	LoggerLen      int `json:"logger_len"`
	LoggerObserved int `json:"logger_observed,omitempty"`
	LoggerReleased int `json:"logger_released,omitempty"`
}

// String renders the event with the shared one-line decision format plus
// the telemetry tail.
func (ev StepEvent) String() string {
	s := FormatDecision(ev.Step, ev.Window, ev.Deadline, ev.Alarm, ev.Complementary, ev.ComplementaryStep, ev.Dims)
	if ev.StreamID != "" {
		s = ev.StreamID + "  " + s
	}
	if ev.ReachTimed {
		s += fmt.Sprintf("  reach=%.1fµs", ev.ReachMicros)
	}
	return s + fmt.Sprintf("  log=%d", ev.LoggerLen)
}

// FormatDecision is the one compact decision formatter shared by
// awd.Decision, core.Decision, StepEvent, and the CLI tools, so a decision
// reads the same everywhere:
//
//	step  142  w=12 d=12  ALARM dims=[0 2]
//	step  143  w=10 d=10  comp@138 dims=[1]
//	step  144  w=10 d=10  ok
//
// Pass deadline < 0 for detectors without a deadline estimator (the d=
// field is omitted) and complementaryStep -1 when no complementary pass
// fired.
func FormatDecision(step, window, deadline int, alarm, complementary bool, complementaryStep int, dims []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %4d  w=%d", step, window)
	if deadline >= 0 {
		fmt.Fprintf(&b, " d=%d", deadline)
	}
	comp := "comp"
	if complementaryStep >= 0 {
		comp = fmt.Sprintf("comp@%d", complementaryStep)
	}
	switch {
	case alarm && complementary:
		fmt.Fprintf(&b, "  ALARM+%s", comp)
	case alarm:
		b.WriteString("  ALARM")
	case complementary:
		fmt.Fprintf(&b, "  %s", comp)
	default:
		b.WriteString("  ok")
	}
	if len(dims) > 0 {
		fmt.Fprintf(&b, " dims=%v", dims)
	}
	return b.String()
}

// Sink receives the trace event stream. Implementations must be safe for
// concurrent Emit calls: parallel Monte-Carlo campaigns share one sink.
// The event's slice fields (ResidualAvg, Dims) are only valid for the
// duration of Emit — the emitter reuses scratch buffers to keep the hot
// path allocation-free — so a sink that retains events must copy them
// (RingSink does).
type Sink interface {
	Emit(ev StepEvent)
	Close() error
}

// NopSink discards every event. It is the enabled-but-not-tracing default
// and the sink the allocation contract is benchmarked against.
type NopSink struct{}

// Emit discards the event.
func (NopSink) Emit(StepEvent) {}

// Close is a no-op.
func (NopSink) Close() error { return nil }

// RingSink keeps the most recent events in a fixed-capacity ring buffer —
// a flight recorder for post-mortem inspection without unbounded growth.
type RingSink struct {
	mu      sync.Mutex
	buf     []StepEvent
	next    int
	full    bool
	dropped int64
}

// NewRingSink returns a ring sink holding the latest capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		panic(fmt.Sprintf("obs: ring sink capacity %d must be >= 1", capacity))
	}
	return &RingSink{buf: make([]StepEvent, capacity)}
}

// Emit records the event, overwriting the oldest once full. The slice
// fields are copied so retained events stay valid after Emit returns.
func (s *RingSink) Emit(ev StepEvent) {
	ev.ResidualAvg = append([]float64(nil), ev.ResidualAvg...)
	ev.Dims = append([]int(nil), ev.Dims...)
	s.mu.Lock()
	if s.full {
		s.dropped++
	}
	s.buf[s.next] = ev
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []StepEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]StepEvent(nil), s.buf[:s.next]...)
	}
	out := make([]StepEvent, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Dropped counts events overwritten before they were ever read.
func (s *RingSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close is a no-op; the buffer stays readable.
func (s *RingSink) Close() error { return nil }

// StreamTail is the single-stream drill-down sink: it forwards only the
// events of one target stream (matched on StepEvent.StreamID) into an
// internal ring, so an operator can tail one stream's residual / window /
// deadline trajectory out of a fleet emitting millions of events. The
// target is retargetable at runtime — retargeting clears the ring so the
// tail never mixes two streams' trajectories. Emit on a non-matching event
// is one mutex acquire and a string compare; matching events are copied by
// the underlying RingSink. Safe for concurrent use.
type StreamTail struct {
	mu   sync.Mutex
	id   string
	cap  int
	ring *RingSink
}

// NewStreamTail returns a tail retaining the latest capacity events of the
// target stream. An empty initial id means "no target yet" (every event is
// discarded until Retarget).
func NewStreamTail(capacity int, id string) *StreamTail {
	return &StreamTail{id: id, cap: capacity, ring: NewRingSink(capacity)}
}

// Emit forwards the event iff it carries the tail's target stream id.
func (t *StreamTail) Emit(ev StepEvent) {
	t.mu.Lock()
	if t.id == "" || ev.StreamID != t.id {
		t.mu.Unlock()
		return
	}
	ring := t.ring
	t.mu.Unlock()
	// The ring has its own lock; emitting outside ours keeps a slow reader
	// from backing up every non-matching stream in the fleet.
	ring.Emit(ev)
}

// Retarget switches the tail to a new stream id, dropping the previous
// stream's retained events. A no-op when id already is the target.
func (t *StreamTail) Retarget(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == t.id {
		return
	}
	t.id = id
	t.ring = NewRingSink(t.cap)
}

// Target returns the current target stream id ("" when untargeted).
func (t *StreamTail) Target() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Events returns the retained events of the current target, oldest first.
func (t *StreamTail) Events() []StepEvent {
	t.mu.Lock()
	ring := t.ring
	t.mu.Unlock()
	return ring.Events()
}

// Close is a no-op; the tail stays readable.
func (t *StreamTail) Close() error { return nil }

// TeeSink fans every event out to all sinks in order; Close closes each
// and returns the first error. Use it to combine a drill-down tail with a
// JSONL trace writer on one observer.
func TeeSink(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Emit(ev StepEvent) {
	for _, s := range t {
		s.Emit(ev)
	}
}

func (t teeSink) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// JSONLSink streams every event as one JSON object per line — the
// machine-readable trace format the -trace-out CLI flag writes.
type JSONLSink struct {
	mu      sync.Mutex
	enc     *json.Encoder
	closer  io.Closer
	lastErr error
}

// NewJSONLSink wraps a writer. If w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// Emit encodes the event; the first encode error is retained and returned
// by Close (trace emission must never abort a control loop).
func (s *JSONLSink) Emit(ev StepEvent) {
	s.mu.Lock()
	if err := s.enc.Encode(ev); err != nil && s.lastErr == nil {
		s.lastErr = err
	}
	s.mu.Unlock()
}

// Close releases the underlying writer and reports any emission error.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.lastErr == nil {
			s.lastErr = err
		}
		s.closer = nil
	}
	return s.lastErr
}
