// Package geom provides the convex-set vocabulary of the paper's
// reachability analysis (Sec. 3.2): boxes (products of intervals, Def. 3.3),
// Euclidean balls (Def. 3.2), and their support functions. Safe/unsafe state
// sets (Table 1) are boxes that may be unbounded (±Inf) in some dimensions.
package geom

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Interval is a closed interval [Lo, Hi]. Lo may be -Inf and Hi +Inf.
type Interval struct {
	Lo, Hi float64
}

// NewInterval returns [lo, hi], panicking if lo > hi or either bound is NaN.
func NewInterval(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic("geom: NaN interval bound")
	}
	if lo > hi {
		panic(fmt.Sprintf("geom: inverted interval [%v, %v]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Whole returns the unbounded interval (-Inf, +Inf).
func Whole() Interval { return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Intersects reports whether two intervals overlap.
func (iv Interval) Intersects(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// Width returns Hi - Lo (possibly +Inf).
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Center returns the midpoint; it is NaN for intervals unbounded on both
// sides and ±Inf for half-bounded intervals.
func (iv Interval) Center() float64 { return (iv.Lo + iv.Hi) / 2 }

// Bounded reports whether both endpoints are finite.
func (iv Interval) Bounded() bool {
	return !math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0)
}

// Box is an axis-aligned box: the product of per-dimension intervals
// (Definition 3.3). Dimensions may be unbounded.
type Box struct {
	ivs []Interval
}

// NewBox builds a box from per-dimension intervals.
func NewBox(ivs ...Interval) Box {
	if len(ivs) == 0 {
		panic("geom: empty box")
	}
	cp := make([]Interval, len(ivs))
	copy(cp, ivs)
	return Box{ivs: cp}
}

// BoxFromBounds builds a box from parallel lower/upper bound slices.
func BoxFromBounds(lo, hi []float64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: bound length mismatch %d vs %d", len(lo), len(hi)))
	}
	ivs := make([]Interval, len(lo))
	for i := range lo {
		ivs[i] = NewInterval(lo[i], hi[i])
	}
	return Box{ivs: ivs}
}

// UniformBox returns an n-dimensional box with every dimension [lo, hi].
func UniformBox(n int, lo, hi float64) Box {
	ivs := make([]Interval, n)
	for i := range ivs {
		ivs[i] = NewInterval(lo, hi)
	}
	return Box{ivs: ivs}
}

// CenteredBox returns the box center ± radius in each dimension.
func CenteredBox(center mat.Vec, radius mat.Vec) Box {
	if len(center) != len(radius) {
		panic("geom: center/radius length mismatch")
	}
	ivs := make([]Interval, len(center))
	for i := range ivs {
		if radius[i] < 0 {
			panic(fmt.Sprintf("geom: negative radius %v in dimension %d", radius[i], i))
		}
		ivs[i] = NewInterval(center[i]-radius[i], center[i]+radius[i])
	}
	return Box{ivs: ivs}
}

// Dim returns the dimension of the box.
func (b Box) Dim() int { return len(b.ivs) }

// Interval returns the i-th dimension's interval.
func (b Box) Interval(i int) Interval { return b.ivs[i] }

// Lo returns the vector of lower bounds.
func (b Box) Lo() mat.Vec {
	v := make(mat.Vec, len(b.ivs))
	for i, iv := range b.ivs {
		v[i] = iv.Lo
	}
	return v
}

// Hi returns the vector of upper bounds.
func (b Box) Hi() mat.Vec {
	v := make(mat.Vec, len(b.ivs))
	for i, iv := range b.ivs {
		v[i] = iv.Hi
	}
	return v
}

// Center returns the center vector (see Interval.Center for unbounded dims).
func (b Box) Center() mat.Vec {
	v := make(mat.Vec, len(b.ivs))
	for i, iv := range b.ivs {
		v[i] = iv.Center()
	}
	return v
}

// HalfWidths returns the per-dimension scaling factors γ_i = (hi-lo)/2 that
// map the unit infinity-norm ball onto the centered box (Sec. 3.2.2).
func (b Box) HalfWidths() mat.Vec {
	v := make(mat.Vec, len(b.ivs))
	for i, iv := range b.ivs {
		v[i] = iv.Width() / 2
	}
	return v
}

// Contains reports whether x lies inside the box.
func (b Box) Contains(x mat.Vec) bool {
	if len(x) != len(b.ivs) {
		panic(fmt.Sprintf("geom: Contains dimension mismatch %d vs %d", len(x), len(b.ivs)))
	}
	for i, iv := range b.ivs {
		if !iv.Contains(x[i]) {
			return false
		}
	}
	return true
}

// Intersects reports whether two boxes overlap. Both must share dimension.
func (b Box) Intersects(o Box) bool {
	if b.Dim() != o.Dim() {
		panic(fmt.Sprintf("geom: Intersects dimension mismatch %d vs %d", b.Dim(), o.Dim()))
	}
	for i := range b.ivs {
		if !b.ivs[i].Intersects(o.ivs[i]) {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	if b.Dim() != o.Dim() {
		panic(fmt.Sprintf("geom: ContainsBox dimension mismatch %d vs %d", b.Dim(), o.Dim()))
	}
	for i := range b.ivs {
		if o.ivs[i].Lo < b.ivs[i].Lo || o.ivs[i].Hi > b.ivs[i].Hi {
			return false
		}
	}
	return true
}

// ContainsBounds reports whether the box with the given lower/upper bounds
// lies entirely inside b — ContainsBox without materializing a Box, for the
// allocation-free deadline search. The semantics (and comparison directions)
// match ContainsBox exactly.
func (b Box) ContainsBounds(lo, hi []float64) bool {
	if len(lo) != len(b.ivs) || len(hi) != len(b.ivs) {
		panic(fmt.Sprintf("geom: ContainsBounds dimension mismatch %d/%d vs %d", len(lo), len(hi), len(b.ivs)))
	}
	for i := range b.ivs {
		if lo[i] < b.ivs[i].Lo || hi[i] > b.ivs[i].Hi {
			return false
		}
	}
	return true
}

// Bounded reports whether every dimension is bounded.
func (b Box) Bounded() bool {
	for _, iv := range b.ivs {
		if !iv.Bounded() {
			return false
		}
	}
	return true
}

// Inflate returns the box grown by r in every dimension (Minkowski sum with
// an infinity-norm ball of radius r).
func (b Box) Inflate(r float64) Box {
	if r < 0 {
		panic("geom: negative inflation radius")
	}
	ivs := make([]Interval, len(b.ivs))
	for i, iv := range b.ivs {
		ivs[i] = Interval{Lo: iv.Lo - r, Hi: iv.Hi + r}
	}
	return Box{ivs: ivs}
}

// String renders the box as a product of intervals.
func (b Box) String() string {
	s := ""
	for i, iv := range b.ivs {
		if i > 0 {
			s += " x "
		}
		s += fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi)
	}
	return s
}
