package geom

import (
	"testing"

	"repro/internal/mat"
)

func BenchmarkBoxSupport12(b *testing.B) {
	box := UniformBox(12, -1, 1)
	l := mat.Constant(12, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = box.Support(l)
	}
}

func BenchmarkZonotopeSupport(b *testing.B) {
	z := ZonotopeFromBox(UniformBox(12, -1, 1))
	for i := 0; i < 4; i++ {
		z = z.MinkowskiSum(ZonotopeFromBox(UniformBox(12, -0.1, 0.1)))
	}
	l := mat.Constant(12, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Support(l)
	}
}

func BenchmarkZonotopeReduce(b *testing.B) {
	z := ZonotopeFromBox(UniformBox(12, -1, 1))
	for i := 0; i < 9; i++ {
		z = z.MinkowskiSum(ZonotopeFromBox(UniformBox(12, -0.1, 0.1)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Reduce(24)
	}
}
