package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(-1, 3)
	if !iv.Contains(0) || !iv.Contains(-1) || !iv.Contains(3) {
		t.Error("Contains endpoints/interior failed")
	}
	if iv.Contains(3.0001) || iv.Contains(-1.0001) {
		t.Error("Contains outside failed")
	}
	if iv.Width() != 4 || iv.Center() != 1 {
		t.Errorf("Width/Center = %v/%v", iv.Width(), iv.Center())
	}
	if !iv.Bounded() {
		t.Error("Bounded = false")
	}
}

func TestIntervalInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInterval(1, 0)
}

func TestIntervalNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInterval(math.NaN(), 1)
}

func TestWholeInterval(t *testing.T) {
	w := Whole()
	if !w.Contains(1e300) || !w.Contains(-1e300) {
		t.Error("Whole should contain everything")
	}
	if w.Bounded() {
		t.Error("Whole should be unbounded")
	}
}

func TestIntervalIntersects(t *testing.T) {
	a := NewInterval(0, 2)
	cases := []struct {
		b    Interval
		want bool
	}{
		{NewInterval(1, 3), true},
		{NewInterval(2, 3), true},  // touching
		{NewInterval(-1, 0), true}, // touching
		{NewInterval(2.1, 3), false},
		{NewInterval(-3, -0.1), false},
		{Whole(), true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("[0,2] intersects %v = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestBoxContains(t *testing.T) {
	b := BoxFromBounds([]float64{-1, -2}, []float64{1, 2})
	if !b.Contains(mat.VecOf(0, 0)) || !b.Contains(mat.VecOf(1, -2)) {
		t.Error("Contains failed for inside points")
	}
	if b.Contains(mat.VecOf(1.1, 0)) {
		t.Error("Contains failed for outside point")
	}
}

func TestBoxUnboundedDimensions(t *testing.T) {
	// Table 1 style: z ∈ [[-inf,-inf,-2.5],[inf,inf,2.5]]
	b := BoxFromBounds(
		[]float64{math.Inf(-1), math.Inf(-1), -2.5},
		[]float64{math.Inf(1), math.Inf(1), 2.5},
	)
	if !b.Contains(mat.VecOf(1e9, -1e9, 0)) {
		t.Error("unbounded dims should contain anything")
	}
	if b.Contains(mat.VecOf(0, 0, 2.6)) {
		t.Error("bounded dim should still constrain")
	}
	if b.Bounded() {
		t.Error("Bounded should be false")
	}
}

func TestBoxIntersects(t *testing.T) {
	a := UniformBox(2, 0, 1)
	if !a.Intersects(UniformBox(2, 0.5, 2)) {
		t.Error("overlapping boxes should intersect")
	}
	if !a.Intersects(UniformBox(2, 1, 2)) {
		t.Error("touching boxes should intersect")
	}
	// Disjoint in just one dimension is enough to not intersect.
	b := BoxFromBounds([]float64{0.2, 5}, []float64{0.8, 6})
	if a.Intersects(b) {
		t.Error("boxes disjoint in dim 1 should not intersect")
	}
}

func TestBoxContainsBox(t *testing.T) {
	outer := UniformBox(2, -2, 2)
	if !outer.ContainsBox(UniformBox(2, -1, 1)) {
		t.Error("ContainsBox inner failed")
	}
	if outer.ContainsBox(UniformBox(2, -3, 0)) {
		t.Error("ContainsBox overflow failed")
	}
}

func TestCenteredBox(t *testing.T) {
	b := CenteredBox(mat.VecOf(1, 2), mat.VecOf(0.5, 1))
	if b.Interval(0).Lo != 0.5 || b.Interval(0).Hi != 1.5 {
		t.Errorf("dim0 = %v", b.Interval(0))
	}
	if b.Interval(1).Lo != 1 || b.Interval(1).Hi != 3 {
		t.Errorf("dim1 = %v", b.Interval(1))
	}
}

func TestCenteredBoxNegativeRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CenteredBox(mat.VecOf(0), mat.VecOf(-1))
}

func TestBoxCenterHalfWidths(t *testing.T) {
	// Sec 3.2.2: c_i = (u+l)/2, γ_i = (u-l)/2.
	b := BoxFromBounds([]float64{-3, 1}, []float64{3, 5})
	if !b.Center().Equal(mat.VecOf(0, 3), 0) {
		t.Errorf("Center = %v", b.Center())
	}
	if !b.HalfWidths().Equal(mat.VecOf(3, 2), 0) {
		t.Errorf("HalfWidths = %v", b.HalfWidths())
	}
}

func TestBoxInflate(t *testing.T) {
	b := UniformBox(2, -1, 1).Inflate(0.5)
	if b.Interval(0).Lo != -1.5 || b.Interval(0).Hi != 1.5 {
		t.Errorf("Inflate = %v", b)
	}
}

func TestBoxLoHi(t *testing.T) {
	b := BoxFromBounds([]float64{-1, -2}, []float64{3, 4})
	if !b.Lo().Equal(mat.VecOf(-1, -2), 0) || !b.Hi().Equal(mat.VecOf(3, 4), 0) {
		t.Errorf("Lo/Hi = %v/%v", b.Lo(), b.Hi())
	}
}

func TestEmptyBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBox()
}

// Property: box intersection is symmetric.
func TestBoxIntersectsSymmetricProperty(t *testing.T) {
	f := func(alo, ahi, blo, bhi [3]float64) bool {
		a := make([]Interval, 3)
		b := make([]Interval, 3)
		for i := 0; i < 3; i++ {
			a[i] = Interval{Lo: math.Min(alo[i], ahi[i]), Hi: math.Max(alo[i], ahi[i])}
			b[i] = Interval{Lo: math.Min(blo[i], bhi[i]), Hi: math.Max(blo[i], bhi[i])}
		}
		ba, bb := NewBox(a...), NewBox(b...)
		return ba.Intersects(bb) == bb.Intersects(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a box contains its own center and corners (bounded boxes).
func TestBoxContainsOwnGeometryProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		lo := mat.VecOf(r.NormFloat64(), r.NormFloat64())
		hi := lo.Add(mat.VecOf(r.Float64(), r.Float64()))
		b := BoxFromBounds(lo, hi)
		if !b.Contains(b.Center()) || !b.Contains(b.Lo()) || !b.Contains(b.Hi()) {
			t.Fatalf("trial %d: box does not contain own geometry", trial)
		}
	}
}
