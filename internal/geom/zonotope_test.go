package geom

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestZonotopePointSupport(t *testing.T) {
	z := NewZonotope(mat.VecOf(2, -1))
	if z.Order() != 0 || z.Dim() != 2 {
		t.Fatalf("order/dim = %d/%d", z.Order(), z.Dim())
	}
	if got := z.Support(mat.VecOf(1, 1)); got != 1 {
		t.Errorf("point support = %v, want 1", got)
	}
}

func TestZonotopeFromBoxSupportMatchesBox(t *testing.T) {
	b := BoxFromBounds([]float64{-1, 2}, []float64{3, 4})
	z := ZonotopeFromBox(b)
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		l := mat.VecOf(r.NormFloat64(), r.NormFloat64())
		if math.Abs(z.Support(l)-b.Support(l)) > 1e-12 {
			t.Fatalf("support mismatch along %v: %v vs %v", l, z.Support(l), b.Support(l))
		}
	}
}

func TestZonotopeFromBoxSkipsDegenerateDims(t *testing.T) {
	b := BoxFromBounds([]float64{1, -2}, []float64{1, 2}) // dim 0 is a point
	z := ZonotopeFromBox(b)
	if z.Order() != 1 {
		t.Errorf("order = %d, want 1", z.Order())
	}
}

func TestZonotopeFromUnboundedBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ZonotopeFromBox(NewBox(Whole()))
}

func TestZonotopeLinearMapExact(t *testing.T) {
	// Rotation by 45° of the unit box: support along x becomes √2.
	z := ZonotopeFromBox(UniformBox(2, -1, 1))
	th := math.Pi / 4
	rot := mat.FromRows([][]float64{
		{math.Cos(th), -math.Sin(th)},
		{math.Sin(th), math.Cos(th)},
	})
	m := z.LinearMap(rot)
	if got := m.Support(mat.VecOf(1, 0)); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("rotated support = %v, want √2", got)
	}
}

func TestZonotopeMinkowskiSumSupportAdds(t *testing.T) {
	a := ZonotopeFromBox(UniformBox(2, -1, 1))
	b := ZonotopeFromBox(UniformBox(2, -0.5, 0.5))
	s := a.MinkowskiSum(b)
	l := mat.VecOf(0.3, -0.7)
	if math.Abs(s.Support(l)-(a.Support(l)+b.Support(l))) > 1e-12 {
		t.Error("Minkowski sum support must add")
	}
	if s.Order() != a.Order()+b.Order() {
		t.Errorf("order = %d", s.Order())
	}
}

func TestZonotopeMinkowskiDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZonotope(mat.VecOf(0)).MinkowskiSum(NewZonotope(mat.VecOf(0, 0)))
}

func TestZonotopeTranslate(t *testing.T) {
	z := ZonotopeFromBox(UniformBox(1, -1, 1)).Translate(mat.VecOf(5))
	if got := z.Support(mat.VecOf(1)); got != 6 {
		t.Errorf("translated support = %v, want 6", got)
	}
}

func TestZonotopeBoundingBox(t *testing.T) {
	// Generators (1,1) and (1,−1): bounding box is ±2 × ±2... no: per axis
	// |1|+|1| = 2 in x, |1|+|−1| = 2 in y.
	z := NewZonotope(mat.VecOf(0, 0), mat.VecOf(1, 1), mat.VecOf(1, -1))
	bb := z.BoundingBox()
	if bb.Interval(0).Hi != 2 || bb.Interval(1).Hi != 2 || bb.Interval(0).Lo != -2 {
		t.Errorf("bounding box = %v", bb)
	}
	// The box must dominate the zonotope's support in every direction.
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		l := mat.VecOf(r.NormFloat64(), r.NormFloat64())
		if z.Support(l) > bb.Support(l)+1e-12 {
			t.Fatalf("bounding box fails to dominate along %v", l)
		}
	}
}

func TestZonotopeReduceSoundAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	gens := make([]mat.Vec, 20)
	for i := range gens {
		gens[i] = mat.VecOf(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
	}
	z := NewZonotope(mat.VecOf(1, -2, 0.5), gens...)
	red := z.Reduce(8)
	if red.Order() > 8 {
		t.Fatalf("reduced order = %d, want <= 8", red.Order())
	}
	// Soundness: the reduced zonotope over-approximates the original in
	// every probed direction.
	for trial := 0; trial < 200; trial++ {
		l := mat.VecOf(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		if z.Support(l) > red.Support(l)+1e-9 {
			t.Fatalf("reduction lost mass along %v: %v > %v", l, z.Support(l), red.Support(l))
		}
	}
	// No-op when already small.
	same := red.Reduce(100)
	if same.Order() != red.Order() {
		t.Error("no-op reduction changed the order")
	}
}

func TestZonotopeReduceClampsBelowDimension(t *testing.T) {
	z := NewZonotope(mat.NewVec(3),
		mat.VecOf(1, 0, 0), mat.VecOf(0, 1, 0), mat.VecOf(0, 0, 1), mat.VecOf(1, 1, 1))
	red := z.Reduce(1) // clamped to n = 3
	if red.Order() > 3 {
		t.Errorf("order = %d, want <= 3", red.Order())
	}
}

func TestContainsZonotopeSupport(t *testing.T) {
	inner := ZonotopeFromBox(UniformBox(2, -1, 1))
	outer := ZonotopeFromBox(UniformBox(2, -2, 2))
	if !outer.ContainsZonotopeSupport(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsZonotopeSupport(outer) {
		t.Error("inner should not contain outer")
	}
}

func TestZonotopeCopiesInputs(t *testing.T) {
	c := mat.VecOf(1)
	g := mat.VecOf(2)
	z := NewZonotope(c, g)
	c[0], g[0] = 99, 99
	if z.Center()[0] != 1 || z.Generator(0)[0] != 2 {
		t.Error("zonotope aliased caller slices")
	}
}

func TestZonotopeValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewZonotope(mat.Vec{}) },
		func() { NewZonotope(mat.VecOf(0, 0), mat.VecOf(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
