package geom

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Zonotope is a centrally symmetric convex set
//
//	Z = { c + Σ_i β_i g_i : |β_i| <= 1 }
//
// given by a center and a list of generators — the workhorse set
// representation of the reachability literature the paper builds on
// (Le Guernic [5]). Linear maps and Minkowski sums are exact and cheap,
// which is what makes zonotopes attractive for propagating reachable sets;
// the box representation used by the deadline estimator is the special
// case with axis-aligned generators.
type Zonotope struct {
	center     mat.Vec
	generators []mat.Vec
}

// NewZonotope builds a zonotope from a center and generators (generators
// may be empty: a point). All vectors are copied.
func NewZonotope(center mat.Vec, generators ...mat.Vec) Zonotope {
	n := len(center)
	if n == 0 {
		panic("geom: empty zonotope center")
	}
	gs := make([]mat.Vec, len(generators))
	for i, g := range generators {
		if len(g) != n {
			panic(fmt.Sprintf("geom: generator %d dimension %d, want %d", i, len(g), n))
		}
		gs[i] = g.Clone()
	}
	return Zonotope{center: center.Clone(), generators: gs}
}

// ZonotopeFromBox converts a bounded box into a zonotope with one
// axis-aligned generator per dimension of nonzero width.
func ZonotopeFromBox(b Box) Zonotope {
	if !b.Bounded() {
		panic("geom: cannot build a zonotope from an unbounded box")
	}
	n := b.Dim()
	center := b.Center()
	var gs []mat.Vec
	for i := 0; i < n; i++ {
		hw := b.Interval(i).Width() / 2
		if hw > 0 {
			g := mat.NewVec(n)
			g[i] = hw
			gs = append(gs, g)
		}
	}
	return Zonotope{center: center, generators: gs}
}

// Dim returns the ambient dimension.
func (z Zonotope) Dim() int { return len(z.center) }

// Order returns the number of generators.
func (z Zonotope) Order() int { return len(z.generators) }

// Center returns a copy of the center.
func (z Zonotope) Center() mat.Vec { return z.center.Clone() }

// Generator returns a copy of the i-th generator.
func (z Zonotope) Generator(i int) mat.Vec { return z.generators[i].Clone() }

// Support evaluates ρ_Z(l) = lᵀc + Σ_i |lᵀg_i|.
func (z Zonotope) Support(l mat.Vec) float64 {
	s := l.Dot(z.center)
	for _, g := range z.generators {
		s += math.Abs(l.Dot(g))
	}
	return s
}

// LinearMap returns M·Z = { M c + Σ β_i (M g_i) } exactly.
func (z Zonotope) LinearMap(m *mat.Dense) Zonotope {
	gs := make([]mat.Vec, len(z.generators))
	for i, g := range z.generators {
		gs[i] = m.MulVec(g)
	}
	return Zonotope{center: m.MulVec(z.center), generators: gs}
}

// MinkowskiSum returns Z ⊕ W exactly (concatenated generators).
func (z Zonotope) MinkowskiSum(w Zonotope) Zonotope {
	if z.Dim() != w.Dim() {
		panic(fmt.Sprintf("geom: Minkowski sum dimension mismatch %d vs %d", z.Dim(), w.Dim()))
	}
	gs := make([]mat.Vec, 0, len(z.generators)+len(w.generators))
	for _, g := range z.generators {
		gs = append(gs, g.Clone())
	}
	for _, g := range w.generators {
		gs = append(gs, g.Clone())
	}
	return Zonotope{center: z.center.Add(w.center), generators: gs}
}

// Translate returns Z + v.
func (z Zonotope) Translate(v mat.Vec) Zonotope {
	out := NewZonotope(z.center.Add(v), z.generators...)
	return out
}

// BoundingBox returns the tightest axis-aligned box containing Z:
// c_i ± Σ_j |g_j[i]|.
func (z Zonotope) BoundingBox() Box {
	n := z.Dim()
	radius := mat.NewVec(n)
	for _, g := range z.generators {
		for i, v := range g {
			radius[i] += math.Abs(v)
		}
	}
	return CenteredBox(z.center, radius)
}

// Reduce returns a zonotope with at most maxGenerators generators that
// over-approximates Z: the largest generators (by 1-norm) are kept and the
// rest are absorbed into an axis-aligned box (the standard Girard-style
// order reduction). maxGenerators below the dimension is clamped up so the
// box absorption always fits.
func (z Zonotope) Reduce(maxGenerators int) Zonotope {
	n := z.Dim()
	if maxGenerators < n {
		maxGenerators = n
	}
	if len(z.generators) <= maxGenerators {
		return NewZonotope(z.center, z.generators...)
	}
	// Sort generator indices by descending 1-norm.
	idx := make([]int, len(z.generators))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return z.generators[idx[a]].Norm1() > z.generators[idx[b]].Norm1()
	})
	keep := maxGenerators - n
	gs := make([]mat.Vec, 0, maxGenerators)
	for _, i := range idx[:keep] {
		gs = append(gs, z.generators[i].Clone())
	}
	// Absorb the rest into per-axis interval generators.
	radius := mat.NewVec(n)
	for _, i := range idx[keep:] {
		for d, v := range z.generators[i] {
			radius[d] += math.Abs(v)
		}
	}
	for d := 0; d < n; d++ {
		if radius[d] > 0 {
			g := mat.NewVec(n)
			g[d] = radius[d]
			gs = append(gs, g)
		}
	}
	return Zonotope{center: z.center.Clone(), generators: gs}
}

// ContainsZonotopeSupport conservatively checks containment of the other
// zonotope via support functions along ±axis directions and the other's
// generator directions; it can return false negatives for rotated sets but
// never false positives along the probed directions. Primarily a test
// helper for reduction soundness.
func (z Zonotope) ContainsZonotopeSupport(w Zonotope) bool {
	n := z.Dim()
	dirs := make([]mat.Vec, 0, n+len(w.generators))
	for i := 0; i < n; i++ {
		dirs = append(dirs, mat.Basis(n, i))
	}
	for _, g := range w.generators {
		if g.Norm2() > 0 {
			dirs = append(dirs, g)
		}
	}
	const slack = 1e-9
	for _, d := range dirs {
		if w.Support(d) > z.Support(d)+slack {
			return false
		}
		neg := d.Scale(-1)
		if w.Support(neg) > z.Support(neg)+slack {
			return false
		}
	}
	return true
}
