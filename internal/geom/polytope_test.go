package geom

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestHalfspaceContains(t *testing.T) {
	h := NewHalfspace(mat.VecOf(1, 0), 2)
	if !h.Contains(mat.VecOf(2, 100)) || h.Contains(mat.VecOf(2.1, 0)) {
		t.Error("halfspace membership wrong")
	}
}

func TestNewHalfspaceZeroNormalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHalfspace(mat.VecOf(0, 0), 1)
}

func TestPolytopeContains(t *testing.T) {
	// Triangle x >= 0, y >= 0, x + y <= 1.
	p := NewPolytope(
		NewHalfspace(mat.VecOf(-1, 0), 0),
		NewHalfspace(mat.VecOf(0, -1), 0),
		NewHalfspace(mat.VecOf(1, 1), 1),
	)
	if !p.Contains(mat.VecOf(0.3, 0.3)) {
		t.Error("interior point rejected")
	}
	if p.Contains(mat.VecOf(0.7, 0.7)) || p.Contains(mat.VecOf(-0.1, 0.5)) {
		t.Error("exterior point accepted")
	}
	if p.Dim() != 2 || p.NumFaces() != 3 {
		t.Errorf("dim/faces = %d/%d", p.Dim(), p.NumFaces())
	}
}

func TestPolytopeValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewPolytope() },
		func() {
			NewPolytope(NewHalfspace(mat.VecOf(1), 0), NewHalfspace(mat.VecOf(1, 0), 0))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPolytopeFromBox(t *testing.T) {
	b := NewBox(NewInterval(-1, 2), Whole(), NewInterval(0, 5))
	p := PolytopeFromBox(b)
	if p.NumFaces() != 4 { // dim 1 unbounded contributes no faces
		t.Fatalf("faces = %d, want 4", p.NumFaces())
	}
	// Membership must agree with the box on a grid.
	for _, x := range []mat.Vec{
		{0, 1e9, 1}, {-1, 0, 0}, {2, -5, 5}, {2.1, 0, 1}, {0, 0, -0.1},
	} {
		if b.Contains(x) != p.Contains(x) {
			t.Errorf("box/polytope disagree at %v", x)
		}
	}
}

func TestPolytopeFromFullyUnboundedBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PolytopeFromBox(NewBox(Whole(), Whole()))
}

func TestContainsSupported(t *testing.T) {
	// Ball of radius 1 at origin against |x|+... a diamond face x+y <= b.
	p := NewPolytope(NewHalfspace(mat.VecOf(1, 1), 2))
	ball := OriginBall(2, 1)
	// Support along (1,1) is √2 < 2: contained.
	if !p.ContainsSupported(ball.Support) {
		t.Error("ball should be inside the halfspace")
	}
	tight := NewPolytope(NewHalfspace(mat.VecOf(1, 1), 1))
	// Support √2 > 1: not contained.
	if tight.ContainsSupported(ball.Support) {
		t.Error("ball should violate the tight halfspace")
	}
}

func TestContainsSupportedDiagonalTighterThanBox(t *testing.T) {
	// The motivating case for polytopic safe sets: a ball of radius 1 and
	// the diagonal constraint x+y <= 1.5. Its bounding box ([-1,1]²) has a
	// corner at (1,1) violating the constraint, but the exact support test
	// knows the ball itself satisfies... actually √2 ≈ 1.414 < 1.5: safe.
	p := NewPolytope(NewHalfspace(mat.VecOf(1, 1), 1.5))
	ball := OriginBall(2, 1)
	if !p.ContainsSupported(ball.Support) {
		t.Error("exact support test should pass")
	}
	// The box over-approximation is strictly more conservative: its support
	// along (1,1) is 2 > 1.5.
	bb := BoundingBox(2, ball.Support)
	if p.ContainsSupported(bb.Support) {
		t.Error("box over-approximation should fail the diagonal face")
	}
	if math.Abs(bb.Support(mat.VecOf(1, 1))-2) > 1e-12 {
		t.Errorf("box diagonal support = %v", bb.Support(mat.VecOf(1, 1)))
	}
}

func TestPolytopeFacesAreCopied(t *testing.T) {
	normal := mat.VecOf(1, 0)
	p := NewPolytope(Halfspace{Normal: normal, Offset: 1})
	normal[0] = -1
	if !p.Contains(mat.VecOf(0.5, 0)) {
		t.Error("polytope aliased caller's normal")
	}
}
