package geom

import (
	"fmt"

	"repro/internal/mat"
)

// Halfspace is the constraint {x : Normal·x <= Offset}.
type Halfspace struct {
	Normal mat.Vec
	Offset float64
}

// NewHalfspace returns a halfspace, panicking on a zero normal.
func NewHalfspace(normal mat.Vec, offset float64) Halfspace {
	//awdlint:allow floateq -- exact: only the exactly-zero normal is degenerate; tiny normals still define a halfspace
	if normal.Norm2() == 0 {
		panic("geom: zero halfspace normal")
	}
	return Halfspace{Normal: normal.Clone(), Offset: offset}
}

// Contains reports whether x satisfies the constraint.
func (h Halfspace) Contains(x mat.Vec) bool { return h.Normal.Dot(x) <= h.Offset }

// Polytope is an intersection of halfspaces — the general safe-set shape
// the support-function method (Sec. 3.4) handles directly: the reachable
// set stays inside the polytope iff its support in every face-normal
// direction stays below that face's offset. Box safe sets are the special
// case with axis-aligned normals.
type Polytope struct {
	faces []Halfspace
}

// NewPolytope builds a polytope from halfspaces. All normals must share
// dimension.
func NewPolytope(faces ...Halfspace) Polytope {
	if len(faces) == 0 {
		panic("geom: empty polytope")
	}
	n := len(faces[0].Normal)
	cp := make([]Halfspace, len(faces))
	for i, f := range faces {
		if len(f.Normal) != n {
			panic(fmt.Sprintf("geom: face %d dimension %d, want %d", i, len(f.Normal), n))
		}
		cp[i] = Halfspace{Normal: f.Normal.Clone(), Offset: f.Offset}
	}
	return Polytope{faces: cp}
}

// PolytopeFromBox converts a box into its halfspace representation,
// skipping unbounded sides.
func PolytopeFromBox(b Box) Polytope {
	var faces []Halfspace
	n := b.Dim()
	for i := 0; i < n; i++ {
		iv := b.Interval(i)
		if !isInf(iv.Hi) {
			faces = append(faces, Halfspace{Normal: mat.Basis(n, i), Offset: iv.Hi})
		}
		if !isInf(iv.Lo) {
			faces = append(faces, Halfspace{Normal: mat.Basis(n, i).Scale(-1), Offset: -iv.Lo})
		}
	}
	if len(faces) == 0 {
		panic("geom: box has no bounded side")
	}
	return Polytope{faces: faces}
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }

// Dim returns the ambient dimension.
func (p Polytope) Dim() int { return len(p.faces[0].Normal) }

// NumFaces returns the number of halfspace constraints.
func (p Polytope) NumFaces() int { return len(p.faces) }

// Face returns the i-th halfspace.
func (p Polytope) Face(i int) Halfspace { return p.faces[i] }

// Contains reports whether x satisfies every constraint.
func (p Polytope) Contains(x mat.Vec) bool {
	for _, f := range p.faces {
		if !f.Contains(x) {
			return false
		}
	}
	return true
}

// ContainsSupported reports whether a convex set, given by its support
// function, lies entirely inside the polytope: ρ(normal) <= offset for
// every face. This is the conservative-safety test of Definition 3.1
// evaluated without any box intermediate.
func (p Polytope) ContainsSupported(sup func(mat.Vec) float64) bool {
	for _, f := range p.faces {
		if sup(f.Normal) > f.Offset {
			return false
		}
	}
	return true
}
