package geom

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestBallContains(t *testing.T) {
	b := NewBall(mat.VecOf(1, 0), 2)
	if !b.Contains(mat.VecOf(1, 2)) || !b.Contains(mat.VecOf(3, 0)) {
		t.Error("boundary points should be contained")
	}
	if b.Contains(mat.VecOf(3.001, 0)) {
		t.Error("outside point contained")
	}
}

func TestBallNegativeRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBall(mat.VecOf(0), -1)
}

func TestBallSupport(t *testing.T) {
	b := OriginBall(2, 3)
	// sup over ball of radius 3 in direction e1 is 3.
	if got := b.Support(mat.Basis(2, 0)); math.Abs(got-3) > 1e-12 {
		t.Errorf("Support = %v, want 3", got)
	}
	// Direction (1,1): 3*sqrt(2).
	if got := b.Support(mat.VecOf(1, 1)); math.Abs(got-3*math.Sqrt2) > 1e-12 {
		t.Errorf("Support = %v, want %v", got, 3*math.Sqrt2)
	}
	// Shifted ball adds lᵀc.
	bc := NewBall(mat.VecOf(5, 0), 3)
	if got := bc.Support(mat.Basis(2, 0)); math.Abs(got-8) > 1e-12 {
		t.Errorf("shifted Support = %v, want 8", got)
	}
}

func TestBoxSupport(t *testing.T) {
	b := BoxFromBounds([]float64{-1, 2}, []float64{3, 4})
	if got := b.Support(mat.VecOf(1, 0)); got != 3 {
		t.Errorf("Support(+e1) = %v, want 3", got)
	}
	if got := b.Support(mat.VecOf(-1, 0)); got != 1 {
		t.Errorf("Support(-e1) = %v, want 1 (=-lo)", got)
	}
	if got := b.Support(mat.VecOf(1, 1)); got != 7 {
		t.Errorf("Support(1,1) = %v, want 7", got)
	}
	if got := b.Support(mat.VecOf(0, 0)); got != 0 {
		t.Errorf("Support(0) = %v, want 0", got)
	}
}

func TestBoxSupportUnbounded(t *testing.T) {
	b := NewBox(Whole(), NewInterval(-1, 1))
	if got := b.Support(mat.VecOf(1, 0)); !math.IsInf(got, 1) {
		t.Errorf("Support along unbounded dim = %v, want +Inf", got)
	}
	// Zero weight on the unbounded dim keeps it finite.
	if got := b.Support(mat.VecOf(0, 1)); got != 1 {
		t.Errorf("Support = %v, want 1", got)
	}
}

func TestSupportOfLinearImage(t *testing.T) {
	// M scales e1 by 2; support of M·Ball(r=1) along e1 is 2.
	m := mat.Diag(2, 1)
	ball := OriginBall(2, 1)
	got := SupportOfLinearImage(m, ball.Support, mat.Basis(2, 0))
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("linear image support = %v, want 2", got)
	}
}

func TestSupportSum(t *testing.T) {
	// Minkowski sum of two balls radius 1 and 2 = ball radius 3.
	b1, b2 := OriginBall(2, 1), OriginBall(2, 2)
	l := mat.VecOf(0, 1)
	got := SupportSum(l, b1.Support, b2.Support)
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("SupportSum = %v, want 3", got)
	}
}

func TestBoundingBoxOfBall(t *testing.T) {
	ball := NewBall(mat.VecOf(1, -1), 2)
	bb := BoundingBox(2, ball.Support)
	want := BoxFromBounds([]float64{-1, -3}, []float64{3, 1})
	for i := 0; i < 2; i++ {
		if math.Abs(bb.Interval(i).Lo-want.Interval(i).Lo) > 1e-12 ||
			math.Abs(bb.Interval(i).Hi-want.Interval(i).Hi) > 1e-12 {
			t.Errorf("BoundingBox dim %d = %v, want %v", i, bb.Interval(i), want.Interval(i))
		}
	}
}

func TestBoundingBoxOfBoxIsIdentity(t *testing.T) {
	b := BoxFromBounds([]float64{-2, 0.5}, []float64{1, 3})
	bb := BoundingBox(2, b.Support)
	for i := 0; i < 2; i++ {
		if math.Abs(bb.Interval(i).Lo-b.Interval(i).Lo) > 1e-12 ||
			math.Abs(bb.Interval(i).Hi-b.Interval(i).Hi) > 1e-12 {
			t.Errorf("BoundingBox(box) dim %d = %v", i, bb.Interval(i))
		}
	}
}

func TestUnitBallNorm(t *testing.T) {
	x := mat.VecOf(0.6, 0.8)
	if got := UnitBallNorm(x, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("2-norm = %v, want 1", got)
	}
	if got := UnitBallNorm(x, math.Inf(1)); got != 0.8 {
		t.Errorf("inf-norm = %v, want 0.8", got)
	}
}

// Property: support function is sublinear: ρ(l1+l2) <= ρ(l1)+ρ(l2).
func TestSupportSublinearProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ball := NewBall(mat.VecOf(0.3, -0.7, 1.1), 2.5)
	box := BoxFromBounds([]float64{-1, 0, -3}, []float64{2, 4, -1})
	for trial := 0; trial < 200; trial++ {
		l1 := mat.VecOf(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		l2 := mat.VecOf(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		sum := l1.Add(l2)
		const slack = 1e-9
		if ball.Support(sum) > ball.Support(l1)+ball.Support(l2)+slack {
			t.Fatalf("trial %d: ball support not sublinear", trial)
		}
		if box.Support(sum) > box.Support(l1)+box.Support(l2)+slack {
			t.Fatalf("trial %d: box support not sublinear", trial)
		}
	}
}

// Property: for every point x in the set, lᵀx <= ρ(l).
func TestSupportDominatesMembersProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	box := BoxFromBounds([]float64{-1, 2}, []float64{0.5, 3})
	for trial := 0; trial < 200; trial++ {
		// Random point inside the box.
		x := mat.VecOf(
			box.Interval(0).Lo+r.Float64()*box.Interval(0).Width(),
			box.Interval(1).Lo+r.Float64()*box.Interval(1).Width(),
		)
		l := mat.VecOf(r.NormFloat64(), r.NormFloat64())
		if l.Dot(x) > box.Support(l)+1e-9 {
			t.Fatalf("trial %d: support does not dominate member", trial)
		}
	}
}

// Property: BoundingBox of a support function always contains sampled set
// points (here: points of a ball).
func TestBoundingBoxEnclosesSetProperty(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	ball := NewBall(mat.VecOf(1, 2), 1.5)
	bb := BoundingBox(2, ball.Support)
	for trial := 0; trial < 200; trial++ {
		theta := r.Float64() * 2 * math.Pi
		rad := r.Float64() * ball.Radius
		p := mat.VecOf(ball.Center[0]+rad*math.Cos(theta), ball.Center[1]+rad*math.Sin(theta))
		if !bb.Contains(p) {
			t.Fatalf("trial %d: bounding box misses ball point %v", trial, p)
		}
	}
}
