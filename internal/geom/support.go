package geom

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Ball is a Euclidean (2-norm) ball with a center and radius (Def. 3.2,
// scaled and translated). The paper over-approximates the per-step
// uncertainty v_t by an origin-centered ball of radius ε (Sec. 3.2.1).
type Ball struct {
	Center mat.Vec
	Radius float64
}

// NewBall returns a ball, panicking on negative radius.
func NewBall(center mat.Vec, radius float64) Ball {
	if radius < 0 {
		panic(fmt.Sprintf("geom: negative ball radius %v", radius))
	}
	return Ball{Center: center.Clone(), Radius: radius}
}

// OriginBall returns an origin-centered ball of the given radius in n dims.
func OriginBall(n int, radius float64) Ball {
	return NewBall(mat.NewVec(n), radius)
}

// Dim returns the ball's dimension.
func (b Ball) Dim() int { return len(b.Center) }

// Contains reports whether x lies inside the ball.
func (b Ball) Contains(x mat.Vec) bool {
	return x.Sub(b.Center).Norm2() <= b.Radius
}

// Support evaluates the support function ρ(l) = sup_{x∈B} lᵀx of the ball:
// lᵀc + r‖l‖₂.
func (b Ball) Support(l mat.Vec) float64 {
	return l.Dot(b.Center) + b.Radius*l.Norm2()
}

// Support evaluates the support function of the box:
// ρ(l) = Σ_i max(l_i·lo_i, l_i·hi_i). For unbounded dimensions with a
// nonzero l component the result is +Inf, matching sup over the set.
func (b Box) Support(l mat.Vec) float64 {
	if len(l) != b.Dim() {
		panic(fmt.Sprintf("geom: Support dimension mismatch %d vs %d", len(l), b.Dim()))
	}
	s := 0.0
	for i, iv := range b.ivs {
		switch {
		case l[i] > 0:
			s += l[i] * iv.Hi
		case l[i] < 0:
			s += l[i] * iv.Lo
		}
	}
	return s
}

// SupportOfLinearImage evaluates ρ_{M·S}(l) = ρ_S(Mᵀl) for a set S with
// support function sup. This is the identity the paper uses to push A^i and
// A^iB through the ball/box terms of Eq. (3).
func SupportOfLinearImage(m *mat.Dense, sup func(mat.Vec) float64, l mat.Vec) float64 {
	return sup(m.MulVecTrans(l))
}

// SupportSum is the Minkowski-sum identity ρ_{X⊕Y}(l) = ρ_X(l) + ρ_Y(l).
func SupportSum(l mat.Vec, sups ...func(mat.Vec) float64) float64 {
	s := 0.0
	for _, f := range sups {
		s += f(l)
	}
	return s
}

// BoundingBox converts any set given by its support function into the
// tightest enclosing box, by probing ±e_i in every dimension.
func BoundingBox(n int, sup func(mat.Vec) float64) Box {
	ivs := make([]Interval, n)
	for i := 0; i < n; i++ {
		e := mat.Basis(n, i)
		hi := sup(e)
		lo := -sup(e.Scale(-1))
		if lo > hi { // numerical round-off guard for degenerate sets
			lo, hi = hi, lo
		}
		ivs[i] = Interval{Lo: lo, Hi: hi}
	}
	return Box{ivs: ivs}
}

// UnitBallNorm returns the k-norm of x, used to test unit-ball membership
// ‖x‖_k ≤ 1 (Definition 3.2). k may be math.Inf(1).
func UnitBallNorm(x mat.Vec, k float64) float64 {
	if math.IsInf(k, 1) {
		return x.NormInf()
	}
	return x.Norm(k)
}
