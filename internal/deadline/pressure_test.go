package deadline

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mat"
)

// TestTakePressure pins the deadline-pressure semantics: 0 on a fresh
// anchor, sqrt(d2/thr2) on certified hits (monotone in the drift from the
// anchor), consumed by the read, and bounded by 1.
func TestTakePressure(t *testing.T) {
	// Safe box ±10.5 leaves the anchor a real slack budget (the reach box
	// from 0 grows ±1 per step: deadline 10, min slack 0.5); an exactly
	// touching bound would anchor dead with pressure pinned to 1.
	_, an := fixture(t, 20)
	est, err := New(an, geom.UniformBox(1, -10.5, 10.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCertificate(est)

	// No query yet: nothing to take.
	if _, ok := c.TakePressure(); ok {
		t.Error("pressure available before any query")
	}

	// First query anchors: fresh certificate, zero pressure.
	c.FromState(mat.VecOf(0))
	p, ok := c.TakePressure()
	if !ok || p != 0 {
		t.Fatalf("fresh-anchor pressure = %v (ok=%v), want 0", p, ok)
	}
	// Consumed: a second take without a query reports no value.
	if _, ok := c.TakePressure(); ok {
		t.Error("pressure not consumed by TakePressure")
	}

	// Drifting queries inside the certified ball: pressure grows with the
	// distance from the anchor and stays in (0, 1].
	var last float64
	for _, x := range []float64{0.01, 0.02, 0.03} {
		if d := c.FromState(mat.VecOf(x)); d != 10 {
			t.Fatalf("drifted query re-anchored (deadline %d) — fixture drifts too fast for the test", d)
		}
		p, ok := c.TakePressure()
		if !ok || p <= last || p > 1 {
			t.Fatalf("pressure at drift %v = %v (ok=%v), want in (%v, 1]", x, p, ok, last)
		}
		last = p
	}

	// A far query re-anchors: pressure resets to 0 for the fresh anchor.
	if d := c.FromState(mat.VecOf(8)); d != 2 {
		t.Fatalf("far query deadline = %d, want 2", d)
	}
	if p, ok := c.TakePressure(); !ok || p != 0 {
		t.Errorf("re-anchor pressure = %v (ok=%v), want fresh 0", p, ok)
	}

	// The certified-hit pressure is exactly the consumed radius fraction.
	c2 := NewCertificate(est)
	c2.FromState(mat.VecOf(0))
	c2.TakePressure()
	thr := math.Sqrt(c2.thr2)
	x := thr / 2
	if d := c2.FromState(mat.VecOf(x)); d != c2.safeSteps {
		t.Fatalf("half-radius query missed the certificate (deadline %d)", d)
	}
	if p, _ := c2.TakePressure(); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("half-radius pressure = %v, want 0.5", p)
	}
}
