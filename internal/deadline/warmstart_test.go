package deadline

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/reach"
)

// The warm-start contract: FromState must return exactly the value a cold
// reach.Analysis.Deadline scan returns, for every query in a correlated
// sequence — nearby states exercise the certified-prefix skip, occasional
// jumps force re-anchoring full scans. Run over all six evaluation plants
// so every table shape (n = 1..6) is covered.
func TestWarmStartMatchesFullScanAllPlants(t *testing.T) {
	for _, m := range models.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			an, err := reach.New(m.Sys, m.U, m.Eps, m.MaxWindow)
			if err != nil {
				t.Fatal(err)
			}
			r := m.EstimatorRadius()
			est, err := New(an, m.Safe, r)
			if err != nil {
				t.Fatal(err)
			}
			src := noise.NewSource(0xD0D0 + uint64(len(m.Name)))
			n := m.Sys.StateDim()
			x := m.X0.Clone()
			for q := 0; q < 400; q++ {
				switch {
				case q%97 == 0:
					// Occasional teleport: forces a full-scan re-anchor.
					for i := 0; i < n; i++ {
						x[i] = m.X0[i] + src.Uniform(-1, 1)
					}
				default:
					// Small correlated drift: the warm-start regime.
					for i := 0; i < n; i++ {
						x[i] += src.Uniform(-0.01, 0.01)
					}
				}
				want, err := an.Deadline(x, r, m.Safe)
				if err != nil {
					t.Fatal(err)
				}
				if got := est.FromState(x); got != want {
					t.Fatalf("query %d, x=%v: warm-started deadline %d != full scan %d",
						q, x, got, want)
				}
			}
		})
	}
}

// Near the safe-set boundary the deadline changes on tiny state moves; the
// certificate must never skip a step whose verdict the move could flip.
func TestWarmStartExactNearBoundary(t *testing.T) {
	_, an := fixture(t, 30)
	safe := geom.UniformBox(1, -10, 10)
	est, err := New(an, safe, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// March the state toward the bound in sub-slack increments, then back.
	for _, dir := range []float64{1, -1} {
		x := 0.0
		for i := 0; i < 200; i++ {
			x += dir * 0.045
			if x > 9.4 || x < -9.4 {
				break
			}
			xv := mat.VecOf(x)
			want, err := an.Deadline(xv, 0.05, safe)
			if err != nil {
				t.Fatal(err)
			}
			if got := est.FromState(xv); got != want {
				t.Fatalf("x=%v: warm %d != cold %d", x, got, want)
			}
		}
	}
}

// Steady-state FromState must not allocate: the estimator owns all search
// scratch (tentpole part 2's zero-allocation contract).
func TestFromStateNoAllocsSteadyState(t *testing.T) {
	_, an := fixture(t, 25)
	est, err := New(an, geom.UniformBox(1, -10, 10), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.VecOf(3)
	est.FromState(x) // anchor
	if allocs := testing.AllocsPerRun(200, func() {
		x[0] += 0.001
		est.FromState(x)
	}); allocs != 0 {
		t.Fatalf("warm FromState allocates %v per call, want 0", allocs)
	}
	// Re-anchoring full scans must be allocation-free too.
	if allocs := testing.AllocsPerRun(200, func() {
		x[0] = -x[0]
		est.FromState(x)
	}); allocs != 0 {
		t.Fatalf("full-scan FromState allocates %v per call, want 0", allocs)
	}
}
