package deadline

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mat"
)

// certFixture builds a fresh certificate over the 1-D fixture plant so the
// serial and batched sides of a differential run start bit-identical.
func certFixture(t *testing.T, horizon int) *Certificate {
	t.Helper()
	_, an := fixture(t, horizon)
	est, err := New(an, geom.UniformBox(1, -10, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewCertificate(est)
}

// batchQueryStates is a query sequence chosen to walk FromStateBatch through
// every branch: the unanchored first query, runs of anchor hits, mid-batch
// re-anchors (jumps outside the certified ball), a state outside the safe box
// (deadline 0 — its anchor has no safe prefix), and returns to earlier
// regions after the anchor moved.
var batchQueryStates = []float64{
	0, 0.001, -0.002, 0.01, // anchor at 0, then hits
	5, 5.001, 4.999, // re-anchor at 5, then hits
	-8, -8.0005, // re-anchor far on the other side
	0.5, 0.499, // back near the start: anchor moved, so re-anchor again
	20,          // outside the safe box entirely (deadline 0)
	0.25, 0.251, // recover
}

// TestFromStateBatchMatchesSerial is the differential gate for the batched
// certificate query: at every batch split, out, pressure, and the
// certificate state left behind must match k sequential
// FromState/TakePressure pairs exactly, bit for bit.
func TestFromStateBatchMatchesSerial(t *testing.T) {
	states := batchQueryStates
	// Serial reference: one fresh certificate, one query per state.
	serial := certFixture(t, 20)
	wantOut := make([]int, len(states))
	wantP := make([]float64, len(states))
	for i, v := range states {
		wantOut[i] = serial.FromState(mat.VecOf(v))
		if p, ok := serial.TakePressure(); ok {
			wantP[i] = p
		} else {
			wantP[i] = -1
		}
	}

	for _, bs := range []int{1, 2, 3, 5, len(states)} {
		batch := certFixture(t, 20)
		for idx := 0; idx < len(states); idx += bs {
			k := bs
			if idx+k > len(states) {
				k = len(states) - idx
			}
			xb := mat.NewBatch(1, k)
			for s := 0; s < k; s++ {
				xb.Set(0, s, states[idx+s])
			}
			d2 := make([]float64, k)
			press := make([]float64, k)
			out := make([]int, k)
			batch.FromStateBatch(xb, d2, press, out)
			for s := 0; s < k; s++ {
				if out[s] != wantOut[idx+s] {
					t.Fatalf("bs=%d query %d: batch deadline %d != serial %d", bs, idx+s, out[s], wantOut[idx+s])
				}
				if math.Float64bits(press[s]) != math.Float64bits(wantP[idx+s]) {
					t.Fatalf("bs=%d query %d: batch pressure %v != serial %v", bs, idx+s, press[s], wantP[idx+s])
				}
			}
		}
		// The certificates must have converged to the same state: one more
		// query on each side must agree in deadline, pressure, and the
		// consumed-pressure flag.
		probe := mat.VecOf(0.125)
		so, bo := serial.FromState(probe), batch.FromState(probe)
		sp, sok := serial.TakePressure()
		bp, bok := batch.TakePressure()
		if so != bo || sok != bok || math.Float64bits(sp) != math.Float64bits(bp) {
			t.Fatalf("bs=%d post-batch probe: serial (%d, %v, %v) != batch (%d, %v, %v)", bs, so, sp, sok, bo, bp, bok)
		}
		// Re-arm the serial reference's post-probe state for the next split.
		serial = certFixture(t, 20)
		for _, v := range states {
			serial.FromState(mat.VecOf(v))
			serial.TakePressure()
		}
	}
}

// TestFromStateBatchAllHitsAllocFree pins the steady-state cost model: a
// batch whose every column hits the anchor ball performs zero heap
// allocations — the whole fleet deadline pass is one distance sweep.
func TestFromStateBatchAllHitsAllocFree(t *testing.T) {
	c := certFixture(t, 20)
	c.FromState(mat.VecOf(0)) // anchor once
	c.TakePressure()
	const k = 64
	xb := mat.NewBatch(1, k)
	for s := 0; s < k; s++ {
		xb.Set(0, s, float64(s)*1e-6)
	}
	d2 := make([]float64, k)
	press := make([]float64, k)
	out := make([]int, k)
	if allocs := testing.AllocsPerRun(20, func() {
		c.FromStateBatch(xb, d2, press, out)
	}); allocs != 0 {
		t.Errorf("all-hit FromStateBatch allocates %v per run, want 0", allocs)
	}
}

// TestFromStateBatchPanics pins the configuration-fault contract: dimension
// and capacity mismatches are programmer errors and panic rather than
// corrupting the query results.
func TestFromStateBatchPanics(t *testing.T) {
	c := certFixture(t, 20)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"state dim", func() {
			c.FromStateBatch(mat.NewBatch(2, 4), make([]float64, 4), make([]float64, 4), make([]int, 4))
		}},
		{"short d2", func() {
			c.FromStateBatch(mat.NewBatch(1, 4), make([]float64, 3), make([]float64, 4), make([]int, 4))
		}},
		{"short pressure", func() {
			c.FromStateBatch(mat.NewBatch(1, 4), make([]float64, 4), make([]float64, 3), make([]int, 4))
		}},
		{"short out", func() {
			c.FromStateBatch(mat.NewBatch(1, 4), make([]float64, 4), make([]float64, 4), make([]int, 3))
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}
