package deadline

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/state"
)

// certRoundTrip snapshots src and restores it into a fresh certificate
// over the same estimator.
func certRoundTrip(t *testing.T, src *Certificate) *Certificate {
	t.Helper()
	enc := state.NewEncoder()
	src.Snapshot(enc)
	dst := NewCertificate(src.Estimator())
	if err := dst.Restore(state.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("Certificate.Restore: %v", err)
	}
	return dst
}

// TestTakePressureAfterRestore pins that the pending deadline-pressure
// reading survives a snapshot/restore round trip with take-once semantics
// intact: an unconsumed reading is delivered exactly once by the restored
// certificate, and a reading consumed before the snapshot does not
// reappear after it.
func TestTakePressureAfterRestore(t *testing.T) {
	_, an := fixture(t, 20)
	est, err := New(an, geom.UniformBox(1, -10.5, 10.5), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Anchor, then drift inside the certified ball so a nonzero pressure
	// reading is pending but NOT consumed when the snapshot is taken.
	c := NewCertificate(est)
	c.FromState(mat.VecOf(0))
	c.TakePressure()
	if d := c.FromState(mat.VecOf(0.25)); d != 10 {
		t.Fatalf("drifted query re-anchored (deadline %d)", d)
	}

	restored := certRoundTrip(t, c)
	pWant, ok := c.TakePressure()
	if !ok || pWant <= 0 {
		t.Fatalf("source pressure = %v (ok=%v), want > 0", pWant, ok)
	}
	p, ok := restored.TakePressure()
	if !ok {
		t.Fatal("restored certificate lost the pending pressure reading")
	}
	if math.Abs(p-pWant) > 0 { // bit-identical, not approximately equal
		t.Fatalf("restored pressure = %v, want %v", p, pWant)
	}
	// Take-once semantics survive the restore: the reading is consumed.
	if _, ok := restored.TakePressure(); ok {
		t.Error("restored pressure not consumed by TakePressure")
	}

	// A reading consumed before the snapshot must not resurrect.
	c.FromState(mat.VecOf(0.5))
	c.TakePressure()
	drained := certRoundTrip(t, c)
	if _, ok := drained.TakePressure(); ok {
		t.Error("consumed pressure reappeared after restore")
	}

	// The restored anchor still serves certified hits: a nearby query
	// must answer from the anchor and produce a fresh pressure reading.
	if d := drained.FromState(mat.VecOf(0.5)); d != 10 {
		t.Fatalf("restored anchor missed a certified hit (deadline %d)", d)
	}
	if p, ok := drained.TakePressure(); !ok || p < 0 || p > 1 {
		t.Fatalf("post-restore query pressure = %v (ok=%v), want in [0, 1]", p, ok)
	}
}
