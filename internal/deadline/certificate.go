package deadline

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mat"
)

// Certificate wraps an Estimator with a reusable anchor certificate that
// many detector streams over the same plant can share. The fleet engine
// attaches one Certificate per shard: in the silent steady state every
// stream's trusted estimate sits near the shared anchor, and the whole
// deadline search collapses to one distance check per stream per step —
// the cross-stream amortization a one-detector-per-goroutine design cannot
// express, because each goroutine's estimator only ever sees its own
// states.
//
// The certificate extends the Estimator's safe-shift warm start with the
// dual bound: besides the per-step SafeSlack budget proving the prefix
// stays safe, it records the UnsafeSlack budget of the first violating
// step, proving the violation also survives. A query within both budgets
// therefore has exactly the anchor's deadline — not an approximation — and
// any query outside them falls back to a full scan and re-anchors, so
// FromState always returns the same step a standalone Estimator would
// (the property the fleet's differential and fuzz tests pin).
//
// A Certificate is not safe for concurrent use; the fleet engine
// serializes access by processing each shard on one worker at a time.
type Certificate struct {
	est *Estimator

	anchored  bool
	ref       mat.Vec // anchor state of the certificate below
	safeSteps int     // anchor deadline: steps proven safe
	// thr2 is the squared hit radius: a query state within distance
	// sqrt(thr2) of ref provably has deadline safeSteps. It folds the
	// guarded minimum safe-shift budget over steps 1..safeSteps and the
	// guarded violation budget of step safeSteps+1 into one precomputed
	// bound, so the hot query is a squared-distance compare with no sqrt.
	// Negative means the anchor can never be hit (both budgets vanished).
	thr2 float64

	// lastPressure records the most recent query's deadline pressure —
	// the fraction of the anchor's hit radius the query state had consumed
	// (see Pressure semantics on TakePressure). hasPressure gates staleness:
	// TakePressure consumes it, so a reader interleaving queries from many
	// streams (the fleet worker) can attribute each value to the stream
	// whose query produced it.
	lastPressure float64
	hasPressure  bool

	// q is FromStateBatch's column-gather scratch (one query state).
	q mat.Vec
}

// NewCertificate returns an unanchored certificate over est. The first
// FromState call performs a full scan and anchors it.
func NewCertificate(est *Estimator) *Certificate {
	return &Certificate{est: est, ref: mat.NewVec(len(est.ref)), q: mat.NewVec(len(est.ref))}
}

// Estimator returns the wrapped estimator.
func (c *Certificate) Estimator() *Estimator { return c.est }

// FromState returns the detection deadline for the trusted state x0 —
// always the exact deadline a standalone Estimator.FromState would return.
// When x0 lies within both anchor budgets the answer is the anchor's
// deadline by the argument above; otherwise the certificate re-anchors
// with a full scan at x0.
func (c *Certificate) FromState(x0 mat.Vec) int {
	if c.anchored {
		d2 := 0.0
		for i, v := range x0 {
			diff := v - c.ref[i]
			d2 += diff * diff
		}
		if d2 <= c.thr2 {
			// thr2 > 0 here: d2 >= 0, so a non-positive thr2 cannot admit a
			// hit. The ratio is the slack consumed by this stream's drift
			// from the shared anchor.
			c.lastPressure = math.Sqrt(d2 / c.thr2)
			c.hasPressure = true
			return c.safeSteps
		}
	}
	return c.anchor(x0)
}

// FromStateBatch answers k = xb.Len() deadline queries — column s of xb is
// stream s's trusted state — exactly as k sequential FromState/TakePressure
// pairs would, but with the anchor distance check vectorized over the whole
// batch. out[s] receives the deadline; pressure[s] receives the value the
// paired TakePressure would have returned, or -1 when it would have reported
// ok == false (the unanchorable dimension-fault case).
//
// Bit-identity with the serial pair is structural: each column's squared
// distance accumulates dimensions in ascending order (FromState's loop), the
// hit compare is the same d2 <= thr2 on the same values, and a miss anchors
// that column with the very same full scan — after which the remaining
// columns' distances are recomputed against the new anchor before the walk
// resumes, because serial queries after a re-anchor see the new certificate.
// The certificate's lastPressure/hasPressure state afterwards matches the
// serial sequence's too, so snapshots taken either side of a batch agree.
//
// The in-order walk means a batch is exactly as re-anchor-prone as its
// serial counterpart: the steady silent state pays one distance sweep for
// the whole batch, and a drifting stream costs the same full scan it would
// have cost standalone.
func (c *Certificate) FromStateBatch(xb *mat.Batch, d2, pressure []float64, out []int) {
	k := xb.Len()
	if xb.Dim() != len(c.ref) {
		//awdlint:allow nopanic -- shape fault: the batch and scratch are sized once at shard construction, same contract as the mat batch kernels
		panic(fmt.Sprintf("deadline: FromStateBatch state dimension %d, want %d", xb.Dim(), len(c.ref)))
	}
	if len(d2) < k || len(pressure) < k || len(out) < k {
		//awdlint:allow nopanic -- capacity fault: ditto, a mis-sized result slice is a construction bug, not a data condition
		panic(fmt.Sprintf("deadline: FromStateBatch result capacity %d/%d/%d for %d queries", len(d2), len(pressure), len(out), k))
	}
	lo := 0
	for lo < k {
		if c.anchored && c.thr2 > 0 {
			c.dist2(xb, d2, lo, k)
			for lo < k && d2[lo] <= c.thr2 {
				p := math.Sqrt(d2[lo] / c.thr2)
				pressure[lo] = p
				out[lo] = c.safeSteps
				// Mirror the serial hit's state writes (TakePressure then
				// immediately consumes, restored after the loop).
				c.lastPressure = p
				lo++
			}
			if lo == k {
				break
			}
		}
		// Column lo missed the anchor ball (or no usable anchor): the same
		// full-scan re-anchor a standalone FromState would run.
		xb.ColTo(c.q, lo)
		out[lo] = c.anchor(c.q)
		if p, ok := c.TakePressure(); ok {
			pressure[lo] = p
		} else {
			pressure[lo] = -1
		}
		lo++
	}
	// Every serial query's TakePressure has consumed its value.
	c.hasPressure = false
}

// dist2 fills d2[lo:k] with the squared distances of columns [lo, k) of xb
// from the current anchor, dimensions accumulated in ascending order so each
// column's sum is bit-identical to FromState's own loop.
func (c *Certificate) dist2(xb *mat.Batch, d2 []float64, lo, k int) {
	for s := lo; s < k; s++ {
		d2[s] = 0
	}
	for j, rv := range c.ref {
		row := xb.Row(j)
		for s := lo; s < k; s++ {
			diff := row[s] - rv
			d2[s] += diff * diff
		}
	}
}

// TakePressure returns and consumes the deadline pressure of the most
// recent FromState query: the fraction of the certificate's proven slack
// radius (the folded distance-to-unsafe budget, see thr2) the query state
// had consumed. 0 is a fresh anchor with the whole budget ahead; values
// approaching 1 mean the state is drifting to the edge of the certified
// ball, where the one-compare deadline check fails and the next query pays
// a full reachability re-scan — pressure building ahead of any alarm. A
// query that re-anchored onto a dead certificate (no budget at all)
// records pressure 1. The consuming read keeps interleaved per-stream
// queries attributable; ok is false when no query happened since the last
// take (or the certificate could not anchor).
func (c *Certificate) TakePressure() (pressure float64, ok bool) {
	pressure, ok = c.lastPressure, c.hasPressure
	c.hasPressure = false
	return pressure, ok
}

// anchor runs the estimator's full scan from x0 and freezes its outcome
// into the certificate: the anchor state, its deadline, the minimum
// safe-shift budget over the safe prefix, and the violation budget of the
// first unsafe step. The frozen copy keeps the certificate mathematically
// valid even if the underlying estimator later re-anchors elsewhere.
func (c *Certificate) anchor(x0 mat.Vec) int {
	e := c.est
	d := e.fullScan(x0)
	if !e.haveRef {
		// Dimension fault (impossible for logger-fed states): stay
		// unanchored and conservative.
		c.anchored = false
		return d
	}
	copy(c.ref, e.ref)
	c.safeSteps = e.safeSteps
	min := math.Inf(1)
	for t := 1; t <= e.safeSteps; t++ {
		if e.slack[t] < min {
			min = e.slack[t]
		}
	}
	// Fold both budgets into one guarded hit radius. The guards mirror
	// Estimator.FromState — shrink the safe budget and the violation budget
	// by the relative+absolute margin — so the roundings in the norm, in
	// this rearrangement, and in the squaring below can only cause a
	// spurious re-scan, never a wrong skip: the 1e-9 relative margin
	// dominates the few-ulp (~1e-16 relative) error of each of them.
	thr := (min - slackGuardAbs) / (1 + slackGuardRel)
	if d < e.MaxDeadline() {
		// fullScan stopped at the first violating step and left the stepper
		// positioned there.
		if u := e.st.UnsafeSlack(e.safe)*(1-slackGuardRel) - slackGuardAbs; u < thr {
			thr = u
		}
	}
	if thr > 0 {
		c.thr2 = thr * thr
		c.lastPressure = 0 // fresh anchor: full slack budget ahead
	} else {
		c.thr2 = -1
		c.lastPressure = 1 // dead anchor: every query re-scans
	}
	c.hasPressure = true
	c.anchored = true
	return d
}

// CompatibleWith reports whether o is guaranteed to compute bit-identical
// deadlines to e for every state, provided both estimators' analyses were
// built over plants with bit-identical A and B matrices — the caller's
// obligation (the fleet engine guarantees it by sharing certificates only
// within a shard, whose membership is keyed on the plant matrices). Under
// that premise the reachability tables are a pure deterministic float
// computation of (A, B, inputs, eps, horizon), so bitwise-equal
// configurations yield bitwise-equal tables, and equal safe boxes and
// initial radii make every downstream comparison identical.
func (e *Estimator) CompatibleWith(o *Estimator) bool {
	if math.Float64bits(e.initRadius) != math.Float64bits(o.initRadius) || !boxBitsEqual(e.safe, o.safe) {
		return false
	}
	if e.an == o.an {
		return true
	}
	return e.an.Horizon() == o.an.Horizon() &&
		math.Float64bits(e.an.Eps()) == math.Float64bits(o.an.Eps()) &&
		boxBitsEqual(e.an.Inputs(), o.an.Inputs())
}

// boxBitsEqual reports bitwise equality of two boxes' bounds.
func boxBitsEqual(a, b geom.Box) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	for i := 0; i < a.Dim(); i++ {
		ia, ib := a.Interval(i), b.Interval(i)
		if math.Float64bits(ia.Lo) != math.Float64bits(ib.Lo) || math.Float64bits(ia.Hi) != math.Float64bits(ib.Hi) {
			return false
		}
	}
	return true
}
