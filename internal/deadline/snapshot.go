package deadline

import (
	"fmt"

	"repro/internal/state"
)

// Component versions for the deadline package's snapshot layouts.
const (
	estimatorStateVersion   = 1
	certificateStateVersion = 1
)

// Snapshot encodes the estimator's warm-start state: the anchor, the
// per-step safe-shift slack table, and the proven-safe prefix length. The
// stepper is per-query scratch (Reset on every search) and carries no
// state across calls, so it is not part of the snapshot.
//
// The warm start is an accelerator, not a decision input — FromState
// provably returns the full-scan deadline whether or not an anchor is
// loaded — so restoring it preserves the cost profile of the original
// process (no cold re-scan storm after a restore), never the semantics.
func (e *Estimator) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagEstimator, estimatorStateVersion)
	enc.Int(len(e.ref))
	enc.Int(len(e.slack))
	enc.Bool(e.haveRef)
	enc.Int(e.safeSteps)
	enc.F64s(e.ref)
	enc.F64s(e.slack)
}

// Restore replaces the estimator's warm-start state from a snapshot of an
// identically configured estimator (same state dimension and horizon).
func (e *Estimator) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagEstimator, estimatorStateVersion)
	n := dec.Int()
	slackLen := dec.Int()
	haveRef := dec.Bool()
	safeSteps := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(e.ref) {
		return fmt.Errorf("deadline: snapshot state dimension %d, want %d", n, len(e.ref))
	}
	if slackLen != len(e.slack) {
		return fmt.Errorf("deadline: snapshot horizon %d, want %d", slackLen-1, len(e.slack)-1)
	}
	if safeSteps < 0 || safeSteps >= slackLen {
		return fmt.Errorf("deadline: snapshot safe prefix %d outside [0, %d]", safeSteps, slackLen-1)
	}
	dec.F64s(e.ref)
	dec.F64s(e.slack)
	if err := dec.Err(); err != nil {
		return err
	}
	e.haveRef = haveRef
	e.safeSteps = safeSteps
	return nil
}

// Snapshot encodes the certificate's anchor: the reference state, its
// deadline, the folded squared hit radius, and the pending deadline-
// pressure reading. Restoring it lets a rebuilt fleet resume the
// one-distance-check steady state immediately instead of paying one full
// reachability re-scan per shard, and keeps the pressure telemetry stream
// continuous across the restore.
func (c *Certificate) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagCertificate, certificateStateVersion)
	enc.Int(len(c.ref))
	enc.Bool(c.anchored)
	enc.Int(c.safeSteps)
	enc.F64(c.thr2)
	enc.F64(c.lastPressure)
	enc.Bool(c.hasPressure)
	enc.F64s(c.ref)
}

// Restore replaces the certificate's anchor from a snapshot taken over a
// compatible estimator (same plant, safe set, and horizon — the same
// premise Estimator.CompatibleWith formalizes; the fleet engine's restore
// path guarantees it by matching shard structure before restoring).
func (c *Certificate) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagCertificate, certificateStateVersion)
	n := dec.Int()
	anchored := dec.Bool()
	safeSteps := dec.Int()
	thr2 := dec.F64()
	lastPressure := dec.F64()
	hasPressure := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(c.ref) {
		return fmt.Errorf("deadline: snapshot certificate dimension %d, want %d", n, len(c.ref))
	}
	if safeSteps < 0 || safeSteps > c.est.MaxDeadline() {
		return fmt.Errorf("deadline: snapshot certificate deadline %d outside [0, %d]", safeSteps, c.est.MaxDeadline())
	}
	dec.F64s(c.ref)
	if err := dec.Err(); err != nil {
		return err
	}
	c.anchored = anchored
	c.safeSteps = safeSteps
	c.thr2 = thr2
	c.lastPressure = lastPressure
	c.hasPressure = hasPressure
	return nil
}
