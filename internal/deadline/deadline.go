// Package deadline implements the Detection Deadline Estimator (Sec. 3.3):
// each control step it selects the latest trustworthy state estimate
// x̂_{t−w_c−1} from the Data Logger — the newest sample that has moved
// outside the detection window and whose detection result is final — and
// searches forward with the precomputed reachability analysis for the last
// step t_d at which the over-approximated reachable set is still disjoint
// from the unsafe set. The search is capped at the maximum detection window
// w_m (Sec. 4.3), which is also the Analysis horizon.
//
// The estimator owns all its search scratch (a resettable reach.Stepper
// plus the warm-start tables below), so the steady-state FromState path
// performs zero heap allocations, and it warm-starts consecutive searches:
// a full scan records, per step t, the largest Euclidean shift of the start
// state under which step t provably stays inside the safe set (the
// SafeSlack certificate, a per-dimension Cauchy–Schwarz bound through the
// precomputed ‖(A^t)ᵀe_i‖₂ table). The next query measures its distance δ
// to the anchor state and skips every leading step whose recorded slack
// covers δ — those steps are mathematically guaranteed to remain safe, so
// the reported deadline is identical to the one a full scan would find —
// then resumes the exact scan at the first uncovered step via the stepper's
// power-table jump (bit-identical to having advanced step by step). When
// the trusted state has drifted too far for the certificate to help, the
// estimator falls back to a full scan and re-anchors.
package deadline

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/logger"
	"repro/internal/mat"
	"repro/internal/reach"
)

// slackGuard deflates the warm-start certificate: a step is only skipped
// when δ·(1+1e-9)+1e-12 fits inside its recorded slack. The certificate is
// exact in real arithmetic; the guard keeps the handful of float roundings
// in the margin computation from ever flipping an ulp-borderline skip.
const (
	slackGuardRel = 1e-9
	slackGuardAbs = 1e-12
)

// Estimator computes detection deadlines on the fly.
type Estimator struct {
	an         *reach.Analysis
	safe       geom.Box
	initRadius float64

	// Owned search scratch (zero allocations in steady state).
	st *reach.Stepper

	// Warm-start state, anchored at the start state of the last full scan.
	ref       mat.Vec   // anchor x0
	haveRef   bool      // anchor valid
	slack     []float64 // slack[t]: safe-shift budget of step t (1..safeSteps)
	safeSteps int       // leading steps proven safe at the anchor
}

// New returns an estimator over the given reachability analysis and safe
// set. initRadius is the radius of the ball bounding estimate noise around
// the trusted initial state (Sec. 3.3.1); pass 0 for exact estimates. All
// dimension checks happen here so the per-step search path is validation-
// free (and therefore allocation- and panic-free).
func New(an *reach.Analysis, safe geom.Box, initRadius float64) (*Estimator, error) {
	if initRadius < 0 {
		return nil, fmt.Errorf("deadline: negative initial radius %v", initRadius)
	}
	n := an.StateDim()
	if safe.Dim() != n {
		return nil, fmt.Errorf("deadline: safe set dimension %d, want %d", safe.Dim(), n)
	}
	st, err := an.Stepper(mat.NewVec(n), initRadius)
	if err != nil {
		return nil, err
	}
	return &Estimator{
		an:         an,
		safe:       safe,
		initRadius: initRadius,
		st:         st,
		ref:        mat.NewVec(n),
		slack:      make([]float64, an.Horizon()+1),
	}, nil
}

// Safe returns the safe state set.
func (e *Estimator) Safe() geom.Box { return e.safe }

// MaxDeadline returns the cap on reported deadlines (the analysis horizon,
// i.e. the maximum detection window w_m).
func (e *Estimator) MaxDeadline() int { return e.an.Horizon() }

// FromState computes the deadline starting from an explicit trusted state.
// x0 must have the plant's state dimension (guaranteed by the Data Logger,
// which validates every sample it ingests). The result is always identical
// to a cold reach.Analysis.Deadline scan; consecutive calls with nearby
// states reuse the warm-start certificate and skip most of the search.
func (e *Estimator) FromState(x0 mat.Vec) int {
	if !e.haveRef {
		return e.fullScan(x0)
	}
	// δ = ‖x0 − ref‖₂, accumulated without allocating.
	d2 := 0.0
	for i, v := range x0 {
		diff := v - e.ref[i]
		d2 += diff * diff
	}
	delta := math.Sqrt(d2)*(1+slackGuardRel) + slackGuardAbs

	prefix := 0
	for prefix < e.safeSteps && delta <= e.slack[prefix+1] {
		prefix++
	}
	// Too far from the anchor for the certificate to pay: re-anchor with a
	// full scan (also refreshes the slack table around the new state).
	if prefix == 0 || 2*prefix < e.safeSteps {
		return e.fullScan(x0)
	}
	if prefix == e.an.Horizon() {
		return e.an.Horizon()
	}
	// Steps 1..prefix are certified safe; resume the exact scan at
	// prefix+1. Reset+JumpTo is bit-identical to advancing from scratch.
	if err := e.st.Reset(x0, e.initRadius); err != nil {
		return e.fullScan(x0)
	}
	if err := e.st.JumpTo(prefix); err != nil {
		return e.fullScan(x0)
	}
	for e.st.Advance() {
		if !e.st.InsideBox(e.safe) {
			return e.st.Step() - 1
		}
	}
	return e.an.Horizon()
}

// fullScan runs the complete forward search from x0, recording the
// per-step safe-shift certificates and re-anchoring the warm start.
func (e *Estimator) fullScan(x0 mat.Vec) int {
	if err := e.st.Reset(x0, e.initRadius); err != nil {
		// Dimension fault: impossible for logger-fed states (validated at
		// ingest); stay conservative rather than panicking mid-flight.
		e.haveRef = false
		return 0
	}
	copy(e.ref, x0)
	e.safeSteps = 0
	e.haveRef = true
	for e.st.Advance() {
		sl := e.st.SafeSlack(e.safe)
		if sl < 0 {
			return e.st.Step() - 1
		}
		e.slack[e.st.Step()] = sl
		e.safeSteps = e.st.Step()
	}
	return e.an.Horizon()
}

// FromLogger computes the deadline using the logger's latest trustworthy
// estimate for the given current window size (x̂_{t−w−1}, Sec. 3.3.1). ok is
// false when the logger cannot supply the trusted sample (e.g. nothing
// observed yet); callers should then fall back to the maximum deadline.
func (e *Estimator) FromLogger(log *logger.Logger, window int) (int, bool) {
	x0, ok := log.TrustedEstimate(window)
	if !ok {
		return e.MaxDeadline(), false
	}
	return e.FromState(x0), true
}
