// Package deadline implements the Detection Deadline Estimator (Sec. 3.3):
// each control step it selects the latest trustworthy state estimate
// x̂_{t−w_c−1} from the Data Logger — the newest sample that has moved
// outside the detection window and whose detection result is final — and
// searches forward with the precomputed reachability analysis for the last
// step t_d at which the over-approximated reachable set is still disjoint
// from the unsafe set. The search is capped at the maximum detection window
// w_m (Sec. 4.3), which is also the Analysis horizon.
package deadline

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/logger"
	"repro/internal/mat"
	"repro/internal/reach"
)

// Estimator computes detection deadlines on the fly.
type Estimator struct {
	an         *reach.Analysis
	safe       geom.Box
	initRadius float64
}

// New returns an estimator over the given reachability analysis and safe
// set. initRadius is the radius of the ball bounding estimate noise around
// the trusted initial state (Sec. 3.3.1); pass 0 for exact estimates.
func New(an *reach.Analysis, safe geom.Box, initRadius float64) (*Estimator, error) {
	if initRadius < 0 {
		return nil, fmt.Errorf("deadline: negative initial radius %v", initRadius)
	}
	return &Estimator{an: an, safe: safe, initRadius: initRadius}, nil
}

// Safe returns the safe state set.
func (e *Estimator) Safe() geom.Box { return e.safe }

// MaxDeadline returns the cap on reported deadlines (the analysis horizon,
// i.e. the maximum detection window w_m).
func (e *Estimator) MaxDeadline() int { return e.an.Horizon() }

// FromState computes the deadline starting from an explicit trusted state.
func (e *Estimator) FromState(x0 mat.Vec) int {
	return e.an.Deadline(x0, e.initRadius, e.safe)
}

// FromLogger computes the deadline using the logger's latest trustworthy
// estimate for the given current window size (x̂_{t−w−1}, Sec. 3.3.1). ok is
// false when the logger cannot supply the trusted sample (e.g. nothing
// observed yet); callers should then fall back to the maximum deadline.
func (e *Estimator) FromLogger(log *logger.Logger, window int) (int, bool) {
	x0, ok := log.TrustedEstimate(window)
	if !ok {
		return e.MaxDeadline(), false
	}
	return e.FromState(x0), true
}
