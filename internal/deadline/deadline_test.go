package deadline

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/logger"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/reach"
)

// Plant x' = x + u, u ∈ [-1, 1]: reach box from x0 is x0 ± t.
func fixture(t *testing.T, horizon int) (*lti.System, *reach.Analysis) {
	t.Helper()
	sys, err := lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(1)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	an, err := reach.New(sys, geom.UniformBox(1, -1, 1), 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return sys, an
}

func TestFromState(t *testing.T) {
	_, an := fixture(t, 20)
	est, err := New(an, geom.UniformBox(1, -10, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	// From x0 = 0, |x| can reach 10 at t = 10; first unsafe 11, deadline 10.
	if d := est.FromState(mat.VecOf(0)); d != 10 {
		t.Errorf("deadline = %d, want 10", d)
	}
	// From x0 = 8, first unsafe at 3 (reach 8±3 vs bound 10), deadline 2.
	if d := est.FromState(mat.VecOf(8)); d != 2 {
		t.Errorf("deadline = %d, want 2", d)
	}
}

func TestInitRadiusTightensDeadline(t *testing.T) {
	_, an := fixture(t, 20)
	exact, err := New(an, geom.UniformBox(1, -10, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := New(an, geom.UniformBox(1, -10, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	x0 := mat.VecOf(5)
	if dn, de := noisy.FromState(x0), exact.FromState(x0); dn >= de {
		t.Errorf("noisy deadline %d should be tighter than exact %d", dn, de)
	}
}

func TestNegativeRadiusRejected(t *testing.T) {
	_, an := fixture(t, 5)
	if _, err := New(an, geom.UniformBox(1, -1, 1), -0.1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestMaxDeadlineIsHorizon(t *testing.T) {
	_, an := fixture(t, 7)
	est, _ := New(an, geom.UniformBox(1, -100, 100), 0)
	if est.MaxDeadline() != 7 {
		t.Errorf("MaxDeadline = %d", est.MaxDeadline())
	}
	// Far from the bound, the deadline clamps at the horizon.
	if d := est.FromState(mat.VecOf(0)); d != 7 {
		t.Errorf("clamped deadline = %d, want 7", d)
	}
}

func TestFromLoggerUsesTrustedEstimate(t *testing.T) {
	sys, an := fixture(t, 20)
	est, _ := New(an, geom.UniformBox(1, -10, 10), 0)
	log := logger.New(sys, 20)
	// Steps 0..9 with estimate value = step index (driven by u = 1).
	for i := 0; i < 10; i++ {
		log.Observe(mat.VecOf(float64(i)), mat.VecOf(1))
	}
	// Current t = 9, window 3 → trusted estimate is x̂_5 = 5.
	d, ok := est.FromLogger(log, 3)
	if !ok {
		t.Fatal("FromLogger not ok")
	}
	if want := est.FromState(mat.VecOf(5)); d != want {
		t.Errorf("FromLogger = %d, want %d (deadline from x̂_5)", d, want)
	}
}

func TestFromLoggerEmptyFallsBack(t *testing.T) {
	sys, an := fixture(t, 12)
	est, _ := New(an, geom.UniformBox(1, -10, 10), 0)
	log := logger.New(sys, 12)
	d, ok := est.FromLogger(log, 3)
	if ok {
		t.Error("empty logger should report !ok")
	}
	if d != est.MaxDeadline() {
		t.Errorf("fallback deadline = %d, want max %d", d, est.MaxDeadline())
	}
}

func TestSafeAccessor(t *testing.T) {
	_, an := fixture(t, 5)
	safe := geom.UniformBox(1, -3, 3)
	est, _ := New(an, safe, 0)
	if est.Safe().Interval(0).Hi != 3 {
		t.Error("Safe accessor wrong")
	}
}

// Property: deadlines shrink monotonically as the trusted state approaches
// the unsafe boundary — the adaptation signal of the whole system.
func TestDeadlineMonotoneProperty(t *testing.T) {
	_, an := fixture(t, 40)
	est, _ := New(an, geom.UniformBox(1, -10, 10), 0.1)
	prev := est.FromState(mat.VecOf(0))
	for x := 0.5; x < 10; x += 0.5 {
		d := est.FromState(mat.VecOf(x))
		if d > prev {
			t.Fatalf("deadline grew from %d to %d as x moved to %v", prev, d, x)
		}
		prev = d
	}
}
