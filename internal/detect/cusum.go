package detect

import (
	"fmt"

	"repro/internal/mat"
)

// CUSUM is the classic cumulative-sum residual detector, included as the
// reference non-windowed baseline the paper's related work (Urbina et al.,
// Giraldo et al.) analyses. Per dimension i it maintains
//
//	S_i ← max(0, S_i + z_i − drift_i)
//
// and raises an alarm when any S_i exceeds its threshold. Unlike the window
// detector its detection delay is unbounded and state-dependent, which is
// exactly the property that makes it unable to honor a detection deadline —
// the ablation benchmarks quantify this.
type CUSUM struct {
	threshold mat.Vec
	drift     mat.Vec
	s         mat.Vec
	resetOn   bool
}

// NewCUSUM returns a CUSUM detector. threshold and drift are per-dimension;
// resetOnAlarm controls whether the statistic is cleared after an alarm
// (standard practice, keeps alarms from latching forever).
func NewCUSUM(threshold, drift mat.Vec, resetOnAlarm bool) *CUSUM {
	if len(threshold) != len(drift) {
		panic(fmt.Sprintf("detect: CUSUM threshold/drift dimension mismatch %d vs %d",
			len(threshold), len(drift)))
	}
	for i := range threshold {
		if threshold[i] <= 0 {
			panic(fmt.Sprintf("detect: CUSUM threshold %v in dimension %d must be positive", threshold[i], i))
		}
		if drift[i] < 0 {
			panic(fmt.Sprintf("detect: CUSUM drift %v in dimension %d must be non-negative", drift[i], i))
		}
	}
	return &CUSUM{
		threshold: threshold.Clone(),
		drift:     drift.Clone(),
		s:         mat.NewVec(len(threshold)),
		resetOn:   resetOnAlarm,
	}
}

// Update folds one residual vector into the statistic and reports whether an
// alarm fires. A residual of the wrong dimension is a configuration error
// and is returned, leaving the statistic untouched.
func (c *CUSUM) Update(residual mat.Vec) (bool, error) {
	if len(residual) != len(c.s) {
		return false, fmt.Errorf("detect: CUSUM residual dimension %d, want %d", len(residual), len(c.s))
	}
	alarm := false
	for i := range c.s {
		v := c.s[i] + residual[i] - c.drift[i]
		if v < 0 {
			v = 0
		}
		c.s[i] = v
		if v > c.threshold[i] {
			alarm = true
		}
	}
	if alarm && c.resetOn {
		c.Reset()
	}
	return alarm, nil
}

// Statistic returns a copy of the current per-dimension statistic.
func (c *CUSUM) Statistic() mat.Vec { return c.s.Clone() }

// Reset zeroes the statistic.
func (c *CUSUM) Reset() {
	for i := range c.s {
		c.s[i] = 0
	}
}
