package detect

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestEWMAConvergesToSustainedLevel(t *testing.T) {
	e := NewEWMA(0.2, mat.VecOf(0.9), false)
	alarmAt := -1
	for i := 0; i < 50; i++ {
		if must(e.Update(mat.VecOf(1))) && alarmAt < 0 {
			alarmAt = i
		}
	}
	// s approaches 1; crosses 0.9 when 1−0.8^{k+1} > 0.9, i.e. k+1 > 10.3.
	if alarmAt != 10 {
		t.Errorf("alarm at %d, want 10", alarmAt)
	}
	if math.Abs(e.Statistic()[0]-1) > 1e-3 {
		t.Errorf("statistic = %v, want ~1", e.Statistic()[0])
	}
}

func TestEWMASmoothsTransients(t *testing.T) {
	// A single spike of 3 with λ = 0.1 only moves the statistic to 0.3:
	// below a 0.5 threshold, unlike a window-0 comparison.
	e := NewEWMA(0.1, mat.VecOf(0.5), false)
	if must(e.Update(mat.VecOf(3))) {
		t.Error("single spike should be smoothed away")
	}
	if math.Abs(e.Statistic()[0]-0.3) > 1e-12 {
		t.Errorf("statistic = %v, want 0.3", e.Statistic()[0])
	}
}

func TestEWMALambdaOneIsInstantaneous(t *testing.T) {
	e := NewEWMA(1, mat.VecOf(0.5), false)
	if !must(e.Update(mat.VecOf(0.6))) {
		t.Error("λ=1 should behave like a window-0 detector")
	}
}

func TestEWMAResetOnAlarm(t *testing.T) {
	e := NewEWMA(1, mat.VecOf(0.5), true)
	must(e.Update(mat.VecOf(1)))
	if !mat.ApproxZero(e.Statistic()[0], 0) {
		t.Errorf("statistic after alarm = %v, want 0", e.Statistic()[0])
	}
}

func TestEWMAValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewEWMA(0, mat.VecOf(1), false) },
		func() { NewEWMA(1.1, mat.VecOf(1), false) },
		func() { NewEWMA(0.5, mat.Vec{}, false) },
		func() { NewEWMA(0.5, mat.VecOf(0), false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEWMAUpdateDimensionMismatchErrors(t *testing.T) {
	e := NewEWMA(0.5, mat.VecOf(1), false)
	if _, err := e.Update(mat.VecOf(1, 2)); err == nil {
		t.Fatal("expected dimension error")
	}
	if !mat.ApproxZero(e.Statistic()[0], 0) {
		t.Errorf("statistic after rejected update = %v, want 0", e.Statistic()[0])
	}
}
