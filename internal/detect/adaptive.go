package detect

import (
	"fmt"

	"repro/internal/logger"
	"repro/internal/mat"
)

// Adaptive is the Adaptive Detector of Sec. 4.2. Each control step the
// caller provides the detection deadline t_d computed by the Deadline
// Estimator; the detector sets its window to min(t_d, w_m) and runs the
// window rule, inserting the complementary detection pass whenever the
// window shrank since the previous step.
type Adaptive struct {
	win    *Window
	maxWin int
	prevW  int
	primed bool

	// SkipComplementary disables the complementary detection pass on window
	// shrink. It exists solely for the ablation study that demonstrates the
	// pass is load-bearing (attacked samples escape without it); production
	// use leaves it false.
	SkipComplementary bool
}

// NewAdaptive returns an adaptive detector with threshold τ and maximum
// window size w_m (Sec. 4.3).
func NewAdaptive(tau mat.Vec, maxWin int) *Adaptive {
	if maxWin < 1 {
		panic(fmt.Sprintf("detect: maximum window %d must be >= 1", maxWin))
	}
	return &Adaptive{win: NewWindow(tau), maxWin: maxWin}
}

// MaxWindow returns w_m.
func (a *Adaptive) MaxWindow() int { return a.maxWin }

// CurrentWindow returns the window size used on the most recent step (0
// before the first step).
func (a *Adaptive) CurrentWindow() int { return a.prevW }

// Reset clears the adaptation state for a fresh run.
func (a *Adaptive) Reset() {
	a.prevW = 0
	a.primed = false
	a.win.Reset()
}

// PrepareSlide primes the window rule's incremental sum for an upcoming
// Step(log, deadline) call with the same deadline: it applies the one-step
// slide for the primary check at the logger's current step, sized exactly
// as Step will size it (w_c = clamp(deadline, 0, w_m)). Decisions are
// bit-identical with or without the priming (see Window.PrepareSlide); the
// fleet engine calls it for a whole shard in one pass so the slide updates
// run back to back instead of interleaved with each stream's decide logic.
func (a *Adaptive) PrepareSlide(log *logger.Logger, deadline int) {
	t := log.Current()
	if t < 0 {
		return
	}
	wc := deadline
	if wc < 0 {
		wc = 0
	}
	if wc > a.maxWin {
		wc = a.maxWin
	}
	a.win.PrepareSlide(log, t, wc)
}

// Step runs one detection round at the logger's current step with the given
// detection deadline. The window becomes w_c = clamp(deadline, 0, w_m).
//
// Shrinking (w_c < w_p, Sec. 4.2.1): before the step-t check, the
// complementary pass re-runs the window rule with size w_c at every step
// s ∈ [t−w_p−1+w_c, t−1], so the samples that fell out of the window
// (t−w_p … t−w_c−1) are each still covered by some checked window.
//
// Growing (w_c > w_p, Sec. 4.2.2): no extra work — no sample escapes a
// window that got longer.
//
// Step returns ErrNoObservation when called before the logger has seen a
// sample, and a dimension error on residual/threshold mismatch; both are
// configuration faults the control loop should surface, not panic over.
func (a *Adaptive) Step(log *logger.Logger, deadline int) (Result, error) {
	t := log.Current()
	if t < 0 {
		return Result{}, ErrNoObservation
	}
	wc := deadline
	if wc < 0 {
		wc = 0
	}
	if wc > a.maxWin {
		wc = a.maxWin
	}

	res := Result{Step: t, Window: wc, ComplementaryStep: -1}

	if a.primed && wc < a.prevW && !a.SkipComplementary {
		from := t - a.prevW - 1 + wc
		if from < 0 {
			from = 0
		}
		for s := from; s <= t-1; s++ {
			dims, ok, err := a.win.CheckAtDims(log, s, wc)
			if err != nil {
				return Result{}, err
			}
			if ok && len(dims) > 0 {
				res.Complementary = true
				res.ComplementaryStep = s
				res.Dims = dims
				break
			}
		}
	}

	dims, ok, err := a.win.CheckAtDims(log, t, wc)
	if err != nil {
		return Result{}, err
	}
	if ok && len(dims) > 0 {
		res.Alarm = true
		if res.Dims == nil {
			res.Dims = dims
		}
	}

	a.prevW = wc
	a.primed = true
	return res, nil
}

// Fixed is the fixed-window baseline of the evaluation: the same window rule
// with a window size chosen once and never adapted.
type Fixed struct {
	win *Window
	w   int
}

// NewFixed returns a fixed-window detector with window size w.
func NewFixed(tau mat.Vec, w int) *Fixed {
	if w < 0 {
		panic(fmt.Sprintf("detect: negative fixed window %d", w))
	}
	return &Fixed{win: NewWindow(tau), w: w}
}

// WindowSize returns the fixed window size.
func (f *Fixed) WindowSize() int { return f.w }

// Step runs one detection round at the logger's current step. It returns
// ErrNoObservation before the first logged sample and dimension errors on
// residual/threshold mismatch.
func (f *Fixed) Step(log *logger.Logger) (Result, error) {
	t := log.Current()
	if t < 0 {
		return Result{}, ErrNoObservation
	}
	res := Result{Step: t, Window: f.w, ComplementaryStep: -1}
	dims, ok, err := f.win.CheckAtDims(log, t, f.w)
	if err != nil {
		return Result{}, err
	}
	if ok && len(dims) > 0 {
		res.Alarm = true
		res.Dims = dims
	}
	return res, nil
}

// PrepareSlide primes the window rule's incremental sum for an upcoming
// Step call — the fixed-window analogue of Adaptive.PrepareSlide.
func (f *Fixed) PrepareSlide(log *logger.Logger) {
	if t := log.Current(); t >= 0 {
		f.win.PrepareSlide(log, t, f.w)
	}
}

// Reset clears the window rule's incremental sum for a fresh run.
func (f *Fixed) Reset() { f.win.Reset() }
