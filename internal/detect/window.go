// Package detect implements the paper's attack detectors:
//
//   - the basic window-based detector of Sec. 4.1 (average residual in the
//     detection window compared per-dimension against threshold τ),
//   - the Adaptive Detector of Sec. 4.2, which re-sizes its window to the
//     detection deadline each step, running complementary detection when the
//     window shrinks so no sample escapes checking,
//   - a fixed-window baseline (the "Fixed" strategy of Table 2), and
//   - CUSUM and EWMA baselines (the classic stateful residual charts of
//     the physics-based detection literature, used for ablations).
//
// Window convention: following Sec. 4.1, a detection window of size w at
// step t covers the samples [t−w, t] — w+1 samples; the paper's average is
// taken over the samples in the window. A window of size 0 degenerates to
// checking just the current residual, the "alert every period" extreme the
// introduction discusses.
package detect

import (
	"errors"
	"fmt"

	"repro/internal/logger"
	"repro/internal/mat"
)

// ErrEmptyWindow reports a window rule evaluated over zero residuals.
var ErrEmptyWindow = errors.New("detect: empty residual window")

// ErrNoObservation reports a detector stepped before the logger observed
// any sample.
var ErrNoObservation = errors.New("detect: step before any logged observation")

// Window is the basic window-based detection rule of Sec. 4.1. It owns a
// reusable accumulator so the per-step CheckAtDims path does not allocate;
// a Window is therefore not safe for concurrent use (each detector owns
// its own, as the constructors arrange).
type Window struct {
	tau mat.Vec
	avg mat.Vec // scratch: windowed residual average

	// Incremental window-sum state (see CheckAtDims): the residual sum over
	// steps [sumFrom, sumStep], maintained across consecutive sliding checks
	// so the steady state touches two ring entries instead of re-reading the
	// whole window. sumValid gates it; sinceRefresh forces a periodic exact
	// recompute that bounds float drift.
	sum              mat.Vec
	sumFrom, sumStep int
	sumValid         bool
	sinceRefresh     int
}

// sumRefreshEvery caps the number of consecutive incremental window-sum
// updates before an exact recompute. Each increment adds two roundings, so
// the sum never drifts more than ~128 ulp-scale errors from the exact
// windowed sum — far below any meaningful threshold margin — while the
// amortized recompute cost stays negligible.
const sumRefreshEvery = 64

// NewWindow returns a detector with the per-dimension threshold τ.
func NewWindow(tau mat.Vec) *Window {
	if len(tau) == 0 {
		panic("detect: empty threshold vector")
	}
	for i, v := range tau {
		if v < 0 {
			panic(fmt.Sprintf("detect: negative threshold %v in dimension %d", v, i))
		}
	}
	// One backing slab for the three per-dimension vectors: the silent-step
	// threshold check reads tau and writes avg off the sum, so keeping them
	// on one or two cache lines (instead of three heap objects) matters when
	// thousands of detector windows are swept per tick.
	n := len(tau)
	slab := mat.NewVec(3 * n)
	w := &Window{tau: slab[0:n:n], avg: slab[n : 2*n : 2*n], sum: slab[2*n : 3*n : 3*n]}
	tau.CopyTo(w.tau)
	return w
}

// Reset discards the incremental window-sum state. Detectors call it when
// their run restarts, so a stale sum from the previous run can never be
// slid forward into the new one.
func (w *Window) Reset() { w.sumValid = false }

// Tau returns a copy of the threshold vector.
func (w *Window) Tau() mat.Vec { return w.tau.Clone() }

// Exceeds reports whether the average of the given residual vectors exceeds
// τ in at least one dimension. It returns ErrEmptyWindow on an empty window
// and a dimension error on mismatched residuals.
func (w *Window) Exceeds(residuals []mat.Vec) (bool, error) {
	dims, err := w.Exceeding(residuals)
	return len(dims) > 0, err
}

// Exceeding returns the indices of the dimensions whose average residual
// exceeds τ — the alarm attribution that tells an operator which sensors
// look compromised. Empty when no dimension fires.
func (w *Window) Exceeding(residuals []mat.Vec) ([]int, error) {
	avg, err := w.Average(residuals)
	if err != nil {
		return nil, err
	}
	var dims []int
	for i, a := range avg {
		if a > w.tau[i] {
			dims = append(dims, i)
		}
	}
	return dims, nil
}

// Average returns the element-wise mean of the residual vectors: the
// z_t^avg of Sec. 4.1. It returns ErrEmptyWindow on an empty window and a
// dimension error on residuals that do not match τ.
func (w *Window) Average(residuals []mat.Vec) (mat.Vec, error) {
	if len(residuals) == 0 {
		return nil, ErrEmptyWindow
	}
	n := len(w.tau)
	sum := mat.NewVec(n)
	for _, r := range residuals {
		if len(r) != n {
			return nil, fmt.Errorf("detect: residual dimension %d, want %d", len(r), n)
		}
		sum.AddInPlace(r)
	}
	return sum.Scale(1 / float64(len(residuals))), nil
}

// CheckAt runs the window rule at step s with window size win against the
// logger: it averages the residuals of steps [s−win, s] (clamped at 0) and
// compares against τ. ok is false when the logger no longer retains the
// needed samples; err reports residual/threshold dimension mismatches
// (a configuration error, not a data-availability condition).
func (w *Window) CheckAt(log *logger.Logger, s, win int) (alarm, ok bool, err error) {
	alarmDims, ok, err := w.CheckAtDims(log, s, win)
	return len(alarmDims) > 0, ok, err
}

// CheckAtDims is CheckAt with alarm attribution: the dimensions whose
// windowed average exceeded τ. A negative win clamps to 0 (the degenerate
// single-sample window), mirroring Adaptive.Step's deadline clamping.
//
// The windowed sum is maintained incrementally: when this check's window
// [from, s] is the previous check's window advanced by one step — slid (the
// silent steady state) or grown in place (the run-prefix ramp) — the sum is
// updated from the one or two ring entries that changed instead of the
// whole window (see trySlide). Any other shape (window resize,
// complementary checks at historical steps, run restart) recomputes the
// sum exactly, as does every sumRefreshEvery-th incremental update, which
// keeps the incremental sum within a hair of the exact one. Whether a given
// check updates incrementally or recomputes depends only on the sequence of
// (step, window) pairs — never on timing — so two detectors fed the same
// samples make bit-identical decisions regardless of which engine drives
// them.
//
// A silent check performs zero heap allocations; dims is only allocated
// when a dimension actually fires.
func (w *Window) CheckAtDims(log *logger.Logger, s, win int) (dims []int, ok bool, err error) {
	if win < 0 {
		win = 0
	}
	from := s - win
	if from < 0 {
		from = 0
	}
	if from > s {
		return nil, false, nil
	}
	n := len(w.tau)
	sum := w.sum
	if w.sumValid && s == w.sumStep && from == w.sumFrom {
		// The sum already covers exactly [from, s]: either PrepareSlide ran
		// ahead of this check (the fleet engine batches the slide updates of
		// a whole shard into one pass), or the same check is being repeated.
		// Thresholding the current sum is what the slide branch would have
		// produced, so prepared and unprepared call sequences stay
		// bit-identical.
		return w.threshold(s, from)
	}
	if w.trySlide(log, s, from) {
		return w.threshold(s, from)
	}
	// Exact recompute, walking the logger's ring segments directly: same
	// entries, same step-outer/dimension-inner summation order as summing
	// Entry by Entry, none of the per-step call overhead. Invalidate the
	// sum first so an early return can never leave a half-built sum marked
	// valid.
	w.sumValid = false
	for i := range sum {
		sum[i] = 0
	}
	seg1, seg2, retained := log.EntryRange(from, s)
	if !retained {
		return nil, false, nil
	}
	for _, seg := range [2][]logger.Entry{seg1, seg2} {
		for k := range seg {
			r := seg[k].Residual
			if len(r) != n {
				return nil, false, fmt.Errorf("detect: residual dimension %d, want %d", len(r), n)
			}
			for i, v := range r {
				sum[i] += v
			}
		}
	}
	w.sumFrom, w.sumStep = from, s
	w.sumValid = true
	w.sinceRefresh = 0
	return w.threshold(s, from)
}

// trySlide applies the incremental one-step update when the window
// [from, s] is the previous sum's window advanced by one step and the
// refresh budget has room. Two shapes qualify: the steady slide (both ends
// advanced — the sum gains the entering residual at s and loses the leaving
// one at from−1, touching two ring entries instead of the whole window) and
// the ramp growth (start pinned, only the end advanced — the run prefix
// before step w_m, where the window still covers the whole history; the sum
// just gains the entering residual). A grown sum is even bitwise equal to
// the exact recompute whenever the previous sum was one, since appending
// one term to a left-to-right accumulation is the same operation sequence.
// The leaving step from−1 = s−win−1 ≥ t−w_m−1 is always still retained (the
// logger's ring is sized exactly so it is); the lookups only miss on a
// logic bug upstream, and then the caller just falls back to the exact
// recompute.
func (w *Window) trySlide(log *logger.Logger, s, from int) bool {
	if !(w.sumValid && s == w.sumStep+1 && w.sinceRefresh < sumRefreshEvery) {
		return false
	}
	if from != w.sumFrom && from != w.sumFrom+1 {
		return false
	}
	n := len(w.tau)
	eNew, okN := log.Entry(s)
	if !okN || len(eNew.Residual) != n {
		return false
	}
	rn := eNew.Residual
	sum := w.sum
	if from == w.sumFrom {
		for i := range sum {
			sum[i] += rn[i]
		}
	} else {
		eOld, okO := log.Entry(from - 1)
		if !okO || len(eOld.Residual) != n {
			return false
		}
		ro := eOld.Residual
		for i := range sum {
			sum[i] += rn[i] - ro[i]
		}
	}
	w.sumFrom, w.sumStep = from, s
	w.sinceRefresh++
	return true
}

// PrepareSlide advances the incremental window sum for an upcoming
// CheckAtDims(log, s, win) call when that check is the previous one slid
// forward by one step — exactly the branch CheckAtDims itself would take.
// The fleet engine batches these two-entry updates for a whole shard into
// one tight pass ahead of the decision loop, so the memory-bound part of
// the window rule runs with high memory-level parallelism instead of being
// buried inside each stream's branchy decide path. The subsequent
// CheckAtDims finds the sum already current and goes straight to the
// threshold; final window-sum state and decisions are bit-identical whether
// or not the slide was prepared (a prepared slide that the step's check
// sequence then invalidates — e.g. a shrink-time complementary recompute —
// is simply overwritten, exactly as the unprepared path would have).
// It reports whether the slide applied.
func (w *Window) PrepareSlide(log *logger.Logger, s, win int) bool {
	if win < 0 {
		win = 0
	}
	from := s - win
	if from < 0 {
		from = 0
	}
	if from > s || (w.sumValid && s == w.sumStep && from == w.sumFrom) {
		return false
	}
	return w.trySlide(log, s, from)
}

// threshold derives the windowed average from the current sum and compares
// it against τ, allocating dims only on an exceedance.
func (w *Window) threshold(s, from int) (dims []int, ok bool, err error) {
	inv := 1 / float64(s-from+1)
	avg, tau := w.avg, w.tau
	for i := range avg {
		avg[i] = w.sum[i] * inv
		if avg[i] > tau[i] {
			dims = append(dims, i)
		}
	}
	return dims, true, nil
}

// Result is the outcome of one detector step.
type Result struct {
	Step   int  // control step the result refers to
	Window int  // detection window size used at this step
	Alarm  bool // alarm raised for the window ending at Step
	// Complementary reports an alarm raised by the complementary detection
	// pass of Sec. 4.2.1 (only the adaptive detector sets it). The alarm is
	// attributed to a historical step that escaped the shrinking window.
	Complementary bool
	// ComplementaryStep is the historical step the complementary alarm fired
	// at; -1 when Complementary is false.
	ComplementaryStep int
	// Dims lists the residual dimensions whose windowed average exceeded τ
	// for the firing check (primary or complementary) — the alarm
	// attribution pointing at the suspect sensors. Nil when nothing fired.
	Dims []int
}

// Alarmed reports whether either the primary or the complementary check
// fired.
func (r Result) Alarmed() bool { return r.Alarm || r.Complementary }
