package detect

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/logger"
	"repro/internal/lti"
	"repro/internal/mat"
)

// must unwraps a (value, error) pair from a call the test knows is valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// identity plant x' = x: residual_t = |est_t − est_{t−1}|.
func newLog(t *testing.T, wm int) *logger.Logger {
	t.Helper()
	sys, err := lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(0)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return logger.New(sys, wm)
}

// feed appends observations so the logged residuals equal rs (the first
// logged step always has residual 0; rs applies to subsequent steps).
func feed(l *logger.Logger, rs ...float64) {
	cur := 0.0
	if l.Current() < 0 {
		must(l.Observe(mat.VecOf(0), mat.VecOf(0)))
	} else {
		e, _ := l.Entry(l.Current())
		cur = e.Estimate[0]
	}
	for _, r := range rs {
		cur += r
		must(l.Observe(mat.VecOf(cur), mat.VecOf(0)))
	}
}

func TestWindowAverage(t *testing.T) {
	w := NewWindow(mat.VecOf(1))
	avg := must(w.Average([]mat.Vec{{1}, {2}, {3}}))
	if math.Abs(avg[0]-2) > 1e-12 {
		t.Errorf("Average = %v, want 2", avg[0])
	}
}

func TestWindowExceedsPerDimension(t *testing.T) {
	w := NewWindow(mat.VecOf(1, 0.1))
	// Dim 0 below threshold, dim 1 above.
	if !must(w.Exceeds([]mat.Vec{{0.5, 0.2}})) {
		t.Error("should alarm on dim 1")
	}
	if must(w.Exceeds([]mat.Vec{{0.5, 0.05}})) {
		t.Error("should not alarm below both thresholds")
	}
	// Exactly at threshold: no alarm (strict inequality).
	if must(w.Exceeds([]mat.Vec{{1, 0.1}})) {
		t.Error("boundary value should not alarm")
	}
}

func TestWindowConstructorValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewWindow(mat.Vec{}) },
		func() { NewWindow(mat.VecOf(-0.1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestWindowRuntimeErrors(t *testing.T) {
	w := NewWindow(mat.VecOf(1))
	if _, err := w.Average(nil); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("Average(nil) err = %v, want ErrEmptyWindow", err)
	}
	if _, err := w.Exceeds(nil); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("Exceeds(nil) err = %v, want ErrEmptyWindow", err)
	}
	if _, err := w.Exceeds([]mat.Vec{{1, 2}}); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Errorf("dimension mismatch err = %v, want dimension error", err)
	}
}

func TestCheckAtDimensionMismatchSurfacesError(t *testing.T) {
	l := newLog(t, 10)
	feed(l, 1)
	// Logger residuals are 1-dimensional; a 2-dimensional threshold is a
	// configuration fault that must surface as err, not panic or !ok.
	w := NewWindow(mat.VecOf(1, 1))
	if _, ok, err := w.CheckAt(l, l.Current(), 0); err == nil || ok {
		t.Errorf("CheckAt mismatched dims: ok=%v err=%v, want error", ok, err)
	}
}

func TestCheckAtNegativeWindowClamps(t *testing.T) {
	l := newLog(t, 10)
	feed(l, 5) // residuals: step0=0, step1=5
	w := NewWindow(mat.VecOf(1))
	// A negative window clamps to the degenerate single-sample window,
	// mirroring Adaptive.Step's deadline clamping.
	alarm, ok, err := w.CheckAt(l, 1, -3)
	if err != nil || !ok || !alarm {
		t.Errorf("CheckAt(-3) = alarm=%v ok=%v err=%v, want single-sample alarm", alarm, ok, err)
	}
}

func TestCheckAtWindowClamping(t *testing.T) {
	l := newLog(t, 10)
	feed(l, 5, 5) // residuals: step0=0, step1=5, step2=5
	w := NewWindow(mat.VecOf(1))
	// Window 10 at step 2 clamps to [0,2]: avg = 10/3 > 1 => alarm.
	alarm, ok, err := w.CheckAt(l, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !alarm {
		t.Errorf("CheckAt clamped = %v ok=%v", alarm, ok)
	}
}

func TestCheckAtMissingData(t *testing.T) {
	l := newLog(t, 2)
	feed(l, 1, 1, 1, 1, 1, 1, 1, 1) // long run: early entries released
	w := NewWindow(mat.VecOf(10))
	if _, ok, err := w.CheckAt(l, 0, 0); ok || err != nil {
		t.Errorf("released step: ok=%v err=%v, want !ok", ok, err)
	}
	if _, ok, err := w.CheckAt(l, l.Current()+1, 0); ok || err != nil {
		t.Errorf("future step: ok=%v err=%v, want !ok", ok, err)
	}
}

func TestAdaptiveBasicAlarm(t *testing.T) {
	l := newLog(t, 10)
	a := NewAdaptive(mat.VecOf(0.5), 10)
	feed(l) // step 0, residual 0
	res := must(a.Step(l, 5))
	if res.Alarm || res.Window != 5 {
		t.Errorf("clean step: %+v", res)
	}
	feed(l, 3) // step 1, residual 3
	res = must(a.Step(l, 0))
	// Window 0: avg = residual at step 1 = 3 > 0.5.
	if !res.Alarm {
		t.Errorf("attacked step: %+v", res)
	}
}

func TestAdaptiveWindowClampsToDeadline(t *testing.T) {
	l := newLog(t, 8)
	a := NewAdaptive(mat.VecOf(1), 8)
	feed(l)
	if res := must(a.Step(l, 100)); res.Window != 8 {
		t.Errorf("window = %d, want clamped 8", res.Window)
	}
	feed(l, 0)
	if res := must(a.Step(l, -3)); res.Window != 0 {
		t.Errorf("window = %d, want clamped 0", res.Window)
	}
}

func TestAdaptiveShrinkTriggersComplementary(t *testing.T) {
	// A burst of large residuals sits inside a large window where dilution
	// keeps the average below τ. When the window shrinks, the complementary
	// pass re-checks the escaped region with the smaller window and fires.
	l := newLog(t, 20)
	a := NewAdaptive(mat.VecOf(0.9), 20)

	// Steps 0..5 clean.
	feed(l, 0, 0, 0, 0, 0)
	must(a.Step(l, 20)) // w_p = 20
	// Steps 6,7: residual 4 each (attack burst), then steps 8..12 clean.
	feed(l, 4, 4, -0, 0, 0, 0, 0)
	res := must(a.Step(l, 20)) // large window: avg = 8/13 < 0.9 -> no alarm
	if res.Alarmed() {
		t.Fatalf("diluted window should not alarm: %+v", res)
	}
	// Deadline collapses to 2: window shrinks 20 -> 2. The burst at steps
	// 6-7 escaped the new window [11,13]; complementary detection must
	// catch it: e.g. window [5,7] has avg 8/3 > 0.9.
	feed(l, 0)
	res = must(a.Step(l, 2))
	if !res.Complementary {
		t.Fatalf("complementary detection missed escaped burst: %+v", res)
	}
	if res.ComplementaryStep < 5 || res.ComplementaryStep > 9 {
		t.Errorf("complementary step = %d, want near the burst", res.ComplementaryStep)
	}
}

func TestAdaptiveShrinkWithoutComplementaryWouldMiss(t *testing.T) {
	// Control experiment for the test above: the primary check alone (same
	// shrink, no complementary pass) does not alarm — proving the
	// complementary pass is load-bearing.
	l := newLog(t, 20)
	feed(l, 0, 0, 0, 0, 0, 4, 4, 0, 0, 0, 0, 0, 0)
	w := NewWindow(mat.VecOf(0.9))
	alarm, ok, err := w.CheckAt(l, l.Current(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("window data missing")
	}
	if alarm {
		t.Error("primary check alone should not alarm (burst escaped)")
	}
}

func TestAdaptiveGrowNoComplementary(t *testing.T) {
	l := newLog(t, 20)
	a := NewAdaptive(mat.VecOf(0.5), 20)
	feed(l, 4, 4) // hot residuals
	must(a.Step(l, 1))
	feed(l, 0)
	res := must(a.Step(l, 10)) // grow 1 -> 10
	if res.Complementary {
		t.Errorf("growing window must not run complementary detection: %+v", res)
	}
}

func TestAdaptiveFirstStepNoComplementary(t *testing.T) {
	l := newLog(t, 10)
	a := NewAdaptive(mat.VecOf(0.5), 10)
	feed(l, 4, 4, 4)
	// First ever Step with small window — prevW is unprimed; must not treat
	// it as a shrink from 0.
	res := must(a.Step(l, 1))
	if res.Complementary {
		t.Errorf("unprimed detector ran complementary pass: %+v", res)
	}
}

func TestAdaptiveReset(t *testing.T) {
	l := newLog(t, 10)
	a := NewAdaptive(mat.VecOf(0.5), 10)
	feed(l)
	must(a.Step(l, 10))
	a.Reset()
	if a.CurrentWindow() != 0 {
		t.Error("Reset did not clear window")
	}
	feed(l, 4)
	res := must(a.Step(l, 1))
	if res.Complementary {
		t.Error("post-reset step ran complementary pass")
	}
}

func TestAdaptiveStepBeforeObservationErrors(t *testing.T) {
	l := newLog(t, 10)
	a := NewAdaptive(mat.VecOf(1), 10)
	if _, err := a.Step(l, 5); !errors.Is(err, ErrNoObservation) {
		t.Fatalf("err = %v, want ErrNoObservation", err)
	}
}

func TestAdaptiveBadMaxWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptive(mat.VecOf(1), 0)
}

func TestFixedDetector(t *testing.T) {
	l := newLog(t, 10)
	f := NewFixed(mat.VecOf(1), 3)
	feed(l, 2, 2, 2, 2)
	res := must(f.Step(l))
	if !res.Alarm || res.Window != 3 {
		t.Errorf("fixed detector: %+v", res)
	}
	if f.WindowSize() != 3 {
		t.Error("WindowSize")
	}
	f.Reset() // no-op, must not panic
}

func TestFixedDilutionDelaysDetection(t *testing.T) {
	// The fixed large window needs several attacked samples before the
	// average crosses τ — the delay/usability trade-off of Sec. 4.1.
	sysLog := func() *logger.Logger { l := newLog(t, 30); feed(l, 0, 0, 0, 0, 0, 0, 0, 0, 0); return l }

	small := NewFixed(mat.VecOf(0.9), 0)
	big := NewFixed(mat.VecOf(0.9), 9)

	stepsToAlarm := func(f *Fixed) int {
		l := sysLog()
		for k := 1; k <= 20; k++ {
			feed(l, 4) // sustained attack residual
			if must(f.Step(l)).Alarm {
				return k
			}
		}
		return 21
	}
	ds, db := stepsToAlarm(small), stepsToAlarm(big)
	if ds >= db {
		t.Errorf("small window delay %d should beat big window delay %d", ds, db)
	}
	if ds != 1 {
		t.Errorf("window-0 detector should fire on the first attacked step, took %d", ds)
	}
}

func TestFixedStepBeforeObservationErrors(t *testing.T) {
	l := newLog(t, 10)
	f := NewFixed(mat.VecOf(1), 2)
	if _, err := f.Step(l); !errors.Is(err, ErrNoObservation) {
		t.Fatalf("err = %v, want ErrNoObservation", err)
	}
}

func TestFixedNegativeWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFixed(mat.VecOf(1), -1)
}

func TestResultAlarmed(t *testing.T) {
	if (Result{}).Alarmed() {
		t.Error("empty result alarmed")
	}
	if !(Result{Alarm: true}).Alarmed() || !(Result{Complementary: true}).Alarmed() {
		t.Error("Alarmed misses set flags")
	}
}

func TestCUSUMDetectsSustainedShift(t *testing.T) {
	c := NewCUSUM(mat.VecOf(2), mat.VecOf(0.5), false)
	alarmAt := -1
	for i := 0; i < 10; i++ {
		if must(c.Update(mat.VecOf(1.0))) && alarmAt < 0 {
			alarmAt = i
		}
	}
	// S grows by 0.5 per step; crosses 2 strictly after step 4.
	if alarmAt != 4 {
		t.Errorf("CUSUM alarm at %d, want 4", alarmAt)
	}
}

func TestCUSUMDriftSuppressesNoise(t *testing.T) {
	c := NewCUSUM(mat.VecOf(2), mat.VecOf(0.5), false)
	for i := 0; i < 1000; i++ {
		if must(c.Update(mat.VecOf(0.4))) { // below drift: statistic pinned at 0
			t.Fatal("CUSUM alarmed on sub-drift residuals")
		}
	}
	if !mat.ApproxZero(c.Statistic()[0], 0) {
		t.Errorf("statistic = %v, want 0", c.Statistic()[0])
	}
}

func TestCUSUMResetOnAlarm(t *testing.T) {
	c := NewCUSUM(mat.VecOf(1), mat.VecOf(0), true)
	must(c.Update(mat.VecOf(2))) // alarm, then reset
	if !mat.ApproxZero(c.Statistic()[0], 0) {
		t.Errorf("statistic after alarm = %v, want 0", c.Statistic()[0])
	}
}

func TestCUSUMValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewCUSUM(mat.VecOf(1), mat.VecOf(0, 0), false) },
		func() { NewCUSUM(mat.VecOf(0), mat.VecOf(0), false) },
		func() { NewCUSUM(mat.VecOf(1), mat.VecOf(-1), false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCUSUMUpdateDimensionMismatchErrors(t *testing.T) {
	c := NewCUSUM(mat.VecOf(1), mat.VecOf(0), false)
	if _, err := c.Update(mat.VecOf(1, 2)); err == nil {
		t.Fatal("expected dimension error")
	}
	// The statistic must be untouched by a rejected update.
	if !mat.ApproxZero(c.Statistic()[0], 0) {
		t.Errorf("statistic after rejected update = %v, want 0", c.Statistic()[0])
	}
}

func TestExceedingAttribution(t *testing.T) {
	w := NewWindow(mat.VecOf(1, 0.1, 5))
	dims := must(w.Exceeding([]mat.Vec{{2, 0.05, 1}}))
	if len(dims) != 1 || dims[0] != 0 {
		t.Errorf("dims = %v, want [0]", dims)
	}
	dims = must(w.Exceeding([]mat.Vec{{2, 0.2, 9}}))
	if len(dims) != 3 {
		t.Errorf("dims = %v, want all three", dims)
	}
	if dims := must(w.Exceeding([]mat.Vec{{0, 0, 0}})); dims != nil {
		t.Errorf("clean dims = %v, want nil", dims)
	}
}

func TestResultCarriesDims(t *testing.T) {
	l := newLog(t, 10)
	a := NewAdaptive(mat.VecOf(0.5), 10)
	feed(l, 3)
	res := must(a.Step(l, 0))
	if !res.Alarm || len(res.Dims) != 1 || res.Dims[0] != 0 {
		t.Errorf("adaptive dims = %+v", res)
	}
	f := NewFixed(mat.VecOf(0.5), 0)
	resF := must(f.Step(l))
	if !resF.Alarm || len(resF.Dims) != 1 {
		t.Errorf("fixed dims = %+v", resF)
	}
}
