package detect

import (
	"testing"

	"repro/internal/logger"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/noise"
)

// These tests fuzz the adaptive window-adjustment protocol (Sec. 4.2) with
// random deadline schedules and adversarially-placed anomalies, checking
// the protocol's load-bearing guarantee: "there will be no data that can
// escape from the current shorter detection window without checking".
//
// Construction: one anomalous residual of magnitude M tuned to be visible
// only to windows of size <= wSmall (diluted below τ by anything larger).
// An oracle derived from the protocol's specification decides whether the
// schedule ever checks the anomaly with a small-enough window:
//
//   - primary check at step t with window w covers steps [t−w, t];
//   - on a shrink from w_p to w_c at step t, the complementary pass covers
//     steps [t−w_p−1, t−1] with window w_c.
//
// Whenever the oracle says "covered at visible size", the detector MUST
// have alarmed. (The converse is not asserted: a window of size w > wSmall
// ending exactly at the burst can still alarm marginally.)

const (
	fuzzWM     = 16
	fuzzTau    = 1.0
	fuzzSmall  = 3 // burst visible only to windows of size <= fuzzSmall
	fuzzSteps  = 120
	fuzzMagTau = 1.5 // M = τ (fuzzSmall + fuzzMagTau)
)

// fuzzRun drives one schedule; it reports whether any alarm fired and
// whether the oracle says the burst must have been caught.
func fuzzRun(t *testing.T, seed uint64, skipComplementary bool) (fired, mustCatch bool) {
	t.Helper()
	sys, err := lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(0)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := noise.NewSource(seed)
	log := logger.New(sys, fuzzWM)
	a := NewAdaptive(mat.VecOf(fuzzTau), fuzzWM)
	a.SkipComplementary = skipComplementary

	burstStep := 20 + src.Intn(40)
	m := fuzzTau * (fuzzSmall + fuzzMagTau)

	cur := 0.0
	window := fuzzWM
	prevW := -1
	for tt := 0; tt < fuzzSteps; tt++ {
		delta := 0.0
		if tt == burstStep {
			delta = m
		}
		cur += delta
		must(log.Observe(mat.VecOf(cur), mat.VecOf(0)))

		// Random-walk deadline schedule; free to collapse any time.
		window += src.Intn(7) - 3
		if window < 0 {
			window = 0
		}
		if window > fuzzWM {
			window = fuzzWM
		}

		// Oracle: does this step's checking cover the burst at visible size?
		if window <= fuzzSmall && tt-window <= burstStep && burstStep <= tt {
			mustCatch = true // primary check sees it undiluted enough
		}
		if !skipComplementary && prevW >= 0 && window < prevW && window <= fuzzSmall &&
			tt-prevW-1 <= burstStep && burstStep <= tt-1 {
			mustCatch = true // complementary pass re-checks the escape region
		}

		res := must(a.Step(log, window))
		if res.Alarmed() {
			fired = true
		}
		prevW = window
	}
	return fired, mustCatch
}

func TestFuzzNoEscapeWithComplementary(t *testing.T) {
	coveredTrials := 0
	for seed := uint64(0); seed < 400; seed++ {
		fired, mustCatch := fuzzRun(t, seed, false)
		if !mustCatch {
			continue
		}
		coveredTrials++
		if !fired {
			t.Errorf("seed %d: oracle-covered burst escaped detection", seed)
		}
	}
	if coveredTrials < 50 {
		t.Fatalf("only %d trials exercised coverage; fuzz schedule too tame", coveredTrials)
	}
}

func TestFuzzSkipVariantHonorsItsOwnOracle(t *testing.T) {
	// Even without the complementary pass, a primary check at visible size
	// must fire — the ablation removes re-checks, not the basic rule.
	covered := 0
	for seed := uint64(0); seed < 400; seed++ {
		fired, mustCatch := fuzzRun(t, seed, true)
		if !mustCatch {
			continue
		}
		covered++
		if !fired {
			t.Errorf("seed %d: primary-covered burst escaped the skip variant", seed)
		}
	}
	if covered < 20 {
		t.Fatalf("only %d primary-covered trials; schedule too tame", covered)
	}
}

func TestFuzzComplementaryDominatesSkipVariant(t *testing.T) {
	// The skip variant must never alarm on a schedule where the full
	// protocol stays silent (the complementary pass only ADDS checks), and
	// there must exist schedules where only the full protocol fires.
	onlyComplementary := 0
	for seed := uint64(0); seed < 400; seed++ {
		full, _ := fuzzRun(t, seed, false)
		skip, _ := fuzzRun(t, seed, true)
		if skip && !full {
			t.Errorf("seed %d: skip variant alarmed but full protocol did not", seed)
		}
		if full && !skip {
			onlyComplementary++
		}
	}
	if onlyComplementary == 0 {
		t.Error("fuzz corpus never exhibited a complementary-only detection; ablation has no teeth")
	}
}

func TestFuzzCleanRunsNeverAlarm(t *testing.T) {
	// Zero residuals under arbitrary window schedules must never alarm —
	// neither the primary nor the complementary pass can fire on silence.
	sys, err := lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(0)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 100; seed++ {
		src := noise.NewSource(seed)
		log := logger.New(sys, 12)
		a := NewAdaptive(mat.VecOf(0.1), 12)
		for tt := 0; tt < 80; tt++ {
			must(log.Observe(mat.VecOf(5), mat.VecOf(0))) // constant: residual 0
			if res := must(a.Step(log, src.Intn(13))); res.Alarmed() {
				t.Fatalf("seed %d step %d: alarm on zero residuals: %+v", seed, tt, res)
			}
		}
	}
}

func TestFuzzWindowNeverExceedsBounds(t *testing.T) {
	// The used window must always be clamp(deadline, 0, w_m) regardless of
	// the schedule.
	sys, err := lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(0)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	const wm = 9
	for seed := uint64(0); seed < 50; seed++ {
		src := noise.NewSource(seed)
		log := logger.New(sys, wm)
		a := NewAdaptive(mat.VecOf(1), wm)
		for tt := 0; tt < 60; tt++ {
			must(log.Observe(mat.VecOf(0), mat.VecOf(0)))
			deadline := src.Intn(25) - 5 // includes out-of-range values
			res := must(a.Step(log, deadline))
			want := deadline
			if want < 0 {
				want = 0
			}
			if want > wm {
				want = wm
			}
			if res.Window != want {
				t.Fatalf("seed %d: window %d for deadline %d, want %d", seed, res.Window, deadline, want)
			}
		}
	}
}

// FuzzNoEscape is the native-fuzzing entry to the same oracle the seeded
// tests above use: for any schedule seed and ablation choice, an
// oracle-covered burst must alarm, and the skip variant must never
// out-detect the full protocol on the same schedule.
func FuzzNoEscape(f *testing.F) {
	f.Add(uint64(0), false)
	f.Add(uint64(1), true)
	f.Add(uint64(42), false)
	f.Fuzz(func(t *testing.T, seed uint64, skip bool) {
		fired, mustCatch := fuzzRun(t, seed, skip)
		if mustCatch && !fired {
			t.Fatalf("seed %d skip=%v: oracle-covered burst escaped detection", seed, skip)
		}
		if skip && fired {
			full, _ := fuzzRun(t, seed, false)
			if !full {
				t.Fatalf("seed %d: skip variant alarmed but full protocol did not", seed)
			}
		}
	})
}
