package detect

import (
	"fmt"

	"repro/internal/state"
)

// Component versions for the detect package's snapshot layouts.
const (
	windowStateVersion   = 1
	adaptiveStateVersion = 1
	fixedStateVersion    = 1
	cusumStateVersion    = 1
	ewmaStateVersion     = 1
)

// Snapshot encodes the window rule's incremental-sum state. The sum is
// state, not cache: a recompute from the ring would be exact while the
// live sum carries up to sumRefreshEvery incremental roundings, so
// dropping it across a restore could flip an ulp-borderline threshold
// comparison and break decision bit-identity. Serializing the sum (plus
// its validity window and refresh phase) makes the restored detector
// continue the exact float trajectory of the original.
func (w *Window) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagWindow, windowStateVersion)
	enc.Int(len(w.tau))
	enc.Bool(w.sumValid)
	enc.Int(w.sumFrom)
	enc.Int(w.sumStep)
	enc.Int(w.sinceRefresh)
	enc.F64s(w.sum)
}

// Restore replaces the window rule's incremental-sum state from a snapshot
// of an identically configured detector (same threshold dimension).
func (w *Window) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagWindow, windowStateVersion)
	n := dec.Int()
	sumValid := dec.Bool()
	sumFrom := dec.Int()
	sumStep := dec.Int()
	sinceRefresh := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(w.tau) {
		return fmt.Errorf("detect: snapshot window dimension %d, want %d", n, len(w.tau))
	}
	dec.F64s(w.sum)
	if err := dec.Err(); err != nil {
		return err
	}
	if sinceRefresh < 0 || sinceRefresh > sumRefreshEvery {
		return fmt.Errorf("detect: snapshot refresh phase %d outside [0, %d]", sinceRefresh, sumRefreshEvery)
	}
	w.sumValid = sumValid
	w.sumFrom = sumFrom
	w.sumStep = sumStep
	w.sinceRefresh = sinceRefresh
	return nil
}

// Snapshot encodes the adaptive detector's state: the previous window size
// (which gates the complementary pass), the primed flag, and the window
// rule's incremental sum.
func (a *Adaptive) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagAdaptive, adaptiveStateVersion)
	enc.Int(a.maxWin)
	enc.Int(a.prevW)
	enc.Bool(a.primed)
	a.win.Snapshot(enc)
}

// Restore replaces the adaptive detector's state from a snapshot of an
// identically configured detector (same maximum window and threshold
// dimension).
func (a *Adaptive) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagAdaptive, adaptiveStateVersion)
	maxWin := dec.Int()
	prevW := dec.Int()
	primed := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if maxWin != a.maxWin {
		return fmt.Errorf("detect: snapshot max window %d, want %d", maxWin, a.maxWin)
	}
	if prevW < 0 || prevW > maxWin {
		return fmt.Errorf("detect: snapshot window %d outside [0, %d]", prevW, maxWin)
	}
	if err := a.win.Restore(dec); err != nil {
		return err
	}
	a.prevW = prevW
	a.primed = primed
	return nil
}

// Snapshot encodes the fixed-window baseline's state (the window rule's
// incremental sum; the window size itself is configuration and is recorded
// only for validation).
func (f *Fixed) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagFixed, fixedStateVersion)
	enc.Int(f.w)
	f.win.Snapshot(enc)
}

// Restore replaces the fixed-window baseline's state from a snapshot of an
// identically configured detector.
func (f *Fixed) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagFixed, fixedStateVersion)
	w := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if w != f.w {
		return fmt.Errorf("detect: snapshot fixed window %d, want %d", w, f.w)
	}
	return f.win.Restore(dec)
}

// Snapshot encodes the CUSUM statistic.
func (c *CUSUM) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagCUSUM, cusumStateVersion)
	enc.F64s(c.s)
}

// Restore replaces the CUSUM statistic from a snapshot of an identically
// configured detector (same dimension).
func (c *CUSUM) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagCUSUM, cusumStateVersion)
	dec.F64s(c.s)
	return dec.Err()
}

// Snapshot encodes the EWMA statistic.
func (e *EWMA) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagEWMA, ewmaStateVersion)
	enc.F64s(e.s)
}

// Restore replaces the EWMA statistic from a snapshot of an identically
// configured detector (same dimension).
func (e *EWMA) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagEWMA, ewmaStateVersion)
	dec.F64s(e.s)
	return dec.Err()
}
