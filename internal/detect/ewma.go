package detect

import (
	"fmt"

	"repro/internal/mat"
)

// EWMA is the exponentially-weighted moving-average residual detector —
// with CUSUM, the other stateful chart the physics-based detection survey
// the paper cites (Giraldo et al.) analyses. Per dimension it maintains
//
//	s_i ← (1−λ) s_i + λ z_i
//
// and alarms when any s_i exceeds its threshold. Its effective memory
// 1/λ plays the role of a window size, but — like CUSUM — it is fixed at
// design time and cannot follow a varying detection deadline.
type EWMA struct {
	lambda    float64
	threshold mat.Vec
	s         mat.Vec
	resetOn   bool
}

// NewEWMA returns an EWMA detector with smoothing factor λ ∈ (0, 1] and
// per-dimension alarm thresholds.
func NewEWMA(lambda float64, threshold mat.Vec, resetOnAlarm bool) *EWMA {
	if lambda <= 0 || lambda > 1 {
		panic(fmt.Sprintf("detect: EWMA lambda %v outside (0, 1]", lambda))
	}
	if len(threshold) == 0 {
		panic("detect: empty EWMA threshold")
	}
	for i, v := range threshold {
		if v <= 0 {
			panic(fmt.Sprintf("detect: EWMA threshold %v in dimension %d must be positive", v, i))
		}
	}
	return &EWMA{
		lambda:    lambda,
		threshold: threshold.Clone(),
		s:         mat.NewVec(len(threshold)),
		resetOn:   resetOnAlarm,
	}
}

// Update folds one residual into the statistic and reports an alarm. A
// residual of the wrong dimension is a configuration error and is
// returned, leaving the statistic untouched.
func (e *EWMA) Update(residual mat.Vec) (bool, error) {
	if len(residual) != len(e.s) {
		return false, fmt.Errorf("detect: EWMA residual dimension %d, want %d", len(residual), len(e.s))
	}
	alarm := false
	for i := range e.s {
		e.s[i] = (1-e.lambda)*e.s[i] + e.lambda*residual[i]
		if e.s[i] > e.threshold[i] {
			alarm = true
		}
	}
	if alarm && e.resetOn {
		e.Reset()
	}
	return alarm, nil
}

// Statistic returns a copy of the smoothed per-dimension statistic.
func (e *EWMA) Statistic() mat.Vec { return e.s.Clone() }

// Reset zeroes the statistic.
func (e *EWMA) Reset() {
	for i := range e.s {
		e.s[i] = 0
	}
}
