package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/sim"
)

// naiveStreamCounts are the fleet sizes the goroutine-per-stream baseline
// records in the committed ledger. 1000 is the acceptance point; the ends
// show scaling below and above it. The baseline stops at 4000: beyond that
// it only documents goroutine-scheduling collapse at minutes per data
// point, while the fleet rows below carry the scaling story.
var naiveStreamCounts = []int{100, 1000, 4000}

// fleetStreamCounts extends the ledger to the fleet engine's scaling range.
// The 20000 and 100000 rows are the flatness gate: `make bench-fleet`
// fails if the 100000-stream steps/sec falls below a configured fraction
// of the 1000-stream rate (see the flatness step in the Makefile).
var fleetStreamCounts = []int{100, 1000, 4000, 20000, 100000}

// benchDetector builds one adaptive detector for the benchmark plant. The
// aircraft-pitch model is the paper's first simulator and the cheapest
// per-step, which makes it the hardest case for the fleet engine: the less
// detection work a step does, the more scheduling overhead dominates.
func benchDetector(b *testing.B) *core.System {
	b.Helper()
	det, err := sim.Detector(sim.Config{Model: models.AircraftPitch(), Strategy: sim.Adaptive})
	if err != nil {
		b.Fatalf("Detector: %v", err)
	}
	return det
}

// BenchmarkFleetSteps measures aggregate fleet throughput: one op is one
// tick of the whole fleet (every stream ingests one sample and has its
// decision delivered). Samples follow the residual-zero steady state —
// silent monitoring, the regime a fleet spends its life in — so per-op
// allocations must be zero.
func BenchmarkFleetSteps(b *testing.B) {
	m := models.AircraftPitch()
	for _, streams := range fleetStreamCounts {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			eng := New(Config{Workers: runtime.GOMAXPROCS(0)})
			defer func() {
				if err := eng.Close(); err != nil {
					b.Fatalf("Close: %v", err)
				}
			}()
			var wg sync.WaitGroup
			onDecision := func(core.Decision, error) { wg.Done() }
			hs := make([]*Stream, streams)
			for i := range hs {
				h, err := eng.AddStream(fmt.Sprintf("s%d", i), benchDetector(b), onDecision)
				if err != nil {
					b.Fatalf("AddStream: %v", err)
				}
				hs[i] = h
			}
			est := mat.NewVec(m.Sys.StateDim())
			u := mat.NewVec(m.Sys.InputDim())
			tick := func() {
				wg.Add(streams)
				for _, h := range hs {
					if err := h.Post(est, u); err != nil {
						b.Fatalf("Post: %v", err)
					}
				}
				wg.Wait()
			}
			for i := 0; i < benchWarmupTicks; i++ {
				tick()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tick()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(streams)/b.Elapsed().Seconds(), "steps/sec")
		})
	}
}

// benchWarmupTicks precede the measured region in both throughput
// benchmarks: enough ticks to anchor the deadline certificates AND carry
// every window past the run-prefix ramp (the first w_m steps, where the
// window still covers the whole history), so the measurement captures the
// sliding steady state a long-lived fleet actually runs in rather than the
// one-time startup transient.
const benchWarmupTicks = 50

// BenchmarkNaiveSteps is the baseline the fleet is judged against: the
// obvious one-goroutine-per-stream design, each stream goroutine stepping
// its own detector behind a pair of channels, ticked in lockstep. One op
// is one tick of all streams, exactly as in BenchmarkFleetSteps. Like the
// fleet's ingest, each message carries its own copy of the sample — the
// producer owns its buffers and the consumer reads asynchronously, so a
// channel design has to copy on send (the idiomatic value-through-channel
// transfer); reusing a shared slot instead would require exactly the
// token protocol the fleet engine implements, which is no longer naive.
func BenchmarkNaiveSteps(b *testing.B) {
	m := models.AircraftPitch()
	type sample struct {
		est, u mat.Vec
	}
	for _, streams := range naiveStreamCounts {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			est := mat.NewVec(m.Sys.StateDim())
			u := mat.NewVec(m.Sys.InputDim())
			in := make([]chan sample, streams)
			out := make([]chan core.Decision, streams)
			var wg sync.WaitGroup
			for i := 0; i < streams; i++ {
				det := benchDetector(b)
				in[i] = make(chan sample, 1)
				out[i] = make(chan core.Decision, 1)
				wg.Add(1)
				go func(in chan sample, out chan core.Decision) {
					defer wg.Done()
					for smp := range in {
						dec, err := det.Step(smp.est, smp.u)
						if err != nil {
							b.Errorf("Step: %v", err)
							return
						}
						out <- dec
					}
				}(in[i], out[i])
			}
			defer func() {
				for _, c := range in {
					close(c)
				}
				wg.Wait()
			}()
			tick := func() {
				for i := 0; i < streams; i++ {
					in[i] <- sample{est: est.Clone(), u: u.Clone()}
				}
				for i := 0; i < streams; i++ {
					<-out[i]
				}
			}
			for i := 0; i < benchWarmupTicks; i++ {
				tick()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tick()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(streams)/b.Elapsed().Seconds(), "steps/sec")
		})
	}
}
