package fleet

import (
	"sync"
	"time"

	"repro/internal/lti"
	"repro/internal/mat"
)

// shardSizeCandidates are the capacities the startup auto-tuner considers,
// all multiples of the kernel tile (mat.BatchTile) so a shard is always a
// whole number of tile-resident blocks. The range covers the realistic
// trade-off: below 256 the per-batch fixed costs (queue hand-off, phase
// loop setup) dominate; above 2048 the per-stream state slabs outgrow L2
// on every mainstream part, so wider shards only add latency jitter.
var shardSizeCandidates = [...]int{1 * mat.BatchTile, 2 * mat.BatchTile, 4 * mat.BatchTile, 8 * mat.BatchTile}

// autoTuneRelTol is the knee criterion: the widest candidate whose measured
// per-column cost is within this factor of the best candidate's wins.
// Preferring width at equal cost maximizes the work amortized per queue
// hand-off; the 10% tolerance keeps one noisy timer sample from flipping
// the choice to a narrow outlier.
const autoTuneRelTol = 1.10

// autoTuneCols is the total column count each candidate processes during
// measurement, so every candidate does identical work and the comparison
// is per-column cost at different blockings.
const autoTuneCols = 1 << 15

// autoShardSizes memoizes AutoShardSize results by plant shape
// (stateDim<<32 | inputDim): the measured knee is a property of the kernel
// blocking and the machine, not of the matrix values, so one measurement
// per shape per process is enough — and it keeps every later shard of that
// shape the same size, which shard-structure-sensitive consumers (snapshot
// certificate matching) rely on within a process.
var autoShardSizes sync.Map

// AutoShardSize returns the auto-tuned shard capacity for plants shaped
// like sys: the widest candidate batch size whose measured per-column
// batched-prediction cost sits at the throughput knee (within
// autoTuneRelTol of the best). The engine calls it when Config.ShardSize
// is zero and a plant's first shard is formed; the first measurement for a
// shape is memoized for the life of the process.
//
// The choice is a pure performance knob: decisions are bit-identical at
// every shard size (the differential and fuzz tests in this package pin
// exactly that), so a timing-noise-induced difference between two
// processes can never change what any stream decides.
func AutoShardSize(sys *lti.System) int {
	key := int64(sys.StateDim())<<32 | int64(sys.InputDim())
	if v, ok := autoShardSizes.Load(key); ok {
		return v.(int)
	}
	size := measureShardKnee(sys)
	// LoadOrStore so a racing tuner for the same shape yields one winner;
	// every caller returns the stored value.
	v, _ := autoShardSizes.LoadOrStore(key, size)
	return v.(int)
}

// measureShardKnee times the fused batched prediction at each candidate
// width over identical total work and picks the knee.
func measureShardKnee(sys *lti.System) int {
	best := shardSizeCandidates[0]
	var costs [len(shardSizeCandidates)]float64
	for ci, n := range shardSizeCandidates {
		x := mat.NewBatch(sys.StateDim(), n)
		u := mat.NewBatch(sys.InputDim(), n)
		dst := mat.NewBatch(sys.StateDim(), n)
		// Nonzero inputs so the measurement never runs on denormal-free
		// all-zero fast paths the real workload would not see.
		for j := 0; j < x.Dim(); j++ {
			row := x.Row(j)
			for i := range row {
				row[i] = 1 + float64(i%7)*0.125
			}
		}
		for j := 0; j < u.Dim(); j++ {
			row := u.Row(j)
			for i := range row {
				row[i] = 0.5 + float64(i%5)*0.25
			}
		}
		reps := autoTuneCols / n
		sys.PredictBatchTo(dst, x, u) // warm the caches and page in the slabs
		//awdlint:allow wallclock -- startup auto-tune measurement only: the result sizes shards (a pure performance knob); decisions are bit-identical at every shard size
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			sys.PredictBatchTo(dst, x, u)
		}
		//awdlint:allow wallclock -- closes the auto-tune measurement opened above
		costs[ci] = float64(time.Since(t0)) / float64(reps*n)
	}
	minCost := costs[0]
	for _, c := range costs[1:] {
		if c < minCost {
			minCost = c
		}
	}
	for ci, c := range costs {
		if c <= autoTuneRelTol*minCost {
			best = shardSizeCandidates[ci]
		}
	}
	return best
}
