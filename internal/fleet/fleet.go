// Package fleet runs thousands of concurrent detection streams — one
// core.System per monitored plant instance — through shared batch kernels.
//
// Streams whose plants are content-identical (same A and B bit patterns)
// are grouped into shards. A worker processes a shard by gathering the
// pending streams' previous estimates and applied inputs into
// struct-of-arrays blocks, computing every stream's one-step model
// prediction with one cache-blocked PredictBatchTo call, and then stepping
// each detector through core.System.StepPredicted. The plant matrices
// stream through cache once per batch instead of once per stream, which is
// where the fleet's throughput over goroutine-per-stream execution comes
// from.
//
// The batch path is bit-identical to standalone core.System.Step calls:
// the batch kernels preserve MulVecTo/MulVecAddTo's per-column summation
// order exactly (see DESIGN.md), and everything downstream of the
// prediction consumes its values, not its provenance. The differential and
// fuzz tests in this package pin that equivalence for every bundled plant.
//
// Concurrency model: each stream admits at most one in-flight sample,
// guarded by a one-token channel — Submit blocks the caller until the
// decision is delivered, Post hands the decision to the stream's callback.
// A shard is enqueued on the run queue when it has pending samples and is
// processed by exactly one worker at a time, so detector state needs no
// locking. Close drains: every accepted sample is decided before Close
// returns.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/logger"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Errors returned by the ingest API. Dimension and identity faults carry
// context and wrap nothing; these sentinels cover the lifecycle cases
// callers branch on.
var (
	// ErrClosed is returned by ingest calls after Close has begun.
	ErrClosed = errors.New("fleet: engine closed")
	// ErrUnknownStream is returned when a stream ID was never registered.
	ErrUnknownStream = errors.New("fleet: unknown stream")
)

// DefaultShardSize is the fallback number of streams per shard when Config
// leaves ShardSize zero and the startup auto-tuner cannot run. It matches
// the batch kernels' cache tile (mat.BatchTile) so a full shard is one
// tile-resident batch.
const DefaultShardSize = 256

// Config parameterizes an Engine. The zero value is usable: every field
// has a sensible default.
type Config struct {
	// Workers is the number of shard-processing goroutines; <= 0 uses
	// runtime.GOMAXPROCS(0).
	Workers int
	// ShardSize caps the streams grouped into one shard. <= 0 auto-tunes a
	// size per plant shape when that plant's first shard is formed, by
	// measuring where the batched prediction kernel's per-column cost stops
	// improving with batch width (see AutoShardSize). A positive value is an
	// explicit override applied to every shard.
	ShardSize int
	// MaxBatch caps the streams stepped in one batch-pass chunk. <= 0
	// defaults to the kernel tile (mat.BatchTile): a chunk's per-stream
	// state (~3 KB each — logger ring, window slab, detector headers) then
	// stays cache-resident across the step's passes (predict, observe,
	// deadline, slide, finish), where a whole wide shard swept per pass
	// would evict itself between passes at mid-size fleets. Values above
	// the shard's size clamp to it. A pure performance knob: decisions are
	// bit-identical at every chunking.
	MaxBatch int
	// Observer receives fleet telemetry (stream/shard gauges, step and
	// batch counters, run-queue depth, per-shard batch latency). Nil
	// disables instrumentation at the usual one-pointer-check cost.
	Observer *obs.Observer
	// Clock supplies the timestamps for latency telemetry; nil uses the
	// wall clock. It exists so the engine's only time source is injectable:
	// detector decisions never read it (the wallclock analyzer enforces
	// this), and tests can pin it to prove decisions are a pure function of
	// the sample stream.
	Clock func() time.Time
}

// Engine is a multi-tenant detection front-end. Register streams with
// AddStream, feed them with Submit (synchronous) or Post (asynchronous,
// decision via callback), and Close to drain. All methods are safe for
// concurrent use; the per-stream detectors themselves are only ever
// touched by the engine once registered.
type Engine struct {
	cfg Config
	o   *obs.Observer
	now func() time.Time // telemetry clock (Config.Clock); never feeds decisions

	mu      sync.RWMutex // guards the stream/shard registry
	closed  atomic.Bool  // set once by Close; checked lock-free on ingest
	streams map[string]*Stream
	shards  []*shard
	open    map[string]*shard // plant key -> shard with spare capacity

	runq    *runQueue
	workers sync.WaitGroup

	mStreams  *obs.Gauge
	mShards   *obs.Gauge
	mSteps    *obs.Counter
	mBatches  *obs.Counter
	mAlarms   *obs.Counter
	mPressure *obs.Histogram
}

// New builds an engine and starts its workers. Callers must Close it to
// release them.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ShardSize < 0 {
		cfg.ShardSize = 0 // auto-tune per plant shape at shard formation
	}
	if cfg.Clock == nil {
		//awdlint:allow wallclock -- the engine's single wall-clock entry point: the default telemetry clock when none is injected; decisions never read it
		cfg.Clock = time.Now
	}
	e := &Engine{
		cfg:     cfg,
		o:       cfg.Observer,
		now:     cfg.Clock,
		streams: make(map[string]*Stream),
		open:    make(map[string]*shard),
		runq:    newRunQueue(cfg.Workers),
	}
	if e.o.Enabled() {
		reg := e.o.Registry()
		e.mStreams = reg.Gauge(obs.MetricFleetStreams, "detection streams registered with the fleet engine")
		e.mShards = reg.Gauge(obs.MetricFleetShards, "shards the fleet engine has formed")
		e.mSteps = reg.Counter(obs.MetricFleetSteps, "detection steps executed by the fleet engine")
		e.mBatches = reg.Counter(obs.MetricFleetBatches, "batch kernel invocations across all shards")
		e.mAlarms = reg.Counter(obs.MetricFleetAlarms, "alarmed decisions (primary or complementary) across all streams")
		e.mPressure = reg.Histogram(obs.MetricFleetDeadlinePressure,
			"per-step fraction of the shard deadline certificate's slack radius consumed by each stream's trusted state",
			obs.DeadlinePressureBuckets)
		e.runq.depth = reg.Gauge(obs.MetricFleetQueueDepth, "shards waiting on the fleet run queue")
	}
	for i := 0; i < cfg.Workers; i++ {
		e.workers.Add(1)
		go e.worker(i)
	}
	return e
}

// ShardSize returns the configured shard capacity override, or 0 when shard
// sizes are auto-tuned per plant shape at shard formation (see Config).
func (e *Engine) ShardSize() int { return e.cfg.ShardSize }

// AddStream registers a detection stream under id. det must be freshly
// constructed (nothing observed yet) — the engine mirrors the logger's
// previous-estimate state and cannot reconstruct history. onDecision, if
// non-nil, receives the decision for every sample ingested through Post;
// it runs on a worker goroutine and must not call back into the engine
// synchronously for the same stream. Streams with content-identical plant
// matrices land in the same shard.
func (e *Engine) AddStream(id string, det *core.System, onDecision func(core.Decision, error)) (*Stream, error) {
	if id == "" {
		return nil, errors.New("fleet: empty stream id")
	}
	if det == nil {
		return nil, fmt.Errorf("fleet: nil detection system for stream %q", id)
	}
	if det.Log().Observed() != 0 {
		return nil, fmt.Errorf("fleet: stream %q: detection system has already observed %d samples", id, det.Log().Observed())
	}
	sys := det.Plant()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if _, ok := e.streams[id]; ok {
		return nil, fmt.Errorf("fleet: duplicate stream id %q", id)
	}
	key := plantKey(sys)
	// The open map only ever holds shards with spare capacity: a shard is
	// evicted the moment it fills (below), so membership alone proves this
	// stream fits.
	sh := e.open[key]
	if sh == nil {
		sh = e.newShard(key, sys)
	}
	slot := sh.nstreams
	n, m := sys.StateDim(), sys.InputDim()
	// Streams live in a shard-owned arena, and their hot vectors are slices
	// of shard-owned slabs, both laid out in registration order: a batch
	// pass walking the shard touches contiguous regions per data kind
	// instead of len(ss) scattered heap objects, which is what lets the
	// per-pass loops run at streaming speed once shards outgrow cache.
	s := &sh.streamArr[slot]
	s.id = id
	s.eng = e
	s.sh = sh
	s.det = det
	s.log = det.Log()
	s.est = sh.estSlab[slot*n : (slot+1)*n]
	s.u = sh.uSlab[slot*m : (slot+1)*m]
	s.pred = sh.predSlab[slot*n : (slot+1)*n]
	s.done = make(chan result, 1)
	s.onDecision = onDecision
	det.SetStreamID(id)
	// Adaptive streams share the shard's deadline certificate whenever
	// their estimator configuration is provably interchangeable (shard
	// membership already pins the plant matrices bit-for-bit, which is
	// CompatibleWith's precondition). In the steady state this collapses
	// each stream's per-step deadline search to one distance check against
	// the shared anchor — the amortization the fleet's throughput over
	// goroutine-per-stream execution comes from. Certificate access needs
	// no locking: the shard is processed by one worker at a time.
	if est := det.Estimator(); est != nil {
		var cert *deadline.Certificate
		for _, c := range sh.certs {
			if c.Estimator().CompatibleWith(est) {
				cert = c
				break
			}
		}
		if cert == nil {
			cert = deadline.NewCertificate(est)
			sh.certs = append(sh.certs, cert)
		}
		det.SetDeadlineSource(cert)
		s.cert = cert
	}
	sh.nstreams++
	if sh.nstreams >= sh.size {
		// Full: drop it from the open map immediately so the next AddStream
		// for this plant goes straight to a fresh shard instead of re-probing
		// a shard that can never admit another stream.
		delete(e.open, key)
	}
	e.streams[id] = s
	if e.o.Enabled() {
		e.mStreams.SetInt(len(e.streams))
		sh.mStreams.SetInt(sh.nstreams)
	}
	return s, nil
}

// newShard creates a shard for the plant behind key; e.mu must be held.
// Batch scratch and the per-stream state slabs are allocated up front at
// full shard capacity so neither registration nor processing allocates
// afterwards.
func (e *Engine) newShard(key string, sys *lti.System) *shard {
	size := e.cfg.ShardSize
	if size <= 0 {
		size = AutoShardSize(sys)
	}
	mb := e.cfg.MaxBatch
	if mb <= 0 {
		mb = mat.BatchTile // phase-block by default; see Config.MaxBatch
	}
	if mb > size {
		mb = size
	}
	n, m := sys.StateDim(), sys.InputDim()
	sh := &shard{
		eng:       e,
		idx:       len(e.shards),
		owner:     len(e.shards) % e.cfg.Workers,
		sys:       sys,
		size:      size,
		maxBatch:  mb,
		pending:   make([]*Stream, 0, size),
		work:      make([]*Stream, 0, size),
		streamArr: make([]Stream, size),
		xb:        mat.NewBatch(n, size),
		ub:        mat.NewBatch(m, size),
		pb:        mat.NewBatch(n, size),
		tb:        mat.NewBatch(n, size),
		estSlab:   mat.NewVec(size * n),
		uSlab:     mat.NewVec(size * m),
		predSlab:  mat.NewVec(size * n),
		entries:   make([]*logger.Entry, size),
		errs:      make([]error, size),
		tds:       make([]int, size),
		press:     make([]float64, size),
		x0s:       make([]mat.Vec, 0, size),
		qidx:      make([]int, 0, size),
		qd2:       make([]float64, size),
		qpress:    make([]float64, size),
		qout:      make([]int, size),
	}
	if e.o.Enabled() {
		reg := e.o.Registry()
		sh.batchUS = reg.Histogram(
			obs.FleetShardBatchMetric(sh.idx),
			"fleet shard batch step latency (microseconds)",
			obs.FleetBatchLatencyBuckets)
		sh.mSteps = reg.Counter(obs.FleetShardMetric(obs.MetricFleetShardSteps, sh.idx),
			"detection steps executed by this shard")
		sh.mAlarms = reg.Counter(obs.FleetShardMetric(obs.MetricFleetShardAlarms, sh.idx),
			"alarmed decisions delivered by this shard")
		sh.mStreams = reg.Gauge(obs.FleetShardMetric(obs.MetricFleetShardStreams, sh.idx),
			"detection streams registered with this shard")
		e.mShards.SetInt(len(e.shards) + 1)
	}
	e.shards = append(e.shards, sh)
	e.open[key] = sh
	return sh
}

// Submit ingests one sample for the stream and blocks until its detection
// decision is available — the synchronous per-stream API, with the same
// contract as core.System.Step. appliedU may be nil for zero input.
func (e *Engine) Submit(streamID string, estimate, appliedU mat.Vec) (core.Decision, error) {
	s, err := e.lookup(streamID)
	if err != nil {
		return core.Decision{}, err
	}
	return s.Submit(estimate, appliedU)
}

// Post ingests one sample for the stream asynchronously; the decision is
// delivered to the stream's OnDecision callback. It blocks only for
// backpressure: each stream admits one in-flight sample at a time.
func (e *Engine) Post(streamID string, estimate, appliedU mat.Vec) error {
	s, err := e.lookup(streamID)
	if err != nil {
		return err
	}
	return s.Post(estimate, appliedU)
}

func (e *Engine) lookup(id string) (*Stream, error) {
	e.mu.RLock()
	s := e.streams[id]
	e.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	return s, nil
}

// Stream looks up a registered stream handle by ID.
func (e *Engine) Stream(id string) (*Stream, bool) {
	e.mu.RLock()
	s := e.streams[id]
	e.mu.RUnlock()
	return s, s != nil
}

// Streams returns the number of registered streams.
func (e *Engine) Streams() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.streams)
}

// Shards returns the number of shards formed so far.
func (e *Engine) Shards() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.shards)
}

// Close drains the engine: it rejects new samples, waits for every
// accepted sample's decision to be delivered, and stops the workers.
// Close is idempotent and always returns nil (it implements io.Closer so
// engines compose with lifecycle helpers).
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		e.workers.Wait()
		return nil
	}
	// Sweep every stream's sample token. A token is held either by an
	// ingest call that passed the closed check (it will fill the slot and
	// wake its shard) or by the worker processing that sample; acquiring it
	// here therefore means the stream's last admitted sample has been fully
	// decided and no ingest is mid-flight. The token is put back immediately
	// so a Post blocked on it wakes, re-checks closed, and bounces — the
	// sweep never strands a caller. AddStream checks closed under e.mu, so
	// the registry snapshot below includes every stream that was admitted.
	e.mu.RLock()
	streams := make([]*Stream, 0, len(e.streams))
	for _, s := range e.streams {
		streams = append(streams, s)
	}
	e.mu.RUnlock()
	if len(streams) == 0 {
		// Nothing was ever registered: there is no work to drain, so skip
		// the token sweep and just retire the workers.
		e.runq.close()
		e.workers.Wait()
		return nil
	}
	for _, s := range streams {
		s.tok.Lock()
		s.tok.Unlock() //nolint:staticcheck // empty critical section is the drain barrier
	}
	e.runq.close()
	e.workers.Wait()
	return nil
}

func (e *Engine) worker(w int) {
	defer e.workers.Done()
	for {
		sh, ok := e.runq.popFor(w)
		if !ok {
			return
		}
		sh.process()
	}
}

// result carries one decision from a worker to a synchronous submitter.
type result struct {
	dec core.Decision
	err error
}

// Stream is the per-stream handle: the registered detector plus the
// single-sample ingest slot the engine's backpressure is built on.
type Stream struct {
	id  string
	eng *Engine
	sh  *shard
	det *core.System
	log *logger.Logger // det.Log(), cached to shorten the gather pass's pointer chain

	// Ingest slot, written by the token holder, read by the worker. The
	// shard mutex orders the hand-off.
	est, u   mat.Vec
	syncWait bool

	// Worker-owned scratch for this stream's column of the batched
	// prediction. The prediction input is read straight off the detector
	// logger's retained previous estimate, so there is no mirrored state
	// to keep in lockstep.
	pred mat.Vec

	// cert is the shard-shared deadline certificate this stream's deadline
	// queries go through (nil for non-adaptive streams). The worker batches
	// every stream sharing a certificate into one FromStateBatch call per
	// step, which also hands back the per-stream deadline pressure the
	// telemetry attributes to this stream. The certificate is additionally
	// installed as the detector's deadline source so a stream stepped
	// outside the batch path (td not injected) queries the same state.
	cert *deadline.Certificate

	// tok is the sample token: holding it (the mutex locked) is the right
	// to fill the ingest slot. It is locked by the ingest caller and
	// unlocked by the worker once the decision is delivered — sync.Mutex
	// explicitly permits this cross-goroutine hand-off, and it is cheaper
	// per sample than the equivalent one-slot channel.
	tok        sync.Mutex
	done       chan result // capacity 1: decision hand-back for Submit
	onDecision func(core.Decision, error)
	steps      uint64 // written only by the processing worker
}

// ID returns the stream's registered identifier.
func (s *Stream) ID() string { return s.id }

// Steps returns the number of decisions delivered for this stream. Like
// Detector, it is only safe to read while the stream is quiescent: no
// sample in flight, or after Close (whose worker shutdown establishes the
// needed ordering).
func (s *Stream) Steps() uint64 { return s.steps }

// Detector exposes the underlying detection system. It is only safe to
// inspect while the stream is quiescent: no sample in flight, or after
// Close — the engine itself steps the detector from worker goroutines.
func (s *Stream) Detector() *core.System { return s.det }

// Submit ingests one sample and blocks until its decision is available.
func (s *Stream) Submit(estimate, appliedU mat.Vec) (core.Decision, error) {
	if err := s.validate(estimate, appliedU); err != nil {
		return core.Decision{}, err
	}
	if err := s.enqueue(estimate, appliedU, true); err != nil {
		return core.Decision{}, err
	}
	r := <-s.done
	return r.dec, r.err
}

// Post ingests one sample asynchronously; the decision goes to the
// OnDecision callback registered at AddStream. It blocks only while the
// stream's previous sample is still in flight.
func (s *Stream) Post(estimate, appliedU mat.Vec) error {
	if s.onDecision == nil {
		return fmt.Errorf("fleet: stream %q has no decision callback; use Submit", s.id)
	}
	if err := s.validate(estimate, appliedU); err != nil {
		return err
	}
	return s.enqueue(estimate, appliedU, false)
}

// validate checks sample dimensions against the plant before any state is
// touched, so a bad sample is a clean no-op — and so the worker-side step
// can never fail on ingest, keeping the mirrored prevEst in lockstep with
// the detector's logger.
func (s *Stream) validate(estimate, appliedU mat.Vec) error {
	if len(estimate) != len(s.est) {
		return fmt.Errorf("fleet: stream %q estimate dimension %d, want %d", s.id, len(estimate), len(s.est))
	}
	if appliedU != nil && len(appliedU) != len(s.u) {
		return fmt.Errorf("fleet: stream %q input dimension %d, want %d", s.id, len(appliedU), len(s.u))
	}
	return nil
}

// enqueue acquires the stream's sample token, fills the ingest slot, and
// wakes the shard. The closed check happens after the token acquire: a
// token released by Close's drain sweep is seen together with the closed
// flag (mutex release/acquire ordering), so an ingest call either loses
// the race and bounces here, or wins it — and then Close cannot finish
// its sweep until this sample has been decided and its token released by
// the worker. Either way no admitted sample is ever stranded.
func (s *Stream) enqueue(estimate, appliedU mat.Vec, syncWait bool) error {
	e := s.eng
	s.tok.Lock()
	if e.closed.Load() {
		s.tok.Unlock()
		return ErrClosed
	}
	estimate.CopyTo(s.est)
	if appliedU == nil {
		for i := range s.u {
			s.u[i] = 0
		}
	} else {
		appliedU.CopyTo(s.u)
	}
	s.syncWait = syncWait
	s.sh.wake(s)
	//awdlint:allow lockflow -- token hand-off by design: the shard worker releases s.tok after deciding this sample (see stepBatch), which is the engine's backpressure
	return nil
}

// noteStep records a delivered decision; worker-only, see Steps.
func (s *Stream) noteStep() { s.steps++ }

// shard is a group of streams sharing one plant model, processed as
// batches by one worker at a time.
type shard struct {
	eng      *Engine
	idx      int
	owner    int // preferred worker (idx mod Workers); see runQueue
	sys      *lti.System
	size     int // stream capacity (configured or auto-tuned)
	maxBatch int // per-batch stream cap, clamped to size

	mu       sync.Mutex
	pending  []*Stream // streams with a fresh sample awaiting processing
	work     []*Stream // spare buffer, swapped with pending each round
	queued   bool      // shard is on the run queue or being processed
	nstreams int       // registered streams (guarded by eng.mu)

	// Per-shard rollup instruments; nil when observability is disabled.
	mSteps   *obs.Counter
	mAlarms  *obs.Counter
	mStreams *obs.Gauge

	// Batch scratch, allocated at shard capacity; only the processing
	// worker touches it, and the queued flag admits one worker at a time.
	xb, ub, pb *mat.Batch
	tb         *mat.Batch // deadline-query gather block
	pes        []mat.Vec  // gather scratch: per-stream previous estimates

	// Per-stream state slabs the Stream hot vectors slice into, and the
	// arena the Stream structs themselves live in (see AddStream):
	// registration-ordered, so batch passes touch contiguous memory. The
	// arena is never reallocated, so *Stream handles stay valid for the
	// engine's life.
	estSlab, uSlab, predSlab mat.Vec
	streamArr                []Stream

	// Per-batch phase scratch (indexed by position in the batch): the logged
	// entry and error of the observe pass, the injected deadline and
	// pressure of the certificate pass, and the certificate pass's own
	// gather/result arrays.
	entries []*logger.Entry
	errs    []error
	tds     []int
	press   []float64
	x0s     []mat.Vec
	qidx    []int
	qd2     []float64
	qpress  []float64
	qout    []int

	// Shared deadline certificates, one per compatible estimator
	// configuration among the shard's adaptive streams (appended under
	// eng.mu at registration; queried only by the shard's processing
	// worker, which batches each certificate's queries per step).
	certs []*deadline.Certificate

	batchUS *obs.Histogram // nil when observability is disabled
}

// wake records a stream's fresh sample and enqueues the shard unless a
// worker already owns it; the owning worker re-checks pending before
// clearing queued, so no sample is lost in the hand-off.
func (sh *shard) wake(s *Stream) {
	sh.mu.Lock()
	sh.pending = append(sh.pending, s)
	enqueue := !sh.queued
	sh.queued = true
	sh.mu.Unlock()
	if enqueue {
		sh.eng.runq.push(sh)
	}
}

// process drains the shard's pending streams in MaxBatch-sized batches.
// Samples that arrive while processing are picked up by re-enqueueing, so
// the queued invariant (one worker per shard) holds without holding the
// mutex across kernel calls.
func (sh *shard) process() {
	sh.mu.Lock()
	sh.work, sh.pending = sh.pending, sh.work[:0]
	sh.mu.Unlock()
	work := sh.work
	for len(work) > 0 {
		k := len(work)
		if k > sh.maxBatch {
			k = sh.maxBatch
		}
		sh.stepBatch(work[:k])
		work = work[k:]
	}
	sh.mu.Lock()
	if len(sh.pending) > 0 {
		sh.mu.Unlock()
		sh.eng.runq.push(sh)
		return
	}
	sh.queued = false
	sh.mu.Unlock()
}

// stepBatch runs one batch through the step pipeline one phase at a time —
// gather, batched prediction, scatter, logging, batched deadline queries,
// window-sum slides, decisions — instead of running every phase per stream.
// Each pass walks one kind of data for the whole batch, so the memory
// system sees long independent access streams (high memory-level
// parallelism) where the per-stream loop interleaved half a dozen working
// sets per iteration.
//
// Bit-identity with serial core.System.Step holds phase by phase: the
// prediction kernels preserve per-column summation order (see package
// comment); the observe pass is each stream's own ObservePredicted; the
// certificate pass issues each certificate's queries in batch order — the
// same order the per-stream loop queried it — through FromStateBatch, which
// is exactly that query sequence; the slide pass is decision-neutral by
// Window.PrepareSlide's contract; and StepObserved with the injected
// deadline is decide with the query it would have made. Per-stream state
// (logger ring, estimator warm start, detector windows) lives in each det
// untouched.
func (sh *shard) stepBatch(ss []*Stream) {
	var start time.Time
	if sh.eng.o.Enabled() {
		start = sh.eng.now()
	}
	k := len(ss)
	sh.xb.Resize(k)
	sh.ub.Resize(k)
	sh.pb.Resize(k)
	// Gather row-major: the batch rows are contiguous, so filling a whole
	// row at a time turns the strided per-column SetCol writes into
	// streaming stores (each source vector is a single cache line that
	// stays hot across the short row loop).
	pes := sh.pes[:0]
	for _, s := range ss {
		// A nil previous estimate means first sample: the logger ignores
		// the prediction, any column value works; zero keeps the kernel
		// input deterministic.
		pes = append(pes, s.log.PrevEstimate())
	}
	sh.pes = pes
	for j := 0; j < sh.xb.Dim(); j++ {
		row := sh.xb.Row(j)
		for i, pe := range pes {
			if pe != nil {
				row[i] = pe[j]
			} else {
				row[i] = 0
			}
		}
	}
	for j := 0; j < sh.ub.Dim(); j++ {
		row := sh.ub.Row(j)
		for i, s := range ss {
			row[i] = s.u[j]
		}
	}
	sh.sys.PredictBatchTo(sh.pb, sh.xb, sh.ub)
	// Scatter the predictions back row-major for the same reason.
	for j := 0; j < sh.pb.Dim(); j++ {
		row := sh.pb.Row(j)
		for i, s := range ss {
			s.pred[j] = row[i]
		}
	}

	// Observe pass: log every stream's sample and prediction. Entries stay
	// valid through the batch — a stream's next Observe cannot happen until
	// its token is released in the finish pass.
	entries, errs := sh.entries[:k], sh.errs[:k]
	for i, s := range ss {
		entries[i], errs[i] = s.det.ObservePredicted(s.est, s.pred)
	}

	// Certificate pass: answer every adaptive stream's deadline query, one
	// FromStateBatch call per shared certificate. tds[i] < 0 means "no
	// injected deadline" (non-adaptive streams, or an observe error);
	// press[i] < 0 means no pressure reading.
	tds, press := sh.tds[:k], sh.press[:k]
	for i := range tds {
		tds[i], press[i] = -1, -1
	}
	for _, cert := range sh.certs {
		x0s, qidx := sh.x0s[:0], sh.qidx[:0]
		for i, s := range ss {
			if s.cert != cert || errs[i] != nil {
				continue
			}
			if x0, ok := s.det.DeadlineQueryState(); ok {
				x0s = append(x0s, x0)
				qidx = append(qidx, i)
			} else {
				// Same fallback decide takes without touching the source.
				tds[i] = s.det.Estimator().MaxDeadline()
			}
		}
		sh.x0s, sh.qidx = x0s, qidx
		q := len(qidx)
		if q == 0 {
			continue
		}
		sh.tb.Resize(q)
		for j := 0; j < sh.tb.Dim(); j++ {
			row := sh.tb.Row(j)
			for qi, x0 := range x0s {
				row[qi] = x0[j]
			}
		}
		cert.FromStateBatch(sh.tb, sh.qd2[:q], sh.qpress[:q], sh.qout[:q])
		for qi, i := range qidx {
			tds[i] = sh.qout[qi]
			press[i] = sh.qpress[qi]
		}
	}

	// Slide pass: advance every stream's incremental window sum back to
	// back (decision-neutral; see core.System.PrepareSlide).
	for i, s := range ss {
		if errs[i] == nil {
			s.det.PrepareSlide(tds[i])
		}
	}

	// Finish pass: run each detector's decision logic on its logged entry
	// with the pre-computed deadline, then deliver.
	obsOn := sh.eng.o.Enabled()
	alarms := int64(0)
	for i, s := range ss {
		var dec core.Decision
		err := errs[i]
		if err == nil {
			dec, err = s.det.StepObserved(entries[i], tds[i])
		}
		s.noteStep()
		if obsOn {
			if err == nil && dec.Alarmed() {
				alarms++
			}
			if press[i] >= 0 {
				sh.eng.mPressure.Observe(press[i])
			}
		}
		syncWait := s.syncWait
		s.syncWait = false
		if syncWait {
			// Deliver before releasing the token: the submitter blocked on
			// done must be the one to receive this result.
			s.done <- result{dec: dec, err: err}
			s.tok.Unlock()
		} else {
			cb := s.onDecision
			s.tok.Unlock()
			if cb != nil {
				cb(dec, err)
			}
		}
	}
	if obsOn {
		sh.eng.mSteps.Add(int64(k))
		sh.mSteps.Add(int64(k))
		if alarms > 0 {
			sh.eng.mAlarms.Add(alarms)
			sh.mAlarms.Add(alarms)
		}
		sh.eng.mBatches.Inc()
		sh.batchUS.Observe(float64(sh.eng.now().Sub(start)) / float64(time.Microsecond))
	}
}

// runQueue is the engine's work queue of shards with pending samples, split
// into one FIFO ring per worker for shard-to-worker affinity: a shard is
// always pushed onto its owner's ring (owner = shard index mod workers), so
// in the loaded steady state the same worker re-processes the same shards
// and their detector state and batch scratch stay warm in that worker's
// cache. A worker whose own ring is empty steals from the next non-empty
// ring — work only migrates on imbalance, never round-robins by default.
// FIFO within each ring keeps shards making even progress; each shard
// appears at most once across all rings (the queued flag), so steady-state
// pushes never allocate after warm-up. One mutex and condition variable
// cover all rings: pushes are rare relative to batch work, and a single
// wait point lets any idle worker pick up any overflow.
type runQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rings  []workRing // one per worker, indexed by owner
	total  int        // shards queued across all rings
	closed bool
	depth  *obs.Gauge // nil when observability is disabled
}

// workRing is one worker's FIFO of runnable shards.
type workRing struct {
	buf   []*shard
	head  int
	count int
}

func (r *workRing) push(sh *shard) {
	if r.count == len(r.buf) {
		nb := make([]*shard, 2*len(r.buf))
		for i := 0; i < r.count; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[(r.head+r.count)%len(r.buf)] = sh
	r.count++
}

func (r *workRing) pop() *shard {
	sh := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return sh
}

func newRunQueue(workers int) *runQueue {
	q := &runQueue{rings: make([]workRing, workers)}
	for i := range q.rings {
		q.rings[i].buf = make([]*shard, 16)
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *runQueue) push(sh *shard) {
	q.mu.Lock()
	q.rings[sh.owner%len(q.rings)].push(sh)
	q.total++
	if q.depth != nil {
		q.depth.SetInt(q.total)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// popFor blocks until a shard is available or the queue is closed and
// empty; a closed queue still drains. Worker w serves its own ring first
// and steals from the next non-empty ring (scanning w+1, w+2, ...) only
// when its own is dry — the imbalance signal that justifies migrating a
// shard's cache footprint.
func (q *runQueue) popFor(w int) (*shard, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.total == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.total == 0 {
		return nil, false
	}
	nw := len(q.rings)
	for i := 0; i < nw; i++ {
		if r := &q.rings[(w+i)%nw]; r.count > 0 {
			sh := r.pop()
			q.total--
			if q.depth != nil {
				q.depth.SetInt(q.total)
			}
			return sh, true
		}
	}
	// Unreachable: total > 0 implies some ring is non-empty.
	return nil, false
}

func (q *runQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// plantKey fingerprints the prediction-relevant plant content: state and
// input dimensions plus the exact bit patterns of A and B. Streams share a
// shard only when their predictions are computed from bitwise-identical
// matrices, so sharding can never perturb results. C and Dt are deliberately
// excluded — the batch kernel computes A x + B u and nothing else.
func plantKey(sys *lti.System) string {
	n, m := sys.StateDim(), sys.InputDim()
	var b strings.Builder
	b.Grow(8 + 17*(n*n+n*m))
	b.WriteString(strconv.Itoa(n))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(m))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.WriteByte(':')
			b.WriteString(strconv.FormatUint(math.Float64bits(sys.A.At(i, j)), 16))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			b.WriteByte(';')
			b.WriteString(strconv.FormatUint(math.Float64bits(sys.B.At(i, j)), 16))
		}
	}
	return b.String()
}

// StreamSeed derives a deterministic per-stream seed from a fleet-level
// seed and the stream ID (FNV-1a over the ID, folded with the fleet seed),
// so synthetic fleets and differential tests reproduce bit-identically for
// a given configuration regardless of registration or scheduling order.
func StreamSeed(fleetSeed uint64, id string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= fleetSeed
	h *= prime
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime
	}
	return h
}
