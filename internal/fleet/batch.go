package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
)

// BatchItem is one sample of a batched submit: the target stream plus the
// same (estimate, appliedU) pair Stream.Submit takes. A nil Stream yields
// ErrUnknownStream for that item — the wire server resolves handles under
// its own lock and leaves unknowns nil rather than aborting the batch.
type BatchItem struct {
	Stream   *Stream
	Estimate mat.Vec
	AppliedU mat.Vec // nil means zero input, as in Stream.Submit
}

// BatchResult is one sample's outcome: the decision, or the per-item error
// (dimension mismatch, unknown stream, engine closed).
type BatchResult struct {
	Decision core.Decision
	Err      error
}

// Batcher is the batched ingest seam: it submits many samples in one call,
// letting the engine's shards step them as batches instead of one blocking
// Submit round trip per sample. A Batcher owns reusable scratch and is NOT
// safe for concurrent use — open one per connection or worker (the engine
// it came from multiplexes).
type Batcher struct {
	eng  *Engine
	seen map[*Stream]struct{} // wave membership, reused across calls
}

// NewBatcher returns a batcher over this engine.
func (e *Engine) NewBatcher() *Batcher {
	return &Batcher{eng: e, seen: make(map[*Stream]struct{})}
}

// Submit ingests every item and fills out (which must have the same
// length) with the per-item decisions. Per-stream sample order is the item
// order, and each sample is stepped exactly as Stream.Submit would step it,
// so the decision sequence every stream sees is bit-identical to serial
// submission — the wire differential tests pin this across plants and
// attacks. The call returns once every item is decided; the only non-nil
// return is a slice-length mismatch, everything per-item lands in out.
//
// Items are admitted in waves within which each stream appears at most
// once: a stream's single-sample ingest token and one-slot decision
// channel admit one outstanding sample, so a second sample for the same
// stream must wait until the first's decision has been collected. Waves
// preserve order (duplicates always land in a later wave than their
// predecessor) while letting every distinct stream in the batch be in
// flight at once — which is what engages the shards' batched step passes.
func (b *Batcher) Submit(items []BatchItem, out []BatchResult) error {
	if len(out) != len(items) {
		return fmt.Errorf("fleet: batch results length %d, want %d", len(out), len(items))
	}
	start := 0
	for start < len(items) {
		clear(b.seen)
		end := start
		for end < len(items) {
			s := items[end].Stream
			if s != nil {
				if _, dup := b.seen[s]; dup {
					break
				}
				b.seen[s] = struct{}{}
			}
			end++
		}
		// Enqueue the wave: every stream's slot fills and its shard wakes
		// before anything blocks on a decision.
		for i := start; i < end; i++ {
			it := &items[i]
			out[i] = BatchResult{}
			switch {
			case it.Stream == nil:
				out[i].Err = ErrUnknownStream
			case it.Stream.eng != b.eng:
				out[i].Err = fmt.Errorf("fleet: stream %q belongs to a different engine", it.Stream.id)
			default:
				if err := it.Stream.validate(it.Estimate, it.AppliedU); err != nil {
					out[i].Err = err
				} else if err := it.Stream.enqueue(it.Estimate, it.AppliedU, true); err != nil {
					out[i].Err = err
				}
			}
		}
		// Collect in item order; an item that failed to enqueue has its
		// error already and nothing in flight.
		for i := start; i < end; i++ {
			if out[i].Err != nil {
				continue
			}
			r := <-items[i].Stream.done
			out[i].Decision, out[i].Err = r.dec, r.err
		}
		start = end
	}
	return nil
}
