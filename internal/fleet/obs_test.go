package fleet

import (
	"fmt"
	"testing"

	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestFleetShardRollupCounters checks the per-shard series against the
// fleet totals: shard steps/alarms/streams must sum to the engine-wide
// counters, the alarm counter must agree with the decisions actually
// delivered, and the deadline-pressure histogram must have collected one
// observation per certified adaptive step.
func TestFleetShardRollupCounters(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewObserver(reg, nil)
	m := models.Quadrotor()
	eng := New(Config{ShardSize: 2, Observer: o})
	const streams, steps = 5, 30
	var alarmed int64
	for i := 0; i < streams; i++ {
		if _, err := eng.AddStream(fmt.Sprintf("q%d", i), newDetector(t, m, sim.Adaptive), nil); err != nil {
			t.Fatalf("AddStream: %v", err)
		}
	}
	shards := eng.Shards()
	// The spiked synthetic trajectory fires alarms, so the alarm counters
	// actually count something.
	ests, us := synthTrajectory(m, 1, steps)
	for s := 0; s < steps; s++ {
		for i := 0; i < streams; i++ {
			dec, err := eng.Submit(fmt.Sprintf("q%d", i), ests[s], us[s])
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if dec.Alarmed() {
				alarmed++
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var shardSteps, shardAlarms int64
	var shardStreams float64
	for i := 0; i < shards; i++ {
		shardSteps += reg.Counter(obs.FleetShardMetric(obs.MetricFleetShardSteps, i), "").Value()
		shardAlarms += reg.Counter(obs.FleetShardMetric(obs.MetricFleetShardAlarms, i), "").Value()
		shardStreams += reg.Gauge(obs.FleetShardMetric(obs.MetricFleetShardStreams, i), "").Value()
	}
	if total := reg.Counter(obs.MetricFleetSteps, "").Value(); shardSteps != total || total != streams*steps {
		t.Errorf("shard steps sum %d vs fleet %d (want %d)", shardSteps, total, streams*steps)
	}
	alarms := reg.Counter(obs.MetricFleetAlarms, "").Value()
	if shardAlarms != alarms {
		t.Errorf("shard alarms sum %d vs fleet %d", shardAlarms, alarms)
	}
	if alarms == 0 {
		t.Error("spiked trajectory produced no counted alarms")
	}
	if alarms != alarmed {
		t.Errorf("alarm counter %d vs delivered alarmed decisions %d", alarms, alarmed)
	}
	if shardStreams != streams {
		t.Errorf("shard streams sum %v, want %d", shardStreams, streams)
	}
	// Every adaptive step runs one certified deadline query, so the
	// fleet-wide pressure histogram saw every stream-step.
	hp := reg.Histogram(obs.MetricFleetDeadlinePressure, "", obs.DeadlinePressureBuckets)
	if got := hp.Count(); got != streams*steps {
		t.Errorf("deadline pressure observations = %d, want %d", got, streams*steps)
	}

	// The whole picture must also assemble through the snapshot rollup.
	roll, ok := obs.FleetRollupFromSnapshot(reg.Snapshot())
	if !ok {
		t.Fatal("no rollup from a fleet registry")
	}
	if roll.Steps != streams*steps || roll.Alarms != alarms || len(roll.PerShard) != shards {
		t.Errorf("rollup = %+v", roll)
	}
	if roll.DeadlinePressure.Count != streams*steps {
		t.Errorf("rollup pressure count = %d", roll.DeadlinePressure.Count)
	}
}

// TestFleetStreamIDFlowsToSink checks the drill-down path end to end
// inside the engine: AddStream stamps the detector, so trace events arrive
// stream-attributed and a StreamTail isolates one stream's trajectory.
func TestFleetStreamIDFlowsToSink(t *testing.T) {
	tail := obs.NewStreamTail(64, "q1")
	o := obs.NewObserver(nil, tail)
	m := models.Quadrotor()
	eng := New(Config{ShardSize: 2, Observer: o})
	const streams, steps = 3, 8
	for i := 0; i < streams; i++ {
		// The detectors share the tailing observer: each stream's events are
		// emitted stream-stamped, and the tail keeps only its target's.
		det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive, Observer: o})
		if err != nil {
			t.Fatalf("Detector: %v", err)
		}
		if _, err := eng.AddStream(fmt.Sprintf("q%d", i), det, nil); err != nil {
			t.Fatalf("AddStream: %v", err)
		}
	}
	ests, us := synthTrajectory(m, 1, steps)
	for s := 0; s < steps; s++ {
		for i := 0; i < streams; i++ {
			if _, err := eng.Submit(fmt.Sprintf("q%d", i), ests[s], us[s]); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs := tail.Events()
	if len(evs) != steps {
		t.Fatalf("tail retained %d events, want %d (one per q1 step)", len(evs), steps)
	}
	for i, ev := range evs {
		if ev.StreamID != "q1" || ev.Step != i {
			t.Errorf("event %d = stream %q step %d", i, ev.StreamID, ev.Step)
		}
	}
}

// TestFleetSubmitAllocFreeWithMetrics re-pins the zero-alloc contract with
// a metrics-only observer attached: the per-shard counters, the alarm
// counters, and the deadline-pressure observation must all ride the hot
// path without a single heap allocation per stream-step.
func TestFleetSubmitAllocFreeWithMetrics(t *testing.T) {
	m := models.AircraftPitch()
	o := obs.NewObserver(obs.NewRegistry(), nil)
	eng := New(Config{Workers: 1, Observer: o})
	defer func() {
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive, Observer: o})
	if err != nil {
		t.Fatalf("Detector: %v", err)
	}
	if _, err := eng.AddStream("s", det, nil); err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	est := m.X0.Clone()
	u := mat.NewVec(m.Sys.InputDim())
	next := mat.NewVec(m.Sys.StateDim())
	step := func() {
		if _, err := eng.Submit("s", est, u); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		m.Sys.PredictTo(next, est, u)
		next.CopyTo(est)
	}
	for i := 0; i < 300; i++ { // warm the deadline search + scratch
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("metrics-on Submit allocates %v allocs/op, want 0", avg)
	}
	// The metrics actually recorded the run (the observer was not bypassed).
	reg := o.Registry()
	if reg.Counter(obs.MetricFleetSteps, "").Value() < 500 {
		t.Error("fleet step counter did not record the run")
	}
	if reg.Histogram(obs.MetricFleetDeadlinePressure, "", obs.DeadlinePressureBuckets).Count() < 500 {
		t.Error("deadline pressure histogram did not record the run")
	}
}
