package fleet

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/sim"
)

// TestAutoShardSizeReturnsCandidate pins the tuner's contract: the chosen
// capacity is one of the declared candidates (always a whole number of
// kernel tiles) and the per-shape memoization makes repeat calls return the
// same value — the property shard-structure-sensitive consumers rely on
// within a process.
func TestAutoShardSizeReturnsCandidate(t *testing.T) {
	m := models.AircraftPitch()
	size := AutoShardSize(m.Sys)
	found := false
	for _, c := range shardSizeCandidates {
		if size == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("AutoShardSize = %d, not a candidate %v", size, shardSizeCandidates)
	}
	for i := 0; i < 3; i++ {
		if again := AutoShardSize(m.Sys); again != size {
			t.Fatalf("repeat AutoShardSize = %d, want memoized %d", again, size)
		}
	}
}

// TestEngineAutoShardSize pins the wiring: with ShardSize unset the engine
// sizes its shards from the tuner, and the accessor reports the config
// value (0 = auto) rather than inventing one.
func TestEngineAutoShardSize(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer func() {
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	if got := eng.ShardSize(); got != 0 {
		t.Fatalf("ShardSize() = %d, want 0 (auto)", got)
	}
	m := models.AircraftPitch()
	if _, err := eng.AddStream("s0", newDetector(t, m, sim.Adaptive), nil); err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	want := AutoShardSize(m.Sys)
	eng.mu.RLock()
	got := eng.shards[0].size
	eng.mu.RUnlock()
	if got != want {
		t.Fatalf("auto-tuned shard size = %d, want %d", got, want)
	}
}

// TestFleetOddShardSizeMatchesSerial is the edge-tile differential: an
// explicit ShardSize that is not a multiple of the kernel tile (and batch
// chunks that straddle it) must not perturb a single decision. Covers the
// remainder-tile path of every batched kernel end to end.
func TestFleetOddShardSizeMatchesSerial(t *testing.T) {
	const steps = 40
	m := models.AircraftPitch()
	eng := New(Config{Workers: 2, ShardSize: 7, MaxBatch: 5})
	defer func() {
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()

	const streams = 17 // 2 full shards of 7 plus a remainder shard of 3
	type sc struct {
		ests, us []mat.Vec
		got      []core.Decision
	}
	cases := make([]*sc, streams)
	for i := range cases {
		c := &sc{}
		id := fmt.Sprintf("odd-%d", i)
		c.ests, c.us = synthTrajectory(m, StreamSeed(7, id), steps)
		ci := c
		if _, err := eng.AddStream(id, newDetector(t, m, sim.Adaptive), func(d core.Decision, err error) {
			if err == nil {
				ci.got = append(ci.got, d)
			}
		}); err != nil {
			t.Fatalf("AddStream(%s): %v", id, err)
		}
		cases[i] = c
	}
	for s := 0; s < steps; s++ {
		for i, c := range cases {
			if err := eng.Post(fmt.Sprintf("odd-%d", i), c.ests[s], c.us[s]); err != nil {
				t.Fatalf("Post(%d, %d): %v", i, s, err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, c := range cases {
		if len(c.got) != steps {
			t.Fatalf("stream %d: %d decisions, want %d", i, len(c.got), steps)
		}
		serial := newDetector(t, m, sim.Adaptive)
		for s := 0; s < steps; s++ {
			want, err := serial.Step(c.ests[s], c.us[s])
			if err != nil {
				t.Fatalf("serial step: %v", err)
			}
			if !decisionsEqual(c.got[s], want) {
				t.Fatalf("stream %d step %d: fleet %+v != serial %+v", i, s, c.got[s], want)
			}
		}
	}
}
