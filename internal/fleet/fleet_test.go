package fleet

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sim"
)

// allModels is every bundled plant: the five Table 1 simulators plus the
// testbed car. Shared across tests so reach.Shared's per-plant memoization
// kicks in.
var allModels = append(models.All(), models.TestbedCar())

// synthTrajectory generates a deterministic estimate/input stream for a
// plant: the estimate follows the model prediction plus small noise (a
// realistic residual floor) with periodic spikes scaled by τ so alarms and
// window shrinks actually occur.
func synthTrajectory(m *models.Model, seed uint64, steps int) (ests, us []mat.Vec) {
	src := noise.NewSource(seed)
	n, in := m.Sys.StateDim(), m.Sys.InputDim()
	ests = make([]mat.Vec, steps)
	us = make([]mat.Vec, steps)
	prev := m.X0.Clone()
	prevU := mat.NewVec(in)
	pred := mat.NewVec(n)
	for t := 0; t < steps; t++ {
		e := mat.NewVec(n)
		if t == 0 {
			prev.CopyTo(e)
		} else {
			m.Sys.PredictTo(pred, prev, prevU)
			pred.CopyTo(e)
		}
		for i := range e {
			e[i] += m.Tau[i] * src.Uniform(-0.2, 0.2)
		}
		if t%9 == 7 {
			for i := range e {
				e[i] += m.Tau[i] * src.Uniform(1.5, 3)
			}
		}
		u := mat.NewVec(in)
		for i := range u {
			u[i] = src.Uniform(-1, 1)
		}
		ests[t], us[t] = e, u
		e.CopyTo(prev)
		u.CopyTo(prevU)
	}
	return ests, us
}

func decisionsEqual(a, b core.Decision) bool {
	return a.Step == b.Step && a.Window == b.Window && a.Deadline == b.Deadline &&
		a.Alarm == b.Alarm && a.Complementary == b.Complementary &&
		a.ComplementaryStep == b.ComplementaryStep && slices.Equal(a.Dims, b.Dims)
}

func newDetector(t testing.TB, m *models.Model, strat sim.Strategy) *core.System {
	t.Helper()
	det, err := sim.Detector(sim.Config{Model: m, Strategy: strat})
	if err != nil {
		t.Fatalf("Detector(%s, %v): %v", m.Name, strat, err)
	}
	return det
}

// TestFleetMatchesSerialAllPlants is the tentpole differential test: every
// bundled plant, several streams per plant across strategies, fed through
// the async Post path by concurrent feeders with deliberately small shards
// and batch chunks — and every decision sequence must be bit-identical to
// a standalone core.System stepped over the same samples.
func TestFleetMatchesSerialAllPlants(t *testing.T) {
	const steps = 60
	strategies := []sim.Strategy{sim.Adaptive, sim.Adaptive, sim.Adaptive, sim.FixedWindow, sim.CUSUMBaseline}
	eng := New(Config{Workers: 2, ShardSize: 8, MaxBatch: 4})

	type streamCase struct {
		id       string
		m        *models.Model
		strat    sim.Strategy
		ests, us []mat.Vec
		got      []core.Decision
		cbErr    error
	}
	var cases []*streamCase
	for _, m := range allModels {
		for k, strat := range strategies {
			sc := &streamCase{
				id:    fmt.Sprintf("%s-%d", m.Name, k),
				m:     m,
				strat: strat,
			}
			sc.ests, sc.us = synthTrajectory(m, StreamSeed(42, sc.id), steps)
			det := newDetector(t, m, strat)
			// One in-flight sample per stream means the callback runs
			// sequentially for a given stream; Close orders it before the
			// final reads.
			if _, err := eng.AddStream(sc.id, det, func(d core.Decision, err error) {
				if err != nil && sc.cbErr == nil {
					sc.cbErr = err
				}
				sc.got = append(sc.got, d)
			}); err != nil {
				t.Fatalf("AddStream(%s): %v", sc.id, err)
			}
			cases = append(cases, sc)
		}
	}

	var wg sync.WaitGroup
	for _, sc := range cases {
		wg.Add(1)
		go func(sc *streamCase) {
			defer wg.Done()
			for i := range sc.ests {
				if err := eng.Post(sc.id, sc.ests[i], sc.us[i]); err != nil {
					t.Errorf("Post(%s, step %d): %v", sc.id, i, err)
					return
				}
			}
		}(sc)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	alarms, comps := 0, 0
	for _, sc := range cases {
		if sc.cbErr != nil {
			t.Fatalf("stream %s: decision callback error: %v", sc.id, sc.cbErr)
		}
		if len(sc.got) != steps {
			t.Fatalf("stream %s: got %d decisions, want %d", sc.id, len(sc.got), steps)
		}
		serial := newDetector(t, sc.m, sc.strat)
		for i := range sc.ests {
			want, err := serial.Step(sc.ests[i], sc.us[i])
			if err != nil {
				t.Fatalf("stream %s: serial step %d: %v", sc.id, i, err)
			}
			if !decisionsEqual(sc.got[i], want) {
				t.Fatalf("stream %s step %d: fleet decision %+v != serial %+v", sc.id, i, sc.got[i], want)
			}
			if want.Alarm {
				alarms++
			}
			if want.Complementary {
				comps++
			}
		}
	}
	// The equivalence must not be vacuous: the synthetic fleet has to
	// exercise the alarm path.
	if alarms == 0 {
		t.Fatalf("differential campaign produced no alarms; trajectories too tame")
	}
	t.Logf("compared %d streams x %d steps: %d alarms, %d complementary", len(cases), steps, alarms, comps)
}

// TestSubmitMatchesSerial pins the synchronous path: interleaved Submit
// calls on two same-plant streams return decisions bit-identical to serial
// execution, step by step.
func TestSubmitMatchesSerial(t *testing.T) {
	const steps = 50
	m := models.AircraftPitch()
	eng := New(Config{})
	defer func() {
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()

	ids := []string{"a", "b"}
	serial := make([]*core.System, len(ids))
	trajE := make([][]mat.Vec, len(ids))
	trajU := make([][]mat.Vec, len(ids))
	for i, id := range ids {
		if _, err := eng.AddStream(id, newDetector(t, m, sim.Adaptive), nil); err != nil {
			t.Fatalf("AddStream(%s): %v", id, err)
		}
		serial[i] = newDetector(t, m, sim.Adaptive)
		trajE[i], trajU[i] = synthTrajectory(m, StreamSeed(7, id), steps)
	}
	for s := 0; s < steps; s++ {
		for i, id := range ids {
			got, err := eng.Submit(id, trajE[i][s], trajU[i][s])
			if err != nil {
				t.Fatalf("Submit(%s, step %d): %v", id, s, err)
			}
			want, err := serial[i].Step(trajE[i][s], trajU[i][s])
			if err != nil {
				t.Fatalf("serial step %d: %v", s, err)
			}
			if !decisionsEqual(got, want) {
				t.Fatalf("stream %s step %d: fleet %+v != serial %+v", id, s, got, want)
			}
		}
	}
}

// TestFleetSharding checks content-keyed grouping: same-plant streams pack
// into shards of ShardSize, distinct plants never share a shard.
func TestFleetSharding(t *testing.T) {
	eng := New(Config{ShardSize: 4})
	defer func() {
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	ma, mb := models.AircraftPitch(), models.SeriesRLC()
	for i := 0; i < 9; i++ {
		if _, err := eng.AddStream(fmt.Sprintf("a%d", i), newDetector(t, ma, sim.Adaptive), nil); err != nil {
			t.Fatalf("AddStream: %v", err)
		}
	}
	// 9 streams / shard size 4 -> 3 shards for plant A.
	if got := eng.Shards(); got != 3 {
		t.Fatalf("shards after 9 same-plant streams = %d, want 3", got)
	}
	if _, err := eng.AddStream("b0", newDetector(t, mb, sim.Adaptive), nil); err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	if got := eng.Shards(); got != 4 {
		t.Fatalf("distinct plant did not open a new shard: %d shards, want 4", got)
	}
	// A fresh but content-identical plant instance joins the open shard of
	// its twin rather than opening a new one.
	if _, err := eng.AddStream("b1", newDetector(t, models.SeriesRLC(), sim.Adaptive), nil); err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	if got := eng.Shards(); got != 4 {
		t.Fatalf("content-identical plant opened a new shard: %d shards, want 4", got)
	}
	if got := eng.Streams(); got != 11 {
		t.Fatalf("Streams() = %d, want 11", got)
	}
}

// TestFleetValidation covers the ingest API's error surface.
func TestFleetValidation(t *testing.T) {
	m := models.VehicleTurning()
	eng := New(Config{})
	if _, err := eng.AddStream("", newDetector(t, m, sim.Adaptive), nil); err == nil {
		t.Fatalf("empty stream id accepted")
	}
	if _, err := eng.AddStream("x", nil, nil); err == nil {
		t.Fatalf("nil detector accepted")
	}
	used := newDetector(t, m, sim.Adaptive)
	if _, err := used.Step(m.X0, nil); err != nil {
		t.Fatalf("priming step: %v", err)
	}
	if _, err := eng.AddStream("x", used, nil); err == nil {
		t.Fatalf("already-observed detector accepted")
	}
	if _, err := eng.AddStream("x", newDetector(t, m, sim.Adaptive), nil); err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	if _, err := eng.AddStream("x", newDetector(t, m, sim.Adaptive), nil); err == nil {
		t.Fatalf("duplicate stream id accepted")
	}
	if _, err := eng.Submit("nope", m.X0, nil); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("unknown stream: got %v, want ErrUnknownStream", err)
	}
	if _, err := eng.Submit("x", mat.NewVec(m.Sys.StateDim()+1), nil); err == nil {
		t.Fatalf("bad estimate dimension accepted")
	}
	if _, err := eng.Submit("x", m.X0, mat.NewVec(m.Sys.InputDim()+1)); err == nil {
		t.Fatalf("bad input dimension accepted")
	}
	if err := eng.Post("x", m.X0, nil); err == nil {
		t.Fatalf("Post without a decision callback accepted")
	}
	if _, err := eng.Submit("x", m.X0, nil); err != nil {
		t.Fatalf("valid Submit failed: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := eng.Submit("x", m.X0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrClosed", err)
	}
	if _, err := eng.AddStream("y", newDetector(t, m, sim.Adaptive), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddStream after Close: got %v, want ErrClosed", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestFleetCloseDrains checks the drain guarantee: every sample accepted
// before Close gets its decision delivered.
func TestFleetCloseDrains(t *testing.T) {
	const streams, steps = 12, 25
	m := models.DCMotorPosition()
	eng := New(Config{Workers: 3, ShardSize: 4})
	var delivered [streams]int
	for i := 0; i < streams; i++ {
		i := i
		if _, err := eng.AddStream(fmt.Sprintf("s%d", i), newDetector(t, m, sim.Adaptive), func(core.Decision, error) {
			delivered[i]++
		}); err != nil {
			t.Fatalf("AddStream: %v", err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ests, us := synthTrajectory(m, StreamSeed(3, fmt.Sprintf("s%d", i)), steps)
			for s := 0; s < steps; s++ {
				if err := eng.Post(fmt.Sprintf("s%d", i), ests[s], us[s]); err != nil {
					t.Errorf("Post: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, n := range delivered {
		if n != steps {
			t.Fatalf("stream %d: %d decisions delivered, want %d", i, n, steps)
		}
	}
	h, ok := eng.Stream("s0")
	if !ok {
		t.Fatalf("Stream(s0) not found")
	}
	if h.Steps() != steps {
		t.Fatalf("Steps() = %d, want %d", h.Steps(), steps)
	}
}

// TestFleetObservability checks the engine's metric surface end to end.
func TestFleetObservability(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewObserver(reg, nil)
	m := models.Quadrotor()
	eng := New(Config{ShardSize: 2, Observer: o})
	const streams, steps = 3, 10
	for i := 0; i < streams; i++ {
		if _, err := eng.AddStream(fmt.Sprintf("q%d", i), newDetector(t, m, sim.Adaptive), nil); err != nil {
			t.Fatalf("AddStream: %v", err)
		}
	}
	ests, us := synthTrajectory(m, 1, steps)
	for s := 0; s < steps; s++ {
		for i := 0; i < streams; i++ {
			if _, err := eng.Submit(fmt.Sprintf("q%d", i), ests[s], us[s]); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := reg.Gauge(obs.MetricFleetStreams, "").Value(); got != streams {
		t.Fatalf("streams gauge = %v, want %d", got, streams)
	}
	if got := reg.Gauge(obs.MetricFleetShards, "").Value(); got != 2 {
		t.Fatalf("shards gauge = %v, want 2", got)
	}
	if got := reg.Counter(obs.MetricFleetSteps, "").Value(); got != streams*steps {
		t.Fatalf("steps counter = %v, want %d", got, streams*steps)
	}
	if got := reg.Counter(obs.MetricFleetBatches, "").Value(); got <= 0 {
		t.Fatalf("batches counter = %v, want > 0", got)
	}
	var batchObs int64
	for i := 0; i < 2; i++ {
		batchObs += reg.Histogram(obs.FleetShardBatchMetric(i), "", obs.FleetBatchLatencyBuckets).Count()
	}
	if batches := reg.Counter(obs.MetricFleetBatches, "").Value(); batchObs != batches {
		t.Fatalf("per-shard histogram observations %d != batch counter %d", batchObs, batches)
	}
}

// TestFleetSubmitAllocFree pins the hot path's steady-state allocation
// behavior: a silent (no-alarm) Submit performs zero heap allocations per
// stream-step, the same contract the serial pipeline holds.
func TestFleetSubmitAllocFree(t *testing.T) {
	m := models.AircraftPitch()
	eng := New(Config{Workers: 1})
	defer func() {
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	if _, err := eng.AddStream("s", newDetector(t, m, sim.Adaptive), nil); err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	// Residual-zero trajectory: the estimate tracks the model prediction
	// exactly, so no alarm fires and no Dims slice is allocated.
	est := m.X0.Clone()
	u := mat.NewVec(m.Sys.InputDim())
	next := mat.NewVec(m.Sys.StateDim())
	step := func() {
		if _, err := eng.Submit("s", est, u); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		m.Sys.PredictTo(next, est, u)
		next.CopyTo(est)
	}
	for i := 0; i < 300; i++ { // warm the deadline search + scratch
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("steady-state Submit allocates %v allocs/op, want 0", avg)
	}
}

func TestStreamSeed(t *testing.T) {
	if StreamSeed(1, "a") != StreamSeed(1, "a") {
		t.Fatalf("StreamSeed not deterministic")
	}
	seen := map[uint64]string{}
	for _, fs := range []uint64{0, 1, 42} {
		for _, id := range []string{"", "a", "b", "ab", "ba", "stream-1", "stream-2"} {
			s := StreamSeed(fs, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %q and (%d,%q)", prev, fs, id)
			}
			seen[s] = fmt.Sprintf("(%d,%q)", fs, id)
		}
	}
}
