package fleet

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestInjectedClockDeterminism pins the wallclock invariant the lint suite
// enforces structurally: the engine's only time source is Config.Clock, it
// feeds telemetry exclusively, and detector decisions are a pure function
// of the sample stream. A fake clock that advances a fixed tick per reading
// must (a) leave every decision bit-identical to a wall-clock engine's and
// (b) make the batch-latency histogram exactly reproducible.
func TestInjectedClockDeterminism(t *testing.T) {
	m := allModels[0]
	const streams, steps = 3, 40

	// Each reading advances exactly one millisecond. stepBatch reads the
	// clock twice per batch (start and observe), so every recorded batch
	// latency is exactly 1000µs — a value wall time could never pin.
	var ticks atomic.Int64
	fake := func() time.Time {
		return time.Unix(0, ticks.Add(int64(time.Millisecond)))
	}

	reg := obs.NewRegistry()
	fakeEng := New(Config{Workers: 1, ShardSize: 2, Observer: obs.NewObserver(reg, nil), Clock: fake})
	wallEng := New(Config{Workers: 1, ShardSize: 2})
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("c%d", i)
		if _, err := fakeEng.AddStream(id, newDetector(t, m, sim.Adaptive), nil); err != nil {
			t.Fatalf("AddStream(fake): %v", err)
		}
		if _, err := wallEng.AddStream(id, newDetector(t, m, sim.Adaptive), nil); err != nil {
			t.Fatalf("AddStream(wall): %v", err)
		}
	}

	ests, us := synthTrajectory(m, 7, steps)
	for s := 0; s < steps; s++ {
		for i := 0; i < streams; i++ {
			id := fmt.Sprintf("c%d", i)
			fd, err := fakeEng.Submit(id, ests[s], us[s])
			if err != nil {
				t.Fatalf("Submit(fake, %s, step %d): %v", id, s, err)
			}
			wd, err := wallEng.Submit(id, ests[s], us[s])
			if err != nil {
				t.Fatalf("Submit(wall, %s, step %d): %v", id, s, err)
			}
			if !decisionsEqual(fd, wd) {
				t.Fatalf("step %d stream %s: fake-clock decision %+v != wall-clock %+v", s, id, fd, wd)
			}
		}
	}
	if err := fakeEng.Close(); err != nil {
		t.Fatalf("Close(fake): %v", err)
	}
	if err := wallEng.Close(); err != nil {
		t.Fatalf("Close(wall): %v", err)
	}

	// Telemetry reproducibility: every batch latency came from the fake
	// clock, so the histograms are an exact function of the batch count.
	var count int64
	var sum float64
	for i := 0; i < 2; i++ { // streams=3, ShardSize=2 -> exactly 2 shards
		h := reg.Histogram(obs.FleetShardBatchMetric(i), "", obs.FleetBatchLatencyBuckets)
		count += h.Count()
		sum += h.Sum()
	}
	if batches := reg.Counter(obs.MetricFleetBatches, "").Value(); count != batches {
		t.Fatalf("histogram observations %d != batch counter %d", count, batches)
	}
	if count == 0 {
		t.Fatal("no batch latencies observed")
	}
	if want := float64(count) * 1000; sum != want {
		t.Fatalf("batch latency sum = %vµs, want exactly %vµs (1000µs per batch from the injected clock)", sum, want)
	}
}
