package fleet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/sim"
)

// TestBatcherMatchesSerial is the batched-ingest differential: every
// bundled plant with several streams each, fed in interleaved batches
// through Batcher.Submit on one engine and one Stream.Submit at a time on
// a twin engine — every stream's decision sequence must be bit-identical.
// Deliberately small shards and step batches keep the shard batching
// machinery engaged underneath.
func TestBatcherMatchesSerial(t *testing.T) {
	const steps, perPlant = 40, 3
	batched := New(Config{Workers: 2, ShardSize: 4, MaxBatch: 4})
	defer batched.Close()
	serial := New(Config{Workers: 2, ShardSize: 4, MaxBatch: 4})
	defer serial.Close()

	type streamCase struct {
		bs, ss   *Stream
		ests, us []mat.Vec
	}
	var cases []*streamCase
	for _, m := range allModels {
		for k := 0; k < perPlant; k++ {
			id := fmt.Sprintf("%s-%d", m.Name, k)
			sc := &streamCase{}
			sc.ests, sc.us = synthTrajectory(m, StreamSeed(17, id), steps)
			var err error
			if sc.bs, err = batched.AddStream(id, newDetector(t, m, sim.Adaptive), nil); err != nil {
				t.Fatalf("AddStream(batched %s): %v", id, err)
			}
			if sc.ss, err = serial.AddStream(id, newDetector(t, m, sim.Adaptive), nil); err != nil {
				t.Fatalf("AddStream(serial %s): %v", id, err)
			}
			cases = append(cases, sc)
		}
	}

	bt := batched.NewBatcher()
	items := make([]BatchItem, len(cases))
	out := make([]BatchResult, len(cases))
	for step := 0; step < steps; step++ {
		for i, sc := range cases {
			items[i] = BatchItem{Stream: sc.bs, Estimate: sc.ests[step], AppliedU: sc.us[step]}
		}
		if err := bt.Submit(items, out); err != nil {
			t.Fatalf("Submit(step %d): %v", step, err)
		}
		for i, sc := range cases {
			if out[i].Err != nil {
				t.Fatalf("step %d stream %d: batch error %v", step, i, out[i].Err)
			}
			want, err := sc.ss.Submit(sc.ests[step], sc.us[step])
			if err != nil {
				t.Fatalf("step %d stream %d: serial error %v", step, i, err)
			}
			if !decisionsEqual(out[i].Decision, want) {
				t.Fatalf("step %d stream %d: batch %+v != serial %+v", step, i, out[i].Decision, want)
			}
		}
	}
}

// TestBatcherDuplicateStreams pins the wave split: a batch carrying many
// samples for the same stream (including a triple) must decide them in
// item order without deadlocking on the stream's single-sample token, and
// the decision sequence must match serial submission exactly.
func TestBatcherDuplicateStreams(t *testing.T) {
	const steps = 12
	m := allModels[0]
	batched := New(Config{Workers: 2})
	defer batched.Close()
	serial := New(Config{Workers: 2})
	defer serial.Close()
	bs, err := batched.AddStream("dup", newDetector(t, m, sim.Adaptive), nil)
	if err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	ss, err := serial.AddStream("dup", newDetector(t, m, sim.Adaptive), nil)
	if err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	ests, us := synthTrajectory(m, 5, steps)

	// One batch of all twelve samples for the one stream: twelve waves.
	items := make([]BatchItem, steps)
	out := make([]BatchResult, steps)
	for i := 0; i < steps; i++ {
		items[i] = BatchItem{Stream: bs, Estimate: ests[i], AppliedU: us[i]}
	}
	if err := batched.NewBatcher().Submit(items, out); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < steps; i++ {
		if out[i].Err != nil {
			t.Fatalf("sample %d: %v", i, out[i].Err)
		}
		want, err := ss.Submit(ests[i], us[i])
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		if !decisionsEqual(out[i].Decision, want) {
			t.Fatalf("sample %d: batch %+v != serial %+v", i, out[i].Decision, want)
		}
	}
}

// TestBatcherPerItemErrors pins the per-item failure contract: a nil
// stream, a stream from a different engine, and a dimension mismatch each
// fail their own item while the healthy items in the same batch decide.
func TestBatcherPerItemErrors(t *testing.T) {
	m := allModels[0]
	eng := New(Config{Workers: 1})
	defer eng.Close()
	other := New(Config{Workers: 1})
	defer other.Close()
	st, err := eng.AddStream("ok", newDetector(t, m, sim.Adaptive), nil)
	if err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	alien, err := other.AddStream("alien", newDetector(t, m, sim.Adaptive), nil)
	if err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	ests, us := synthTrajectory(m, 3, 2)

	items := []BatchItem{
		{Stream: st, Estimate: ests[0], AppliedU: us[0]},
		{Stream: nil, Estimate: ests[0], AppliedU: us[0]},
		{Stream: alien, Estimate: ests[0], AppliedU: us[0]},
		{Stream: st, Estimate: ests[1][:1], AppliedU: us[1]}, // wrong dim
		{Stream: st, Estimate: ests[1], AppliedU: us[1]},
	}
	out := make([]BatchResult, len(items))
	if err := eng.NewBatcher().Submit(items, out); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out[0].Err != nil || out[4].Err != nil {
		t.Fatalf("healthy items failed: %v / %v", out[0].Err, out[4].Err)
	}
	if out[0].Decision.Step != 0 || out[4].Decision.Step != 1 {
		t.Fatalf("healthy items stepped %d, %d; want 0, 1", out[0].Decision.Step, out[4].Decision.Step)
	}
	if out[1].Err != ErrUnknownStream {
		t.Fatalf("nil stream error = %v, want ErrUnknownStream", out[1].Err)
	}
	if out[2].Err == nil || !strings.Contains(out[2].Err.Error(), "different engine") {
		t.Fatalf("alien stream error = %v", out[2].Err)
	}
	if out[3].Err == nil {
		t.Fatalf("dimension mismatch item decided")
	}

	if err := eng.NewBatcher().Submit(items, out[:2]); err == nil {
		t.Fatalf("length-mismatched out accepted")
	}
}

// TestBatcherSteadyStateAllocs pins the batched submit seam itself
// allocation-free: with warm streams and a reused items/out pair,
// Batcher.Submit must not allocate (the decisions flow through each
// stream's preallocated slot and channel).
func TestBatcherSteadyStateAllocs(t *testing.T) {
	m := allModels[0]
	eng := New(Config{Workers: 2})
	defer eng.Close()
	const n = 8
	items := make([]BatchItem, n)
	out := make([]BatchResult, n)
	ests, us := synthTrajectory(m, 11, 4)
	for i := 0; i < n; i++ {
		st, err := eng.AddStream(fmt.Sprintf("s-%d", i), newDetector(t, m, sim.Adaptive), nil)
		if err != nil {
			t.Fatalf("AddStream: %v", err)
		}
		items[i] = BatchItem{Stream: st, Estimate: ests[0], AppliedU: us[0]}
	}
	bt := eng.NewBatcher()
	if err := bt.Submit(items, out); err != nil { // warm-up
		t.Fatalf("Submit: %v", err)
	}
	step := 1
	avg := testing.AllocsPerRun(2, func() {
		for i := range items {
			items[i].Estimate, items[i].AppliedU = ests[step], us[step]
		}
		if err := bt.Submit(items, out); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		for i := range out {
			if out[i].Err != nil {
				t.Fatalf("item %d: %v", i, out[i].Err)
			}
		}
		step++
	})
	if avg > 0 {
		t.Fatalf("Batcher.Submit allocates %.1f per batch, want 0", avg)
	}
}
