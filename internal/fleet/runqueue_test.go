package fleet

import (
	"testing"
	"time"
)

// rqShards builds bare shards with the given owners — the only field the
// queue reads.
func rqShards(owners ...int) []*shard {
	shs := make([]*shard, len(owners))
	for i, o := range owners {
		shs[i] = &shard{owner: o}
	}
	return shs
}

// TestRunQueueOwnerAffinity pins the affinity contract: a worker whose own
// ring is non-empty is served from it, even when other rings also hold
// runnable shards.
func TestRunQueueOwnerAffinity(t *testing.T) {
	q := newRunQueue(3)
	shs := rqShards(0, 1, 2)
	for _, sh := range shs {
		q.push(sh)
	}
	// Pop for workers in reverse order: each must still get its own shard.
	for w := 2; w >= 0; w-- {
		sh, ok := q.popFor(w)
		if !ok {
			t.Fatalf("popFor(%d): queue reported closed", w)
		}
		if sh != shs[w] {
			t.Fatalf("popFor(%d) = shard owned by %d, want own shard", w, sh.owner)
		}
	}
}

// TestRunQueueStealsOnEmpty pins the imbalance escape hatch: a worker with
// an empty ring steals from the next non-empty ring instead of blocking
// while work is runnable elsewhere.
func TestRunQueueStealsOnEmpty(t *testing.T) {
	q := newRunQueue(3)
	shs := rqShards(0, 0)
	for _, sh := range shs {
		q.push(sh)
	}
	// Worker 1 owns nothing; it must steal worker 0's oldest shard
	// (scan order 1, 2, 0 — ring 0 is the first non-empty).
	sh, ok := q.popFor(1)
	if !ok || sh != shs[0] {
		t.Fatalf("popFor(1) = %v, %v; want steal of worker 0's oldest shard", sh, ok)
	}
	// Worker 0 still gets the remaining shard from its own ring.
	sh, ok = q.popFor(0)
	if !ok || sh != shs[1] {
		t.Fatalf("popFor(0) = %v, %v; want own remaining shard", sh, ok)
	}
}

// TestRunQueueFIFOWithinRing pins per-ring ordering (shards make even
// progress) across enough pushes to force the ring's backing buffer to grow
// and wrap.
func TestRunQueueFIFOWithinRing(t *testing.T) {
	q := newRunQueue(2)
	const n = 50 // > initial ring capacity, forces growth mid-stream
	shs := make([]*shard, n)
	for i := range shs {
		shs[i] = &shard{owner: 0}
		q.push(shs[i])
	}
	for i := 0; i < n; i++ {
		sh, ok := q.popFor(0)
		if !ok {
			t.Fatalf("pop %d: queue reported closed", i)
		}
		if sh != shs[i] {
			t.Fatalf("pop %d out of FIFO order", i)
		}
	}
}

// TestRunQueueInterleavedGrowth exercises the ring's wrap-around path: pops
// interleaved with pushes move head off zero before the buffer grows, so
// growth must relocate a wrapped sequence correctly.
func TestRunQueueInterleavedGrowth(t *testing.T) {
	q := newRunQueue(1)
	var want []*shard
	mk := func() *shard { sh := &shard{owner: 0}; q.push(sh); return sh }
	for i := 0; i < 12; i++ {
		want = append(want, mk())
	}
	for i := 0; i < 8; i++ { // advance head
		sh, _ := q.popFor(0)
		if sh != want[i] {
			t.Fatalf("warm pop %d out of order", i)
		}
	}
	for i := 0; i < 30; i++ { // force growth with head != 0
		want = append(want, mk())
	}
	for i := 8; i < len(want); i++ {
		sh, ok := q.popFor(0)
		if !ok || sh != want[i] {
			t.Fatalf("pop %d after growth out of order", i)
		}
	}
}

// TestRunQueueCloseDrains pins the shutdown contract: a closed queue still
// hands out every queued shard before reporting closed, and a worker blocked
// on an empty queue is released by close.
func TestRunQueueCloseDrains(t *testing.T) {
	q := newRunQueue(2)
	shs := rqShards(0, 1)
	for _, sh := range shs {
		q.push(sh)
	}
	q.close()
	seen := map[*shard]bool{}
	for i := 0; i < len(shs); i++ {
		sh, ok := q.popFor(0)
		if !ok {
			t.Fatalf("pop %d: closed queue did not drain", i)
		}
		seen[sh] = true
	}
	if _, ok := q.popFor(0); ok {
		t.Fatal("drained closed queue still returned a shard")
	}

	// A blocked popFor must be released by close.
	q2 := newRunQueue(1)
	done := make(chan bool)
	go func() {
		_, ok := q2.popFor(0)
		done <- ok
	}()
	q2.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked popFor returned a shard from an empty closed queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not release blocked popFor")
	}
}
