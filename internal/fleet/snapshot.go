package fleet

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/state"
)

// fleetStateVersion is the component version of the engine's snapshot
// layout (see internal/state for the versioning rules).
const fleetStateVersion = 1

// MakeStream constructs the detector and decision callback for a stream ID
// found in a snapshot. Engine.Restore calls it once per recorded stream;
// the returned system must be freshly constructed with the same
// configuration the stream had when the snapshot was taken (the per-
// component Restore validation catches structural drift, but semantic
// parameters like thresholds are the caller's obligation — they are part
// of the stream's identity, not its state).
type MakeStream func(id string) (*core.System, func(core.Decision, error), error)

// Snapshot encodes the complete runtime state of every registered stream,
// plus the shard-shared deadline certificates, as one deterministic blob:
// streams are written in ascending ID order regardless of registration or
// scheduling history, so two engines in equal states produce byte-equal
// snapshots.
//
// Snapshot quiesces the fleet itself: it acquires every stream's sample
// token before encoding and releases them after, so each stream's state is
// captured between decisions, never mid-step. Ingest calls issued during a
// snapshot simply block until it completes — the engine's ordinary
// backpressure — and no decision is lost or duplicated. Registration is
// excluded too (AddStream blocks for the duration), making the snapshot a
// consistent cut of the whole fleet.
func (e *Engine) Snapshot(enc *state.Encoder) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	streams := make([]*Stream, 0, len(e.streams))
	for _, s := range e.streams {
		streams = append(streams, s)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i].id < streams[j].id })
	// Quiesce: hold every token for the duration of the encode. A token is
	// only ever held briefly (one ingest hand-off or one worker step), and
	// no goroutine holds two, so acquiring all of them in ID order cannot
	// deadlock.
	for _, s := range streams {
		s.tok.Lock()
	}
	defer func() {
		for _, s := range streams {
			s.tok.Unlock()
		}
	}()

	enc.Begin(state.TagFleet, fleetStateVersion)
	enc.U32(uint32(len(streams)))
	for _, s := range streams {
		enc.String(s.id)
		enc.U64(s.steps)
		//awdlint:allow lockflow -- encoding under e.mu and the stream tokens IS the consistency cut: the quiesce makes the snapshot a between-decisions capture of the whole fleet
		s.det.Snapshot(enc)
	}
	// Shard-shared certificates ride in a skippable section keyed by stream
	// ID, not by shard: shard formation depends on registration order and
	// ShardSize, which a restoring engine may legitimately reproduce
	// differently. Every stream writes its shared certificate's state (the
	// streams sharing one cert write identical bytes), and the restore side
	// applies each entry through the stream's own certificate — whose
	// estimator is CompatibleWith the stream's, exactly the premise that
	// made the recorded anchor valid. An entry that cannot be applied is
	// skipped and that certificate starts cold, costing one re-anchor scan
	// and nothing else: a certificate anchor is a performance accelerator
	// whose hit path returns the exact full-scan deadline whenever the
	// anchor is premise-valid, which the per-stream keying guarantees.
	off := enc.Mark()
	var ncerts uint32
	for _, s := range streams {
		if s.cert != nil {
			ncerts++
		}
	}
	enc.U32(ncerts)
	for _, s := range streams {
		if s.cert == nil {
			continue
		}
		entry := enc.Mark()
		enc.String(s.id)
		//awdlint:allow lockflow -- same consistency cut as the stream encode above; certificates are shard-shared, so they too must be captured inside the quiesce
		s.cert.Snapshot(enc)
		enc.Patch(entry)
	}
	enc.Patch(off)
	return nil
}

// Restore rebuilds a fleet from a snapshot into an empty engine: for each
// recorded stream it asks make for a freshly constructed detector,
// registers it (in snapshot order, so shard formation is deterministic),
// and then restores the stream's runtime state into it. When the resulting
// shard structure matches the snapshot's, the shared deadline certificates
// are restored too; otherwise they are skipped and re-anchor lazily (see
// Snapshot).
//
// Restore must run before any ingest; it fails on an engine that already
// has streams. After a successful restore every stream continues its
// decision sequence bit-identically to the engine the snapshot was taken
// from.
func (e *Engine) Restore(dec *state.Decoder, make MakeStream) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.Streams() != 0 {
		return fmt.Errorf("fleet: restore into an engine with %d streams", e.Streams())
	}
	dec.Expect(state.TagFleet, fleetStateVersion)
	n := dec.U32()
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		id := dec.String()
		steps := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		det, onDecision, err := make(id)
		if err != nil {
			return fmt.Errorf("fleet: restore stream %q: %w", id, err)
		}
		h, err := e.AddStream(id, det, onDecision)
		if err != nil {
			return fmt.Errorf("fleet: restore stream %q: %w", id, err)
		}
		if err := det.Restore(dec); err != nil {
			return fmt.Errorf("fleet: restore stream %q: %w", id, err)
		}
		h.steps = steps
	}
	// Certificates: apply each per-stream entry through that stream's own
	// certificate, or skip it cleanly (see Snapshot for why skipping is
	// always safe).
	end := dec.SectionEnd()
	ncerts := dec.U32()
	if err := dec.Err(); err != nil {
		return err
	}
	for i := uint32(0); i < ncerts; i++ {
		entryEnd := dec.SectionEnd()
		id := dec.String()
		if err := dec.Err(); err != nil {
			return err
		}
		if s, ok := e.Stream(id); ok && s.cert != nil {
			if err := s.cert.Restore(dec); err != nil {
				if dec.Err() != nil {
					return err // snapshot bytes are corrupt, not just mismatched
				}
				// Premise validation failed (config drift in make): leave
				// this certificate cold.
			}
		}
		dec.SkipTo(entryEnd)
	}
	dec.SkipTo(end)
	return dec.Err()
}
