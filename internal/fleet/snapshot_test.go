package fleet

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/state"
)

// attackedTrajectory corrupts a synthetic estimate stream with one of the
// paper's attack scenarios, so the snapshot/restore differential runs over
// trajectories where alarms, window shrinks, and deadline churn actually
// happen on both sides of the crash point.
func attackedTrajectory(t *testing.T, m *models.Model, attackName string, seed uint64, steps int) (ests, us []mat.Vec) {
	t.Helper()
	ests, us = synthTrajectory(m, seed, steps)
	atk, err := sim.BuildAttack(m, attackName)
	if err != nil {
		t.Fatalf("BuildAttack(%s, %s): %v", m.Name, attackName, err)
	}
	for i := range ests {
		ests[i] = atk.Apply(i, ests[i]).Clone()
	}
	return ests, us
}

func engineSnapshot(t *testing.T, eng *Engine) []byte {
	t.Helper()
	enc := state.NewEncoder()
	enc.Header()
	if err := eng.Snapshot(enc); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return enc.Bytes()
}

func engineRestore(t *testing.T, eng *Engine, blob []byte, make MakeStream) {
	t.Helper()
	dec := state.NewDecoder(blob)
	if err := dec.Header(); err != nil {
		t.Fatalf("snapshot header: %v", err)
	}
	if err := eng.Restore(dec, make); err != nil {
		t.Fatalf("Restore: %v", err)
	}
}

// TestRestoreMatchesNeverCrashed is the tentpole proof obligation: a fleet
// killed mid-run and rebuilt from its snapshot must produce a decision
// stream bit-identical to a fleet that never crashed — on every bundled
// plant under each of the paper's three attack scenarios, with crash
// points before, during, and after the attack onsets, plus baseline-
// strategy riders so every detector kind crosses a restore.
func TestRestoreMatchesNeverCrashed(t *testing.T) {
	const steps = 280
	crashPoints := []int{75, 170, 240}
	attacks := []string{"bias", "delay", "replay"}

	type streamCase struct {
		id       string
		m        *models.Model
		strat    sim.Strategy
		ests, us []mat.Vec
		want     []core.Decision
	}
	var cases []*streamCase
	byID := make(map[string]*streamCase)
	add := func(m *models.Model, attackName string, strat sim.Strategy) {
		sc := &streamCase{
			id:    fmt.Sprintf("%s/%s/%v", m.Name, attackName, strat),
			m:     m,
			strat: strat,
		}
		sc.ests, sc.us = attackedTrajectory(t, m, attackName, StreamSeed(99, sc.id), steps)
		cases = append(cases, sc)
		byID[sc.id] = sc
	}
	for _, m := range allModels {
		for _, attackName := range attacks {
			add(m, attackName, sim.Adaptive)
		}
	}
	for _, strat := range []sim.Strategy{sim.FixedWindow, sim.CUSUMBaseline, sim.EWMABaseline} {
		add(allModels[0], "bias", strat)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].id < cases[j].id })

	// Never-crashed reference: standalone detectors over the full run.
	for _, sc := range cases {
		serial := newDetector(t, sc.m, sc.strat)
		sc.want = make([]core.Decision, steps)
		for i := range sc.ests {
			d, err := serial.Step(sc.ests[i], sc.us[i])
			if err != nil {
				t.Fatalf("stream %s: serial step %d: %v", sc.id, i, err)
			}
			sc.want[i] = d
		}
	}

	// The to-be-crashed fleet: deliberately small shards and batches so
	// streams of different plants and strategies mix inside shards.
	cfg := Config{Workers: 2, ShardSize: 4, MaxBatch: 3}
	eng := New(cfg)
	for _, sc := range cases {
		if _, err := eng.AddStream(sc.id, newDetector(t, sc.m, sc.strat), nil); err != nil {
			t.Fatalf("AddStream(%s): %v", sc.id, err)
		}
	}
	snaps := make(map[int][]byte)
	next := 0
	for i := 0; i < steps; i++ {
		if next < len(crashPoints) && i == crashPoints[next] {
			snaps[i] = engineSnapshot(t, eng)
			next++
		}
		for _, sc := range cases {
			got, err := eng.Submit(sc.id, sc.ests[i], sc.us[i])
			if err != nil {
				t.Fatalf("stream %s: Submit step %d: %v", sc.id, i, err)
			}
			if !decisionsEqual(got, sc.want[i]) {
				t.Fatalf("stream %s step %d: fleet decision %+v != serial %+v", sc.id, i, got, sc.want[i])
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	makeStream := func(id string) (*core.System, func(core.Decision, error), error) {
		sc, ok := byID[id]
		if !ok {
			return nil, nil, fmt.Errorf("unknown stream %q in snapshot", id)
		}
		det, err := sim.Detector(sim.Config{Model: sc.m, Strategy: sc.strat})
		return det, nil, err
	}

	alarmsAfterRestore := 0
	for _, k := range crashPoints {
		eng2 := New(cfg)
		engineRestore(t, eng2, snaps[k], makeStream)
		// A restored fleet is in the same state as the crashed one was, so
		// an immediate re-snapshot must reproduce the blob byte for byte.
		if again := engineSnapshot(t, eng2); !bytes.Equal(again, snaps[k]) {
			t.Fatalf("crash point %d: re-snapshot of restored fleet differs from original (%d vs %d bytes)",
				k, len(again), len(snaps[k]))
		}
		for i := k; i < steps; i++ {
			for _, sc := range cases {
				got, err := eng2.Submit(sc.id, sc.ests[i], sc.us[i])
				if err != nil {
					t.Fatalf("crash point %d, stream %s: Submit step %d: %v", k, sc.id, i, err)
				}
				if !decisionsEqual(got, sc.want[i]) {
					t.Fatalf("crash point %d, stream %s, step %d: restored decision %+v != never-crashed %+v",
						k, sc.id, i, got, sc.want[i])
				}
				if got.Alarm {
					alarmsAfterRestore++
				}
			}
		}
		if err := eng2.Close(); err != nil {
			t.Fatalf("crash point %d: Close: %v", k, err)
		}
	}
	if alarmsAfterRestore == 0 {
		t.Fatalf("no alarms fired after any restore; the differential is vacuous")
	}
	t.Logf("verified %d streams x %d crash points; %d post-restore alarms", len(cases), len(crashPoints), alarmsAfterRestore)
}

// TestSnapshotDeterministic pins the codec promise that equal fleet states
// encode to equal bytes: two engines built and driven identically produce
// byte-identical snapshots, and a snapshot does not disturb the stream
// (decisions after it match a run that never snapshotted).
func TestSnapshotDeterministic(t *testing.T) {
	const steps = 40
	m := models.VehicleTurning()
	ests, us := attackedTrajectory(t, m, "delay", StreamSeed(5, "det"), steps)

	run := func(snapshotAt int) ([]byte, []core.Decision) {
		eng := New(Config{Workers: 1, ShardSize: 2})
		defer func() {
			if err := eng.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		}()
		ids := []string{"s-a", "s-b", "s-c"}
		for _, id := range ids {
			if _, err := eng.AddStream(id, newDetector(t, m, sim.Adaptive), nil); err != nil {
				t.Fatalf("AddStream(%s): %v", id, err)
			}
		}
		var blob []byte
		var got []core.Decision
		for i := 0; i < steps; i++ {
			if i == snapshotAt {
				blob = engineSnapshot(t, eng)
			}
			for _, id := range ids {
				d, err := eng.Submit(id, ests[i], us[i])
				if err != nil {
					t.Fatalf("Submit(%s, %d): %v", id, i, err)
				}
				got = append(got, d)
			}
		}
		return blob, got
	}

	blob1, dec1 := run(steps / 2)
	blob2, dec2 := run(steps / 2)
	_, decNone := run(-1)
	if !bytes.Equal(blob1, blob2) {
		t.Fatalf("identical runs produced different snapshots (%d vs %d bytes)", len(blob1), len(blob2))
	}
	for i := range dec1 {
		if !decisionsEqual(dec1[i], decNone[i]) {
			t.Fatalf("decision %d disturbed by mid-run snapshot: %+v != %+v", i, dec1[i], decNone[i])
		}
		if !decisionsEqual(dec1[i], dec2[i]) {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
}

// TestRestoreValidation covers the refusal paths: restoring into a non-
// empty or closed engine, truncated snapshots, and a make callback that
// reconstructs the wrong configuration must all surface as errors (never
// panics, never silent corruption).
func TestRestoreValidation(t *testing.T) {
	m := models.AircraftPitch()
	mk := func(id string) (*core.System, func(core.Decision, error), error) {
		det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
		return det, nil, err
	}

	eng := New(Config{})
	if _, err := eng.AddStream("s", newDetector(t, m, sim.Adaptive), nil); err != nil {
		t.Fatalf("AddStream: %v", err)
	}
	ests, us := synthTrajectory(m, 3, 10)
	for i := range ests {
		if _, err := eng.Submit("s", ests[i], us[i]); err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	blob := engineSnapshot(t, eng)

	// Non-empty engine refuses.
	dec := state.NewDecoder(blob)
	if err := dec.Header(); err != nil {
		t.Fatalf("header: %v", err)
	}
	if err := eng.Restore(dec, mk); err == nil {
		t.Fatalf("Restore into non-empty engine succeeded")
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Closed engine refuses.
	dec = state.NewDecoder(blob)
	_ = dec.Header()
	if err := eng.Restore(dec, mk); err == nil {
		t.Fatalf("Restore into closed engine succeeded")
	}

	// Every truncation of the blob must error out, not panic.
	for cut := 0; cut < len(blob); cut += 7 {
		eng2 := New(Config{})
		dec = state.NewDecoder(blob[:cut])
		err := dec.Header()
		if err == nil {
			err = eng2.Restore(dec, mk)
		}
		if err == nil {
			t.Fatalf("restore of %d-byte truncation succeeded", cut)
		}
		if cerr := eng2.Close(); cerr != nil {
			t.Fatalf("Close after failed restore: %v", cerr)
		}
	}

	// A make that rebuilds a structurally different plant (the 12-state
	// quadrotor vs the 3-state pitch model) must be caught by structural
	// validation, not restored into. (Same-shape plants with different
	// dynamics are indistinguishable to the codec by design — the snapshot
	// carries state, and configuration identity is make's obligation.)
	other := models.Quadrotor()
	eng3 := New(Config{})
	dec = state.NewDecoder(blob)
	_ = dec.Header()
	err := eng3.Restore(dec, func(id string) (*core.System, func(core.Decision, error), error) {
		det, err := sim.Detector(sim.Config{Model: other, Strategy: sim.Adaptive})
		return det, nil, err
	})
	if err == nil {
		t.Fatalf("Restore with mismatched plant succeeded")
	}
	if err := eng3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseZeroStreams pins the empty-engine shutdown path: Close on an
// engine that never had a stream returns immediately with a clean worker
// shutdown, stays idempotent, and leaves ingest properly refused.
func TestCloseZeroStreams(t *testing.T) {
	eng := New(Config{Workers: 4})
	if err := eng.Close(); err != nil {
		t.Fatalf("Close with zero streams: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := eng.Post("nope", mat.VecOf(0), mat.VecOf(0)); err == nil {
		t.Fatalf("Post after close succeeded")
	}
	if _, err := eng.AddStream("nope", newDetector(t, models.AircraftPitch(), sim.Adaptive), nil); err != ErrClosed {
		t.Fatalf("AddStream after close: err = %v, want ErrClosed", err)
	}
}
