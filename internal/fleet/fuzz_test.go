package fleet

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/sim"
)

// FuzzBatchMatchesSerial drives a randomized mini-fleet — plant, stream
// count, trajectory length, and seed all fuzzer-chosen, shard and batch
// sizes deliberately tiny so chunk boundaries move — and asserts every
// stream's decision sequence is bit-identical to a standalone detector
// stepped over the same samples. Any float-semantics drift in the batch
// kernels (summation order, zero handling, gather/scatter) shows up as a
// decision mismatch.
func FuzzBatchMatchesSerial(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(3), uint8(20))
	f.Add(uint64(42), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(5), uint8(6), uint8(30))
	f.Add(uint64(0xdeadbeef), uint8(3), uint8(4), uint8(11))
	f.Fuzz(func(t *testing.T, seed uint64, modelSel, nstreams, nsteps uint8) {
		m := allModels[int(modelSel)%len(allModels)]
		streams := 1 + int(nstreams)%6
		steps := 1 + int(nsteps)%30

		eng := New(Config{Workers: 2, ShardSize: 3, MaxBatch: 2})
		type streamCase struct {
			id       string
			ests, us []mat.Vec
			got      []core.Decision
		}
		cases := make([]*streamCase, streams)
		for i := range cases {
			sc := &streamCase{id: fmt.Sprintf("f%d", i)}
			sc.ests, sc.us = synthTrajectory(m, StreamSeed(seed, sc.id), steps)
			if _, err := eng.AddStream(sc.id, newDetector(t, m, sim.Adaptive), func(d core.Decision, err error) {
				if err == nil {
					sc.got = append(sc.got, d)
				}
			}); err != nil {
				t.Fatalf("AddStream: %v", err)
			}
			cases[i] = sc
		}
		var wg sync.WaitGroup
		for _, sc := range cases {
			wg.Add(1)
			go func(sc *streamCase) {
				defer wg.Done()
				for s := 0; s < steps; s++ {
					if err := eng.Post(sc.id, sc.ests[s], sc.us[s]); err != nil {
						t.Errorf("Post(%s): %v", sc.id, err)
						return
					}
				}
			}(sc)
		}
		wg.Wait()
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		for _, sc := range cases {
			if len(sc.got) != steps {
				t.Fatalf("stream %s: %d decisions, want %d", sc.id, len(sc.got), steps)
			}
			serial := newDetector(t, m, sim.Adaptive)
			for s := 0; s < steps; s++ {
				want, err := serial.Step(sc.ests[s], sc.us[s])
				if err != nil {
					t.Fatalf("serial step: %v", err)
				}
				if !decisionsEqual(sc.got[s], want) {
					t.Fatalf("stream %s step %d: fleet %+v != serial %+v", sc.id, s, sc.got[s], want)
				}
			}
		}
	})
}
