package wire

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/state"
)

// TestReadFrameIntoAllocs pins the frame reader allocation-free once its
// buffer has grown to the connection's largest frame — the fix for the
// per-frame make([]byte, n) the serial server paid on every sample.
func TestReadFrameIntoAllocs(t *testing.T) {
	var frame bytes.Buffer
	if err := writeFrame(&frame, MsgIngest, bytes.Repeat([]byte{0xAB}, 64)); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	data := frame.Bytes()
	r := bytes.NewReader(data)
	var buf []byte
	if _, _, err := readFrameInto(r, &buf); err != nil { // grows buf once
		t.Fatalf("warm-up read: %v", err)
	}
	avg := testing.AllocsPerRun(100, func() {
		r.Reset(data)
		typ, p, err := readFrameInto(r, &buf)
		if err != nil || typ != MsgIngest || len(p) != 64 {
			t.Fatalf("readFrameInto: typ=0x%02x len=%d err=%v", typ, len(p), err)
		}
	})
	if avg > 0 {
		t.Fatalf("readFrameInto allocates %.2f per frame, want 0", avg)
	}
}

// silentIngestPayload encodes one in-ball (silent steady-state) MsgIngest
// payload for the stream behind handle.
func silentIngestPayload(m *models.Model, handle uint64) []byte {
	gen := noise.NewBall(3, m.Sys.StateDim(), m.Eps)
	enc := state.NewEncoder()
	enc.U64(handle)
	enc.F64s(gen.Sample(0))
	enc.F64s(make([]float64, m.Sys.InputDim()))
	return enc.Bytes()
}

// TestServerIngestSteadyStateAllocs pins the whole server-side single-
// sample ingest path — frame decode, handle resolution, fleet submit,
// decision encode — at 0 allocs/op once the connection scratch is warm.
// This is the per-sample cost a saturated connection pays, so any
// allocation here is a throughput regression at fleet scale.
func TestServerIngestSteadyStateAllocs(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	defer srv.Close()
	h, err := srv.Open("alloc", "s", "aircraft-pitch", "adaptive", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := silentIngestPayload(models.ByName("aircraft-pitch"), h)
	cs := newConnState(srv.Engine())
	for i := 0; i < 8; i++ { // warm the scratch buffers
		if typ, _ := srv.handleReq(cs, MsgIngest, payload); typ != MsgDecision {
			t.Fatalf("warm-up response type 0x%02x", typ)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		typ, _ := srv.handleReq(cs, MsgIngest, payload)
		if typ != MsgDecision {
			t.Fatalf("response type 0x%02x", typ)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state ingest allocates %.2f per sample, want 0", avg)
	}
}

// TestServerBatchIngestSteadyStateAllocs pins the batched path the same
// way: a warm MsgIngestBatch frame carrying one silent sample for each of
// several streams must be served without a single allocation.
func TestServerBatchIngestSteadyStateAllocs(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	defer srv.Close()
	m := models.ByName("aircraft-pitch")
	const n = 8
	handles := make([]uint64, n)
	ests := make([][]float64, n)
	inputs := make([][]float64, n)
	gen := noise.NewBall(5, m.Sys.StateDim(), m.Eps)
	for i := 0; i < n; i++ {
		h, err := srv.Open("alloc", fmt.Sprintf("s-%d", i), "aircraft-pitch", "adaptive", 0)
		if err != nil {
			t.Fatalf("Open(%d): %v", i, err)
		}
		handles[i] = h
		ests[i] = gen.Sample(i)
		inputs[i] = make([]float64, m.Sys.InputDim())
	}
	enc := state.NewEncoder()
	appendIngestBatch(enc, handles, ests, inputs)
	payload := enc.Bytes()
	cs := newConnState(srv.Engine())
	for i := 0; i < 8; i++ {
		if typ, _ := srv.handleReq(cs, MsgIngestBatch, payload); typ != MsgDecisionBatch {
			t.Fatalf("warm-up response type 0x%02x", typ)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		typ, _ := srv.handleReq(cs, MsgIngestBatch, payload)
		if typ != MsgDecisionBatch {
			t.Fatalf("response type 0x%02x", typ)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state batch ingest allocates %.2f per batch, want 0", avg)
	}
}
