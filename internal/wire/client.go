package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/state"
)

// Client speaks the binary protocol over one TCP connection. It is the
// protocol's reference implementation and what cmd/awdserve's smoke
// tooling and the crash-replay CI step use. A Client is not safe for
// concurrent use; open one per goroutine (the server multiplexes).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  *state.Encoder // reused per request to keep ingest allocation-light
}

// Dial connects to a wire server and performs the hello handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		enc:  state.NewEncoder(),
	}
	c.enc.U16(ProtocolVersion)
	c.enc.String("wire-client")
	if _, _, err := c.roundTrip(MsgHello); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// roundTrip sends the staged request payload and reads one response,
// translating MsgError into a Go error. The returned decoder reads the
// response payload.
func (c *Client) roundTrip(typ byte) (byte, *state.Decoder, error) {
	if err := writeFrame(c.bw, typ, c.enc.Bytes()); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	rtyp, payload, err := readFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	dec := state.NewDecoder(payload)
	if rtyp == MsgError {
		msg := dec.String()
		if dec.Err() != nil {
			msg = "malformed error response"
		}
		return rtyp, nil, errors.New(msg)
	}
	return rtyp, dec, nil
}

// reset stages a fresh request payload.
func (c *Client) reset() { c.enc.Reset() }

// Open registers (or re-attaches to, after a server restore) the stream
// tenant/stream and returns its ingest handle.
func (c *Client) Open(tenant, stream, model, strategy string, fixedWin int) (uint64, error) {
	c.reset()
	c.enc.String(tenant)
	c.enc.String(stream)
	c.enc.String(model)
	c.enc.String(strategy)
	c.enc.Int(fixedWin)
	rtyp, dec, err := c.roundTrip(MsgOpen)
	if err != nil {
		return 0, err
	}
	if rtyp != MsgOpened {
		return 0, fmt.Errorf("wire: open got response type 0x%02x", rtyp)
	}
	h := dec.U64()
	return h, dec.Err()
}

// Ingest feeds one sample and returns the stream's decision.
func (c *Client) Ingest(handle uint64, estimate, appliedU []float64) (core.Decision, error) {
	c.reset()
	c.enc.U64(handle)
	c.enc.F64s(estimate)
	c.enc.F64s(appliedU)
	rtyp, dec, err := c.roundTrip(MsgIngest)
	if err != nil {
		return core.Decision{}, err
	}
	if rtyp != MsgDecision {
		return core.Decision{}, fmt.Errorf("wire: ingest got response type 0x%02x", rtyp)
	}
	return decodeDecision(dec)
}

// Checkpoint asks the server to write a whole-fleet snapshot; name "" uses
// DefaultCheckpointName. The returned detail names the written path.
func (c *Client) Checkpoint(name string) (string, error) {
	c.reset()
	c.enc.String(name)
	return c.okDetail(MsgCheckpoint)
}

// Drain stops the server admitting ingest, leaving the fleet quiescent.
func (c *Client) Drain() error {
	c.reset()
	_, err := c.okDetail(MsgDrain)
	return err
}

// Restore asks the server to load a checkpoint; name "" uses
// DefaultCheckpointName.
func (c *Client) Restore(name string) (string, error) {
	c.reset()
	c.enc.String(name)
	return c.okDetail(MsgRestore)
}

// okDetail round-trips a request whose response is MsgOK plus a detail
// string.
func (c *Client) okDetail(typ byte) (string, error) {
	rtyp, dec, err := c.roundTrip(typ)
	if err != nil {
		return "", err
	}
	if rtyp != MsgOK {
		return "", fmt.Errorf("wire: got response type 0x%02x, want OK", rtyp)
	}
	detail := dec.String()
	return detail, dec.Err()
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
