package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/state"
)

// Client speaks the binary protocol over one TCP connection. It is the
// protocol's reference implementation and what cmd/awdserve's smoke
// tooling and the crash-replay CI step use. A Client is not safe for
// concurrent use; open one per goroutine (the server multiplexes).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  *state.Encoder // reused per request to keep ingest allocation-light
	dec  state.Decoder  // reused per response
	rbuf []byte         // reused response frame buffer

	// serverVersion is the protocol version the server announced in its
	// hello response; a pre-batch server reports 1 and IngestBatch/Pipeline
	// must not be used against it.
	serverVersion uint16
}

// Dial connects to a wire server and performs the hello handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		enc:  state.NewEncoder(),
	}
	c.enc.U16(ProtocolVersion)
	c.enc.String("wire-client")
	_, dec, err := c.roundTrip(MsgHello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = dec.String() // server name: diagnostic only
	c.serverVersion = 1
	if dec.Remaining() >= 2 {
		// Version 2+ servers append their protocol version; a version 1
		// server's hello response ends after the name.
		c.serverVersion = dec.U16()
	}
	if err := dec.Err(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// ServerVersion reports the protocol version the server announced during
// the hello handshake (1 for servers that predate version negotiation in
// the response).
func (c *Client) ServerVersion() uint16 { return c.serverVersion }

// roundTrip sends the staged request payload and reads one response,
// translating MsgError into a Go error. The returned decoder reads the
// response payload and is valid until the next request.
func (c *Client) roundTrip(typ byte) (byte, *state.Decoder, error) {
	if err := writeFrame(c.bw, typ, c.enc.Bytes()); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	rtyp, payload, err := readFrameInto(c.br, &c.rbuf)
	if err != nil {
		return 0, nil, err
	}
	c.dec.Reset(payload)
	if rtyp == MsgError {
		msg := c.dec.String()
		if c.dec.Err() != nil {
			msg = "malformed error response"
		}
		return rtyp, nil, errors.New(msg)
	}
	return rtyp, &c.dec, nil
}

// reset stages a fresh request payload.
func (c *Client) reset() { c.enc.Reset() }

// Open registers (or re-attaches to, after a server restore) the stream
// tenant/stream and returns its ingest handle.
func (c *Client) Open(tenant, stream, model, strategy string, fixedWin int) (uint64, error) {
	c.reset()
	c.enc.String(tenant)
	c.enc.String(stream)
	c.enc.String(model)
	c.enc.String(strategy)
	c.enc.Int(fixedWin)
	rtyp, dec, err := c.roundTrip(MsgOpen)
	if err != nil {
		return 0, err
	}
	if rtyp != MsgOpened {
		return 0, fmt.Errorf("wire: open got response type 0x%02x", rtyp)
	}
	h := dec.U64()
	return h, dec.Err()
}

// Ingest feeds one sample and returns the stream's decision.
func (c *Client) Ingest(handle uint64, estimate, appliedU []float64) (core.Decision, error) {
	c.reset()
	c.enc.U64(handle)
	c.enc.F64s(estimate)
	c.enc.F64s(appliedU)
	rtyp, dec, err := c.roundTrip(MsgIngest)
	if err != nil {
		return core.Decision{}, err
	}
	if rtyp != MsgDecision {
		return core.Decision{}, fmt.Errorf("wire: ingest got response type 0x%02x", rtyp)
	}
	return decodeDecision(dec)
}

// IngestResult is one sample's outcome from a batched or pipelined
// ingest: the decision, or the per-sample server error.
type IngestResult struct {
	Decision core.Decision
	Err      error
}

// IngestBatch feeds one sample per handle in a single MsgIngestBatch frame
// and fills out with the per-sample decisions, amortizing the network
// round trip and the server's framing work across the whole batch. The
// four slices must have equal length. Per-sample failures (unknown handle,
// dimension mismatch) land in out[i].Err; the returned error is reserved
// for transport and whole-batch protocol failures. Requires a version 2
// server (see ServerVersion).
func (c *Client) IngestBatch(handles []uint64, estimates, inputs [][]float64, out []IngestResult) error {
	if len(estimates) != len(handles) || len(inputs) != len(handles) || len(out) != len(handles) {
		return fmt.Errorf("wire: batch slice lengths %d/%d/%d/%d differ",
			len(handles), len(estimates), len(inputs), len(out))
	}
	if c.serverVersion < 2 {
		return fmt.Errorf("wire: server speaks protocol %d, batch ingest needs 2", c.serverVersion)
	}
	c.reset()
	appendIngestBatch(c.enc, handles, estimates, inputs)
	rtyp, dec, err := c.roundTrip(MsgIngestBatch)
	if err != nil {
		return err
	}
	if rtyp != MsgDecisionBatch {
		return fmt.Errorf("wire: batch ingest got response type 0x%02x", rtyp)
	}
	return decodeDecisionBatch(dec, out)
}

// Checkpoint asks the server to write a whole-fleet snapshot; name "" uses
// DefaultCheckpointName. The returned detail names the written path.
func (c *Client) Checkpoint(name string) (string, error) {
	c.reset()
	c.enc.String(name)
	return c.okDetail(MsgCheckpoint)
}

// Drain stops the server admitting ingest, leaving the fleet quiescent.
func (c *Client) Drain() error {
	c.reset()
	_, err := c.okDetail(MsgDrain)
	return err
}

// Restore asks the server to load a checkpoint; name "" uses
// DefaultCheckpointName.
func (c *Client) Restore(name string) (string, error) {
	c.reset()
	c.enc.String(name)
	return c.okDetail(MsgRestore)
}

// okDetail round-trips a request whose response is MsgOK plus a detail
// string.
func (c *Client) okDetail(typ byte) (string, error) {
	rtyp, dec, err := c.roundTrip(typ)
	if err != nil {
		return "", err
	}
	if rtyp != MsgOK {
		return "", fmt.Errorf("wire: got response type 0x%02x, want OK", rtyp)
	}
	detail := dec.String()
	return detail, dec.Err()
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
